file(REMOVE_RECURSE
  "libckpt_core.a"
)
