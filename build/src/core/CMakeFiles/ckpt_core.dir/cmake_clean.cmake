file(REMOVE_RECURSE
  "CMakeFiles/ckpt_core.dir/allocation_table.cpp.o"
  "CMakeFiles/ckpt_core.dir/allocation_table.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/cache_buffer.cpp.o"
  "CMakeFiles/ckpt_core.dir/cache_buffer.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/engine.cpp.o"
  "CMakeFiles/ckpt_core.dir/engine.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/eviction.cpp.o"
  "CMakeFiles/ckpt_core.dir/eviction.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/lifecycle.cpp.o"
  "CMakeFiles/ckpt_core.dir/lifecycle.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/metrics.cpp.o"
  "CMakeFiles/ckpt_core.dir/metrics.cpp.o.d"
  "CMakeFiles/ckpt_core.dir/restore_queue.cpp.o"
  "CMakeFiles/ckpt_core.dir/restore_queue.cpp.o.d"
  "libckpt_core.a"
  "libckpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
