
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation_table.cpp" "src/core/CMakeFiles/ckpt_core.dir/allocation_table.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/allocation_table.cpp.o.d"
  "/root/repo/src/core/cache_buffer.cpp" "src/core/CMakeFiles/ckpt_core.dir/cache_buffer.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/cache_buffer.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/ckpt_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/eviction.cpp" "src/core/CMakeFiles/ckpt_core.dir/eviction.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/eviction.cpp.o.d"
  "/root/repo/src/core/lifecycle.cpp" "src/core/CMakeFiles/ckpt_core.dir/lifecycle.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/lifecycle.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/ckpt_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/restore_queue.cpp" "src/core/CMakeFiles/ckpt_core.dir/restore_queue.cpp.o" "gcc" "src/core/CMakeFiles/ckpt_core.dir/restore_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/ckpt_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ckpt_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
