# Empty compiler generated dependencies file for ckpt_core.
# This may be replaced when dependencies are built.
