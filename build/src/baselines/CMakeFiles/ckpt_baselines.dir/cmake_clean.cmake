file(REMOVE_RECURSE
  "CMakeFiles/ckpt_baselines.dir/adios/adios_runtime.cpp.o"
  "CMakeFiles/ckpt_baselines.dir/adios/adios_runtime.cpp.o.d"
  "CMakeFiles/ckpt_baselines.dir/uvm/uvm_runtime.cpp.o"
  "CMakeFiles/ckpt_baselines.dir/uvm/uvm_runtime.cpp.o.d"
  "CMakeFiles/ckpt_baselines.dir/uvm/uvm_space.cpp.o"
  "CMakeFiles/ckpt_baselines.dir/uvm/uvm_space.cpp.o.d"
  "libckpt_baselines.a"
  "libckpt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
