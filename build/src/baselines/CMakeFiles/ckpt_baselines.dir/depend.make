# Empty dependencies file for ckpt_baselines.
# This may be replaced when dependencies are built.
