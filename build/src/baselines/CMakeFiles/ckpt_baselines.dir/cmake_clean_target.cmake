file(REMOVE_RECURSE
  "libckpt_baselines.a"
)
