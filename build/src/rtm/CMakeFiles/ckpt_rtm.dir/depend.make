# Empty dependencies file for ckpt_rtm.
# This may be replaced when dependencies are built.
