file(REMOVE_RECURSE
  "CMakeFiles/ckpt_rtm.dir/trace.cpp.o"
  "CMakeFiles/ckpt_rtm.dir/trace.cpp.o.d"
  "CMakeFiles/ckpt_rtm.dir/workload.cpp.o"
  "CMakeFiles/ckpt_rtm.dir/workload.cpp.o.d"
  "libckpt_rtm.a"
  "libckpt_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
