file(REMOVE_RECURSE
  "libckpt_rtm.a"
)
