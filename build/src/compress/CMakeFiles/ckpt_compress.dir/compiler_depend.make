# Empty compiler generated dependencies file for ckpt_compress.
# This may be replaced when dependencies are built.
