file(REMOVE_RECURSE
  "libckpt_compress.a"
)
