file(REMOVE_RECURSE
  "CMakeFiles/ckpt_compress.dir/codec.cpp.o"
  "CMakeFiles/ckpt_compress.dir/codec.cpp.o.d"
  "CMakeFiles/ckpt_compress.dir/compressed_store.cpp.o"
  "CMakeFiles/ckpt_compress.dir/compressed_store.cpp.o.d"
  "libckpt_compress.a"
  "libckpt_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
