# Empty compiler generated dependencies file for ckpt_api.
# This may be replaced when dependencies are built.
