file(REMOVE_RECURSE
  "CMakeFiles/ckpt_api.dir/veloc.cpp.o"
  "CMakeFiles/ckpt_api.dir/veloc.cpp.o.d"
  "CMakeFiles/ckpt_api.dir/veloc_c.cpp.o"
  "CMakeFiles/ckpt_api.dir/veloc_c.cpp.o.d"
  "libckpt_api.a"
  "libckpt_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
