file(REMOVE_RECURSE
  "libckpt_api.a"
)
