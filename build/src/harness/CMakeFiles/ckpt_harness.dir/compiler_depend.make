# Empty compiler generated dependencies file for ckpt_harness.
# This may be replaced when dependencies are built.
