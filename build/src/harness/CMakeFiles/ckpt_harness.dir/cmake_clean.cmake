file(REMOVE_RECURSE
  "CMakeFiles/ckpt_harness.dir/experiment.cpp.o"
  "CMakeFiles/ckpt_harness.dir/experiment.cpp.o.d"
  "libckpt_harness.a"
  "libckpt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
