file(REMOVE_RECURSE
  "libckpt_harness.a"
)
