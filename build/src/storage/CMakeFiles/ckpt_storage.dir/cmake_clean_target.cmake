file(REMOVE_RECURSE
  "libckpt_storage.a"
)
