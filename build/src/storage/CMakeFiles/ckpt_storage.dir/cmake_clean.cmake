file(REMOVE_RECURSE
  "CMakeFiles/ckpt_storage.dir/checksum_store.cpp.o"
  "CMakeFiles/ckpt_storage.dir/checksum_store.cpp.o.d"
  "CMakeFiles/ckpt_storage.dir/file_store.cpp.o"
  "CMakeFiles/ckpt_storage.dir/file_store.cpp.o.d"
  "CMakeFiles/ckpt_storage.dir/mem_store.cpp.o"
  "CMakeFiles/ckpt_storage.dir/mem_store.cpp.o.d"
  "CMakeFiles/ckpt_storage.dir/throttled_store.cpp.o"
  "CMakeFiles/ckpt_storage.dir/throttled_store.cpp.o.d"
  "libckpt_storage.a"
  "libckpt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
