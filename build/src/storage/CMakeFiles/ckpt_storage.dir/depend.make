# Empty dependencies file for ckpt_storage.
# This may be replaced when dependencies are built.
