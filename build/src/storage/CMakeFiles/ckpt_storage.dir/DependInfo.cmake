
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/checksum_store.cpp" "src/storage/CMakeFiles/ckpt_storage.dir/checksum_store.cpp.o" "gcc" "src/storage/CMakeFiles/ckpt_storage.dir/checksum_store.cpp.o.d"
  "/root/repo/src/storage/file_store.cpp" "src/storage/CMakeFiles/ckpt_storage.dir/file_store.cpp.o" "gcc" "src/storage/CMakeFiles/ckpt_storage.dir/file_store.cpp.o.d"
  "/root/repo/src/storage/mem_store.cpp" "src/storage/CMakeFiles/ckpt_storage.dir/mem_store.cpp.o" "gcc" "src/storage/CMakeFiles/ckpt_storage.dir/mem_store.cpp.o.d"
  "/root/repo/src/storage/throttled_store.cpp" "src/storage/CMakeFiles/ckpt_storage.dir/throttled_store.cpp.o" "gcc" "src/storage/CMakeFiles/ckpt_storage.dir/throttled_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/ckpt_simgpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
