file(REMOVE_RECURSE
  "libckpt_util.a"
)
