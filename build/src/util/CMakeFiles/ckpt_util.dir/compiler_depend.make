# Empty compiler generated dependencies file for ckpt_util.
# This may be replaced when dependencies are built.
