file(REMOVE_RECURSE
  "CMakeFiles/ckpt_util.dir/config.cpp.o"
  "CMakeFiles/ckpt_util.dir/config.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/crc32.cpp.o"
  "CMakeFiles/ckpt_util.dir/crc32.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/logging.cpp.o"
  "CMakeFiles/ckpt_util.dir/logging.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/rate_limiter.cpp.o"
  "CMakeFiles/ckpt_util.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/stats.cpp.o"
  "CMakeFiles/ckpt_util.dir/stats.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/status.cpp.o"
  "CMakeFiles/ckpt_util.dir/status.cpp.o.d"
  "CMakeFiles/ckpt_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ckpt_util.dir/thread_pool.cpp.o.d"
  "libckpt_util.a"
  "libckpt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
