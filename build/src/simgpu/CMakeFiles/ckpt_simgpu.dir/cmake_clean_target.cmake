file(REMOVE_RECURSE
  "libckpt_simgpu.a"
)
