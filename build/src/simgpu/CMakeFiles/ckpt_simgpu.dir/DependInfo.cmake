
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/cluster.cpp" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/cluster.cpp.o" "gcc" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/cluster.cpp.o.d"
  "/root/repo/src/simgpu/copy.cpp" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/copy.cpp.o" "gcc" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/copy.cpp.o.d"
  "/root/repo/src/simgpu/device.cpp" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/device.cpp.o" "gcc" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/device.cpp.o.d"
  "/root/repo/src/simgpu/pinned.cpp" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/pinned.cpp.o" "gcc" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/pinned.cpp.o.d"
  "/root/repo/src/simgpu/stream.cpp" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/stream.cpp.o" "gcc" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/stream.cpp.o.d"
  "/root/repo/src/simgpu/topology.cpp" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/topology.cpp.o" "gcc" "src/simgpu/CMakeFiles/ckpt_simgpu.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
