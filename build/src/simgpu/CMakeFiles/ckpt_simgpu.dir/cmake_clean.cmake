file(REMOVE_RECURSE
  "CMakeFiles/ckpt_simgpu.dir/cluster.cpp.o"
  "CMakeFiles/ckpt_simgpu.dir/cluster.cpp.o.d"
  "CMakeFiles/ckpt_simgpu.dir/copy.cpp.o"
  "CMakeFiles/ckpt_simgpu.dir/copy.cpp.o.d"
  "CMakeFiles/ckpt_simgpu.dir/device.cpp.o"
  "CMakeFiles/ckpt_simgpu.dir/device.cpp.o.d"
  "CMakeFiles/ckpt_simgpu.dir/pinned.cpp.o"
  "CMakeFiles/ckpt_simgpu.dir/pinned.cpp.o.d"
  "CMakeFiles/ckpt_simgpu.dir/stream.cpp.o"
  "CMakeFiles/ckpt_simgpu.dir/stream.cpp.o.d"
  "CMakeFiles/ckpt_simgpu.dir/topology.cpp.o"
  "CMakeFiles/ckpt_simgpu.dir/topology.cpp.o.d"
  "libckpt_simgpu.a"
  "libckpt_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
