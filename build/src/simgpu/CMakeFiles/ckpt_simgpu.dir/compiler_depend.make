# Empty compiler generated dependencies file for ckpt_simgpu.
# This may be replaced when dependencies are built.
