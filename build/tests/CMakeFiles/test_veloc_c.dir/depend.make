# Empty dependencies file for test_veloc_c.
# This may be replaced when dependencies are built.
