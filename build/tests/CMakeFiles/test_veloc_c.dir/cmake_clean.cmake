file(REMOVE_RECURSE
  "CMakeFiles/test_veloc_c.dir/api/veloc_c_test.cpp.o"
  "CMakeFiles/test_veloc_c.dir/api/veloc_c_test.cpp.o.d"
  "test_veloc_c"
  "test_veloc_c.pdb"
  "test_veloc_c[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_veloc_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
