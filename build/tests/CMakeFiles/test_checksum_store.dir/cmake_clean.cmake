file(REMOVE_RECURSE
  "CMakeFiles/test_checksum_store.dir/storage/checksum_store_test.cpp.o"
  "CMakeFiles/test_checksum_store.dir/storage/checksum_store_test.cpp.o.d"
  "test_checksum_store"
  "test_checksum_store.pdb"
  "test_checksum_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checksum_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
