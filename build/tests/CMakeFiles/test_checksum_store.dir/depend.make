# Empty dependencies file for test_checksum_store.
# This may be replaced when dependencies are built.
