file(REMOVE_RECURSE
  "CMakeFiles/test_uvm_runtime.dir/baselines/uvm_runtime_test.cpp.o"
  "CMakeFiles/test_uvm_runtime.dir/baselines/uvm_runtime_test.cpp.o.d"
  "test_uvm_runtime"
  "test_uvm_runtime.pdb"
  "test_uvm_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uvm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
