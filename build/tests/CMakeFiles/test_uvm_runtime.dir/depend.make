# Empty dependencies file for test_uvm_runtime.
# This may be replaced when dependencies are built.
