# Empty dependencies file for test_paper_conditions.
# This may be replaced when dependencies are built.
