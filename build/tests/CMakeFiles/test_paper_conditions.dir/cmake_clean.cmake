file(REMOVE_RECURSE
  "CMakeFiles/test_paper_conditions.dir/core/paper_conditions_test.cpp.o"
  "CMakeFiles/test_paper_conditions.dir/core/paper_conditions_test.cpp.o.d"
  "test_paper_conditions"
  "test_paper_conditions.pdb"
  "test_paper_conditions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
