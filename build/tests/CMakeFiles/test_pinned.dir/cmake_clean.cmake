file(REMOVE_RECURSE
  "CMakeFiles/test_pinned.dir/simgpu/pinned_test.cpp.o"
  "CMakeFiles/test_pinned.dir/simgpu/pinned_test.cpp.o.d"
  "test_pinned"
  "test_pinned.pdb"
  "test_pinned[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pinned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
