# Empty compiler generated dependencies file for test_pinned.
# This may be replaced when dependencies are built.
