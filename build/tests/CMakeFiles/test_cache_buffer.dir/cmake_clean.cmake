file(REMOVE_RECURSE
  "CMakeFiles/test_cache_buffer.dir/core/cache_buffer_test.cpp.o"
  "CMakeFiles/test_cache_buffer.dir/core/cache_buffer_test.cpp.o.d"
  "test_cache_buffer"
  "test_cache_buffer.pdb"
  "test_cache_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
