
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness/harness_test.cpp" "tests/CMakeFiles/test_harness.dir/harness/harness_test.cpp.o" "gcc" "tests/CMakeFiles/test_harness.dir/harness/harness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckpt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simgpu/CMakeFiles/ckpt_simgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ckpt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ckpt_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/ckpt_api.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ckpt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rtm/CMakeFiles/ckpt_rtm.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/ckpt_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
