file(REMOVE_RECURSE
  "CMakeFiles/test_engine_eviction_behavior.dir/core/engine_eviction_behavior_test.cpp.o"
  "CMakeFiles/test_engine_eviction_behavior.dir/core/engine_eviction_behavior_test.cpp.o.d"
  "test_engine_eviction_behavior"
  "test_engine_eviction_behavior.pdb"
  "test_engine_eviction_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_eviction_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
