# Empty dependencies file for test_engine_eviction_behavior.
# This may be replaced when dependencies are built.
