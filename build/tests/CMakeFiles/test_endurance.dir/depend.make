# Empty dependencies file for test_endurance.
# This may be replaced when dependencies are built.
