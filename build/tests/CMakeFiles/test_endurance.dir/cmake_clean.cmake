file(REMOVE_RECURSE
  "CMakeFiles/test_endurance.dir/integration/endurance_test.cpp.o"
  "CMakeFiles/test_endurance.dir/integration/endurance_test.cpp.o.d"
  "test_endurance"
  "test_endurance.pdb"
  "test_endurance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
