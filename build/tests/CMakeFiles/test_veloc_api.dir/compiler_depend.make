# Empty compiler generated dependencies file for test_veloc_api.
# This may be replaced when dependencies are built.
