file(REMOVE_RECURSE
  "CMakeFiles/test_veloc_api.dir/api/veloc_test.cpp.o"
  "CMakeFiles/test_veloc_api.dir/api/veloc_test.cpp.o.d"
  "test_veloc_api"
  "test_veloc_api.pdb"
  "test_veloc_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_veloc_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
