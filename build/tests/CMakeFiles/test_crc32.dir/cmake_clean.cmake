file(REMOVE_RECURSE
  "CMakeFiles/test_crc32.dir/util/crc32_test.cpp.o"
  "CMakeFiles/test_crc32.dir/util/crc32_test.cpp.o.d"
  "test_crc32"
  "test_crc32.pdb"
  "test_crc32[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crc32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
