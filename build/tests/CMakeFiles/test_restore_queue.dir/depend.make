# Empty dependencies file for test_restore_queue.
# This may be replaced when dependencies are built.
