file(REMOVE_RECURSE
  "CMakeFiles/test_restore_queue.dir/core/restore_queue_test.cpp.o"
  "CMakeFiles/test_restore_queue.dir/core/restore_queue_test.cpp.o.d"
  "test_restore_queue"
  "test_restore_queue.pdb"
  "test_restore_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restore_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
