# Empty dependencies file for test_device_concurrency.
# This may be replaced when dependencies are built.
