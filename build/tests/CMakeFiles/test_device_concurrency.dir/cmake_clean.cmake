file(REMOVE_RECURSE
  "CMakeFiles/test_device_concurrency.dir/simgpu/device_concurrency_test.cpp.o"
  "CMakeFiles/test_device_concurrency.dir/simgpu/device_concurrency_test.cpp.o.d"
  "test_device_concurrency"
  "test_device_concurrency.pdb"
  "test_device_concurrency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
