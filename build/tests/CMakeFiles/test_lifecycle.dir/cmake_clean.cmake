file(REMOVE_RECURSE
  "CMakeFiles/test_lifecycle.dir/core/lifecycle_test.cpp.o"
  "CMakeFiles/test_lifecycle.dir/core/lifecycle_test.cpp.o.d"
  "test_lifecycle"
  "test_lifecycle.pdb"
  "test_lifecycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
