file(REMOVE_RECURSE
  "CMakeFiles/test_compressed_store.dir/compress/compressed_store_test.cpp.o"
  "CMakeFiles/test_compressed_store.dir/compress/compressed_store_test.cpp.o.d"
  "test_compressed_store"
  "test_compressed_store.pdb"
  "test_compressed_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compressed_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
