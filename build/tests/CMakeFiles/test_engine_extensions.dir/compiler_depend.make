# Empty compiler generated dependencies file for test_engine_extensions.
# This may be replaced when dependencies are built.
