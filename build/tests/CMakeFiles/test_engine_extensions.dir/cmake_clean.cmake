file(REMOVE_RECURSE
  "CMakeFiles/test_engine_extensions.dir/core/engine_extensions_test.cpp.o"
  "CMakeFiles/test_engine_extensions.dir/core/engine_extensions_test.cpp.o.d"
  "test_engine_extensions"
  "test_engine_extensions.pdb"
  "test_engine_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
