# Empty dependencies file for test_uvm_space.
# This may be replaced when dependencies are built.
