file(REMOVE_RECURSE
  "CMakeFiles/test_uvm_space.dir/baselines/uvm_space_test.cpp.o"
  "CMakeFiles/test_uvm_space.dir/baselines/uvm_space_test.cpp.o.d"
  "test_uvm_space"
  "test_uvm_space.pdb"
  "test_uvm_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uvm_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
