file(REMOVE_RECURSE
  "CMakeFiles/test_adios.dir/baselines/adios_runtime_test.cpp.o"
  "CMakeFiles/test_adios.dir/baselines/adios_runtime_test.cpp.o.d"
  "test_adios"
  "test_adios.pdb"
  "test_adios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
