# Empty compiler generated dependencies file for test_adios.
# This may be replaced when dependencies are built.
