file(REMOVE_RECURSE
  "CMakeFiles/test_throttled_store.dir/storage/throttled_store_test.cpp.o"
  "CMakeFiles/test_throttled_store.dir/storage/throttled_store_test.cpp.o.d"
  "test_throttled_store"
  "test_throttled_store.pdb"
  "test_throttled_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_throttled_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
