file(REMOVE_RECURSE
  "CMakeFiles/test_file_store.dir/storage/file_store_test.cpp.o"
  "CMakeFiles/test_file_store.dir/storage/file_store_test.cpp.o.d"
  "test_file_store"
  "test_file_store.pdb"
  "test_file_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
