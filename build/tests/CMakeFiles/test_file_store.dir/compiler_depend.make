# Empty compiler generated dependencies file for test_file_store.
# This may be replaced when dependencies are built.
