file(REMOVE_RECURSE
  "CMakeFiles/test_allocation_table.dir/core/allocation_table_test.cpp.o"
  "CMakeFiles/test_allocation_table.dir/core/allocation_table_test.cpp.o.d"
  "test_allocation_table"
  "test_allocation_table.pdb"
  "test_allocation_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allocation_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
