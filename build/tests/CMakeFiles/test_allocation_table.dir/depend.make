# Empty dependencies file for test_allocation_table.
# This may be replaced when dependencies are built.
