file(REMOVE_RECURSE
  "CMakeFiles/test_engine_stress.dir/core/engine_stress_test.cpp.o"
  "CMakeFiles/test_engine_stress.dir/core/engine_stress_test.cpp.o.d"
  "test_engine_stress"
  "test_engine_stress.pdb"
  "test_engine_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
