file(REMOVE_RECURSE
  "CMakeFiles/test_copy.dir/simgpu/copy_test.cpp.o"
  "CMakeFiles/test_copy.dir/simgpu/copy_test.cpp.o.d"
  "test_copy"
  "test_copy.pdb"
  "test_copy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
