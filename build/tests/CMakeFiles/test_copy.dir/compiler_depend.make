# Empty compiler generated dependencies file for test_copy.
# This may be replaced when dependencies are built.
