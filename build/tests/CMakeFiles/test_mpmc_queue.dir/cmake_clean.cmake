file(REMOVE_RECURSE
  "CMakeFiles/test_mpmc_queue.dir/util/mpmc_queue_test.cpp.o"
  "CMakeFiles/test_mpmc_queue.dir/util/mpmc_queue_test.cpp.o.d"
  "test_mpmc_queue"
  "test_mpmc_queue.pdb"
  "test_mpmc_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpmc_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
