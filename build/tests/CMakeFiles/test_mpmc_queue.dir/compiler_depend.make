# Empty compiler generated dependencies file for test_mpmc_queue.
# This may be replaced when dependencies are built.
