file(REMOVE_RECURSE
  "CMakeFiles/test_mem_store.dir/storage/mem_store_test.cpp.o"
  "CMakeFiles/test_mem_store.dir/storage/mem_store_test.cpp.o.d"
  "test_mem_store"
  "test_mem_store.pdb"
  "test_mem_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
