# Empty compiler generated dependencies file for test_mem_store.
# This may be replaced when dependencies are built.
