file(REMOVE_RECURSE
  "CMakeFiles/test_engine_gpudirect.dir/core/engine_gpudirect_test.cpp.o"
  "CMakeFiles/test_engine_gpudirect.dir/core/engine_gpudirect_test.cpp.o.d"
  "test_engine_gpudirect"
  "test_engine_gpudirect.pdb"
  "test_engine_gpudirect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_gpudirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
