# Empty compiler generated dependencies file for test_engine_gpudirect.
# This may be replaced when dependencies are built.
