# Empty compiler generated dependencies file for test_eviction.
# This may be replaced when dependencies are built.
