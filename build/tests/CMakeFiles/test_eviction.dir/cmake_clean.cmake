file(REMOVE_RECURSE
  "CMakeFiles/test_eviction.dir/core/eviction_test.cpp.o"
  "CMakeFiles/test_eviction.dir/core/eviction_test.cpp.o.d"
  "test_eviction"
  "test_eviction.pdb"
  "test_eviction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
