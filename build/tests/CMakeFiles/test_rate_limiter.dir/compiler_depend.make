# Empty compiler generated dependencies file for test_rate_limiter.
# This may be replaced when dependencies are built.
