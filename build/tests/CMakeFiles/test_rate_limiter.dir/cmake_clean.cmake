file(REMOVE_RECURSE
  "CMakeFiles/test_rate_limiter.dir/util/rate_limiter_test.cpp.o"
  "CMakeFiles/test_rate_limiter.dir/util/rate_limiter_test.cpp.o.d"
  "test_rate_limiter"
  "test_rate_limiter.pdb"
  "test_rate_limiter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_limiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
