file(REMOVE_RECURSE
  "CMakeFiles/reproducibility_replay.dir/reproducibility_replay.cpp.o"
  "CMakeFiles/reproducibility_replay.dir/reproducibility_replay.cpp.o.d"
  "reproducibility_replay"
  "reproducibility_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproducibility_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
