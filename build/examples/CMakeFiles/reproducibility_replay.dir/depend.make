# Empty dependencies file for reproducibility_replay.
# This may be replaced when dependencies are built.
