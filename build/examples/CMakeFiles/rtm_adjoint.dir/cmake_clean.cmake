file(REMOVE_RECURSE
  "CMakeFiles/rtm_adjoint.dir/rtm_adjoint.cpp.o"
  "CMakeFiles/rtm_adjoint.dir/rtm_adjoint.cpp.o.d"
  "rtm_adjoint"
  "rtm_adjoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtm_adjoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
