# Empty dependencies file for rtm_adjoint.
# This may be replaced when dependencies are built.
