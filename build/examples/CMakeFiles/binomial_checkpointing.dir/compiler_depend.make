# Empty compiler generated dependencies file for binomial_checkpointing.
# This may be replaced when dependencies are built.
