file(REMOVE_RECURSE
  "CMakeFiles/binomial_checkpointing.dir/binomial_checkpointing.cpp.o"
  "CMakeFiles/binomial_checkpointing.dir/binomial_checkpointing.cpp.o.d"
  "binomial_checkpointing"
  "binomial_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binomial_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
