file(REMOVE_RECURSE
  "CMakeFiles/compressed_pipeline.dir/compressed_pipeline.cpp.o"
  "CMakeFiles/compressed_pipeline.dir/compressed_pipeline.cpp.o.d"
  "compressed_pipeline"
  "compressed_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
