# Empty compiler generated dependencies file for compressed_pipeline.
# This may be replaced when dependencies are built.
