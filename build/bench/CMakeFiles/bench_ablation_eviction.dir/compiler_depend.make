# Empty compiler generated dependencies file for bench_ablation_eviction.
# This may be replaced when dependencies are built.
