file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eviction.dir/bench_ablation_eviction.cpp.o"
  "CMakeFiles/bench_ablation_eviction.dir/bench_ablation_eviction.cpp.o.d"
  "bench_ablation_eviction"
  "bench_ablation_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
