file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_wait.dir/bench_fig5_wait.cpp.o"
  "CMakeFiles/bench_fig5_wait.dir/bench_fig5_wait.cpp.o.d"
  "bench_fig5_wait"
  "bench_fig5_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
