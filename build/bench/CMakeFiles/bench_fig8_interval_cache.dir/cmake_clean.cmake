file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_interval_cache.dir/bench_fig8_interval_cache.cpp.o"
  "CMakeFiles/bench_fig8_interval_cache.dir/bench_fig8_interval_cache.cpp.o.d"
  "bench_fig8_interval_cache"
  "bench_fig8_interval_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_interval_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
