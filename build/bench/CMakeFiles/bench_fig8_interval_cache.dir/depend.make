# Empty dependencies file for bench_fig8_interval_cache.
# This may be replaced when dependencies are built.
