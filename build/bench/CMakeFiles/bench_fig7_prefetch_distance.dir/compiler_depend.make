# Empty compiler generated dependencies file for bench_fig7_prefetch_distance.
# This may be replaced when dependencies are built.
