file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gpudirect.dir/bench_ablation_gpudirect.cpp.o"
  "CMakeFiles/bench_ablation_gpudirect.dir/bench_ablation_gpudirect.cpp.o.d"
  "bench_ablation_gpudirect"
  "bench_ablation_gpudirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gpudirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
