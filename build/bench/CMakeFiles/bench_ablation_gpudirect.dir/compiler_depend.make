# Empty compiler generated dependencies file for bench_ablation_gpudirect.
# This may be replaced when dependencies are built.
