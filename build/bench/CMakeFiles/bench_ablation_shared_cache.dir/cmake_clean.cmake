file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shared_cache.dir/bench_ablation_shared_cache.cpp.o"
  "CMakeFiles/bench_ablation_shared_cache.dir/bench_ablation_shared_cache.cpp.o.d"
  "bench_ablation_shared_cache"
  "bench_ablation_shared_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
