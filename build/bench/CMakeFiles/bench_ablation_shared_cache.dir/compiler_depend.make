# Empty compiler generated dependencies file for bench_ablation_shared_cache.
# This may be replaced when dependencies are built.
