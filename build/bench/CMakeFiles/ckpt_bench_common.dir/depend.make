# Empty dependencies file for ckpt_bench_common.
# This may be replaced when dependencies are built.
