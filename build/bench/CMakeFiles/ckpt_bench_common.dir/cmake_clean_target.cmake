file(REMOVE_RECURSE
  "libckpt_bench_common.a"
)
