file(REMOVE_RECURSE
  "CMakeFiles/ckpt_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/ckpt_bench_common.dir/bench_common.cpp.o.d"
  "libckpt_bench_common.a"
  "libckpt_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckpt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
