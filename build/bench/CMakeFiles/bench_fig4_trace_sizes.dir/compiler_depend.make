# Empty compiler generated dependencies file for bench_fig4_trace_sizes.
# This may be replaced when dependencies are built.
