file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_trace_sizes.dir/bench_fig4_trace_sizes.cpp.o"
  "CMakeFiles/bench_fig4_trace_sizes.dir/bench_fig4_trace_sizes.cpp.o.d"
  "bench_fig4_trace_sizes"
  "bench_fig4_trace_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_trace_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
