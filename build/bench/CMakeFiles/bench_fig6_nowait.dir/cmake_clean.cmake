file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_nowait.dir/bench_fig6_nowait.cpp.o"
  "CMakeFiles/bench_fig6_nowait.dir/bench_fig6_nowait.cpp.o.d"
  "bench_fig6_nowait"
  "bench_fig6_nowait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_nowait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
