#!/usr/bin/env python3
"""Merge before/after bench reports into a BENCH_<name>.json baseline.

The perf trajectory (ROADMAP) is a series of BENCH_*.json files at the
repo root, one per PR that claims a performance effect. Each file pairs
a "before" and an "after" sweep of the same bench commands and distills
the hot-path metrics the PR is gating on, so reviewers (and later PRs)
can diff the numbers without rerunning anything.

Usage:
  tools/make_bench_baseline.py --pr 6 \
      --label before=/tmp/bench_before --label after=/tmp/bench_after \
      --out BENCH_hotpath.json

Each labeled directory may contain:
  micro.json         google-benchmark --benchmark_out format
  fig9_*.json        CKPT_BENCH_REPORT run reports (rows + metrics)
Missing files are skipped with a note, so partial sweeps still merge.
"""

import argparse
import json
import os
import sys


def _load(path):
    with open(path) as f:
        return json.load(f)


def _agg(ranks, key):
    """Sum a per-rank scalar or histogram-summary 'sum' across ranks."""
    total = 0.0
    for rk in ranks:
        v = rk.get(key)
        if isinstance(v, dict):
            total += float(v.get("sum", 0.0))
        elif v is not None:
            total += float(v)
    return total


def summarize_run_report(report):
    """One entry per bench row: throughputs plus the contention metrics."""
    rows = []
    for row in report.get("rows", []):
        ranks = row.get("metrics", {}).get("ranks", [])
        entry = {
            "config": row.get("config"),
            "variant": row.get("variant"),
            "ckpt_MBps": row.get("ckpt_MBps"),
            "restore_MBps": row.get("restore_MBps"),
            "wall_s": row.get("wall_s"),
        }
        if ranks:
            entry["hotpath"] = {
                "reserve_wait_write_s": _agg(ranks, "reserve_wait_write_s"),
                "reserve_wait_prefetch_s": _agg(ranks, "reserve_wait_prefetch_s"),
                "ckpt_block_s": _agg(ranks, "ckpt_block_s"),
                "restore_block_s": _agg(ranks, "restore_block_s"),
                "reserve_rounds": _agg(ranks, "reserve_rounds"),
                "reserve_plans_stale": _agg(ranks, "reserve_plans_stale"),
            }
        # Lineage ledger (PR 10): conservation counters plus per-durable-tier
        # durability-lag percentiles (put -> first durable ack, seconds).
        merged = row.get("metrics", {}).get("merged", {})
        lineage = merged.get("lineage")
        if lineage:
            entry["lineage"] = lineage
            lag = merged.get("durability_lag_s", {})
            if lag:
                entry["durability_lag_s"] = {
                    tier: {
                        "total": h.get("total"),
                        "p50": h.get("p50"),
                        "p95": h.get("p95"),
                        "max": h.get("max"),
                    }
                    for tier, h in lag.items()
                }
        # Remote/aggregating terminal tiers (PR 9): per-tier store counters.
        # The aggregation factor a PR gates on is member_puts / remote_puts.
        remote = row.get("metrics", {}).get("remote_tiers", [])
        if remote:
            entry["remote"] = [
                {
                    "tier": t.get("name"),
                    "remote_puts": t.get("remote_puts"),
                    "remote_parts": t.get("remote_parts"),
                    "remote_part_retries": t.get("remote_part_retries"),
                    "remote_put_bytes": t.get("remote_put_bytes"),
                    "agg_member_puts": t.get("agg_member_puts"),
                    "agg_group_puts": t.get("agg_group_puts"),
                    "agg_size_flushes": t.get("agg_size_flushes"),
                    "agg_deadline_flushes": t.get("agg_deadline_flushes"),
                    "agg_gets_from_pending": t.get("agg_gets_from_pending"),
                }
                for t in remote
            ]
        rows.append(entry)
    return rows


def summarize_micro(report):
    """name -> real_time (ns unless the bench says otherwise)."""
    out = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = {
            "real_time": b.get("real_time"),
            "time_unit": b.get("time_unit", "ns"),
        }
    return out


def summarize_dir(path):
    summary = {}
    micro = os.path.join(path, "micro.json")
    if os.path.exists(micro):
        summary["micro"] = summarize_micro(_load(micro))
    else:
        print(f"note: {micro} missing, skipped", file=sys.stderr)
    for name in sorted(os.listdir(path)):
        if name.startswith("fig") and name.endswith(".json"):
            key = name[: -len(".json")]
            summary[key] = summarize_run_report(_load(os.path.join(path, name)))
    if not summary:
        raise SystemExit(f"error: no bench reports found in {path}")
    return summary


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--pr", type=int, required=True)
    ap.add_argument(
        "--label",
        action="append",
        required=True,
        metavar="NAME=DIR",
        help="labeled report directory, e.g. before=/tmp/bench_before",
    )
    ap.add_argument("--note", default="", help="free-form context line")
    ap.add_argument("--out", required=True)
    args = ap.parse_args()

    doc = {"pr": args.pr}
    if args.note:
        doc["note"] = args.note
    for spec in args.label:
        name, _, path = spec.partition("=")
        if not path:
            ap.error(f"--label must be NAME=DIR, got {spec!r}")
        doc[name] = summarize_dir(path)

    with open(args.out, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
