// telemetry_check: validator for OpenMetrics payloads scraped from the
// engine (VELOCX_Telemetry_scrape, the harness's <out>.openmetrics.txt, or
// a flight-recorder dump). Used by CI after telemetry-enabled runs:
//
//   telemetry_check scrape.txt [--require FAMILY ...] [--prev earlier.txt]
//                              [--expect-zero SAMPLE] [--expect-nonzero SAMPLE]
//                              [--require-label KEY=VALUE ...]
//
// Exits 0 when the payload parses as valid OpenMetrics text (name/label
// charsets, TYPE-before-samples, counter `_total` convention, escaped label
// values, trailing `# EOF`), contains at least one sample for every
// --require'd family, and — with --prev — no counter went backwards since
// the earlier scrape. --expect-zero/--expect-nonzero assert on one sample
// key (exact "name{labels}" form, or a bare family name to sum all of its
// samples): CI uses --expect-zero on ckpt_watchdog_stalls_total for healthy
// runs and --expect-nonzero on it for the forced-stall run.
// --require-label KEY=VALUE asserts at least one sample carries that exact
// label pair (multi-tenant CI scrapes require tenant=<name> per tenant).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <string>
#include <vector>

#include "core/telemetry_sink.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scrape.txt> [--require FAMILY ...] [--prev FILE]\n"
               "          [--expect-zero SAMPLE] [--expect-nonzero SAMPLE]\n"
               "          [--require-label KEY=VALUE ...]\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  out = buf.str();
  return true;
}

/// Resolves a selector the way a human writes it: a counter family name
/// selects its `_total` samples, a histogram family its `_count` samples,
/// anything else selects itself.
std::string ResolveSelector(const ckpt::core::TelemetryCheck& ck,
                            const std::string& sel) {
  const auto it = ck.family_type.find(sel);
  if (it != ck.family_type.end() && it->second == "counter") {
    return sel + "_total";
  }
  if (it != ck.family_type.end() && it->second == "histogram") {
    return sel + "_count";
  }
  return sel;
}

/// Sum of every sample whose key is `sel` exactly, or whose metric name
/// (the part before '{') equals `sel`.
double SumSelected(const ckpt::core::TelemetryCheck& ck,
                   const std::string& sel, std::size_t& matches) {
  double sum = 0.0;
  matches = 0;
  for (const auto& [key, v] : ck.values) {
    const std::size_t brace = key.find('{');
    const std::string name =
        brace == std::string::npos ? key : key.substr(0, brace);
    if (key == sel || name == sel) {
      sum += v;
      ++matches;
    }
  }
  return sum;
}

/// Samples carrying the exact label pair `KEY="VALUE"` (matched at label
/// boundaries inside the rendered block, never against label values).
std::size_t CountLabelMatches(const ckpt::core::TelemetryCheck& ck,
                              const std::string& key,
                              const std::string& value) {
  const std::string needle = key + "=\"" + value + "\"";
  std::size_t matches = 0;
  for (const auto& [sample, v] : ck.values) {
    (void)v;
    const std::size_t brace = sample.find('{');
    if (brace == std::string::npos) continue;
    std::size_t pos = sample.find(needle, brace);
    while (pos != std::string::npos) {
      const char before = sample[pos - 1];
      const std::size_t end = pos + needle.size();
      const char after = end < sample.size() ? sample[end] : '\0';
      if ((before == '{' || before == ',') && (after == ',' || after == '}')) {
        ++matches;
        break;
      }
      pos = sample.find(needle, pos + 1);
    }
  }
  return matches;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string path = argv[1];
  std::vector<std::string> required;
  std::vector<std::string> expect_zero;
  std::vector<std::string> expect_nonzero;
  std::vector<std::pair<std::string, std::string>> required_labels;
  std::string prev_path;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--require-label") == 0 && i + 1 < argc) {
      const std::string kv = argv[++i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr,
                     "telemetry_check: --require-label wants KEY=VALUE, got "
                     "'%s'\n",
                     kv.c_str());
        return 2;
      }
      required_labels.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (std::strcmp(argv[i], "--prev") == 0 && i + 1 < argc) {
      prev_path = argv[++i];
    } else if (std::strcmp(argv[i], "--expect-zero") == 0 && i + 1 < argc) {
      expect_zero.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--expect-nonzero") == 0 && i + 1 < argc) {
      expect_nonzero.emplace_back(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }

  std::string text;
  if (!ReadFile(path, text)) {
    std::fprintf(stderr, "telemetry_check: cannot open %s\n", path.c_str());
    return 2;
  }
  const ckpt::core::TelemetryCheck check =
      ckpt::core::ValidateOpenMetrics(text);
  std::printf("%s: %zu families, %zu samples\n", path.c_str(), check.families,
              check.samples);
  if (!check.ok) {
    std::fprintf(stderr, "telemetry_check: INVALID: %s\n",
                 check.error.c_str());
    return 1;
  }

  int failures = 0;
  for (const std::string& fam : required) {
    if (check.family_type.count(fam) == 0) {
      std::fprintf(stderr, "telemetry_check: family '%s' not declared\n",
                   fam.c_str());
      ++failures;
      continue;
    }
    std::size_t matches = 0;
    (void)SumSelected(check, ResolveSelector(check, fam), matches);
    if (matches == 0) {
      std::fprintf(stderr, "telemetry_check: family '%s' has no samples\n",
                   fam.c_str());
      ++failures;
    }
  }
  for (const auto& [lkey, lvalue] : required_labels) {
    const std::size_t matches = CountLabelMatches(check, lkey, lvalue);
    if (matches == 0) {
      std::fprintf(stderr,
                   "telemetry_check: no sample carries label %s=\"%s\"\n",
                   lkey.c_str(), lvalue.c_str());
      ++failures;
    } else {
      std::printf("label %s=\"%s\": %zu sample(s)\n", lkey.c_str(),
                  lvalue.c_str(), matches);
    }
  }
  for (const std::string& raw : expect_zero) {
    const std::string sel = ResolveSelector(check, raw);
    std::size_t matches = 0;
    const double sum = SumSelected(check, sel, matches);
    if (matches == 0) {
      std::fprintf(stderr, "telemetry_check: --expect-zero '%s' matched nothing\n",
                   sel.c_str());
      ++failures;
    } else if (sum != 0.0) {
      std::fprintf(stderr,
                   "telemetry_check: expected '%s' == 0, got %g over %zu sample(s)\n",
                   sel.c_str(), sum, matches);
      ++failures;
    }
  }
  for (const std::string& raw : expect_nonzero) {
    const std::string sel = ResolveSelector(check, raw);
    std::size_t matches = 0;
    const double sum = SumSelected(check, sel, matches);
    if (matches == 0 || sum == 0.0) {
      std::fprintf(stderr,
                   "telemetry_check: expected '%s' > 0, got %g over %zu sample(s)\n",
                   sel.c_str(), sum, matches);
      ++failures;
    }
  }
  if (!prev_path.empty()) {
    std::string prev_text;
    if (!ReadFile(prev_path, prev_text)) {
      std::fprintf(stderr, "telemetry_check: cannot open %s\n",
                   prev_path.c_str());
      return 2;
    }
    const ckpt::core::TelemetryCheck prev =
        ckpt::core::ValidateOpenMetrics(prev_text);
    if (!prev.ok) {
      std::fprintf(stderr, "telemetry_check: --prev INVALID: %s\n",
                   prev.error.c_str());
      return 1;
    }
    const ckpt::util::Status st =
        ckpt::core::CheckCounterMonotonic(prev, check);
    if (!st.ok()) {
      std::fprintf(stderr, "telemetry_check: %s\n", st.ToString().c_str());
      ++failures;
    }
  }
  if (failures > 0) return 1;
  std::printf("telemetry_check: OK\n");
  return 0;
}
