// trace_check: structural validator for emitted Chrome trace-event JSON.
// Used by CI after a traced bench run and handy for eyeballing a dump:
//
//   trace_check trace.json [--require CAT ...]
//
// Exits 0 when the trace is well-formed, non-empty, per-track monotonic,
// and contains at least one complete span for every --require'd category
// (lifecycle, flush, prefetch, eviction, retry, app). Prints a summary
// either way.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace_sink.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--require CAT ...]\n"
               "  CAT: lifecycle | flush | prefetch | eviction | retry | app\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string path = argv[1];
  std::vector<std::string> required;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }

  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  const ckpt::core::TraceCheck check = ckpt::core::ValidateChromeTrace(text);
  std::printf("%s: %zu events (%zu spans, %zu instants) on %zu tracks\n",
              path.c_str(), check.events, check.spans, check.instants,
              check.tracks);
  for (const auto& [cat, n] : check.spans_per_category) {
    std::printf("  %-10s %zu spans\n", cat.c_str(), n);
  }
  if (!check.ok) {
    std::fprintf(stderr, "trace_check: INVALID: %s\n", check.error.c_str());
    return 1;
  }
  int missing = 0;
  for (const std::string& cat : required) {
    if (check.spans_in(cat) == 0) {
      std::fprintf(stderr, "trace_check: no '%s' spans in trace\n",
                   cat.c_str());
      ++missing;
    }
  }
  if (missing > 0) return 1;
  std::printf("trace_check: OK\n");
  return 0;
}
