// trace_check: structural validator for emitted Chrome trace-event JSON.
// Used by CI after a traced bench run and handy for eyeballing a dump:
//
//   trace_check trace.json [--require CAT ...] [--require-flow CAT ...]
//                          [--summary]
//
// Exits 0 when the trace is well-formed, non-empty, per-track monotonic,
// every flow finish binds to a prior start of the same id (ring wraps
// excepted), and contains at least one complete span for every --require'd
// category and at least one flow event for every --require-flow'd category
// (lifecycle, flush, prefetch, eviction, retry, app, health). Prints the
// per-category span counts either way; --summary adds flow totals
// (starts/steps/finishes, dangling ids, wrap markers) and a per-track table
// (events, spans, total/max span duration) so a dump's thread balance is
// visible without loading Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace_sink.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <trace.json> [--require CAT ...] [--require-flow CAT ...]\n"
      "          [--summary]\n"
      "  CAT: lifecycle | flush | prefetch | eviction | retry | app | health\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string path = argv[1];
  std::vector<std::string> required;
  std::vector<std::string> required_flows;
  bool summary = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--require-flow") == 0 && i + 1 < argc) {
      required_flows.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--summary") == 0) {
      summary = true;
    } else {
      return Usage(argv[0]);
    }
  }

  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  const ckpt::core::TraceCheck check = ckpt::core::ValidateChromeTrace(text);
  std::printf("%s: %zu events (%zu spans, %zu instants) on %zu tracks\n",
              path.c_str(), check.events, check.spans, check.instants,
              check.tracks);
  for (const auto& [cat, n] : check.spans_per_category) {
    std::printf("  %-10s %zu spans\n", cat.c_str(), n);
  }
  if (summary) {
    std::printf(
        "flows: %zu ids (%zu starts, %zu steps, %zu finishes), "
        "%zu dangling, %zu unbound, %zu wraps\n",
        check.flows, check.flow_starts, check.flow_steps, check.flow_finishes,
        check.flows_dangling, check.flows_unbound, check.wraps);
    for (const auto& [cat, n] : check.flows_per_category) {
      std::printf("  flow %-10s %zu events\n", cat.c_str(), n);
    }
    std::printf("per-track summary:\n");
    std::printf("  %-28s %8s %8s %14s %12s\n", "track", "events", "spans",
                "total_dur_ms", "max_dur_ms");
    for (const auto& t : check.track_stats) {
      const std::string label =
          t.name.empty() ? "pid " + std::to_string(t.pid) + " tid " +
                               std::to_string(t.tid)
                         : t.name;
      std::printf("  %-28s %8zu %8zu %14.3f %12.3f\n", label.c_str(), t.events,
                  t.spans, t.total_dur_us / 1e3, t.max_dur_us / 1e3);
    }
  }
  if (!check.ok) {
    std::fprintf(stderr, "trace_check: INVALID: %s\n", check.error.c_str());
    return 1;
  }
  int missing = 0;
  for (const std::string& cat : required) {
    if (check.spans_in(cat) == 0) {
      std::fprintf(stderr, "trace_check: no '%s' spans in trace\n",
                   cat.c_str());
      ++missing;
    }
  }
  for (const std::string& cat : required_flows) {
    if (check.flows_in(cat) == 0) {
      std::fprintf(stderr, "trace_check: no '%s' flow events in trace\n",
                   cat.c_str());
      ++missing;
    }
  }
  if (missing > 0) return 1;
  std::printf("trace_check: OK\n");
  return 0;
}
