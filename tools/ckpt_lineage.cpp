// ckpt_lineage: per-checkpoint lineage auditor over a Chrome trace dump
// (DESIGN.md §14). Stitches the flow events the engine and stores emit
// under CKPT_LINEAGE=1 back into per-object causal chains and checks the
// conservation invariant: every admitted object terminates in exactly one
// of {durable, degraded, lost, erased}.
//
//   ckpt_lineage <trace.json> [--audit] [--timeline] [--limit N]
//                             [--object RANK:VERSION]
//
// Default output is a one-screen summary: object/outcome counts, group
// (agg:*) flow counts, and durability-lag percentiles (ckpt:admit start ->
// first ack:* step; objects that never became durable are excluded, same
// as the ckpt_durability_lag_seconds histogram). --timeline prints the hop
// sequence of the first --limit object flows (default 20); --object prints
// one object's full timeline. --audit turns conservation violations into a
// nonzero exit: an admitted object with no terminal is an *orphan* (exit 1)
// unless the ring wrapped (trace:wrap markers present), in which case
// incomplete flows downgrade to *unauditable* (reported, exit 0) — a wrap
// means the evidence was dropped, not that the object leaked. A flow with
// more terminals than starts is always an error.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace_sink.hpp"
#include "util/json.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--audit] [--timeline] [--limit N]\n"
               "          [--object RANK:VERSION]\n",
               argv0);
  return 2;
}

/// One flow event (s/t/f) lifted out of the trace, trimmed to the fields
/// the auditor reasons about.
struct Hop {
  double ts_us = 0.0;
  std::string name;
  char phase = '?';  ///< 's' | 't' | 'f'
  int tier = -1;
  std::uint64_t bytes = 0;
};

/// All events sharing one flow id, stitched back together.
struct Flow {
  std::uint64_t id = 0;
  int rank = 0;
  std::uint64_t version = 0;
  std::vector<Hop> hops;  ///< sorted by ts
  std::size_t starts = 0;
  std::size_t finishes = 0;
  bool is_object = false;  ///< started by ckpt:admit (vs agg:* group flows)
  bool is_group = false;
};

enum class Outcome { kInFlight, kDurable, kDegraded, kLost, kErased };

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kDurable: return "durable";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kLost: return "lost";
    case Outcome::kErased: return "erased";
    default: return "in-flight";
  }
}

/// Maps a terminal flow-event name to its outcome. Reasons ride as name
/// suffixes ("flow:erased:cancelled"), so match on prefix.
Outcome OutcomeOf(const std::string& name) {
  if (name.rfind("flow:durable", 0) == 0) return Outcome::kDurable;
  if (name.rfind("flow:degraded", 0) == 0) return Outcome::kDegraded;
  if (name.rfind("flow:lost", 0) == 0) return Outcome::kLost;
  if (name.rfind("flow:erased", 0) == 0) return Outcome::kErased;
  return Outcome::kInFlight;
}

/// Last terminal hop's outcome (overwritten objects re-start the same id;
/// the final disposition is the one that counts).
Outcome FlowOutcome(const Flow& f) {
  Outcome out = Outcome::kInFlight;
  for (const Hop& h : f.hops) {
    if (h.phase != 'f') continue;
    const Outcome o = OutcomeOf(h.name);
    if (o != Outcome::kInFlight) out = o;
  }
  return out;
}

/// admit -> first durable ack in microseconds; negative when never acked.
double LagUs(const Flow& f) {
  double admit = -1.0;
  double ack = -1.0;
  for (const Hop& h : f.hops) {
    if (admit < 0.0 && h.name == "ckpt:admit") admit = h.ts_us;
    if (ack < 0.0 && h.name.rfind("ack:", 0) == 0) ack = h.ts_us;
  }
  if (admit < 0.0 || ack < 0.0 || ack < admit) return -1.0;
  return ack - admit;
}

/// Nearest-rank percentile over a sorted sample vector.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (static_cast<double>(idx) < rank) ++idx;
  if (idx == 0) idx = 1;
  if (idx > sorted.size()) idx = sorted.size();
  return sorted[idx - 1];
}

void PrintTimeline(const Flow& f) {
  const Outcome out = FlowOutcome(f);
  const double lag = LagUs(f);
  std::printf("rank %d v%" PRIu64 " (flow 0x%" PRIx64 "): %s", f.rank,
              f.version, f.id, to_string(out));
  if (lag >= 0.0) std::printf(", durable after %.3f ms", lag / 1e3);
  std::printf("\n");
  const double t0 = f.hops.empty() ? 0.0 : f.hops.front().ts_us;
  for (const Hop& h : f.hops) {
    std::printf("  %10.3f ms  [%c] %-28s", (h.ts_us - t0) / 1e3, h.phase,
                h.name.c_str());
    if (h.tier >= 0) std::printf("  tier %d", h.tier);
    if (h.bytes > 0) std::printf("  %" PRIu64 " B", h.bytes);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string path = argv[1];
  bool audit = false;
  bool timeline = false;
  std::size_t limit = 20;
  bool want_object = false;
  int want_rank = 0;
  std::uint64_t want_version = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0) {
      audit = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
      limit = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--object") == 0 && i + 1 < argc) {
      const char* spec = argv[++i];
      const char* colon = std::strchr(spec, ':');
      if (colon == nullptr) {
        std::fprintf(stderr,
                     "ckpt_lineage: --object wants RANK:VERSION, got '%s'\n",
                     spec);
        return 2;
      }
      want_object = true;
      want_rank = std::atoi(spec);
      want_version = std::strtoull(colon + 1, nullptr, 10);
    } else {
      return Usage(argv[0]);
    }
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ckpt_lineage: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Structural validation first: a malformed trace is not auditable, and
  // the checker's wrap count decides orphan-vs-unauditable below.
  const ckpt::core::TraceCheck check = ckpt::core::ValidateChromeTrace(text);
  if (!check.ok && check.wraps == 0) {
    std::fprintf(stderr, "ckpt_lineage: trace invalid: %s\n",
                 check.error.c_str());
    return 1;
  }

  const auto parsed = ckpt::util::json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "ckpt_lineage: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const ckpt::util::json::Value* events = parsed.value().Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "ckpt_lineage: no traceEvents array in %s\n",
                 path.c_str());
    return 1;
  }

  std::map<std::uint64_t, Flow> flows;
  std::size_t flow_events = 0;
  std::size_t wrap_markers = 0;
  for (const auto& ev : events->as_array()) {
    const auto* ph = ev.Find("ph");
    const auto* name = ev.Find("name");
    if (ph == nullptr || name == nullptr) continue;
    if (name->as_string() == "trace:wrap") ++wrap_markers;
    const std::string& p = ph->as_string();
    if (p != "s" && p != "t" && p != "f") continue;
    const auto* id = ev.Find("id");
    const auto* ts = ev.Find("ts");
    if (id == nullptr || !id->is_string() || ts == nullptr) continue;
    const std::uint64_t fid =
        std::strtoull(id->as_string().c_str(), nullptr, 0);
    if (fid == 0) continue;
    ++flow_events;

    Flow& f = flows[fid];
    f.id = fid;
    Hop h;
    h.ts_us = ts->as_number();
    h.name = name->as_string();
    h.phase = p[0];
    if (const auto* args = ev.Find("args"); args != nullptr) {
      if (const auto* tier = args->Find("tier"))
        h.tier = static_cast<int>(tier->as_number(-1));
      if (const auto* bytes = args->Find("bytes"))
        h.bytes = static_cast<std::uint64_t>(bytes->as_number());
      if (const auto* rank = args->Find("rank"))
        f.rank = static_cast<int>(rank->as_number());
      if (const auto* version = args->Find("version"))
        f.version = static_cast<std::uint64_t>(version->as_number());
    }
    if (p == "s") ++f.starts;
    if (p == "f") ++f.finishes;
    if (h.name == "ckpt:admit") f.is_object = true;
    // Member-side agg:seal steps ride the *object's* flow id, so only the
    // group-scoped events mark a flow as a group flow; an object flow that
    // also saw agg: steps stays an object flow (is_object wins below).
    if (h.name == "agg:open" || h.name == "agg:landed" ||
        h.name == "agg:reclaimed") {
      f.is_group = true;
    }
    f.hops.push_back(std::move(h));
  }

  for (auto& [id, f] : flows) {
    (void)id;
    std::stable_sort(f.hops.begin(), f.hops.end(),
                     [](const Hop& a, const Hop& b) { return a.ts_us < b.ts_us; });
  }

  if (want_object) {
    bool found = false;
    for (const auto& [id, f] : flows) {
      (void)id;
      if (f.is_object && f.rank == want_rank && f.version == want_version) {
        PrintTimeline(f);
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "ckpt_lineage: no flow for rank %d v%" PRIu64 "\n",
                   want_rank, want_version);
      return 1;
    }
    return 0;
  }

  // --- classify ---------------------------------------------------------
  std::size_t objects = 0;
  std::map<Outcome, std::size_t> outcomes;
  std::vector<double> lags_us;
  std::size_t orphans = 0;
  std::size_t unauditable = 0;
  std::size_t over_terminated = 0;
  std::size_t groups = 0, groups_landed = 0, groups_reclaimed = 0,
              groups_open = 0;
  std::vector<const Flow*> orphan_flows;
  const bool wrapped = check.wraps > 0 || wrap_markers > 0;

  for (const auto& [id, f] : flows) {
    (void)id;
    if (f.is_group && !f.is_object) {
      ++groups;
      bool ended = false;
      for (const Hop& h : f.hops) {
        if (h.phase != 'f') continue;
        ended = true;
        if (h.name == "agg:landed") ++groups_landed;
        if (h.name == "agg:reclaimed") ++groups_reclaimed;
      }
      if (!ended) ++groups_open;
      continue;
    }
    if (!f.is_object && f.starts == 0) {
      // Terminal or steps with no start in the buffer: only explicable by
      // a ring wrap eating the admit. Without one, it is a leak of its own.
      if (wrapped) {
        ++unauditable;
      } else {
        ++orphans;
        orphan_flows.push_back(&f);
      }
      continue;
    }
    if (!f.is_object) continue;  // foreign flow category; not ours to audit
    ++objects;
    if (f.finishes > f.starts) {
      ++over_terminated;
      orphan_flows.push_back(&f);
      continue;
    }
    if (f.finishes < f.starts) {
      if (wrapped) {
        ++unauditable;
      } else {
        ++orphans;
        orphan_flows.push_back(&f);
      }
      continue;
    }
    const Outcome out = FlowOutcome(f);
    ++outcomes[out];
    const double lag = LagUs(f);
    if (lag >= 0.0) lags_us.push_back(lag);
  }
  std::sort(lags_us.begin(), lags_us.end());

  // --- report -----------------------------------------------------------
  std::printf("%s: %zu flow events across %zu flows\n", path.c_str(),
              flow_events, flows.size());
  std::printf(
      "objects: %zu admitted | %zu durable, %zu degraded, %zu lost, "
      "%zu erased\n",
      objects, outcomes[Outcome::kDurable], outcomes[Outcome::kDegraded],
      outcomes[Outcome::kLost], outcomes[Outcome::kErased]);
  if (groups > 0) {
    std::printf("groups: %zu | %zu landed, %zu reclaimed, %zu open\n", groups,
                groups_landed, groups_reclaimed, groups_open);
  }
  if (!lags_us.empty()) {
    std::printf(
        "durability lag (n=%zu): p50=%.3f ms p90=%.3f ms p99=%.3f ms "
        "max=%.3f ms\n",
        lags_us.size(), Percentile(lags_us, 50) / 1e3,
        Percentile(lags_us, 90) / 1e3, Percentile(lags_us, 99) / 1e3,
        lags_us.back() / 1e3);
  } else {
    std::printf("durability lag: no object reached a durable tier\n");
  }
  if (wrapped) {
    std::printf("ring wrapped (%zu wrap marker(s)): incomplete flows are "
                "unauditable, not orphans\n",
                std::max(check.wraps, wrap_markers));
  }

  if (timeline) {
    std::size_t shown = 0;
    for (const auto& [id, f] : flows) {
      (void)id;
      if (!f.is_object) continue;
      if (shown++ >= limit) break;
      PrintTimeline(f);
    }
    if (objects > limit) {
      std::printf("... %zu more object flows (raise --limit)\n",
                  objects - limit);
    }
  }

  if (audit) {
    for (const Flow* f : orphan_flows) {
      std::fprintf(stderr,
                   "ckpt_lineage: %s flow 0x%" PRIx64 " rank %d v%" PRIu64
                   " (%zu start(s), %zu terminal(s))\n",
                   f->finishes > f->starts ? "over-terminated" : "orphaned",
                   f->id, f->rank, f->version, f->starts, f->finishes);
    }
    if (orphans > 0 || over_terminated > 0) {
      std::fprintf(stderr,
                   "ckpt_lineage: AUDIT FAILED: %zu orphan(s), %zu "
                   "over-terminated\n",
                   orphans, over_terminated);
      return 1;
    }
    std::printf("audit: PASS (%zu objects conserved, %zu unauditable)\n",
                objects, unauditable);
  }
  return 0;
}
