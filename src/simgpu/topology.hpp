// Node/cluster topology and the shared bandwidth resources that create the
// contention effects the paper measures: two GPUs share each PCIe Gen4 link,
// all processes on a node share the NVMe drives and DDR bandwidth, all nodes
// share the parallel-file-system uplink.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simgpu/types.hpp"
#include "util/rate_limiter.hpp"

namespace ckpt::sim {

/// Bandwidths/latencies of the simulated machine, in bytes/sec. Defaults are
/// the DGX-A100 numbers from the paper (§5.1) scaled: sizes are divided by
/// 1000 elsewhere, bandwidths here by 100, so wall-clock durations shrink by
/// 10x while every ratio that decides "who wins" is preserved.
struct TopologyConfig {
  int nodes = 1;
  int gpus_per_node = 8;
  int gpus_per_pcie_link = 2;   ///< DGX-A100: two GPUs share one PCIe Gen4 link
  int gpus_per_numa_domain = 2; ///< each GPU pair hangs off one NUMA domain
  int nvme_drives_per_node = 4;

  std::uint64_t hbm_capacity = 400ull << 20;      ///< 40 GB/1000 * margin, per GPU
  std::uint64_t d2d_bw = 10ull << 30;             ///< paper: 1 TB/s -> /100
  std::uint64_t pcie_link_bw = 250ull << 20;      ///< paper: 25 GB/s -> /100
  std::uint64_t host_mem_bw = 200ull << 20;       ///< paper: 20 GB/s DDR *per NUMA domain* -> /100
  std::uint64_t nvme_drive_bw = 40ull << 20;      ///< paper: 4 GB/s/drive -> /100
  std::uint64_t pfs_bw = 16ull << 20;             ///< Lustre share, scaled
  std::uint64_t device_alloc_bw = 10ull << 30;    ///< HBM alloc ~ transfer speed
  std::uint64_t pinned_alloc_bw = 40ull << 20;    ///< paper: pinned alloc ~4 GB/s -> /100
  std::uint64_t copy_latency_ns = 5000;           ///< per-op launch overhead

  /// Unscaled paper-faithful numbers, for documentation/tests of ratios.
  static TopologyConfig Paper();
  /// Default scaled config used by tests/benches (the values above).
  static TopologyConfig Scaled();
  /// A tiny, fast config for unit tests (small arenas, high bandwidth).
  static TopologyConfig Testing();

  [[nodiscard]] int total_gpus() const { return nodes * gpus_per_node; }
  [[nodiscard]] int pcie_links_per_node() const {
    return (gpus_per_node + gpus_per_pcie_link - 1) / gpus_per_pcie_link;
  }
  [[nodiscard]] int numa_domains_per_node() const {
    return (gpus_per_node + gpus_per_numa_domain - 1) / gpus_per_numa_domain;
  }
};

/// Owns the shared RateLimiters of the whole simulated cluster. Thread-safe:
/// the limiters themselves synchronize; the structure is immutable after
/// construction.
class Topology {
 public:
  explicit Topology(TopologyConfig config);

  [[nodiscard]] const TopologyConfig& config() const { return config_; }

  /// PCIe link limiter shared by the GPU's pair on its node. The link is
  /// full duplex: the two directions have independent engines (this is what
  /// lets flushes (D2H) overlap prefetch promotions (H2D), §4.3.1).
  enum class LinkDir : std::uint8_t { kD2H = 0, kH2D = 1 };
  [[nodiscard]] util::RateLimiter& pcie_link(GpuId gpu, LinkDir dir) const;
  /// NVMe drive limiter; processes stripe across drives round-robin by rank.
  [[nodiscard]] util::RateLimiter& nvme_drive(int node, int drive) const;
  [[nodiscard]] util::RateLimiter& nvme_for_rank(Rank rank) const;
  /// DDR bandwidth limiter of the NUMA domain serving `gpu`'s pair (the
  /// paper: 8 NUMA domains, only 4 directly GPU-accessible; each GPU pair
  /// contends on its own domain, not on one node-wide pipe).
  [[nodiscard]] util::RateLimiter& host_mem(GpuId gpu) const;
  /// Global PFS uplink limiter.
  [[nodiscard]] util::RateLimiter& pfs() const { return *pfs_; }
  /// Per-GPU on-device copy-engine limiter (D2D path).
  [[nodiscard]] util::RateLimiter& d2d(GpuId gpu) const;

  [[nodiscard]] GpuId gpu_of_rank(Rank rank) const;
  [[nodiscard]] Rank rank_of_gpu(GpuId gpu) const;
  [[nodiscard]] int node_of_rank(Rank rank) const { return gpu_of_rank(rank).node; }

 private:
  TopologyConfig config_;
  std::vector<std::unique_ptr<util::RateLimiter>> pcie_links_;  // node-major, x2 for duplex
  std::vector<std::unique_ptr<util::RateLimiter>> nvme_;        // node-major
  std::vector<std::unique_ptr<util::RateLimiter>> host_mem_;    // per NUMA domain, node-major
  std::vector<std::unique_ptr<util::RateLimiter>> d2d_;         // per GPU
  std::unique_ptr<util::RateLimiter> pfs_;
};

}  // namespace ckpt::sim
