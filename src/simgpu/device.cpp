#include "simgpu/device.hpp"

#include <algorithm>

namespace ckpt::sim {

namespace {
constexpr std::uint64_t AlignUp(std::uint64_t n, std::uint64_t a) {
  return (n + a - 1) / a * a;
}
}  // namespace

Device::Device(GpuId id, std::uint64_t capacity, util::RateLimiter* alloc_limiter)
    : id_(id),
      capacity_(AlignUp(capacity, kAlignment)),
      alloc_limiter_(alloc_limiter),
      arena_(std::make_unique<std::byte[]>(capacity_)) {
  free_list_[0] = capacity_;
}

util::StatusOr<BytePtr> Device::Allocate(std::uint64_t n) {
  if (n == 0) return util::InvalidArgument("Allocate(0)");
  const std::uint64_t need = AlignUp(n, kAlignment);
  std::uint64_t offset = 0;
  {
    std::lock_guard lock(mu_);
    auto it = std::find_if(free_list_.begin(), free_list_.end(),
                           [&](const auto& kv) { return kv.second >= need; });
    if (it == free_list_.end()) {
      return util::OutOfMemory("device " + std::to_string(id_.local) +
                               ": no free block of " + std::to_string(need) +
                               " bytes");
    }
    offset = it->first;
    const std::uint64_t block = it->second;
    free_list_.erase(it);
    if (block > need) free_list_[offset + need] = block - need;
    allocations_[offset] = need;
  }
  // Pay the modeled allocation cost outside the lock, in chunks so the
  // limiter actually shapes it (a single acquire is admitted instantly by
  // the debt model).
  if (alloc_limiter_ != nullptr) {
    constexpr std::uint64_t kChunk = 64ull << 10;
    for (std::uint64_t paid = 0; paid < need; paid += kChunk) {
      alloc_limiter_->Acquire(std::min(kChunk, need - paid));
    }
  }
  return arena_.get() + offset;
}

util::Status Device::Free(BytePtr p) {
  if (!Owns(p)) return util::InvalidArgument("Free: pointer not in arena");
  const auto offset = static_cast<std::uint64_t>(p - arena_.get());
  std::lock_guard lock(mu_);
  auto it = allocations_.find(offset);
  if (it == allocations_.end()) {
    return util::InvalidArgument("Free: not an allocation start");
  }
  std::uint64_t start = offset;
  std::uint64_t size = it->second;
  allocations_.erase(it);

  // Coalesce with the following free block.
  auto next = free_list_.lower_bound(start);
  if (next != free_list_.end() && next->first == start + size) {
    size += next->second;
    free_list_.erase(next);
  }
  // Coalesce with the preceding free block.
  auto prev = free_list_.lower_bound(start);
  if (prev != free_list_.begin()) {
    --prev;
    if (prev->first + prev->second == start) {
      start = prev->first;
      size += prev->second;
      free_list_.erase(prev);
    }
  }
  free_list_[start] = size;
  return util::OkStatus();
}

std::uint64_t Device::used() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [off, size] : allocations_) total += size;
  return total;
}

std::uint64_t Device::free_bytes() const { return capacity_ - used(); }

std::uint64_t Device::largest_free_block() const {
  std::lock_guard lock(mu_);
  std::uint64_t best = 0;
  for (const auto& [off, size] : free_list_) best = std::max(best, size);
  return best;
}

bool Device::Owns(ConstBytePtr p) const noexcept {
  return p >= arena_.get() && p < arena_.get() + capacity_;
}

}  // namespace ckpt::sim
