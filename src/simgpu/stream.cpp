#include "simgpu/stream.hpp"

#include <utility>

namespace ckpt::sim {

void Event::Complete() {
  std::lock_guard lock(mu_);
  complete_ = true;
  cv_.notify_all();
}

void Event::Synchronize() const {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return complete_; });
}

bool Event::Query() const {
  std::lock_guard lock(mu_);
  return complete_;
}

void Event::Reset() {
  std::lock_guard lock(mu_);
  complete_ = false;
}

Stream::Stream(std::string name)
    : name_(std::move(name)), worker_([this] { WorkerLoop(); }) {}

Stream::~Stream() {
  ops_.Close();
  // worker_ (jthread) joins automatically, draining remaining ops first.
}

bool Stream::Enqueue(std::function<void()> op) {
  {
    std::lock_guard lock(mu_);
    ++submitted_;
  }
  if (!ops_.Push(std::move(op))) {
    std::lock_guard lock(mu_);
    --submitted_;
    return false;
  }
  return true;
}

bool Stream::RecordEvent(std::shared_ptr<Event> event) {
  return Enqueue([event = std::move(event)] { event->Complete(); });
}

bool Stream::WaitEvent(std::shared_ptr<Event> event) {
  return Enqueue([event = std::move(event)] { event->Synchronize(); });
}

void Stream::Synchronize() {
  std::uint64_t target;
  {
    std::lock_guard lock(mu_);
    target = submitted_;
  }
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return completed_ >= target; });
}

bool Stream::Idle() const {
  std::lock_guard lock(mu_);
  return completed_ == submitted_;
}

void Stream::WorkerLoop() {
  while (auto op = ops_.Pop()) {
    (*op)();
    {
      std::lock_guard lock(mu_);
      ++completed_;
    }
    cv_.notify_all();
  }
}

}  // namespace ckpt::sim
