#include "simgpu/cluster.hpp"

#include "simgpu/copy.hpp"

namespace ckpt::sim {

Cluster::Cluster(TopologyConfig config) : topology_(config) {
  const int gpus = topology_.config().total_gpus();
  devices_.reserve(static_cast<std::size_t>(gpus));
  alloc_limiters_.reserve(static_cast<std::size_t>(gpus));
  for (Rank r = 0; r < gpus; ++r) {
    alloc_limiters_.push_back(std::make_unique<util::RateLimiter>(
        topology_.config().device_alloc_bw, 1ull << 20));
    devices_.push_back(std::make_unique<Device>(topology_.gpu_of_rank(r),
                                                topology_.config().hbm_capacity,
                                                alloc_limiters_.back().get()));
  }
}

Device& Cluster::device(Rank rank) {
  return *devices_.at(static_cast<std::size_t>(rank));
}

util::Status Cluster::Memcpy(Rank rank, BytePtr dst, ConstBytePtr src,
                             std::uint64_t n, MemcpyKind kind) {
  return ThrottledMemcpy(topology_, topology_.gpu_of_rank(rank), dst, src, n, kind);
}

}  // namespace ckpt::sim
