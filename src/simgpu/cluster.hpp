// Cluster facade: the whole simulated machine — topology (shared bandwidth
// resources) plus one Device per GPU. One Cluster instance is shared by all
// process threads of an experiment, exactly as the physical node is shared
// by all MPI ranks.
#pragma once

#include <memory>
#include <vector>

#include "simgpu/device.hpp"
#include "simgpu/topology.hpp"

namespace ckpt::sim {

class Cluster {
 public:
  explicit Cluster(TopologyConfig config);

  [[nodiscard]] Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const TopologyConfig& config() const noexcept {
    return topology_.config();
  }

  [[nodiscard]] Device& device(Rank rank);
  [[nodiscard]] int total_gpus() const { return config().total_gpus(); }

  /// Blocking, bandwidth-throttled copy attributed to `rank`'s GPU.
  util::Status Memcpy(Rank rank, BytePtr dst, ConstBytePtr src, std::uint64_t n,
                      MemcpyKind kind);

 private:
  Topology topology_;
  std::vector<std::unique_ptr<Device>> devices_;
  // Per-GPU allocation limiters (HBM allocation bandwidth model).
  std::vector<std::unique_ptr<util::RateLimiter>> alloc_limiters_;
};

}  // namespace ckpt::sim
