// Throttled memory transfers. Copies move real bytes (memcpy) in chunks,
// acquiring bandwidth tokens from the topology's shared limiters per chunk,
// so concurrent transfers genuinely interleave and contend exactly where the
// hardware would make them contend (PCIe link, DDR, NVMe, PFS).
#pragma once

#include <cstdint>

#include "simgpu/topology.hpp"
#include "simgpu/types.hpp"
#include "util/status.hpp"

namespace ckpt::sim {

/// Transfer chunk granularity. Small enough that two concurrent copies on a
/// shared link interleave finely; large enough that limiter overhead is
/// negligible.
inline constexpr std::uint64_t kCopyChunk = 64ull << 10;

/// Fair-queuing attribution for a transfer: which flow (tenant) pays for it
/// and with what bandwidth share. The default flow 0 / weight 1 reproduces
/// plain FIFO admission on every limiter (see util/rate_limiter.hpp).
struct Flow {
  int id = 0;
  double weight = 1.0;
};

/// Synchronous throttled copy attributed to GPU `gpu`:
///  - kD2D  pays the GPU's on-device copy-engine bandwidth;
///  - kD2H / kH2D pay the GPU pair's shared PCIe link, then node DDR;
///  - kH2H  pays node DDR only.
/// A fixed per-operation launch latency (config.copy_latency_ns) is paid
/// once. `flow` tags the limiter grants for weighted fair sharing between
/// tenants (the Charge* helpers below stay on the default flow — storage
/// timing charges are not yet tenant-attributed). Returns kInvalidArgument
/// for null pointers or n == 0.
util::Status ThrottledMemcpy(const Topology& topo, GpuId gpu, BytePtr dst,
                             ConstBytePtr src, std::uint64_t n, MemcpyKind kind,
                             Flow flow = {});

/// Pays storage bandwidth for `n` bytes written to / read from the NVMe
/// drive assigned to `rank` (no data movement; the SSD tier moves the bytes
/// through file I/O and calls this for timing).
void ChargeNvme(const Topology& topo, Rank rank, std::uint64_t n);

/// Pays the global PFS uplink for `n` bytes.
void ChargePfs(const Topology& topo, std::uint64_t n);

/// Pays PCIe link + host DDR bandwidth for `n` bytes without moving data
/// (used by the UVM simulation, where page migrations are pure bookkeeping
/// over the host-backed truth but must cost real link time). `dir` selects
/// the duplex engine: kH2D for migrations in, kD2H for writebacks.
void ChargePcie(const Topology& topo, GpuId gpu, std::uint64_t n,
                Topology::LinkDir dir = Topology::LinkDir::kH2D);

/// Pays on-device copy-engine bandwidth for `n` bytes without moving data.
void ChargeD2D(const Topology& topo, GpuId gpu, std::uint64_t n);

/// Pays PCIe link bandwidth only — no host DDR — for `n` bytes. Models
/// GPUDirect Storage DMA between the GPU and the NVMe drive, which bypasses
/// the host memory path entirely (the paper's §6 future-work item).
void ChargePcieLinkOnly(const Topology& topo, GpuId gpu, std::uint64_t n,
                        Topology::LinkDir dir);

/// Pays the NUMA-domain DDR bandwidth of `gpu`'s pair without moving data.
void ChargeHostMem(const Topology& topo, GpuId gpu, std::uint64_t n);

}  // namespace ckpt::sim
