#include "simgpu/copy.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/clock.hpp"

namespace ckpt::sim {

util::Status ThrottledMemcpy(const Topology& topo, GpuId gpu, BytePtr dst,
                             ConstBytePtr src, std::uint64_t n, MemcpyKind kind,
                             Flow flow) {
  if (dst == nullptr || src == nullptr) {
    return util::InvalidArgument("ThrottledMemcpy: null pointer");
  }
  if (n == 0) return util::InvalidArgument("ThrottledMemcpy: zero length");

  const auto& cfg = topo.config();
  if (cfg.copy_latency_ns > 0) {
    util::PreciseSleep(std::chrono::nanoseconds(cfg.copy_latency_ns));
  }

  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(kCopyChunk, n - done);
    switch (kind) {
      case MemcpyKind::kD2D:
        topo.d2d(gpu).Acquire(chunk, flow.id, flow.weight);
        break;
      case MemcpyKind::kD2H:
        topo.pcie_link(gpu, Topology::LinkDir::kD2H)
            .Acquire(chunk, flow.id, flow.weight);
        topo.host_mem(gpu).Acquire(chunk, flow.id, flow.weight);
        break;
      case MemcpyKind::kH2D:
        topo.pcie_link(gpu, Topology::LinkDir::kH2D)
            .Acquire(chunk, flow.id, flow.weight);
        topo.host_mem(gpu).Acquire(chunk, flow.id, flow.weight);
        break;
      case MemcpyKind::kH2H:
        topo.host_mem(gpu).Acquire(chunk, flow.id, flow.weight);
        break;
    }
    std::memcpy(dst + done, src + done, chunk);
    done += chunk;
  }
  return util::OkStatus();
}

void ChargeNvme(const Topology& topo, Rank rank, std::uint64_t n) {
  auto& drive = topo.nvme_for_rank(rank);
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(kCopyChunk, n - done);
    drive.Acquire(chunk);
    done += chunk;
  }
}

void ChargePfs(const Topology& topo, std::uint64_t n) {
  auto& pfs = topo.pfs();
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(kCopyChunk, n - done);
    pfs.Acquire(chunk);
    done += chunk;
  }
}

void ChargePcie(const Topology& topo, GpuId gpu, std::uint64_t n,
                Topology::LinkDir dir) {
  auto& link = topo.pcie_link(gpu, dir);
  auto& host = topo.host_mem(gpu);
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(kCopyChunk, n - done);
    link.Acquire(chunk);
    host.Acquire(chunk);
    done += chunk;
  }
}

void ChargePcieLinkOnly(const Topology& topo, GpuId gpu, std::uint64_t n,
                        Topology::LinkDir dir) {
  auto& link = topo.pcie_link(gpu, dir);
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(kCopyChunk, n - done);
    link.Acquire(chunk);
    done += chunk;
  }
}

void ChargeD2D(const Topology& topo, GpuId gpu, std::uint64_t n) {
  auto& engine = topo.d2d(gpu);
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(kCopyChunk, n - done);
    engine.Acquire(chunk);
    done += chunk;
  }
}

void ChargeHostMem(const Topology& topo, GpuId gpu, std::uint64_t n) {
  auto& host = topo.host_mem(gpu);
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(kCopyChunk, n - done);
    host.Acquire(chunk);
    done += chunk;
  }
}

}  // namespace ckpt::sim
