// Core types for the simulated CUDA-like GPU runtime.
//
// SUBSTITUTION NOTE (see DESIGN.md §2): this environment has no physical
// GPU, so "device memory" is a host-RAM arena and transfers are real memcpys
// throttled by token-bucket limiters configured with DGX-A100 bandwidth
// ratios. The checkpoint runtime above consumes only the API + timing
// behaviour of CUDA (ordered async copies on streams, D2D >> D2H bandwidth,
// PCIe links shared between GPU pairs), all of which are preserved.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ckpt::sim {

/// Direction of a memory transfer, mirroring cudaMemcpyKind.
enum class MemcpyKind : std::uint8_t {
  kD2D,  ///< device HBM -> device HBM (same GPU; NVLink path between GPUs)
  kD2H,  ///< device -> pinned host (PCIe, shared per GPU pair)
  kH2D,  ///< pinned host -> device (PCIe, shared per GPU pair)
  kH2H,  ///< host -> host (DDR bandwidth)
};

[[nodiscard]] constexpr const char* to_string(MemcpyKind k) noexcept {
  switch (k) {
    case MemcpyKind::kD2D: return "D2D";
    case MemcpyKind::kD2H: return "D2H";
    case MemcpyKind::kH2D: return "H2D";
    case MemcpyKind::kH2H: return "H2H";
  }
  return "?";
}

/// Byte pointer into a simulated device arena or host memory. The simulation
/// does not need a distinct pointer type; location is tracked by the arena
/// bookkeeping, as with real unified addressing.
using BytePtr = std::byte*;
using ConstBytePtr = const std::byte*;

/// Identifies a GPU within the simulated cluster: node-local index plus node.
struct GpuId {
  int node = 0;
  int local = 0;  ///< index within the node (0..gpus_per_node-1)

  friend bool operator==(const GpuId&, const GpuId&) = default;
};

/// Global flat process rank (one process per GPU, as in the paper).
using Rank = int;

}  // namespace ckpt::sim
