// Simulated GPU device: an HBM-sized host-RAM arena with a first-fit
// suballocator. Allocation pays a modeled cost (HBM allocation bandwidth,
// §4.1.4 of the paper motivates paying it once up front), which the
// checkpoint runtime amortizes by pre-allocating its cache buffer at init.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "simgpu/types.hpp"
#include "util/rate_limiter.hpp"
#include "util/status.hpp"

namespace ckpt::sim {

class Device {
 public:
  /// `alloc_limiter` models allocation bandwidth; nullptr = free allocation.
  Device(GpuId id, std::uint64_t capacity, util::RateLimiter* alloc_limiter);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Allocates `n` bytes of "HBM" (256-byte aligned). Blocks for the modeled
  /// allocation cost. Fails with kOutOfMemory when no fragment fits.
  util::StatusOr<BytePtr> Allocate(std::uint64_t n);

  /// Releases a pointer previously returned by Allocate.
  util::Status Free(BytePtr p);

  [[nodiscard]] GpuId id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t used() const;
  [[nodiscard]] std::uint64_t free_bytes() const;
  /// Largest single allocation currently possible (fragmentation probe).
  [[nodiscard]] std::uint64_t largest_free_block() const;

  /// True if `p` points into this device's arena.
  [[nodiscard]] bool Owns(ConstBytePtr p) const noexcept;

  static constexpr std::uint64_t kAlignment = 256;

 private:
  GpuId id_;
  std::uint64_t capacity_;
  util::RateLimiter* alloc_limiter_;
  std::unique_ptr<std::byte[]> arena_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> free_list_;   // offset -> size
  std::map<std::uint64_t, std::uint64_t> allocations_; // offset -> size
};

}  // namespace ckpt::sim
