#include "simgpu/pinned.hpp"

#include <chrono>

#include "util/clock.hpp"

namespace ckpt::sim {

PinnedArena::PinnedArena(const Topology& topo, int node, std::uint64_t size)
    : data_(std::make_unique<std::byte[]>(size)), size_(size), node_(node) {
  const std::uint64_t bw = topo.config().pinned_alloc_bw;
  if (bw > 0 && size > 0) {
    const util::Stopwatch sw;
    const double secs = static_cast<double>(size) / static_cast<double>(bw);
    util::PreciseSleep(std::chrono::nanoseconds(
        static_cast<std::int64_t>(secs * 1e9)));
    registration_ns_ = sw.ElapsedNs();
  }
}

}  // namespace ckpt::sim
