// Pinned (page-locked) host memory arena. On real hardware, cudaHostAlloc /
// cudaHostRegister runs at only ~4 GB/s on A100 nodes — far below the 25 GB/s
// PCIe transfer rate — which is why the paper pre-allocates and pins the host
// cache once at initialization (§4.1.4). The simulation reproduces that cost:
// constructing a PinnedArena blocks for size / pinned_alloc_bw.
#pragma once

#include <cstdint>
#include <memory>

#include "simgpu/topology.hpp"
#include "simgpu/types.hpp"

namespace ckpt::sim {

class PinnedArena {
 public:
  /// Allocates and "pins" `size` bytes, paying the modeled registration cost
  /// against the topology's pinned-allocation bandwidth.
  PinnedArena(const Topology& topo, int node, std::uint64_t size);

  PinnedArena(const PinnedArena&) = delete;
  PinnedArena& operator=(const PinnedArena&) = delete;
  PinnedArena(PinnedArena&&) = default;
  PinnedArena& operator=(PinnedArena&&) = default;

  [[nodiscard]] BytePtr data() noexcept { return data_.get(); }
  [[nodiscard]] ConstBytePtr data() const noexcept { return data_.get(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] int node() const noexcept { return node_; }

  /// Wall-clock nanoseconds spent in the modeled pin/registration phase.
  [[nodiscard]] std::int64_t registration_ns() const noexcept {
    return registration_ns_;
  }

 private:
  std::unique_ptr<std::byte[]> data_;
  std::uint64_t size_;
  int node_;
  std::int64_t registration_ns_ = 0;
};

}  // namespace ckpt::sim
