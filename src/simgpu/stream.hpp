// CUDA-like asynchronous streams and events. A Stream is a FIFO of
// operations executed by a dedicated worker thread, giving true asynchrony
// and overlap between directions (the engine creates one stream per copy
// direction, mirroring the dedicated copy engines of real GPUs, §4.3.1).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "util/mpmc_queue.hpp"
#include "util/status.hpp"

namespace ckpt::sim {

/// One-shot completion marker, analogous to cudaEvent_t. Reusable after
/// Reset(). Thread-safe.
class Event {
 public:
  Event() = default;

  /// Marks the event complete and wakes waiters.
  void Complete();
  /// Blocks until Complete() has been called.
  void Synchronize() const;
  /// Non-blocking completion probe.
  [[nodiscard]] bool Query() const;
  /// Re-arms the event for reuse. No waiter may be pending.
  void Reset();

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool complete_ = false;
};

class Stream {
 public:
  /// `name` appears in logs ("d2h", "h2f", "pf").
  explicit Stream(std::string name = "stream");
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueues an operation; it runs after every previously enqueued op.
  /// Returns false after the stream has been shut down.
  bool Enqueue(std::function<void()> op);

  /// Enqueues an op that completes `event` when reached (cudaEventRecord).
  bool RecordEvent(std::shared_ptr<Event> event);

  /// Enqueues an op that blocks the stream until `event` completes
  /// (cudaStreamWaitEvent) — cross-stream ordering.
  bool WaitEvent(std::shared_ptr<Event> event);

  /// Blocks until all currently enqueued work has executed.
  void Synchronize();

  /// True when no work is pending or running.
  [[nodiscard]] bool Idle() const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  void WorkerLoop();

  std::string name_;
  util::MpmcQueue<std::function<void()>> ops_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::jthread worker_;
};

}  // namespace ckpt::sim
