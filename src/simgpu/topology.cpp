#include "simgpu/topology.hpp"

#include <stdexcept>

namespace ckpt::sim {

TopologyConfig TopologyConfig::Paper() {
  TopologyConfig c;
  c.hbm_capacity = 40ull << 30;        // 40 GB usable HBM2e per A100
  c.d2d_bw = 1000ull << 30;            // ~1 TB/s
  c.pcie_link_bw = 25ull << 30;        // 25 GB/s pinned D2H/H2D
  c.host_mem_bw = 20ull << 30;         // 20 GB/s DDR4 per the paper
  c.nvme_drive_bw = 4ull << 30;        // 4 GB/s per Gen4 NVMe drive
  c.pfs_bw = 2ull << 30;               // Lustre share per job (approx.)
  c.device_alloc_bw = 1000ull << 30;
  c.pinned_alloc_bw = 4ull << 30;      // pinned allocation ~4 GB/s
  c.copy_latency_ns = 5000;
  return c;
}

TopologyConfig TopologyConfig::Scaled() { return TopologyConfig{}; }

TopologyConfig TopologyConfig::Testing() {
  TopologyConfig c;
  c.nodes = 1;
  c.gpus_per_node = 2;
  c.hbm_capacity = 16ull << 20;
  c.d2d_bw = 0;          // unlimited: tests assert semantics, not timing
  c.pcie_link_bw = 0;
  c.host_mem_bw = 0;
  c.nvme_drive_bw = 0;
  c.pfs_bw = 0;
  c.device_alloc_bw = 0;
  c.pinned_alloc_bw = 0;
  c.copy_latency_ns = 0;
  return c;
}

namespace {
// Two transfer chunks of idle accumulation: enough to avoid quantization
// stalls, small enough that an idle link cannot bank a free megabyte.
constexpr std::uint64_t kBurst = 128ull << 10;
}

Topology::Topology(TopologyConfig config) : config_(config) {
  if (config_.nodes <= 0 || config_.gpus_per_node <= 0 ||
      config_.gpus_per_pcie_link <= 0 || config_.nvme_drives_per_node <= 0 ||
      config_.gpus_per_numa_domain <= 0) {
    throw std::invalid_argument("Topology: counts must be positive");
  }
  const int links = config_.pcie_links_per_node();
  for (int n = 0; n < config_.nodes; ++n) {
    for (int l = 0; l < links; ++l) {
      // Two limiters per link: independent D2H and H2D engines (duplex).
      pcie_links_.push_back(
          std::make_unique<util::RateLimiter>(config_.pcie_link_bw, kBurst));
      pcie_links_.push_back(
          std::make_unique<util::RateLimiter>(config_.pcie_link_bw, kBurst));
    }
    for (int d = 0; d < config_.nvme_drives_per_node; ++d) {
      nvme_.push_back(
          std::make_unique<util::RateLimiter>(config_.nvme_drive_bw, kBurst));
    }
    for (int d = 0; d < config_.numa_domains_per_node(); ++d) {
      host_mem_.push_back(
          std::make_unique<util::RateLimiter>(config_.host_mem_bw, kBurst));
    }
    for (int g = 0; g < config_.gpus_per_node; ++g) {
      d2d_.push_back(std::make_unique<util::RateLimiter>(config_.d2d_bw, kBurst));
    }
  }
  pfs_ = std::make_unique<util::RateLimiter>(config_.pfs_bw, kBurst);
}

util::RateLimiter& Topology::pcie_link(GpuId gpu, LinkDir dir) const {
  const int links = config_.pcie_links_per_node();
  const int link = gpu.local / config_.gpus_per_pcie_link;
  return *pcie_links_.at(static_cast<std::size_t>(
      2 * (gpu.node * links + link) + static_cast<int>(dir)));
}

util::RateLimiter& Topology::nvme_drive(int node, int drive) const {
  return *nvme_.at(
      static_cast<std::size_t>(node * config_.nvme_drives_per_node + drive));
}

util::RateLimiter& Topology::nvme_for_rank(Rank rank) const {
  const GpuId gpu = gpu_of_rank(rank);
  const int drive = gpu.local % config_.nvme_drives_per_node;
  return nvme_drive(gpu.node, drive);
}

util::RateLimiter& Topology::host_mem(GpuId gpu) const {
  const int domains = config_.numa_domains_per_node();
  const int domain = gpu.local / config_.gpus_per_numa_domain;
  return *host_mem_.at(static_cast<std::size_t>(gpu.node * domains + domain));
}

util::RateLimiter& Topology::d2d(GpuId gpu) const {
  return *d2d_.at(static_cast<std::size_t>(gpu.node * config_.gpus_per_node + gpu.local));
}

GpuId Topology::gpu_of_rank(Rank rank) const {
  return GpuId{rank / config_.gpus_per_node, rank % config_.gpus_per_node};
}

Rank Topology::rank_of_gpu(GpuId gpu) const {
  return gpu.node * config_.gpus_per_node + gpu.local;
}

}  // namespace ckpt::sim
