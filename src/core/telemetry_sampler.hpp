// Background telemetry sampler + stall watchdog (DESIGN.md §11).
//
// One TelemetrySampler owns a jthread that periodically snapshots every
// rank's probe cells (Engine::Probe — relaxed atomic reads, never the rank
// lock) into an immutable TelemetrySample published to a lock-free
// SampleRing. Scrapers (OpenMetrics exposition, flight-recorder dumps)
// read the ring without coordinating with the sampler.
//
// On every tick the watchdog inspects the new sample against its per-rank
// detector state:
//   * FSM dwell      — pending-state records exist and the newest FSM
//                      transition stamp has not moved for > stall_ms;
//   * flush progress — a tier's flush queue is non-empty but its landed-byte
//                      counter did not move for `stall_windows` consecutive
//                      samples;
//   * reserve livelock — the stale-eviction-plan counter kept rising for
//                      `stall_windows` consecutive samples.
// A trip charges Engine::NoteStall, emits a `health:stall` trace instant,
// and (once per run, when an out path is configured) dumps the flight
// recorder: `<out>.trace.json`, `<out>.window.json`, `<out>.openmetrics.txt`
// and `<out>.metrics.json`. Detectors latch per (rank, reason[, tier]) and
// re-arm when the condition clears, so a persistent stall trips once, not
// once per tick. In strict mode a trip also marks the run failed
// (strict_tripped()), which the C API surfaces from VELOCX_Finalize.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "util/telemetry.hpp"

namespace ckpt::core {

class TelemetrySampler {
 public:
  struct Options {
    std::int64_t period_ms = 100;   ///< sampler tick period
    std::size_t window = 128;       ///< ring capacity in samples
    bool watchdog = true;           ///< run the stall detectors each tick
    std::int64_t stall_ms = 2000;   ///< FSM dwell bound
    int stall_windows = 3;          ///< consecutive no-progress samples K
    bool strict = false;            ///< a trip fails the run
    std::string out_path;           ///< flight-recorder dump path prefix
    /// When false the constructor does not start the sampling thread;
    /// tests drive ticks explicitly through SampleNow().
    bool start_thread = true;

    /// Copies the process-global util::telemetry::settings().
    [[nodiscard]] static Options FromGlobalConfig();
  };

  /// Starts sampling `engine` (unless opts.start_thread is false). The
  /// engine must outlive the sampler.
  TelemetrySampler(Engine& engine, Options opts);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Stops the sampling thread (idempotent), then records one final sample
  /// so the window always covers the end of the run.
  void Stop();

  /// Takes one sample synchronously (also runs the watchdog). Safe
  /// concurrently with the sampling thread.
  void SampleNow();

  /// Renders the newest sample as OpenMetrics text (sampling first if the
  /// ring is still empty).
  [[nodiscard]] std::string ScrapeOpenMetrics();

  [[nodiscard]] const util::telemetry::SampleRing& ring() const {
    return ring_;
  }
  [[nodiscard]] std::uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool strict_tripped() const {
    return strict_tripped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool flight_dumped() const {
    return flight_dumped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Options& options() const noexcept { return opts_; }

 private:
  /// Per-(rank, tier) flush-progress detector state.
  struct TierWatch {
    bool inited = false;
    std::uint64_t last_flush_bytes = 0;
    int streak = 0;      ///< consecutive no-progress samples
    std::int64_t freeze_since_ts = 0;  ///< sample ts the freeze began
    bool latched = false;
  };
  /// Per-rank detector state.
  struct RankWatch {
    bool dwell_valid = false;
    std::int64_t dwell_stamp = 0;     ///< last_transition_ns last seen
    std::int64_t dwell_since_ts = 0;  ///< sample ts the stamp was first seen
    bool fsm_latched = false;
    bool stale_inited = false;
    std::uint64_t last_plans_stale = 0;
    int stale_streak = 0;
    std::int64_t stale_since_ts = 0;  ///< sample ts the stale run began
    bool reserve_latched = false;
    std::vector<TierWatch> tiers;
  };

  void Tick();
  void RunWatchdog(const util::telemetry::TelemetrySample& cur);
  void Trip(int rank, int tier, Engine::StallKind kind,
            const util::telemetry::TelemetrySample& cur);
  void FlightDump();

  Engine& engine_;
  Options opts_;
  std::vector<std::string> tier_names_;
  util::telemetry::SampleRing ring_;

  /// Serializes Tick() between the sampling thread and SampleNow() callers;
  /// also guards prev_/seq_/watch_. Never held while readers scrape.
  std::mutex tick_mu_;
  util::telemetry::SamplePtr prev_;
  std::uint64_t seq_ = 0;
  std::vector<RankWatch> watch_;

  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<bool> strict_tripped_{false};
  std::atomic<bool> flight_dumped_{false};

  std::jthread thread_;  ///< last member: starts sampling at construction
};

}  // namespace ckpt::core
