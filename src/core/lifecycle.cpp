#include "core/lifecycle.hpp"

#include <string>

namespace ckpt::core {

util::Status CheckTransition(CkptState from, CkptState to) {
  if (TransitionLegal(from, to)) return util::OkStatus();
  return util::FailedPrecondition(
      "illegal checkpoint life-cycle transition " + std::string(to_string(from)) +
      " -> " + std::string(to_string(to)));
}

}  // namespace ckpt::core
