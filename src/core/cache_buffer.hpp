// A contiguous, pre-allocated cache buffer on one storage tier (§4.1.4).
// Pairs an AllocationTable with an EvictionPolicy and exposes the
// plan/commit protocol the engine's blocking reservation loop uses:
//
//   1. Plan(size, meta)  — snapshot the table, attach life-cycle metadata
//      via `meta`, run the policy. Pure; holds no locks of its own.
//   2. If the returned window has wait_eta == 0, Commit() it atomically
//      (caller holds the rank lock throughout, so no state can change
//      between plan and commit). Otherwise wait on the rank cv and re-plan.
//
// Re-planning after each wake (instead of committing to a window and
// sleeping on it, as the paper's pseudocode does) is deliberate: a committed
// window can become permanently unevictable if one of its checkpoints is
// promoted to READ_COMPLETE while we sleep, which deadlocks interleaved
// workloads. Re-planning picks a fresh optimal window each time and
// preserves the scoring semantics. See DESIGN.md §5.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/allocation_table.hpp"
#include "core/eviction.hpp"
#include "simgpu/types.hpp"
#include "util/status.hpp"

namespace ckpt::core {

class CacheBuffer {
 public:
  /// `base` points to `capacity` bytes of pre-allocated (and, for the host
  /// tier, pinned) memory owned by the caller.
  CacheBuffer(std::string name, sim::BytePtr base, std::uint64_t capacity,
              std::unique_ptr<EvictionPolicy> policy);

  CacheBuffer(const CacheBuffer&) = delete;
  CacheBuffer& operator=(const CacheBuffer&) = delete;

  /// Fills life-cycle metadata for one checkpoint fragment. Gaps are scored
  /// internally by the policy and never passed to this callback.
  using MetaFn = std::function<void(EntryId, FragmentView&)>;

  /// Runs the eviction policy for a `size`-byte reservation.
  ///  - kCapacityExceeded: `size` exceeds the whole buffer — caller must
  ///    fall back to a lower tier.
  ///  - kUnavailable: no feasible window right now (every run is blocked by
  ///    excluded fragments) — caller should wait and re-plan.
  ///  - OK: a window; commit it if wait_eta == 0, else wait and re-plan.
  [[nodiscard]] util::StatusOr<EvictionWindow> Plan(std::uint64_t size,
                                                    const MetaFn& meta) const;

  /// Evicts the window's victims and installs `id` in the resulting gap,
  /// returning the byte offset where `id` was placed (the gap may have
  /// coalesced with neighbours, so this can be earlier than window.offset).
  /// The caller must have released the victims' residencies already; the
  /// window must have wait_eta == 0 when planned under the same lock.
  util::StatusOr<std::uint64_t> Commit(const EvictionWindow& window, EntryId id,
                                       std::uint64_t size);

  /// Converts `id`'s fragment back into a gap (explicit release, e.g.
  /// discarding a consumed checkpoint).
  util::Status Release(EntryId id);

  [[nodiscard]] std::optional<Fragment> Find(EntryId id) const {
    return table_.Find(id);
  }
  [[nodiscard]] bool Contains(EntryId id) const { return table_.Contains(id); }

  [[nodiscard]] sim::BytePtr PtrAt(std::uint64_t offset) noexcept {
    return base_ + offset;
  }
  [[nodiscard]] sim::ConstBytePtr PtrAt(std::uint64_t offset) const noexcept {
    return base_ + offset;
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept { return table_.capacity(); }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return table_.used_bytes(); }
  [[nodiscard]] std::uint64_t gap_bytes() const noexcept { return table_.gap_bytes(); }
  [[nodiscard]] std::uint64_t largest_gap() const { return table_.largest_gap(); }
  [[nodiscard]] std::size_t entry_count() const noexcept { return table_.entry_count(); }
  [[nodiscard]] std::size_t fragment_count() const noexcept {
    return table_.fragment_count();
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const AllocationTable& table() const noexcept { return table_; }

  /// Telemetry.
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  [[nodiscard]] std::uint64_t evicted_bytes() const noexcept { return evicted_bytes_; }

 private:
  std::string name_;
  sim::BytePtr base_;
  AllocationTable table_;
  std::unique_ptr<EvictionPolicy> policy_;
  std::uint64_t evictions_ = 0;
  std::uint64_t evicted_bytes_ = 0;
};

}  // namespace ckpt::core
