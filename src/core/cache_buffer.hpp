// A contiguous, pre-allocated cache buffer on one storage tier (§4.1.4).
// Pairs an AllocationTable with an EvictionPolicy and exposes the
// plan/commit protocol the engine's blocking reservation loop uses:
//
//   1. Snapshot()     — copy the table geometry under the buffer's own leaf
//      lock (no rank lock needed). The snapshot carries the table version.
//   2. AnnotateViews()— attach life-cycle metadata via `meta` (the engine
//      calls this under its rank lock, where record states live).
//   3. PlanViews()    — run the eviction policy over the annotated views.
//      Pure: touches neither the table nor any lock, so the O(N) scoring
//      scan runs entirely off the critical section.
//   4. If the returned window has wait_eta == 0 and the table version is
//      unchanged (revalidated under the rank lock), Commit() it. A stale
//      version or a victim that stopped being evictable means re-plan.
//
// Plan() bundles 1-3 for callers that plan under the rank lock (tests).
//
// Locking model (DESIGN.md §10): the buffer owns a leaf mutex guarding the
// allocation table and eviction counters. Mutations (Commit / Release) only
// happen on threads that also hold the engine's rank lock, so a
// rank-lock-holder reads consistent state for free; readers that do NOT
// hold the rank lock (capacity probes, introspection, snapshots) are made
// safe by the leaf mutex alone. Never acquire a rank lock while holding the
// leaf lock.
//
// Re-planning after each wake (instead of committing to a window and
// sleeping on it, as the paper's pseudocode does) is deliberate: a committed
// window can become permanently unevictable if one of its checkpoints is
// promoted to READ_COMPLETE while we sleep, which deadlocks interleaved
// workloads. Re-planning picks a fresh optimal window each time and
// preserves the scoring semantics. See DESIGN.md §5.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/allocation_table.hpp"
#include "core/eviction.hpp"
#include "simgpu/types.hpp"
#include "util/status.hpp"

namespace ckpt::core {

class CacheBuffer {
 public:
  /// `base` points to `capacity` bytes of pre-allocated (and, for the host
  /// tier, pinned) memory owned by the caller.
  CacheBuffer(std::string name, sim::BytePtr base, std::uint64_t capacity,
              std::unique_ptr<EvictionPolicy> policy);

  CacheBuffer(const CacheBuffer&) = delete;
  CacheBuffer& operator=(const CacheBuffer&) = delete;

  /// Fills life-cycle metadata for one checkpoint fragment. Gaps are scored
  /// internally by the policy and never passed to this callback.
  using MetaFn = std::function<void(EntryId, FragmentView&)>;

  /// Point-in-time copy of the table geometry plus the version it had.
  struct TableSnapshot {
    std::vector<Fragment> frags;  ///< offset-ordered, tiling [0, capacity)
    std::uint64_t version = 0;    ///< AllocationTable::version() at the copy
  };

  /// Copies the table under the leaf lock. Safe from any thread.
  [[nodiscard]] TableSnapshot Snapshot() const;

  /// Current table version (leaf lock). A window planned against a snapshot
  /// is geometrically valid iff the version still matches at commit time.
  [[nodiscard]] std::uint64_t table_version() const;

  /// Turns a geometry snapshot into policy inputs by invoking `meta` for
  /// every checkpoint fragment. The caller must hold whatever lock makes
  /// `meta` safe (the engine's rank lock).
  [[nodiscard]] static std::vector<FragmentView> AnnotateViews(
      const std::vector<Fragment>& frags, const MetaFn& meta);

  /// Runs the eviction policy for a `size`-byte reservation over prepared
  /// views. Pure — no table access, no locks; call it with every lock
  /// dropped.
  ///  - kCapacityExceeded: `size` exceeds the whole buffer — caller must
  ///    fall back to a lower tier.
  ///  - kUnavailable: no feasible window right now (every run is blocked by
  ///    excluded fragments) — caller should wait and re-plan.
  ///  - OK: a window; commit it if wait_eta == 0 (after revalidating the
  ///    snapshot version), else wait and re-plan.
  [[nodiscard]] util::StatusOr<EvictionWindow> PlanViews(
      const std::vector<FragmentView>& views, std::uint64_t size) const;

  /// Snapshot + AnnotateViews + PlanViews in one call, for callers that
  /// plan while holding the rank lock (no revalidation needed then).
  [[nodiscard]] util::StatusOr<EvictionWindow> Plan(std::uint64_t size,
                                                    const MetaFn& meta) const;

  /// Evicts the window's victims and installs `id` in the resulting gap,
  /// returning the byte offset where `id` was placed (the gap may have
  /// coalesced with neighbours, so this can be earlier than window.offset).
  /// The caller must have released the victims' residencies already and
  /// revalidated the window against table_version() under the rank lock.
  util::StatusOr<std::uint64_t> Commit(const EvictionWindow& window, EntryId id,
                                       std::uint64_t size);

  /// Converts `id`'s fragment back into a gap (explicit release, e.g.
  /// discarding a consumed checkpoint).
  util::Status Release(EntryId id);

  [[nodiscard]] std::optional<Fragment> Find(EntryId id) const;
  [[nodiscard]] bool Contains(EntryId id) const { return Find(id).has_value(); }

  [[nodiscard]] sim::BytePtr PtrAt(std::uint64_t offset) noexcept {
    return base_ + offset;
  }
  [[nodiscard]] sim::ConstBytePtr PtrAt(std::uint64_t offset) const noexcept {
    return base_ + offset;
  }

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t used_bytes() const;
  [[nodiscard]] std::uint64_t gap_bytes() const;
  [[nodiscard]] std::uint64_t largest_gap() const;
  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::size_t fragment_count() const;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Validates the table's geometric invariants (property tests).
  [[nodiscard]] util::Status CheckTableInvariants() const;

  /// Telemetry.
  [[nodiscard]] std::uint64_t evictions() const;
  [[nodiscard]] std::uint64_t evicted_bytes() const;

 private:
  std::string name_;
  sim::BytePtr base_;
  const std::uint64_t capacity_;
  /// Leaf lock guarding table_ and the eviction counters. See the file
  /// comment for the ordering contract with the engine's rank lock.
  mutable std::mutex mu_;
  AllocationTable table_;
  std::unique_ptr<EvictionPolicy> policy_;
  std::uint64_t evictions_ = 0;
  std::uint64_t evicted_bytes_ = 0;
};

}  // namespace ckpt::core
