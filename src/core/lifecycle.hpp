// Checkpoint life cycle — the finite-state machine of Figure 1.
//
// Every checkpoint instance owns one state that combines the flushing and
// prefetching paths, so concurrent flushes and prefetches targeting the same
// checkpoint coordinate through legal transitions instead of ad-hoc flags
// (paper §4.1.3). Evictability on each cache tier is *derived* from the
// state plus residency information; see engine.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/status.hpp"

namespace ckpt::core {

/// States of Figure 1.
enum class CkptState : std::uint8_t {
  kInit = 0,          ///< record created, no data accepted yet
  kWriteInProgress,   ///< checkpointing path: cascading flushes pending
  kWriteComplete,     ///< all flushes finished; read/prefetch intent pending
  kFlushed,           ///< durable, no read intent: eligible for eviction
  kReadInProgress,    ///< prefetching path: promotion to faster tiers running
  kReadComplete,      ///< resident on the fast tier, pinned until consumed
  kConsumed,          ///< restored into the app buffer: eligible for eviction
  kFlushFailed,       ///< flush permanently failed with no surviving copy:
                      ///< the checkpoint is lost (terminal state)
};

/// Number of CkptState values (state-occupancy arrays index by state).
inline constexpr std::size_t kCkptStateCount = 8;

[[nodiscard]] constexpr std::string_view to_string(CkptState s) noexcept {
  switch (s) {
    case CkptState::kInit: return "INIT";
    case CkptState::kWriteInProgress: return "WRITE_IN_PROGRESS";
    case CkptState::kWriteComplete: return "WRITE_COMPLETE";
    case CkptState::kFlushed: return "FLUSHED";
    case CkptState::kReadInProgress: return "READ_IN_PROGRESS";
    case CkptState::kReadComplete: return "READ_COMPLETE";
    case CkptState::kConsumed: return "CONSUMED";
    case CkptState::kFlushFailed: return "FLUSH_FAILED";
  }
  return "?";
}

/// True if the transition `from` -> `to` is legal under Figure 1.
///
/// Legal edges:
///   INIT -> WRITE_IN_PROGRESS          (checkpoint request)
///   WRITE_IN_PROGRESS -> WRITE_COMPLETE (all cascading flushes done)
///   WRITE_IN_PROGRESS -> READ_COMPLETE (restore overtakes pending flushes,
///                                       condition (2): data still cached)
///   WRITE_COMPLETE -> FLUSHED          (no pending restore/prefetch)
///   WRITE_COMPLETE -> READ_COMPLETE    (read intent exists; data cached)
///   FLUSHED -> READ_IN_PROGRESS        (prefetch of an evicted checkpoint)
///   FLUSHED -> READ_COMPLETE           (flushed but still cached)
///   READ_IN_PROGRESS -> READ_COMPLETE  (promotion finished)
///   READ_COMPLETE -> CONSUMED          (restore copied into app buffer)
///   CONSUMED -> READ_IN_PROGRESS       (extension: re-read after consume,
///                                       needed for repeated replay)
///   CONSUMED -> READ_COMPLETE          (re-read while still cached)
///
/// Three pragmatic extension edges beyond Figure 1 (documented in DESIGN.md):
///   WRITE_IN_PROGRESS -> READ_IN_PROGRESS  (the GPU copy was already
///     evicted while lower-tier flushes are still pending, and a prefetch
///     must re-promote from the host cache)
///   READ_IN_PROGRESS -> FLUSHED / WRITE_IN_PROGRESS  (promotion aborted:
///     the application deviated from its hints and the restore fell back to
///     the direct read path; the checkpoint rolls back to FLUSHED when
///     already durable, or WRITE_IN_PROGRESS when flushes are still pending)
///   WRITE_IN_PROGRESS -> FLUSH_FAILED  (failure model, DESIGN.md §8: the
///     flush pipeline permanently failed to reach any durable tier and no
///     cached copy survives — or strict durability mode deliberately drops
///     the cached copies. Terminal: restores of the version return an error)
[[nodiscard]] constexpr bool TransitionLegal(CkptState from, CkptState to) noexcept {
  switch (from) {
    case CkptState::kInit:
      return to == CkptState::kWriteInProgress;
    case CkptState::kWriteInProgress:
      return to == CkptState::kWriteComplete || to == CkptState::kReadComplete ||
             to == CkptState::kReadInProgress || to == CkptState::kFlushFailed;
    case CkptState::kWriteComplete:
      return to == CkptState::kFlushed || to == CkptState::kReadComplete;
    case CkptState::kFlushed:
      return to == CkptState::kReadInProgress || to == CkptState::kReadComplete;
    case CkptState::kReadInProgress:
      return to == CkptState::kReadComplete || to == CkptState::kFlushed ||
             to == CkptState::kWriteInProgress;
    case CkptState::kReadComplete:
      return to == CkptState::kConsumed;
    case CkptState::kConsumed:
      return to == CkptState::kReadInProgress || to == CkptState::kReadComplete;
    case CkptState::kFlushFailed:
      return false;  // terminal: the data is gone
  }
  return false;
}

/// True for the two states Figure 1 marks eligible for eviction.
[[nodiscard]] constexpr bool StateEvictionEligible(CkptState s) noexcept {
  return s == CkptState::kFlushed || s == CkptState::kConsumed;
}

/// True for the states that pin a prefetched copy on the fast tier
/// (condition (4): once prefetched, evict only after consumption).
[[nodiscard]] constexpr bool StatePinsFastTier(CkptState s) noexcept {
  return s == CkptState::kReadInProgress || s == CkptState::kReadComplete;
}

/// Validating transition helper used by the engine: returns
/// kFailedPrecondition with a descriptive message on an illegal edge.
util::Status CheckTransition(CkptState from, CkptState to);

}  // namespace ckpt::core
