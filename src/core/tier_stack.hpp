// Config-driven description of the multi-level storage hierarchy.
//
// The paper's contribution is a *multi-level* cache-and-prefetch data path;
// the tier count and composition are configuration, not code (VELOC's
// pluggable tier model). A TierStack is an ordered vector of TierDesc — a
// contiguous run of managed cache tiers (GPU HBM and/or pinned host arenas)
// followed by a contiguous run of durable object-store tiers — plus the
// index of the *terminal* tier a flush must reach before a checkpoint counts
// as durable. The engine walks this stack everywhere it used to switch on
// the fixed 4-value Tier enum: flush staging, prefetch promotion, restore
// fallback, eviction safety ("durable copy below?") and fault degradation
// ("deepest surviving tier").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/eviction.hpp"
#include "core/types.hpp"
#include "storage/object_store.hpp"
#include "util/config.hpp"
#include "util/status.hpp"

namespace ckpt::core {

/// What a tier is made of, which determines who moves data in and out:
/// cache tiers are engine-managed CacheBuffers with eviction; durable tiers
/// are whole-object stores with enough capacity for the full history.
enum class TierKind : std::uint8_t { kCache, kDurable };

/// Physical medium of a cache tier. Device-backed tiers are carved out of
/// the rank's HBM (at most one, and it must be the top of the stack);
/// pinned-host tiers pay the one-time registration cost at init (§4.1.4).
enum class CacheMedium : std::uint8_t { kDevice, kPinnedHost };

[[nodiscard]] constexpr std::string_view to_string(TierKind k) noexcept {
  return k == TierKind::kCache ? "cache" : "durable";
}

/// One level of the hierarchy.
struct TierDesc {
  std::string name;                 ///< config-visible label ("gpu", "ssd", …)
  TierKind kind = TierKind::kCache;
  CacheMedium medium = CacheMedium::kPinnedHost;  ///< cache tiers only
  std::uint64_t capacity_bytes = 0;               ///< cache tiers only
  std::shared_ptr<storage::ObjectStore> store;    ///< durable tiers only
  /// Eviction policy driving this cache tier's CacheBuffer (default: score,
  /// the paper's gap-aware Algorithm 1). Unset = inherit the engine-wide
  /// default (`EngineOptions::eviction`, the legacy global `eviction` config
  /// key) — the engine resolves the inheritance at Init via
  /// ResolveEvictionPolicies(). Durable tiers never evict; Create rejects a
  /// policy named on one.
  std::optional<EvictionKind> policy;
};

class TierStack {
 public:
  TierStack() = default;

  /// Validates and adopts `tiers`. Rules (all violations are returned as
  /// kInvalidArgument at Init time instead of asserting mid-run):
  ///  * stack is non-empty, has >= 1 cache tier and >= 1 durable tier;
  ///  * every cache tier precedes every durable tier (so the deepest tier
  ///    is durable);
  ///  * cache tiers have capacity > 0; durable tiers have a non-null store;
  ///  * at most one device-backed cache tier, and only at index 0;
  ///  * names are non-empty and unique.
  /// `terminal_name` selects the durable tier flushes must reach (empty =
  /// the first durable tier, the legacy "terminal_tier = ssd" default).
  static util::StatusOr<TierStack> Create(std::vector<TierDesc> tiers,
                                          std::string_view terminal_name = {});

  /// The paper's default stack: GPU HBM -> pinned host -> SSD [-> PFS].
  /// The PFS tier is present iff `pfs` is non-null; `terminal` must name a
  /// tier that exists. Used by the legacy Engine constructor, which keeps
  /// its historical assert-on-misuse contract.
  static util::StatusOr<TierStack> Default(
      std::shared_ptr<storage::ObjectStore> ssd,
      std::shared_ptr<storage::ObjectStore> pfs, std::uint64_t gpu_cache_bytes,
      std::uint64_t host_cache_bytes, Tier terminal = Tier::kSsd);

  [[nodiscard]] std::size_t size() const noexcept { return tiers_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tiers_.empty(); }
  [[nodiscard]] const TierDesc& operator[](std::size_t i) const {
    return tiers_[i];
  }

  /// Cache tiers occupy [0, num_cache_tiers()); durable tiers the rest.
  [[nodiscard]] int num_cache_tiers() const noexcept { return num_cache_; }
  [[nodiscard]] int num_durable_tiers() const noexcept {
    return static_cast<int>(tiers_.size()) - num_cache_;
  }
  [[nodiscard]] int first_durable() const noexcept { return num_cache_; }
  [[nodiscard]] int deepest() const noexcept {
    return static_cast<int>(tiers_.size()) - 1;
  }
  /// Stack index of the tier flushes must reach for durability.
  [[nodiscard]] int terminal() const noexcept { return terminal_; }
  /// Terminal tier's position among the durable tiers (0 = first durable).
  [[nodiscard]] int terminal_ordinal() const noexcept {
    return terminal_ - num_cache_;
  }

  [[nodiscard]] bool is_cache(int i) const noexcept { return i < num_cache_; }
  [[nodiscard]] bool is_durable(int i) const noexcept {
    return i >= num_cache_ && i < static_cast<int>(tiers_.size());
  }
  [[nodiscard]] bool is_device(int i) const noexcept {
    return is_cache(i) && tiers_[static_cast<std::size_t>(i)].medium ==
                              CacheMedium::kDevice;
  }
  /// Maps a stack index of a durable tier to its ordinal (index into the
  /// per-record durable flags), and back.
  [[nodiscard]] int durable_ordinal(int stack_index) const noexcept {
    return stack_index - num_cache_;
  }
  [[nodiscard]] int durable_index(int ordinal) const noexcept {
    return num_cache_ + ordinal;
  }
  [[nodiscard]] const storage::ObjectStore* durable_store(int ordinal) const {
    return tiers_[static_cast<std::size_t>(durable_index(ordinal))].store.get();
  }
  [[nodiscard]] storage::ObjectStore* durable_store(int ordinal) {
    return tiers_[static_cast<std::size_t>(durable_index(ordinal))].store.get();
  }

  /// Configured name of tier `i`; out-of-range indices (including Tier enum
  /// values beyond this stack) resolve to a stable placeholder rather than
  /// "?" so log lines stay greppable.
  [[nodiscard]] std::string_view name(std::size_t i) const noexcept {
    return i < tiers_.size() ? std::string_view(tiers_[i].name)
                             : std::string_view("out-of-stack");
  }
  [[nodiscard]] std::optional<int> IndexOf(std::string_view tier_name) const;

  /// Fills `default_kind` into every cache tier that did not name a policy,
  /// after which policy(i) is concrete for the whole stack. The engine calls
  /// this once at Init with EngineOptions::eviction, making the legacy
  /// global `eviction` key the default for tiers that stay silent.
  void ResolveEvictionPolicies(EvictionKind default_kind);
  /// Eviction policy of cache tier `i` (kScore for tiers still unresolved).
  [[nodiscard]] EvictionKind policy(int i) const noexcept {
    return tiers_[static_cast<std::size_t>(i)].policy.value_or(
        EvictionKind::kScore);
  }

  /// Human-readable "gpu(4Mi,score)>host(32Mi)>ssd*>pfs" summary; '*' marks
  /// the terminal tier, and cache tiers with a concrete eviction policy
  /// carry its name next to their capacity.
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<TierDesc> tiers_;
  int num_cache_ = 0;
  int terminal_ = -1;
};

/// Builds an ObjectStore for one durable tier of a parsed spec. `backend` is
/// the spec's backend field ("mem", "file=<dir>", or an empty string meaning
/// the default "mem"); `ordinal` is the tier's position among the durable
/// tiers, which callers typically use to pick the bandwidth wrapper
/// (NVMe-throttled for ordinal 0, PFS uplink beyond).
using TierStoreFactory =
    std::function<util::StatusOr<std::shared_ptr<storage::ObjectStore>>(
        const std::string& tier_name, const std::string& backend, int ordinal)>;

/// Parses a tier-stack spec string into a validated TierStack.
///
/// Grammar (entries separated by ',' or ';', fields colon-separated; use
/// ';' inside util::Config values, whose parser treats ',' as a line
/// break):
///   spec       := entry (("," | ";") entry)*
///   entry      := name ":" kind [":" arg [":" policy]]
///   kind       := "gpucache" | "cache" | "durable"
///   arg        := capacity for cache kinds (util::ParseSize suffixes, e.g.
///                 "4Mi"); backend for durable kinds ("mem" | "file=<dir>" |
///                 "s3://<bucket>[?opts]" — see storage/remote_store.hpp for
///                 the option grammar, e.g. "s3://ckpts?part=1Mi&group=8")
///   policy     := "score" | "lru" | "fifo" | "greedy-gap"  (cache kinds
///                 only; omitted = the engine-wide `eviction` default)
///
/// Only the leading separators split fields: after a durable `kind` the
/// whole remainder is the backend arg, so backends containing ':' or '='
/// ("file=C:\scratch", "s3://bucket?part=2Mi") parse intact. Unknown
/// policy names are kInvalidArgument, like every other stack violation.
///
/// Example: "gpu:gpucache:4Mi:score,host:cache:32Mi:fifo,ssd:durable"
/// `terminal_name` as in TierStack::Create. `factory` instantiates durable
/// stores; pass {} to use plain in-memory stores (tests).
util::StatusOr<TierStack> ParseTierStack(std::string_view spec,
                                         std::string_view terminal_name,
                                         const TierStoreFactory& factory);

/// Convenience: reads the "tiers" and "terminal_tier" keys of `cfg` and
/// parses them. Returns an empty optional when `cfg` has no "tiers" key
/// (caller falls back to the default stack).
util::StatusOr<std::optional<TierStack>> TierStackFromConfig(
    const util::Config& cfg, const TierStoreFactory& factory);

}  // namespace ckpt::core
