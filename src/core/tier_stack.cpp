#include "core/tier_stack.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "storage/mem_store.hpp"

namespace ckpt::core {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> Split(std::string_view s, std::string_view seps) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find_first_of(seps);
    if (pos == std::string_view::npos) {
      out.push_back(Trim(s));
      return out;
    }
    out.push_back(Trim(s.substr(0, pos)));
    s.remove_prefix(pos + 1);
  }
}

std::string FormatSize(std::uint64_t bytes) {
  static constexpr const char* kSuffix[] = {"", "Ki", "Mi", "Gi", "Ti"};
  std::size_t s = 0;
  while (s + 1 < std::size(kSuffix) && bytes != 0 && bytes % 1024 == 0) {
    bytes /= 1024;
    ++s;
  }
  return std::to_string(bytes) + kSuffix[s];
}

}  // namespace

util::StatusOr<TierStack> TierStack::Create(std::vector<TierDesc> tiers,
                                            std::string_view terminal_name) {
  if (tiers.empty()) {
    return util::InvalidArgument("tier stack must not be empty");
  }
  TierStack stack;
  std::unordered_set<std::string_view> names;
  bool seen_durable = false;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const TierDesc& t = tiers[i];
    const std::string pos = "tier " + std::to_string(i);
    if (t.name.empty()) {
      return util::InvalidArgument(pos + " has an empty name");
    }
    if (!names.insert(t.name).second) {
      return util::InvalidArgument("duplicate tier name '" + t.name + "'");
    }
    if (t.kind == TierKind::kCache) {
      if (seen_durable) {
        return util::InvalidArgument(
            "cache tier '" + t.name +
            "' appears below a durable tier; cache tiers must form a "
            "contiguous prefix of the stack");
      }
      if (t.capacity_bytes == 0) {
        return util::InvalidArgument("cache tier '" + t.name +
                                     "' has zero capacity");
      }
      if (t.medium == CacheMedium::kDevice && i != 0) {
        return util::InvalidArgument(
            "device-backed cache tier '" + t.name +
            "' must be the top of the stack (index 0)");
      }
      ++stack.num_cache_;
    } else {
      if (t.store == nullptr) {
        return util::InvalidArgument("durable tier '" + t.name +
                                     "' has no object store");
      }
      if (t.policy.has_value()) {
        return util::InvalidArgument(
            "durable tier '" + t.name +
            "' names an eviction policy; durable stores never evict");
      }
      seen_durable = true;
    }
  }
  if (stack.num_cache_ == 0) {
    return util::InvalidArgument("tier stack needs at least one cache tier");
  }
  if (!seen_durable) {
    return util::InvalidArgument(
        "the deepest tier must be durable: a stack of only caches cannot "
        "make checkpoints durable");
  }
  stack.tiers_ = std::move(tiers);

  if (terminal_name.empty()) {
    stack.terminal_ = stack.num_cache_;  // first durable tier
  } else {
    bool found = false;
    for (std::size_t i = 0; i < stack.tiers_.size(); ++i) {
      if (stack.tiers_[i].name == terminal_name) {
        if (stack.tiers_[i].kind != TierKind::kDurable) {
          return util::InvalidArgument("terminal tier '" +
                                       std::string(terminal_name) +
                                       "' is not a durable tier");
        }
        stack.terminal_ = static_cast<int>(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return util::InvalidArgument("terminal tier '" +
                                   std::string(terminal_name) +
                                   "' is not in the stack");
    }
  }
  return stack;
}

util::StatusOr<TierStack> TierStack::Default(
    std::shared_ptr<storage::ObjectStore> ssd,
    std::shared_ptr<storage::ObjectStore> pfs, std::uint64_t gpu_cache_bytes,
    std::uint64_t host_cache_bytes, Tier terminal) {
  std::vector<TierDesc> tiers;
  tiers.push_back(TierDesc{"gpu", TierKind::kCache, CacheMedium::kDevice,
                           gpu_cache_bytes, nullptr});
  tiers.push_back(TierDesc{"host", TierKind::kCache, CacheMedium::kPinnedHost,
                           host_cache_bytes, nullptr});
  tiers.push_back(
      TierDesc{"ssd", TierKind::kDurable, CacheMedium::kPinnedHost, 0,
               std::move(ssd)});
  if (pfs != nullptr) {
    tiers.push_back(
        TierDesc{"pfs", TierKind::kDurable, CacheMedium::kPinnedHost, 0,
                 std::move(pfs)});
  }
  const std::string_view terminal_name =
      terminal == Tier::kPfs ? "pfs" : "ssd";
  return Create(std::move(tiers), terminal_name);
}

std::optional<int> TierStack::IndexOf(std::string_view tier_name) const {
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (tiers_[i].name == tier_name) return static_cast<int>(i);
  }
  return std::nullopt;
}

void TierStack::ResolveEvictionPolicies(EvictionKind default_kind) {
  for (int i = 0; i < num_cache_; ++i) {
    auto& p = tiers_[static_cast<std::size_t>(i)].policy;
    if (!p.has_value()) p = default_kind;
  }
}

std::string TierStack::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (i != 0) out += '>';
    out += tiers_[i].name;
    if (tiers_[i].kind == TierKind::kCache) {
      out += '(' + FormatSize(tiers_[i].capacity_bytes);
      if (tiers_[i].policy.has_value()) {
        out += ',';
        out += to_string(*tiers_[i].policy);
      }
      out += ')';
    }
    if (static_cast<int>(i) == terminal_) out += '*';
  }
  return out;
}

util::StatusOr<TierStack> ParseTierStack(std::string_view spec,
                                         std::string_view terminal_name,
                                         const TierStoreFactory& factory) {
  std::vector<TierDesc> tiers;
  int durable_ordinal = 0;
  for (std::string_view entry : Split(spec, ",;")) {
    if (entry.empty()) continue;
    // Split only the leading field separators: everything after `kind` is
    // interpreted per kind, so a durable backend arg may itself contain ':'
    // or '=' ("file=C:\scratch", a future "s3://bucket").
    const std::size_t name_end = entry.find(':');
    if (name_end == std::string_view::npos) {
      return util::InvalidArgument("tier entry '" + std::string(entry) +
                                   "' is not name:kind[:arg[:policy]]");
    }
    std::string_view kind = entry.substr(name_end + 1);
    std::string_view rest;
    bool has_rest = false;
    if (const std::size_t kind_end = kind.find(':');
        kind_end != std::string_view::npos) {
      rest = kind.substr(kind_end + 1);
      kind = kind.substr(0, kind_end);
      has_rest = true;
    }
    kind = Trim(kind);
    TierDesc desc;
    desc.name = std::string(Trim(entry.substr(0, name_end)));
    if (kind == "gpucache" || kind == "cache") {
      desc.kind = TierKind::kCache;
      desc.medium =
          kind == "gpucache" ? CacheMedium::kDevice : CacheMedium::kPinnedHost;
      // Cache tiers: rest := capacity [":" policy].
      std::string_view cap = rest;
      std::string_view policy;
      bool has_policy = false;
      if (const std::size_t cap_end = rest.find(':');
          cap_end != std::string_view::npos) {
        policy = Trim(rest.substr(cap_end + 1));
        cap = rest.substr(0, cap_end);
        has_policy = true;
      }
      cap = Trim(cap);
      if (cap.empty()) {
        return util::InvalidArgument("cache tier '" + desc.name +
                                     "' needs a capacity argument");
      }
      const std::string arg(cap);
      auto bytes = util::ParseSize(arg);
      if (!bytes.ok()) return bytes.status();
      if (*bytes <= 0) {
        return util::InvalidArgument("cache tier '" + desc.name +
                                     "' has non-positive capacity " + arg);
      }
      desc.capacity_bytes = static_cast<std::uint64_t>(*bytes);
      if (has_policy) {
        const auto parsed = ParseEvictionKind(policy);
        if (!parsed.has_value()) {
          return util::InvalidArgument(
              "cache tier '" + desc.name + "' has unknown eviction policy '" +
              std::string(policy) + "' (want score|lru|fifo|greedy-gap)");
        }
        desc.policy = *parsed;
      }
    } else if (kind == "durable") {
      const std::string arg(Trim(rest));
      (void)has_rest;
      desc.kind = TierKind::kDurable;
      if (factory) {
        auto store = factory(desc.name, arg, durable_ordinal);
        if (!store.ok()) return store.status();
        desc.store = std::move(*store);
      } else {
        if (!arg.empty() && arg != "mem") {
          return util::InvalidArgument(
              "durable tier '" + desc.name + "' backend '" + arg +
              "' needs a store factory (only 'mem' works without one)");
        }
        desc.store = std::make_shared<storage::MemStore>();
      }
      ++durable_ordinal;
    } else {
      return util::InvalidArgument("tier '" + desc.name + "' has unknown kind '" +
                                   std::string(kind) +
                                   "' (want gpucache|cache|durable)");
    }
    tiers.push_back(std::move(desc));
  }
  return TierStack::Create(std::move(tiers), terminal_name);
}

util::StatusOr<std::optional<TierStack>> TierStackFromConfig(
    const util::Config& cfg, const TierStoreFactory& factory) {
  const auto spec = cfg.GetString("tiers");
  if (!spec.has_value()) return std::optional<TierStack>{};
  auto stack =
      ParseTierStack(*spec, cfg.GetString("terminal_tier", ""), factory);
  if (!stack.ok()) return stack.status();
  return std::optional<TierStack>(std::move(*stack));
}

}  // namespace ckpt::core
