#include "core/allocation_table.hpp"

#include <algorithm>
#include <string>

namespace ckpt::core {

AllocationTable::AllocationTable(std::uint64_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) {
    frags_[0] = Fragment{0, capacity_, kGapId};
  }
}

util::Status AllocationTable::Insert(EntryId id, std::uint64_t offset,
                                     std::uint64_t size) {
  if (id == kGapId) return util::InvalidArgument("Insert: reserved gap id");
  if (size == 0) return util::InvalidArgument("Insert: zero size");
  if (entries_.count(id) != 0) {
    return util::AlreadyExists("Insert: id " + std::to_string(id));
  }
  // Find the fragment containing `offset`.
  auto it = frags_.upper_bound(offset);
  if (it == frags_.begin()) return util::InvalidArgument("Insert: bad offset");
  --it;
  Fragment gap = it->second;
  if (!gap.is_gap() || offset < gap.offset ||
      offset + size > gap.offset + gap.size) {
    return util::InvalidArgument("Insert: range not inside a single gap");
  }
  frags_.erase(it);
  if (offset > gap.offset) {
    frags_[gap.offset] = Fragment{gap.offset, offset - gap.offset, kGapId};
  }
  frags_[offset] = Fragment{offset, size, id};
  const std::uint64_t tail = gap.offset + gap.size - (offset + size);
  if (tail > 0) {
    frags_[offset + size] = Fragment{offset + size, tail, kGapId};
  }
  entries_[id] = offset;
  used_ += size;
  ++version_;
  return util::OkStatus();
}

util::Status AllocationTable::Erase(EntryId id) {
  auto eit = entries_.find(id);
  if (eit == entries_.end()) {
    return util::NotFound("Erase: id " + std::to_string(id));
  }
  const std::uint64_t offset = eit->second;
  entries_.erase(eit);
  auto fit = frags_.find(offset);
  used_ -= fit->second.size;
  fit->second.id = kGapId;
  CoalesceAround(offset);
  ++version_;
  return util::OkStatus();
}

void AllocationTable::CoalesceAround(std::uint64_t offset) {
  auto it = frags_.find(offset);
  if (it == frags_.end() || !it->second.is_gap()) return;
  // Merge with following gap.
  auto next = std::next(it);
  if (next != frags_.end() && next->second.is_gap()) {
    it->second.size += next->second.size;
    frags_.erase(next);
  }
  // Merge with preceding gap.
  if (it != frags_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.is_gap()) {
      prev->second.size += it->second.size;
      frags_.erase(it);
    }
  }
}

util::Status AllocationTable::Overwrite(EntryId id, std::uint64_t offset,
                                        std::uint64_t span, std::uint64_t size) {
  if (id == kGapId) return util::InvalidArgument("Overwrite: reserved gap id");
  if (size == 0 || size > span) {
    return util::InvalidArgument("Overwrite: need 0 < size <= span");
  }
  if (entries_.count(id) != 0) {
    return util::AlreadyExists("Overwrite: id " + std::to_string(id));
  }
  auto it = frags_.find(offset);
  if (it == frags_.end() || !it->second.is_gap() || it->second.size < span) {
    return util::FailedPrecondition(
        "Overwrite: [offset, offset+span) is not one coalesced gap");
  }
  const Fragment gap = it->second;
  frags_.erase(it);
  frags_[offset] = Fragment{offset, size, id};
  entries_[id] = offset;
  used_ += size;
  const std::uint64_t tail = gap.size - size;
  if (tail > 0) {
    frags_[offset + size] = Fragment{offset + size, tail, kGapId};
    CoalesceAround(offset + size);
  }
  ++version_;
  return util::OkStatus();
}

std::optional<Fragment> AllocationTable::Find(EntryId id) const {
  auto eit = entries_.find(id);
  if (eit == entries_.end()) return std::nullopt;
  return frags_.at(eit->second);
}

std::optional<Fragment> AllocationTable::GapContaining(std::uint64_t offset) const {
  auto it = frags_.upper_bound(offset);
  if (it == frags_.begin()) return std::nullopt;
  --it;
  const Fragment& f = it->second;
  if (!f.is_gap() || offset >= f.offset + f.size) return std::nullopt;
  return f;
}

std::vector<Fragment> AllocationTable::Snapshot() const {
  std::vector<Fragment> out;
  out.reserve(frags_.size());
  for (const auto& [off, frag] : frags_) out.push_back(frag);
  return out;
}

std::uint64_t AllocationTable::largest_gap() const {
  std::uint64_t best = 0;
  for (const auto& [off, frag] : frags_) {
    if (frag.is_gap()) best = std::max(best, frag.size);
  }
  return best;
}

util::Status AllocationTable::CheckInvariants() const {
  std::uint64_t expected_offset = 0;
  std::uint64_t used = 0;
  bool prev_gap = false;
  for (const auto& [off, frag] : frags_) {
    if (frag.offset != off) return util::Internal("key/offset mismatch");
    if (frag.offset != expected_offset) {
      return util::Internal("fragments do not tile the buffer at offset " +
                            std::to_string(frag.offset));
    }
    if (frag.size == 0) return util::Internal("zero-size fragment");
    if (frag.is_gap()) {
      if (prev_gap) return util::Internal("adjacent gaps not coalesced");
      prev_gap = true;
    } else {
      prev_gap = false;
      used += frag.size;
      auto eit = entries_.find(frag.id);
      if (eit == entries_.end() || eit->second != frag.offset) {
        return util::Internal("entry index out of sync for id " +
                              std::to_string(frag.id));
      }
    }
    expected_offset += frag.size;
  }
  if (capacity_ > 0 && expected_offset != capacity_) {
    return util::Internal("fragments do not cover the full capacity");
  }
  if (used != used_) return util::Internal("used-byte accounting drift");
  if (entries_.size() !=
      static_cast<std::size_t>(std::count_if(
          frags_.begin(), frags_.end(),
          [](const auto& kv) { return !kv.second.is_gap(); }))) {
    return util::Internal("entry count mismatch");
  }
  return util::OkStatus();
}

}  // namespace ckpt::core
