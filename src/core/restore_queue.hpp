// Per-process restore-order queue (§4.1.1): the application (or higher-level
// middleware) enqueues advisory hints about the order in which it will
// restore checkpoints. Hints are append-only and irrevocable; the
// application may deviate at a performance penalty. The queue feeds both the
// prefetch engine (what to promote next) and the eviction policy (the
// prefetch *distance* is the s_score of Algorithm 1).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "core/types.hpp"

namespace ckpt::core {

class RestoreQueue {
 public:
  /// Appends a hint. The same version may be hinted multiple times
  /// (binomial checkpointing re-reads checkpoints).
  void Enqueue(Version v);

  /// The hint at the head, if any. Does not remove it.
  [[nodiscard]] std::optional<Version> Head() const;

  /// Removes the head hint (prefetch finished, or target already consumed).
  void PopHead();

  /// Removes the earliest pending hint for `v`, wherever it is (used when
  /// the application deviates and restores `v` before its hint reaches the
  /// head — the stale hint must not trigger a pointless prefetch later).
  /// Returns true when a hint was removed; false (a no-op) when `v` has no
  /// pending hint, so callers can keep depth gauges exact.
  bool Drop(Version v);

  /// Number of hints between the head and the earliest pending hint for
  /// `v`: 0 for the head itself. nullopt when `v` has no pending hint —
  /// Algorithm 1 then treats it as "restored last" (maximal s_score).
  [[nodiscard]] std::optional<std::uint64_t> DistanceOf(Version v) const;

  /// The idx-th pending hint from the head (0 = head). Used by the Fig. 7
  /// prefetch-distance metric, which walks successors in restore order.
  [[nodiscard]] std::optional<Version> Peek(std::size_t idx) const {
    if (idx >= hints_.size()) return std::nullopt;
    return hints_[idx].first;
  }

  [[nodiscard]] std::size_t pending() const { return hints_.size(); }
  [[nodiscard]] bool empty() const { return hints_.empty(); }

  /// Total hints ever enqueued (telemetry).
  [[nodiscard]] std::uint64_t total_enqueued() const { return next_seq_; }

 private:
  void RemoveSeq(Version v, std::uint64_t seq);

  // Hints in order, as (version, seq). seq is a monotone id used to map
  // versions back to queue positions in O(log n).
  std::deque<std::pair<Version, std::uint64_t>> hints_;
  std::map<Version, std::set<std::uint64_t>> by_version_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ckpt::core
