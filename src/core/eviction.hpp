// Gap-aware eviction (§4.1.6 / §4.2, Algorithm 1) plus baseline policies for
// the ablation study.
//
// The engine snapshots the allocation table into FragmentViews (attaching
// per-checkpoint life-cycle metadata), and the policy returns the best
// contiguous window of fragments to overwrite with a new checkpoint:
//
//   * p_score — estimated total blocking seconds until every fragment in the
//     window is evictable. Minimized first: "waiting and doing nothing while
//     evictions become eligible causes a more negative impact than
//     suboptimal prefetch-distance decisions".
//   * s_score — sum of prefetch distances of the window's checkpoints.
//     Maximized as a tie-break: prefer evicting checkpoints restored last.
//     Gaps and unhinted checkpoints score highest.
//
// Fragments marked `excluded` (prefetched-but-unconsumed, or under an active
// transfer) are hard barriers: the sliding window restarts after them. The
// scan is O(N) — both endpoints advance monotonically and scores update
// incrementally, exactly as in the paper's pseudocode.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/allocation_table.hpp"

namespace ckpt::core {

/// Eviction-relevant view of one fragment. Offsets/sizes mirror the
/// allocation table; the rest is life-cycle metadata supplied by the engine.
struct FragmentView {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  EntryId id = kGapId;
  bool excluded = false;    ///< hard barrier: may never be evicted now
  double eta = 0.0;         ///< est. seconds until evictable (0 = evictable now)
  double distance = 0.0;    ///< prefetch-distance score (higher = evict sooner)
  std::uint64_t lru_seq = 0;   ///< last-touch sequence (LRU ablation)
  std::uint64_t fifo_seq = 0;  ///< creation sequence (FIFO ablation)

  [[nodiscard]] bool is_gap() const noexcept { return id == kGapId; }
};

/// A contiguous run of fragments chosen for eviction.
struct EvictionWindow {
  std::size_t first = 0;        ///< index into the FragmentView vector
  std::size_t last = 0;         ///< inclusive
  std::uint64_t offset = 0;     ///< byte offset of the run
  std::uint64_t span = 0;       ///< total bytes of the run (>= requested size)
  double wait_eta = 0.0;        ///< max fragment eta (0 = committable now)
  double p_score = 0.0;         ///< chosen window's primary score (minimized)
  double s_score = 0.0;         ///< chosen window's secondary score (tie-break)
  std::vector<EntryId> victims; ///< non-gap entries to evict, offset order
};

/// Strategy interface. Implementations must be pure (no side effects): the
/// engine may call Choose repeatedly as life-cycle states evolve.
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Picks the best window of >= `size` bytes. Returns nullopt when no
  /// feasible window exists (e.g. every run is blocked by excluded
  /// fragments). `frags` is the offset-ordered table snapshot.
  [[nodiscard]] virtual std::optional<EvictionWindow> Choose(
      const std::vector<FragmentView>& frags, std::uint64_t size) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// The paper's score-based look-ahead policy (Algorithm 1).
class ScorePolicy final : public EvictionPolicy {
 public:
  [[nodiscard]] std::optional<EvictionWindow> Choose(
      const std::vector<FragmentView>& frags, std::uint64_t size) const override;
  [[nodiscard]] std::string_view name() const override { return "score"; }
};

/// Ablation: minimize the window's most-recent access (classic LRU,
/// generalized to contiguous windows; gaps count as never accessed).
class LruPolicy final : public EvictionPolicy {
 public:
  [[nodiscard]] std::optional<EvictionWindow> Choose(
      const std::vector<FragmentView>& frags, std::uint64_t size) const override;
  [[nodiscard]] std::string_view name() const override { return "lru"; }
};

/// Ablation: evict oldest-created first (FIFO over windows).
class FifoPolicy final : public EvictionPolicy {
 public:
  [[nodiscard]] std::optional<EvictionWindow> Choose(
      const std::vector<FragmentView>& frags, std::uint64_t size) const override;
  [[nodiscard]] std::string_view name() const override { return "fifo"; }
};

/// Ablation: maximize reuse of existing gaps (first window with the largest
/// gap fraction), ignoring life-cycle foreknowledge entirely.
class GreedyGapPolicy final : public EvictionPolicy {
 public:
  [[nodiscard]] std::optional<EvictionWindow> Choose(
      const std::vector<FragmentView>& frags, std::uint64_t size) const override;
  [[nodiscard]] std::string_view name() const override { return "greedy-gap"; }
};

enum class EvictionKind : std::uint8_t { kScore, kLru, kFifo, kGreedyGap };

[[nodiscard]] std::unique_ptr<EvictionPolicy> MakePolicy(EvictionKind kind);
[[nodiscard]] std::string_view to_string(EvictionKind kind) noexcept;

/// Inverse of to_string(EvictionKind): "score" | "lru" | "fifo" |
/// "greedy-gap". Unknown names return nullopt so every config surface (the
/// global `eviction` key, per-tier policy fields in a `tiers=` spec) rejects
/// them with the same spelling of the valid set.
[[nodiscard]] std::optional<EvictionKind> ParseEvictionKind(
    std::string_view name) noexcept;

/// Distance score constants encoding §4.1.6's preference order among
/// immediately evictable fragments: gaps first, then consumed checkpoints,
/// then unhinted ones, then hinted ones by descending prefetch distance.
/// Powers of two keep window sums exactly representable in a double, so the
/// incremental O(N) score updates of Algorithm 1 never drift (a cache holds
/// well under 2^13 fragments, and hint distances stay below 2^20).
inline constexpr double kGapDistance = 1099511627776.0;   // 2^40
inline constexpr double kConsumedDistance = 1073741824.0; // 2^30
inline constexpr double kUnhintedDistance = 1048576.0;    // 2^20

}  // namespace ckpt::core
