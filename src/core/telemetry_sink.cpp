#include "core/telemetry_sink.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/engine.hpp"
#include "core/lifecycle.hpp"
#include "core/tier_stack.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace ckpt::core {

namespace {

using util::telemetry::RankSample;
using util::telemetry::RemoteTierSample;
using util::telemetry::SamplePtr;
using util::telemetry::TelemetrySample;
using util::telemetry::TierSample;

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void AppendF(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

void AppendNum(std::string& out, double v) { AppendF(out, "%.9g", v); }

std::string TierLabel(const std::vector<std::string>& names, std::size_t i) {
  return i < names.size() ? names[i] : "tier" + std::to_string(i);
}

/// OpenMetrics label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

[[nodiscard]] bool ValidMetricName(std::string_view n) {
  if (n.empty()) return false;
  const auto body = [](char c) {
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' ||
           c == ':';
  };
  if (std::isdigit(static_cast<unsigned char>(n[0])) != 0) return false;
  return std::all_of(n.begin(), n.end(), body);
}

[[nodiscard]] bool ValidLabelName(std::string_view n) {
  if (n.empty()) return false;
  const auto body = [](char c) {
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
  };
  if (std::isdigit(static_cast<unsigned char>(n[0])) != 0) return false;
  return std::all_of(n.begin(), n.end(), body);
}

/// Emitter-side family declaration helper.
struct Exposer {
  std::string& out;

  void Gauge(const char* name, const char* help) {
    AppendF(out, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name);
  }
  void Counter(const char* name, const char* help) {
    AppendF(out, "# HELP %s %s\n# TYPE %s counter\n", name, help, name);
  }
  /// One sample line. `name` must already carry the `_total` suffix for
  /// counters; `labels` is the rendered label block without braces ("" for
  /// label-less samples).
  void SampleU64(const std::string& name, const std::string& labels,
                 std::uint64_t v) {
    out += name;
    if (!labels.empty()) {
      out += '{';
      out += labels;
      out += '}';
    }
    AppendF(out, " %" PRIu64 "\n", v);
  }
  void SampleF64(const std::string& name, const std::string& labels, double v) {
    out += name;
    if (!labels.empty()) {
      out += '{';
      out += labels;
      out += '}';
    }
    out += ' ';
    AppendNum(out, v);
    out += '\n';
  }
};

// A `tenant` label is emitted only when the sample carries a tenant name, so
// single-tenant exposition stays byte-identical to the legacy format.
std::string RankLabel(const RankSample& rs) {
  std::string out;
  if (!rs.tenant.empty()) {
    out += "tenant=\"" + EscapeLabelValue(rs.tenant) + "\",";
  }
  out += "rank=\"" + std::to_string(rs.rank) + "\"";
  return out;
}
std::string TierRankLabel(const std::vector<std::string>& names, std::size_t i,
                          const RankSample& rs) {
  return "tier=\"" + EscapeLabelValue(TierLabel(names, i)) + "\"," +
         RankLabel(rs);
}

void AppendRankSampleJson(std::string& out, const RankSample& rs,
                          const std::vector<std::string>& tier_names) {
  AppendF(out, "{\"rank\":%d", rs.rank);
  if (!rs.tenant.empty()) {
    out += ",\"tenant\":\"" + util::json::Escape(rs.tenant) + "\"";
  }
  out += ",\"state_occupancy\":[";
  for (std::size_t i = 0; i < rs.state_occupancy.size(); ++i) {
    if (i) out += ',';
    AppendF(out, "%" PRIu64, rs.state_occupancy[i]);
  }
  AppendF(out,
          "],\"last_transition_ns\":%" PRId64 ",\"restore_queue_depth\":%" PRIu64
          ",\"reserve_rounds\":%" PRIu64 ",\"reserve_plans_stale\":%" PRIu64
          ",\"reserve_snapshot_reuse\":%" PRIu64
          ",\"reserve_quota_waits\":%" PRIu64
          ",\"flush_retries\":%" PRIu64 ",\"fetch_retries\":%" PRIu64
          ",\"tier_degradations\":%" PRIu64 ",\"checkpoints_lost\":%" PRIu64
          ",\"checkpoints\":%" PRIu64 ",\"restores\":%" PRIu64
          ",\"bytes_checkpointed\":%" PRIu64 ",\"bytes_restored\":%" PRIu64
          ",\"watchdog_stalls\":%" PRIu64 ",\"restore_Bps\":",
          rs.last_transition_ns, rs.restore_queue_depth, rs.reserve_rounds,
          rs.reserve_plans_stale, rs.reserve_snapshot_reuse,
          rs.reserve_quota_waits, rs.flush_retries, rs.fetch_retries,
          rs.tier_degradations, rs.checkpoints_lost, rs.checkpoints,
          rs.restores, rs.bytes_checkpointed, rs.bytes_restored,
          rs.watchdog_stalls);
  AppendNum(out, rs.restore_Bps);
  // Lineage outcome counters ride along only once something was admitted,
  // so lineage-off windows stay byte-identical.
  if (rs.objects_admitted > 0) {
    AppendF(out,
            ",\"objects\":{\"admitted\":%" PRIu64 ",\"durable\":%" PRIu64
            ",\"degraded\":%" PRIu64 ",\"lost\":%" PRIu64
            ",\"erased\":%" PRIu64 "}",
            rs.objects_admitted, rs.objects_durable, rs.objects_degraded,
            rs.objects_lost, rs.objects_erased);
  }
  out += ",\"tiers\":[";
  for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
    const TierSample& t = rs.tiers[i];
    if (i) out += ',';
    out += "{\"name\":\"" + util::json::Escape(TierLabel(tier_names, i)) + "\"";
    AppendF(out,
            ",\"bytes_used\":%" PRIu64 ",\"bytes_capacity\":%" PRIu64
            ",\"flush_queue_depth\":%" PRIu64 ",\"flush_bytes\":%" PRIu64
            ",\"restores\":%" PRIu64 ",\"flush_Bps\":",
            t.bytes_used, t.bytes_capacity, t.flush_queue_depth, t.flush_bytes,
            t.restores);
    AppendNum(out, t.flush_Bps);
    out += '}';
  }
  out += "]}";
}

void AppendRemoteTierJson(std::string& out, const RemoteTierSample& rt) {
  out += "{\"name\":\"" + util::json::Escape(rt.tier_name) + "\"";
  AppendF(out,
          ",\"remote_puts\":%" PRIu64 ",\"remote_gets\":%" PRIu64
          ",\"remote_parts\":%" PRIu64 ",\"remote_part_retries\":%" PRIu64
          ",\"remote_put_bytes\":%" PRIu64 ",\"remote_get_bytes\":%" PRIu64
          ",\"agg_member_puts\":%" PRIu64 ",\"agg_group_puts\":%" PRIu64
          ",\"agg_group_put_failures\":%" PRIu64 ",\"agg_size_flushes\":%" PRIu64
          ",\"agg_deadline_flushes\":%" PRIu64
          ",\"agg_gets_from_pending\":%" PRIu64
          ",\"agg_group_reclaims\":%" PRIu64
          ",\"agg_pending_members\":%" PRIu64 ",\"agg_pending_bytes\":%" PRIu64
          "}",
          rt.remote_puts, rt.remote_gets, rt.remote_parts,
          rt.remote_part_retries, rt.remote_put_bytes, rt.remote_get_bytes,
          rt.agg_member_puts, rt.agg_group_puts, rt.agg_group_put_failures,
          rt.agg_size_flushes, rt.agg_deadline_flushes,
          rt.agg_gets_from_pending, rt.agg_group_reclaims,
          rt.agg_pending_members, rt.agg_pending_bytes);
}

/// One rank's (or the merged) critical-path entry.
void AppendCriticalPathEntry(std::string& out, const RankMetrics& m,
                             double wall_s,
                             const std::vector<std::string>& tier_names) {
  const double ckpt_s = m.ckpt_block_s.Sum();
  const double restore_s = m.restore_block_s.Sum();
  const double blocked_s = ckpt_s + restore_s + m.wait_for_flush_s;
  const double compute_s = std::max(0.0, wall_s - blocked_s);
  out += "{\"wall_s\":";
  AppendNum(out, wall_s);
  out += ",\"compute_s\":";
  AppendNum(out, compute_s);
  out += ",\"ckpt_block_s\":";
  AppendNum(out, ckpt_s);
  out += ",\"restore_block_s\":";
  AppendNum(out, restore_s);
  out += ",\"wait_for_flush_s\":";
  AppendNum(out, m.wait_for_flush_s);
  out += ",\"reserve_wait_write_s\":";
  AppendNum(out, m.reserve_wait_write_s);
  out += ",\"reserve_wait_prefetch_s\":";
  AppendNum(out, m.reserve_wait_prefetch_s);
  out += ",\"prefetch_promote_s\":";
  AppendNum(out, m.promotion_hist.sum());
  out += ",\"blocked_frac\":";
  AppendNum(out, wall_s > 0 ? blocked_s / wall_s : 0.0);
  out += ",\"flush_stage_s\":{";
  for (std::size_t i = 0; i < m.flush_stage_hist.size(); ++i) {
    if (i) out += ',';
    out += "\"" + util::json::Escape(TierLabel(tier_names, i)) + "\":";
    AppendNum(out, m.flush_stage_hist[i].sum());
  }
  out += "}}";
}

}  // namespace

std::vector<std::string> TelemetryTierNames(const Engine& engine) {
  const TierStack& stack = engine.tiers();
  std::vector<std::string> names;
  names.reserve(stack.size());
  for (std::size_t i = 0; i < stack.size(); ++i) {
    names.emplace_back(stack.name(i));
  }
  return names;
}

SamplePtr BuildTelemetrySample(const Engine& engine, std::uint64_t seq,
                               const TelemetrySample* prev) {
  auto s = std::make_shared<TelemetrySample>();
  s->ts_ns = util::trace::Now();
  s->seq = seq;
  double dt_s = 0.0;
  if (prev != nullptr && s->ts_ns > prev->ts_ns) {
    dt_s = static_cast<double>(s->ts_ns - prev->ts_ns) / 1e9;
  }
  const auto rate = [dt_s](std::uint64_t cur, std::uint64_t before) {
    if (dt_s <= 0.0 || cur <= before) return 0.0;
    return static_cast<double>(cur - before) / dt_s;
  };
  const int nr = engine.num_ranks();
  s->ranks.reserve(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) {
    Engine::RankProbe p = engine.Probe(r);
    const RankSample* prev_rank =
        prev != nullptr && static_cast<std::size_t>(r) < prev->ranks.size()
            ? &prev->ranks[static_cast<std::size_t>(r)]
            : nullptr;
    RankSample rs;
    rs.rank = r;
    rs.tenant = engine.TenantLabelOf(r);
    rs.state_occupancy = std::move(p.state_occupancy);
    rs.last_transition_ns = p.last_transition_ns;
    rs.restore_queue_depth = p.restore_queue_depth;
    rs.reserve_rounds = p.reserve_rounds;
    rs.reserve_plans_stale = p.reserve_plans_stale;
    rs.reserve_snapshot_reuse = p.reserve_snapshot_reuse;
    rs.reserve_quota_waits = p.reserve_quota_waits;
    rs.flush_retries = p.flush_retries;
    rs.fetch_retries = p.fetch_retries;
    rs.tier_degradations = p.tier_degradations;
    rs.checkpoints_lost = p.checkpoints_lost;
    rs.checkpoints = p.checkpoints;
    rs.restores = p.restores;
    rs.bytes_checkpointed = p.bytes_checkpointed;
    rs.bytes_restored = p.bytes_restored;
    rs.watchdog_stalls = p.watchdog_stalls;
    rs.objects_admitted = p.objects_admitted;
    rs.objects_durable = p.objects_durable;
    rs.objects_degraded = p.objects_degraded;
    rs.objects_lost = p.objects_lost;
    rs.objects_erased = p.objects_erased;
    if (prev_rank != nullptr) {
      rs.restore_Bps = rate(rs.bytes_restored, prev_rank->bytes_restored);
    }
    rs.tiers.resize(p.tiers.size());
    for (std::size_t i = 0; i < p.tiers.size(); ++i) {
      TierSample& t = rs.tiers[i];
      t.bytes_used = p.tiers[i].bytes_used;
      t.bytes_capacity = p.tiers[i].bytes_capacity;
      t.flush_queue_depth = p.tiers[i].flush_queue_depth;
      t.flush_bytes = p.tiers[i].flush_bytes;
      t.restores = p.tiers[i].restores;
      t.lag_buckets = std::move(p.tiers[i].lag_buckets);
      t.lag_count = p.tiers[i].lag_count;
      t.lag_sum_ns = p.tiers[i].lag_sum_ns;
      if (prev_rank != nullptr && i < prev_rank->tiers.size()) {
        t.flush_Bps = rate(t.flush_bytes, prev_rank->tiers[i].flush_bytes);
      }
    }
    s->ranks.push_back(std::move(rs));
  }
  s->lineage = engine.lineage();
  s->remote_tiers = CollectRemoteTiers(engine);
  return s;
}

std::vector<RemoteTierSample> CollectRemoteTiers(const Engine& engine) {
  // Store-level counters of remote/aggregating durable tiers. The stores are
  // engine-wide (shared across ranks), so these ride beside the rank slices;
  // stacks without such a tier return empty and every downstream exposition
  // stays byte-identical to the pre-remote format.
  std::vector<RemoteTierSample> out;
  const TierStack& stack = engine.tiers();
  for (int d = 0; d < stack.num_durable_tiers(); ++d) {
    storage::StoreStats st;
    const storage::ObjectStore* store = stack.durable_store(d);
    if (store == nullptr || !store->CollectStats(st)) continue;
    RemoteTierSample rt;
    rt.tier = stack.durable_index(d);
    rt.tier_name = std::string(stack.name(static_cast<std::size_t>(rt.tier)));
    rt.remote_puts = st.remote_puts;
    rt.remote_gets = st.remote_gets;
    rt.remote_parts = st.remote_parts;
    rt.remote_part_retries = st.remote_part_retries;
    rt.remote_put_bytes = st.remote_put_bytes;
    rt.remote_get_bytes = st.remote_get_bytes;
    rt.agg_member_puts = st.agg_member_puts;
    rt.agg_group_puts = st.agg_group_puts;
    rt.agg_group_put_failures = st.agg_group_put_failures;
    rt.agg_size_flushes = st.agg_size_flushes;
    rt.agg_deadline_flushes = st.agg_deadline_flushes;
    rt.agg_gets_from_pending = st.agg_gets_from_pending;
    rt.agg_group_reclaims = st.agg_group_reclaims;
    rt.agg_pending_members = st.agg_pending_members;
    rt.agg_pending_bytes = st.agg_pending_bytes;
    out.push_back(std::move(rt));
  }
  return out;
}

std::string RemoteTiersJson(const Engine& engine) {
  const std::vector<RemoteTierSample> tiers = CollectRemoteTiers(engine);
  if (tiers.empty()) return {};
  std::string out = "[";
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (i) out += ',';
    AppendRemoteTierJson(out, tiers[i]);
  }
  out += ']';
  return out;
}

std::string OpenMetricsText(const TelemetrySample& s,
                            const std::vector<std::string>& tier_names) {
  std::string out;
  out.reserve(8192);
  Exposer x{out};

  x.Gauge("ckpt_telemetry_sample_seq", "Sample index since sampler start.");
  x.SampleU64("ckpt_telemetry_sample_seq", "", s.seq);

  x.Gauge("ckpt_tier_bytes_used", "Cache bytes resident per tier.");
  for (const RankSample& rs : s.ranks) {
    for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
      if (rs.tiers[i].bytes_capacity == 0) continue;  // durable tiers
      x.SampleU64("ckpt_tier_bytes_used", TierRankLabel(tier_names, i, rs),
                  rs.tiers[i].bytes_used);
    }
  }
  x.Gauge("ckpt_tier_bytes_capacity", "Cache capacity per tier.");
  for (const RankSample& rs : s.ranks) {
    for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
      if (rs.tiers[i].bytes_capacity == 0) continue;
      x.SampleU64("ckpt_tier_bytes_capacity",
                  TierRankLabel(tier_names, i, rs),
                  rs.tiers[i].bytes_capacity);
    }
  }
  x.Gauge("ckpt_flush_queue_depth",
          "Flush work queued or in flight per cache tier.");
  for (const RankSample& rs : s.ranks) {
    for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
      if (rs.tiers[i].bytes_capacity == 0) continue;
      x.SampleU64("ckpt_flush_queue_depth",
                  TierRankLabel(tier_names, i, rs),
                  rs.tiers[i].flush_queue_depth);
    }
  }
  x.Gauge("ckpt_restore_queue_depth", "Pending restore-order hints.");
  for (const RankSample& rs : s.ranks) {
    x.SampleU64("ckpt_restore_queue_depth", RankLabel(rs),
                rs.restore_queue_depth);
  }
  x.Gauge("ckpt_state_occupancy", "Checkpoint records per FSM state.");
  for (const RankSample& rs : s.ranks) {
    for (std::size_t i = 0; i < rs.state_occupancy.size(); ++i) {
      const std::string state(to_string(static_cast<CkptState>(i)));
      x.SampleU64("ckpt_state_occupancy",
                  "state=\"" + EscapeLabelValue(state) + "\"," +
                      RankLabel(rs),
                  rs.state_occupancy[i]);
    }
  }
  x.Gauge("ckpt_tier_flush_bps",
          "Bytes/s landed on each tier over the last sampling window.");
  for (const RankSample& rs : s.ranks) {
    for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
      x.SampleF64("ckpt_tier_flush_bps", TierRankLabel(tier_names, i, rs),
                  rs.tiers[i].flush_Bps);
    }
  }
  x.Gauge("ckpt_restore_bps",
          "Bytes/s restored over the last sampling window.");
  for (const RankSample& rs : s.ranks) {
    x.SampleF64("ckpt_restore_bps", RankLabel(rs), rs.restore_Bps);
  }

  struct CounterSpec {
    const char* family;
    const char* help;
    std::uint64_t RankSample::* field;
  };
  static constexpr CounterSpec kRankCounters[] = {
      {"ckpt_checkpoints", "Checkpoints accepted.", &RankSample::checkpoints},
      {"ckpt_restores", "Restores served.", &RankSample::restores},
      {"ckpt_bytes_checkpointed", "Bytes accepted by Checkpoint().",
       &RankSample::bytes_checkpointed},
      {"ckpt_bytes_restored", "Bytes returned by Restore().",
       &RankSample::bytes_restored},
      {"ckpt_reserve_rounds", "Eviction plan/commit rounds.",
       &RankSample::reserve_rounds},
      {"ckpt_reserve_plans_stale", "Off-lock eviction plans gone stale.",
       &RankSample::reserve_plans_stale},
      {"ckpt_reserve_snapshot_reuse",
       "Replan rounds that reused the prior fragment snapshot.",
       &RankSample::reserve_snapshot_reuse},
      {"ckpt_reserve_quota_waits", "Reserve rounds parked on tenant quota.",
       &RankSample::reserve_quota_waits},
      {"ckpt_flush_retries", "Extra durable-store write attempts.",
       &RankSample::flush_retries},
      {"ckpt_fetch_retries", "Extra durable-store read attempts.",
       &RankSample::fetch_retries},
      {"ckpt_tier_degradations",
       "Checkpoints durable at a shallower tier than configured.",
       &RankSample::tier_degradations},
      {"ckpt_checkpoints_lost", "Checkpoints that entered FLUSH_FAILED.",
       &RankSample::checkpoints_lost},
      {"ckpt_watchdog_stalls", "Stalls detected by the telemetry watchdog.",
       &RankSample::watchdog_stalls},
  };
  for (const CounterSpec& c : kRankCounters) {
    x.Counter(c.family, c.help);
    const std::string sample_name = std::string(c.family) + "_total";
    for (const RankSample& rs : s.ranks) {
      x.SampleU64(sample_name, RankLabel(rs), rs.*(c.field));
    }
  }
  x.Counter("ckpt_tier_flush_bytes", "Cumulative bytes landed on each tier.");
  for (const RankSample& rs : s.ranks) {
    for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
      x.SampleU64("ckpt_tier_flush_bytes_total",
                  TierRankLabel(tier_names, i, rs),
                  rs.tiers[i].flush_bytes);
    }
  }
  x.Counter("ckpt_tier_restores", "Restores served from each tier.");
  for (const RankSample& rs : s.ranks) {
    for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
      x.SampleU64("ckpt_tier_restores_total",
                  TierRankLabel(tier_names, i, rs),
                  rs.tiers[i].restores);
    }
  }
  // Remote/aggregating tier families appear only when the stack has a store
  // that reports them, keeping every other configuration byte-identical.
  if (!s.remote_tiers.empty()) {
    struct RemoteCounterSpec {
      const char* family;
      const char* help;
      std::uint64_t RemoteTierSample::* field;
    };
    static constexpr RemoteCounterSpec kRemoteCounters[] = {
        {"ckpt_remote_puts", "Objects landed on the remote store.",
         &RemoteTierSample::remote_puts},
        {"ckpt_remote_gets", "Objects fetched from the remote store.",
         &RemoteTierSample::remote_gets},
        {"ckpt_remote_parts", "Multipart upload parts completed.",
         &RemoteTierSample::remote_parts},
        {"ckpt_remote_part_retries", "Extra per-part upload attempts.",
         &RemoteTierSample::remote_part_retries},
        {"ckpt_remote_put_bytes", "Bytes uploaded to the remote store.",
         &RemoteTierSample::remote_put_bytes},
        {"ckpt_remote_get_bytes", "Bytes downloaded from the remote store.",
         &RemoteTierSample::remote_get_bytes},
        {"ckpt_agg_member_puts", "Member puts accepted by the aggregator.",
         &RemoteTierSample::agg_member_puts},
        {"ckpt_agg_group_puts", "Group objects landed by the aggregator.",
         &RemoteTierSample::agg_group_puts},
        {"ckpt_agg_group_put_failures", "Group uploads that failed and were requeued.",
         &RemoteTierSample::agg_group_put_failures},
        {"ckpt_agg_size_flushes", "Groups sealed by the member/byte threshold.",
         &RemoteTierSample::agg_size_flushes},
        {"ckpt_agg_deadline_flushes", "Groups sealed by deadline or explicit flush.",
         &RemoteTierSample::agg_deadline_flushes},
        {"ckpt_agg_gets_from_pending", "Member reads served from buffered groups.",
         &RemoteTierSample::agg_gets_from_pending},
        {"ckpt_agg_group_reclaims", "Group objects reclaimed after their last member was erased.",
         &RemoteTierSample::agg_group_reclaims},
    };
    const auto remote_label = [&](const RemoteTierSample& rt) {
      return "tier=\"" + EscapeLabelValue(rt.tier_name) + "\"";
    };
    for (const RemoteCounterSpec& c : kRemoteCounters) {
      x.Counter(c.family, c.help);
      const std::string sample_name = std::string(c.family) + "_total";
      for (const RemoteTierSample& rt : s.remote_tiers) {
        x.SampleU64(sample_name, remote_label(rt), rt.*(c.field));
      }
    }
    x.Gauge("ckpt_agg_pending_members",
            "Member puts buffered in not-yet-landed groups.");
    for (const RemoteTierSample& rt : s.remote_tiers) {
      x.SampleU64("ckpt_agg_pending_members", remote_label(rt),
                  rt.agg_pending_members);
    }
    x.Gauge("ckpt_agg_pending_bytes",
            "Bytes buffered in not-yet-landed groups.");
    for (const RemoteTierSample& rt : s.remote_tiers) {
      x.SampleU64("ckpt_agg_pending_bytes", remote_label(rt),
                  rt.agg_pending_bytes);
    }
  }
  // Lineage families (DESIGN.md §14): emitted only for lineage-tracking
  // engines, so every other configuration's exposition stays byte-identical.
  if (s.lineage) {
    struct OutcomeSpec {
      const char* outcome;
      std::uint64_t RankSample::* field;
    };
    static constexpr OutcomeSpec kOutcomes[] = {
        {"admitted", &RankSample::objects_admitted},
        {"durable", &RankSample::objects_durable},
        {"degraded", &RankSample::objects_degraded},
        {"lost", &RankSample::objects_lost},
        {"erased", &RankSample::objects_erased},
    };
    x.Counter("ckpt_objects",
              "Checkpoint objects by lineage milestone (conservation: "
              "admitted = durable + degraded + lost + erased + inflight).");
    for (const OutcomeSpec& o : kOutcomes) {
      for (const RankSample& rs : s.ranks) {
        x.SampleU64("ckpt_objects_total",
                    "outcome=\"" + std::string(o.outcome) + "\"," +
                        RankLabel(rs),
                    rs.*(o.field));
      }
    }
    x.Gauge("ckpt_objects_inflight",
            "Admitted checkpoint objects not yet at a lineage terminal.");
    for (const RankSample& rs : s.ranks) {
      const std::uint64_t done = rs.objects_durable + rs.objects_degraded +
                                 rs.objects_lost + rs.objects_erased;
      x.SampleU64("ckpt_objects_inflight", RankLabel(rs),
                  rs.objects_admitted > done ? rs.objects_admitted - done : 0);
    }
    AppendF(out,
            "# HELP ckpt_durability_lag_seconds Admission-to-durable-ack lag "
            "per durable tier.\n"
            "# TYPE ckpt_durability_lag_seconds histogram\n");
    for (const RankSample& rs : s.ranks) {
      for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
        const TierSample& t = rs.tiers[i];
        if (t.lag_buckets.empty()) continue;  // cache tier / lineage off
        const std::string labels = TierRankLabel(tier_names, i, rs);
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < t.lag_buckets.size(); ++b) {
          cum += t.lag_buckets[b];
          std::string le;
          if (b + 1 == t.lag_buckets.size()) {
            le = "+Inf";
          } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.9g",
                          util::telemetry::kDurabilityLagEdgesS[b]);
            le = buf;
          }
          x.SampleU64("ckpt_durability_lag_seconds_bucket",
                      labels + ",le=\"" + le + "\"", cum);
        }
        x.SampleF64("ckpt_durability_lag_seconds_sum", labels,
                    static_cast<double>(t.lag_sum_ns) / 1e9);
        x.SampleU64("ckpt_durability_lag_seconds_count", labels, t.lag_count);
      }
    }
  }
  out += "# EOF\n";
  return out;
}

std::string OpenMetricsText(const Engine& engine) {
  const SamplePtr s = BuildTelemetrySample(engine, 0, nullptr);
  return OpenMetricsText(*s, TelemetryTierNames(engine));
}

std::string TelemetryWindowJson(const util::telemetry::SampleRing& ring,
                                const std::vector<std::string>& tier_names) {
  const std::vector<SamplePtr> window = ring.Window();
  std::string out;
  out.reserve(window.size() * 512 + 256);
  AppendF(out, "{\"capacity\":%zu,\"total\":%" PRIu64 ",\"samples\":[",
          ring.capacity(), ring.total());
  for (std::size_t i = 0; i < window.size(); ++i) {
    const TelemetrySample& s = *window[i];
    if (i) out += ',';
    AppendF(out, "{\"ts_ns\":%" PRId64 ",\"seq\":%" PRIu64 ",\"ranks\":[",
            s.ts_ns, s.seq);
    for (std::size_t r = 0; r < s.ranks.size(); ++r) {
      if (r) out += ',';
      AppendRankSampleJson(out, s.ranks[r], tier_names);
    }
    out += ']';
    if (!s.remote_tiers.empty()) {
      out += ",\"remote_tiers\":[";
      for (std::size_t r = 0; r < s.remote_tiers.size(); ++r) {
        if (r) out += ',';
        AppendRemoteTierJson(out, s.remote_tiers[r]);
      }
      out += ']';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string CriticalPathJson(const Engine& engine, double wall_s) {
  const std::vector<std::string> tier_names = TelemetryTierNames(engine);
  std::string out;
  out.reserve(2048);
  out += "{\"wall_s\":";
  AppendNum(out, wall_s);
  out += ",\"ranks\":[";
  RankMetrics merged;
  for (int r = 0; r < engine.num_ranks(); ++r) {
    const RankMetrics m = engine.MetricsSnapshot(r);
    if (r) out += ',';
    AppendF(out, "{\"rank\":%d,\"breakdown\":", r);
    AppendCriticalPathEntry(out, m, wall_s, tier_names);
    out += '}';
    merged.Merge(m);
  }
  out += "],\"merged\":";
  // The merged wall budget is one wall clock per rank.
  AppendCriticalPathEntry(out, merged, wall_s * engine.num_ranks(), tier_names);
  out += '}';
  return out;
}

TelemetryCheck ValidateOpenMetrics(std::string_view text) {
  TelemetryCheck ck;
  const auto fail = [&ck](std::size_t lineno, std::string msg) {
    ck.error = "line " + std::to_string(lineno) + ": " + std::move(msg);
    return ck;
  };
  std::set<std::string> families_with_samples;
  std::size_t pos = 0;
  std::size_t lineno = 0;
  bool after_eof = false;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    ++lineno;
    if (after_eof) return fail(lineno, "content after # EOF");
    if (line.empty()) return fail(lineno, "blank line");
    if (line[0] == '#') {
      if (line == "# EOF") {
        ck.eof = true;
        after_eof = true;
        continue;
      }
      const bool is_help = line.rfind("# HELP ", 0) == 0;
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      if (!is_help && !is_type) {
        return fail(lineno, "unrecognized comment line (expect HELP/TYPE/EOF)");
      }
      const std::string_view rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string_view::npos || sp == 0 || sp + 1 >= rest.size()) {
        return fail(lineno, "malformed HELP/TYPE line");
      }
      const std::string name(rest.substr(0, sp));
      if (!ValidMetricName(name)) {
        return fail(lineno, "invalid metric name '" + name + "'");
      }
      if (is_type) {
        const std::string type(rest.substr(sp + 1));
        if (type != "gauge" && type != "counter" && type != "info" &&
            type != "histogram" && type != "summary" && type != "unknown") {
          return fail(lineno, "unknown metric type '" + type + "'");
        }
        if (!ck.family_type.emplace(name, type).second) {
          return fail(lineno, "duplicate TYPE for family '" + name + "'");
        }
        if (families_with_samples.count(name) != 0) {
          return fail(lineno, "TYPE for '" + name + "' after its samples");
        }
        ++ck.families;
      }
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string name(line.substr(0, i));
    if (!ValidMetricName(name)) {
      return fail(lineno, "invalid sample metric name '" + name + "'");
    }
    std::string family = name;
    auto ft = ck.family_type.find(family);
    if (ft == ck.family_type.end() && name.size() > 6 &&
        name.compare(name.size() - 6, 6, "_total") == 0) {
      family = name.substr(0, name.size() - 6);
      ft = ck.family_type.find(family);
    }
    if (ft == ck.family_type.end()) {
      // Histogram sample names carry _bucket/_sum/_count suffixes.
      for (const std::string_view suf :
           {std::string_view("_bucket"), std::string_view("_sum"),
            std::string_view("_count")}) {
        if (name.size() <= suf.size() ||
            name.compare(name.size() - suf.size(), suf.size(), suf) != 0) {
          continue;
        }
        const std::string cand = name.substr(0, name.size() - suf.size());
        if (auto hf = ck.family_type.find(cand);
            hf != ck.family_type.end() && hf->second == "histogram") {
          family = cand;
          ft = hf;
        }
        break;
      }
    }
    if (ft == ck.family_type.end()) {
      return fail(lineno, "sample for undeclared family '" + name + "'");
    }
    if (ft->second == "counter" && name == family) {
      return fail(lineno, "counter sample '" + name + "' missing _total");
    }
    if (ft->second == "histogram" && name == family) {
      return fail(lineno,
                  "histogram sample '" + name + "' missing suffix");
    }
    if (ft->second != "counter" && ft->second != "histogram" &&
        name != family) {
      return fail(lineno,
                  "non-counter sample '" + name + "' uses _total suffix");
    }
    if (i < line.size() && line[i] == '{') {
      ++i;  // consume '{'
      bool first = true;
      while (true) {
        if (i >= line.size()) return fail(lineno, "unterminated label block");
        if (line[i] == '}') {
          ++i;
          break;
        }
        if (!first) {
          if (line[i] != ',') return fail(lineno, "expected ',' in labels");
          ++i;
        }
        first = false;
        std::size_t eq = i;
        while (eq < line.size() && line[eq] != '=') ++eq;
        if (eq >= line.size()) return fail(lineno, "label missing '='");
        const std::string lname(line.substr(i, eq - i));
        if (!ValidLabelName(lname)) {
          return fail(lineno, "invalid label name '" + lname + "'");
        }
        i = eq + 1;
        if (i >= line.size() || line[i] != '"') {
          return fail(lineno, "label value must be quoted");
        }
        ++i;
        bool closed = false;
        while (i < line.size()) {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) {
              return fail(lineno, "dangling escape in label value");
            }
            const char e = line[i + 1];
            if (e != '\\' && e != '"' && e != 'n') {
              return fail(lineno, std::string("illegal escape '\\") + e +
                                      "' in label value");
            }
            i += 2;
            continue;
          }
          if (line[i] == '"') {
            closed = true;
            ++i;
            break;
          }
          ++i;
        }
        if (!closed) return fail(lineno, "unterminated label value");
      }
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail(lineno, "sample '" + name + "' missing value separator");
    }
    const std::string key(line.substr(0, i));
    const std::string value_str(line.substr(i + 1));
    if (value_str.empty() || value_str.find(' ') != std::string::npos) {
      return fail(lineno, "sample '" + name + "' has malformed value field");
    }
    char* end = nullptr;
    const double v = std::strtod(value_str.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return fail(lineno, "sample '" + name + "' value not a finite number");
    }
    if (ft->second == "counter" && v < 0) {
      return fail(lineno, "counter '" + name + "' is negative");
    }
    if (!ck.values.emplace(key, v).second) {
      return fail(lineno, "duplicate sample '" + key + "'");
    }
    families_with_samples.insert(family);
    ++ck.samples;
  }
  if (!ck.eof) {
    ck.error = "payload does not end with # EOF";
    return ck;
  }
  if (ck.samples == 0) {
    ck.error = "payload contains no samples";
    return ck;
  }
  ck.ok = true;
  return ck;
}

util::Status CheckCounterMonotonic(const TelemetryCheck& prev,
                                   const TelemetryCheck& cur) {
  for (const auto& [key, prev_v] : prev.values) {
    const std::size_t brace = key.find('{');
    const std::string name =
        brace == std::string::npos ? key : key.substr(0, brace);
    if (name.size() <= 6 || name.compare(name.size() - 6, 6, "_total") != 0) {
      continue;
    }
    const std::string family = name.substr(0, name.size() - 6);
    const auto ft = prev.family_type.find(family);
    if (ft == prev.family_type.end() || ft->second != "counter") continue;
    const auto it = cur.values.find(key);
    if (it == cur.values.end()) {
      return util::InvalidArgument("counter disappeared between scrapes: " +
                                   key);
    }
    if (it->second < prev_v) {
      return util::InvalidArgument(
          "counter went backwards: " + key + " " + std::to_string(prev_v) +
          " -> " + std::to_string(it->second));
    }
  }
  return util::OkStatus();
}

}  // namespace ckpt::core
