#include "core/trace_sink.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <set>
#include <utility>

#include "core/engine.hpp"
#include "core/telemetry_sink.hpp"
#include "core/tier_stack.hpp"
#include "util/json.hpp"

namespace ckpt::core {

namespace {

using util::trace::Event;
using util::trace::Kind;

/// One exportable event with its resolved Chrome track coordinates.
struct TrackEvent {
  int pid = 0;             // rank (rank-less -> 0)
  std::uint64_t tid = 0;   // ring-buffer id
  const Event* ev = nullptr;
};

int PidOf(const Event& e) { return e.rank < 0 ? 0 : e.rank; }

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void AppendF(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

/// Formats a double without locale surprises; trims to %.6g.
void AppendNum(std::string& out, double v) { AppendF(out, "%.9g", v); }

void AppendEventJson(std::string& out, const TrackEvent& te) {
  const Event& e = *te.ev;
  const double ts_us = static_cast<double>(e.ts_ns) / 1e3;
  out += R"({"name":")";
  out += util::json::Escape(e.name);
  out += R"(","cat":")";
  out += to_string(e.kind);
  out += "\",";
  if (e.is_flow()) {
    // Lineage flow events: Perfetto draws arrows between same-id events.
    // Both the legacy `id` and the modern `bind_id` carry the flow id; the
    // terminating `f` binds at the enclosing slice ("bp":"e").
    switch (e.flow) {
      case util::trace::FlowPhase::kStart: out += R"("ph":"s",)"; break;
      case util::trace::FlowPhase::kStep: out += R"("ph":"t",)"; break;
      default: out += R"("ph":"f","bp":"e",)"; break;
    }
    AppendF(out, "\"id\":\"0x%" PRIx64 "\",\"bind_id\":\"0x%" PRIx64 "\",",
            e.flow_id, e.flow_id);
  } else if (e.is_span()) {
    out += R"("ph":"X",)";
  } else {
    out += R"("ph":"i","s":"t",)";
  }
  AppendF(out, "\"pid\":%d,\"tid\":%" PRIu64 ",\"ts\":", te.pid, te.tid);
  AppendNum(out, ts_us);
  if (e.is_span()) {
    out += ",\"dur\":";
    AppendNum(out, static_cast<double>(e.dur_ns) / 1e3);
  }
  AppendF(out, ",\"args\":{\"tier\":%d,\"version\":%" PRIu64
               ",\"bytes\":%" PRIu64,
          static_cast<int>(e.tier), e.version, e.bytes);
  if (e.is_flow()) {
    AppendF(out, ",\"rank\":%d", static_cast<int>(e.rank));
  }
  if (e.a != 0.0 || e.b != 0.0) {
    out += ",\"a\":";
    AppendNum(out, e.a);
    out += ",\"b\":";
    AppendNum(out, e.b);
  }
  out += "}}";
}

void AppendSeriesJson(std::string& out, const char* key,
                      const util::SampleSeries& s) {
  AppendF(out, "\"%s\":{\"count\":%zu,", key, s.size());
  out += "\"sum\":";
  AppendNum(out, s.Sum());
  out += ",\"mean\":";
  AppendNum(out, s.Mean());
  out += ",\"p50\":";
  AppendNum(out, s.Percentile(50));
  out += ",\"p95\":";
  AppendNum(out, s.Percentile(95));
  out += ",\"max\":";
  AppendNum(out, s.Max());
  out += "}";
}

void AppendHistJson(std::string& out, const char* key,
                    const util::LogHistogram& h) {
  AppendF(out, "\"%s\":{\"total\":%" PRIu64 ",", key,
          static_cast<std::uint64_t>(h.total()));
  out += "\"min\":";
  AppendNum(out, h.min());
  out += ",\"max\":";
  AppendNum(out, h.max());
  out += ",\"mean\":";
  AppendNum(out, h.mean());
  out += ",\"p50\":";
  AppendNum(out, h.Percentile(50));
  out += ",\"p95\":";
  AppendNum(out, h.Percentile(95));
  // Sparse bucket list: [[lower_edge, count], ...], non-empty buckets only.
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    if (h.bucket_count(i) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[";
    AppendNum(out, h.bucket_lo(i));
    AppendF(out, ",%" PRIu64 "]", h.bucket_count(i));
  }
  out += "]}";
}

void AppendTierVector(std::string& out, const char* key,
                      const std::vector<std::uint64_t>& v,
                      const std::vector<std::string>& tier_names) {
  AppendF(out, "\"%s\":{", key);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ",";
    const std::string label = i < tier_names.size()
                                  ? tier_names[i]
                                  : "tier" + std::to_string(i);
    out += "\"" + util::json::Escape(label) + "\":" + std::to_string(v[i]);
  }
  out += "}";
}

}  // namespace

std::string ChromeTraceJson(const util::trace::TraceSnapshot& snap) {
  // Flatten to (pid, tid, event) rows. One buffer's events normally share a
  // rank, but nothing requires it; the pid comes from each event.
  std::vector<TrackEvent> rows;
  rows.reserve(snap.total_events());
  // Ring wrap left a thread's oldest events overwritten: synthesize one
  // "trace:wrap" instant per affected thread, stamped at its oldest
  // *surviving* event and carrying the drop count in `a`, so flow-aware
  // consumers (ckpt_lineage) can downgrade objects whose start may have
  // been dropped to "unauditable" instead of miscounting them as orphans.
  std::vector<Event> wrap_events;
  wrap_events.reserve(snap.threads.size());
  for (const auto& t : snap.threads) {
    if (t.dropped == 0 || t.events.empty()) continue;
    Event w;
    w.ts_ns = t.events.front().ts_ns;
    w.dur_ns = -1;
    w.name = "trace:wrap";
    w.kind = Kind::kHealth;
    w.rank = t.events.front().rank;
    w.a = static_cast<double>(t.dropped);
    wrap_events.push_back(w);
  }
  {
    std::size_t wi = 0;
    for (const auto& t : snap.threads) {
      if (t.dropped == 0 || t.events.empty()) continue;
      rows.push_back(TrackEvent{PidOf(wrap_events[wi]), t.buffer_id,
                                &wrap_events[wi]});
      ++wi;
    }
  }
  for (const auto& t : snap.threads) {
    for (const Event& e : t.events) {
      rows.push_back(TrackEvent{PidOf(e), t.buffer_id, &e});
    }
  }
  // Spans are recorded at *end* time carrying their begin timestamp, so a
  // buffer's raw order is end-ordered; sort by begin ts per track so each
  // track reads monotonically.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const TrackEvent& x, const TrackEvent& y) {
                     if (x.pid != y.pid) return x.pid < y.pid;
                     if (x.tid != y.tid) return x.tid < y.tid;
                     return x.ev->ts_ns < y.ev->ts_ns;
                   });

  std::string out;
  out.reserve(rows.size() * 160 + 4096);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Metadata: process names per pid, thread names per (pid, tid).
  std::set<int> pids;
  std::set<std::pair<int, std::uint64_t>> tracks;
  for (const auto& r : rows) {
    pids.insert(r.pid);
    tracks.insert({r.pid, r.tid});
  }
  for (const int pid : pids) {
    if (!first) out += ",";
    first = false;
    AppendF(out,
            R"({"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"rank %d"}})",
            pid, pid);
  }
  for (const auto& t : snap.threads) {
    for (const auto& [pid, tid] : tracks) {
      if (tid != t.buffer_id) continue;
      if (!first) out += ",";
      first = false;
      AppendF(out, R"({"name":"thread_name","ph":"M","pid":%d,"tid":%)" PRIu64
                   R"(,"args":{"name":")",
              pid, tid);
      out += util::json::Escape(t.thread_name);
      out += "\"}}";
    }
  }
  for (const auto& r : rows) {
    if (!first) out += ",";
    first = false;
    AppendEventJson(out, r);
  }
  out += "]}";
  return out;
}

std::string ChromeTraceJson() { return ChromeTraceJson(util::trace::Collect()); }

util::Status WriteChromeTrace(const std::string& path) {
  const std::string body = ChromeTraceJson();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return util::IoError("trace: cannot open '" + path + "' for writing");
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  f.flush();
  if (!f) return util::IoError("trace: short write to '" + path + "'");
  return util::OkStatus();
}

std::string MetricsJson(const RankMetrics& m,
                        const std::vector<std::string>& tier_names) {
  std::string out;
  out.reserve(4096);
  out += "{";
  AppendSeriesJson(out, "ckpt_block_s", m.ckpt_block_s);
  out += ",";
  AppendSeriesJson(out, "restore_block_s", m.restore_block_s);
  AppendF(out, ",\"ckpt_throughput_Bps\":");
  AppendNum(out, m.CkptThroughput());
  AppendF(out, ",\"restore_throughput_Bps\":");
  AppendNum(out, m.RestoreThroughput());
  AppendF(out,
          ",\"bytes_checkpointed\":%" PRIu64 ",\"bytes_restored\":%" PRIu64
          ",\"restores_from_gpu\":%" PRIu64 ",\"restores_from_host\":%" PRIu64
          ",\"restores_from_store\":%" PRIu64
          ",\"restores_waited_promotion\":%" PRIu64,
          m.bytes_checkpointed, m.bytes_restored, m.restores_from_gpu,
          m.restores_from_host, m.restores_from_store,
          m.restores_waited_promotion);
  out += ",";
  AppendTierVector(out, "restores_from_tier", m.restores_from_tier, tier_names);
  out += ",";
  AppendTierVector(out, "flush_bytes_to_tier", m.flush_bytes_to_tier, tier_names);
  out += ",";
  AppendTierVector(out, "evictions_from_tier", m.evictions_from_tier, tier_names);
  out += ",";
  AppendTierVector(out, "evicted_bytes_from_tier", m.evicted_bytes_from_tier,
                   tier_names);
  AppendF(out,
          ",\"prefetch_promotions\":%" PRIu64 ",\"prefetch_gpu_hits\":%" PRIu64
          ",\"prefetch_aborts\":%" PRIu64,
          m.prefetch_promotions, m.prefetch_gpu_hits, m.prefetch_aborts);
  out += ",\"reserve_wait_write_s\":";
  AppendNum(out, m.reserve_wait_write_s);
  out += ",\"reserve_wait_prefetch_s\":";
  AppendNum(out, m.reserve_wait_prefetch_s);
  AppendF(out, ",\"reserve_rounds\":%" PRIu64, m.reserve_rounds);
  AppendF(out, ",\"reserve_plans_stale\":%" PRIu64, m.reserve_plans_stale);
  AppendF(out, ",\"reserve_snapshot_reuse\":%" PRIu64,
          m.reserve_snapshot_reuse);
  AppendF(out, ",\"reserve_quota_waits\":%" PRIu64, m.reserve_quota_waits);
  out += ",\"reserve_wait_quota_s\":";
  AppendNum(out, m.reserve_wait_quota_s);
  AppendF(out, ",\"flushes_completed\":%" PRIu64 ",\"flushes_cancelled\":%" PRIu64,
          m.flushes_completed, m.flushes_cancelled);
  out += ",\"wait_for_flush_s\":";
  AppendNum(out, m.wait_for_flush_s);
  AppendF(out,
          ",\"flush_retries\":%" PRIu64 ",\"flush_failures\":%" PRIu64
          ",\"tier_degradations\":%" PRIu64 ",\"fetch_retries\":%" PRIu64
          ",\"fetch_fallbacks\":%" PRIu64 ",\"checkpoints_lost\":%" PRIu64,
          m.flush_retries, m.flush_failures, m.tier_degradations,
          m.fetch_retries, m.fetch_fallbacks, m.checkpoints_lost);
  AppendF(out,
          ",\"watchdog_stalls\":%" PRIu64 ",\"watchdog_fsm_stalls\":%" PRIu64
          ",\"watchdog_flush_stalls\":%" PRIu64
          ",\"watchdog_reserve_stalls\":%" PRIu64,
          m.watchdog_stalls, m.watchdog_fsm_stalls, m.watchdog_flush_stalls,
          m.watchdog_reserve_stalls);
  out += ",\"init_s\":";
  AppendNum(out, m.init_s);
  out += ",";
  AppendHistJson(out, "ckpt_block_hist", m.ckpt_block_hist);
  out += ",";
  AppendHistJson(out, "restore_block_hist", m.restore_block_hist);
  out += ",";
  AppendHistJson(out, "promotion_hist", m.promotion_hist);
  out += ",";
  AppendHistJson(out, "reserve_round_hist", m.reserve_round_hist);
  out += ",\"flush_stage_hist\":{";
  for (std::size_t i = 0; i < m.flush_stage_hist.size(); ++i) {
    if (i) out += ",";
    const std::string label = i < tier_names.size()
                                  ? tier_names[i]
                                  : "tier" + std::to_string(i);
    const std::string key = "\"" + util::json::Escape(label) + "\":";
    out += key;
    // Reuse the histogram renderer body by emitting with a dummy key into a
    // scratch string, then stripping the key prefix.
    std::string scratch;
    AppendHistJson(scratch, "h", m.flush_stage_hist[i]);
    out += scratch.substr(scratch.find(':') + 1);
  }
  out += "}";
  // Lineage accounting (DESIGN.md §14): emitted only when lineage tracking
  // recorded something, so lineage-off output stays byte-identical.
  if (m.objects_admitted > 0) {
    AppendF(out,
            ",\"lineage\":{\"admitted\":%" PRIu64 ",\"durable\":%" PRIu64
            ",\"degraded\":%" PRIu64 ",\"lost\":%" PRIu64
            ",\"erased\":%" PRIu64 "}",
            m.objects_admitted, m.objects_durable, m.objects_degraded,
            m.objects_lost, m.objects_erased);
    out += ",\"durability_lag_s\":{";
    bool first_tier = true;
    for (std::size_t i = 0; i < m.durable_lag_hist.size(); ++i) {
      if (m.durable_lag_hist[i].total() == 0) continue;
      if (!first_tier) out += ",";
      first_tier = false;
      const std::string label = i < tier_names.size()
                                    ? tier_names[i]
                                    : "tier" + std::to_string(i);
      out += "\"" + util::json::Escape(label) + "\":";
      std::string scratch;
      AppendHistJson(scratch, "h", m.durable_lag_hist[i]);
      out += scratch.substr(scratch.find(':') + 1);
    }
    out += "}";
  }
  out += ",\"restore_series\":[";
  for (std::size_t i = 0; i < m.restore_series.size(); ++i) {
    const RestorePoint& p = m.restore_series[i];
    if (i) out += ",";
    AppendF(out,
            "{\"iteration\":%" PRIu64 ",\"version\":%" PRIu64
            ",\"bytes\":%" PRIu64 ",\"prefetch_distance\":%" PRIu64
            ",\"blocking_s\":",
            p.iteration, p.version, p.bytes, p.prefetch_distance);
    AppendNum(out, p.blocking_s);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshotJson(const Engine& engine) {
  const TierStack& stack = engine.tiers();
  std::vector<std::string> tier_names;
  tier_names.reserve(stack.size());
  for (std::size_t i = 0; i < stack.size(); ++i) {
    tier_names.emplace_back(stack.name(i));
  }

  std::string out;
  out += "{\"tiers\":[";
  for (std::size_t i = 0; i < tier_names.size(); ++i) {
    if (i) out += ",";
    out += "\"" + util::json::Escape(tier_names[i]) + "\"";
  }
  out += "],\"ranks\":[";
  RankMetrics merged;
  for (int r = 0; r < engine.num_ranks(); ++r) {
    const RankMetrics m = engine.MetricsSnapshot(r);
    if (r) out += ",";
    std::string entry = MetricsJson(m, tier_names);
    // Multi-tenant engines attribute each rank entry to its owning tenant;
    // single-tenant output is unchanged.
    const std::string tenant = engine.TenantLabelOf(r);
    if (!tenant.empty()) {
      entry.insert(1, "\"tenant\":\"" + util::json::Escape(tenant) + "\",");
    }
    out += entry;
    merged.Merge(m);
  }
  out += "],\"merged\":";
  out += MetricsJson(merged, tier_names);
  // Remote/aggregating durable-tier store counters; absent (not empty) for
  // stacks without a stats-reporting store, so legacy snapshots are
  // byte-identical.
  const std::string remote = RemoteTiersJson(engine);
  if (!remote.empty()) {
    out += ",\"remote_tiers\":";
    out += remote;
  }
  out += "}";
  return out;
}

util::Status WriteMetricsSnapshot(const Engine& engine, const std::string& path) {
  const std::string body = MetricsSnapshotJson(engine);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return util::IoError("metrics: cannot open '" + path + "' for writing");
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  f.flush();
  if (!f) return util::IoError("metrics: short write to '" + path + "'");
  return util::OkStatus();
}

TraceCheck ValidateChromeTrace(std::string_view json_text) {
  TraceCheck check;
  auto doc = util::json::Parse(json_text);
  if (!doc.ok()) {
    check.error = doc.status().ToString();
    return check;
  }
  const util::json::Value* events = doc->Find("traceEvents");
  if (events == nullptr && doc->is_array()) events = &*doc;  // bare-array form
  if (events == nullptr || !events->is_array()) {
    check.error = "missing traceEvents array";
    return check;
  }
  // Per-track last-seen begin timestamp for the monotonicity check.
  std::map<std::pair<int, std::uint64_t>, double> last_ts;
  std::set<std::pair<int, std::uint64_t>> tracks;
  // Per-flow-id bookkeeping: flow events cross tracks, so binding is
  // checked in a post-pass over these rollups rather than in file order.
  struct FlowStats {
    std::size_t starts = 0;
    std::size_t steps = 0;
    std::size_t finishes = 0;
    double first_start_ts = 0.0;
    double last_finish_ts = 0.0;
  };
  std::map<std::string, FlowStats> flows;
  // Per-track rollups for --summary; names come from thread_name metadata,
  // kept separate so metadata-only tracks don't show up in the stats.
  std::map<std::pair<int, std::uint64_t>, TraceCheck::TrackStats> stats;
  std::map<std::pair<int, std::uint64_t>, std::string> track_names;
  for (const auto& ev : events->as_array()) {
    if (!ev.is_object()) {
      check.error = "traceEvents element is not an object";
      return check;
    }
    const util::json::Value* ph = ev.Find("ph");
    const util::json::Value* name = ev.Find("name");
    if (ph == nullptr || !ph->is_string() || name == nullptr ||
        !name->is_string()) {
      check.error = "event missing ph/name";
      return check;
    }
    const int pid = static_cast<int>(
        ev.Find("pid") != nullptr ? ev.Find("pid")->as_number() : 0);
    const auto tid = static_cast<std::uint64_t>(
        ev.Find("tid") != nullptr ? ev.Find("tid")->as_number() : 0);
    const auto key = std::make_pair(pid, tid);
    if (ph->as_string() == "M") {  // metadata carries no timestamp
      if (name->as_string() == "thread_name") {
        const util::json::Value* args = ev.Find("args");
        const util::json::Value* nm =
            args != nullptr ? args->Find("name") : nullptr;
        if (nm != nullptr && nm->is_string()) track_names[key] = nm->as_string();
      }
      continue;
    }
    const util::json::Value* ts = ev.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      check.error = "event '" + name->as_string() + "' missing ts";
      return check;
    }
    if (ts->as_number() < 0) {
      // All engine timestamps come from one monotonic clock (util::Clock);
      // a negative ts means a mixed clock domain or arithmetic underflow.
      check.error = "event '" + name->as_string() + "' has negative ts";
      return check;
    }
    tracks.insert(key);
    TraceCheck::TrackStats& track = stats[key];
    ++track.events;
    auto [it, inserted] = last_ts.try_emplace(key, ts->as_number());
    if (!inserted) {
      if (ts->as_number() < it->second) {
        check.error = "non-monotonic ts on track pid=" + std::to_string(pid) +
                      " tid=" + std::to_string(tid);
        return check;
      }
      it->second = ts->as_number();
    }
    ++check.events;
    const std::string cat =
        ev.Find("cat") != nullptr ? ev.Find("cat")->as_string() : "";
    if (ph->as_string() == "X") {
      const util::json::Value* dur = ev.Find("dur");
      if (dur == nullptr || !dur->is_number() || dur->as_number() < 0) {
        check.error = "span '" + name->as_string() + "' missing/negative dur";
        return check;
      }
      ++check.spans;
      ++check.spans_per_category[cat];
      ++track.spans;
      track.total_dur_us += dur->as_number();
      track.max_dur_us = std::max(track.max_dur_us, dur->as_number());
    } else if (ph->as_string() == "i") {
      ++check.instants;
      if (name->as_string() == "trace:wrap") ++check.wraps;
    } else if (ph->as_string() == "s" || ph->as_string() == "t" ||
               ph->as_string() == "f") {
      const util::json::Value* id = ev.Find("id");
      if (id == nullptr || !id->is_string() || id->as_string().empty()) {
        check.error =
            "flow event '" + name->as_string() + "' missing string id";
        return check;
      }
      FlowStats& fs = flows[id->as_string()];
      ++check.flows_per_category[cat];
      if (ph->as_string() == "s") {
        ++check.flow_starts;
        if (fs.starts == 0 || ts->as_number() < fs.first_start_ts) {
          fs.first_start_ts = ts->as_number();
        }
        ++fs.starts;
      } else if (ph->as_string() == "t") {
        ++check.flow_steps;
        ++fs.steps;
      } else {
        ++check.flow_finishes;
        fs.last_finish_ts = std::max(fs.last_finish_ts, ts->as_number());
        ++fs.finishes;
      }
    }
  }
  // Flow binding post-pass: every termination must bind to a start of the
  // same id that happened at or before it, and one incarnation terminates
  // at most once (re-admitted objects reuse their id, so starts and
  // finishes pair up 1:1 per incarnation). A ring wrap can legitimately
  // drop a flow's start while its finish survives — those ids are counted
  // as unbound instead of failing the trace, but only when a trace:wrap
  // marker proves events were dropped.
  check.flows = flows.size();
  for (const auto& [id, fs] : flows) {
    if (fs.finishes > fs.starts) {
      if (check.wraps == 0) {
        check.error = fs.starts == 0
                          ? "flow " + id + " terminates without a start"
                          : "flow " + id + " has duplicate terminations";
        return check;
      }
      ++check.flows_unbound;
      continue;
    }
    if (fs.finishes > 0 && fs.last_finish_ts < fs.first_start_ts) {
      check.error = "flow " + id + " terminates before its start";
      return check;
    }
    if (fs.starts > fs.finishes) ++check.flows_dangling;
  }
  check.tracks = tracks.size();
  check.track_stats.reserve(stats.size());
  for (auto& [key, track] : stats) {
    track.pid = key.first;
    track.tid = key.second;
    if (auto nit = track_names.find(key); nit != track_names.end()) {
      track.name = nit->second;
    }
    check.track_stats.push_back(std::move(track));
  }
  if (check.events == 0) {
    check.error = "trace contains no events";
    return check;
  }
  check.ok = true;
  return check;
}

}  // namespace ckpt::core
