#include "core/restore_queue.hpp"

namespace ckpt::core {

void RestoreQueue::Enqueue(Version v) {
  const std::uint64_t seq = next_seq_++;
  hints_.emplace_back(v, seq);
  by_version_[v].insert(seq);
}

std::optional<Version> RestoreQueue::Head() const {
  if (hints_.empty()) return std::nullopt;
  return hints_.front().first;
}

void RestoreQueue::PopHead() {
  if (hints_.empty()) return;
  auto [v, seq] = hints_.front();
  hints_.pop_front();
  RemoveSeq(v, seq);
}

bool RestoreQueue::Drop(Version v) {
  auto it = by_version_.find(v);
  if (it == by_version_.end() || it->second.empty()) return false;
  const std::uint64_t seq = *it->second.begin();
  // Remove from the deque (linear, but Drop is rare: only on deviation).
  for (auto dit = hints_.begin(); dit != hints_.end(); ++dit) {
    if (dit->second == seq) {
      hints_.erase(dit);
      break;
    }
  }
  RemoveSeq(v, seq);
  return true;
}

std::optional<std::uint64_t> RestoreQueue::DistanceOf(Version v) const {
  auto it = by_version_.find(v);
  if (it == by_version_.end() || it->second.empty()) return std::nullopt;
  const std::uint64_t target_seq = *it->second.begin();
  // Count pending hints ahead of the target. The deque is seq-ordered, so a
  // binary search gives the position directly.
  std::uint64_t lo = 0;
  std::uint64_t hi = hints_.size();
  while (lo < hi) {
    const std::uint64_t mid = (lo + hi) / 2;
    if (hints_[mid].second < target_seq) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void RestoreQueue::RemoveSeq(Version v, std::uint64_t seq) {
  auto it = by_version_.find(v);
  if (it == by_version_.end()) return;
  it->second.erase(seq);
  if (it->second.empty()) by_version_.erase(it);
}

}  // namespace ckpt::core
