// Allocation table `A` of a contiguous cache buffer (§4.2): an offset-ordered
// sequence of fragments, each either a checkpoint entry or a gap. Gaps are
// first-class fragments (Algorithm 1 scores them with the highest eviction
// priority) and are kept coalesced: the table never contains two adjacent
// gaps.
//
// The table is a pure data structure — no locking, no knowledge of
// checkpoint states. The engine provides scores; the eviction policy picks
// windows; this class guarantees the geometric invariants:
//   * fragments tile [0, capacity) exactly (no holes, no overlap);
//   * offsets strictly increase;
//   * adjacent gaps are merged;
//   * every entry id appears at most once.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "util/status.hpp"

namespace ckpt::core {

/// Entry identifier within a cache buffer. The engine uses checkpoint
/// versions; kGapId marks gap fragments.
using EntryId = std::uint64_t;
inline constexpr EntryId kGapId = ~0ull;

struct Fragment {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  EntryId id = kGapId;

  [[nodiscard]] bool is_gap() const noexcept { return id == kGapId; }
  friend bool operator==(const Fragment&, const Fragment&) = default;
};

class AllocationTable {
 public:
  explicit AllocationTable(std::uint64_t capacity);

  /// Carves an entry out of the gap containing [offset, offset+size).
  /// Fails if the range is not fully inside one gap or the id exists.
  util::Status Insert(EntryId id, std::uint64_t offset, std::uint64_t size);

  /// Converts the entry back into a gap and coalesces neighbours.
  util::Status Erase(EntryId id);

  /// Replaces the fragment run covering exactly [offset, offset+span) with a
  /// new entry of `size` (<= span) at `offset` followed by a gap of
  /// span-size bytes. Every checkpoint fragment in the run must have been
  /// Erase()d by the caller beforehand, i.e. the run must be one coalesced
  /// gap. This is the commit step of Algorithm 1.
  util::Status Overwrite(EntryId id, std::uint64_t offset, std::uint64_t span,
                         std::uint64_t size);

  [[nodiscard]] std::optional<Fragment> Find(EntryId id) const;
  /// The gap fragment containing byte `offset`, if that byte is in a gap.
  /// Used by the commit step after victims were erased (their gaps may have
  /// coalesced with neighbours outside the chosen window).
  [[nodiscard]] std::optional<Fragment> GapContaining(std::uint64_t offset) const;
  [[nodiscard]] bool Contains(EntryId id) const { return Find(id).has_value(); }

  /// Fragments in offset order. O(N) snapshot used by eviction planning.
  [[nodiscard]] std::vector<Fragment> Snapshot() const;

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  /// Monotone counter bumped by every successful mutation (Insert / Erase /
  /// Overwrite). Lets callers plan on a Snapshot() without a lock and
  /// cheaply detect at commit time whether the geometry they planned against
  /// is still current (CacheBuffer's optimistic plan/revalidate protocol).
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t gap_bytes() const noexcept { return capacity_ - used_; }
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t fragment_count() const noexcept { return frags_.size(); }
  /// Size of the largest single gap (fragmentation probe).
  [[nodiscard]] std::uint64_t largest_gap() const;

  /// Validates all geometric invariants; used by property tests.
  [[nodiscard]] util::Status CheckInvariants() const;

 private:
  // frags_: offset -> fragment (gap or entry), tiling [0, capacity).
  std::map<std::uint64_t, Fragment> frags_;
  // entries_: id -> offset, for O(log n) lookup.
  std::map<EntryId, std::uint64_t> entries_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t version_ = 0;

  void CoalesceAround(std::uint64_t offset);
};

}  // namespace ckpt::core
