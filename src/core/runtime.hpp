// Common interface over the compared checkpoint runtimes (§5.2): the
// score-based engine (the paper's proposal), the UVM-managed baseline, and
// the ADIOS2/BP5-style deferred-I/O baseline. The experiment harness drives
// all three through this surface; baselines that have no prefetch support
// simply accept and ignore the hint calls (as the real systems would).
#pragma once

#include <cstdint>

#include "core/metrics.hpp"
#include "core/types.hpp"
#include "simgpu/types.hpp"
#include "util/status.hpp"

namespace ckpt::core {

class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual util::Status Checkpoint(sim::Rank rank, Version v,
                                  sim::ConstBytePtr src, std::uint64_t size) = 0;
  virtual util::Status Restore(sim::Rank rank, Version v, sim::BytePtr dst,
                               std::uint64_t capacity) = 0;
  virtual util::StatusOr<std::uint64_t> RecoverSize(sim::Rank rank, Version v) = 0;
  virtual util::Status PrefetchEnqueue(sim::Rank rank, Version v) = 0;
  virtual util::Status PrefetchStart(sim::Rank rank) = 0;
  virtual util::Status WaitForFlushes(sim::Rank rank) = 0;
  virtual void Shutdown() = 0;

  /// Consistent copy of one rank's metrics, taken under that rank's lock —
  /// safe to call while background flush/prefetch threads are running.
  [[nodiscard]] virtual RankMetrics metrics(sim::Rank rank) const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when the runtime serves several tenants over one shared engine
  /// (DESIGN.md §12). The baselines are single-job runtimes and keep the
  /// default; only the score engine overrides this.
  [[nodiscard]] virtual bool multi_tenant() const { return false; }
};

}  // namespace ckpt::core
