// Tenant layer for the multi-tenant checkpoint service (DESIGN.md §12).
//
// The engine's TierStack, cache buffers, rate limiters, and worker threads
// are *shared* resources; a tenant is the unit of isolation layered on top:
// a contiguous block of ranks with its own identity, cache-byte quota, and
// fair-share weight. Because every RankCtx (records, FSM lifecycles, restore
// queue, hint inbox) already belongs to exactly one rank, assigning ranks to
// tenants partitions all per-job state without moving any of it — the
// registry only has to answer "which tenant does rank r serve?" on hot paths,
// which it does lock-free.
//
// The `tenants=` config grammar mirrors `tiers=`:
//
//   tenants = name ":" quota [":" weight] (";" ...)*
//   e.g.    tenants = rtm:24Mi;synth:8Mi:0.5
//
// quota caps the tenant's total bytes across *cache* tiers (0 = unlimited);
// weight scales its share of rate-limiter bandwidth under contention
// (start-time fair queuing, util/rate_limiter.hpp). Ranks are split into
// contiguous blocks in declaration order, remainder to the earlier tenants.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace ckpt::core {

using TenantId = int;
inline constexpr TenantId kNoTenant = -1;
/// The implicit tenant legacy single-job callers run under.
inline constexpr TenantId kDefaultTenant = 0;

struct TenantSpec {
  std::string name;
  /// Total cache bytes (across all cache tiers and the tenant's ranks) the
  /// tenant may hold before ReserveOn starts shedding/throttling it.
  /// 0 = unlimited.
  std::uint64_t quota_bytes = 0;
  /// Fair-share weight for shared rate-limiter bandwidth (SFQ flow weight).
  double weight = 1.0;
};

/// Parses the `tenants=` grammar above. Empty text -> empty vector (legacy
/// single-tenant mode). Rejects duplicate names, empty names, bad sizes, and
/// non-positive weights.
util::StatusOr<std::vector<TenantSpec>> ParseTenantSpecs(std::string_view text);

/// Per-tenant bookkeeping owned by the registry. The rank interval
/// [first_rank, first_rank + num_ranks) is this tenant's; all per-rank engine
/// state (records, lifecycles, restore queues, hint inboxes) inside it is
/// thereby per-tenant.
struct TenantCtx {
  TenantId id = kNoTenant;
  TenantSpec spec;
  int first_rank = 0;
  int num_ranks = 0;
  /// Cleared by Close(): subsequent checkpoint/restore/hint calls on the
  /// tenant's ranks fail with kFailedPrecondition.
  std::atomic<bool> open{true};
};

/// Owns the tenant table and the rank -> tenant mapping. Open/Close are
/// rare control-plane calls (mutex); tenant_of() is hot-path (per
/// checkpoint/restore/reserve) and lock-free.
class TenantRegistry {
 public:
  explicit TenantRegistry(int total_ranks);

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Claims the next `num_ranks` unassigned ranks (contiguous, ascending)
  /// for a new tenant. Fails if the name is empty/duplicate or fewer than
  /// `num_ranks` ranks remain unassigned.
  util::StatusOr<TenantId> Open(const TenantSpec& spec, int num_ranks);

  /// Quiesces the tenant: marks it closed so new operations on its ranks
  /// are rejected. Rank ownership is retained (ranks are not recycled —
  /// the simulated cluster's rank blocks are fixed for the process).
  util::Status Close(TenantId id);

  /// Lock-free: tenant owning `rank`, or kNoTenant if unassigned.
  [[nodiscard]] TenantId tenant_of(int rank) const noexcept {
    if (rank < 0 || rank >= static_cast<int>(rank_tenant_.size())) {
      return kNoTenant;
    }
    return rank_tenant_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  /// Lock-free: ctx for `id`; nullptr if out of range. Valid for the
  /// registry's lifetime (tenants are never destroyed, only closed).
  [[nodiscard]] const TenantCtx* Get(TenantId id) const noexcept {
    if (id < 0 || id >= count_.load(std::memory_order_acquire)) {
      return nullptr;
    }
    return tenants_[static_cast<std::size_t>(id)].get();
  }

  [[nodiscard]] TenantId FindByName(std::string_view name) const;

  [[nodiscard]] int count() const noexcept {
    return count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] int total_ranks() const noexcept { return total_ranks_; }
  [[nodiscard]] int assigned_ranks() const noexcept {
    return next_rank_.load(std::memory_order_acquire);
  }

 private:
  const int total_ranks_;
  mutable std::mutex mu_;  // serializes Open/Close only
  // Slots are reserved up front so readers never observe a reallocation;
  // count_ publishes how many are live.
  std::vector<std::unique_ptr<TenantCtx>> tenants_;
  std::vector<std::atomic<TenantId>> rank_tenant_;
  std::atomic<int> count_{0};
  std::atomic<int> next_rank_{0};
};

}  // namespace ckpt::core
