// Telemetry exposition: turns Engine probe readings and util::telemetry
// sample windows into consumable text — OpenMetrics/Prometheus exposition
// for scrapers, window JSON for flight-recorder dumps, and the per-shot
// critical-path attribution embedded in bench reports. Also hosts the
// OpenMetrics validator the tests and the `telemetry_check` CLI share.
//
// Exposition format follows the OpenMetrics text format: every family is
// declared with `# HELP`/`# TYPE` before its samples, counter samples carry
// the `_total` suffix, label values are escaped, and the payload ends with
// `# EOF`. Example:
//   # TYPE ckpt_tier_bytes_used gauge
//   ckpt_tier_bytes_used{tier="gpu",rank="0"} 1048576
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace ckpt::core {

class Engine;

/// Tier labels for exposition, by stack index (TierStack::name).
[[nodiscard]] std::vector<std::string> TelemetryTierNames(const Engine& engine);

/// Builds one immutable telemetry sample by probing every rank of `engine`
/// (lock-free; see Engine::Probe). `prev` — the previous sample, when one
/// exists — supplies the baseline for window throughput rates
/// (TierSample::flush_Bps, RankSample::restore_Bps).
[[nodiscard]] util::telemetry::SamplePtr BuildTelemetrySample(
    const Engine& engine, std::uint64_t seq,
    const util::telemetry::TelemetrySample* prev = nullptr);

/// Store-level counters of `engine`'s remote/aggregating durable tiers
/// (storage::ObjectStore::CollectStats). Empty when no durable store in the
/// stack reports stats — i.e. for every pre-remote configuration.
[[nodiscard]] std::vector<util::telemetry::RemoteTierSample> CollectRemoteTiers(
    const Engine& engine);

/// JSON array of the same counters ("[]"-less: empty string when no durable
/// store reports stats), for embedding in metrics snapshots.
[[nodiscard]] std::string RemoteTiersJson(const Engine& engine);

/// Renders `s` in OpenMetrics text format. `tier_names` labels the per-tier
/// families; indices beyond the vector fall back to "tierN".
[[nodiscard]] std::string OpenMetricsText(
    const util::telemetry::TelemetrySample& s,
    const std::vector<std::string>& tier_names);

/// Convenience: probe `engine` now (a fresh one-off sample with no rate
/// baseline) and render it. Used by scrape entry points when no sampler is
/// running.
[[nodiscard]] std::string OpenMetricsText(const Engine& engine);

/// Renders the ring's current window as JSON, oldest sample first:
/// `{"capacity":...,"total":...,"samples":[{"ts_ns":...,"seq":...,
/// "ranks":[...]}]}`. Lock-free (SampleRing::Window).
[[nodiscard]] std::string TelemetryWindowJson(
    const util::telemetry::SampleRing& ring,
    const std::vector<std::string>& tier_names = {});

/// Per-shot critical-path attribution (DESIGN.md §11): where the wall time
/// of a run went, per rank and merged — application compute vs. checkpoint
/// blocking vs. restore blocking vs. WAIT-mode flush barriers, plus the
/// reservation waits and per-tier flush-stage seconds behind them.
/// `wall_s` is the caller-measured wall time of the shot; compute_s is
/// derived as wall_s minus the application-thread blocking components,
/// clamped at 0.
[[nodiscard]] std::string CriticalPathJson(const Engine& engine, double wall_s);

/// Structural validation result for an OpenMetrics payload.
struct TelemetryCheck {
  bool ok = false;
  std::string error;        ///< first violation, empty when ok
  std::size_t families = 0; ///< `# TYPE` declarations
  std::size_t samples = 0;  ///< sample lines
  bool eof = false;         ///< payload ends with `# EOF`
  /// Family name -> declared type ("gauge", "counter", ...).
  std::map<std::string, std::string> family_type;
  /// Sample key (name + label block as emitted) -> parsed value.
  std::map<std::string, double> values;

  [[nodiscard]] double value_or(const std::string& key,
                                double fallback = 0.0) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

/// Parses and validates one OpenMetrics payload: metric/label name charsets,
/// escape sequences in label values, TYPE-before-samples ordering, the
/// `_total` convention for counters, finite (and for counters non-negative)
/// values, and the trailing `# EOF` marker.
[[nodiscard]] TelemetryCheck ValidateOpenMetrics(std::string_view text);

/// Cross-scrape counter monotonicity: every counter sample present in
/// `prev` must still be present in `cur` with a value >= the previous one.
[[nodiscard]] util::Status CheckCounterMonotonic(const TelemetryCheck& prev,
                                                 const TelemetryCheck& cur);

}  // namespace ckpt::core
