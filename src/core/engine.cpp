#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdlib>

#include "simgpu/copy.hpp"
#include "util/clock.hpp"
#include "util/flow_id.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace ckpt::core {

namespace {

using util::Stopwatch;
namespace trace = util::trace;

constexpr auto kReplanMin = std::chrono::microseconds(100);
constexpr auto kReplanMax = std::chrono::milliseconds(20);
/// Bounded tenant-quota wait: after this many kReplanMax sleeps without
/// headroom, ReserveOn returns kCapacityExceeded and the caller falls back
/// to a deeper tier (DESIGN.md §12).
constexpr int kQuotaRoundsMax = 5;

storage::ObjectKey KeyOf(sim::Rank rank, Version v) {
  return storage::ObjectKey{rank, v};
}

/// Lifecycle span name per FSM state. Static literals: event name pointers
/// must outlive the engine (dumps typically happen after teardown).
/// CKPT_LINEAGE=1|on|true|yes enables lineage tracking without touching the
/// EngineOptions (mirrors CKPT_TRACE's truthy parse).
bool LineageEnvOn() {
  const char* v = std::getenv("CKPT_LINEAGE");
  if (v == nullptr) return false;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char ch) {
    return static_cast<char>(std::tolower(ch));
  });
  return s == "1" || s == "on" || s == "true" || s == "yes";
}

constexpr const char* StateSpanName(CkptState s) noexcept {
  switch (s) {
    case CkptState::kInit: return "state:INIT";
    case CkptState::kWriteInProgress: return "state:WRITE_IN_PROGRESS";
    case CkptState::kWriteComplete: return "state:WRITE_COMPLETE";
    case CkptState::kFlushed: return "state:FLUSHED";
    case CkptState::kReadInProgress: return "state:READ_IN_PROGRESS";
    case CkptState::kReadComplete: return "state:READ_COMPLETE";
    case CkptState::kConsumed: return "state:CONSUMED";
    case CkptState::kFlushFailed: return "state:FLUSH_FAILED";
  }
  return "state:?";
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

Engine::Engine(sim::Cluster& cluster, TierStack stack, EngineOptions options,
               int num_ranks)
    : cluster_(cluster), stack_(std::move(stack)), options_(options) {
  assert(!stack_.empty() && "Engine requires a validated TierStack");
  Init(num_ranks);
}

Engine::Engine(sim::Cluster& cluster, std::shared_ptr<storage::ObjectStore> ssd,
               std::shared_ptr<storage::ObjectStore> pfs, EngineOptions options,
               int num_ranks)
    : cluster_(cluster), options_(options) {
  assert(ssd != nullptr && "Engine requires an SSD-tier store");
  auto stack = TierStack::Default(std::move(ssd), std::move(pfs),
                                  options_.gpu_cache_bytes,
                                  options_.host_cache_bytes,
                                  options_.terminal_tier);
  if (!stack.ok()) {
    // The legacy constructor's historical contract is assert-on-misuse
    // (e.g. terminal_tier == kPfs without a PFS store).
    CKPT_LOG(kError, "engine") << "invalid default tier stack: "
                               << stack.status().ToString();
    std::abort();
  }
  stack_ = std::move(*stack);
  Init(num_ranks);
}

void Engine::Init(int num_ranks) {
  assert(num_ranks > 0 && num_ranks <= cluster_.total_gpus());
  const int ncache = stack_.num_cache_tiers();
  const auto& cfg = cluster_.config();

  // Cache tiers that did not name a policy in their spec inherit the legacy
  // engine-wide knob; after this every stack_.policy(i) is concrete.
  stack_.ResolveEvictionPolicies(options_.eviction);

  durable_span_names_.reserve(static_cast<std::size_t>(stack_.num_durable_tiers()));
  for (int d = 0; d < stack_.num_durable_tiers(); ++d) {
    const auto idx = static_cast<std::size_t>(stack_.durable_index(d));
    durable_span_names_.push_back(
        trace::Intern("flush:" + std::string(stack_.name(idx))));
  }

  // Lineage tracking (DESIGN.md §14): options flag or CKPT_LINEAGE. The
  // global flow-emission gate follows the newest engine's setting so the
  // stores (which have no engine reference) can self-gate their flow steps.
  lineage_ = options_.lineage || LineageEnvOn();
  trace::EnableFlows(lineage_);
  if (lineage_) {
    flow_hop_names_.reserve(stack_.size());
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      flow_hop_names_.push_back(
          trace::Intern("hop:" + std::string(stack_.name(i))));
    }
    flow_ack_names_.reserve(
        static_cast<std::size_t>(stack_.num_durable_tiers()));
    for (int d = 0; d < stack_.num_durable_tiers(); ++d) {
      const auto idx = static_cast<std::size_t>(stack_.durable_index(d));
      flow_ack_names_.push_back(
          trace::Intern("ack:" + std::string(stack_.name(idx))));
    }
  }

  // Tenant table (DESIGN.md §12), built before any worker can run. Explicit
  // tenants claim contiguous rank blocks in declaration order (even split,
  // remainder to the earlier tenants); legacy callers get one implicit
  // unlimited "default" tenant over every rank, which keeps the hot path,
  // thread names and telemetry byte-identical to the pre-tenant engine.
  tenant_registry_ = std::make_unique<TenantRegistry>(num_ranks);
  label_tenants_ = !options_.tenants.empty();
  if (options_.tenants.empty()) {
    auto id = tenant_registry_->Open(TenantSpec{.name = "default"}, num_ranks);
    assert(id.ok());
    (void)id;
  } else {
    const int nt = static_cast<int>(options_.tenants.size());
    const int base = num_ranks / nt;
    const int extra = num_ranks % nt;
    for (int i = 0; i < nt; ++i) {
      const int share = base + (i < extra ? 1 : 0);
      auto id = tenant_registry_->Open(options_.tenants[static_cast<std::size_t>(i)],
                                       share);
      if (!id.ok()) {
        CKPT_LOG(kError, "engine")
            << "cannot open tenant '"
            << options_.tenants[static_cast<std::size_t>(i)].name
            << "': " << id.status().ToString();
        std::abort();
      }
    }
  }

  // Drain-bandwidth estimate per cache tier, toward the next tier down:
  // device tiers drain over their PCIe link, host->host over DDR, and the
  // last cache tier into the NVMe-backed first durable tier.
  drain_bw_.resize(static_cast<std::size_t>(ncache));
  for (int i = 0; i < ncache; ++i) {
    std::uint64_t bw = 0;
    if (stack_.is_device(i)) {
      bw = cfg.pcie_link_bw;
    } else if (i + 1 < ncache) {
      bw = cfg.host_mem_bw;
    } else {
      bw = cfg.nvme_drive_bw;
    }
    drain_bw_[static_cast<std::size_t>(i)] = static_cast<double>(bw);
  }

  ranks_.reserve(static_cast<std::size_t>(num_ranks));
  for (sim::Rank r = 0; r < num_ranks; ++r) {
    auto c = std::make_unique<RankCtx>();
    c->rank = r;
    const Stopwatch init_sw;
    c->metrics.restores_from_tier.resize(stack_.size(), 0);
    c->metrics.flush_bytes_to_tier.resize(stack_.size(), 0);
    c->metrics.evictions_from_tier.resize(stack_.size(), 0);
    c->metrics.evicted_bytes_from_tier.resize(stack_.size(), 0);
    c->metrics.flush_stage_hist.resize(static_cast<std::size_t>(ncache));
    c->tier_probe = std::make_unique<TierProbeCells[]>(stack_.size());
    if (lineage_) {
      c->metrics.durable_lag_hist.resize(stack_.size());
      c->lineage_journal = std::make_unique<LineageCell[]>(kLineageJournalCap);
    }

    c->tiers.resize(static_cast<std::size_t>(ncache));
    for (int i = 0; i < ncache; ++i) {
      auto t = std::make_unique<CacheTierRt>();
      // Pinned-host tier share: equal by default, or demand-weighted
      // (future-work extension: load-balance variable-sized checkpoints).
      std::uint64_t cap = stack_[static_cast<std::size_t>(i)].capacity_bytes;
      if (!stack_.is_device(i) && !options_.host_cache_weights.empty()) {
        double total_w = 0;
        for (double w : options_.host_cache_weights) total_w += w;
        const double w =
            r < static_cast<int>(options_.host_cache_weights.size()) &&
                    total_w > 0
                ? options_.host_cache_weights[static_cast<std::size_t>(r)] /
                      total_w
                : 0.0;
        cap = static_cast<std::uint64_t>(static_cast<double>(cap) *
                                         static_cast<double>(num_ranks) * w);
        cap = std::max<std::uint64_t>(cap, 64 << 10);
      }
      t->capacity = cap;
      c->tiers[static_cast<std::size_t>(i)] = std::move(t);
    }

    // Builds the tier's CacheBuffer(s) over `base` (split mode carves a
    // prefetch partition off the top).
    const auto build_bufs = [this, r](CacheTierRt& t, int i,
                                      sim::BytePtr base) {
      const std::string nm(stack_.name(static_cast<std::size_t>(i)));
      // Each tier drives its buffers with its *own* resolved policy — the
      // whole point of per-tier policies is GPU=score over FIFO deep tiers.
      const EvictionKind kind = stack_.policy(i);
      if (options_.split_flush_prefetch) {
        const auto pf = static_cast<std::uint64_t>(
            static_cast<double>(t.capacity) * options_.split_prefetch_fraction);
        t.write_buf = std::make_unique<CacheBuffer>(
            nm + "-w/" + std::to_string(r), base, t.capacity - pf,
            MakePolicy(kind));
        t.prefetch_buf = std::make_unique<CacheBuffer>(
            nm + "-p/" + std::to_string(r), base + (t.capacity - pf), pf,
            MakePolicy(kind));
      } else {
        t.write_buf = std::make_unique<CacheBuffer>(
            nm + "/" + std::to_string(r), base, t.capacity,
            MakePolicy(kind));
      }
    };

    // Pre-allocate the device cache out of the rank's HBM (§4.1.4). Paying
    // the allocation cost here, once, is a core design principle.
    if (ncache > 0 && stack_.is_device(0)) {
      CacheTierRt& t = *c->tiers[0];
      auto gpu_mem = cluster_.device(r).Allocate(t.capacity);
      if (!gpu_mem.ok()) {
        CKPT_LOG(kError, "engine")
            << "rank " << r
            << ": GPU cache allocation failed: " << gpu_mem.status();
        std::abort();
      }
      t.gpu_base = *gpu_mem;
      build_bufs(t, 0, t.gpu_base);
      t.ready.store(true, std::memory_order_release);
    }

    // Pre-allocate and pin the host-side caches (slow: ~4 GB/s
    // registration) — inline by default, or on a background thread with
    // async_pin_init ([Maurya et al., HiPC'22]): the application starts
    // checkpointing into the device cache immediately while the pinned
    // tiers register.
    const int node = cluster_.topology().node_of_rank(r);
    RankCtx* cp = c.get();
    auto build_pinned = [this, cp, node, ncache, build_bufs] {
      for (int i = 0; i < ncache; ++i) {
        if (stack_.is_device(i)) continue;
        CacheTierRt& t = *cp->tiers[static_cast<std::size_t>(i)];
        auto arena = std::make_unique<sim::PinnedArena>(cluster_.topology(),
                                                        node, t.capacity);
        sim::BytePtr base = arena->data();
        std::lock_guard lock(cp->mu);
        t.arena = std::move(arena);
        build_bufs(t, i, base);
        t.ready.store(true, std::memory_order_release);
        // Only reservations can be parked on an unready tier.
        t.cv_reserve.notify_all();
      }
    };
    if (options_.async_pin_init) {
      c->t_pin = std::jthread(build_pinned);
    } else {
      build_pinned();
    }

    c->metrics.init_s = init_sw.ElapsedSec();

    // Dedicated background threads (§4.3.1): one flush stage per cache
    // tier plus the prefetcher.
    RankCtx* ctx_ptr = c.get();
    for (int i = 0; i < ncache; ++i) {
      c->tiers[static_cast<std::size_t>(i)]->worker =
          std::jthread([this, ctx_ptr, i] { FlushStageLoop(*ctx_ptr, i); });
    }
    c->t_pf = std::jthread([this, ctx_ptr] { PrefetchLoop(*ctx_ptr); });

    ranks_.push_back(std::move(c));
  }
}

Engine::~Engine() { Shutdown(); }

void Engine::Shutdown() {
  if (shutdown_.exchange(true)) return;  // idempotent, even across threads
  for (auto& c : ranks_) {
    {
      // Set the stop flag and signal under the same mutex every background
      // CV wait checks, so no flush/prefetch thread can read the flag as
      // clear, then miss the final wakeup and hang the joins below. Every
      // wakeup channel gets the broadcast: waiters on any of them check
      // the flag.
      std::lock_guard lock(c->mu);
      c->shutdown = true;
      NotifyAllChannels(*c);
    }
    for (auto& t : c->tiers) t->flush_q.Close();
  }
  for (auto& c : ranks_) {
    if (c->t_pin.joinable()) c->t_pin.join();
    for (auto& t : c->tiers) {
      if (t->worker.joinable()) t->worker.join();
    }
    if (c->t_pf.joinable()) c->t_pf.join();
  }
  // Release the device cache arenas back to the devices.
  for (auto& c : ranks_) {
    for (auto& t : c->tiers) {
      if (t->gpu_base != nullptr) {
        (void)cluster_.device(c->rank).Free(t->gpu_base);
        t->gpu_base = nullptr;
      }
    }
  }
}

Engine::RankCtx& Engine::ctx(sim::Rank rank) {
  return *ranks_.at(static_cast<std::size_t>(rank));
}
const Engine::RankCtx& Engine::ctx(sim::Rank rank) const {
  return *ranks_.at(static_cast<std::size_t>(rank));
}

std::mt19937_64 Engine::RngFor(const RankCtx& ctx_, std::uint64_t stream,
                               std::uint64_t salt) const {
  // Distinct deterministic stream per rank and per worker: flush stage i
  // uses stream i, the prefetcher num_cache, direct paths num_cache + 1.
  const auto stride =
      static_cast<std::uint64_t>(stack_.num_cache_tiers()) + 2;
  return util::MakeRng(options_.retry_seed ^ salt,
                       static_cast<std::uint64_t>(ctx_.rank) * stride + stream);
}

// ---------------------------------------------------------------------------
// Life-cycle / eviction metadata helpers (ctx.mu held)
// ---------------------------------------------------------------------------

Engine::Record Engine::NewRecord(RankCtx& ctx_, Version v,
                                 std::uint64_t size) const {
  Record rec;
  rec.version = v;
  rec.size = size;
  rec.res.resize(static_cast<std::size_t>(stack_.num_cache_tiers()));
  rec.durable.assign(static_cast<std::size_t>(stack_.num_durable_tiers()), 0);
  rec.fifo_seq = ++ctx_.seq_counter;
  rec.lru_seq = rec.fifo_seq;
  if (trace::enabled()) rec.state_since_ns = trace::Now();
  return rec;
}

void Engine::Advance(RankCtx& ctx_, Record& rec, CkptState to) {
  CKPT_ASSERT_HELD(ctx_.mu);
  const CkptState from = rec.state;
  const util::Status st = CheckTransition(from, to);
  if (!st.ok()) {
    CKPT_LOG(kError, "engine") << "rank " << ctx_.rank << " ckpt " << rec.version
                               << ": " << st.ToString();
    std::abort();  // engine invariant violation, never a user error
  }
  if (trace::enabled()) {
    // Dwell span of the outgoing state. Records created with tracing off
    // have no baseline timestamp; they start contributing from here on.
    // Queued, not emitted: the trace-buffer mutex stays off the rank-lock
    // critical section.
    if (rec.state_since_ns > 0) {
      QueueSpanSince(ctx_, trace::Kind::kLifecycle, StateSpanName(from),
                     rec.state_since_ns, /*tier=*/-1, rec.version, rec.size);
    }
    rec.state_since_ns = trace::Now();
  }
  ProbeTransition(ctx_, from, to);
  rec.state = to;
  NotifyState(ctx_);
  // Targeted reservation wakeups: entering CONSUMED may make every cached
  // copy evictable (condition (5)); leaving a fast-tier-pinning state
  // (condition (4)) unblocks fast-tier reservations.
  if (to == CkptState::kConsumed) {
    NotifyReserveAll(ctx_);
  } else if (!ctx_.tiers.empty() && StatePinsFastTier(from) &&
             !StatePinsFastTier(to)) {
    NotifyReserve(ctx_, 0);
  }
}

bool Engine::SafeBelow(const Record& rec, TierIndex tier) const {
  if (stack_.is_durable(tier)) return true;  // durable stores never evict
  for (std::size_t j = static_cast<std::size_t>(tier) + 1; j < rec.res.size();
       ++j) {
    if (rec.res[j].valid) return true;
  }
  return rec.AnyDurable();
}

bool Engine::ExcludedOn(const Record& rec, TierIndex tier) const {
  const Residency& res = rec.res[static_cast<std::size_t>(tier)];
  if (res.busy()) return true;
  // Condition (4): a prefetched checkpoint is pinned on the fast tier until
  // consumed.
  if (tier == 0 && StatePinsFastTier(rec.state)) return true;
  return false;
}

bool Engine::EvictableNow(const Record& rec, TierIndex tier) const {
  if (ExcludedOn(rec, tier)) return false;
  if (SafeBelow(rec, tier)) return true;
  // A consumed checkpoint without a lower-tier copy may only be dropped
  // when condition (5) applies (discardable); otherwise durability still
  // requires its pending flushes, so the copy must survive until then.
  return rec.state == CkptState::kConsumed && options_.discard_after_restore;
}

double Engine::EtaSeconds(const RankCtx& ctx_, const Record& rec,
                          TierIndex tier) const {
  if (EvictableNow(rec, tier)) return 0.0;
  // The fragment is waiting on the flush pipeline: estimate the backlog
  // drain time on the link it is queued behind (predict_evictable, §4.2).
  const double bw = drain_bw_[static_cast<std::size_t>(tier)];
  if (bw <= 0) return 1e-6;
  return (static_cast<double>(
              ctx_.tiers[static_cast<std::size_t>(tier)]->backlog_bytes) +
          static_cast<double>(rec.size)) / bw;
}

CacheBuffer& Engine::BufferFor(RankCtx& ctx_, TierIndex tier,
                               ReservePurpose purpose) {
  CacheTierRt& t = *ctx_.tiers[static_cast<std::size_t>(tier)];
  const bool pf =
      options_.split_flush_prefetch && purpose == ReservePurpose::kPrefetch;
  return pf ? *t.prefetch_buf : *t.write_buf;
}

CacheBuffer::MetaFn Engine::MakeMetaFn(RankCtx& ctx_, TierIndex tier) {
  return [this, &ctx_, tier](EntryId id, FragmentView& v) {
    CKPT_ASSERT_HELD(ctx_.mu);
    auto it = ctx_.records.find(id);
    if (it == ctx_.records.end()) {
      v.excluded = true;  // defensive: unknown entry is never evicted
      return;
    }
    const Record& rec = it->second;
    v.excluded = ExcludedOn(rec, tier);
    v.eta = v.excluded ? 0.0 : EtaSeconds(ctx_, rec, tier);
    if (rec.state == CkptState::kConsumed) {
      v.distance = kConsumedDistance;
    } else if (auto d = ctx_.hints.DistanceOf(rec.version)) {
      v.distance = static_cast<double>(*d);
    } else {
      v.distance = kUnhintedDistance;
    }
    v.lru_seq = rec.lru_seq;
    v.fifo_seq = rec.fifo_seq;
  };
}

util::Status Engine::EvictVictims(RankCtx& ctx_, TierIndex tier,
                                  const std::vector<EntryId>& victims) {
  CKPT_ASSERT_HELD(ctx_.mu);
  for (EntryId id : victims) {
    auto it = ctx_.records.find(id);
    if (it == ctx_.records.end()) {
      return util::Internal("eviction victim has no record");
    }
    Record& rec = it->second;
    if (!EvictableNow(rec, tier)) {
      return util::Internal("eviction victim not evictable at commit time");
    }
    // Per-tier observability: count the drop here (under ctx_.mu, where both
    // the tier index and the record size are known) rather than inside
    // CacheBuffer, whose Release also serves flush rollbacks.
    ++ctx_.metrics.evictions_from_tier[static_cast<std::size_t>(tier)];
    ctx_.metrics.evicted_bytes_from_tier[static_cast<std::size_t>(tier)] +=
        rec.size;
    rec.res[static_cast<std::size_t>(tier)].Clear();
    if (lineage_) {
      QueueFlow(ctx_, trace::Kind::kEviction, "evict:drop", rec.flow_id,
                trace::FlowPhase::kStep, static_cast<int>(tier), rec.version,
                rec.size);
    }
  }
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// Tenant admission (DESIGN.md §12)
// ---------------------------------------------------------------------------

util::Status Engine::CheckTenantOpen(sim::Rank rank) const {
  const TenantCtx* t = tenant_registry_->Get(tenant_registry_->tenant_of(rank));
  if (t != nullptr && !t->open.load(std::memory_order_acquire)) {
    return util::FailedPrecondition("tenant '" + t->spec.name + "' is closed");
  }
  return util::OkStatus();
}

std::string Engine::TenantLabelOf(sim::Rank rank) const {
  if (!label_tenants_) return {};
  const TenantCtx* t = tenant_registry_->Get(tenant_registry_->tenant_of(rank));
  return t != nullptr ? t->spec.name : std::string{};
}

std::string Engine::TenantThreadPrefix(const RankCtx& ctx_) const {
  if (!label_tenants_) return {};
  const TenantCtx* t =
      tenant_registry_->Get(tenant_registry_->tenant_of(ctx_.rank));
  return t != nullptr ? t->spec.name + "/" : std::string{};
}

sim::Flow Engine::FlowOf(const RankCtx& ctx_) const noexcept {
  const TenantCtx* t =
      tenant_registry_->Get(tenant_registry_->tenant_of(ctx_.rank));
  if (t == nullptr) return sim::Flow{};
  return sim::Flow{t->id, t->spec.weight};
}

std::uint64_t Engine::TenantCacheUsed(TenantId id) const {
  const TenantCtx* t = tenant_registry_->Get(id);
  if (t == nullptr) return 0;
  const int ncache = stack_.num_cache_tiers();
  const int last = std::min(t->first_rank + t->num_ranks, num_ranks());
  std::uint64_t used = 0;
  for (int r = t->first_rank; r < last; ++r) {
    for (int i = 0; i < ncache; ++i) {
      used += CacheUsed(r, i);
    }
  }
  return used;
}

bool Engine::OverTenantQuota(const RankCtx& ctx_,
                             std::uint64_t size) const {
  const TenantCtx* t =
      tenant_registry_->Get(tenant_registry_->tenant_of(ctx_.rank));
  // Quota 0 (every legacy caller) skips the cross-rank usage sum entirely:
  // the single-tenant hot path pays one lock-free map lookup and a branch.
  if (t == nullptr || t->spec.quota_bytes == 0) return false;
  return TenantCacheUsed(t->id) + size > t->spec.quota_bytes;
}

std::uint64_t Engine::ShedForQuota(RankCtx& ctx_,
                                   std::unique_lock<util::CheckedMutex>& lock,
                                   TierIndex tier, ReservePurpose purpose,
                                   std::uint64_t need) {
  CKPT_ASSERT_HELD(ctx_.mu);
  (void)lock;
  CacheBuffer& buf = BufferFor(ctx_, tier, purpose);
  const CacheBuffer::TableSnapshot snap = buf.Snapshot();
  std::uint64_t freed = 0;
  for (const Fragment& frag : snap.frags) {
    if (freed >= need) break;
    if (frag.is_gap()) continue;
    auto it = ctx_.records.find(frag.id);
    if (it == ctx_.records.end() || !EvictableNow(it->second, tier)) continue;
    if (!EvictVictims(ctx_, tier, {frag.id}).ok()) continue;
    if (buf.Release(frag.id).ok()) freed += frag.size;
  }
  if (freed > 0) {
    QueueInstant(ctx_, trace::Kind::kEviction, "evict:quota-shed", tier,
                 /*v=*/0, freed);
    NotifyReserve(ctx_, tier);
  }
  return freed;
}

util::StatusOr<TenantId> Engine::OpenTenant(const TenantSpec& spec,
                                            int num_ranks) {
  auto id = tenant_registry_->Open(spec, num_ranks);
  if (id.ok()) label_tenants_ = true;
  return id;
}

util::Status Engine::CloseTenant(TenantId id) {
  const TenantCtx* t = tenant_registry_->Get(id);
  if (t == nullptr) {
    return util::NotFound("tenant " + std::to_string(id) + " unknown");
  }
  // Quiesce: wait for the tenant's in-flight flushes so its durable state
  // is settled, then flip the open flag — subsequent ops on its ranks fail.
  const int last = std::min(t->first_rank + t->num_ranks, num_ranks());
  for (int r = t->first_rank; r < last; ++r) {
    CKPT_RETURN_IF_ERROR(WaitForFlushes(r));
  }
  return tenant_registry_->Close(id);
}

bool Engine::DrainHints(RankCtx& ctx_) {
  CKPT_ASSERT_HELD(ctx_.mu);
  bool any = false;
  while (auto v = ctx_.hint_inbox.TryPop()) {
    ctx_.hints.Enqueue(*v);
    any = true;
  }
  return any;
}

util::StatusOr<std::uint64_t> Engine::ReserveOn(
    RankCtx& ctx_, std::unique_lock<util::CheckedMutex>& lock, TierIndex tier,
    ReservePurpose purpose, Version v, std::uint64_t size,
    const std::function<bool()>& abort) {
  CKPT_ASSERT_HELD(ctx_.mu);
  CacheTierRt& t = *ctx_.tiers[static_cast<std::size_t>(tier)];
  if (!t.ready.load(std::memory_order_acquire)) {
    // async_pin_init: this pinned tier may still be registering.
    t.cv_reserve.wait(lock, [&] {
      return t.ready.load(std::memory_order_acquire) || ctx_.shutdown;
    });
    if (ctx_.shutdown) return util::ShutdownError("engine stopping");
  }
  CacheBuffer& buf = BufferFor(ctx_, tier, purpose);
  const CacheBuffer::MetaFn meta = MakeMetaFn(ctx_, tier);
  const Stopwatch wait_sw;
  double& wait_metric = purpose == ReservePurpose::kPrefetch
                            ? ctx_.metrics.reserve_wait_prefetch_s
                            : ctx_.metrics.reserve_wait_write_s;
  const auto charge_wait = [&] { wait_metric += wait_sw.ElapsedSec(); };
  // Hoisted out of the round loop: consecutive rounds whose table version is
  // unchanged (typically stale replans — the geometry didn't move, only the
  // annotations did) reuse the fragment list instead of re-copying it.
  CacheBuffer::TableSnapshot snap;
  bool have_snap = false;
  // Rounds spent blocked on the tenant's byte quota. Bounded: a tenant that
  // cannot shed enough (everything busy / pinned) is pushed to a deeper
  // tier rather than parked forever on a neighbour's progress.
  int quota_rounds = 0;
  for (int round = 0;; ++round) {
    ++ctx_.metrics.reserve_rounds;
    ProbeAdd(ctx_.probe.reserve_rounds);
    const std::int64_t round_begin = util::NowNs();
    if (ctx_.shutdown) {
      charge_wait();
      return util::ShutdownError("engine stopping");
    }
    if (abort && abort()) {
      charge_wait();
      return util::Cancelled("reservation aborted");
    }
    // Tenant admission (DESIGN.md §12): before competing for space, the
    // rank's tenant must have quota headroom across ALL its cache bytes.
    // Over quota, first shed this tenant's own evictable copies on this
    // tier (victims are structurally within the over-quota tenant — rank
    // buffers are single-tenant), then wait boundedly for its in-flight
    // transfers to settle.
    if (OverTenantQuota(ctx_, size)) {
      ShedForQuota(ctx_, lock, tier, purpose, size);
      if (OverTenantQuota(ctx_, size)) {
        ++ctx_.metrics.reserve_quota_waits;
        ProbeAdd(ctx_.probe.reserve_quota_waits);
        QueueInstant(ctx_, trace::Kind::kEviction, "evict:quota", tier, v,
                     size);
        if (++quota_rounds >= kQuotaRoundsMax) {
          charge_wait();
          return util::CapacityExceeded("tenant cache quota exceeded");
        }
        const Stopwatch quota_sw;
        t.cv_reserve.wait_for(lock, kReplanMax);
        ctx_.metrics.reserve_wait_quota_s += quota_sw.ElapsedSec();
        continue;
      }
    }
    // Annotate the tier geometry with life-cycle metadata under the rank
    // lock, then run the O(N) policy scan with the rank lock DROPPED: the
    // scan is the expensive part of a reservation round, and holding ctx.mu
    // across it would stall every concurrent checkpoint/restore/flush on
    // this rank behind one tier's eviction planning.
    if (have_snap && buf.table_version() == snap.version) {
      // Same geometry as last round; only the annotations can have changed,
      // and those are recomputed below.
      ++ctx_.metrics.reserve_snapshot_reuse;
      ProbeAdd(ctx_.probe.reserve_snapshot_reuse);
    } else {
      snap = buf.Snapshot();
      have_snap = true;
    }
    const std::vector<FragmentView> views =
        CacheBuffer::AnnotateViews(snap.frags, meta);
    lock.unlock();
    auto plan = buf.PlanViews(views, size);
    lock.lock();
    if (ctx_.shutdown) {
      charge_wait();
      return util::ShutdownError("engine stopping");
    }
    if (abort && abort()) {
      charge_wait();
      return util::Cancelled("reservation aborted");
    }
    if (!plan.ok()) {
      if (plan.status().code() == util::ErrorCode::kCapacityExceeded) {
        charge_wait();
        return plan.status();  // caller falls back to a lower tier
      }
      // kUnavailable: everything is pinned right now; wait for a transition
      // on THIS tier's channel.
      QueueInstant(ctx_, trace::Kind::kEviction, "evict:blocked", tier, v,
                   size);
      t.cv_reserve.wait_for(lock, kReplanMax);
      continue;
    }
    if (plan->wait_eta <= 0.0) {
      // The plan was made against `snap` with the lock dropped. Buffer
      // mutations only happen on threads holding ctx.mu, so under the lock
      // the version is stable: if it still matches and every victim is
      // still evictable, committing is as atomic as planning under the lock
      // ever was. Otherwise the window is stale — re-plan immediately.
      bool stale = buf.table_version() != snap.version;
      for (std::size_t i = 0; !stale && i < plan->victims.size(); ++i) {
        auto it = ctx_.records.find(plan->victims[i]);
        stale = it == ctx_.records.end() || !EvictableNow(it->second, tier);
      }
      if (!stale && options_.test_force_stale_plan &&
          options_.test_force_stale_plan(round)) {
        stale = true;  // test hook: exercise the replan/snapshot-reuse path
      }
      if (stale) {
        ++ctx_.metrics.reserve_plans_stale;
        ProbeAdd(ctx_.probe.reserve_plans_stale);
        QueueInstant(ctx_, trace::Kind::kEviction, "evict:stale", tier, v,
                     size);
        continue;
      }
      CKPT_RETURN_IF_ERROR(EvictVictims(ctx_, tier, plan->victims));
      auto offset = buf.Commit(*plan, v, size);
      charge_wait();
      if (!offset.ok()) return offset.status();
      ctx_.metrics.reserve_round_hist.Add(
          static_cast<double>(util::NowNs() - round_begin) / 1e9);
      QueueSpanSince(ctx_, trace::Kind::kEviction, "evict:round", round_begin,
                     tier, v, size, plan->p_score, plan->s_score);
      return *offset;
    }
    // Best window still needs time; sleep roughly that long, then re-plan
    // (a better window may have appeared — see cache_buffer.hpp). The
    // re-plan round itself is a complete span carrying the candidate
    // window's scores; the instant marks the ETA it chose to wait out.
    ctx_.metrics.reserve_round_hist.Add(
        static_cast<double>(util::NowNs() - round_begin) / 1e9);
    QueueSpanSince(ctx_, trace::Kind::kEviction, "evict:round", round_begin,
                   tier, v, size, plan->p_score, plan->s_score);
    QueueInstant(ctx_, trace::Kind::kEviction, "evict:wait", tier, v, size,
                 plan->wait_eta, plan->s_score);
    auto wait = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(plan->wait_eta));
    wait = std::clamp<std::chrono::steady_clock::duration>(wait, kReplanMin,
                                                           kReplanMax);
    t.cv_reserve.wait_for(lock, wait);
  }
}

void Engine::FinishFlush(RankCtx& ctx_, Record& rec) {
  CKPT_ASSERT_HELD(ctx_.mu);
  if (!rec.flush_done) {
    rec.flush_done = true;
    --ctx_.inflight_flushes;
  }
  // Every FinishFlush caller arrives with the record either degraded or
  // durable at some tier; both are lineage terminals.
  if (lineage_) {
    if (rec.degraded) {
      LineageTerminal(ctx_, rec, LineageOutcome::kDegraded, "flow:degraded",
                      rec.first_durable_tier);
    } else if (rec.AnyDurable()) {
      LineageTerminal(ctx_, rec, LineageOutcome::kDurable, "flow:durable",
                      stack_.terminal());
    }
  }
  if (rec.state == CkptState::kWriteInProgress) {
    Advance(ctx_, rec, CkptState::kWriteComplete);
    if (!rec.restore_waiting && !rec.prefetch_claimed) {
      Advance(ctx_, rec, CkptState::kFlushed);
    }
    // Otherwise the pending reader performs WRITE_COMPLETE -> READ_COMPLETE.
  }
  NotifyState(ctx_);  // WaitForFlushes watches inflight_flushes
}

// ---------------------------------------------------------------------------
// Failure model helpers (DESIGN.md §8)
// ---------------------------------------------------------------------------

Engine::TerminalPutResult Engine::PutTerminal(RankCtx& ctx_, Version v,
                                              sim::ConstBytePtr src,
                                              std::uint64_t size,
                                              std::mt19937_64& rng) {
  TerminalPutResult r;
  r.ok.assign(static_cast<std::size_t>(stack_.num_durable_tiers()), 0);
  const storage::ObjectKey key = KeyOf(ctx_.rank, v);
  // Every durable stage up to the terminal tier is attempted, even when a
  // shallower one failed: a surviving deeper copy still makes the
  // checkpoint durable.
  for (int d = 0; d <= stack_.terminal_ordinal(); ++d) {
    storage::ObjectStore& store = *stack_.durable_store(d);
    // Per-tier span ("flush:ssd", "flush:remote", ...) covering the put
    // including its engine-level retries, so slow terminal tiers show up
    // attributed in the trace rather than folded into the drain stage.
    trace::Span span(trace::Kind::kFlush,
                     durable_span_names_[static_cast<std::size_t>(d)],
                     ctx_.rank, stack_.durable_index(d), v, size);
    const util::RetryOutcome out = util::RetryWithBackoff(
        options_.flush_retry, rng, [&] { return store.Put(key, src, size); });
    r.retries += out.retries();
    if (!out.ok()) span.Cancel();
    if (out.ok()) {
      r.ok[static_cast<std::size_t>(d)] = 1;
    } else {
      ++r.failures;
      CKPT_LOG(kWarn, "flush")
          << "rank " << ctx_.rank << " ckpt " << v << ": "
          << stack_.name(static_cast<std::size_t>(stack_.durable_index(d)))
          << " put failed after " << out.attempts
          << " attempt(s): " << out.status.ToString();
    }
  }
  return r;
}

void Engine::ApplyFlushResult(RankCtx& ctx_, Record& rec,
                              const TerminalPutResult& r) {
  ctx_.metrics.flush_retries += r.retries;
  ctx_.metrics.flush_failures += r.failures;
  if (r.retries > 0) {
    ProbeAdd(ctx_.probe.flush_retries, r.retries);
    QueueInstant(ctx_, trace::Kind::kRetry, "flush:retries", stack_.terminal(),
                 rec.version, rec.size, static_cast<double>(r.retries));
  }
  const std::size_t n = std::min(r.ok.size(), rec.durable.size());
  bool newly_durable = false;
  for (std::size_t d = 0; d < n; ++d) {
    if (r.ok[d] && !rec.durable[d]) {
      rec.durable[d] = 1;
      newly_durable = true;
      const auto idx =
          static_cast<std::size_t>(stack_.durable_index(static_cast<int>(d)));
      ctx_.metrics.flush_bytes_to_tier[idx] += rec.size;
      ProbeAdd(ctx_.tier_probe[idx].flush_bytes, rec.size);
      LineageDurableAck(ctx_, rec, d);
    }
  }
  // A fresh durable copy makes every cached copy of this record SafeBelow,
  // i.e. potentially evictable: wake blocked reservations.
  if (newly_durable) NotifyReserveAll(ctx_);
  const bool reached =
      rec.durable[static_cast<std::size_t>(stack_.terminal_ordinal())] != 0;
  if (reached) {
    ++ctx_.metrics.flushes_completed;
    FinishFlush(ctx_, rec);
    return;
  }
  // The terminal tier is permanently unreachable for this checkpoint.
  const bool cached = rec.AnyCached();
  // Strict mode may only drop the copies of a record no concurrent reader
  // or transfer is touching; anything in flight forces the degrade path.
  const bool strict_drop_safe =
      rec.state == CkptState::kWriteInProgress && !rec.restore_waiting &&
      !rec.prefetch_claimed && !rec.AnyCacheBusy();
  if (rec.AnyDurable() ||
      (cached && (options_.degraded_durability || !strict_drop_safe))) {
    // Graceful degradation: the checkpoint stays durable at the deepest
    // tier still holding a copy. SafeBelow() already refuses to evict a
    // cached copy with no durable backing, so the surviving copy is pinned
    // without any extra bookkeeping and Restore() serves it normally.
    rec.degraded = true;
    ++ctx_.metrics.tier_degradations;
    ProbeAdd(ctx_.probe.tier_degradations);
    int deepest = -1;
    for (int d = stack_.num_durable_tiers() - 1; d >= 0; --d) {
      if (rec.durable[static_cast<std::size_t>(d)]) {
        deepest = stack_.durable_index(d);
        break;
      }
    }
    if (deepest < 0) {
      for (int j = stack_.num_cache_tiers() - 1; j >= 0; --j) {
        if (rec.res[static_cast<std::size_t>(j)].valid) {
          deepest = j;
          break;
        }
      }
    }
    CKPT_LOG(kWarn, "flush")
        << "rank " << ctx_.rank << " ckpt " << rec.version
        << ": terminal tier unreachable; degraded durability at tier "
        << stack_.name(static_cast<std::size_t>(deepest));
    QueueInstant(ctx_, trace::Kind::kRetry, "tier:degraded", deepest,
                 rec.version, rec.size);
    FinishFlush(ctx_, rec);
    return;
  }
  // No surviving copy (or strict mode): the checkpoint is lost.
  MarkFlushFailed(ctx_, rec);
}

void Engine::MarkFlushFailed(RankCtx& ctx_, Record& rec) {
  CKPT_ASSERT_HELD(ctx_.mu);
  bool reclaimed = false;
  for (std::size_t j = 0; j < rec.res.size(); ++j) {
    if (rec.res[j].valid) {
      (void)BufferFor(ctx_, static_cast<TierIndex>(j), rec.res[j].part)
          .Release(rec.version);
      rec.res[j].Clear();
      reclaimed = true;
    }
  }
  if (reclaimed) NotifyReserveAll(ctx_);  // cache space was freed
  if (!rec.flush_done) {
    rec.flush_done = true;
    --ctx_.inflight_flushes;
  }
  if (rec.state == CkptState::kWriteInProgress) {
    ++ctx_.flush_failed_count;
    ++ctx_.metrics.checkpoints_lost;
    ProbeAdd(ctx_.probe.checkpoints_lost);
    CKPT_LOG(kError, "flush")
        << "rank " << ctx_.rank << " ckpt " << rec.version
        << ": flush permanently failed; checkpoint lost";
    QueueInstant(ctx_, trace::Kind::kRetry, "ckpt:lost", /*tier=*/-1,
                 rec.version, rec.size);
    LineageTerminal(ctx_, rec, LineageOutcome::kLost, "flow:lost");
    Advance(ctx_, rec, CkptState::kFlushFailed);  // notifies waiters
  } else {
    // The data already reached the application (restore overtook the flush);
    // nothing durable remains but nothing is owed either.
    LineageTerminal(ctx_, rec, LineageOutcome::kErased, "flow:erased");
    NotifyState(ctx_);
  }
}

util::Status Engine::GetDurable(RankCtx& ctx_, Version v, sim::BytePtr dst,
                                std::uint64_t size,
                                const std::vector<unsigned char>& durable,
                                std::mt19937_64& rng,
                                const std::function<bool()>& abort,
                                std::uint64_t& retries, bool& fell_back,
                                TierIndex& served) {
  const storage::ObjectKey key = KeyOf(ctx_.rank, v);
  util::Status last =
      util::NotFound("checkpoint " + key.ToString() + " has no durable copy");
  int shallowest = -1;
  for (int d = 0; d < stack_.num_durable_tiers() &&
                  d < static_cast<int>(durable.size());
       ++d) {
    if (!durable[static_cast<std::size_t>(d)]) continue;
    if (shallowest < 0) shallowest = d;
    storage::ObjectStore& store = *stack_.durable_store(d);
    const util::RetryOutcome out = util::RetryWithBackoff(
        options_.fetch_retry, rng, [&] { return store.Get(key, dst, size); },
        abort);
    retries += out.retries();
    if (out.ok()) {
      served = stack_.durable_index(d);
      fell_back = d != shallowest;  // a shallower durable copy failed first
      return util::OkStatus();
    }
    last = out.status;
    CKPT_LOG(kWarn, "fetch")
        << "rank " << ctx_.rank << " ckpt " << v << ": "
        << stack_.name(static_cast<std::size_t>(stack_.durable_index(d)))
        << " read failed after " << out.attempts
        << " attempt(s): " << out.status.ToString();
  }
  return last;
}

void Engine::ReleasePin(RankCtx& ctx_, Record& rec) {
  CKPT_ASSERT_HELD(ctx_.mu);
  if (rec.pinned_counted) {
    ctx_.prefetched_pinned_bytes -= rec.size;
    --ctx_.prefetched_pinned_count;
    rec.pinned_counted = false;
    NotifyPrefetch(ctx_);  // T_PF may be parked on the pin cap
  }
}

void Engine::AddPin(RankCtx& ctx_, Record& rec) {
  CKPT_ASSERT_HELD(ctx_.mu);
  ctx_.prefetched_pinned_bytes += rec.size;
  ++ctx_.prefetched_pinned_count;
  rec.pinned_counted = true;
}

util::StatusOr<Engine::Record*> Engine::FindOrImport(RankCtx& ctx_, Version v) {
  CKPT_ASSERT_HELD(ctx_.mu);
  auto it = ctx_.records.find(v);
  if (it != ctx_.records.end()) return &it->second;
  // Restart path: the object may exist on the durable stores from a
  // previous engine lifetime. The shallowest tier holding it wins.
  const storage::ObjectKey key = KeyOf(ctx_.rank, v);
  std::uint64_t size = 0;
  int found = -1;
  for (int d = 0; d < stack_.num_durable_tiers(); ++d) {
    if (auto s = stack_.durable_store(d)->Size(key); s.ok()) {
      size = *s;
      found = d;
      break;
    }
  }
  if (found < 0) {
    return util::NotFound("checkpoint " + key.ToString() + " unknown");
  }
  Record rec = NewRecord(ctx_, v, size);
  rec.state = CkptState::kFlushed;
  rec.durable[static_cast<std::size_t>(found)] = 1;
  rec.flush_done = true;
  auto [nit, inserted] = ctx_.records.emplace(v, std::move(rec));
  (void)inserted;
  ProbeEnterState(ctx_, CkptState::kFlushed);
  return &nit->second;
}

std::uint64_t Engine::ComputePrefetchDistance(const RankCtx& ctx_) const {
  // Fig. 7 metric: successor checkpoints already promoted to the fast
  // cache tier and pinned for consumption. The prefetcher promotes in hint
  // order, so the pinned set is exactly the run of successive hints served
  // ahead of the application (modulo deviation, where the count is an
  // upper bound).
  return ctx_.prefetched_pinned_count;
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

util::Status Engine::Checkpoint(sim::Rank rank, Version v, sim::ConstBytePtr src,
                                std::uint64_t size) {
  if (src == nullptr || size == 0) {
    return util::InvalidArgument("Checkpoint: empty payload");
  }
  CKPT_RETURN_IF_ERROR(CheckTenantOpen(rank));
  trace::Span app_span(trace::Kind::kApp, "app:checkpoint", rank, /*tier=*/-1,
                       v, size);
  const Stopwatch sw;
  RankCtx& c = ctx(rank);
  const sim::Flow flow = FlowOf(c);
  // Declared before the lock: flushes the trace events this call queues
  // under c.mu right after the lock is released, on every return path.
  ScopedTracePublisher trace_pub(c);
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(rank);
  const int ncache = stack_.num_cache_tiers();
  std::unique_lock lock(c.mu);
  if (c.shutdown) return util::ShutdownError("engine stopping");
  if (c.records.count(v) != 0) {
    return util::AlreadyExists("checkpoint version " + std::to_string(v) +
                               " already written (checkpoints are immutable)");
  }
  Record& rec = (c.records[v] = NewRecord(c, v, size));
  ProbeEnterState(c, CkptState::kInit);
  Advance(c, rec, CkptState::kWriteInProgress);
  LineageAdmit(c, rec);
  ++c.inflight_flushes;
  // T_PF may be parked on a hint for this (until now unwritten) version.
  NotifyPrefetch(c);

  auto cleanup_failure = [&](const util::Status& st) {
    --c.inflight_flushes;
    ProbeLeaveState(c, rec.state);
    // Admission is already on the books; the record leaving the table is a
    // terminal, not an orphan.
    LineageTerminal(c, rec, LineageOutcome::kErased, "flow:erased");
    c.records.erase(v);
    NotifyState(c);       // WaitForFlushes
    NotifyPrefetch(c);    // a parked hint for v will never be served
    NotifyReserveAll(c);  // any released reservation freed cache space
    return st;
  };

  // Fast path: into the shallowest cache tier with room, then hand off to
  // its flush stage (§4.3.2). Oversize checkpoints fall through to deeper
  // (larger) cache tiers.
  int placed = -1;
  std::uint64_t off = 0;
  for (int ci = 0; ci < ncache; ++ci) {
    auto o = ReserveOn(c, lock, ci, ReservePurpose::kWrite, v, size,
                       /*abort=*/{});
    if (o.ok()) {
      placed = ci;
      off = *o;
      break;
    }
    if (o.status().code() != util::ErrorCode::kCapacityExceeded) {
      return cleanup_failure(o.status());
    }
  }

  if (placed >= 0) {
    Residency& rr = rec.res[static_cast<std::size_t>(placed)];
    rr.offset = off;
    rr.io_pending = true;
    rr.part = ReservePurpose::kWrite;
    sim::BytePtr dst = BufferFor(c, placed, ReservePurpose::kWrite).PtrAt(off);
    // The application source lives in device memory: device-tier writes are
    // D2D, pinned-host-tier writes cross PCIe.
    const sim::MemcpyKind kind =
        stack_.is_device(placed) ? sim::MemcpyKind::kD2D : sim::MemcpyKind::kD2H;
    lock.unlock();
    const util::Status st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst,
                                                 src, size, kind, flow);
    lock.lock();
    rr.io_pending = false;
    if (!st.ok()) {
      (void)BufferFor(c, placed, ReservePurpose::kWrite).Release(v);
      rr.Clear();
      return cleanup_failure(st);
    }
    rr.valid = true;
    c.tiers[static_cast<std::size_t>(placed)]->backlog_bytes += size;
    c.metrics.flush_bytes_to_tier[static_cast<std::size_t>(placed)] += size;
    ProbeAdd(c.tier_probe[static_cast<std::size_t>(placed)].flush_bytes, size);
    // T_PF may be in its landing wait for this version. The fresh copy is
    // not evictable yet (no durable backing), so no reservation wakeup.
    NotifyPrefetch(c);
    lock.unlock();
    // Depth bumps before Push so the worker-side decrement (one per
    // iteration, after the work is disposed of) can never underflow.
    ProbeAdd(c.tier_probe[static_cast<std::size_t>(placed)].flush_queue_depth);
    c.tiers[static_cast<std::size_t>(placed)]->flush_q.Push(v);
  } else {
    // Oversize for every cache tier: synchronous write-through to the
    // durable store(s) from a transient pinned staging buffer.
    lock.unlock();
    sim::PinnedArena staging(cluster_.topology(),
                             cluster_.topology().node_of_rank(rank), size);
    const util::Status st = sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                                 staging.data(), src, size,
                                                 sim::MemcpyKind::kD2H, flow);
    if (!st.ok()) {
      lock.lock();
      return cleanup_failure(st);
    }
    std::mt19937_64 rng = RngFor(c, static_cast<std::uint64_t>(ncache) + 1, v);
    const TerminalPutResult r = PutTerminal(c, v, staging.data(), size, rng);
    lock.lock();
    c.metrics.flush_retries += r.retries;
    c.metrics.flush_failures += r.failures;
    ProbeAdd(c.probe.flush_retries, r.retries);
    bool any = false;
    for (std::size_t d = 0; d < r.ok.size(); ++d) {
      if (r.ok[d]) {
        any = true;
        rec.durable[d] = 1;
        const auto idx =
            static_cast<std::size_t>(stack_.durable_index(static_cast<int>(d)));
        c.metrics.flush_bytes_to_tier[idx] += size;
        ProbeAdd(c.tier_probe[idx].flush_bytes, size);
        LineageDurableAck(c, rec, d);
      }
    }
    if (!any) {
      // Nothing durable and nothing cached. The caller still owns the
      // source buffer, so surface the failure instead of losing data.
      return cleanup_failure(util::IoError(
          "write-through flush of checkpoint " + std::to_string(v) +
          " failed on every durable tier"));
    }
    if (!rec.durable[static_cast<std::size_t>(stack_.terminal_ordinal())]) {
      rec.degraded = true;
      ++c.metrics.tier_degradations;
      ProbeAdd(c.probe.tier_degradations);
    }
    FinishFlush(c, rec);
  }

  if (!lock.owns_lock()) lock.lock();
  c.metrics.ckpt_block_s.Add(sw.ElapsedSec());
  c.metrics.ckpt_block_hist.Add(sw.ElapsedSec());
  c.metrics.bytes_checkpointed += size;
  ProbeAdd(c.probe.checkpoints);
  ProbeAdd(c.probe.bytes_checkpointed, size);
  return util::OkStatus();
}

util::Status Engine::Restore(sim::Rank rank, Version v, sim::BytePtr dst,
                             std::uint64_t capacity) {
  if (dst == nullptr) return util::InvalidArgument("Restore: null buffer");
  CKPT_RETURN_IF_ERROR(CheckTenantOpen(rank));
  trace::Span app_span(trace::Kind::kApp, "app:restore", rank, /*tier=*/-1, v);
  const Stopwatch sw;
  RankCtx& c = ctx(rank);
  const sim::Flow flow = FlowOf(c);
  ScopedTracePublisher trace_pub(c);  // flushes queued events after unlock
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(rank);
  std::unique_lock lock(c.mu);
  if (c.shutdown) return util::ShutdownError("engine stopping");

  auto rec_or = FindOrImport(c, v);
  if (!rec_or.ok()) return rec_or.status();
  Record& rec = **rec_or;
  if (capacity < rec.size) {
    return util::InvalidArgument("Restore: buffer of " + std::to_string(capacity) +
                                 " bytes < checkpoint size " +
                                 std::to_string(rec.size));
  }

  if (rec.state == CkptState::kFlushFailed) {
    return util::IoError("checkpoint " + std::to_string(v) +
                         " was lost: its flush permanently failed on every "
                         "durable tier");
  }

  const std::uint64_t pdist = ComputePrefetchDistance(c);
  rec.restore_waiting = true;
  Touch(c, rec);
  DrainHints(c);  // fold parked hints in before dropping ours
  // Deviation-proofing: this read satisfies its pending hint, if any.
  if (c.hints.Drop(v)) ProbeAdd(c.probe.hints_retired);
  // restore_waiting aborts T_PF's stuck promotions and blocked
  // reservations; wake both roles so the abort is prompt.
  NotifyPrefetch(c);
  NotifyReserveAll(c);

  // If the prefetcher owns an in-flight promotion of this version, wait for
  // it rather than issuing a duplicate transfer (§4.3.2). The prefetcher
  // aborts stuck promotions when it sees restore_waiting, so this wait is
  // bounded.
  bool waited_promotion = false;
  while (rec.prefetch_claimed &&
         !rec.res.empty() && !rec.res[0].valid && !c.shutdown) {
    waited_promotion = true;
    c.cv_state.wait(lock);  // promotion completion/rollback is an Advance
  }
  if (c.shutdown) {
    rec.restore_waiting = false;
    NotifyPrefetch(c);
    return util::ShutdownError("engine stopping");
  }

  // Serve from the fastest tier holding the data.
  int src_tier = -1;
  for (std::size_t j = 0; j < rec.res.size(); ++j) {
    if (rec.res[j].valid) {
      src_tier = static_cast<int>(j);
      break;
    }
  }

  util::Status st;
  if (src_tier >= 0) {
    Residency& rr = rec.res[static_cast<std::size_t>(src_tier)];
    ++rr.read_refs;
    sim::ConstBytePtr src = BufferFor(c, src_tier, rr.part).PtrAt(rr.offset);
    const sim::MemcpyKind kind = stack_.is_device(src_tier)
                                     ? sim::MemcpyKind::kD2D
                                     : sim::MemcpyKind::kH2D;
    lock.unlock();
    st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst, src, rec.size,
                              kind, flow);
    lock.lock();
    --rr.read_refs;
    NotifyReserve(c, src_tier);  // the copy may have become evictable
    if (stack_.is_device(src_tier)) {
      ++c.metrics.restores_from_gpu;
    } else {
      ++c.metrics.restores_from_host;
    }
    ++c.metrics.restores_from_tier[static_cast<std::size_t>(src_tier)];
    ProbeAdd(c.tier_probe[static_cast<std::size_t>(src_tier)].restores);
    if (lineage_ && st.ok()) {
      QueueFlow(c, trace::Kind::kApp, "restore:serve", rec.flow_id,
                trace::FlowPhase::kStep, src_tier, v, rec.size);
    }
  } else if (rec.AnyDurable()) {
    const std::vector<unsigned char> durable = rec.durable;
    const std::uint64_t size = rec.size;
    std::uint64_t fetch_retries = 0;
    bool fell_back = false;
    TierIndex served = -1;
    std::mt19937_64 rng = RngFor(
        c, static_cast<std::uint64_t>(stack_.num_cache_tiers()) + 1, v);
    lock.unlock();
    if (options_.gpudirect) {
      // GPUDirect read: store -> application device buffer over PCIe DMA.
      st = GetDurable(c, v, dst, size, durable, rng, /*abort=*/{},
                      fetch_retries, fell_back, served);
      if (st.ok()) {
        sim::ChargePcieLinkOnly(cluster_.topology(), gpu, size,
                                sim::Topology::LinkDir::kH2D);
      }
    } else {
      // Direct read path: stream store -> transient pinned staging ->
      // device. The unplanned pinned allocation is a genuine penalty of
      // deviating from the hints / running without foreknowledge.
      sim::PinnedArena staging(cluster_.topology(),
                               cluster_.topology().node_of_rank(rank), size);
      st = GetDurable(c, v, staging.data(), size, durable, rng,
                      /*abort=*/{}, fetch_retries, fell_back, served);
      if (st.ok()) {
        st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst, staging.data(),
                                  size, sim::MemcpyKind::kH2D, flow);
      }
    }
    lock.lock();
    c.metrics.fetch_retries += fetch_retries;
    ProbeAdd(c.probe.fetch_retries, fetch_retries);
    if (fetch_retries > 0) {
      QueueInstant(c, trace::Kind::kRetry, "fetch:retries", served, v, size,
                   static_cast<double>(fetch_retries));
    }
    if (fell_back && st.ok()) ++c.metrics.fetch_fallbacks;
    ++c.metrics.restores_from_store;
    if (st.ok() && served >= 0) {
      ++c.metrics.restores_from_tier[static_cast<std::size_t>(served)];
      ProbeAdd(c.tier_probe[static_cast<std::size_t>(served)].restores);
      if (lineage_) {
        QueueFlow(c, trace::Kind::kApp, "restore:serve", rec.flow_id,
                  trace::FlowPhase::kStep, served, v, size);
      }
    }
  } else {
    rec.restore_waiting = false;
    NotifyPrefetch(c);
    return util::FailedPrecondition(
        "checkpoint " + std::to_string(v) +
        " was consumed and discarded; no copy remains on any tier");
  }

  if (!st.ok()) {
    rec.restore_waiting = false;
    NotifyPrefetch(c);
    return st;
  }

  // FSM: route to CONSUMED through READ_COMPLETE (Figure 1 paths).
  if (rec.state != CkptState::kReadComplete) {
    Advance(c, rec, CkptState::kReadComplete);
  }
  Advance(c, rec, CkptState::kConsumed);
  ReleasePin(c, rec);
  rec.restore_waiting = false;
  if (waited_promotion) ++c.metrics.restores_waited_promotion;

  ++c.restore_counter;
  app_span.SetBytes(rec.size);
  app_span.SetTier(src_tier);
  c.metrics.restore_block_s.Add(sw.ElapsedSec());
  c.metrics.restore_block_hist.Add(sw.ElapsedSec());
  c.metrics.bytes_restored += rec.size;
  ProbeAdd(c.probe.restores);
  ProbeAdd(c.probe.bytes_restored, rec.size);
  c.metrics.restore_series.push_back(RestorePoint{
      c.restore_counter - 1, v, sw.ElapsedSec(), rec.size, pdist});
  // restore_waiting cleared: the prefetcher may resume with this record.
  // (Advance and ReleasePin above already woke the state/reserve channels.)
  NotifyPrefetch(c);
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> Engine::RecoverSize(sim::Rank rank, Version v) {
  RankCtx& c = ctx(rank);
  std::unique_lock lock(c.mu);
  auto rec_or = FindOrImport(c, v);
  if (!rec_or.ok()) return rec_or.status();
  return (*rec_or)->size;
}

util::Status Engine::PrefetchEnqueue(sim::Rank rank, Version v) {
  CKPT_RETURN_IF_ERROR(CheckTenantOpen(rank));
  RankCtx& c = ctx(rank);
  // Lock-free hot path (VELOC_Prefetch_enqueue): the hint lands in the
  // rank's mailbox without touching ctx.mu; T_PF folds the mailbox into the
  // ordered hint queue under the lock (DrainHints). The notify below is
  // issued without the mutex, so a waiter between its predicate check and
  // its block can miss it — T_PF's main wait is therefore bounded (it
  // re-drains at least every 10 ms), turning the race into bounded latency
  // instead of a lost wakeup.
  if (shutdown_.load(std::memory_order_acquire)) {
    return util::ShutdownError("engine stopping");
  }
  c.hint_inbox.Push(v);
  ProbeAdd(c.probe.hints_enqueued);
  NotifyPrefetch(c);
  return util::OkStatus();
}

util::Status Engine::PrefetchStart(sim::Rank rank) {
  RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  if (c.shutdown) return util::ShutdownError("engine stopping");
  c.prefetch_started = true;
  NotifyPrefetch(c);
  return util::OkStatus();
}

util::Status Engine::WaitForFlushes(sim::Rank rank) {
  const Stopwatch sw;
  RankCtx& c = ctx(rank);
  std::unique_lock lock(c.mu);
  c.cv_state.wait(lock, [&] { return c.inflight_flushes == 0 || c.shutdown; });
  c.metrics.wait_for_flush_s += sw.ElapsedSec();
  if (c.shutdown && c.inflight_flushes != 0) {
    return util::ShutdownError("engine stopped with flushes pending");
  }
  if (c.flush_failed_count > 0) {
    return util::IoError(
        std::to_string(c.flush_failed_count) +
        " checkpoint(s) permanently failed to flush and were lost");
  }
  return util::OkStatus();
}

RankMetrics Engine::metrics(sim::Rank rank) const { return MetricsSnapshot(rank); }

RankMetrics Engine::MetricsSnapshot(sim::Rank rank) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  return c.metrics;
}

Engine::RankProbe Engine::Probe(sim::Rank rank) const {
  // The whole point of this accessor: NO rank-lock acquisition. Every read
  // is a relaxed atomic load (or CacheUsed's own leaf-locked probe), so a
  // sampler thread can call it at arbitrary frequency without ever
  // contending with Checkpoint/Restore/flush/prefetch.
  constexpr auto relax = std::memory_order_relaxed;
  const RankCtx& c = ctx(rank);
  RankProbe p;
  p.state_occupancy.resize(kCkptStateCount, 0);
  for (std::size_t s = 0; s < kCkptStateCount; ++s) {
    p.state_occupancy[s] = c.probe.state_occupancy[s].load(relax);
  }
  p.last_transition_ns = c.probe.last_transition_ns.load(relax);
  // Enqueue and retire sides race; clamp so the gauge never wraps.
  const std::uint64_t enq = c.probe.hints_enqueued.load(relax);
  const std::uint64_t ret = c.probe.hints_retired.load(relax);
  p.restore_queue_depth = enq >= ret ? enq - ret : 0;
  p.reserve_rounds = c.probe.reserve_rounds.load(relax);
  p.reserve_plans_stale = c.probe.reserve_plans_stale.load(relax);
  p.reserve_snapshot_reuse = c.probe.reserve_snapshot_reuse.load(relax);
  p.reserve_quota_waits = c.probe.reserve_quota_waits.load(relax);
  p.flush_retries = c.probe.flush_retries.load(relax);
  p.fetch_retries = c.probe.fetch_retries.load(relax);
  p.tier_degradations = c.probe.tier_degradations.load(relax);
  p.checkpoints_lost = c.probe.checkpoints_lost.load(relax);
  p.checkpoints = c.probe.checkpoints.load(relax);
  p.restores = c.probe.restores.load(relax);
  p.bytes_checkpointed = c.probe.bytes_checkpointed.load(relax);
  p.bytes_restored = c.probe.bytes_restored.load(relax);
  p.watchdog_stalls = c.probe.watchdog_stalls.load(relax);
  p.objects_admitted = c.probe.objects_admitted.load(relax);
  p.objects_durable = c.probe.objects_durable.load(relax);
  p.objects_degraded = c.probe.objects_degraded.load(relax);
  p.objects_lost = c.probe.objects_lost.load(relax);
  p.objects_erased = c.probe.objects_erased.load(relax);
  p.tiers.resize(stack_.size());
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    TierProbe& tp = p.tiers[i];
    const TierProbeCells& cells = c.tier_probe[i];
    tp.flush_queue_depth = cells.flush_queue_depth.load(relax);
    tp.flush_bytes = cells.flush_bytes.load(relax);
    tp.restores = cells.restores.load(relax);
    if (lineage_ && stack_.is_durable(static_cast<TierIndex>(i))) {
      tp.lag_buckets.resize(util::telemetry::kDurabilityLagBuckets, 0);
      for (std::size_t b = 0; b < tp.lag_buckets.size(); ++b) {
        tp.lag_buckets[b] = cells.lag_buckets[b].load(relax);
      }
      tp.lag_count = cells.lag_count.load(relax);
      tp.lag_sum_ns = cells.lag_sum_ns.load(relax);
    }
    const auto ti = static_cast<TierIndex>(i);
    if (stack_.is_cache(ti)) {
      tp.bytes_used = CacheUsed(rank, ti);
      // capacity is written once at Init, before any worker or sampler can
      // observe it: a plain read is safe.
      tp.bytes_capacity = c.tiers[i]->capacity;
    }
  }
  return p;
}

void Engine::NoteStall(sim::Rank rank, StallKind kind) {
  RankCtx& c = ctx(rank);
  ProbeAdd(c.probe.watchdog_stalls);
  std::lock_guard lock(c.mu);
  ++c.metrics.watchdog_stalls;
  switch (kind) {
    case StallKind::kFsmDwell:
      ++c.metrics.watchdog_fsm_stalls;
      break;
    case StallKind::kFlushNoProgress:
      ++c.metrics.watchdog_flush_stalls;
      break;
    case StallKind::kReserveLivelock:
      ++c.metrics.watchdog_reserve_stalls;
      break;
  }
}

// ---------------------------------------------------------------------------
// Deferred trace emission (S1: trace bookkeeping off the rank lock)
// ---------------------------------------------------------------------------

void Engine::QueueInstant(RankCtx& ctx_, trace::Kind kind, const char* name,
                          int tier, Version v, std::uint64_t bytes, double a,
                          double b) {
  if (!trace::enabled()) return;
  CKPT_ASSERT_HELD(ctx_.mu);
  trace::Event e;
  e.ts_ns = trace::Now();
  e.dur_ns = -1;
  e.name = name;
  e.kind = kind;
  e.rank = static_cast<std::int16_t>(ctx_.rank);
  e.tier = static_cast<std::int16_t>(tier);
  e.version = v;
  e.bytes = bytes;
  e.a = a;
  e.b = b;
  ctx_.pending_trace.push_back(e);
}

void Engine::QueueSpanSince(RankCtx& ctx_, trace::Kind kind, const char* name,
                            std::int64_t begin_ns, int tier, Version v,
                            std::uint64_t bytes, double a, double b) {
  if (!trace::enabled()) return;
  CKPT_ASSERT_HELD(ctx_.mu);
  trace::Event e;
  e.ts_ns = begin_ns;
  e.dur_ns = trace::Now() - begin_ns;
  if (e.dur_ns < 0) e.dur_ns = 0;
  e.name = name;
  e.kind = kind;
  e.rank = static_cast<std::int16_t>(ctx_.rank);
  e.tier = static_cast<std::int16_t>(tier);
  e.version = v;
  e.bytes = bytes;
  e.a = a;
  e.b = b;
  ctx_.pending_trace.push_back(e);
}

void Engine::PublishQueuedTrace(RankCtx& ctx_) {
  std::vector<trace::Event> batch;
  {
    std::lock_guard lock(ctx_.mu);
    if (ctx_.pending_trace.empty()) return;
    batch.swap(ctx_.pending_trace);
  }
  // Emission happens outside the rank lock: EmitEvent only touches the
  // calling thread's trace buffer (one leaf mutex).
  for (const trace::Event& e : batch) trace::detail::EmitEvent(e);
}

void Engine::PublishQueuedTraceLocked(
    RankCtx& ctx_, std::unique_lock<util::CheckedMutex>& lock) {
  CKPT_ASSERT_HELD(ctx_.mu);
  if (ctx_.pending_trace.empty()) return;
  std::vector<trace::Event> batch;
  batch.swap(ctx_.pending_trace);
  lock.unlock();
  for (const trace::Event& e : batch) trace::detail::EmitEvent(e);
  lock.lock();
}

// ---------------------------------------------------------------------------
// Per-checkpoint lineage (DESIGN.md §14)
// ---------------------------------------------------------------------------

void Engine::QueueFlow(RankCtx& ctx_, trace::Kind kind, const char* name,
                       std::uint64_t flow_id, trace::FlowPhase phase,
                       int tier, Version v, std::uint64_t bytes) {
  if (!trace::flows_enabled() || flow_id == 0) return;
  CKPT_ASSERT_HELD(ctx_.mu);
  trace::Event e;
  e.ts_ns = trace::Now();
  e.dur_ns = -1;
  e.name = name;
  e.kind = kind;
  e.flow = phase;
  e.rank = static_cast<std::int16_t>(ctx_.rank);
  e.tier = static_cast<std::int16_t>(tier);
  e.version = v;
  e.bytes = bytes;
  e.flow_id = flow_id;
  ctx_.pending_trace.push_back(e);
}

void Engine::LineageAdmit(RankCtx& ctx_, Record& rec) {
  CKPT_ASSERT_HELD(ctx_.mu);
  if (!lineage_) return;
  rec.admit_ns = util::NowNs();
  rec.flow_id = trace::FlowIdOf(ctx_.rank, rec.version);
  ++ctx_.metrics.objects_admitted;
  ProbeAdd(ctx_.probe.objects_admitted);
  QueueFlow(ctx_, trace::Kind::kLifecycle, "ckpt:admit", rec.flow_id,
            trace::FlowPhase::kStart, /*tier=*/-1, rec.version, rec.size);
}

void Engine::LineageTerminal(RankCtx& ctx_, Record& rec, LineageOutcome outcome,
                             const char* flow_name, int tier) {
  CKPT_ASSERT_HELD(ctx_.mu);
  // First disposition wins: a degraded record later discarded, or a lost
  // record whose erase site also fires, must not terminate twice — that is
  // exactly the double-termination the auditor flags.
  if (!lineage_ || rec.lineage_done || rec.flow_id == 0) return;
  rec.lineage_done = true;
  switch (outcome) {
    case LineageOutcome::kDurable:
      ++ctx_.metrics.objects_durable;
      ProbeAdd(ctx_.probe.objects_durable);
      break;
    case LineageOutcome::kDegraded:
      ++ctx_.metrics.objects_degraded;
      ProbeAdd(ctx_.probe.objects_degraded);
      break;
    case LineageOutcome::kLost:
      ++ctx_.metrics.objects_lost;
      ProbeAdd(ctx_.probe.objects_lost);
      break;
    case LineageOutcome::kErased:
      ++ctx_.metrics.objects_erased;
      ProbeAdd(ctx_.probe.objects_erased);
      break;
  }
#ifndef CKPT_TELEMETRY_DISABLED
  if (ctx_.lineage_journal != nullptr) {
    constexpr auto relax = std::memory_order_relaxed;
    const std::uint64_t h = ctx_.lineage_head.load(relax);
    LineageCell& cell = ctx_.lineage_journal[h % kLineageJournalCap];
    const std::uint64_t s = cell.stamp.load(relax);
    cell.stamp.store(s + 1, std::memory_order_release);  // odd: mid-write
    cell.version.store(rec.version, relax);
    cell.flow_id.store(rec.flow_id, relax);
    cell.admit_ns.store(rec.admit_ns, relax);
    cell.durable_ns.store(rec.first_durable_ns, relax);
    cell.terminal_ns.store(util::NowNs(), relax);
    cell.durable_tier.store(rec.first_durable_tier, relax);
    cell.outcome.store(static_cast<std::uint8_t>(outcome), relax);
    cell.stamp.store(s + 2, std::memory_order_release);  // even: stable
    ctx_.lineage_head.store(h + 1, std::memory_order_release);
  }
#endif
  QueueFlow(ctx_, trace::Kind::kLifecycle, flow_name, rec.flow_id,
            trace::FlowPhase::kEnd, tier, rec.version, rec.size);
}

void Engine::LineageDurableAck(RankCtx& ctx_, Record& rec, std::size_t d) {
  CKPT_ASSERT_HELD(ctx_.mu);
  if (!lineage_ || rec.flow_id == 0 || rec.admit_ns <= 0) return;
  const auto idx =
      static_cast<std::size_t>(stack_.durable_index(static_cast<int>(d)));
  const std::int64_t now = util::NowNs();
  if (rec.first_durable_ns == 0) {
    rec.first_durable_ns = now;
    rec.first_durable_tier = static_cast<std::int16_t>(idx);
  }
  const std::int64_t lag_ns = now > rec.admit_ns ? now - rec.admit_ns : 0;
  const double lag_s = static_cast<double>(lag_ns) / 1e9;
  if (idx < ctx_.metrics.durable_lag_hist.size()) {
    ctx_.metrics.durable_lag_hist[idx].Add(lag_s);
  }
#ifndef CKPT_TELEMETRY_DISABLED
  {
    constexpr auto relax = std::memory_order_relaxed;
    TierProbeCells& cells = ctx_.tier_probe[idx];
    // First bucket whose upper edge covers the sample (`le` convention).
    constexpr std::size_t n_edges = util::telemetry::kDurabilityLagBuckets - 1;
    std::size_t b = 0;
    while (b < n_edges && lag_s > util::telemetry::kDurabilityLagEdgesS[b]) {
      ++b;
    }
    cells.lag_buckets[b].fetch_add(1, relax);
    cells.lag_count.fetch_add(1, relax);
    cells.lag_sum_ns.fetch_add(static_cast<std::uint64_t>(lag_ns), relax);
  }
#endif
  QueueFlow(ctx_, trace::Kind::kFlush, flow_ack_names_[d], rec.flow_id,
            trace::FlowPhase::kStep, static_cast<int>(idx), rec.version,
            rec.size);
}

Engine::LineageSnapshot Engine::Lineage(sim::Rank rank) const {
  constexpr auto relax = std::memory_order_relaxed;
  const RankCtx& c = ctx(rank);
  LineageSnapshot s;
  s.admitted = c.probe.objects_admitted.load(relax);
  s.durable = c.probe.objects_durable.load(relax);
  s.degraded = c.probe.objects_degraded.load(relax);
  s.lost = c.probe.objects_lost.load(relax);
  s.erased = c.probe.objects_erased.load(relax);
  if (c.lineage_journal == nullptr) return s;
  const std::uint64_t head = c.lineage_head.load(std::memory_order_acquire);
  s.journal_total = head;
  const std::uint64_t n = head < kLineageJournalCap ? head : kLineageJournalCap;
  s.journal.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head - n; i < head; ++i) {
    const LineageCell& cell = c.lineage_journal[i % kLineageJournalCap];
    // Seqlock read: a slot caught mid-write (odd stamp) or overwritten
    // between the two stamp reads is retried a few times, then skipped —
    // a sampler must never spin against the hot path.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t s1 = cell.stamp.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;
      if (s1 == 0) break;  // never written
      LineageEntry e;
      e.version = cell.version.load(relax);
      e.flow_id = cell.flow_id.load(relax);
      e.admit_ns = cell.admit_ns.load(relax);
      e.durable_ns = cell.durable_ns.load(relax);
      e.terminal_ns = cell.terminal_ns.load(relax);
      e.durable_tier = static_cast<int>(cell.durable_tier.load(relax));
      e.outcome = static_cast<LineageOutcome>(cell.outcome.load(relax));
      if (cell.stamp.load(std::memory_order_acquire) == s1) {
        s.journal.push_back(e);
        break;
      }
    }
  }
  return s;
}

util::StatusOr<CkptState> Engine::StateOf(sim::Rank rank, Version v) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  auto it = c.records.find(v);
  if (it == c.records.end()) return util::NotFound("no record");
  return it->second.state;
}

util::StatusOr<TierIndex> Engine::DurableTierIndexOf(sim::Rank rank,
                                                     Version v) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  auto it = c.records.find(v);
  if (it == c.records.end()) return util::NotFound("no record");
  const Record& rec = it->second;
  if (rec.state == CkptState::kFlushFailed) {
    return util::IoError("checkpoint " + std::to_string(v) +
                         " was lost: flush permanently failed");
  }
  if (!rec.flush_done) {
    return util::FailedPrecondition("flush of checkpoint " +
                                    std::to_string(v) + " still in flight");
  }
  for (int d = stack_.num_durable_tiers() - 1; d >= 0; --d) {
    if (rec.durable[static_cast<std::size_t>(d)]) {
      return stack_.durable_index(d);
    }
  }
  for (int j = stack_.num_cache_tiers() - 1; j >= 0; --j) {
    if (rec.res[static_cast<std::size_t>(j)].valid) return j;
  }
  return util::NotFound("checkpoint " + std::to_string(v) +
                        " holds no copy on any tier");
}

util::StatusOr<Tier> Engine::DurableTierOf(sim::Rank rank, Version v) const {
  auto idx = DurableTierIndexOf(rank, v);
  if (!idx.ok()) return idx.status();
  return static_cast<Tier>(*idx);
}

bool Engine::ResidentOnIndex(sim::Rank rank, Version v, TierIndex tier) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  auto it = c.records.find(v);
  if (it == c.records.end()) return false;
  const Record& rec = it->second;
  if (tier < 0 || tier >= static_cast<int>(stack_.size())) return false;
  if (stack_.is_cache(tier)) {
    return rec.res[static_cast<std::size_t>(tier)].valid;
  }
  return rec.durable[static_cast<std::size_t>(stack_.durable_ordinal(tier))] !=
         0;
}

bool Engine::ResidentOn(sim::Rank rank, Version v, Tier tier) const {
  return ResidentOnIndex(rank, v, static_cast<TierIndex>(tier));
}

std::uint64_t Engine::CacheUsed(sim::Rank rank, TierIndex tier) const {
  // Deliberately does NOT take the rank lock: capacity probes must not
  // contend with the hot path. `ready` is an acquire-load paired with the
  // release-store after the buffers are built, and used_bytes() takes the
  // buffer's own leaf lock.
  const RankCtx& c = ctx(rank);
  if (tier < 0 || !stack_.is_cache(tier)) return 0;
  const CacheTierRt& t = *c.tiers[static_cast<std::size_t>(tier)];
  if (!t.ready.load(std::memory_order_acquire)) return 0;
  std::uint64_t used = t.write_buf->used_bytes();
  if (t.prefetch_buf) used += t.prefetch_buf->used_bytes();
  return used;
}

std::uint64_t Engine::GpuCacheUsed(sim::Rank rank) const {
  std::uint64_t used = 0;
  for (int i = 0; i < stack_.num_cache_tiers(); ++i) {
    if (stack_.is_device(i)) used += CacheUsed(rank, i);
  }
  return used;
}

std::uint64_t Engine::HostCacheUsed(sim::Rank rank) const {
  std::uint64_t used = 0;
  for (int i = 0; i < stack_.num_cache_tiers(); ++i) {
    if (!stack_.is_device(i)) used += CacheUsed(rank, i);
  }
  return used;
}

std::uint64_t Engine::PrefetchDistance(sim::Rank rank) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  return ComputePrefetchDistance(c);
}

// ---------------------------------------------------------------------------
// Background workers
// ---------------------------------------------------------------------------

// One generic flush stage per cache tier: drains copies from `tier` to
// `tier + 1` (the default stack's T_D2H is the tier-0 instance); the last
// cache tier's stage writes the durable stores instead (T_H2F). Checkpoints
// larger than every deeper cache bypass straight to the stores.
void Engine::FlushStageLoop(RankCtx& c, TierIndex tier) {
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(c.rank);
  std::mt19937_64 rng = RngFor(c, static_cast<std::uint64_t>(tier));
  const sim::Flow flow = FlowOf(c);
  CacheTierRt& t = *c.tiers[static_cast<std::size_t>(tier)];
  const int ncache = stack_.num_cache_tiers();
  const std::string tier_name(stack_.name(static_cast<std::size_t>(tier)));
  trace::SetThreadName(TenantThreadPrefix(c) + "r" + std::to_string(c.rank) +
                       "/flush:" + tier_name);
  // Span names are interned once per worker: the Chrome `name` groups one
  // stage's copies ("flush:gpu" = everything leaving the gpu tier).
  const char* stage_span = trace::Intern("flush:" + tier_name);
  const char* terminal_span = trace::Intern("flush:" + tier_name + ">durable");

  // Writes (rank, v) to the durable stores directly from this tier's copy.
  // Device-tier sources stage through a transient pinned buffer first
  // (without GPUDirect the drive cannot read device memory). Returns the
  // result to apply under the lock.
  const auto put_from_tier = [&](Version v, sim::ConstBytePtr src,
                                 std::uint64_t size) -> TerminalPutResult {
    if (!stack_.is_device(tier)) return PutTerminal(c, v, src, size, rng);
    sim::PinnedArena staging(cluster_.topology(), gpu.node, size);
    const util::Status st = sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                                 staging.data(), src, size,
                                                 sim::MemcpyKind::kD2H, flow);
    if (!st.ok()) {
      CKPT_LOG(kError, "flush") << "direct store flush failed: " << st.ToString();
      return TerminalPutResult{};
    }
    return PutTerminal(c, v, staging.data(), size, rng);
  };

  // Balances the producer-side flush_queue_depth bump: the gauge counts
  // queued + in-flight work, so the decrement happens when an iteration's
  // work is fully disposed of — whatever exit path it takes — not at Pop.
  // A hung terminal put therefore keeps the depth visibly non-zero, which
  // is exactly what the watchdog's no-progress detector needs.
  struct QueueDepthGuard {
    RankCtx& c;
    TierIndex tier;
    ~QueueDepthGuard() {
      ProbeSub(c.tier_probe[static_cast<std::size_t>(tier)].flush_queue_depth);
    }
  };

  while (auto vo = t.flush_q.Pop()) {
    const Version v = *vo;
    QueueDepthGuard depth_guard{c, tier};
    ScopedTracePublisher trace_pub(c);  // queued events flush per iteration
    std::unique_lock lock(c.mu);
    auto it = c.records.find(v);
    if (it == c.records.end()) continue;  // defensive
    Record& rec = it->second;
    Residency& mine = rec.res[static_cast<std::size_t>(tier)];

    auto cancel = [&](LineageOutcome outcome, const char* flow_name) {
      t.backlog_bytes -= rec.size;
      ++c.metrics.flushes_cancelled;
      if (!rec.flush_done) {
        rec.flush_done = true;
        --c.inflight_flushes;
      }
      LineageTerminal(c, rec, outcome, flow_name, tier);
      NotifyState(c);  // WaitForFlushes watches inflight_flushes
    };

    // Condition (5): consumed + discardable checkpoints skip pending flushes.
    if (options_.discard_after_restore && rec.state == CkptState::kConsumed) {
      cancel(LineageOutcome::kErased, "flow:erased:discarded");
      continue;
    }
    if (!mine.valid) {
      // The copy on this tier can only have been evicted if a safe copy
      // existed elsewhere; route the flush obligation to wherever that
      // copy lives now. (backlog_bytes only feeds ETA estimates; no waiter
      // blocks on it, so no wakeup here.)
      t.backlog_bytes -= rec.size;
      int deeper = -1;
      for (int j = tier + 1; j < ncache; ++j) {
        if (rec.res[static_cast<std::size_t>(j)].valid) {
          deeper = j;
          break;
        }
      }
      if (deeper >= 0) {
        // A deeper cache copy continues the pipeline from there.
        c.tiers[static_cast<std::size_t>(deeper)]->backlog_bytes += rec.size;
        lock.unlock();
        ProbeAdd(
            c.tier_probe[static_cast<std::size_t>(deeper)].flush_queue_depth);
        c.tiers[static_cast<std::size_t>(deeper)]->flush_q.Push(v);
      } else if (rec.AnyDurable()) {
        // Already durable from an earlier stage; the missing copy is moot.
        FinishFlush(c, rec);
      } else if (rec.AnyCached()) {
        // Only a shallower copy survives; it is pinned by SafeBelow(), so
        // the checkpoint stays available but short of the terminal tier.
        CKPT_LOG(kError, "flush")
            << "rank " << c.rank << " ckpt " << v << ": "
            << stack_.name(static_cast<std::size_t>(tier))
            << " copy lost before its flush stage";
        rec.degraded = true;
        ++c.metrics.tier_degradations;
        FinishFlush(c, rec);
      } else if (!rec.flush_done) {
        CKPT_LOG(kError, "flush")
            << "rank " << c.rank << " ckpt " << v << ": "
            << stack_.name(static_cast<std::size_t>(tier))
            << " copy lost before its flush stage";
        MarkFlushFailed(c, rec);
      }
      continue;
    }

    if (options_.gpudirect && stack_.is_device(tier)) {
      // GPUDirect Storage: DMA the checkpoint straight from the device
      // cache to the drive, bypassing the pinned tiers and DDR entirely.
      ++mine.read_refs;
      sim::ConstBytePtr src = BufferFor(c, tier, mine.part).PtrAt(mine.offset);
      const std::uint64_t size = rec.size;
      lock.unlock();
      const std::int64_t t0 = util::NowNs();
      sim::ChargePcieLinkOnly(cluster_.topology(), gpu, size,
                              sim::Topology::LinkDir::kD2H);
      const TerminalPutResult r = PutTerminal(c, v, src, size, rng);
      lock.lock();
      --mine.read_refs;
      NotifyReserve(c, tier);  // our source copy may now be evictable
      t.backlog_bytes -= size;
      QueueSpanSince(c, trace::Kind::kFlush, terminal_span, t0,
                     stack_.terminal(), v, size);
      c.metrics.flush_stage_hist[static_cast<std::size_t>(tier)].Add(
          static_cast<double>(util::NowNs() - t0) / 1e9);
      ApplyFlushResult(c, rec, r);
      continue;
    }

    // Reserve space on the next cache tier down; oversize checkpoints keep
    // falling through to deeper (larger) caches. The last cache tier has no
    // next tier: it writes the durable stores.
    int target = -1;
    std::uint64_t noff = 0;
    util::Status reserve_st = util::OkStatus();
    for (int j = tier + 1; j < ncache; ++j) {
      auto o = ReserveOn(c, lock, j, ReservePurpose::kWrite, v, rec.size,
                         /*abort=*/[&] {
                           return options_.discard_after_restore &&
                                  rec.state == CkptState::kConsumed;
                         });
      if (o.ok()) {
        target = j;
        noff = *o;
        break;
      }
      reserve_st = o.status();
      if (reserve_st.code() != util::ErrorCode::kCapacityExceeded) break;
    }
    if (target < 0 && tier + 1 < ncache &&
        reserve_st.code() != util::ErrorCode::kCapacityExceeded) {
      // Shutdown or condition-(5) abort mid-reservation.
      cancel(LineageOutcome::kErased, "flow:erased:cancelled");
      continue;
    }

    if (target < 0) {
      // Terminal stage (last cache tier, or no deeper cache fits this
      // checkpoint): write the durable stores from this tier's copy.
      ++mine.read_refs;
      sim::ConstBytePtr src = BufferFor(c, tier, mine.part).PtrAt(mine.offset);
      const std::uint64_t size = rec.size;
      lock.unlock();
      const std::int64_t t0 = util::NowNs();
      const TerminalPutResult r = put_from_tier(v, src, size);
      lock.lock();
      --mine.read_refs;
      NotifyReserve(c, tier);  // our source copy may now be evictable
      t.backlog_bytes -= size;
      QueueSpanSince(c, trace::Kind::kFlush, terminal_span, t0,
                     stack_.terminal(), v, size);
      c.metrics.flush_stage_hist[static_cast<std::size_t>(tier)].Add(
          static_cast<double>(util::NowNs() - t0) / 1e9);
      ApplyFlushResult(c, rec, r);
      continue;
    }

    // Stage the copy one (or more) tiers down, then hand off to that
    // tier's flush worker.
    Residency& next = rec.res[static_cast<std::size_t>(target)];
    next.offset = noff;
    next.io_pending = true;
    next.part = ReservePurpose::kWrite;
    ++mine.read_refs;
    sim::ConstBytePtr src = BufferFor(c, tier, mine.part).PtrAt(mine.offset);
    sim::BytePtr dst = BufferFor(c, target, ReservePurpose::kWrite).PtrAt(noff);
    const sim::MemcpyKind kind = stack_.is_device(tier)
                                     ? sim::MemcpyKind::kD2H
                                     : sim::MemcpyKind::kH2H;
    lock.unlock();

    const std::int64_t t0 = util::NowNs();
    const util::Status st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst,
                                                 src, rec.size, kind, flow);

    lock.lock();
    --mine.read_refs;
    next.io_pending = false;
    if (!st.ok()) {
      (void)BufferFor(c, target, ReservePurpose::kWrite).Release(v);
      next.Clear();
      NotifyReserve(c, tier);    // read_refs dropped
      NotifyReserve(c, target);  // reservation released
      CKPT_LOG(kError, "flush") << "flush stage copy failed: " << st.ToString();
      // The source-tier copy survives the failed hop, so the object ends
      // short of the terminal tier rather than lost.
      cancel(LineageOutcome::kDegraded, "flow:degraded:flush-cancelled");
      continue;
    }
    QueueSpanSince(c, trace::Kind::kFlush, stage_span, t0, target, v,
                   rec.size);
    if (lineage_) {
      QueueFlow(c, trace::Kind::kFlush, flow_hop_names_[target], rec.flow_id,
                trace::FlowPhase::kStep, target, v, rec.size);
    }
    c.metrics.flush_stage_hist[static_cast<std::size_t>(tier)].Add(
        static_cast<double>(util::NowNs() - t0) / 1e9);
    next.valid = true;
    t.backlog_bytes -= rec.size;
    c.tiers[static_cast<std::size_t>(target)]->backlog_bytes += rec.size;
    c.metrics.flush_bytes_to_tier[static_cast<std::size_t>(target)] += rec.size;
    ProbeAdd(c.tier_probe[static_cast<std::size_t>(target)].flush_bytes,
             rec.size);
    // The deeper copy makes every shallower copy of this record SafeBelow
    // (and our read_ref dropped): wake reservations above `target` only.
    for (int j = 0; j < target; ++j) NotifyReserve(c, j);
    NotifyPrefetch(c);  // T_PF may be in its landing wait for this version
    lock.unlock();
    ProbeAdd(c.tier_probe[static_cast<std::size_t>(target)].flush_queue_depth);
    c.tiers[static_cast<std::size_t>(target)]->flush_q.Push(v);
  }
}

void Engine::PrefetchLoop(RankCtx& c) {
  trace::SetThreadName(TenantThreadPrefix(c) + "r" + std::to_string(c.rank) +
                       "/prefetch");
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(c.rank);
  const sim::Flow flow = FlowOf(c);
  const int ncache = stack_.num_cache_tiers();
  std::mt19937_64 rng = RngFor(c, static_cast<std::uint64_t>(ncache));
  const std::uint64_t pin_cap = static_cast<std::uint64_t>(
      static_cast<double>(c.tiers[0]->capacity) *
      options_.prefetch_pin_fraction);
  // Declared before the lock: flushes whatever is still queued when the
  // worker exits (the in-loop publish below handles steady state).
  ScopedTracePublisher trace_pub(c);
  std::unique_lock lock(c.mu);
  for (;;) {
    // Emit the previous iteration's queued trace events while nothing else
    // is held up (briefly drops the lock; no-op when the queue is empty).
    PublishQueuedTraceLocked(c, lock);
    // Bounded wait: PrefetchEnqueue notifies cv_prefetch without holding
    // ctx.mu (lock-free hint path), so a notify can land between the
    // predicate check and the block. The 10 ms re-drain bounds that race.
    c.cv_prefetch.wait_for(lock, std::chrono::milliseconds(10), [&] {
      DrainHints(c);
      return c.shutdown ||
             (c.prefetch_started && c.hints.Head().has_value());
    });
    if (c.shutdown) return;
    if (!c.prefetch_started || !c.hints.Head().has_value()) continue;
    const Version v = *c.hints.Head();

    auto rec_or = FindOrImport(c, v);
    if (!rec_or.ok()) {
      // Hint for a checkpoint that has not been written yet (Listing 1
      // enqueues the whole restore order before the forward pass). Wait for
      // it to appear; Checkpoint() notifies on record creation.
      c.cv_prefetch.wait_for(lock, std::chrono::milliseconds(10));
      continue;
    }
    Record& rec = **rec_or;

    if (rec.restore_waiting) {
      // The application is already blocked reading this version through the
      // direct path (it dropped its own pending hint); wait it out.
      c.cv_prefetch.wait(lock, [&] { return c.shutdown || !rec.restore_waiting; });
      continue;
    }

    const bool already_pinned = rec.res[0].valid && StatePinsFastTier(rec.state);
    if (already_pinned) {
      Touch(c, rec);
      c.hints.PopHead();
      ProbeAdd(c.probe.hints_retired);
      ++c.metrics.prefetch_gpu_hits;
      QueueInstant(c, trace::Kind::kPrefetch, "prefetch:hit", 0, v, rec.size);
      continue;
    }

    if (!rec.AnyCached() && !rec.AnyDurable()) {
      if (rec.state == CkptState::kConsumed ||
          rec.state == CkptState::kFlushFailed) {
        c.hints.PopHead();  // discarded (condition (5)) or lost: no fetch
        ProbeAdd(c.probe.hints_retired);
      } else {
        // The write that produces this version is still copying into the
        // fast cache; no residency is valid yet. Wait for it to land.
        c.cv_prefetch.wait_for(lock, std::chrono::milliseconds(10));
      }
      continue;
    }

    // Thrash control: cap the bytes pinned by unconsumed prefetched
    // checkpoints so interleaved writers always keep cache headroom. This
    // governs BOTH pin paths — promotions and already-on-fast-tier hits —
    // or an interleaved producer could find every cache slot pinned.
    bool aborted = false;
    while (c.prefetched_pinned_bytes + rec.size > pin_cap && !c.shutdown) {
      if (rec.restore_waiting) {
        aborted = true;
        break;
      }
      c.cv_prefetch.wait(lock);  // ReleasePin / restore_waiting notify here
    }
    if (c.shutdown) return;
    if (aborted || c.hints.Head() != std::optional<Version>(v)) {
      // The application deviated meanwhile; re-evaluate from the top. The
      // hint (if still present) is served by the direct path.
      ++c.metrics.prefetch_aborts;
      continue;
    }

    if (rec.res[0].valid) {
      // Already resident on the fast tier: pin it per the life cycle
      // (FLUSHED/WRITE_* -> READ_COMPLETE without any transfer).
      Touch(c, rec);
      Advance(c, rec, CkptState::kReadComplete);
      AddPin(c, rec);
      c.hints.PopHead();
      ProbeAdd(c.probe.hints_retired);
      ++c.metrics.prefetch_gpu_hits;
      QueueInstant(c, trace::Kind::kPrefetch, "prefetch:hit", 0, v, rec.size);
      continue;
    }

    // Claim the promotion.
    c.hints.PopHead();
    ProbeAdd(c.probe.hints_retired);
    rec.prefetch_claimed = true;
    Advance(c, rec, CkptState::kReadInProgress);
    const std::int64_t promo_begin = util::NowNs();

    auto rollback = [&] {
      rec.prefetch_claimed = false;
      // Advance() wakes cv_state, where Restore's promotion wait re-checks
      // prefetch_claimed.
      Advance(c, rec,
              rec.flush_done ? CkptState::kFlushed : CkptState::kWriteInProgress);
      ++c.metrics.prefetch_aborts;
      QueueInstant(c, trace::Kind::kPrefetch, "prefetch:abort", 0, v,
                   rec.size);
    };

    // Promotion source: the shallowest cache tier below the fast one still
    // holding a copy, else the durable stores.
    int src_tier = -1;
    for (int j = 1; j < ncache; ++j) {
      if (rec.res[static_cast<std::size_t>(j)].valid) {
        src_tier = j;
        break;
      }
    }
    if (src_tier > 0) {
      ++rec.res[static_cast<std::size_t>(src_tier)].read_refs;
    }

    auto goff = ReserveOn(c, lock, 0, ReservePurpose::kPrefetch, v, rec.size,
                          /*abort=*/[&] { return rec.restore_waiting; });
    if (!goff.ok()) {
      if (src_tier > 0) {
        --rec.res[static_cast<std::size_t>(src_tier)].read_refs;
        NotifyReserve(c, src_tier);
      }
      rollback();
      if (c.shutdown) return;
      continue;
    }
    rec.res[0].offset = *goff;
    rec.res[0].io_pending = true;
    rec.res[0].part = ReservePurpose::kPrefetch;

    const auto abandon = [&c, &rec] {
      std::lock_guard l(c.mu);
      return c.shutdown || rec.restore_waiting;
    };

    if (src_tier < 0 && options_.gpudirect && stack_.is_device(0)) {
      // GPUDirect promotion: DMA the checkpoint from the store straight
      // into the reserved device cache slot, bypassing the pinned tiers.
      sim::BytePtr gdst =
          BufferFor(c, 0, ReservePurpose::kPrefetch).PtrAt(rec.res[0].offset);
      const std::vector<unsigned char> durable = rec.durable;
      const std::uint64_t size = rec.size;
      std::uint64_t fetch_retries = 0;
      bool fell_back = false;
      TierIndex served = -1;
      lock.unlock();
      util::Status st = GetDurable(c, v, gdst, size, durable, rng, abandon,
                                   fetch_retries, fell_back, served);
      if (st.ok()) {
        sim::ChargePcieLinkOnly(cluster_.topology(), gpu, size,
                                sim::Topology::LinkDir::kH2D);
      }
      lock.lock();
      c.metrics.fetch_retries += fetch_retries;
      ProbeAdd(c.probe.fetch_retries, fetch_retries);
      if (fell_back && st.ok()) ++c.metrics.fetch_fallbacks;
      rec.res[0].io_pending = false;
      if (!st.ok()) {
        CKPT_LOG(kError, "prefetch") << "GPUDirect read failed: " << st.ToString();
        (void)BufferFor(c, 0, ReservePurpose::kPrefetch).Release(v);
        rec.res[0].Clear();
        rollback();
        continue;
      }
      rec.res[0].valid = true;
      rec.prefetch_claimed = false;
      Touch(c, rec);
      Advance(c, rec, CkptState::kReadComplete);
      AddPin(c, rec);
      ++c.metrics.prefetch_promotions;
      QueueSpanSince(c, trace::Kind::kPrefetch, "prefetch:promote", promo_begin,
                     0, v, rec.size);
      if (lineage_) {
        QueueFlow(c, trace::Kind::kPrefetch, "prefetch:promote", rec.flow_id,
                  trace::FlowPhase::kStep, 0, v, rec.size);
      }
      c.metrics.promotion_hist.Add(
          static_cast<double>(util::NowNs() - promo_begin) / 1e9);
      continue;  // Advance() above already woke the state channel
    }

    if (src_tier < 0 && ncache == 1) {
      // Single cache tier: fetch from the stores straight into the
      // reserved slot (staging through transient pinned memory when the
      // tier is device-backed and GPUDirect is off).
      sim::BytePtr slot =
          BufferFor(c, 0, ReservePurpose::kPrefetch).PtrAt(rec.res[0].offset);
      const std::vector<unsigned char> durable = rec.durable;
      const std::uint64_t size = rec.size;
      const bool device0 = stack_.is_device(0);
      std::uint64_t fetch_retries = 0;
      bool fell_back = false;
      TierIndex served = -1;
      lock.unlock();
      util::Status st;
      if (device0) {
        sim::PinnedArena staging(cluster_.topology(), gpu.node, size);
        st = GetDurable(c, v, staging.data(), size, durable, rng, abandon,
                        fetch_retries, fell_back, served);
        if (st.ok()) {
          st = sim::ThrottledMemcpy(cluster_.topology(), gpu, slot,
                                    staging.data(), size,
                                    sim::MemcpyKind::kH2D, flow);
        }
      } else {
        st = GetDurable(c, v, slot, size, durable, rng, abandon, fetch_retries,
                        fell_back, served);
      }
      lock.lock();
      c.metrics.fetch_retries += fetch_retries;
      ProbeAdd(c.probe.fetch_retries, fetch_retries);
      if (fell_back && st.ok()) ++c.metrics.fetch_fallbacks;
      rec.res[0].io_pending = false;
      if (!st.ok()) {
        CKPT_LOG(kError, "prefetch") << "store read failed: " << st.ToString();
        (void)BufferFor(c, 0, ReservePurpose::kPrefetch).Release(v);
        rec.res[0].Clear();
        rollback();
        continue;
      }
      rec.res[0].valid = true;
      rec.prefetch_claimed = false;
      Touch(c, rec);
      Advance(c, rec, CkptState::kReadComplete);
      AddPin(c, rec);
      ++c.metrics.prefetch_promotions;
      QueueSpanSince(c, trace::Kind::kPrefetch, "prefetch:promote", promo_begin,
                     0, v, rec.size);
      if (lineage_) {
        QueueFlow(c, trace::Kind::kPrefetch, "prefetch:promote", rec.flow_id,
                  trace::FlowPhase::kStep, 0, v, rec.size);
      }
      c.metrics.promotion_hist.Add(
          static_cast<double>(util::NowNs() - promo_begin) / 1e9);
      continue;  // Advance() above already woke the state channel
    }

    if (src_tier < 0) {
      // Multi-level promotion: store -> deepest cache tier -> fast tier,
      // warming the deep cache on the way up.
      const int w = ncache - 1;
      auto hoff = ReserveOn(c, lock, w, ReservePurpose::kPrefetch, v, rec.size,
                            /*abort=*/[&] { return rec.restore_waiting; });
      if (!hoff.ok()) {
        (void)BufferFor(c, 0, ReservePurpose::kPrefetch).Release(v);
        rec.res[0].Clear();
        rollback();
        if (c.shutdown) return;
        continue;
      }
      Residency& wres = rec.res[static_cast<std::size_t>(w)];
      wres.offset = *hoff;
      wres.io_pending = true;
      wres.part = ReservePurpose::kPrefetch;
      sim::BytePtr hdst =
          BufferFor(c, w, ReservePurpose::kPrefetch).PtrAt(*hoff);
      const std::vector<unsigned char> durable = rec.durable;
      const std::uint64_t size = rec.size;
      std::uint64_t fetch_retries = 0;
      bool fell_back = false;
      TierIndex served = -1;
      lock.unlock();
      const util::Status st = GetDurable(c, v, hdst, size, durable, rng,
                                         abandon, fetch_retries, fell_back,
                                         served);
      lock.lock();
      c.metrics.fetch_retries += fetch_retries;
      ProbeAdd(c.probe.fetch_retries, fetch_retries);
      if (fell_back && st.ok()) ++c.metrics.fetch_fallbacks;
      wres.io_pending = false;
      if (!st.ok()) {
        CKPT_LOG(kError, "prefetch") << "store read failed: " << st.ToString();
        (void)BufferFor(c, w, ReservePurpose::kPrefetch).Release(v);
        wres.Clear();
        NotifyReserve(c, w);  // deep-tier reservation released
        (void)BufferFor(c, 0, ReservePurpose::kPrefetch).Release(v);
        rec.res[0].Clear();
        rollback();  // Advance() inside wakes the fast tier's channel
        continue;
      }
      wres.valid = true;
      ++wres.read_refs;
      src_tier = w;
    }

    // Final hop: src_tier -> fast tier.
    Residency& sres = rec.res[static_cast<std::size_t>(src_tier)];
    sim::ConstBytePtr src = BufferFor(c, src_tier, sres.part).PtrAt(sres.offset);
    sim::BytePtr dst =
        BufferFor(c, 0, ReservePurpose::kPrefetch).PtrAt(rec.res[0].offset);
    const std::uint64_t size = rec.size;
    const sim::MemcpyKind kind = stack_.is_device(0) ? sim::MemcpyKind::kH2D
                                                     : sim::MemcpyKind::kH2H;
    lock.unlock();
    const util::Status st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst,
                                                 src, size, kind, flow);
    lock.lock();
    --sres.read_refs;
    NotifyReserve(c, src_tier);  // source copy may now be evictable
    rec.res[0].io_pending = false;
    if (!st.ok()) {
      CKPT_LOG(kError, "prefetch") << "promotion copy failed: " << st.ToString();
      (void)BufferFor(c, 0, ReservePurpose::kPrefetch).Release(v);
      rec.res[0].Clear();
      rollback();  // Advance() inside wakes the fast tier's channel
      continue;
    }
    rec.res[0].valid = true;
    rec.prefetch_claimed = false;
    Touch(c, rec);
    Advance(c, rec, CkptState::kReadComplete);  // wakes Restore's wait
    AddPin(c, rec);
    ++c.metrics.prefetch_promotions;
    QueueSpanSince(c, trace::Kind::kPrefetch, "prefetch:promote", promo_begin,
                   0, v, rec.size);
    if (lineage_) {
      QueueFlow(c, trace::Kind::kPrefetch, "prefetch:promote", rec.flow_id,
                trace::FlowPhase::kStep, 0, v, rec.size);
    }
    c.metrics.promotion_hist.Add(
        static_cast<double>(util::NowNs() - promo_begin) / 1e9);
  }
}

}  // namespace ckpt::core
