#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>

#include "simgpu/copy.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ckpt::core {

namespace {

using util::Stopwatch;

constexpr auto kReplanMin = std::chrono::microseconds(100);
constexpr auto kReplanMax = std::chrono::milliseconds(20);

storage::ObjectKey KeyOf(sim::Rank rank, Version v) {
  return storage::ObjectKey{rank, v};
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

Engine::Engine(sim::Cluster& cluster, std::shared_ptr<storage::ObjectStore> ssd,
               std::shared_ptr<storage::ObjectStore> pfs, EngineOptions options,
               int num_ranks)
    : cluster_(cluster), ssd_(std::move(ssd)), pfs_(std::move(pfs)),
      options_(options) {
  assert(ssd_ != nullptr && "Engine requires an SSD-tier store");
  assert(num_ranks > 0 && num_ranks <= cluster_.total_gpus());
  assert(!(options_.terminal_tier == Tier::kPfs && pfs_ == nullptr) &&
         "terminal_tier == kPfs requires a PFS store");

  ranks_.reserve(static_cast<std::size_t>(num_ranks));
  for (sim::Rank r = 0; r < num_ranks; ++r) {
    auto c = std::make_unique<RankCtx>();
    c->rank = r;
    const Stopwatch init_sw;

    // Pre-allocate the GPU cache out of the rank's HBM (§4.1.4). Paying the
    // allocation cost here, once, is a core design principle.
    auto gpu_mem = cluster_.device(r).Allocate(options_.gpu_cache_bytes);
    if (!gpu_mem.ok()) {
      CKPT_LOG(kError, "engine") << "rank " << r << ": GPU cache allocation failed: "
                                 << gpu_mem.status();
      std::abort();
    }
    c->gpu_base = *gpu_mem;

    // Host partition size: equal shares by default, or demand-weighted
    // (future-work extension: load-balance variable-sized checkpoints).
    std::uint64_t host_bytes = options_.host_cache_bytes;
    if (!options_.host_cache_weights.empty()) {
      double total_w = 0;
      for (double w : options_.host_cache_weights) total_w += w;
      const double w =
          r < static_cast<int>(options_.host_cache_weights.size()) && total_w > 0
              ? options_.host_cache_weights[static_cast<std::size_t>(r)] / total_w
              : 0.0;
      host_bytes = static_cast<std::uint64_t>(
          static_cast<double>(options_.host_cache_bytes) *
          static_cast<double>(num_ranks) * w);
      host_bytes = std::max<std::uint64_t>(host_bytes, 64 << 10);
    }
    c->host_cache_bytes = host_bytes;

    if (options_.split_flush_prefetch) {
      const auto pf_gpu = static_cast<std::uint64_t>(
          static_cast<double>(options_.gpu_cache_bytes) *
          options_.split_prefetch_fraction);
      c->gpu_write = std::make_unique<CacheBuffer>(
          "gpu-w/" + std::to_string(r), c->gpu_base,
          options_.gpu_cache_bytes - pf_gpu, MakePolicy(options_.eviction));
      c->gpu_prefetch = std::make_unique<CacheBuffer>(
          "gpu-p/" + std::to_string(r),
          c->gpu_base + (options_.gpu_cache_bytes - pf_gpu), pf_gpu,
          MakePolicy(options_.eviction));
    } else {
      c->gpu_write = std::make_unique<CacheBuffer>(
          "gpu/" + std::to_string(r), c->gpu_base, options_.gpu_cache_bytes,
          MakePolicy(options_.eviction));
    }

    // Pre-allocate and pin the host cache (slow: ~4 GB/s registration) —
    // inline by default, or on a background thread with async_pin_init
    // ([Maurya et al., HiPC'22]): the application starts checkpointing into
    // the GPU cache immediately while the host cache registers.
    const int node = cluster_.topology().node_of_rank(r);
    RankCtx* cp = c.get();
    auto build_host = [this, cp, node, r] {
      auto arena = std::make_unique<sim::PinnedArena>(cluster_.topology(), node,
                                                      cp->host_cache_bytes);
      std::unique_ptr<CacheBuffer> write_buf;
      std::unique_ptr<CacheBuffer> prefetch_buf;
      if (options_.split_flush_prefetch) {
        const auto pf_host = static_cast<std::uint64_t>(
            static_cast<double>(cp->host_cache_bytes) *
            options_.split_prefetch_fraction);
        write_buf = std::make_unique<CacheBuffer>(
            "host-w/" + std::to_string(r), arena->data(),
            cp->host_cache_bytes - pf_host, MakePolicy(options_.eviction));
        prefetch_buf = std::make_unique<CacheBuffer>(
            "host-p/" + std::to_string(r),
            arena->data() + (cp->host_cache_bytes - pf_host), pf_host,
            MakePolicy(options_.eviction));
      } else {
        write_buf = std::make_unique<CacheBuffer>(
            "host/" + std::to_string(r), arena->data(), cp->host_cache_bytes,
            MakePolicy(options_.eviction));
      }
      std::lock_guard lock(cp->mu);
      cp->host_arena = std::move(arena);
      cp->host_write = std::move(write_buf);
      cp->host_prefetch = std::move(prefetch_buf);
      cp->host_ready = true;
      cp->cv.notify_all();
    };
    if (options_.async_pin_init) {
      c->t_pin = std::jthread(build_host);
    } else {
      build_host();
    }

    c->metrics.init_s = init_sw.ElapsedSec();

    // Dedicated background threads (§4.3.1).
    RankCtx* ctx_ptr = c.get();
    c->t_d2h = std::jthread([this, ctx_ptr] { FlushD2HLoop(*ctx_ptr); });
    c->t_h2f = std::jthread([this, ctx_ptr] { FlushH2FLoop(*ctx_ptr); });
    c->t_pf = std::jthread([this, ctx_ptr] { PrefetchLoop(*ctx_ptr); });

    ranks_.push_back(std::move(c));
  }
}

Engine::~Engine() { Shutdown(); }

void Engine::Shutdown() {
  if (shutdown_.exchange(true)) return;  // idempotent, even across threads
  for (auto& c : ranks_) {
    {
      // Set the stop flag and signal under the same mutex every background
      // CV wait checks, so no T_D2H/T_H2F/T_PF thread can read the flag as
      // clear, then miss the final wakeup and hang the joins below.
      std::lock_guard lock(c->mu);
      c->shutdown = true;
      c->cv.notify_all();
    }
    c->d2h_q.Close();
    c->h2f_q.Close();
  }
  for (auto& c : ranks_) {
    if (c->t_pin.joinable()) c->t_pin.join();
    if (c->t_d2h.joinable()) c->t_d2h.join();
    if (c->t_h2f.joinable()) c->t_h2f.join();
    if (c->t_pf.joinable()) c->t_pf.join();
  }
  // Release the GPU cache arenas back to the devices.
  for (auto& c : ranks_) {
    if (c->gpu_base != nullptr) {
      (void)cluster_.device(c->rank).Free(c->gpu_base);
      c->gpu_base = nullptr;
    }
  }
}

Engine::RankCtx& Engine::ctx(sim::Rank rank) {
  return *ranks_.at(static_cast<std::size_t>(rank));
}
const Engine::RankCtx& Engine::ctx(sim::Rank rank) const {
  return *ranks_.at(static_cast<std::size_t>(rank));
}

// ---------------------------------------------------------------------------
// Life-cycle / eviction metadata helpers (ctx.mu held)
// ---------------------------------------------------------------------------

void Engine::Advance(RankCtx& ctx_, Record& rec, CkptState to) {
  const util::Status st = CheckTransition(rec.state, to);
  if (!st.ok()) {
    CKPT_LOG(kError, "engine") << "rank " << ctx_.rank << " ckpt " << rec.version
                               << ": " << st.ToString();
    std::abort();  // engine invariant violation, never a user error
  }
  rec.state = to;
  ctx_.cv.notify_all();
}

bool Engine::SafeBelow(const Record& rec, Tier tier) const {
  switch (tier) {
    case Tier::kGpu:
      return rec.host.valid || rec.on_ssd || rec.on_pfs;
    case Tier::kHost:
      return rec.on_ssd || rec.on_pfs;
    default:
      return true;  // durable stores are never evicted
  }
}

bool Engine::ExcludedOn(const Record& rec, Tier tier) const {
  const Residency& res = tier == Tier::kGpu ? rec.gpu : rec.host;
  if (res.busy()) return true;
  // Condition (4): a prefetched checkpoint is pinned on the fast tier until
  // consumed.
  if (tier == Tier::kGpu && StatePinsFastTier(rec.state)) return true;
  return false;
}

bool Engine::EvictableNow(const Record& rec, Tier tier) const {
  if (ExcludedOn(rec, tier)) return false;
  if (SafeBelow(rec, tier)) return true;
  // A consumed checkpoint without a lower-tier copy may only be dropped
  // when condition (5) applies (discardable); otherwise durability still
  // requires its pending flushes, so the copy must survive until then.
  return rec.state == CkptState::kConsumed && options_.discard_after_restore;
}

double Engine::EtaSeconds(const RankCtx& ctx_, const Record& rec, Tier tier) const {
  if (EvictableNow(rec, tier)) return 0.0;
  const auto& cfg = cluster_.config();
  // The fragment is waiting on the flush pipeline: estimate the backlog
  // drain time on the link it is queued behind (predict_evictable, §4.2).
  if (tier == Tier::kGpu) {
    const double bw = static_cast<double>(cfg.pcie_link_bw);
    if (bw <= 0) return 1e-6;
    return (static_cast<double>(ctx_.d2h_backlog_bytes) +
            static_cast<double>(rec.size)) / bw;
  }
  const double bw = static_cast<double>(cfg.nvme_drive_bw);
  if (bw <= 0) return 1e-6;
  return (static_cast<double>(ctx_.h2f_backlog_bytes) +
          static_cast<double>(rec.size)) / bw;
}

CacheBuffer& Engine::BufferFor(RankCtx& ctx_, Tier tier, ReservePurpose purpose) {
  const bool pf = options_.split_flush_prefetch && purpose == ReservePurpose::kPrefetch;
  if (tier == Tier::kGpu) return pf ? *ctx_.gpu_prefetch : *ctx_.gpu_write;
  return pf ? *ctx_.host_prefetch : *ctx_.host_write;
}

CacheBuffer::MetaFn Engine::MakeMetaFn(RankCtx& ctx_, Tier tier) {
  return [this, &ctx_, tier](EntryId id, FragmentView& v) {
    auto it = ctx_.records.find(id);
    if (it == ctx_.records.end()) {
      v.excluded = true;  // defensive: unknown entry is never evicted
      return;
    }
    const Record& rec = it->second;
    v.excluded = ExcludedOn(rec, tier);
    v.eta = v.excluded ? 0.0 : EtaSeconds(ctx_, rec, tier);
    if (rec.state == CkptState::kConsumed) {
      v.distance = kConsumedDistance;
    } else if (auto d = ctx_.hints.DistanceOf(rec.version)) {
      v.distance = static_cast<double>(*d);
    } else {
      v.distance = kUnhintedDistance;
    }
    v.lru_seq = rec.lru_seq;
    v.fifo_seq = rec.fifo_seq;
  };
}

util::Status Engine::EvictVictims(RankCtx& ctx_, Tier tier,
                                  const std::vector<EntryId>& victims) {
  for (EntryId id : victims) {
    auto it = ctx_.records.find(id);
    if (it == ctx_.records.end()) {
      return util::Internal("eviction victim has no record");
    }
    Record& rec = it->second;
    if (!EvictableNow(rec, tier)) {
      return util::Internal("eviction victim not evictable at commit time");
    }
    (tier == Tier::kGpu ? rec.gpu : rec.host).Clear();
  }
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> Engine::ReserveOn(
    RankCtx& ctx_, std::unique_lock<std::mutex>& lock, Tier tier,
    ReservePurpose purpose, Version v, std::uint64_t size,
    const std::function<bool()>& abort) {
  if (tier == Tier::kHost) {
    // async_pin_init: the host cache may still be registering.
    ctx_.cv.wait(lock, [&] { return ctx_.host_ready || ctx_.shutdown; });
    if (ctx_.shutdown) return util::ShutdownError("engine stopping");
  }
  CacheBuffer& buf = BufferFor(ctx_, tier, purpose);
  const CacheBuffer::MetaFn meta = MakeMetaFn(ctx_, tier);
  const Stopwatch wait_sw;
  double& wait_metric = purpose == ReservePurpose::kPrefetch
                            ? ctx_.metrics.reserve_wait_prefetch_s
                            : ctx_.metrics.reserve_wait_write_s;
  const auto charge_wait = [&] { wait_metric += wait_sw.ElapsedSec(); };
  for (;;) {
    ++ctx_.metrics.reserve_rounds;
    if (ctx_.shutdown) {
      charge_wait();
      return util::ShutdownError("engine stopping");
    }
    if (abort && abort()) {
      charge_wait();
      return util::Cancelled("reservation aborted");
    }
    auto plan = buf.Plan(size, meta);
    if (!plan.ok()) {
      if (plan.status().code() == util::ErrorCode::kCapacityExceeded) {
        charge_wait();
        return plan.status();  // caller falls back to a lower tier
      }
      // kUnavailable: everything is pinned right now; wait for a transition.
      ctx_.cv.wait_for(lock, kReplanMax);
      continue;
    }
    if (plan->wait_eta <= 0.0) {
      // All victims evictable now and no state can change while we hold the
      // lock: commit atomically.
      CKPT_RETURN_IF_ERROR(EvictVictims(ctx_, tier, plan->victims));
      auto offset = buf.Commit(*plan, v, size);
      charge_wait();
      if (!offset.ok()) return offset.status();
      ctx_.cv.notify_all();
      return *offset;
    }
    // Best window still needs time; sleep roughly that long, then re-plan
    // (a better window may have appeared — see cache_buffer.hpp).
    auto wait = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(plan->wait_eta));
    wait = std::clamp<std::chrono::steady_clock::duration>(wait, kReplanMin,
                                                           kReplanMax);
    ctx_.cv.wait_for(lock, wait);
  }
}

void Engine::FinishFlush(RankCtx& ctx_, Record& rec) {
  if (!rec.flush_done) {
    rec.flush_done = true;
    --ctx_.inflight_flushes;
  }
  if (rec.state == CkptState::kWriteInProgress) {
    Advance(ctx_, rec, CkptState::kWriteComplete);
    if (!rec.restore_waiting && !rec.prefetch_claimed) {
      Advance(ctx_, rec, CkptState::kFlushed);
    }
    // Otherwise the pending reader performs WRITE_COMPLETE -> READ_COMPLETE.
  }
  ctx_.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Failure model helpers (DESIGN.md §8)
// ---------------------------------------------------------------------------

Engine::TerminalPutResult Engine::PutTerminal(RankCtx& ctx_, Version v,
                                              sim::ConstBytePtr src,
                                              std::uint64_t size,
                                              std::mt19937_64& rng) {
  TerminalPutResult r;
  const storage::ObjectKey key = KeyOf(ctx_.rank, v);
  const auto put_tier = [&](storage::ObjectStore& store, const char* tier) {
    const util::RetryOutcome out = util::RetryWithBackoff(
        options_.flush_retry, rng, [&] { return store.Put(key, src, size); });
    r.retries += out.retries();
    if (!out.ok()) {
      ++r.failures;
      CKPT_LOG(kWarn, "flush")
          << "rank " << ctx_.rank << " ckpt " << v << ": " << tier
          << " put failed after " << out.attempts
          << " attempt(s): " << out.status.ToString();
    }
    return out.ok();
  };
  r.ssd_ok = put_tier(*ssd_, "SSD");
  // The PFS stage is attempted even when the SSD stage failed: a surviving
  // deeper copy still makes the checkpoint durable.
  if (options_.terminal_tier == Tier::kPfs && pfs_ != nullptr) {
    r.pfs_ok = put_tier(*pfs_, "PFS");
  }
  return r;
}

void Engine::ApplyFlushResult(RankCtx& ctx_, Record& rec,
                              const TerminalPutResult& r) {
  ctx_.metrics.flush_retries += r.retries;
  ctx_.metrics.flush_failures += r.failures;
  if (r.ssd_ok) rec.on_ssd = true;
  if (r.pfs_ok) rec.on_pfs = true;
  const bool reached =
      options_.terminal_tier == Tier::kPfs ? rec.on_pfs : rec.on_ssd;
  if (reached) {
    ++ctx_.metrics.flushes_completed;
    FinishFlush(ctx_, rec);
    return;
  }
  // The terminal tier is permanently unreachable for this checkpoint.
  const bool cached = rec.gpu.valid || rec.host.valid;
  // Strict mode may only drop the copies of a record no concurrent reader
  // or transfer is touching; anything in flight forces the degrade path.
  const bool strict_drop_safe =
      rec.state == CkptState::kWriteInProgress && !rec.restore_waiting &&
      !rec.prefetch_claimed && !rec.gpu.busy() && !rec.host.busy();
  if (rec.on_ssd || rec.on_pfs ||
      (cached && (options_.degraded_durability || !strict_drop_safe))) {
    // Graceful degradation: the checkpoint stays durable at the deepest
    // tier still holding a copy. SafeBelow() already refuses to evict a
    // cached copy with no durable backing, so the surviving copy is pinned
    // without any extra bookkeeping and Restore() serves it normally.
    rec.degraded = true;
    ++ctx_.metrics.tier_degradations;
    const Tier deepest = rec.on_pfs    ? Tier::kPfs
                         : rec.on_ssd  ? Tier::kSsd
                         : rec.host.valid ? Tier::kHost
                                          : Tier::kGpu;
    CKPT_LOG(kWarn, "flush")
        << "rank " << ctx_.rank << " ckpt " << rec.version
        << ": terminal tier unreachable; degraded durability at tier "
        << to_string(deepest);
    FinishFlush(ctx_, rec);
    return;
  }
  // No surviving copy (or strict mode): the checkpoint is lost.
  MarkFlushFailed(ctx_, rec);
}

void Engine::MarkFlushFailed(RankCtx& ctx_, Record& rec) {
  if (rec.gpu.valid) {
    (void)BufferFor(ctx_, Tier::kGpu, rec.gpu.part).Release(rec.version);
    rec.gpu.Clear();
  }
  if (rec.host.valid) {
    (void)BufferFor(ctx_, Tier::kHost, rec.host.part).Release(rec.version);
    rec.host.Clear();
  }
  if (!rec.flush_done) {
    rec.flush_done = true;
    --ctx_.inflight_flushes;
  }
  if (rec.state == CkptState::kWriteInProgress) {
    ++ctx_.flush_failed_count;
    ++ctx_.metrics.checkpoints_lost;
    CKPT_LOG(kError, "flush")
        << "rank " << ctx_.rank << " ckpt " << rec.version
        << ": flush permanently failed; checkpoint lost";
    Advance(ctx_, rec, CkptState::kFlushFailed);  // notifies waiters
  } else {
    // The data already reached the application (restore overtook the flush);
    // nothing durable remains but nothing is owed either.
    ctx_.cv.notify_all();
  }
}

util::Status Engine::GetDurable(RankCtx& ctx_, Version v, sim::BytePtr dst,
                                std::uint64_t size, bool on_ssd, bool on_pfs,
                                std::mt19937_64& rng,
                                const std::function<bool()>& abort,
                                std::uint64_t& retries, bool& fell_back) {
  const storage::ObjectKey key = KeyOf(ctx_.rank, v);
  util::Status last =
      util::NotFound("checkpoint " + key.ToString() + " has no durable copy");
  const auto get_tier = [&](storage::ObjectStore& store, const char* tier) {
    const util::RetryOutcome out = util::RetryWithBackoff(
        options_.fetch_retry, rng, [&] { return store.Get(key, dst, size); },
        abort);
    retries += out.retries();
    if (out.ok()) return true;
    last = out.status;
    CKPT_LOG(kWarn, "fetch")
        << "rank " << ctx_.rank << " ckpt " << v << ": " << tier
        << " read failed after " << out.attempts
        << " attempt(s): " << out.status.ToString();
    return false;
  };
  if (on_ssd && get_tier(*ssd_, "SSD")) return util::OkStatus();
  if (on_pfs && pfs_ != nullptr) {
    fell_back = on_ssd;  // serving from the deeper tier after an SSD failure
    if (get_tier(*pfs_, "PFS")) return util::OkStatus();
  }
  return last;
}

void Engine::ReleasePin(RankCtx& ctx_, Record& rec) {
  if (rec.pinned_counted) {
    ctx_.prefetched_pinned_bytes -= rec.size;
    --ctx_.prefetched_pinned_count;
    rec.pinned_counted = false;
  }
}

void Engine::AddPin(RankCtx& ctx_, Record& rec) {
  ctx_.prefetched_pinned_bytes += rec.size;
  ++ctx_.prefetched_pinned_count;
  rec.pinned_counted = true;
}

util::StatusOr<Engine::Record*> Engine::FindOrImport(RankCtx& ctx_, Version v) {
  auto it = ctx_.records.find(v);
  if (it != ctx_.records.end()) return &it->second;
  // Restart path: the object may exist on the durable stores from a
  // previous engine lifetime.
  const storage::ObjectKey key = KeyOf(ctx_.rank, v);
  std::uint64_t size = 0;
  bool on_ssd = false, on_pfs = false;
  if (auto s = ssd_->Size(key); s.ok()) {
    size = *s;
    on_ssd = true;
  } else if (pfs_ != nullptr) {
    if (auto p = pfs_->Size(key); p.ok()) {
      size = *p;
      on_pfs = true;
    }
  }
  if (!on_ssd && !on_pfs) {
    return util::NotFound("checkpoint " + key.ToString() + " unknown");
  }
  Record rec;
  rec.version = v;
  rec.size = size;
  rec.state = CkptState::kFlushed;
  rec.on_ssd = on_ssd;
  rec.on_pfs = on_pfs;
  rec.flush_done = true;
  rec.fifo_seq = ++ctx_.seq_counter;
  rec.lru_seq = rec.fifo_seq;
  auto [nit, inserted] = ctx_.records.emplace(v, rec);
  (void)inserted;
  return &nit->second;
}

std::uint64_t Engine::ComputePrefetchDistance(const RankCtx& ctx_) const {
  // Fig. 7 metric: successor checkpoints already promoted to the GPU cache
  // and pinned for consumption. The prefetcher promotes in hint order, so
  // the pinned set is exactly the run of successive hints served ahead of
  // the application (modulo deviation, where the count is an upper bound).
  return ctx_.prefetched_pinned_count;
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

util::Status Engine::Checkpoint(sim::Rank rank, Version v, sim::ConstBytePtr src,
                                std::uint64_t size) {
  if (src == nullptr || size == 0) {
    return util::InvalidArgument("Checkpoint: empty payload");
  }
  const Stopwatch sw;
  RankCtx& c = ctx(rank);
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(rank);
  std::unique_lock lock(c.mu);
  if (c.shutdown) return util::ShutdownError("engine stopping");
  if (c.records.count(v) != 0) {
    return util::AlreadyExists("checkpoint version " + std::to_string(v) +
                               " already written (checkpoints are immutable)");
  }
  Record& rec = c.records[v];
  rec.version = v;
  rec.size = size;
  rec.fifo_seq = ++c.seq_counter;
  rec.lru_seq = rec.fifo_seq;
  Advance(c, rec, CkptState::kWriteInProgress);
  ++c.inflight_flushes;

  auto cleanup_failure = [&](const util::Status& st) {
    --c.inflight_flushes;
    c.records.erase(v);
    c.cv.notify_all();
    return st;
  };

  // Fast path: into the GPU cache, then hand off to T_D2H (§4.3.2).
  auto goff = ReserveOn(c, lock, Tier::kGpu, ReservePurpose::kWrite, v, size,
                        /*abort=*/{});
  if (goff.ok()) {
    rec.gpu.offset = *goff;
    rec.gpu.io_pending = true;
    rec.gpu.part = ReservePurpose::kWrite;
    sim::BytePtr dst = BufferFor(c, Tier::kGpu, ReservePurpose::kWrite).PtrAt(*goff);
    lock.unlock();
    const util::Status st =
        sim::ThrottledMemcpy(cluster_.topology(), gpu, dst, src, size,
                             sim::MemcpyKind::kD2D);
    lock.lock();
    rec.gpu.io_pending = false;
    if (!st.ok()) {
      (void)BufferFor(c, Tier::kGpu, ReservePurpose::kWrite).Release(v);
      rec.gpu.Clear();
      return cleanup_failure(st);
    }
    rec.gpu.valid = true;
    c.d2h_backlog_bytes += size;
    c.cv.notify_all();
    lock.unlock();
    c.d2h_q.Push(v);
  } else if (goff.status().code() == util::ErrorCode::kCapacityExceeded) {
    // Oversize for the GPU cache: write through to the host cache.
    auto hoff = ReserveOn(c, lock, Tier::kHost, ReservePurpose::kWrite, v, size,
                          /*abort=*/{});
    if (hoff.ok()) {
      rec.host.offset = *hoff;
      rec.host.io_pending = true;
      rec.host.part = ReservePurpose::kWrite;
      sim::BytePtr dst =
          BufferFor(c, Tier::kHost, ReservePurpose::kWrite).PtrAt(*hoff);
      lock.unlock();
      const util::Status st =
          sim::ThrottledMemcpy(cluster_.topology(), gpu, dst, src, size,
                               sim::MemcpyKind::kD2H);
      lock.lock();
      rec.host.io_pending = false;
      if (!st.ok()) {
        (void)BufferFor(c, Tier::kHost, ReservePurpose::kWrite).Release(v);
        rec.host.Clear();
        return cleanup_failure(st);
      }
      rec.host.valid = true;
      c.h2f_backlog_bytes += size;
      c.cv.notify_all();
      lock.unlock();
      c.h2f_q.Push(v);
    } else if (hoff.status().code() == util::ErrorCode::kCapacityExceeded) {
      // Oversize for both caches: synchronous write-through to the store.
      lock.unlock();
      sim::PinnedArena staging(cluster_.topology(),
                               cluster_.topology().node_of_rank(rank), size);
      const util::Status st = sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                                   staging.data(), src, size,
                                                   sim::MemcpyKind::kD2H);
      if (!st.ok()) {
        lock.lock();
        return cleanup_failure(st);
      }
      std::mt19937_64 rng = util::MakeRng(
          options_.retry_seed ^ v, static_cast<std::uint64_t>(rank) * 4 + 3);
      const TerminalPutResult r = PutTerminal(c, v, staging.data(), size, rng);
      lock.lock();
      c.metrics.flush_retries += r.retries;
      c.metrics.flush_failures += r.failures;
      if (!r.ssd_ok && !r.pfs_ok) {
        // Nothing durable and nothing cached. The caller still owns the
        // source buffer, so surface the failure instead of losing data.
        return cleanup_failure(util::IoError(
            "write-through flush of checkpoint " + std::to_string(v) +
            " failed on every durable tier"));
      }
      rec.on_ssd = r.ssd_ok;
      rec.on_pfs = r.pfs_ok;
      if (options_.terminal_tier == Tier::kPfs ? !rec.on_pfs : !rec.on_ssd) {
        rec.degraded = true;
        ++c.metrics.tier_degradations;
      }
      FinishFlush(c, rec);
    } else {
      return cleanup_failure(hoff.status());
    }
  } else {
    return cleanup_failure(goff.status());
  }

  if (!lock.owns_lock()) lock.lock();
  c.metrics.ckpt_block_s.Add(sw.ElapsedSec());
  c.metrics.bytes_checkpointed += size;
  return util::OkStatus();
}

util::Status Engine::Restore(sim::Rank rank, Version v, sim::BytePtr dst,
                             std::uint64_t capacity) {
  if (dst == nullptr) return util::InvalidArgument("Restore: null buffer");
  const Stopwatch sw;
  RankCtx& c = ctx(rank);
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(rank);
  std::unique_lock lock(c.mu);
  if (c.shutdown) return util::ShutdownError("engine stopping");

  auto rec_or = FindOrImport(c, v);
  if (!rec_or.ok()) return rec_or.status();
  Record& rec = **rec_or;
  if (capacity < rec.size) {
    return util::InvalidArgument("Restore: buffer of " + std::to_string(capacity) +
                                 " bytes < checkpoint size " +
                                 std::to_string(rec.size));
  }

  if (rec.state == CkptState::kFlushFailed) {
    return util::IoError("checkpoint " + std::to_string(v) +
                         " was lost: its flush permanently failed on every "
                         "durable tier");
  }

  const std::uint64_t pdist = ComputePrefetchDistance(c);
  rec.restore_waiting = true;
  rec.lru_seq = ++c.seq_counter;
  c.hints.Drop(v);  // deviation-proofing: this read satisfies its hint
  c.cv.notify_all();

  // If the prefetcher owns an in-flight promotion of this version, wait for
  // it rather than issuing a duplicate transfer (§4.3.2). The prefetcher
  // aborts stuck promotions when it sees restore_waiting, so this wait is
  // bounded.
  bool waited_promotion = false;
  while (rec.prefetch_claimed && !rec.gpu.valid && !c.shutdown) {
    waited_promotion = true;
    c.cv.wait(lock);
  }
  if (c.shutdown) {
    rec.restore_waiting = false;
    return util::ShutdownError("engine stopping");
  }

  util::Status st;
  if (rec.gpu.valid) {
    ++rec.gpu.read_refs;
    sim::ConstBytePtr src =
        BufferFor(c, Tier::kGpu, rec.gpu.part).PtrAt(rec.gpu.offset);
    lock.unlock();
    st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst, src, rec.size,
                              sim::MemcpyKind::kD2D);
    lock.lock();
    --rec.gpu.read_refs;
    ++c.metrics.restores_from_gpu;
  } else if (rec.host.valid) {
    ++rec.host.read_refs;
    sim::ConstBytePtr src =
        BufferFor(c, Tier::kHost, rec.host.part).PtrAt(rec.host.offset);
    lock.unlock();
    st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst, src, rec.size,
                              sim::MemcpyKind::kH2D);
    lock.lock();
    --rec.host.read_refs;
    ++c.metrics.restores_from_host;
  } else if (rec.on_ssd || rec.on_pfs) {
    const bool from_ssd = rec.on_ssd;
    const bool from_pfs = rec.on_pfs;
    const std::uint64_t size = rec.size;
    std::uint64_t fetch_retries = 0;
    bool fell_back = false;
    std::mt19937_64 rng = util::MakeRng(
        options_.retry_seed ^ v, static_cast<std::uint64_t>(rank) * 4 + 3);
    lock.unlock();
    if (options_.gpudirect) {
      // GPUDirect read: store -> application device buffer over PCIe DMA.
      st = GetDurable(c, v, dst, size, from_ssd, from_pfs, rng, /*abort=*/{},
                      fetch_retries, fell_back);
      if (st.ok()) {
        sim::ChargePcieLinkOnly(cluster_.topology(), gpu, size,
                                sim::Topology::LinkDir::kH2D);
      }
    } else {
      // Direct read path: stream store -> transient pinned staging ->
      // device. The unplanned pinned allocation is a genuine penalty of
      // deviating from the hints / running without foreknowledge.
      sim::PinnedArena staging(cluster_.topology(),
                               cluster_.topology().node_of_rank(rank), size);
      st = GetDurable(c, v, staging.data(), size, from_ssd, from_pfs, rng,
                      /*abort=*/{}, fetch_retries, fell_back);
      if (st.ok()) {
        st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst, staging.data(),
                                  size, sim::MemcpyKind::kH2D);
      }
    }
    lock.lock();
    c.metrics.fetch_retries += fetch_retries;
    if (fell_back && st.ok()) ++c.metrics.fetch_fallbacks;
    ++c.metrics.restores_from_store;
  } else {
    rec.restore_waiting = false;
    return util::FailedPrecondition(
        "checkpoint " + std::to_string(v) +
        " was consumed and discarded; no copy remains on any tier");
  }

  if (!st.ok()) {
    rec.restore_waiting = false;
    c.cv.notify_all();
    return st;
  }

  // FSM: route to CONSUMED through READ_COMPLETE (Figure 1 paths).
  if (rec.state != CkptState::kReadComplete) {
    Advance(c, rec, CkptState::kReadComplete);
  }
  Advance(c, rec, CkptState::kConsumed);
  ReleasePin(c, rec);
  rec.restore_waiting = false;
  if (waited_promotion) ++c.metrics.restores_waited_promotion;

  ++c.restore_counter;
  c.metrics.restore_block_s.Add(sw.ElapsedSec());
  c.metrics.bytes_restored += rec.size;
  c.metrics.restore_series.push_back(RestorePoint{
      c.restore_counter - 1, v, sw.ElapsedSec(), rec.size, pdist});
  c.cv.notify_all();
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> Engine::RecoverSize(sim::Rank rank, Version v) {
  RankCtx& c = ctx(rank);
  std::unique_lock lock(c.mu);
  auto rec_or = FindOrImport(c, v);
  if (!rec_or.ok()) return rec_or.status();
  return (*rec_or)->size;
}

util::Status Engine::PrefetchEnqueue(sim::Rank rank, Version v) {
  RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  if (c.shutdown) return util::ShutdownError("engine stopping");
  c.hints.Enqueue(v);
  c.cv.notify_all();
  return util::OkStatus();
}

util::Status Engine::PrefetchStart(sim::Rank rank) {
  RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  if (c.shutdown) return util::ShutdownError("engine stopping");
  c.prefetch_started = true;
  c.cv.notify_all();
  return util::OkStatus();
}

util::Status Engine::WaitForFlushes(sim::Rank rank) {
  const Stopwatch sw;
  RankCtx& c = ctx(rank);
  std::unique_lock lock(c.mu);
  c.cv.wait(lock, [&] { return c.inflight_flushes == 0 || c.shutdown; });
  c.metrics.wait_for_flush_s += sw.ElapsedSec();
  if (c.shutdown && c.inflight_flushes != 0) {
    return util::ShutdownError("engine stopped with flushes pending");
  }
  if (c.flush_failed_count > 0) {
    return util::IoError(
        std::to_string(c.flush_failed_count) +
        " checkpoint(s) permanently failed to flush and were lost");
  }
  return util::OkStatus();
}

const RankMetrics& Engine::metrics(sim::Rank rank) const {
  return ctx(rank).metrics;
}

util::StatusOr<CkptState> Engine::StateOf(sim::Rank rank, Version v) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  auto it = c.records.find(v);
  if (it == c.records.end()) return util::NotFound("no record");
  return it->second.state;
}

util::StatusOr<Tier> Engine::DurableTierOf(sim::Rank rank, Version v) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  auto it = c.records.find(v);
  if (it == c.records.end()) return util::NotFound("no record");
  const Record& rec = it->second;
  if (rec.state == CkptState::kFlushFailed) {
    return util::IoError("checkpoint " + std::to_string(v) +
                         " was lost: flush permanently failed");
  }
  if (!rec.flush_done) {
    return util::FailedPrecondition("flush of checkpoint " +
                                    std::to_string(v) + " still in flight");
  }
  if (rec.on_pfs) return Tier::kPfs;
  if (rec.on_ssd) return Tier::kSsd;
  if (rec.host.valid) return Tier::kHost;
  if (rec.gpu.valid) return Tier::kGpu;
  return util::NotFound("checkpoint " + std::to_string(v) +
                        " holds no copy on any tier");
}

bool Engine::ResidentOn(sim::Rank rank, Version v, Tier tier) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  auto it = c.records.find(v);
  if (it == c.records.end()) return false;
  const Record& rec = it->second;
  switch (tier) {
    case Tier::kGpu: return rec.gpu.valid;
    case Tier::kHost: return rec.host.valid;
    case Tier::kSsd: return rec.on_ssd;
    case Tier::kPfs: return rec.on_pfs;
  }
  return false;
}

std::uint64_t Engine::GpuCacheUsed(sim::Rank rank) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  std::uint64_t used = c.gpu_write->used_bytes();
  if (c.gpu_prefetch) used += c.gpu_prefetch->used_bytes();
  return used;
}

std::uint64_t Engine::HostCacheUsed(sim::Rank rank) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  if (!c.host_ready) return 0;
  std::uint64_t used = c.host_write->used_bytes();
  if (c.host_prefetch) used += c.host_prefetch->used_bytes();
  return used;
}

std::uint64_t Engine::PrefetchDistance(sim::Rank rank) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  return ComputePrefetchDistance(c);
}

// ---------------------------------------------------------------------------
// Background workers
// ---------------------------------------------------------------------------

void Engine::FlushD2HLoop(RankCtx& c) {
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(c.rank);
  std::mt19937_64 rng =
      util::MakeRng(options_.retry_seed, static_cast<std::uint64_t>(c.rank) * 4);
  while (auto vo = c.d2h_q.Pop()) {
    const Version v = *vo;
    std::unique_lock lock(c.mu);
    auto it = c.records.find(v);
    if (it == c.records.end()) continue;  // defensive
    Record& rec = it->second;

    auto cancel = [&] {
      c.d2h_backlog_bytes -= rec.size;
      ++c.metrics.flushes_cancelled;
      if (!rec.flush_done) {
        rec.flush_done = true;
        --c.inflight_flushes;
      }
      c.cv.notify_all();
    };

    // Condition (5): consumed + discardable checkpoints skip pending flushes.
    if (options_.discard_after_restore && rec.state == CkptState::kConsumed) {
      cancel();
      continue;
    }
    if (!rec.gpu.valid) {
      // The GPU copy can only have been evicted if a lower-tier copy exists;
      // in that case this flush stage is moot.
      c.d2h_backlog_bytes -= rec.size;
      c.cv.notify_all();
      if (rec.host.valid) {
        c.h2f_backlog_bytes += rec.size;
        lock.unlock();
        c.h2f_q.Push(v);
      } else if (!rec.flush_done) {
        CKPT_LOG(kError, "flush") << "rank " << c.rank << " ckpt " << v
                                  << ": GPU copy lost before D2H flush";
        MarkFlushFailed(c, rec);
      }
      continue;
    }

    if (options_.gpudirect) {
      // GPUDirect Storage: DMA the checkpoint straight from the GPU cache
      // to the NVMe drive, bypassing the host cache and DDR entirely.
      ++rec.gpu.read_refs;
      sim::ConstBytePtr src =
          BufferFor(c, Tier::kGpu, rec.gpu.part).PtrAt(rec.gpu.offset);
      const std::uint64_t size = rec.size;
      lock.unlock();
      sim::ChargePcieLinkOnly(cluster_.topology(), gpu, size,
                              sim::Topology::LinkDir::kD2H);
      const TerminalPutResult r = PutTerminal(c, v, src, size, rng);
      lock.lock();
      --rec.gpu.read_refs;
      c.d2h_backlog_bytes -= size;
      ApplyFlushResult(c, rec, r);
      continue;
    }

    auto hoff = ReserveOn(c, lock, Tier::kHost, ReservePurpose::kWrite, v,
                          rec.size, /*abort=*/[&] {
                            return options_.discard_after_restore &&
                                   rec.state == CkptState::kConsumed;
                          });
    if (!hoff.ok() &&
        hoff.status().code() == util::ErrorCode::kCapacityExceeded) {
      // Checkpoint larger than the whole host cache: bypass it and write
      // the store directly from a transient pinned staging buffer.
      ++rec.gpu.read_refs;
      sim::ConstBytePtr src =
          BufferFor(c, Tier::kGpu, rec.gpu.part).PtrAt(rec.gpu.offset);
      const std::uint64_t size = rec.size;
      lock.unlock();
      sim::PinnedArena staging(cluster_.topology(), gpu.node, size);
      const util::Status st = sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                                   staging.data(), src, size,
                                                   sim::MemcpyKind::kD2H);
      TerminalPutResult r;
      if (st.ok()) {
        r = PutTerminal(c, v, staging.data(), size, rng);
      } else {
        CKPT_LOG(kError, "flush") << "direct store flush failed: " << st.ToString();
      }
      lock.lock();
      --rec.gpu.read_refs;
      c.d2h_backlog_bytes -= size;
      ApplyFlushResult(c, rec, r);
      continue;
    }
    if (!hoff.ok()) {
      cancel();
      continue;
    }
    rec.host.offset = *hoff;
    rec.host.io_pending = true;
    rec.host.part = ReservePurpose::kWrite;
    ++rec.gpu.read_refs;
    sim::ConstBytePtr src =
        BufferFor(c, Tier::kGpu, rec.gpu.part).PtrAt(rec.gpu.offset);
    sim::BytePtr dst =
        BufferFor(c, Tier::kHost, ReservePurpose::kWrite).PtrAt(*hoff);
    lock.unlock();

    const util::Status st = sim::ThrottledMemcpy(
        cluster_.topology(), gpu, dst, src, rec.size, sim::MemcpyKind::kD2H);

    lock.lock();
    --rec.gpu.read_refs;
    rec.host.io_pending = false;
    if (!st.ok()) {
      (void)BufferFor(c, Tier::kHost, ReservePurpose::kWrite).Release(v);
      rec.host.Clear();
      CKPT_LOG(kError, "flush") << "D2H flush failed: " << st.ToString();
      cancel();
      continue;
    }
    rec.host.valid = true;
    c.d2h_backlog_bytes -= rec.size;
    c.h2f_backlog_bytes += rec.size;
    c.cv.notify_all();
    lock.unlock();
    c.h2f_q.Push(v);
  }
}

void Engine::FlushH2FLoop(RankCtx& c) {
  std::mt19937_64 rng = util::MakeRng(
      options_.retry_seed, static_cast<std::uint64_t>(c.rank) * 4 + 1);
  while (auto vo = c.h2f_q.Pop()) {
    const Version v = *vo;
    std::unique_lock lock(c.mu);
    auto it = c.records.find(v);
    if (it == c.records.end()) continue;
    Record& rec = it->second;

    if (options_.discard_after_restore && rec.state == CkptState::kConsumed) {
      c.h2f_backlog_bytes -= rec.size;
      ++c.metrics.flushes_cancelled;
      if (!rec.flush_done) {
        rec.flush_done = true;
        --c.inflight_flushes;
      }
      c.cv.notify_all();
      continue;
    }
    if (!rec.host.valid) {
      c.h2f_backlog_bytes -= rec.size;
      if (rec.on_ssd || rec.on_pfs) {
        // Already durable from an earlier stage; the missing copy is moot.
        FinishFlush(c, rec);
      } else if (rec.gpu.valid) {
        CKPT_LOG(kError, "flush") << "rank " << c.rank << " ckpt " << v
                                  << ": host copy lost before H2F flush";
        rec.degraded = true;
        ++c.metrics.tier_degradations;
        FinishFlush(c, rec);
      } else {
        CKPT_LOG(kError, "flush") << "rank " << c.rank << " ckpt " << v
                                  << ": host copy lost before H2F flush";
        MarkFlushFailed(c, rec);
      }
      continue;
    }
    ++rec.host.read_refs;
    sim::ConstBytePtr src =
        BufferFor(c, Tier::kHost, rec.host.part).PtrAt(rec.host.offset);
    const std::uint64_t size = rec.size;
    lock.unlock();

    const TerminalPutResult r = PutTerminal(c, v, src, size, rng);

    lock.lock();
    --rec.host.read_refs;
    c.h2f_backlog_bytes -= size;
    ApplyFlushResult(c, rec, r);
  }
}

void Engine::PrefetchLoop(RankCtx& c) {
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(c.rank);
  std::mt19937_64 rng = util::MakeRng(
      options_.retry_seed, static_cast<std::uint64_t>(c.rank) * 4 + 2);
  const std::uint64_t pin_cap = static_cast<std::uint64_t>(
      static_cast<double>(options_.gpu_cache_bytes) *
      options_.prefetch_pin_fraction);
  std::unique_lock lock(c.mu);
  for (;;) {
    c.cv.wait(lock, [&] {
      return c.shutdown ||
             (c.prefetch_started && c.hints.Head().has_value());
    });
    if (c.shutdown) return;
    const Version v = *c.hints.Head();

    auto rec_or = FindOrImport(c, v);
    if (!rec_or.ok()) {
      // Hint for a checkpoint that has not been written yet (Listing 1
      // enqueues the whole restore order before the forward pass). Wait for
      // it to appear; Checkpoint() notifies on record creation.
      c.cv.wait_for(lock, std::chrono::milliseconds(10));
      continue;
    }
    Record& rec = **rec_or;

    if (rec.restore_waiting) {
      // The application is already blocked reading this version through the
      // direct path (it dropped its own pending hint); wait it out.
      c.cv.wait(lock, [&] { return c.shutdown || !rec.restore_waiting; });
      continue;
    }

    const bool already_pinned = rec.gpu.valid && StatePinsFastTier(rec.state);
    if (already_pinned) {
      c.hints.PopHead();
      ++c.metrics.prefetch_gpu_hits;
      c.cv.notify_all();
      continue;
    }

    if (!rec.gpu.valid && !rec.host.valid && !rec.on_ssd && !rec.on_pfs) {
      if (rec.state == CkptState::kConsumed ||
          rec.state == CkptState::kFlushFailed) {
        c.hints.PopHead();  // discarded (condition (5)) or lost: no fetch
      } else {
        // The write that produces this version is still copying into the
        // GPU cache; no residency is valid yet. Wait for it to land.
        c.cv.wait_for(lock, std::chrono::milliseconds(10));
      }
      continue;
    }

    // Thrash control: cap the bytes pinned by unconsumed prefetched
    // checkpoints so interleaved writers always keep cache headroom. This
    // governs BOTH pin paths — promotions and already-on-GPU hits — or an
    // interleaved producer could find every cache slot pinned.
    bool aborted = false;
    while (c.prefetched_pinned_bytes + rec.size > pin_cap && !c.shutdown) {
      if (rec.restore_waiting) {
        aborted = true;
        break;
      }
      c.cv.wait(lock);
    }
    if (c.shutdown) return;
    if (aborted || c.hints.Head() != std::optional<Version>(v)) {
      // The application deviated meanwhile; re-evaluate from the top. The
      // hint (if still present) is served by the direct path.
      ++c.metrics.prefetch_aborts;
      c.cv.notify_all();
      continue;
    }

    if (rec.gpu.valid) {
      // Already resident on the fast tier: pin it per the life cycle
      // (FLUSHED/WRITE_* -> READ_COMPLETE without any transfer).
      Advance(c, rec, CkptState::kReadComplete);
      AddPin(c, rec);
      c.hints.PopHead();
      ++c.metrics.prefetch_gpu_hits;
      c.cv.notify_all();
      continue;
    }

    // Claim the promotion.
    c.hints.PopHead();
    rec.prefetch_claimed = true;
    Advance(c, rec, CkptState::kReadInProgress);

    auto rollback = [&] {
      rec.prefetch_claimed = false;
      Advance(c, rec,
              rec.flush_done ? CkptState::kFlushed : CkptState::kWriteInProgress);
      ++c.metrics.prefetch_aborts;
      c.cv.notify_all();
    };

    bool host_src = rec.host.valid;
    if (host_src) ++rec.host.read_refs;

    auto goff = ReserveOn(c, lock, Tier::kGpu, ReservePurpose::kPrefetch, v,
                          rec.size,
                          /*abort=*/[&] { return rec.restore_waiting; });
    if (!goff.ok()) {
      if (host_src) --rec.host.read_refs;
      rollback();
      if (c.shutdown) return;
      continue;
    }
    rec.gpu.offset = *goff;
    rec.gpu.io_pending = true;
    rec.gpu.part = ReservePurpose::kPrefetch;

    if (!host_src && options_.gpudirect) {
      // GPUDirect promotion: DMA the checkpoint from the store straight
      // into the reserved GPU cache slot, bypassing the host cache.
      sim::BytePtr gdst =
          BufferFor(c, Tier::kGpu, ReservePurpose::kPrefetch).PtrAt(rec.gpu.offset);
      const bool from_ssd = rec.on_ssd;
      const bool from_pfs = rec.on_pfs;
      const std::uint64_t size = rec.size;
      std::uint64_t fetch_retries = 0;
      bool fell_back = false;
      // Give up between retry attempts once the application blocks on this
      // version: the rollback below hands it to the direct restore path.
      const auto abandon = [&c, &rec] {
        std::lock_guard l(c.mu);
        return c.shutdown || rec.restore_waiting;
      };
      lock.unlock();
      util::Status st = GetDurable(c, v, gdst, size, from_ssd, from_pfs, rng,
                                   abandon, fetch_retries, fell_back);
      if (st.ok()) {
        sim::ChargePcieLinkOnly(cluster_.topology(), gpu, size,
                                sim::Topology::LinkDir::kH2D);
      }
      lock.lock();
      c.metrics.fetch_retries += fetch_retries;
      if (fell_back && st.ok()) ++c.metrics.fetch_fallbacks;
      rec.gpu.io_pending = false;
      if (!st.ok()) {
        CKPT_LOG(kError, "prefetch") << "GPUDirect read failed: " << st.ToString();
        (void)BufferFor(c, Tier::kGpu, ReservePurpose::kPrefetch).Release(v);
        rec.gpu.Clear();
        rollback();
        continue;
      }
      rec.gpu.valid = true;
      rec.prefetch_claimed = false;
      Advance(c, rec, CkptState::kReadComplete);
      AddPin(c, rec);
      ++c.metrics.prefetch_promotions;
      c.cv.notify_all();
      continue;
    }

    if (!host_src) {
      // Multi-level promotion: store -> host cache -> GPU cache, warming the
      // host cache on the way up.
      auto hoff = ReserveOn(c, lock, Tier::kHost, ReservePurpose::kPrefetch, v,
                            rec.size,
                            /*abort=*/[&] { return rec.restore_waiting; });
      if (!hoff.ok()) {
        (void)BufferFor(c, Tier::kGpu, ReservePurpose::kPrefetch).Release(v);
        rec.gpu.Clear();
        rollback();
        if (c.shutdown) return;
        continue;
      }
      rec.host.offset = *hoff;
      rec.host.io_pending = true;
      rec.host.part = ReservePurpose::kPrefetch;
      sim::BytePtr hdst =
          BufferFor(c, Tier::kHost, ReservePurpose::kPrefetch).PtrAt(*hoff);
      const bool from_ssd = rec.on_ssd;
      const bool from_pfs = rec.on_pfs;
      const std::uint64_t size = rec.size;
      std::uint64_t fetch_retries = 0;
      bool fell_back = false;
      const auto abandon = [&c, &rec] {
        std::lock_guard l(c.mu);
        return c.shutdown || rec.restore_waiting;
      };
      lock.unlock();
      const util::Status st = GetDurable(c, v, hdst, size, from_ssd, from_pfs,
                                         rng, abandon, fetch_retries, fell_back);
      lock.lock();
      c.metrics.fetch_retries += fetch_retries;
      if (fell_back && st.ok()) ++c.metrics.fetch_fallbacks;
      rec.host.io_pending = false;
      if (!st.ok()) {
        CKPT_LOG(kError, "prefetch") << "store read failed: " << st.ToString();
        (void)BufferFor(c, Tier::kHost, ReservePurpose::kPrefetch).Release(v);
        rec.host.Clear();
        (void)BufferFor(c, Tier::kGpu, ReservePurpose::kPrefetch).Release(v);
        rec.gpu.Clear();
        rollback();
        continue;
      }
      rec.host.valid = true;
      ++rec.host.read_refs;
      host_src = true;
      c.cv.notify_all();
    }

    sim::ConstBytePtr src =
        BufferFor(c, Tier::kHost, rec.host.part).PtrAt(rec.host.offset);
    sim::BytePtr dst =
        BufferFor(c, Tier::kGpu, ReservePurpose::kPrefetch).PtrAt(rec.gpu.offset);
    const std::uint64_t size = rec.size;
    lock.unlock();
    const util::Status st = sim::ThrottledMemcpy(cluster_.topology(), gpu, dst,
                                                 src, size,
                                                 sim::MemcpyKind::kH2D);
    lock.lock();
    --rec.host.read_refs;
    rec.gpu.io_pending = false;
    if (!st.ok()) {
      CKPT_LOG(kError, "prefetch") << "H2D promotion failed: " << st.ToString();
      (void)BufferFor(c, Tier::kGpu, ReservePurpose::kPrefetch).Release(v);
      rec.gpu.Clear();
      rollback();
      continue;
    }
    rec.gpu.valid = true;
    rec.prefetch_claimed = false;
    Advance(c, rec, CkptState::kReadComplete);
    AddPin(c, rec);
    ++c.metrics.prefetch_promotions;
    c.cv.notify_all();
  }
}

}  // namespace ckpt::core
