// Trace/metrics export: turns the util::trace ring buffers into a Chrome
// trace-event JSON file (load in Perfetto / chrome://tracing to see
// flush/prefetch overlap as one track per engine thread per rank) and
// RankMetrics into a machine-readable metrics snapshot. Also hosts the
// validator the tests and the CI trace checker share.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.hpp"
#include "util/status.hpp"
#include "util/trace.hpp"

namespace ckpt::core {

class Engine;

/// Renders a trace snapshot as Chrome trace-event JSON:
/// `{"traceEvents":[...]}` with complete spans (ph "X"), thread-scoped
/// instants (ph "i") and process/thread name metadata. pid = rank
/// (rank-less events land on pid 0), tid = ring-buffer id; events are
/// sorted by begin timestamp within each track. Timestamps are µs since
/// the trace epoch.
[[nodiscard]] std::string ChromeTraceJson(const util::trace::TraceSnapshot& snap);
/// Convenience: Collect() + render.
[[nodiscard]] std::string ChromeTraceJson();
/// Renders the current trace to `path` (parent directory must exist).
util::Status WriteChromeTrace(const std::string& path);

/// Renders one rank's metrics as a JSON object: blocking-time series
/// summaries, all counters, per-tier vectors keyed by `tier_names`, the
/// per-stage latency histograms (non-empty buckets only) and the Fig. 7
/// restore series.
[[nodiscard]] std::string MetricsJson(const RankMetrics& m,
                                      const std::vector<std::string>& tier_names);

/// Full engine snapshot: `{"tiers":[...],"ranks":[...],"merged":{...}}`.
/// Uses Engine::MetricsSnapshot, so it is safe while the engine is running.
[[nodiscard]] std::string MetricsSnapshotJson(const Engine& engine);
util::Status WriteMetricsSnapshot(const Engine& engine, const std::string& path);

/// Structural validation result for an emitted Chrome trace.
struct TraceCheck {
  bool ok = false;
  std::string error;                 ///< first violation, empty when ok
  std::size_t events = 0;            ///< non-metadata events
  std::size_t spans = 0;             ///< complete (ph "X") events
  std::size_t instants = 0;          ///< ph "i" events
  std::size_t tracks = 0;            ///< distinct (pid, tid) pairs
  /// Complete-span count per category ("lifecycle", "flush", ...).
  std::map<std::string, std::size_t> spans_per_category;

  // Lineage flow events (ph "s"/"t"/"f" bound by id).
  std::size_t flow_starts = 0;       ///< ph "s" events
  std::size_t flow_steps = 0;        ///< ph "t" events
  std::size_t flow_finishes = 0;     ///< ph "f" events
  std::size_t flows = 0;             ///< distinct flow ids
  std::size_t flows_dangling = 0;    ///< ids started but never finished
  std::size_t flows_unbound = 0;     ///< "f" without a prior "s" (wraps only)
  std::size_t wraps = 0;             ///< per-thread trace:wrap drop markers
  /// Flow-event count per category ("lifecycle", "flush", ...).
  std::map<std::string, std::size_t> flows_per_category;

  /// Per-track rollup backing `trace_check --summary`.
  struct TrackStats {
    int pid = 0;
    std::uint64_t tid = 0;
    std::string name;           ///< thread_name metadata when present
    std::size_t events = 0;     ///< non-metadata events on the track
    std::size_t spans = 0;
    double total_dur_us = 0.0;  ///< sum of span durations on the track
    double max_dur_us = 0.0;    ///< longest single span on the track
  };
  /// One entry per track, ordered by (pid, tid).
  std::vector<TrackStats> track_stats;

  [[nodiscard]] std::size_t spans_in(std::string_view cat) const {
    auto it = spans_per_category.find(std::string(cat));
    return it == spans_per_category.end() ? 0 : it->second;
  }
  [[nodiscard]] std::size_t flows_in(std::string_view cat) const {
    auto it = flows_per_category.find(std::string(cat));
    return it == flows_per_category.end() ? 0 : it->second;
  }
};

/// Parses `json_text` and checks it is a well-formed, non-empty Chrome
/// trace whose per-track begin timestamps are monotonically non-decreasing
/// and whose spans carry non-negative durations.
[[nodiscard]] TraceCheck ValidateChromeTrace(std::string_view json_text);

}  // namespace ckpt::core
