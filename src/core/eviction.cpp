#include "core/eviction.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace ckpt::core {

namespace {

/// One O(N) pass of the paper's sliding-window scan, generic over the
/// per-fragment score pair. `primary` is minimized (p_score), `secondary`
/// maximized on ties (s_score). Excluded fragments are barriers: no window
/// may contain them. Both endpoints move monotonically; scores update
/// incrementally — the complexity argument of §4.2 holds for every policy.
template <typename PrimaryFn, typename SecondaryFn>
std::optional<EvictionWindow> SlideWindow(const std::vector<FragmentView>& frags,
                                          std::uint64_t size, PrimaryFn primary,
                                          SecondaryFn secondary) {
  if (size == 0 || frags.empty()) return std::nullopt;
  const std::size_t n = frags.size();

  std::optional<EvictionWindow> best;
  double best_p = 0.0;
  double best_s = 0.0;

  std::size_t j = 0;          // one past the window's last fragment
  double p = 0.0, s = 0.0;
  std::uint64_t window = 0;   // bytes currently covered

  for (std::size_t i = 0; i < n; ++i) {
    if (j < i) {  // window emptied by a barrier skip
      j = i;
      p = s = 0.0;
      window = 0;
    }
    // Grow until the run covers the requested size or hits a barrier.
    while (window < size && j < n && !frags[j].excluded) {
      p += primary(frags[j]);
      s += secondary(frags[j]);
      window += frags[j].size;
      ++j;
    }
    if (window < size) {
      if (j < n && frags[j].excluded) {
        // Barrier: restart the scan just past it.
        i = j;  // loop increment moves i to j+1
        j = j + 1;
        p = s = 0.0;
        window = 0;
        continue;
      }
      break;  // j == n: no further window can reach `size`
    }
    // Candidate window [i, j-1]. Strict improvement required: on a full tie
    // (equal p_score and s_score) the earlier window wins, so every policy —
    // including LRU/FIFO, whose s_score is constant — deterministically
    // selects the lowest-offset window and eviction reproduces across runs.
    if (!best || p < best_p ||
        (p == best_p && s > best_s)) {
      best = EvictionWindow{};
      best->first = i;
      best->last = j - 1;
      best->p_score = p;
      best->s_score = s;
      best_p = p;
      best_s = s;
    }
    // Slide: drop fragment i before the next iteration.
    p -= primary(frags[i]);
    s -= secondary(frags[i]);
    window -= frags[i].size;
  }

  if (!best) return std::nullopt;
  // Materialize geometry, victims and the wait estimate.
  best->offset = frags[best->first].offset;
  best->span = 0;
  best->wait_eta = 0.0;
  for (std::size_t k = best->first; k <= best->last; ++k) {
    best->span += frags[k].size;
    best->wait_eta = std::max(best->wait_eta, frags[k].eta);
    if (!frags[k].is_gap()) best->victims.push_back(frags[k].id);
  }
  return best;
}

}  // namespace

std::optional<EvictionWindow> ScorePolicy::Choose(
    const std::vector<FragmentView>& frags, std::uint64_t size) const {
  return SlideWindow(
      frags, size, [](const FragmentView& f) { return f.eta; },
      [](const FragmentView& f) {
        return f.is_gap() ? kGapDistance : f.distance;
      });
}

std::optional<EvictionWindow> LruPolicy::Choose(
    const std::vector<FragmentView>& frags, std::uint64_t size) const {
  return SlideWindow(
      frags, size,
      // Gaps cost nothing; entries cost their recency (higher = hotter).
      [](const FragmentView& f) {
        return f.is_gap() ? 0.0 : static_cast<double>(f.lru_seq);
      },
      [](const FragmentView&) { return 0.0; });
}

std::optional<EvictionWindow> FifoPolicy::Choose(
    const std::vector<FragmentView>& frags, std::uint64_t size) const {
  return SlideWindow(
      frags, size,
      [](const FragmentView& f) {
        return f.is_gap() ? 0.0 : static_cast<double>(f.fifo_seq);
      },
      [](const FragmentView&) { return 0.0; });
}

std::optional<EvictionWindow> GreedyGapPolicy::Choose(
    const std::vector<FragmentView>& frags, std::uint64_t size) const {
  return SlideWindow(
      frags, size,
      // Minimize non-gap bytes overwritten: pure fragmentation greed.
      [](const FragmentView& f) {
        return f.is_gap() ? 0.0 : static_cast<double>(f.size);
      },
      [](const FragmentView&) { return 0.0; });
}

std::unique_ptr<EvictionPolicy> MakePolicy(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kScore: return std::make_unique<ScorePolicy>();
    case EvictionKind::kLru: return std::make_unique<LruPolicy>();
    case EvictionKind::kFifo: return std::make_unique<FifoPolicy>();
    case EvictionKind::kGreedyGap: return std::make_unique<GreedyGapPolicy>();
  }
  return std::make_unique<ScorePolicy>();
}

std::string_view to_string(EvictionKind kind) noexcept {
  switch (kind) {
    case EvictionKind::kScore: return "score";
    case EvictionKind::kLru: return "lru";
    case EvictionKind::kFifo: return "fifo";
    case EvictionKind::kGreedyGap: return "greedy-gap";
  }
  return "?";
}

std::optional<EvictionKind> ParseEvictionKind(std::string_view name) noexcept {
  if (name == "score") return EvictionKind::kScore;
  if (name == "lru") return EvictionKind::kLru;
  if (name == "fifo") return EvictionKind::kFifo;
  if (name == "greedy-gap") return EvictionKind::kGreedyGap;
  return std::nullopt;
}

}  // namespace ckpt::core
