// Per-rank metric collection matching the paper's evaluation metrics
// (§5.3.5): application-observed blocking time of checkpoint and restore
// operations (throughput figures 5/6/8/9), per-iteration restore rate and
// prefetch distance (figure 7), plus cache/engine telemetry used by the
// ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace ckpt::core {

/// One restore operation's data point for the Fig. 7 series.
struct RestorePoint {
  std::uint64_t iteration = 0;       ///< restore index within the shot
  std::uint64_t version = 0;
  double blocking_s = 0.0;           ///< app-observed blocking time
  std::uint64_t bytes = 0;
  std::uint64_t prefetch_distance = 0;  ///< successor ckpts already on GPU
};

struct RankMetrics {
  // Blocking seconds per operation, as observed by the application thread.
  util::SampleSeries ckpt_block_s;
  util::SampleSeries restore_block_s;

  std::uint64_t bytes_checkpointed = 0;
  std::uint64_t bytes_restored = 0;

  // Restore service location (which tier satisfied the read). The legacy
  // scalars aggregate by tier role (device cache / host cache / durable
  // store); the vectors below index by TierStack position for config-driven
  // stacks.
  std::uint64_t restores_from_gpu = 0;
  std::uint64_t restores_from_host = 0;
  std::uint64_t restores_from_store = 0;   // durable-store direct path
  std::uint64_t restores_waited_promotion = 0;  // blocked on T_PF

  // Per-tier telemetry, indexed by TierStack position (resized by the
  // engine at construction; empty until then).
  std::vector<std::uint64_t> restores_from_tier;
  std::vector<std::uint64_t> flush_bytes_to_tier;  // flushed bytes landing on
                                                   // each tier
  // Eviction observability for mixed-policy stacks: victims dropped from
  // each cache tier and the bytes they covered. Durable positions stay 0 —
  // durable tiers never evict.
  std::vector<std::uint64_t> evictions_from_tier;
  std::vector<std::uint64_t> evicted_bytes_from_tier;

  // Prefetch engine telemetry.
  std::uint64_t prefetch_promotions = 0;   // upward copies completed
  std::uint64_t prefetch_gpu_hits = 0;     // hint target already on GPU
  std::uint64_t prefetch_aborts = 0;       // promotion aborted to direct path

  // Cache reservation telemetry: time blocked waiting for evictability.
  double reserve_wait_write_s = 0.0;     // checkpoint/flush reservations
  double reserve_wait_prefetch_s = 0.0;  // promotion reservations
  std::uint64_t reserve_rounds = 0;      // plan/re-plan iterations
  std::uint64_t reserve_plans_stale = 0; // off-lock plans invalidated at
                                         // commit time (re-planned at once)
  std::uint64_t reserve_snapshot_reuse = 0;  // replan rounds that reused the
                                             // previous fragment snapshot
  // Tenant admission telemetry (DESIGN.md §12).
  std::uint64_t reserve_quota_waits = 0;  // rounds blocked on tenant quota
  double reserve_wait_quota_s = 0.0;      // time parked on quota headroom

  // Flush pipeline telemetry.
  std::uint64_t flushes_completed = 0;
  std::uint64_t flushes_cancelled = 0;     // condition (5) skips
  double wait_for_flush_s = 0.0;           // WAIT-mode barrier time

  // Failure model / degraded mode telemetry (DESIGN.md §8).
  std::uint64_t flush_retries = 0;      // extra durable-store write attempts
  std::uint64_t flush_failures = 0;     // store writes that failed for good
  std::uint64_t tier_degradations = 0;  // ckpts durable at a shallower tier
                                        // than the configured terminal tier
  std::uint64_t fetch_retries = 0;      // extra durable-store read attempts
  std::uint64_t fetch_fallbacks = 0;    // reads served by the other durable
                                        // tier after the preferred one failed
  std::uint64_t checkpoints_lost = 0;   // records that entered FLUSH_FAILED

  // Telemetry watchdog verdicts (DESIGN.md §11): stalls the sampler's
  // health checks detected on this rank, total and by detector.
  std::uint64_t watchdog_stalls = 0;
  std::uint64_t watchdog_fsm_stalls = 0;      // FSM dwell bound exceeded
  std::uint64_t watchdog_flush_stalls = 0;    // flush queue, no byte progress
  std::uint64_t watchdog_reserve_stalls = 0;  // eviction-plan livelock

  // Per-stage latency distributions (seconds), log-bucketed. The scalar
  // accumulators above give totals; these show the shape — a bimodal flush
  // stage (fast overlap vs. backlog stall) is invisible in a sum.
  util::LogHistogram ckpt_block_hist;
  util::LogHistogram restore_block_hist;
  util::LogHistogram promotion_hist;      // prefetch promotion copy time
  util::LogHistogram reserve_round_hist;  // one eviction plan/commit round
  // Stage copy latency per cache tier, indexed by TierStack position
  // (sized by the engine alongside the per-tier counter vectors).
  std::vector<util::LogHistogram> flush_stage_hist;

  // Lineage accounting (DESIGN.md §14): per-object terminal outcomes and
  // the put -> durable-ack window. Only populated when lineage tracking is
  // on (EngineOptions::lineage / CKPT_LINEAGE), so legacy metrics JSON
  // stays byte-identical without it.
  std::uint64_t objects_admitted = 0;   // records created by Checkpoint()
  std::uint64_t objects_durable = 0;    // reached the configured terminal tier
  std::uint64_t objects_degraded = 0;   // durable short of the terminal tier
  std::uint64_t objects_lost = 0;       // entered FLUSH_FAILED with no copy
  std::uint64_t objects_erased = 0;     // record erased before any outcome
  // Durability lag (seconds, put -> per-tier durable ack), indexed by
  // TierStack position; cache positions stay empty. Never-durable objects
  // (lost/erased) charge nothing — the family measures ack latency, not
  // failure rate (those have their own counters above).
  std::vector<util::LogHistogram> durable_lag_hist;

  // Engine init cost (slow pinned host-cache allocation, §5.4.2).
  double init_s = 0.0;

  std::vector<RestorePoint> restore_series;

  /// Throughput = bytes / total blocking seconds (the figures' metric).
  [[nodiscard]] double CkptThroughput() const {
    const double t = ckpt_block_s.Sum();
    return t > 0 ? static_cast<double>(bytes_checkpointed) / t : 0.0;
  }
  [[nodiscard]] double RestoreThroughput() const {
    const double t = restore_block_s.Sum();
    return t > 0 ? static_cast<double>(bytes_restored) / t : 0.0;
  }

  void Merge(const RankMetrics& other);
};

}  // namespace ckpt::core
