#include "core/metrics.hpp"

namespace ckpt::core {

void RankMetrics::Merge(const RankMetrics& other) {
  for (double s : other.ckpt_block_s.samples()) ckpt_block_s.Add(s);
  for (double s : other.restore_block_s.samples()) restore_block_s.Add(s);
  bytes_checkpointed += other.bytes_checkpointed;
  bytes_restored += other.bytes_restored;
  restores_from_gpu += other.restores_from_gpu;
  restores_from_host += other.restores_from_host;
  restores_from_store += other.restores_from_store;
  restores_waited_promotion += other.restores_waited_promotion;
  const auto merge_per_tier = [](std::vector<std::uint64_t>& into,
                                 const std::vector<std::uint64_t>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
  };
  merge_per_tier(restores_from_tier, other.restores_from_tier);
  merge_per_tier(flush_bytes_to_tier, other.flush_bytes_to_tier);
  merge_per_tier(evictions_from_tier, other.evictions_from_tier);
  merge_per_tier(evicted_bytes_from_tier, other.evicted_bytes_from_tier);
  ckpt_block_hist.Merge(other.ckpt_block_hist);
  restore_block_hist.Merge(other.restore_block_hist);
  promotion_hist.Merge(other.promotion_hist);
  reserve_round_hist.Merge(other.reserve_round_hist);
  // Same size-reconciliation rule as the counter vectors: grow to the
  // larger stack before accumulating.
  if (flush_stage_hist.size() < other.flush_stage_hist.size()) {
    flush_stage_hist.resize(other.flush_stage_hist.size());
  }
  for (std::size_t i = 0; i < other.flush_stage_hist.size(); ++i) {
    flush_stage_hist[i].Merge(other.flush_stage_hist[i]);
  }
  if (durable_lag_hist.size() < other.durable_lag_hist.size()) {
    durable_lag_hist.resize(other.durable_lag_hist.size());
  }
  for (std::size_t i = 0; i < other.durable_lag_hist.size(); ++i) {
    durable_lag_hist[i].Merge(other.durable_lag_hist[i]);
  }
  objects_admitted += other.objects_admitted;
  objects_durable += other.objects_durable;
  objects_degraded += other.objects_degraded;
  objects_lost += other.objects_lost;
  objects_erased += other.objects_erased;
  reserve_wait_write_s += other.reserve_wait_write_s;
  reserve_wait_prefetch_s += other.reserve_wait_prefetch_s;
  reserve_rounds += other.reserve_rounds;
  reserve_plans_stale += other.reserve_plans_stale;
  reserve_snapshot_reuse += other.reserve_snapshot_reuse;
  reserve_quota_waits += other.reserve_quota_waits;
  reserve_wait_quota_s += other.reserve_wait_quota_s;
  prefetch_promotions += other.prefetch_promotions;
  prefetch_gpu_hits += other.prefetch_gpu_hits;
  prefetch_aborts += other.prefetch_aborts;
  flushes_completed += other.flushes_completed;
  flushes_cancelled += other.flushes_cancelled;
  wait_for_flush_s += other.wait_for_flush_s;
  flush_retries += other.flush_retries;
  flush_failures += other.flush_failures;
  tier_degradations += other.tier_degradations;
  fetch_retries += other.fetch_retries;
  fetch_fallbacks += other.fetch_fallbacks;
  checkpoints_lost += other.checkpoints_lost;
  watchdog_stalls += other.watchdog_stalls;
  watchdog_fsm_stalls += other.watchdog_fsm_stalls;
  watchdog_flush_stalls += other.watchdog_flush_stalls;
  watchdog_reserve_stalls += other.watchdog_reserve_stalls;
  init_s += other.init_s;
  restore_series.insert(restore_series.end(), other.restore_series.begin(),
                        other.restore_series.end());
}

}  // namespace ckpt::core
