// Shared vocabulary of the checkpoint runtime core.
#pragma once

#include <cstdint>
#include <string_view>

namespace ckpt::core {

/// Checkpoint version number within one process's history (the `ver`
/// argument of VELOC_Checkpoint / VELOC_Restart).
using Version = std::uint64_t;

/// Index of one tier within a core::TierStack, 0 = fastest. The engine's
/// source of truth is the stack, not this alias; it exists so legacy
/// call sites and the default 4-tier mapping below stay readable.
using TierIndex = int;

/// Number of tiers in the *default* stack (GPU HBM -> pinned host -> SSD ->
/// PFS, paper §2). Config-driven stacks may be shallower or deeper; code
/// that still assumes the default layout must size by this constant and
/// static_assert against it rather than bake in a literal 4.
inline constexpr std::size_t kTierCount = 4;

/// Tiers of the default stack in speed order. GPU and HOST are managed
/// cache buffers; SSD and PFS are durable object stores with enough
/// capacity for the whole history (paper §2 assumptions). For any other
/// stack this enum is only an index alias: `static_cast<Tier>(i)` names
/// position `i`, and TierStack::name() supplies the configured label.
enum class Tier : std::uint8_t {
  kGpu = 0,
  kHost = 1,
  kSsd = 2,
  kPfs = 3,
};

static_assert(static_cast<std::size_t>(Tier::kPfs) + 1 == kTierCount,
              "default Tier enum and kTierCount must stay in sync");

[[nodiscard]] constexpr std::string_view to_string(Tier t) noexcept {
  switch (t) {
    case Tier::kGpu: return "GPU";
    case Tier::kHost: return "HOST";
    case Tier::kSsd: return "SSD";
    case Tier::kPfs: return "PFS";
  }
  return "?";
}

/// Why a cache reservation is being made. Used by the split-cache ablation
/// (§4.1.2 argues for a *shared* space; the ablation quantifies the claim)
/// and by telemetry.
enum class ReservePurpose : std::uint8_t {
  kWrite,     ///< checkpoint request or downward flush staging
  kPrefetch,  ///< upward promotion driven by hints
};

}  // namespace ckpt::core
