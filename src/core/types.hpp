// Shared vocabulary of the checkpoint runtime core.
#pragma once

#include <cstdint>
#include <string_view>

namespace ckpt::core {

/// Checkpoint version number within one process's history (the `ver`
/// argument of VELOC_Checkpoint / VELOC_Restart).
using Version = std::uint64_t;

/// Storage tiers in speed order. GPU and HOST are managed cache buffers;
/// SSD and PFS are durable object stores with enough capacity for the whole
/// history (paper §2 assumptions).
enum class Tier : std::uint8_t {
  kGpu = 0,
  kHost = 1,
  kSsd = 2,
  kPfs = 3,
};

[[nodiscard]] constexpr std::string_view to_string(Tier t) noexcept {
  switch (t) {
    case Tier::kGpu: return "GPU";
    case Tier::kHost: return "HOST";
    case Tier::kSsd: return "SSD";
    case Tier::kPfs: return "PFS";
  }
  return "?";
}

/// Why a cache reservation is being made. Used by the split-cache ablation
/// (§4.1.2 argues for a *shared* space; the ablation quantifies the claim)
/// and by telemetry.
enum class ReservePurpose : std::uint8_t {
  kWrite,     ///< checkpoint request or downward flush staging
  kPrefetch,  ///< upward promotion driven by hints
};

}  // namespace ckpt::core
