#include "core/cache_buffer.hpp"

#include <utility>

namespace ckpt::core {

CacheBuffer::CacheBuffer(std::string name, sim::BytePtr base,
                         std::uint64_t capacity,
                         std::unique_ptr<EvictionPolicy> policy)
    : name_(std::move(name)),
      base_(base),
      table_(capacity),
      policy_(std::move(policy)) {}

util::StatusOr<EvictionWindow> CacheBuffer::Plan(std::uint64_t size,
                                                 const MetaFn& meta) const {
  if (size == 0) return util::InvalidArgument("Plan: zero size");
  if (size > table_.capacity()) {
    return util::CapacityExceeded(name_ + ": object of " + std::to_string(size) +
                                  " bytes exceeds capacity " +
                                  std::to_string(table_.capacity()));
  }
  std::vector<Fragment> snapshot = table_.Snapshot();
  std::vector<FragmentView> views;
  views.reserve(snapshot.size());
  for (const Fragment& f : snapshot) {
    FragmentView v;
    v.offset = f.offset;
    v.size = f.size;
    v.id = f.id;
    if (!f.is_gap()) meta(f.id, v);
    views.push_back(v);
  }
  auto window = policy_->Choose(views, size);
  if (!window) {
    return util::Unavailable(name_ + ": no feasible eviction window");
  }
  return *window;
}

util::StatusOr<std::uint64_t> CacheBuffer::Commit(const EvictionWindow& window,
                                                  EntryId id, std::uint64_t size) {
  for (EntryId victim : window.victims) {
    auto frag = table_.Find(victim);
    if (!frag) {
      return util::Internal(name_ + ": victim " + std::to_string(victim) +
                            " vanished between plan and commit");
    }
    evicted_bytes_ += frag->size;
    ++evictions_;
    CKPT_RETURN_IF_ERROR(table_.Erase(victim));
  }
  // Victim erasure may have coalesced the window with neighbouring gaps;
  // place the new entry at the containing gap's start to minimize new
  // fragmentation.
  auto gap = table_.GapContaining(window.offset);
  if (!gap || gap->size < size) {
    return util::Internal(name_ + ": committed window does not form a gap of " +
                          std::to_string(size) + " bytes");
  }
  CKPT_RETURN_IF_ERROR(table_.Overwrite(id, gap->offset, gap->size, size));
  return gap->offset;
}

util::Status CacheBuffer::Release(EntryId id) { return table_.Erase(id); }

}  // namespace ckpt::core
