#include "core/cache_buffer.hpp"

#include <utility>

namespace ckpt::core {

CacheBuffer::CacheBuffer(std::string name, sim::BytePtr base,
                         std::uint64_t capacity,
                         std::unique_ptr<EvictionPolicy> policy)
    : name_(std::move(name)),
      base_(base),
      capacity_(capacity),
      table_(capacity),
      policy_(std::move(policy)) {}

CacheBuffer::TableSnapshot CacheBuffer::Snapshot() const {
  std::lock_guard lock(mu_);
  return TableSnapshot{table_.Snapshot(), table_.version()};
}

std::uint64_t CacheBuffer::table_version() const {
  std::lock_guard lock(mu_);
  return table_.version();
}

std::vector<FragmentView> CacheBuffer::AnnotateViews(
    const std::vector<Fragment>& frags, const MetaFn& meta) {
  std::vector<FragmentView> views;
  views.reserve(frags.size());
  for (const Fragment& f : frags) {
    FragmentView v;
    v.offset = f.offset;
    v.size = f.size;
    v.id = f.id;
    if (!f.is_gap()) meta(f.id, v);
    views.push_back(v);
  }
  return views;
}

util::StatusOr<EvictionWindow> CacheBuffer::PlanViews(
    const std::vector<FragmentView>& views, std::uint64_t size) const {
  if (size == 0) return util::InvalidArgument("Plan: zero size");
  if (size > capacity_) {
    return util::CapacityExceeded(name_ + ": object of " + std::to_string(size) +
                                  " bytes exceeds capacity " +
                                  std::to_string(capacity_));
  }
  auto window = policy_->Choose(views, size);
  if (!window) {
    return util::Unavailable(name_ + ": no feasible eviction window");
  }
  return *window;
}

util::StatusOr<EvictionWindow> CacheBuffer::Plan(std::uint64_t size,
                                                 const MetaFn& meta) const {
  return PlanViews(AnnotateViews(Snapshot().frags, meta), size);
}

util::StatusOr<std::uint64_t> CacheBuffer::Commit(const EvictionWindow& window,
                                                  EntryId id, std::uint64_t size) {
  std::lock_guard lock(mu_);
  for (EntryId victim : window.victims) {
    auto frag = table_.Find(victim);
    if (!frag) {
      return util::Internal(name_ + ": victim " + std::to_string(victim) +
                            " vanished between plan and commit");
    }
    evicted_bytes_ += frag->size;
    ++evictions_;
    CKPT_RETURN_IF_ERROR(table_.Erase(victim));
  }
  // Victim erasure may have coalesced the window with neighbouring gaps;
  // place the new entry at the containing gap's start to minimize new
  // fragmentation.
  auto gap = table_.GapContaining(window.offset);
  if (!gap || gap->size < size) {
    return util::Internal(name_ + ": committed window does not form a gap of " +
                          std::to_string(size) + " bytes");
  }
  CKPT_RETURN_IF_ERROR(table_.Overwrite(id, gap->offset, gap->size, size));
  return gap->offset;
}

util::Status CacheBuffer::Release(EntryId id) {
  std::lock_guard lock(mu_);
  return table_.Erase(id);
}

std::optional<Fragment> CacheBuffer::Find(EntryId id) const {
  std::lock_guard lock(mu_);
  return table_.Find(id);
}

std::uint64_t CacheBuffer::used_bytes() const {
  std::lock_guard lock(mu_);
  return table_.used_bytes();
}

std::uint64_t CacheBuffer::gap_bytes() const {
  std::lock_guard lock(mu_);
  return table_.gap_bytes();
}

std::uint64_t CacheBuffer::largest_gap() const {
  std::lock_guard lock(mu_);
  return table_.largest_gap();
}

std::size_t CacheBuffer::entry_count() const {
  std::lock_guard lock(mu_);
  return table_.entry_count();
}

std::size_t CacheBuffer::fragment_count() const {
  std::lock_guard lock(mu_);
  return table_.fragment_count();
}

util::Status CacheBuffer::CheckTableInvariants() const {
  std::lock_guard lock(mu_);
  return table_.CheckInvariants();
}

std::uint64_t CacheBuffer::evictions() const {
  std::lock_guard lock(mu_);
  return evictions_;
}

std::uint64_t CacheBuffer::evicted_bytes() const {
  std::lock_guard lock(mu_);
  return evicted_bytes_;
}

}  // namespace ckpt::core
