// The multi-level checkpoint engine: the paper's primary contribution.
//
// One Engine serves every process (rank) of the simulated node(s). Per rank
// it owns:
//   * a pre-allocated GPU cache buffer carved out of the rank's device HBM
//     (default 10% of capacity, §5.3.4);
//   * a pre-allocated *pinned* host cache buffer (allocation cost paid once
//     at init, §4.1.4 — the slow pinned allocation is measured in init_s);
//   * three dedicated background threads (§4.3.1): T_D2H (GPU->host cache
//     flushes), T_H2F (host cache -> SSD [-> PFS] flushes) and T_PF
//     (multi-tier prefetch promotions driven by the restore-order queue);
//   * a restore-order hint queue and per-checkpoint life-cycle records.
//
// Blocking semantics follow §2 exactly: Checkpoint() blocks only until the
// data reaches the GPU cache; Restore() blocks until the data lands in the
// application buffer, served from the fastest tier holding it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/cache_buffer.hpp"
#include "core/eviction.hpp"
#include "core/lifecycle.hpp"
#include "core/metrics.hpp"
#include "core/restore_queue.hpp"
#include "core/runtime.hpp"
#include "core/types.hpp"
#include "simgpu/cluster.hpp"
#include "simgpu/pinned.hpp"
#include "storage/object_store.hpp"
#include "util/mpmc_queue.hpp"
#include "util/retry.hpp"

namespace ckpt::core {

struct EngineOptions {
  /// Per-rank cache sizes (paper defaults, scaled: 4 GB -> 4 MB GPU cache,
  /// 32 GB -> 32 MB pinned host cache).
  std::uint64_t gpu_cache_bytes = 4ull << 20;
  std::uint64_t host_cache_bytes = 32ull << 20;

  /// Deepest tier flushes must reach before a checkpoint counts as durable
  /// (kSsd by default; kPfs adds the parallel-file-system stage).
  Tier terminal_tier = Tier::kSsd;

  /// Condition (5): once consumed, a checkpoint's pending flushes may be
  /// skipped and its data may be dropped entirely.
  bool discard_after_restore = false;

  /// Eviction policy (kScore is the paper's; others are ablations).
  EvictionKind eviction = EvictionKind::kScore;

  /// Ablation of §4.1.2: split each cache into disjoint flush/prefetch
  /// partitions instead of one shared space.
  bool split_flush_prefetch = false;
  /// Fraction of the cache given to the prefetch partition in split mode.
  double split_prefetch_fraction = 0.5;

  /// Max fraction of the GPU cache that prefetched-but-unconsumed
  /// checkpoints may pin. Guarantees interleaved writers can always make
  /// progress (deadlock freedom, DESIGN.md §5).
  double prefetch_pin_fraction = 0.75;

  /// EXTENSION (paper §6 future work, "load balance variable-sized
  /// checkpoints"): per-rank weights for dividing the node's total host
  /// cache. Empty = equal shares. With weights, rank r receives
  /// host_cache_bytes * weights[r] / sum(weights) — e.g. proportional to
  /// each rank's expected trace volume, so heavy shots stop thrashing while
  /// light shots hold idle capacity.
  std::vector<double> host_cache_weights;

  /// EXTENSION ([Maurya et al., HiPC'22], cited as complementary in
  /// §4.1.4): hide the slow pinned host-cache registration by performing it
  /// on a background thread at init. Checkpoint() returns immediately from
  /// engine construction; the first D2H flush waits until its rank's host
  /// cache is registered. Restores and GPU-cache writes are unaffected.
  bool async_pin_init = false;

  /// EXTENSION (paper §6 future work): GPUDirect Storage. Flushes move
  /// GPU cache -> SSD and promotions move SSD -> GPU cache directly over
  /// PCIe DMA, bypassing the pinned host cache and its DDR bandwidth. The
  /// host cache still serves as a middle tier for data that happens to be
  /// there, but the flush/prefetch pipelines no longer stage through it.
  bool gpudirect = false;

  // --- Failure model (DESIGN.md §8) ---

  /// Retry policy for durable-store writes in the flush pipelines. A
  /// transient tier error (kUnavailable / kTimeout) is retried with
  /// jittered exponential backoff; exhaustion or a permanent error counts
  /// as a permanent tier failure for that checkpoint.
  util::RetryPolicy flush_retry{};

  /// Retry policy for durable-store reads (prefetch promotions and direct
  /// restores). Kept shorter than flush_retry so a blocked Restore() falls
  /// back to a deeper tier — or fails — quickly.
  util::RetryPolicy fetch_retry{.max_attempts = 3,
                                .initial_backoff = std::chrono::microseconds(100),
                                .max_backoff = std::chrono::microseconds(2000)};

  /// When the terminal tier permanently fails: true (default) keeps the
  /// checkpoint durable at the deepest tier still holding a copy (the copy
  /// is pinned against eviction; tier_degradations counts it). False is
  /// strict mode: the checkpoint is marked FLUSH_FAILED, its cache space is
  /// reclaimed, and Restore()/WaitForFlushes() surface the failure.
  bool degraded_durability = true;

  /// Master seed for retry backoff jitter (per-rank/thread streams are
  /// derived from it, so failure runs reproduce deterministically).
  std::uint64_t retry_seed = 0xC5EEDull;
};

class Engine final : public Runtime {
 public:
  /// `ssd` must be non-null; `pfs` may be null when terminal_tier == kSsd.
  Engine(sim::Cluster& cluster, std::shared_ptr<storage::ObjectStore> ssd,
         std::shared_ptr<storage::ObjectStore> pfs, EngineOptions options,
         int num_ranks);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Writes version `v` from the rank's device buffer. Blocks until the
  /// data is in the GPU cache; flushing continues asynchronously.
  util::Status Checkpoint(sim::Rank rank, Version v, sim::ConstBytePtr src,
                          std::uint64_t size) override;

  /// Reads version `v` back into the rank's device buffer (capacity bytes
  /// available). Serves from the fastest tier holding the data; blocks on
  /// an in-flight promotion when the prefetcher already claimed `v`.
  util::Status Restore(sim::Rank rank, Version v, sim::BytePtr dst,
                       std::uint64_t capacity) override;

  /// Size of version `v`; also resolves checkpoints found only on the
  /// durable stores (restart after an engine re-open).
  util::StatusOr<std::uint64_t> RecoverSize(sim::Rank rank, Version v) override;

  /// Appends a restore-order hint (VELOC_Prefetch_enqueue).
  util::Status PrefetchEnqueue(sim::Rank rank, Version v) override;

  /// Releases the prefetcher (VELOC_Prefetch_start). Hints enqueued before
  /// this call are not acted upon until it is made.
  util::Status PrefetchStart(sim::Rank rank) override;

  /// Blocks until every checkpoint of `rank` is durable on the terminal
  /// tier (or its flush was cancelled by condition (5)).
  util::Status WaitForFlushes(sim::Rank rank) override;

  /// Stops background threads; in-flight transfers complete first.
  /// Idempotent; also called by the destructor.
  void Shutdown() override;

  [[nodiscard]] const RankMetrics& metrics(sim::Rank rank) const override;
  [[nodiscard]] std::string_view name() const override { return "score"; }
  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }
  [[nodiscard]] int num_ranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }

  // --- Introspection for tests ---
  [[nodiscard]] util::StatusOr<CkptState> StateOf(sim::Rank rank, Version v) const;
  [[nodiscard]] bool ResidentOn(sim::Rank rank, Version v, Tier tier) const;
  /// Deepest tier still holding a copy of a flushed checkpoint. For a
  /// degraded checkpoint this is shallower than the configured terminal
  /// tier. Errors: kFailedPrecondition while the flush is in flight,
  /// kIoError once the checkpoint entered FLUSH_FAILED.
  [[nodiscard]] util::StatusOr<Tier> DurableTierOf(sim::Rank rank, Version v) const;
  [[nodiscard]] std::uint64_t GpuCacheUsed(sim::Rank rank) const;
  [[nodiscard]] std::uint64_t HostCacheUsed(sim::Rank rank) const;
  /// Consecutive hinted successors already promoted to the GPU cache
  /// (the Fig. 7 prefetch-distance metric).
  [[nodiscard]] std::uint64_t PrefetchDistance(sim::Rank rank) const;

 private:
  struct Residency {
    bool valid = false;       ///< data present and complete on this tier
    bool io_pending = false;  ///< space reserved, transfer writing into it
    int read_refs = 0;        ///< active transfers reading from this copy
    std::uint64_t offset = 0; ///< offset within the tier's cache buffer
    /// Which cache partition holds the entry (only meaningful in the
    /// split-cache ablation; the shared default uses kWrite for everything).
    ReservePurpose part = ReservePurpose::kWrite;

    [[nodiscard]] bool busy() const noexcept {
      return io_pending || read_refs > 0;
    }
    void Clear() noexcept { *this = Residency{}; }
  };

  struct Record {
    Version version = 0;
    std::uint64_t size = 0;
    CkptState state = CkptState::kInit;
    Residency gpu;
    Residency host;
    bool on_ssd = false;
    bool on_pfs = false;
    bool restore_waiting = false;   ///< a Restore() call is blocked on this
    bool prefetch_claimed = false;  ///< T_PF owns an in-flight promotion
    bool pinned_counted = false;    ///< counted in prefetched_pinned_bytes
    bool flush_done = false;        ///< reached terminal tier (or cancelled)
    bool degraded = false;          ///< durable at a shallower tier than
                                    ///< configured (terminal tier failed)
    std::uint64_t lru_seq = 0;
    std::uint64_t fifo_seq = 0;
  };

  struct RankCtx {
    sim::Rank rank = 0;
    mutable std::mutex mu;
    std::condition_variable cv;

    std::unordered_map<Version, Record> records;
    RestoreQueue hints;
    bool prefetch_started = false;
    bool shutdown = false;

    std::uint64_t host_cache_bytes = 0;  ///< this rank's host partition
    bool host_ready = false;             ///< pinned registration finished
    std::jthread t_pin;                  ///< async_pin_init worker

    sim::BytePtr gpu_base = nullptr;  ///< owned by the rank's Device
    std::unique_ptr<CacheBuffer> gpu_write;    // shared cache, or write half
    std::unique_ptr<CacheBuffer> gpu_prefetch; // split mode only
    std::unique_ptr<sim::PinnedArena> host_arena;
    std::unique_ptr<CacheBuffer> host_write;
    std::unique_ptr<CacheBuffer> host_prefetch;  // split mode only

    util::MpmcQueue<Version> d2h_q;
    util::MpmcQueue<Version> h2f_q;
    std::uint64_t d2h_backlog_bytes = 0;
    std::uint64_t h2f_backlog_bytes = 0;
    std::uint64_t inflight_flushes = 0;       ///< records not yet flush_done
    std::uint64_t prefetched_pinned_bytes = 0;
    std::uint64_t prefetched_pinned_count = 0;
    std::uint64_t seq_counter = 0;
    std::uint64_t restore_counter = 0;
    std::uint64_t flush_failed_count = 0;  ///< records in FLUSH_FAILED

    RankMetrics metrics;

    std::jthread t_d2h;
    std::jthread t_h2f;
    std::jthread t_pf;
  };

  // Background workers (one of each per rank).
  void FlushD2HLoop(RankCtx& ctx);
  void FlushH2FLoop(RankCtx& ctx);
  void PrefetchLoop(RankCtx& ctx);

  // Helpers; all require ctx.mu held unless noted.
  [[nodiscard]] CacheBuffer& BufferFor(RankCtx& ctx, Tier tier,
                                       ReservePurpose purpose);
  [[nodiscard]] CacheBuffer::MetaFn MakeMetaFn(RankCtx& ctx, Tier tier);
  [[nodiscard]] bool SafeBelow(const Record& rec, Tier tier) const;
  [[nodiscard]] bool EvictableNow(const Record& rec, Tier tier) const;
  [[nodiscard]] bool ExcludedOn(const Record& rec, Tier tier) const;
  [[nodiscard]] double EtaSeconds(const RankCtx& ctx, const Record& rec,
                                  Tier tier) const;
  /// Drops the victims' residencies on `tier`. Requires EvictableNow.
  util::Status EvictVictims(RankCtx& ctx, Tier tier,
                            const std::vector<EntryId>& victims);
  /// Blocking reservation loop: plan / commit-or-wait / re-plan.
  /// `abort` (optional) is checked after each failed round; when it returns
  /// true the reservation gives up with kCancelled.
  util::StatusOr<std::uint64_t> ReserveOn(RankCtx& ctx,
                                          std::unique_lock<std::mutex>& lock,
                                          Tier tier, ReservePurpose purpose,
                                          Version v, std::uint64_t size,
                                          const std::function<bool()>& abort);
  /// Marks a flush stage reaching the terminal tier; advances the FSM.
  void FinishFlush(RankCtx& ctx, Record& rec);

  // --- Failure model helpers (DESIGN.md §8) ---
  /// Result of writing one checkpoint to the durable store(s) with retries.
  struct TerminalPutResult {
    bool ssd_ok = false;
    bool pfs_ok = false;          ///< only attempted when terminal == kPfs
    std::uint64_t retries = 0;    ///< extra attempts across both tiers
    std::uint64_t failures = 0;   ///< tiers that permanently failed
  };
  /// Writes (rank, v) to the SSD store — and the PFS store when the
  /// terminal tier is kPfs — retrying transient errors per flush_retry.
  /// Called WITHOUT ctx.mu held; aborts early on engine shutdown.
  TerminalPutResult PutTerminal(RankCtx& ctx, Version v, sim::ConstBytePtr src,
                                std::uint64_t size, std::mt19937_64& rng);
  /// Applies a TerminalPutResult to the record (ctx.mu held): marks durable
  /// tiers and finishes the flush; on a permanent terminal-tier failure
  /// either degrades durability to the deepest surviving copy or — in
  /// strict mode / with no copy left — marks the record FLUSH_FAILED.
  void ApplyFlushResult(RankCtx& ctx, Record& rec, const TerminalPutResult& r);
  /// Transitions the record to FLUSH_FAILED, reclaiming its cache space and
  /// unblocking WaitForFlushes / pending restores (ctx.mu held).
  void MarkFlushFailed(RankCtx& ctx, Record& rec);
  /// Reads (rank, v) from the durable stores with bounded retries,
  /// preferring the SSD copy and falling back to the PFS copy. Called
  /// WITHOUT ctx.mu held. Accumulates retry/fallback counts into the
  /// out-params (caller charges metrics under the lock).
  util::Status GetDurable(RankCtx& ctx, Version v, sim::BytePtr dst,
                          std::uint64_t size, bool on_ssd, bool on_pfs,
                          std::mt19937_64& rng,
                          const std::function<bool()>& abort,
                          std::uint64_t& retries, bool& fell_back);
  /// FSM transition with legality check (aborts the process on violation —
  /// an illegal edge is an engine bug, never a user error).
  void Advance(RankCtx& ctx, Record& rec, CkptState to);
  /// Unpins a consumed prefetched record from the pin accounting.
  void ReleasePin(RankCtx& ctx, Record& rec);
  /// Registers a prefetched record in the pin accounting (cap + Fig. 7).
  void AddPin(RankCtx& ctx, Record& rec);
  /// Imports a record found only on the durable stores.
  util::StatusOr<Record*> FindOrImport(RankCtx& ctx, Version v);
  [[nodiscard]] std::uint64_t ComputePrefetchDistance(const RankCtx& ctx) const;

  [[nodiscard]] RankCtx& ctx(sim::Rank rank);
  [[nodiscard]] const RankCtx& ctx(sim::Rank rank) const;

  sim::Cluster& cluster_;
  std::shared_ptr<storage::ObjectStore> ssd_;
  std::shared_ptr<storage::ObjectStore> pfs_;
  EngineOptions options_;
  std::vector<std::unique_ptr<RankCtx>> ranks_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace ckpt::core
