// The multi-level checkpoint engine: the paper's primary contribution.
//
// One Engine serves every process (rank) of the simulated node(s). The tier
// layout is a core::TierStack — by default GPU HBM -> pinned host -> SSD
// [-> PFS], but any stack with >= 1 cache tier and >= 1 durable tier works
// (host-only 3-tier, archive-backed 5-tier, ...). Per rank the engine owns:
//   * one pre-allocated buffer per cache tier, carved out of the rank's
//     device HBM for the (optional) device tier and pinned host memory for
//     the rest (allocation cost paid once at init, §4.1.4);
//   * one dedicated flush worker per cache tier (§4.3.1 generalized): the
//     worker of tier i drains copies from tier i to tier i+1, the last
//     cache tier's worker writes the durable stores — the default stack's
//     T_D2H and T_H2F are the i=0 and i=1 instances — plus T_PF
//     (multi-tier prefetch promotions driven by the restore-order queue);
//   * a restore-order hint queue and per-checkpoint life-cycle records.
//
// Blocking semantics follow §2 exactly: Checkpoint() blocks only until the
// data reaches the fastest cache tier with room; Restore() blocks until the
// data lands in the application buffer, served from the fastest tier
// holding it.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/cache_buffer.hpp"
#include "core/eviction.hpp"
#include "core/lifecycle.hpp"
#include "core/metrics.hpp"
#include "core/restore_queue.hpp"
#include "core/runtime.hpp"
#include "core/tenant.hpp"
#include "core/tier_stack.hpp"
#include "core/types.hpp"
#include "simgpu/cluster.hpp"
#include "simgpu/copy.hpp"
#include "simgpu/pinned.hpp"
#include "storage/object_store.hpp"
#include "util/checked_mutex.hpp"
#include "util/clock.hpp"
#include "util/mpmc_queue.hpp"
#include "util/retry.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace ckpt::core {

struct EngineOptions {
  /// Per-rank cache sizes (paper defaults, scaled: 4 GB -> 4 MB GPU cache,
  /// 32 GB -> 32 MB pinned host cache). Only read by the legacy
  /// (ssd, pfs) constructor, which builds the default stack from them; the
  /// TierStack constructor takes capacities from the stack itself.
  std::uint64_t gpu_cache_bytes = 4ull << 20;
  std::uint64_t host_cache_bytes = 32ull << 20;

  /// Deepest tier flushes must reach before a checkpoint counts as durable
  /// (kSsd by default; kPfs adds the parallel-file-system stage). Legacy
  /// constructor only; the TierStack carries its own terminal tier.
  Tier terminal_tier = Tier::kSsd;

  /// Condition (5): once consumed, a checkpoint's pending flushes may be
  /// skipped and its data may be dropped entirely.
  bool discard_after_restore = false;

  /// Eviction policy (kScore is the paper's; others are ablations).
  EvictionKind eviction = EvictionKind::kScore;

  /// Ablation of §4.1.2: split each cache into disjoint flush/prefetch
  /// partitions instead of one shared space.
  bool split_flush_prefetch = false;
  /// Fraction of the cache given to the prefetch partition in split mode.
  double split_prefetch_fraction = 0.5;

  /// Max fraction of the fastest cache tier that prefetched-but-unconsumed
  /// checkpoints may pin. Guarantees interleaved writers can always make
  /// progress (deadlock freedom, DESIGN.md §5).
  double prefetch_pin_fraction = 0.75;

  /// EXTENSION (paper §6 future work, "load balance variable-sized
  /// checkpoints"): per-rank weights for dividing the node's total
  /// pinned-host cache. Empty = equal shares. With weights, rank r receives
  /// capacity * weights[r] / sum(weights) on every pinned-host cache tier —
  /// e.g. proportional to each rank's expected trace volume, so heavy shots
  /// stop thrashing while light shots hold idle capacity.
  std::vector<double> host_cache_weights;

  /// EXTENSION ([Maurya et al., HiPC'22], cited as complementary in
  /// §4.1.4): hide the slow pinned host-cache registration by performing it
  /// on a background thread at init. Checkpoint() returns immediately from
  /// engine construction; the first flush into a pinned tier waits until
  /// that tier is registered. Restores and device-cache writes are
  /// unaffected.
  bool async_pin_init = false;

  /// EXTENSION (paper §6 future work): GPUDirect Storage. Flushes move
  /// device cache -> durable store and promotions move store -> device
  /// cache directly over PCIe DMA, bypassing the pinned host tiers and
  /// their DDR bandwidth. The host tiers still serve data that happens to
  /// be there, but the flush/prefetch pipelines no longer stage through
  /// them. Only meaningful when the stack has a device tier.
  bool gpudirect = false;

  // --- Failure model (DESIGN.md §8) ---

  /// Retry policy for durable-store writes in the flush pipelines. A
  /// transient tier error (kUnavailable / kTimeout) is retried with
  /// jittered exponential backoff; exhaustion or a permanent error counts
  /// as a permanent tier failure for that checkpoint.
  util::RetryPolicy flush_retry{};

  /// Retry policy for durable-store reads (prefetch promotions and direct
  /// restores). Kept shorter than flush_retry so a blocked Restore() falls
  /// back to a deeper tier — or fails — quickly.
  util::RetryPolicy fetch_retry{.max_attempts = 3,
                                .initial_backoff = std::chrono::microseconds(100),
                                .max_backoff = std::chrono::microseconds(2000)};

  /// When the terminal tier permanently fails: true (default) keeps the
  /// checkpoint durable at the deepest tier still holding a copy (the copy
  /// is pinned against eviction; tier_degradations counts it). False is
  /// strict mode: the checkpoint is marked FLUSH_FAILED, its cache space is
  /// reclaimed, and Restore()/WaitForFlushes() surface the failure.
  bool degraded_durability = true;

  /// Master seed for retry backoff jitter (per-rank/thread streams are
  /// derived from it, so failure runs reproduce deterministically).
  std::uint64_t retry_seed = 0xC5EEDull;

  // --- Multi-tenant service mode (DESIGN.md §12) ---

  /// Tenants to open at Init, in declaration order; ranks are split into
  /// contiguous blocks (even split, remainder to earlier tenants). Empty =
  /// legacy single-tenant mode: one implicit "default" tenant with no quota
  /// spans every rank and the hot path is byte-identical to a pre-tenant
  /// engine.
  std::vector<TenantSpec> tenants;

  /// Per-object lineage tracking (DESIGN.md §14): derives a stable flow id
  /// per checkpoint, stamps Chrome-trace flow events on every causal hop,
  /// keeps the per-rank lineage journal, and populates the objects_* /
  /// durability-lag metrics. Also enabled by CKPT_LINEAGE=1 in the
  /// environment. Off by default so legacy trace, metrics-JSON and
  /// OpenMetrics output stays byte-identical.
  bool lineage = false;

  /// Test hook: when set, a commit-ready eviction plan in round `round`
  /// (0-based per ReserveOn call) is treated as stale even though the table
  /// version matched — exercises the stale-replan path (and the snapshot
  /// reuse that follows it) deterministically.
  std::function<bool(int round)> test_force_stale_plan;
};

class Engine final : public Runtime {
 public:
  /// Generic constructor: the stack is the engine's source of truth for
  /// tier count, capacities, stores and the terminal tier.
  Engine(sim::Cluster& cluster, TierStack stack, EngineOptions options,
         int num_ranks);

  /// Legacy constructor: builds the default GPU->host->SSD[->PFS] stack
  /// from `options`. `ssd` must be non-null; `pfs` may be null when
  /// terminal_tier == kSsd.
  Engine(sim::Cluster& cluster, std::shared_ptr<storage::ObjectStore> ssd,
         std::shared_ptr<storage::ObjectStore> pfs, EngineOptions options,
         int num_ranks);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Writes version `v` from the rank's device buffer. Blocks until the
  /// data is in the fastest cache tier with room; flushing continues
  /// asynchronously.
  util::Status Checkpoint(sim::Rank rank, Version v, sim::ConstBytePtr src,
                          std::uint64_t size) override;

  /// Reads version `v` back into the rank's device buffer (capacity bytes
  /// available). Serves from the fastest tier holding the data; blocks on
  /// an in-flight promotion when the prefetcher already claimed `v`.
  util::Status Restore(sim::Rank rank, Version v, sim::BytePtr dst,
                       std::uint64_t capacity) override;

  /// Size of version `v`; also resolves checkpoints found only on the
  /// durable stores (restart after an engine re-open).
  util::StatusOr<std::uint64_t> RecoverSize(sim::Rank rank, Version v) override;

  /// Appends a restore-order hint (VELOC_Prefetch_enqueue).
  util::Status PrefetchEnqueue(sim::Rank rank, Version v) override;

  /// Releases the prefetcher (VELOC_Prefetch_start). Hints enqueued before
  /// this call are not acted upon until it is made.
  util::Status PrefetchStart(sim::Rank rank) override;

  /// Blocks until every checkpoint of `rank` is durable on the terminal
  /// tier (or its flush was cancelled by condition (5)).
  util::Status WaitForFlushes(sim::Rank rank) override;

  /// Stops background threads; in-flight transfers complete first.
  /// Idempotent; also called by the destructor.
  void Shutdown() override;

  // --- Multi-tenant service surface (DESIGN.md §12) ---
  /// Opens a tenant over the next `num_ranks` unassigned ranks. Rare
  /// control-plane call; checkpoint/restore traffic of other tenants is
  /// unaffected. Init() already opened the configured (or default) tenants,
  /// so this is only needed for stacks assembled incrementally in tests.
  util::StatusOr<TenantId> OpenTenant(const TenantSpec& spec, int num_ranks);
  /// Quiesces a tenant: waits for its in-flight flushes, then rejects new
  /// checkpoint/restore/hint calls on its ranks with kFailedPrecondition.
  /// Its cached/durable data stays addressable for other introspection.
  util::Status CloseTenant(TenantId id);
  [[nodiscard]] const TenantRegistry& tenant_registry() const noexcept {
    return *tenant_registry_;
  }
  /// Lock-free: tenant owning `rank` (kDefaultTenant in single-tenant mode).
  [[nodiscard]] TenantId TenantOf(sim::Rank rank) const noexcept {
    return tenant_registry_->tenant_of(rank);
  }
  /// Total cache bytes (all cache tiers, all the tenant's ranks) the tenant
  /// currently holds. Lock-free, same consistency as CacheUsed.
  [[nodiscard]] std::uint64_t TenantCacheUsed(TenantId id) const;
  /// True in explicit multi-tenant mode: tenant names appear in thread/track
  /// names, telemetry labels, and metrics JSON. False keeps single-tenant
  /// output byte-identical to the pre-tenant engine.
  [[nodiscard]] bool multi_tenant() const noexcept override {
    return label_tenants_;
  }
  /// Name of the tenant owning `rank` when multi_tenant(), else "".
  [[nodiscard]] std::string TenantLabelOf(sim::Rank rank) const;

  [[nodiscard]] RankMetrics metrics(sim::Rank rank) const override;
  /// Same consistent, rank-locked copy as metrics(); kept as the
  /// explicitly-named form used by tests and the trace sink.
  [[nodiscard]] RankMetrics MetricsSnapshot(sim::Rank rank) const;
  [[nodiscard]] std::string_view name() const override { return "score"; }
  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }
  [[nodiscard]] const TierStack& tiers() const noexcept { return stack_; }
  [[nodiscard]] int num_ranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }

  // --- Introspection for tests ---
  [[nodiscard]] util::StatusOr<CkptState> StateOf(sim::Rank rank, Version v) const;
  /// Residency by stack index; indices beyond the stack are simply absent.
  [[nodiscard]] bool ResidentOnIndex(sim::Rank rank, Version v,
                                     TierIndex tier) const;
  /// Legacy alias: the default stack's Tier enum doubles as its indices.
  [[nodiscard]] bool ResidentOn(sim::Rank rank, Version v, Tier tier) const;
  /// Deepest stack index still holding a copy of a flushed checkpoint. For
  /// a degraded checkpoint this is shallower than the configured terminal
  /// tier. Errors: kFailedPrecondition while the flush is in flight,
  /// kIoError once the checkpoint entered FLUSH_FAILED.
  [[nodiscard]] util::StatusOr<TierIndex> DurableTierIndexOf(sim::Rank rank,
                                                             Version v) const;
  /// Legacy alias of DurableTierIndexOf for the default stack.
  [[nodiscard]] util::StatusOr<Tier> DurableTierOf(sim::Rank rank, Version v) const;
  /// Used bytes of cache tier `tier` (0 while a pinned tier registers).
  [[nodiscard]] std::uint64_t CacheUsed(sim::Rank rank, TierIndex tier) const;
  /// Legacy aliases: the device tier's usage, and the summed usage of the
  /// pinned-host cache tiers.
  [[nodiscard]] std::uint64_t GpuCacheUsed(sim::Rank rank) const;
  [[nodiscard]] std::uint64_t HostCacheUsed(sim::Rank rank) const;
  /// Consecutive hinted successors already promoted to the fastest cache
  /// tier (the Fig. 7 prefetch-distance metric).
  [[nodiscard]] std::uint64_t PrefetchDistance(sim::Rank rank) const;

  // --- Live telemetry probe (DESIGN.md §11) ---
  /// Point-in-time reading of one stack tier's probe cells.
  struct TierProbe {
    std::uint64_t bytes_used = 0;      ///< cache tiers; 0 for durable tiers
    std::uint64_t bytes_capacity = 0;  ///< cache tiers; 0 for durable tiers
    std::uint64_t flush_queue_depth = 0;  ///< queued + in-flight flush work
    std::uint64_t flush_bytes = 0;        ///< cumulative bytes landed here
    std::uint64_t restores = 0;           ///< restores served from this tier
    /// Durability-lag histogram cells (DESIGN.md §14): counts per
    /// util::telemetry::kDurabilityLagEdgesS bucket (+Inf last). Empty for
    /// cache tiers or when lineage tracking is off.
    std::vector<std::uint64_t> lag_buckets;
    std::uint64_t lag_count = 0;
    std::uint64_t lag_sum_ns = 0;
  };
  /// Point-in-time reading of one rank's probe cells. Produced WITHOUT the
  /// rank lock: each field is one relaxed atomic read, so the fields are
  /// individually exact but mutually unsynchronized — exactly what a
  /// periodic sampler needs, and never what a correctness check should use
  /// (tests want MetricsSnapshot()).
  struct RankProbe {
    std::vector<std::uint64_t> state_occupancy;  ///< records per CkptState
    std::int64_t last_transition_ns = 0;  ///< NowNs() of the latest FSM edge
    std::uint64_t restore_queue_depth = 0;  ///< pending restore-order hints
    std::uint64_t reserve_rounds = 0;
    std::uint64_t reserve_plans_stale = 0;
    std::uint64_t reserve_snapshot_reuse = 0;
    std::uint64_t reserve_quota_waits = 0;
    std::uint64_t flush_retries = 0;
    std::uint64_t fetch_retries = 0;
    std::uint64_t tier_degradations = 0;
    std::uint64_t checkpoints_lost = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t bytes_checkpointed = 0;
    std::uint64_t bytes_restored = 0;
    std::uint64_t watchdog_stalls = 0;
    // Lineage outcome counters (DESIGN.md §14); zero when lineage is off.
    std::uint64_t objects_admitted = 0;
    std::uint64_t objects_durable = 0;
    std::uint64_t objects_degraded = 0;
    std::uint64_t objects_lost = 0;
    std::uint64_t objects_erased = 0;
    std::vector<TierProbe> tiers;  ///< by stack index
  };
  /// Samples the rank's probe cells without acquiring the rank lock. Safe
  /// from a sampler thread at arbitrary frequency. Reads all-zero counters
  /// when the telemetry subsystem is compiled out (CKPT_TELEMETRY_DISABLED
  /// turns every probe bump into a no-op).
  [[nodiscard]] RankProbe Probe(sim::Rank rank) const;

  /// Stall categories the telemetry watchdog can detect (DESIGN.md §11).
  enum class StallKind : std::uint8_t {
    kFsmDwell = 0,     ///< a record sat in a pending FSM state too long
    kFlushNoProgress,  ///< flush queue non-empty but no bytes moved
    kReserveLivelock,  ///< eviction plans kept going stale window over window
  };
  /// Charges a watchdog-detected stall to the rank's metrics and probe
  /// cells. Takes the rank lock — trip path only, never the sample path.
  void NoteStall(sim::Rank rank, StallKind kind);

  // --- Per-checkpoint lineage (DESIGN.md §14) ---
  /// Terminal disposition of one admitted checkpoint object. Every object
  /// admitted by Checkpoint() ends in exactly one of these (the
  /// conservation invariant the lineage auditor checks).
  enum class LineageOutcome : std::uint8_t {
    kDurable = 0,  ///< reached the configured terminal tier
    kDegraded,     ///< durable at a shallower tier (terminal tier failed)
    kLost,         ///< entered FLUSH_FAILED with no surviving copy
    kErased,       ///< record dropped before a durability outcome (admit
                   ///< rollback, condition-(5) discard, shutdown abort)
  };
  /// One terminal record in the rank's lineage journal.
  struct LineageEntry {
    Version version = 0;
    std::uint64_t flow_id = 0;
    std::int64_t admit_ns = 0;
    std::int64_t durable_ns = 0;  ///< first durable ack; 0 = never durable
    std::int64_t terminal_ns = 0;
    int durable_tier = -1;        ///< stack index of the first durable ack
    LineageOutcome outcome = LineageOutcome::kDurable;
  };
  /// Lock-free snapshot of one rank's lineage ledger: outcome counters plus
  /// the newest journal entries (oldest first). Counters and journal read
  /// all-zero / empty when the telemetry subsystem is compiled out
  /// (CKPT_TELEMETRY_DISABLED) — use MetricsSnapshot() for the always-on
  /// metrics-side ledger.
  struct LineageSnapshot {
    std::uint64_t admitted = 0;
    std::uint64_t durable = 0;
    std::uint64_t degraded = 0;
    std::uint64_t lost = 0;
    std::uint64_t erased = 0;
    std::uint64_t journal_total = 0;  ///< terminals ever journaled
    std::vector<LineageEntry> journal;

    [[nodiscard]] std::uint64_t terminated() const noexcept {
      return durable + degraded + lost + erased;
    }
    [[nodiscard]] std::uint64_t inflight() const noexcept {
      const std::uint64_t t = terminated();
      return admitted >= t ? admitted - t : 0;
    }
  };
  /// Samples the rank's lineage cells and journal without the rank lock
  /// (seqlock-stamped journal cells; torn entries are skipped).
  [[nodiscard]] LineageSnapshot Lineage(sim::Rank rank) const;
  /// True when lineage tracking is on (EngineOptions::lineage or
  /// CKPT_LINEAGE=1).
  [[nodiscard]] bool lineage() const noexcept { return lineage_; }

 private:
  struct Residency {
    bool valid = false;       ///< data present and complete on this tier
    bool io_pending = false;  ///< space reserved, transfer writing into it
    int read_refs = 0;        ///< active transfers reading from this copy
    std::uint64_t offset = 0; ///< offset within the tier's cache buffer
    /// Which cache partition holds the entry (only meaningful in the
    /// split-cache ablation; the shared default uses kWrite for everything).
    ReservePurpose part = ReservePurpose::kWrite;

    [[nodiscard]] bool busy() const noexcept {
      return io_pending || read_refs > 0;
    }
    void Clear() noexcept { *this = Residency{}; }
  };

  struct Record {
    Version version = 0;
    std::uint64_t size = 0;
    CkptState state = CkptState::kInit;
    /// Residency per cache tier, indexed by stack position [0, num_cache).
    std::vector<Residency> res;
    /// Copy-present flag per durable tier, indexed by durable ordinal.
    std::vector<unsigned char> durable;
    bool restore_waiting = false;   ///< a Restore() call is blocked on this
    bool prefetch_claimed = false;  ///< T_PF owns an in-flight promotion
    bool pinned_counted = false;    ///< counted in prefetched_pinned_bytes
    bool flush_done = false;        ///< reached terminal tier (or cancelled)
    bool degraded = false;          ///< durable at a shallower tier than
                                    ///< configured (terminal tier failed)
    std::uint64_t lru_seq = 0;
    std::uint64_t fifo_seq = 0;
    /// Trace timestamp of the last FSM transition (0 until the first
    /// transition recorded with tracing on); Advance() emits the dwell time
    /// of the outgoing state as a lifecycle span.
    std::int64_t state_since_ns = 0;

    // Lineage fields (DESIGN.md §14), stamped at Checkpoint() admission.
    // Imported records (FindOrImport) keep flow_id 0 and lineage_done true:
    // their admission predates this engine, so they sit outside the
    // conservation ledger and emit no flow events.
    std::int64_t admit_ns = 0;          ///< NowNs() at admission
    std::uint64_t flow_id = 0;          ///< util::trace::FlowIdOf(rank, v)
    std::int64_t first_durable_ns = 0;  ///< first durable ack (0 = none)
    std::int16_t first_durable_tier = -1;  ///< stack index of that ack
    bool lineage_done = false;          ///< terminal outcome recorded

    [[nodiscard]] bool AnyDurable() const noexcept {
      for (unsigned char d : durable) {
        if (d) return true;
      }
      return false;
    }
    [[nodiscard]] bool AnyCached() const noexcept {
      for (const Residency& r : res) {
        if (r.valid) return true;
      }
      return false;
    }
    [[nodiscard]] bool AnyCacheBusy() const noexcept {
      for (const Residency& r : res) {
        if (r.busy()) return true;
      }
      return false;
    }
  };

  /// Per-rank runtime state of one cache tier.
  struct CacheTierRt {
    std::uint64_t capacity = 0;  ///< this rank's share of the tier
    /// Backing memory allocated/registered. Atomic so lock-free probes
    /// (CacheUsed) can check readiness without the rank lock; writers flip
    /// it under ctx.mu with release ordering.
    std::atomic<bool> ready{false};
    sim::BytePtr gpu_base = nullptr;            ///< device tiers (owned by
                                                ///< the rank's Device)
    std::unique_ptr<sim::PinnedArena> arena;    ///< pinned-host tiers
    std::unique_ptr<CacheBuffer> write_buf;     // shared cache, or write half
    std::unique_ptr<CacheBuffer> prefetch_buf;  // split mode only
    /// Versions whose copy on this tier awaits flushing to the next tier.
    util::MpmcQueue<Version> flush_q;
    std::uint64_t backlog_bytes = 0;
    /// Wakeup channel for reservations blocked on THIS tier (DESIGN.md
    /// §10): signalled when space on this tier may have opened up (a
    /// residency cleared, read_refs dropped, a pin released, the tier
    /// became ready). Paired with ctx.mu.
    std::condition_variable_any cv_reserve;
    std::jthread worker;  ///< FlushStageLoop for this tier
  };

  /// Lock-free telemetry probe cells (DESIGN.md §11): relaxed atomics the
  /// hot path bumps through the Probe*() helpers below (writers already
  /// hold ctx.mu; the sampler reads them without any lock, mirroring the
  /// CacheTierRt::ready pattern). The cells always exist — they are a few
  /// hundred bytes per rank — but with CKPT_TELEMETRY_DISABLED every bump
  /// helper compiles to nothing, so the hot path carries zero extra work
  /// and Probe() reports all-zero counters.
  struct TierProbeCells {
    std::atomic<std::uint64_t> flush_queue_depth{0};  ///< queued + in-flight
    std::atomic<std::uint64_t> flush_bytes{0};
    std::atomic<std::uint64_t> restores{0};
    /// Durability-lag histogram cells (DESIGN.md §14): per-bucket counts
    /// over util::telemetry::kDurabilityLagEdgesS plus the +Inf bucket.
    /// Bumped at each durable ack on durable-tier positions only; cache
    /// positions stay zero.
    std::array<std::atomic<std::uint64_t>,
               util::telemetry::kDurabilityLagBuckets>
        lag_buckets{};
    std::atomic<std::uint64_t> lag_count{0};
    std::atomic<std::uint64_t> lag_sum_ns{0};
  };
  struct ProbeCells {
    std::array<std::atomic<std::uint64_t>, kCkptStateCount> state_occupancy{};
    std::atomic<std::int64_t> last_transition_ns{0};
    /// restore_queue_depth = hints_enqueued - hints_retired. Split into two
    /// monotone counters because the enqueue side (PrefetchEnqueue's
    /// lock-free inbox) and the retire side (T_PF / Restore under ctx.mu)
    /// run on different threads.
    std::atomic<std::uint64_t> hints_enqueued{0};
    std::atomic<std::uint64_t> hints_retired{0};
    std::atomic<std::uint64_t> reserve_rounds{0};
    std::atomic<std::uint64_t> reserve_plans_stale{0};
    std::atomic<std::uint64_t> reserve_snapshot_reuse{0};
    std::atomic<std::uint64_t> reserve_quota_waits{0};
    std::atomic<std::uint64_t> flush_retries{0};
    std::atomic<std::uint64_t> fetch_retries{0};
    std::atomic<std::uint64_t> tier_degradations{0};
    std::atomic<std::uint64_t> checkpoints_lost{0};
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> restores{0};
    std::atomic<std::uint64_t> bytes_checkpointed{0};
    std::atomic<std::uint64_t> bytes_restored{0};
    std::atomic<std::uint64_t> watchdog_stalls{0};
    // Lineage outcome counters (DESIGN.md §14); bumped only with lineage on.
    std::atomic<std::uint64_t> objects_admitted{0};
    std::atomic<std::uint64_t> objects_durable{0};
    std::atomic<std::uint64_t> objects_degraded{0};
    std::atomic<std::uint64_t> objects_lost{0};
    std::atomic<std::uint64_t> objects_erased{0};
  };

  /// One slot of the per-rank lineage journal (DESIGN.md §14): a
  /// seqlock-stamped terminal record. The writer (any thread holding
  /// ctx.mu) bumps `stamp` to odd, stores the fields, bumps to even; the
  /// lock-free reader retries/skips slots it catches mid-write. Fields are
  /// individually relaxed atomics so concurrent reads stay data-race-free
  /// under TSan; the stamp protocol supplies whole-record consistency.
  struct LineageCell {
    std::atomic<std::uint64_t> stamp{0};  ///< odd while a write is in flight
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> flow_id{0};
    std::atomic<std::int64_t> admit_ns{0};
    std::atomic<std::int64_t> durable_ns{0};
    std::atomic<std::int64_t> terminal_ns{0};
    std::atomic<std::int32_t> durable_tier{-1};
    std::atomic<std::uint8_t> outcome{0};
  };
  /// Journal capacity per rank: newest kLineageJournalCap terminals are
  /// retained; the monotone head counter records how many were ever logged.
  static constexpr std::size_t kLineageJournalCap = 1024;

  struct RankCtx {
    sim::Rank rank = 0;
    mutable util::CheckedMutex mu;
    /// Per-role wakeup channels (DESIGN.md §10), all paired with `mu`.
    /// cv_state: FSM / flush progress (WaitForFlushes, Restore's promotion
    /// wait, flush-stage reroute checks). cv_prefetch: the T_PF worker's
    /// wait reasons (new hints, restore_waiting handoffs, pin releases,
    /// landing-slot retries). Reservation waits live on the per-tier
    /// CacheTierRt::cv_reserve channels.
    std::condition_variable_any cv_state;
    std::condition_variable_any cv_prefetch;

    std::unordered_map<Version, Record> records;
    RestoreQueue hints;
    /// Lock-free mailbox for PrefetchEnqueue: hints land here without the
    /// rank lock and are folded into `hints` (under mu) by DrainHints.
    util::MpmcQueue<Version> hint_inbox;
    bool prefetch_started = false;
    bool shutdown = false;

    std::vector<std::unique_ptr<CacheTierRt>> tiers;  ///< cache tiers only
    std::jthread t_pin;  ///< async_pin_init worker

    std::uint64_t inflight_flushes = 0;       ///< records not yet flush_done
    std::uint64_t prefetched_pinned_bytes = 0;
    std::uint64_t prefetched_pinned_count = 0;
    std::uint64_t seq_counter = 0;
    std::uint64_t restore_counter = 0;
    std::uint64_t flush_failed_count = 0;  ///< records in FLUSH_FAILED

    RankMetrics metrics;

    ProbeCells probe;
    /// One cell block per stack tier (cache AND durable), sized at Init.
    std::unique_ptr<TierProbeCells[]> tier_probe;

    /// Lineage journal ring (DESIGN.md §14), allocated at Init only when
    /// lineage tracking is on. lineage_head counts terminals ever journaled
    /// (slot = index % kLineageJournalCap); writers append under mu, the
    /// Lineage() reader walks the ring lock-free.
    std::unique_ptr<LineageCell[]> lineage_journal;
    std::atomic<std::uint64_t> lineage_head{0};

    /// Trace events recorded inside the rank-lock critical section, queued
    /// for emission after the lock is released (the per-thread trace buffer
    /// mutex must stay out of rank-lock hold time). Guarded by mu; flushed
    /// by PublishQueuedTrace / ScopedTracePublisher.
    std::vector<util::trace::Event> pending_trace;

    std::jthread t_pf;
  };

  void Init(int num_ranks);

  // Background workers (num_cache_tiers flush stages + T_PF, per rank).
  void FlushStageLoop(RankCtx& ctx, TierIndex tier);
  void PrefetchLoop(RankCtx& ctx);

  // Helpers; all require ctx.mu held unless noted. `tier` is a stack index
  // of a cache tier.
  [[nodiscard]] CacheBuffer& BufferFor(RankCtx& ctx, TierIndex tier,
                                       ReservePurpose purpose);
  [[nodiscard]] CacheBuffer::MetaFn MakeMetaFn(RankCtx& ctx, TierIndex tier);
  [[nodiscard]] bool SafeBelow(const Record& rec, TierIndex tier) const;
  [[nodiscard]] bool EvictableNow(const Record& rec, TierIndex tier) const;
  [[nodiscard]] bool ExcludedOn(const Record& rec, TierIndex tier) const;
  [[nodiscard]] double EtaSeconds(const RankCtx& ctx, const Record& rec,
                                  TierIndex tier) const;
  /// Refreshes `rec`'s LRU recency. Every read access must call this —
  /// direct restores *and* prefetch hits/promotions — or the LRU ablation
  /// sees stale sequence numbers and evicts recently-touched checkpoints.
  /// ctx.mu protects seq_counter; callers must hold it (debug-asserted).
  static void Touch(RankCtx& ctx, Record& rec) noexcept {
    CKPT_ASSERT_HELD(ctx.mu);
    rec.lru_seq = ++ctx.seq_counter;
  }

  // --- Probe-cell bump helpers (DESIGN.md §11) ---
  // All relaxed; all compile to nothing under CKPT_TELEMETRY_DISABLED.
  static void ProbeAdd(std::atomic<std::uint64_t>& cell,
                       std::uint64_t n = 1) noexcept {
#ifndef CKPT_TELEMETRY_DISABLED
    cell.fetch_add(n, std::memory_order_relaxed);
#else
    (void)cell;
    (void)n;
#endif
  }
  static void ProbeSub(std::atomic<std::uint64_t>& cell,
                       std::uint64_t n = 1) noexcept {
#ifndef CKPT_TELEMETRY_DISABLED
    cell.fetch_sub(n, std::memory_order_relaxed);
#else
    (void)cell;
    (void)n;
#endif
  }
  /// A record entered the FSM (record inserted into ctx.records).
  static void ProbeEnterState(RankCtx& ctx, CkptState s) noexcept {
    ProbeAdd(ctx.probe.state_occupancy[static_cast<std::size_t>(s)]);
  }
  /// A record left the FSM (record erased from ctx.records).
  static void ProbeLeaveState(RankCtx& ctx, CkptState s) noexcept {
    ProbeSub(ctx.probe.state_occupancy[static_cast<std::size_t>(s)]);
  }
  /// An FSM edge: moves the occupancy count and stamps the transition time
  /// (the watchdog's FSM-dwell detector keys off this stamp).
  static void ProbeTransition(RankCtx& ctx, CkptState from,
                              CkptState to) noexcept {
#ifndef CKPT_TELEMETRY_DISABLED
    ProbeLeaveState(ctx, from);
    ProbeEnterState(ctx, to);
    ctx.probe.last_transition_ns.store(util::NowNs(),
                                       std::memory_order_relaxed);
#else
    (void)ctx;
    (void)from;
    (void)to;
#endif
  }

  // --- Deferred trace emission (keep trace-buffer locking off the
  // rank-lock critical section) ---
  /// Queues an instant event under ctx.mu; emitted by PublishQueuedTrace.
  static void QueueInstant(RankCtx& ctx, util::trace::Kind kind,
                           const char* name, int tier = -1, Version v = 0,
                           std::uint64_t bytes = 0, double a = 0.0,
                           double b = 0.0);
  /// Queues a span that began at `begin_ns` and ends now.
  static void QueueSpanSince(RankCtx& ctx, util::trace::Kind kind,
                             const char* name, std::int64_t begin_ns,
                             int tier = -1, Version v = 0,
                             std::uint64_t bytes = 0, double a = 0.0,
                             double b = 0.0);
  /// Emits and clears ctx.pending_trace. Call WITHOUT ctx.mu held (briefly
  /// re-acquires it to swap the queue out). Events land on the calling
  /// thread's track; the sink orders tracks by timestamp, so a worker
  /// publishing spans another thread queued stays a valid trace.
  static void PublishQueuedTrace(RankCtx& ctx);
  /// Same, for callers that still hold the lock: unlocks, emits, relocks.
  static void PublishQueuedTraceLocked(
      RankCtx& ctx, std::unique_lock<util::CheckedMutex>& lock);
  /// RAII publisher: declare BEFORE taking ctx.mu so queued events flush
  /// right after the lock is released on every exit path.
  class ScopedTracePublisher {
   public:
    explicit ScopedTracePublisher(RankCtx& c) noexcept : ctx_(c) {}
    ~ScopedTracePublisher() { PublishQueuedTrace(ctx_); }
    ScopedTracePublisher(const ScopedTracePublisher&) = delete;
    ScopedTracePublisher& operator=(const ScopedTracePublisher&) = delete;

   private:
    RankCtx& ctx_;
  };
  // --- Lineage helpers (DESIGN.md §14); all require ctx.mu held ---
  /// Queues a flow event (ph "s"/"t"/"f" keyed by `flow_id`) on the
  /// object's causal chain. No-op unless flow emission is on
  /// (util::trace::flows_enabled()) and `flow_id` is nonzero, so legacy
  /// traces stay byte-identical.
  static void QueueFlow(RankCtx& ctx, util::trace::Kind kind,
                        const char* name, std::uint64_t flow_id,
                        util::trace::FlowPhase phase, int tier = -1,
                        Version v = 0, std::uint64_t bytes = 0);
  /// Records `rec`'s admission into the lineage ledger: counters, metrics,
  /// and the flow-start event. Checkpoint() admission only.
  void LineageAdmit(RankCtx& ctx, Record& rec);
  /// Records `rec`'s terminal outcome exactly once: outcome counters and
  /// metrics, the journal entry, and the terminating flow event
  /// (`flow_name`, ph "f"). Later calls for the same record are no-ops, so
  /// every terminal/erase site may call it unconditionally — the first
  /// disposition wins, which is what conservation needs.
  void LineageTerminal(RankCtx& ctx, Record& rec, LineageOutcome outcome,
                       const char* flow_name, int tier = -1);
  /// Charges the put -> durable-ack lag of `rec` for durable ordinal `d`:
  /// the metrics histogram and probe lag cells at the tier's stack index,
  /// plus the per-tier ack flow step. First ack stamps first_durable_*.
  void LineageDurableAck(RankCtx& ctx, Record& rec, std::size_t d);

  /// Drops the victims' residencies on `tier`. Requires EvictableNow.
  util::Status EvictVictims(RankCtx& ctx, TierIndex tier,
                            const std::vector<EntryId>& victims);

  // --- Tenant admission (DESIGN.md §12) ---
  /// kFailedPrecondition when the rank's tenant was closed; Ok otherwise
  /// (including the unassigned-rank case, which only tests can reach).
  [[nodiscard]] util::Status CheckTenantOpen(sim::Rank rank) const;
  /// Fair-queuing attribution for the rank's transfers: flow = tenant id,
  /// weight = tenant weight. Single-tenant mode yields {0, 1.0} == the
  /// limiters' default flow.
  [[nodiscard]] sim::Flow FlowOf(const RankCtx& ctx) const noexcept;
  /// "<tenant>/" for worker thread/track names in multi-tenant mode; empty
  /// (single-tenant) keeps every thread name byte-identical to PR 7.
  [[nodiscard]] std::string TenantThreadPrefix(const RankCtx& ctx) const;
  /// Quota headroom check for the rank's tenant: true when admitting `size`
  /// more cache bytes would exceed the tenant's quota. Quota 0 never blocks
  /// (and skips the cross-rank usage sum entirely).
  [[nodiscard]] bool OverTenantQuota(const RankCtx& ctx,
                                     std::uint64_t size) const;
  /// Sheds evictable bytes from THIS rank's buffer on `tier` to make quota
  /// headroom (victims are structurally within the over-quota tenant: rank
  /// buffers are single-tenant). Returns bytes freed. Requires ctx.mu; may
  /// briefly drop it while planning.
  std::uint64_t ShedForQuota(RankCtx& ctx,
                             std::unique_lock<util::CheckedMutex>& lock,
                             TierIndex tier, ReservePurpose purpose,
                             std::uint64_t need);
  /// Blocking reservation loop: snapshot / plan off-lock / revalidate /
  /// commit-or-wait / re-plan. Waits on the tier's cv_reserve channel.
  /// `abort` (optional) is checked after each failed round; when it returns
  /// true the reservation gives up with kCancelled.
  util::StatusOr<std::uint64_t> ReserveOn(
      RankCtx& ctx, std::unique_lock<util::CheckedMutex>& lock, TierIndex tier,
      ReservePurpose purpose, Version v, std::uint64_t size,
      const std::function<bool()>& abort);

  // --- Per-role wakeup helpers (DESIGN.md §10) ---
  /// A transition that may unblock reservations on cache tier `tier`
  /// (residency cleared, read_refs dropped, pin released, tier ready).
  static void NotifyReserve(RankCtx& ctx, TierIndex tier) {
    ctx.tiers[tier]->cv_reserve.notify_all();
  }
  /// Clears that may free space on several tiers at once (record dropped,
  /// flush failure reclaim, shutdown).
  static void NotifyReserveAll(RankCtx& ctx) {
    for (auto& t : ctx.tiers) t->cv_reserve.notify_all();
  }
  /// FSM / flush progress: WaitForFlushes, Restore's promotion wait, the
  /// flush stage's validity re-checks.
  static void NotifyState(RankCtx& ctx) { ctx.cv_state.notify_all(); }
  /// Anything the T_PF worker waits for: hints, restore_waiting handoffs,
  /// pin releases, landing-slot retries.
  static void NotifyPrefetch(RankCtx& ctx) { ctx.cv_prefetch.notify_all(); }
  static void NotifyAllChannels(RankCtx& ctx) {
    NotifyState(ctx);
    NotifyPrefetch(ctx);
    NotifyReserveAll(ctx);
  }
  /// Folds hint_inbox into ctx.hints (requires ctx.mu). Returns true if any
  /// hint was appended.
  static bool DrainHints(RankCtx& ctx);
  /// Marks a flush stage reaching the terminal tier; advances the FSM.
  void FinishFlush(RankCtx& ctx, Record& rec);

  // --- Failure model helpers (DESIGN.md §8) ---
  /// Result of writing one checkpoint to the durable store(s) with retries.
  struct TerminalPutResult {
    /// Outcome per durable ordinal; ordinals beyond the terminal tier are
    /// not attempted and stay 0.
    std::vector<unsigned char> ok;
    std::uint64_t retries = 0;    ///< extra attempts across all tiers
    std::uint64_t failures = 0;   ///< tiers that permanently failed
  };
  /// Writes (rank, v) to every durable tier up to and including the
  /// terminal one, retrying transient errors per flush_retry. Deeper
  /// stages are attempted even when a shallower one failed: a surviving
  /// deeper copy still makes the checkpoint durable. Called WITHOUT ctx.mu
  /// held.
  TerminalPutResult PutTerminal(RankCtx& ctx, Version v, sim::ConstBytePtr src,
                                std::uint64_t size, std::mt19937_64& rng);
  /// Applies a TerminalPutResult to the record (ctx.mu held): marks durable
  /// tiers and finishes the flush; on a permanent terminal-tier failure
  /// either degrades durability to the deepest surviving copy or — in
  /// strict mode / with no copy left — marks the record FLUSH_FAILED.
  void ApplyFlushResult(RankCtx& ctx, Record& rec, const TerminalPutResult& r);
  /// Transitions the record to FLUSH_FAILED, reclaiming its cache space and
  /// unblocking WaitForFlushes / pending restores (ctx.mu held).
  void MarkFlushFailed(RankCtx& ctx, Record& rec);
  /// Reads (rank, v) from the durable tiers flagged in `durable`, walking
  /// shallowest-first with bounded retries per tier. Called WITHOUT ctx.mu
  /// held. Accumulates retry/fallback counts into the out-params (caller
  /// charges metrics under the lock); `served` reports the stack index
  /// that satisfied the read.
  util::Status GetDurable(RankCtx& ctx, Version v, sim::BytePtr dst,
                          std::uint64_t size,
                          const std::vector<unsigned char>& durable,
                          std::mt19937_64& rng,
                          const std::function<bool()>& abort,
                          std::uint64_t& retries, bool& fell_back,
                          TierIndex& served);
  /// FSM transition with legality check (aborts the process on violation —
  /// an illegal edge is an engine bug, never a user error).
  void Advance(RankCtx& ctx, Record& rec, CkptState to);
  /// Unpins a consumed prefetched record from the pin accounting.
  void ReleasePin(RankCtx& ctx, Record& rec);
  /// Registers a prefetched record in the pin accounting (cap + Fig. 7).
  void AddPin(RankCtx& ctx, Record& rec);
  /// Imports a record found only on the durable stores.
  util::StatusOr<Record*> FindOrImport(RankCtx& ctx, Version v);
  /// Fresh record with residency vectors sized for this stack.
  [[nodiscard]] Record NewRecord(RankCtx& ctx, Version v,
                                 std::uint64_t size) const;
  [[nodiscard]] std::uint64_t ComputePrefetchDistance(const RankCtx& ctx) const;
  /// Per-rank/thread deterministic rng stream (`stream` < kRngStreamsPerRank).
  [[nodiscard]] std::mt19937_64 RngFor(const RankCtx& ctx,
                                       std::uint64_t stream,
                                       std::uint64_t salt = 0) const;

  [[nodiscard]] RankCtx& ctx(sim::Rank rank);
  [[nodiscard]] const RankCtx& ctx(sim::Rank rank) const;

  sim::Cluster& cluster_;
  TierStack stack_;
  EngineOptions options_;
  /// Interned "flush:<tier>" span names, one per durable ordinal, so the
  /// terminal put loop can emit per-tier spans without allocating.
  std::vector<const char*> durable_span_names_;
  /// Interned flow-step names (DESIGN.md §14): "hop:<tier>" per stack index
  /// (flush-stage landings) and "ack:<tier>" per durable ordinal (durable
  /// acks). Empty unless lineage tracking is on.
  std::vector<const char*> flow_hop_names_;
  std::vector<const char*> flow_ack_names_;
  /// Lineage tracking on (EngineOptions::lineage or CKPT_LINEAGE=1).
  bool lineage_ = false;
  /// Tenant table + rank->tenant mapping; created before the workers spawn.
  std::unique_ptr<TenantRegistry> tenant_registry_;
  /// True when the engine runs in explicit multi-tenant mode: tenant labels
  /// appear in thread/track names and telemetry. Single-tenant mode keeps
  /// every name and label byte-identical to the pre-tenant engine.
  bool label_tenants_ = false;
  /// Estimated drain bandwidth of each cache tier toward the next tier
  /// (bytes/s), for predict_evictable ETAs (§4.2).
  std::vector<double> drain_bw_;
  std::vector<std::unique_ptr<RankCtx>> ranks_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace ckpt::core
