#include "core/tenant.hpp"

#include <cstdlib>

#include "util/config.hpp"

namespace ckpt::core {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

util::StatusOr<std::vector<TenantSpec>> ParseTenantSpecs(
    std::string_view text) {
  std::vector<TenantSpec> specs;
  std::string_view rest = Trim(text);
  while (!rest.empty()) {
    const std::size_t sep = rest.find(';');
    std::string_view entry = Trim(rest.substr(0, sep));
    rest = sep == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sep + 1);
    if (entry.empty()) continue;

    TenantSpec spec;
    const std::size_t c1 = entry.find(':');
    if (c1 == std::string_view::npos || c1 == 0) {
      return util::InvalidArgument("tenant entry needs name:quota, got '" +
                                   std::string(entry) + "'");
    }
    spec.name = std::string(Trim(entry.substr(0, c1)));
    std::string_view tail = entry.substr(c1 + 1);
    const std::size_t c2 = tail.find(':');
    const std::string_view quota_text =
        Trim(c2 == std::string_view::npos ? tail : tail.substr(0, c2));
    auto quota = util::ParseSize(quota_text);
    if (!quota.ok() || *quota < 0) {
      return util::InvalidArgument("tenant '" + spec.name + "': bad quota '" +
                                   std::string(quota_text) + "'");
    }
    spec.quota_bytes = static_cast<std::uint64_t>(*quota);
    if (c2 != std::string_view::npos) {
      const std::string weight_text(Trim(tail.substr(c2 + 1)));
      char* end = nullptr;
      spec.weight = std::strtod(weight_text.c_str(), &end);
      if (weight_text.empty() || end != weight_text.c_str() + weight_text.size() ||
          !(spec.weight > 0.0)) {
        return util::InvalidArgument("tenant '" + spec.name +
                                     "': bad weight '" + weight_text + "'");
      }
    }
    for (const TenantSpec& prev : specs) {
      if (prev.name == spec.name) {
        return util::InvalidArgument("duplicate tenant name '" + spec.name +
                                     "'");
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

TenantRegistry::TenantRegistry(int total_ranks)
    : total_ranks_(total_ranks < 0 ? 0 : total_ranks),
      tenants_(static_cast<std::size_t>(total_ranks_) + 1),
      rank_tenant_(static_cast<std::size_t>(total_ranks_)) {
  for (auto& t : rank_tenant_) t.store(kNoTenant, std::memory_order_relaxed);
}

util::StatusOr<TenantId> TenantRegistry::Open(const TenantSpec& spec,
                                              int num_ranks) {
  if (spec.name.empty()) {
    return util::InvalidArgument("tenant name must be non-empty");
  }
  if (num_ranks <= 0) {
    return util::InvalidArgument("tenant '" + spec.name +
                                 "' needs at least one rank");
  }
  if (!(spec.weight > 0.0)) {
    return util::InvalidArgument("tenant '" + spec.name +
                                 "': weight must be > 0");
  }
  std::lock_guard lock(mu_);
  const int id = count_.load(std::memory_order_relaxed);
  if (id >= static_cast<int>(tenants_.size())) {
    return util::CapacityExceeded("tenant table full");
  }
  for (int i = 0; i < id; ++i) {
    if (tenants_[static_cast<std::size_t>(i)]->spec.name == spec.name) {
      return util::AlreadyExists("tenant '" + spec.name + "' already open");
    }
  }
  const int first = next_rank_.load(std::memory_order_relaxed);
  if (first + num_ranks > total_ranks_) {
    return util::CapacityExceeded(
        "tenant '" + spec.name + "' wants " + std::to_string(num_ranks) +
        " ranks but only " + std::to_string(total_ranks_ - first) +
        " of " + std::to_string(total_ranks_) + " remain");
  }

  auto ctx = std::make_unique<TenantCtx>();
  ctx->id = id;
  ctx->spec = spec;
  ctx->first_rank = first;
  ctx->num_ranks = num_ranks;
  tenants_[static_cast<std::size_t>(id)] = std::move(ctx);
  for (int r = first; r < first + num_ranks; ++r) {
    rank_tenant_[static_cast<std::size_t>(r)].store(id,
                                                    std::memory_order_release);
  }
  next_rank_.store(first + num_ranks, std::memory_order_release);
  count_.store(id + 1, std::memory_order_release);
  return id;
}

util::Status TenantRegistry::Close(TenantId id) {
  std::lock_guard lock(mu_);
  if (id < 0 || id >= count_.load(std::memory_order_relaxed)) {
    return util::NotFound("tenant " + std::to_string(id) + " unknown");
  }
  TenantCtx& ctx = *tenants_[static_cast<std::size_t>(id)];
  if (!ctx.open.exchange(false, std::memory_order_acq_rel)) {
    return util::FailedPrecondition("tenant '" + ctx.spec.name +
                                    "' already closed");
  }
  return util::OkStatus();
}

TenantId TenantRegistry::FindByName(std::string_view name) const {
  const int n = count_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    const TenantCtx* ctx = tenants_[static_cast<std::size_t>(i)].get();
    if (ctx != nullptr && ctx->spec.name == name) return i;
  }
  return kNoTenant;
}

}  // namespace ckpt::core
