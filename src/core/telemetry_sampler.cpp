#include "core/telemetry_sampler.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <utility>

#include "core/telemetry_sink.hpp"
#include "core/trace_sink.hpp"
#include "util/trace.hpp"

namespace ckpt::core {

namespace {

using util::telemetry::SamplePtr;
using util::telemetry::TelemetrySample;

/// FSM states the dwell detector treats as "work pending": a record parked
/// in one of these has an owner (app thread, flush stage, prefetcher) that
/// is supposed to move it along. FLUSHED/READ_COMPLETE/CONSUMED are stable
/// resting states and FLUSH_FAILED is terminal.
[[nodiscard]] std::uint64_t PendingOccupancy(
    const std::vector<std::uint64_t>& occ) {
  constexpr std::size_t kPending[] = {
      static_cast<std::size_t>(CkptState::kInit),
      static_cast<std::size_t>(CkptState::kWriteInProgress),
      static_cast<std::size_t>(CkptState::kWriteComplete),
      static_cast<std::size_t>(CkptState::kReadInProgress),
  };
  std::uint64_t n = 0;
  for (std::size_t i : kPending) {
    if (i < occ.size()) n += occ[i];
  }
  return n;
}

void WriteFileOrWarn(const std::string& path, const std::string& body,
                     const char* what) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (f) {
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
    f.flush();
  }
  if (!f) {
    std::fprintf(stderr, "telemetry: failed to write %s dump to '%s'\n", what,
                 path.c_str());
  }
}

}  // namespace

TelemetrySampler::Options TelemetrySampler::Options::FromGlobalConfig() {
  const util::telemetry::Settings s = util::telemetry::settings();
  Options o;
  o.period_ms = s.period_ms;
  o.window = s.window;
  o.watchdog = s.watchdog;
  o.stall_ms = s.stall_ms;
  o.stall_windows = s.stall_windows;
  o.strict = s.strict;
  o.out_path = s.out_path;
  return o;
}

TelemetrySampler::TelemetrySampler(Engine& engine, Options opts)
    : engine_(engine),
      opts_(std::move(opts)),
      tier_names_(TelemetryTierNames(engine)),
      ring_(opts_.window) {
  watch_.resize(static_cast<std::size_t>(engine_.num_ranks()));
  if (opts_.period_ms <= 0) opts_.period_ms = 100;
  if (opts_.stall_windows <= 0) opts_.stall_windows = 1;
  if (opts_.start_thread) {
    thread_ = std::jthread([this](std::stop_token st) {
      util::trace::SetThreadName("telemetry");
      std::mutex m;
      std::condition_variable_any cv;
      const auto period = std::chrono::milliseconds(opts_.period_ms);
      while (!st.stop_requested()) {
        Tick();
        std::unique_lock lk(m);
        // Interruptible sleep: wakes immediately on request_stop().
        cv.wait_for(lk, st, period, [] { return false; });
      }
    });
  }
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Stop() {
  if (thread_.joinable()) {
    thread_.request_stop();
    thread_.join();
    // Close the window with an end-of-run sample (also the scrape target
    // for post-run exposition).
    Tick();
  }
}

void TelemetrySampler::SampleNow() { Tick(); }

std::string TelemetrySampler::ScrapeOpenMetrics() {
  SamplePtr s = ring_.Latest();
  if (s == nullptr) {
    Tick();
    s = ring_.Latest();
  }
  return OpenMetricsText(*s, tier_names_);
}

void TelemetrySampler::Tick() {
  std::lock_guard lk(tick_mu_);
  SamplePtr s = BuildTelemetrySample(engine_, seq_++, prev_.get());
  ring_.Push(s);
  if (opts_.watchdog) RunWatchdog(*s);
  prev_ = std::move(s);
}

void TelemetrySampler::RunWatchdog(const TelemetrySample& cur) {
  const std::int64_t stall_ns = opts_.stall_ms * 1'000'000;
  for (const util::telemetry::RankSample& rs : cur.ranks) {
    if (rs.rank < 0 || static_cast<std::size_t>(rs.rank) >= watch_.size()) {
      continue;
    }
    RankWatch& w = watch_[static_cast<std::size_t>(rs.rank)];

    // (a) FSM dwell: pending records exist and no transition since the
    // stamp was first observed. The comparison uses sample timestamps, so
    // the probe's transition-clock domain never matters — only whether the
    // stamp moved between samples.
    const std::uint64_t pending = PendingOccupancy(rs.state_occupancy);
    if (pending == 0 || !w.dwell_valid ||
        rs.last_transition_ns != w.dwell_stamp) {
      w.dwell_valid = true;
      w.dwell_stamp = rs.last_transition_ns;
      w.dwell_since_ts = cur.ts_ns;
      w.fsm_latched = false;
    } else if (!w.fsm_latched && cur.ts_ns - w.dwell_since_ts > stall_ns) {
      w.fsm_latched = true;
      Trip(rs.rank, -1, Engine::StallKind::kFsmDwell, cur);
    }

    // (b) flush no-progress: queue depth > 0, landed bytes frozen for K
    // consecutive samples AND stall_ms of wall time. Both bounds matter:
    // the streak proves the condition held across real samples, while the
    // duration keeps the horizon period-independent — at a fast sampling
    // period, K samples alone would flag any put slower than K periods
    // (a legitimately slow throttled store, a briefly descheduled worker)
    // as a stall.
    w.tiers.resize(rs.tiers.size());
    for (std::size_t i = 0; i < rs.tiers.size(); ++i) {
      TierWatch& tw = w.tiers[i];
      const bool stuck = tw.inited && rs.tiers[i].flush_queue_depth > 0 &&
                         rs.tiers[i].flush_bytes == tw.last_flush_bytes;
      if (stuck) {
        if (tw.streak == 0) tw.freeze_since_ts = cur.ts_ns;
        ++tw.streak;
        if (!tw.latched && tw.streak >= opts_.stall_windows &&
            cur.ts_ns - tw.freeze_since_ts >= stall_ns) {
          tw.latched = true;
          Trip(rs.rank, static_cast<int>(i),
               Engine::StallKind::kFlushNoProgress, cur);
        }
      } else {
        tw.streak = 0;
        tw.latched = false;
      }
      tw.last_flush_bytes = rs.tiers[i].flush_bytes;
      tw.inited = true;
    }

    // (c) reserve livelock: stale-plan counter rising window over window
    // means reservations keep re-planning without committing. Same dual
    // bound as (b): heavy-but-healthy churn can produce a stale replan in
    // every short window, so the run must also persist for stall_ms.
    const bool rising =
        w.stale_inited && rs.reserve_plans_stale > w.last_plans_stale;
    if (rising) {
      if (w.stale_streak == 0) w.stale_since_ts = cur.ts_ns;
      ++w.stale_streak;
      if (!w.reserve_latched && w.stale_streak >= opts_.stall_windows &&
          cur.ts_ns - w.stale_since_ts >= stall_ns) {
        w.reserve_latched = true;
        Trip(rs.rank, -1, Engine::StallKind::kReserveLivelock, cur);
      }
    } else {
      w.stale_streak = 0;
      w.reserve_latched = false;
    }
    w.last_plans_stale = rs.reserve_plans_stale;
    w.stale_inited = true;
  }
}

void TelemetrySampler::Trip(int rank, int tier, Engine::StallKind kind,
                            const TelemetrySample& cur) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  // Emitted from the sampler thread: the sink orders each track by
  // timestamp, so a cross-thread instant stays a valid trace.
  util::trace::Instant(util::trace::Kind::kHealth, "health:stall", rank, tier,
                       /*version=*/0, /*bytes=*/0,
                       static_cast<double>(kind),
                       static_cast<double>(cur.seq));
  if (opts_.strict) strict_tripped_.store(true, std::memory_order_relaxed);
  engine_.NoteStall(rank, kind);
  if (!opts_.out_path.empty() && !flight_dumped_.exchange(true)) {
    FlightDump();
  }
}

void TelemetrySampler::FlightDump() {
  const std::string& p = opts_.out_path;
  // Lock-free artifacts first: if the engine is wedged badly enough that
  // even its rank locks are stuck, the trace + window still land on disk
  // before the metrics snapshot (which takes each rank lock) can block.
  const util::Status trace_st = WriteChromeTrace(p + ".trace.json");
  if (!trace_st.ok()) {
    std::fprintf(stderr, "telemetry: %s\n", trace_st.ToString().c_str());
  }
  WriteFileOrWarn(p + ".window.json", TelemetryWindowJson(ring_, tier_names_),
                  "telemetry window");
  // Probe a fresh scrape (not ring_.Latest()): the ring's newest sample
  // predates the trip, so it would miss the stall counter the trip just
  // charged via NoteStall.
  WriteFileOrWarn(p + ".openmetrics.txt", OpenMetricsText(engine_),
                  "openmetrics");
  const util::Status metrics_st = WriteMetricsSnapshot(engine_, p + ".metrics.json");
  if (!metrics_st.ok()) {
    std::fprintf(stderr, "telemetry: %s\n", metrics_st.ToString().c_str());
  }
}

}  // namespace ckpt::core
