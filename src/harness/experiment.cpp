#include "harness/experiment.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>

#include "core/telemetry_sampler.hpp"
#include "core/telemetry_sink.hpp"
#include "storage/remote_store.hpp"
#include "core/tenant.hpp"
#include "core/trace_sink.hpp"
#include "util/clock.hpp"
#include "util/config.hpp"
#include "util/telemetry.hpp"

namespace ckpt::harness {

std::string ConfigName(Approach a, rtm::HintMode hints) {
  const char* h = "";
  switch (hints) {
    case rtm::HintMode::kNone: h = "No hints"; break;
    case rtm::HintMode::kSingle: h = "Single hint"; break;
    case rtm::HintMode::kAll: h = "All hints"; break;
  }
  return std::string(h) + ", " + to_string(a);
}

util::StatusOr<ExperimentResult> RunExperiment(const ExperimentConfig& cfg) {
  sim::Cluster cluster(cfg.topology);
  if (cfg.num_ranks > cluster.total_gpus()) {
    return util::InvalidArgument("more ranks than simulated GPUs");
  }

  // Durable tiers: in-memory object stores behind the NVMe / PFS bandwidth
  // models (benches avoid real disk I/O variance; the FileStore path is
  // exercised by tests and examples). Transient fault injection wraps the
  // SSD tier — i.e. the first durable tier of a custom stack.
  const auto faulty = [&cfg](std::shared_ptr<storage::ObjectStore> inner)
      -> std::shared_ptr<storage::ObjectStore> {
    if (cfg.ssd_fault_rate <= 0.0) return inner;
    storage::FaultyStore::Options fopts;
    fopts.seed = cfg.ssd_fault_seed;
    fopts.put_fail_rate = cfg.ssd_fault_rate;
    fopts.get_fail_rate = cfg.ssd_fault_rate;
    fopts.rate_fault_kind = storage::FaultKind::kTransient;
    return std::make_shared<storage::FaultyStore>(std::move(inner), fopts);
  };
  auto ssd = storage::MakeSsdStore(
      cluster.topology(), faulty(std::make_shared<storage::MemStore>()));
  auto pfs = storage::MakePfsStore(cluster.topology(),
                                   std::make_shared<storage::MemStore>());

  std::unique_ptr<core::Runtime> runtime;
  switch (cfg.approach) {
    case Approach::kScore: {
      core::EngineOptions opts;
      opts.gpu_cache_bytes = cfg.gpu_cache_bytes;
      opts.host_cache_bytes = cfg.host_cache_bytes;
      opts.eviction = cfg.eviction;
      opts.split_flush_prefetch = cfg.split_flush_prefetch;
      opts.discard_after_restore = cfg.discard_after_restore;
      opts.gpudirect = cfg.gpudirect;
      opts.terminal_tier = cfg.terminal_tier;
      if (!cfg.tiers.empty()) {
        core::TierStoreFactory factory = cfg.tier_store_factory;
        if (!factory) {
          factory = [&cluster, &faulty](std::string_view tier,
                                        std::string_view backend, int ordinal)
              -> util::StatusOr<std::shared_ptr<storage::ObjectStore>> {
            if (backend.substr(0, 5) == "s3://") {
              // Remote backends charge the fabric themselves; no bandwidth
              // decorator. The first durable tier still honors the harness
              // fault-injection knobs.
              auto remote =
                  storage::OpenRemoteBackend(backend, &cluster.topology());
              if (!remote.ok()) return remote.status();
              return ordinal == 0 ? faulty(std::move(*remote))
                                  : std::move(*remote);
            }
            if (!backend.empty() && backend != "mem") {
              return util::InvalidArgument(
                  "tier '" + std::string(tier) + "': the harness only builds "
                  "'mem' and 's3://' backends (pass a tier_store_factory for "
                  "others)");
            }
            std::shared_ptr<storage::ObjectStore> raw =
                std::make_shared<storage::MemStore>();
            if (ordinal == 0) {
              return storage::MakeSsdStore(cluster.topology(),
                                           faulty(std::move(raw)));
            }
            return storage::MakePfsStore(cluster.topology(), std::move(raw));
          };
        }
        auto stack =
            core::ParseTierStack(cfg.tiers, cfg.terminal_tier_name, factory);
        if (!stack.ok()) return stack.status();
        runtime = std::make_unique<core::Engine>(cluster, std::move(*stack),
                                                 opts, cfg.num_ranks);
        break;
      }
      runtime = std::make_unique<core::Engine>(cluster, ssd, pfs, opts,
                                               cfg.num_ranks);
      break;
    }
    case Approach::kUvm: {
      uvm::UvmRuntimeOptions opts;
      opts.uvm.device_cache_bytes = cfg.gpu_cache_bytes;
      opts.terminal_tier = cfg.terminal_tier;
      opts.discard_after_restore = cfg.discard_after_restore;
      opts.use_hints = cfg.shot.hint_mode != rtm::HintMode::kNone;
      runtime = std::make_unique<uvm::UvmRuntime>(cluster, ssd, pfs, opts,
                                                  cfg.num_ranks);
      break;
    }
    case Approach::kAdios: {
      adios::AdiosOptions opts;
      opts.host_buffer_bytes = cfg.host_cache_bytes * 2;  // BP5 pools are roomy
      opts.terminal_tier = cfg.terminal_tier;
      runtime = std::make_unique<adios::AdiosRuntime>(cluster, ssd, pfs, opts,
                                                      cfg.num_ranks);
      break;
    }
  }

  // Live telemetry: sample the Score engine's probe cells in the background
  // for the duration of the shot. Baselines expose no probes.
  auto* engine = dynamic_cast<core::Engine*>(runtime.get());
  std::unique_ptr<core::TelemetrySampler> sampler;
  if (engine != nullptr && util::telemetry::enabled()) {
    sampler = std::make_unique<core::TelemetrySampler>(
        *engine, core::TelemetrySampler::Options::FromGlobalConfig());
  }

  auto shot = rtm::RunShot(cluster, *runtime, cfg.shot, cfg.num_ranks);
  // Stop sampling before teardown: the final tick closes the window while
  // the flush workers and probe cells are still alive.
  if (sampler != nullptr) sampler->Stop();
  runtime->Shutdown();
  if (!shot.ok()) return shot.status();

  ExperimentResult result;
  // Snapshot the Score engine's metrics after the workers drain, while the
  // runtime is still alive. Baselines expose no RankMetrics.
  if (engine != nullptr) {
    result.metrics_json = core::MetricsSnapshotJson(*engine);
    result.critical_path_json = core::CriticalPathJson(*engine, shot->wall_s);
  }
  if (sampler != nullptr) {
    result.openmetrics_text = sampler->ScrapeOpenMetrics();
    result.watchdog_stalls = sampler->stalls_detected();
    // Healthy-run exposition: when an output prefix is configured and the
    // flight recorder did not already claim these names for the stall-time
    // snapshot, drop the end-of-run scrape + window there for scraping by
    // telemetry_check.
    const std::string& prefix = sampler->options().out_path;
    if (!prefix.empty() && !sampler->flight_dumped()) {
      const auto write = [](const std::string& path, const std::string& body) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        if (f) f.write(body.data(), static_cast<std::streamsize>(body.size()));
        if (!f) {
          std::fprintf(stderr, "harness: failed to write telemetry to '%s'\n",
                       path.c_str());
        }
      };
      write(prefix + ".openmetrics.txt", result.openmetrics_text);
      write(prefix + ".window.json",
            core::TelemetryWindowJson(sampler->ring(),
                                      core::TelemetryTierNames(*engine)));
    }
    if (sampler->strict_tripped()) {
      return util::IoError("telemetry watchdog detected " +
                           std::to_string(result.watchdog_stalls) +
                           " stall(s) in strict mode");
    }
  }
  result.shot = std::move(*shot);
  result.config_name = ConfigName(cfg.approach, cfg.shot.hint_mode);
  result.ckpt_MBps_mean = result.shot.MeanCkptThroughput() / 1e6;
  result.restore_MBps_mean = result.shot.MeanRestoreThroughput() / 1e6;
  result.ckpt_MBps_agg = result.shot.AggCkptThroughput() / 1e6;
  result.restore_MBps_agg = result.shot.AggRestoreThroughput() / 1e6;
  return result;
}

util::StatusOr<MultiTenantResult> RunMultiTenantExperiment(
    const MultiTenantConfig& cfg) {
  auto specs = core::ParseTenantSpecs(cfg.tenants);
  if (!specs.ok()) return specs.status();
  if (specs->size() != 2) {
    return util::InvalidArgument(
        "multi-tenant harness drives exactly two tenants (RTM + synthetic), "
        "got " + std::to_string(specs->size()));
  }
  if (cfg.ranks_per_tenant <= 0) {
    return util::InvalidArgument("ranks_per_tenant must be positive");
  }
  const int num_ranks = 2 * cfg.ranks_per_tenant;

  sim::Cluster cluster(cfg.topology);
  if (num_ranks > cluster.total_gpus()) {
    return util::InvalidArgument("more ranks than simulated GPUs");
  }

  core::EngineOptions opts;
  opts.gpu_cache_bytes = cfg.gpu_cache_bytes;
  opts.host_cache_bytes = cfg.host_cache_bytes;
  opts.eviction = cfg.eviction;
  opts.tenants = std::move(*specs);

  std::unique_ptr<core::Engine> engine;
  if (!cfg.tiers.empty()) {
    const core::TierStoreFactory factory =
        [&cluster](std::string_view tier, std::string_view backend, int ordinal)
        -> util::StatusOr<std::shared_ptr<storage::ObjectStore>> {
      if (backend.substr(0, 5) == "s3://") {
        return storage::OpenRemoteBackend(backend, &cluster.topology());
      }
      if (!backend.empty() && backend != "mem") {
        return util::InvalidArgument("tier '" + std::string(tier) +
                                     "': the multi-tenant harness only builds "
                                     "'mem' and 's3://' backends");
      }
      std::shared_ptr<storage::ObjectStore> raw =
          std::make_shared<storage::MemStore>();
      if (ordinal == 0) {
        return storage::MakeSsdStore(cluster.topology(), std::move(raw));
      }
      return storage::MakePfsStore(cluster.topology(), std::move(raw));
    };
    auto stack =
        core::ParseTierStack(cfg.tiers, cfg.terminal_tier_name, factory);
    if (!stack.ok()) return stack.status();
    engine = std::make_unique<core::Engine>(cluster, std::move(*stack), opts,
                                            num_ranks);
  } else {
    auto ssd = storage::MakeSsdStore(cluster.topology(),
                                     std::make_shared<storage::MemStore>());
    auto pfs = storage::MakePfsStore(cluster.topology(),
                                     std::make_shared<storage::MemStore>());
    engine = std::make_unique<core::Engine>(cluster, std::move(ssd),
                                            std::move(pfs), opts, num_ranks);
  }

  std::unique_ptr<core::TelemetrySampler> sampler;
  if (util::telemetry::enabled()) {
    sampler = std::make_unique<core::TelemetrySampler>(
        *engine, core::TelemetrySampler::Options::FromGlobalConfig());
  }

  // Tenant B: synthetic checkpoint/restore loop, one thread per rank of the
  // second block, concurrent with tenant A's RTM shot below.
  std::atomic<std::uint64_t> verify_failures{0};
  std::mutex synth_mu;
  util::Status synth_status = util::OkStatus();
  const auto record_synth_error = [&](const util::Status& st) {
    std::lock_guard lock(synth_mu);
    if (synth_status.ok()) synth_status = st;
  };
  const util::Stopwatch wall;
  std::vector<std::thread> synth;
  synth.reserve(static_cast<std::size_t>(cfg.ranks_per_tenant));
  for (int r = cfg.ranks_per_tenant; r < num_ranks; ++r) {
    synth.emplace_back([&, r] {
      auto buf = cluster.device(r).Allocate(cfg.synth_ckpt_bytes);
      if (!buf.ok()) {
        record_synth_error(buf.status());
        return;
      }
      sim::BytePtr p = *buf;
      for (int v = 0; v < cfg.synth_ckpts; ++v) {
        const auto ver = static_cast<core::Version>(v);
        rtm::FillPattern(r, ver, p, cfg.synth_ckpt_bytes);
        util::Status st = engine->Checkpoint(r, ver, p, cfg.synth_ckpt_bytes);
        if (!st.ok()) {
          record_synth_error(st);
          break;
        }
        if (cfg.synth_restore_every > 0 &&
            (v + 1) % cfg.synth_restore_every == 0) {
          (void)engine->PrefetchEnqueue(r, ver);  // hint traffic
          st = engine->Restore(r, ver, p, cfg.synth_ckpt_bytes);
          if (!st.ok()) {
            record_synth_error(st);
            break;
          }
          if (!rtm::CheckPattern(r, ver, p, cfg.synth_ckpt_bytes)) {
            verify_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      (void)engine->WaitForFlushes(r);
      (void)cluster.device(r).Free(p);
    });
  }

  // Tenant A: the RTM shot over the first rank block.
  auto shot = rtm::RunShot(cluster, *engine, cfg.shot, cfg.ranks_per_tenant);
  for (std::thread& t : synth) t.join();
  const double wall_s = wall.ElapsedSec();

  MultiTenantResult result;
  result.wall_s = wall_s;
  if (sampler != nullptr) {
    sampler->Stop();
    result.openmetrics_text = sampler->ScrapeOpenMetrics();
    result.watchdog_stalls = sampler->stalls_detected();
    const std::string& prefix = sampler->options().out_path;
    if (!prefix.empty() && !sampler->flight_dumped()) {
      const auto write = [](const std::string& path, const std::string& body) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        if (f) f.write(body.data(), static_cast<std::streamsize>(body.size()));
        if (!f) {
          std::fprintf(stderr, "harness: failed to write telemetry to '%s'\n",
                       path.c_str());
        }
      };
      write(prefix + ".openmetrics.txt", result.openmetrics_text);
      write(prefix + ".window.json",
            core::TelemetryWindowJson(sampler->ring(),
                                      core::TelemetryTierNames(*engine)));
    }
  }
  // Per-tenant attribution while the caches are still resident.
  const core::TenantRegistry& reg = engine->tenant_registry();
  for (core::TenantId id = 0; id < reg.count(); ++id) {
    const core::TenantCtx* t = reg.Get(id);
    TenantSummary s;
    s.name = t->spec.name;
    s.id = t->id;
    s.first_rank = t->first_rank;
    s.num_ranks = t->num_ranks;
    s.quota_bytes = t->spec.quota_bytes;
    s.cache_used_end = engine->TenantCacheUsed(id);
    for (int r = t->first_rank; r < t->first_rank + t->num_ranks; ++r) {
      const core::RankMetrics m = engine->MetricsSnapshot(r);
      s.bytes_checkpointed += m.bytes_checkpointed;
      s.bytes_restored += m.bytes_restored;
      s.reserve_quota_waits += m.reserve_quota_waits;
      for (const std::uint64_t b : m.evicted_bytes_from_tier) {
        s.evicted_bytes += b;
      }
    }
    result.tenants.push_back(std::move(s));
  }
  result.metrics_json = core::MetricsSnapshotJson(*engine);
  engine->Shutdown();
  if (!shot.ok()) return shot.status();
  {
    std::lock_guard lock(synth_mu);
    if (!synth_status.ok()) return synth_status;
  }
  if (sampler != nullptr && sampler->strict_tripped()) {
    return util::IoError("telemetry watchdog detected " +
                         std::to_string(result.watchdog_stalls) +
                         " stall(s) in strict mode");
  }
  result.shot = std::move(*shot);
  result.synth_verify_failures =
      verify_failures.load(std::memory_order_relaxed);
  return result;
}

BenchScale LoadBenchScale() {
  BenchScale scale;
  scale.num_ckpts = static_cast<int>(util::EnvInt("CKPT_BENCH_CKPTS", 384));
  scale.num_ranks = static_cast<int>(util::EnvInt("CKPT_BENCH_RANKS", 8));
  scale.interval = std::chrono::microseconds(
      util::EnvInt("CKPT_BENCH_INTERVAL_US", 1000));
  scale.fault_rate = util::EnvDouble("CKPT_BENCH_FAULT_RATE", 0.0);
  scale.fault_seed =
      static_cast<std::uint64_t>(util::EnvInt("CKPT_BENCH_FAULT_SEED", 42));
  scale.tiers = util::EnvString("CKPT_BENCH_TIERS", "");
  scale.terminal = util::EnvString("CKPT_BENCH_TERMINAL", "");
  return scale;
}

void PrintTableHeader(const std::string& title, const std::string& col_label) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-26s %-16s %14s %14s\n", "config", col_label.c_str(),
              "ckpt MB/s", "restore MB/s");
  std::printf("%.*s\n", 74,
              "--------------------------------------------------------------"
              "--------------------");
}

void PrintTableRow(const std::string& config, const std::string& variant,
                   double ckpt_MBps, double restore_MBps) {
  std::printf("%-26s %-16s %14.1f %14.1f\n", config.c_str(), variant.c_str(),
              ckpt_MBps, restore_MBps);
}

}  // namespace ckpt::harness
