// Experiment harness: builds the full stack (simulated cluster -> stores ->
// one of the three compared runtimes -> RTM shot driver) for one
// configuration cell of the paper's evaluation matrix, runs it, and returns
// the figures' metrics. Shared by every bench binary and the examples.
#pragma once

#include <memory>
#include <string>

#include "baselines/adios/adios_runtime.hpp"
#include "baselines/uvm/uvm_runtime.hpp"
#include "core/engine.hpp"
#include "core/tier_stack.hpp"
#include "rtm/workload.hpp"
#include "simgpu/cluster.hpp"
#include "storage/faulty_store.hpp"
#include "storage/mem_store.hpp"
#include "storage/throttled_store.hpp"

namespace ckpt::harness {

/// The compared approaches of §5.2 / Table 1.
enum class Approach : std::uint8_t { kAdios, kUvm, kScore };

[[nodiscard]] constexpr const char* to_string(Approach a) noexcept {
  switch (a) {
    case Approach::kAdios: return "ADIOS2";
    case Approach::kUvm: return "UVM";
    case Approach::kScore: return "Score";
  }
  return "?";
}

/// Table 1 notation, e.g. "All hints, Score".
[[nodiscard]] std::string ConfigName(Approach a, rtm::HintMode hints);

struct ExperimentConfig {
  Approach approach = Approach::kScore;
  rtm::ShotConfig shot;
  sim::TopologyConfig topology = sim::TopologyConfig::Scaled();
  int num_ranks = 8;

  // Runtime knobs shared with the paper's cache setup (§5.3.4). The same
  // GPU-cache budget is granted to every approach (Score's cache, UVM's
  // device cache); ADIOS2 has none by design.
  std::uint64_t gpu_cache_bytes = 4ull << 20;
  std::uint64_t host_cache_bytes = 32ull << 20;
  /// Default eviction policy; cache tiers of a `tiers` spec may override it
  /// per tier with a fourth `:policy` field.
  core::EvictionKind eviction = core::EvictionKind::kScore;
  bool split_flush_prefetch = false;
  bool discard_after_restore = false;
  bool gpudirect = false;  ///< Score engine only: GPUDirect Storage extension
  core::Tier terminal_tier = core::Tier::kSsd;

  /// Fault injection on the SSD tier (DESIGN.md §8): every put/get fails
  /// transiently with this probability, exercising the retry/degradation
  /// machinery under load. 0 disables the FaultyStore wrapper entirely.
  /// With a custom `tiers` spec the wrapper lands on the first durable
  /// tier's backend.
  double ssd_fault_rate = 0.0;
  std::uint64_t ssd_fault_seed = 42;

  /// N-tier stack spec for the Score engine ("name:kind[:arg[:policy]],..."
  /// — see core/tier_stack.hpp), e.g. "host:cache:32Mi,ssd:durable" for a
  /// host-only stack or "gpu:gpucache:4Mi:score,host:cache:32Mi:fifo,
  /// ssd:durable" for a mixed-policy hierarchy. Empty = the classic
  /// GPU -> host -> SSD [-> PFS] stack built from the knobs above. Only
  /// meaningful for Approach::kScore.
  std::string tiers;
  /// Terminal tier name for `tiers` (empty = its first durable tier).
  std::string terminal_tier_name;
  /// Test hook: overrides the store factory for `tiers` entries (e.g. to
  /// inject a FaultyStore on a chosen durable tier). The default factory
  /// builds in-memory stores behind the NVMe (first durable tier) / PFS
  /// (deeper tiers) bandwidth models, honoring ssd_fault_rate.
  core::TierStoreFactory tier_store_factory;
};

struct ExperimentResult {
  rtm::ShotResult shot;
  std::string config_name;
  double ckpt_MBps_mean = 0.0;     ///< mean per-rank checkpoint throughput
  double restore_MBps_mean = 0.0;  ///< mean per-rank restore throughput
  double ckpt_MBps_agg = 0.0;      ///< stacked over ranks (Fig. 9)
  double restore_MBps_agg = 0.0;
  /// Engine metrics snapshot (core::MetricsSnapshotJson) taken after the
  /// shot; empty for the baseline runtimes. Embedded verbatim in the bench
  /// run reports (CKPT_BENCH_REPORT).
  std::string metrics_json;
  /// Critical-path attribution (core::CriticalPathJson): the shot's wall
  /// time split into checkpoint / restore / blocked / compute per rank.
  /// Score engine only; embedded in the bench run reports.
  std::string critical_path_json;
  /// Final OpenMetrics scrape from the live-telemetry sampler; empty unless
  /// telemetry is enabled (CKPT_TELEMETRY=1 or util::telemetry::Configure).
  std::string openmetrics_text;
  /// Stalls the telemetry watchdog detected during the shot (0 = healthy).
  std::uint64_t watchdog_stalls = 0;
};

/// Builds the stack and runs one shot. Deterministic modulo thread timing.
util::StatusOr<ExperimentResult> RunExperiment(const ExperimentConfig& cfg);

// --- Multi-tenant service experiment (DESIGN.md §12) ---
//
// Two independent jobs share one Score engine: tenant A (first rank block)
// runs the RTM shot, tenant B (second block) runs a synthetic
// checkpoint/restore loop, concurrently. Exercises per-tenant quota
// admission, weighted bandwidth sharing, and tenant-labeled telemetry
// end-to-end.

struct MultiTenantConfig {
  sim::TopologyConfig topology = sim::TopologyConfig::Scaled();
  /// Ranks per tenant; the shared engine serves 2x this many ranks.
  int ranks_per_tenant = 4;
  /// `tenants=` spec (core/tenant.hpp grammar); must name exactly two
  /// tenants: first = RTM job, second = synthetic job.
  std::string tenants = "rtm:24Mi;synth:8Mi:0.5";
  std::uint64_t gpu_cache_bytes = 4ull << 20;
  std::uint64_t host_cache_bytes = 32ull << 20;
  core::EvictionKind eviction = core::EvictionKind::kScore;
  /// Optional N-tier stack spec (see ExperimentConfig::tiers).
  std::string tiers;
  std::string terminal_tier_name;
  /// Tenant A workload.
  rtm::ShotConfig shot;
  /// Tenant B workload: per rank, `synth_ckpts` checkpoints of
  /// `synth_ckpt_bytes`, restoring (and verifying) every
  /// `synth_restore_every`-th version.
  int synth_ckpts = 48;
  std::uint64_t synth_ckpt_bytes = 1ull << 20;
  int synth_restore_every = 4;
};

/// Per-tenant attribution of one multi-tenant run.
struct TenantSummary {
  std::string name;
  core::TenantId id = core::kNoTenant;
  int first_rank = 0;
  int num_ranks = 0;
  std::uint64_t quota_bytes = 0;
  std::uint64_t bytes_checkpointed = 0;
  std::uint64_t bytes_restored = 0;
  std::uint64_t reserve_quota_waits = 0;
  std::uint64_t evicted_bytes = 0;
  /// TenantCacheUsed at end of run, before shutdown (quota-conformance
  /// evidence: <= quota_bytes when a quota is set).
  std::uint64_t cache_used_end = 0;
};

struct MultiTenantResult {
  std::vector<TenantSummary> tenants;
  rtm::ShotResult shot;  ///< tenant A's RTM result
  double wall_s = 0.0;
  std::uint64_t synth_verify_failures = 0;
  std::string metrics_json;       ///< tenant-labeled MetricsSnapshotJson
  std::string openmetrics_text;   ///< final scrape (telemetry enabled only)
  std::uint64_t watchdog_stalls = 0;
};

/// Runs the two tenants' workloads concurrently against one shared engine.
util::StatusOr<MultiTenantResult> RunMultiTenantExperiment(
    const MultiTenantConfig& cfg);

/// Environment-driven scaling for the bench suite:
///   CKPT_BENCH_CKPTS     checkpoints per shot (default 384, the paper's
///                        count: 48 MB of scaled history per GPU, 12x the
///                        GPU cache and 1.5x the host cache)
///   CKPT_BENCH_RANKS     simulated GPUs (default 8)
///   CKPT_BENCH_INTERVAL_US  compute interval in microseconds (default 1000)
///   CKPT_BENCH_FAULT_RATE   transient SSD fault probability per op
///                           (default 0 = no fault injection)
///   CKPT_BENCH_FAULT_SEED   seed for the fault schedule (default 42)
///   CKPT_BENCH_TIERS        tier-stack spec for the Score engine, incl.
///                           per-tier eviction policies
///                           ("name:kind[:arg[:policy]],...";
///                           default empty = classic 4-tier stack)
///   CKPT_BENCH_TERMINAL     terminal tier name for CKPT_BENCH_TIERS
struct BenchScale {
  int num_ckpts;
  int num_ranks;
  std::chrono::nanoseconds interval;
  double fault_rate;
  std::uint64_t fault_seed;
  std::string tiers;
  std::string terminal;
};
[[nodiscard]] BenchScale LoadBenchScale();

/// Pretty row printer used by the figure benches: fixed-width columns with
/// rates in MB/s.
void PrintTableHeader(const std::string& title, const std::string& col_label);
void PrintTableRow(const std::string& config, const std::string& variant,
                   double ckpt_MBps, double restore_MBps);

}  // namespace ckpt::harness
