// Experiment harness: builds the full stack (simulated cluster -> stores ->
// one of the three compared runtimes -> RTM shot driver) for one
// configuration cell of the paper's evaluation matrix, runs it, and returns
// the figures' metrics. Shared by every bench binary and the examples.
#pragma once

#include <memory>
#include <string>

#include "baselines/adios/adios_runtime.hpp"
#include "baselines/uvm/uvm_runtime.hpp"
#include "core/engine.hpp"
#include "core/tier_stack.hpp"
#include "rtm/workload.hpp"
#include "simgpu/cluster.hpp"
#include "storage/faulty_store.hpp"
#include "storage/mem_store.hpp"
#include "storage/throttled_store.hpp"

namespace ckpt::harness {

/// The compared approaches of §5.2 / Table 1.
enum class Approach : std::uint8_t { kAdios, kUvm, kScore };

[[nodiscard]] constexpr const char* to_string(Approach a) noexcept {
  switch (a) {
    case Approach::kAdios: return "ADIOS2";
    case Approach::kUvm: return "UVM";
    case Approach::kScore: return "Score";
  }
  return "?";
}

/// Table 1 notation, e.g. "All hints, Score".
[[nodiscard]] std::string ConfigName(Approach a, rtm::HintMode hints);

struct ExperimentConfig {
  Approach approach = Approach::kScore;
  rtm::ShotConfig shot;
  sim::TopologyConfig topology = sim::TopologyConfig::Scaled();
  int num_ranks = 8;

  // Runtime knobs shared with the paper's cache setup (§5.3.4). The same
  // GPU-cache budget is granted to every approach (Score's cache, UVM's
  // device cache); ADIOS2 has none by design.
  std::uint64_t gpu_cache_bytes = 4ull << 20;
  std::uint64_t host_cache_bytes = 32ull << 20;
  /// Default eviction policy; cache tiers of a `tiers` spec may override it
  /// per tier with a fourth `:policy` field.
  core::EvictionKind eviction = core::EvictionKind::kScore;
  bool split_flush_prefetch = false;
  bool discard_after_restore = false;
  bool gpudirect = false;  ///< Score engine only: GPUDirect Storage extension
  core::Tier terminal_tier = core::Tier::kSsd;

  /// Fault injection on the SSD tier (DESIGN.md §8): every put/get fails
  /// transiently with this probability, exercising the retry/degradation
  /// machinery under load. 0 disables the FaultyStore wrapper entirely.
  /// With a custom `tiers` spec the wrapper lands on the first durable
  /// tier's backend.
  double ssd_fault_rate = 0.0;
  std::uint64_t ssd_fault_seed = 42;

  /// N-tier stack spec for the Score engine ("name:kind[:arg[:policy]],..."
  /// — see core/tier_stack.hpp), e.g. "host:cache:32Mi,ssd:durable" for a
  /// host-only stack or "gpu:gpucache:4Mi:score,host:cache:32Mi:fifo,
  /// ssd:durable" for a mixed-policy hierarchy. Empty = the classic
  /// GPU -> host -> SSD [-> PFS] stack built from the knobs above. Only
  /// meaningful for Approach::kScore.
  std::string tiers;
  /// Terminal tier name for `tiers` (empty = its first durable tier).
  std::string terminal_tier_name;
  /// Test hook: overrides the store factory for `tiers` entries (e.g. to
  /// inject a FaultyStore on a chosen durable tier). The default factory
  /// builds in-memory stores behind the NVMe (first durable tier) / PFS
  /// (deeper tiers) bandwidth models, honoring ssd_fault_rate.
  core::TierStoreFactory tier_store_factory;
};

struct ExperimentResult {
  rtm::ShotResult shot;
  std::string config_name;
  double ckpt_MBps_mean = 0.0;     ///< mean per-rank checkpoint throughput
  double restore_MBps_mean = 0.0;  ///< mean per-rank restore throughput
  double ckpt_MBps_agg = 0.0;      ///< stacked over ranks (Fig. 9)
  double restore_MBps_agg = 0.0;
  /// Engine metrics snapshot (core::MetricsSnapshotJson) taken after the
  /// shot; empty for the baseline runtimes. Embedded verbatim in the bench
  /// run reports (CKPT_BENCH_REPORT).
  std::string metrics_json;
  /// Critical-path attribution (core::CriticalPathJson): the shot's wall
  /// time split into checkpoint / restore / blocked / compute per rank.
  /// Score engine only; embedded in the bench run reports.
  std::string critical_path_json;
  /// Final OpenMetrics scrape from the live-telemetry sampler; empty unless
  /// telemetry is enabled (CKPT_TELEMETRY=1 or util::telemetry::Configure).
  std::string openmetrics_text;
  /// Stalls the telemetry watchdog detected during the shot (0 = healthy).
  std::uint64_t watchdog_stalls = 0;
};

/// Builds the stack and runs one shot. Deterministic modulo thread timing.
util::StatusOr<ExperimentResult> RunExperiment(const ExperimentConfig& cfg);

/// Environment-driven scaling for the bench suite:
///   CKPT_BENCH_CKPTS     checkpoints per shot (default 384, the paper's
///                        count: 48 MB of scaled history per GPU, 12x the
///                        GPU cache and 1.5x the host cache)
///   CKPT_BENCH_RANKS     simulated GPUs (default 8)
///   CKPT_BENCH_INTERVAL_US  compute interval in microseconds (default 1000)
///   CKPT_BENCH_FAULT_RATE   transient SSD fault probability per op
///                           (default 0 = no fault injection)
///   CKPT_BENCH_FAULT_SEED   seed for the fault schedule (default 42)
///   CKPT_BENCH_TIERS        tier-stack spec for the Score engine, incl.
///                           per-tier eviction policies
///                           ("name:kind[:arg[:policy]],...";
///                           default empty = classic 4-tier stack)
///   CKPT_BENCH_TERMINAL     terminal tier name for CKPT_BENCH_TIERS
struct BenchScale {
  int num_ckpts;
  int num_ranks;
  std::chrono::nanoseconds interval;
  double fault_rate;
  std::uint64_t fault_seed;
  std::string tiers;
  std::string terminal;
};
[[nodiscard]] BenchScale LoadBenchScale();

/// Pretty row printer used by the figure benches: fixed-width columns with
/// rates in MB/s.
void PrintTableHeader(const std::string& title, const std::string& col_label);
void PrintTableRow(const std::string& config, const std::string& variant,
                   double ckpt_MBps, double restore_MBps);

}  // namespace ckpt::harness
