// Checksumming ObjectStore decorator: every Put computes a CRC-32C and
// appends a small trailer to the stored object; every Get verifies it and
// fails with kIoError on mismatch. Layered *inside* the bandwidth decorators
// (the trailer rides along with the payload) so checksums survive either
// backing store. Detects torn writes, bit rot, and buffer-reuse bugs in
// higher layers — a checkpoint runtime must never silently restore garbage.
#pragma once

#include <atomic>
#include <memory>

#include "storage/object_store.hpp"

namespace ckpt::storage {

class ChecksumStore final : public ObjectStore {
 public:
  explicit ChecksumStore(std::shared_ptr<ObjectStore> inner)
      : inner_(std::move(inner)) {}

  util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override;
  util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override;
  /// Reports the *payload* size (trailer excluded), so callers see the same
  /// sizes they wrote.
  [[nodiscard]] util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const override;
  [[nodiscard]] bool Exists(const ObjectKey& key) const override {
    return inner_->Exists(key);
  }
  util::Status Erase(const ObjectKey& key) override { return inner_->Erase(key); }
  [[nodiscard]] std::vector<ObjectKey> Keys() const override {
    return inner_->Keys();
  }
  [[nodiscard]] std::uint64_t TotalBytes() const override {
    return inner_->TotalBytes();
  }
  // GetRange deliberately stays the whole-object default: verification needs
  // the full payload + trailer, so a true ranged read cannot be checked.
  [[nodiscard]] bool CollectStats(StoreStats& out) const override {
    return inner_->CollectStats(out);
  }

  /// Objects verified / failures detected (telemetry).
  [[nodiscard]] std::uint64_t verified() const noexcept { return verified_; }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }

  /// Bytes of trailer appended to each object.
  static constexpr std::uint64_t kTrailerBytes = 8;  // magic(4) + crc(4)

 private:
  std::shared_ptr<ObjectStore> inner_;
  std::atomic<std::uint64_t> verified_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace ckpt::storage
