// Durable object stores backing the two slowest tiers of the hierarchy:
// node-local NVMe (SSD tier) and the parallel file system (PFS tier).
// Checkpoints are monolithic immutable objects (paper §1, Limitations), so
// the interface is whole-object put/get keyed by (rank, version).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simgpu/types.hpp"
#include "util/status.hpp"

namespace ckpt::storage {

/// Identifies one checkpoint object: the producing process and its version.
struct ObjectKey {
  sim::Rank rank = 0;
  std::uint64_t version = 0;

  friend bool operator==(const ObjectKey&, const ObjectKey&) = default;
  friend auto operator<=>(const ObjectKey&, const ObjectKey&) = default;

  [[nodiscard]] std::string ToString() const {
    return "r" + std::to_string(rank) + "_v" + std::to_string(version);
  }
};

struct ObjectKeyHash {
  std::size_t operator()(const ObjectKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.rank) << 40) ^ k.version);
  }
};

/// Abstract whole-object store. Implementations must be thread-safe: the
/// flush pipeline writes while the prefetch engine reads concurrently.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Stores the object, overwriting any previous version under the same key.
  virtual util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                           std::uint64_t size) = 0;

  /// Reads the whole object into `dst` (which must hold at least its size).
  virtual util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                           std::uint64_t size) = 0;

  [[nodiscard]] virtual util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const = 0;
  [[nodiscard]] virtual bool Exists(const ObjectKey& key) const = 0;
  virtual util::Status Erase(const ObjectKey& key) = 0;

  /// All keys currently stored (diagnostics / tests).
  [[nodiscard]] virtual std::vector<ObjectKey> Keys() const = 0;

  /// Total bytes stored.
  [[nodiscard]] virtual std::uint64_t TotalBytes() const = 0;
};

}  // namespace ckpt::storage
