// Durable object stores backing the two slowest tiers of the hierarchy:
// node-local NVMe (SSD tier) and the parallel file system (PFS tier).
// Checkpoints are monolithic immutable objects (paper §1, Limitations), so
// the interface is whole-object put/get keyed by (rank, version).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "simgpu/types.hpp"
#include "util/status.hpp"

namespace ckpt::storage {

/// Identifies one checkpoint object: the producing process and its version.
struct ObjectKey {
  sim::Rank rank = 0;
  std::uint64_t version = 0;

  friend bool operator==(const ObjectKey&, const ObjectKey&) = default;
  friend auto operator<=>(const ObjectKey&, const ObjectKey&) = default;

  [[nodiscard]] std::string ToString() const {
    return "r" + std::to_string(rank) + "_v" + std::to_string(version);
  }
};

struct ObjectKeyHash {
  /// SplitMix64 finalizer: full-avalanche over 64 bits, so rank and version
  /// both influence every output bit. (The previous scheme shifted rank into
  /// bits >= 40, silently colliding keys once versions reached 2^40.)
  static constexpr std::uint64_t Mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }
  std::size_t operator()(const ObjectKey& k) const noexcept {
    const auto rank = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(k.rank));  // sign-extend negative ranks
    return static_cast<std::size_t>(Mix(Mix(rank) ^ k.version));
  }
};

/// Cumulative counters published by the remote-backend stores
/// (storage::RemoteStore, storage::AggregatingStore). Decorators forward
/// CollectStats to their inner store so the stats survive any wrapping
/// (fault injection, checksums, bandwidth throttling); plain stores report
/// nothing and the telemetry layer emits no remote families for them.
struct StoreStats {
  // RemoteStore: simulated S3 request traffic.
  std::uint64_t remote_puts = 0;          ///< completed multipart uploads
  std::uint64_t remote_gets = 0;          ///< whole/range object reads
  std::uint64_t remote_parts = 0;         ///< part uploads that succeeded
  std::uint64_t remote_part_retries = 0;  ///< extra part attempts (transients)
  std::uint64_t remote_put_bytes = 0;     ///< payload bytes uploaded
  std::uint64_t remote_get_bytes = 0;     ///< payload bytes downloaded
  // AggregatingStore: group-commit bookkeeping.
  std::uint64_t agg_member_puts = 0;      ///< per-rank puts accepted
  std::uint64_t agg_group_puts = 0;       ///< group objects written inward
  std::uint64_t agg_group_put_failures = 0;  ///< group writes that failed
  std::uint64_t agg_size_flushes = 0;     ///< groups sealed by size/count
  std::uint64_t agg_deadline_flushes = 0; ///< groups sealed by the deadline
  std::uint64_t agg_gets_from_pending = 0;  ///< reads served pre-seal
  std::uint64_t agg_group_reclaims = 0;   ///< group objects fully erased
  // Gauges (instantaneous, not monotonic).
  std::uint64_t agg_pending_members = 0;  ///< members buffered, not yet put
  std::uint64_t agg_pending_bytes = 0;    ///< bytes buffered, not yet put

  void Merge(const StoreStats& o) noexcept {
    remote_puts += o.remote_puts;
    remote_gets += o.remote_gets;
    remote_parts += o.remote_parts;
    remote_part_retries += o.remote_part_retries;
    remote_put_bytes += o.remote_put_bytes;
    remote_get_bytes += o.remote_get_bytes;
    agg_member_puts += o.agg_member_puts;
    agg_group_puts += o.agg_group_puts;
    agg_group_put_failures += o.agg_group_put_failures;
    agg_size_flushes += o.agg_size_flushes;
    agg_deadline_flushes += o.agg_deadline_flushes;
    agg_gets_from_pending += o.agg_gets_from_pending;
    agg_group_reclaims += o.agg_group_reclaims;
    agg_pending_members += o.agg_pending_members;
    agg_pending_bytes += o.agg_pending_bytes;
  }
};

/// Abstract whole-object store. Implementations must be thread-safe: the
/// flush pipeline writes while the prefetch engine reads concurrently.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Stores the object, overwriting any previous version under the same key.
  virtual util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                           std::uint64_t size) = 0;

  /// Reads the whole object into `dst` (which must hold at least its size).
  virtual util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                           std::uint64_t size) = 0;

  [[nodiscard]] virtual util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const = 0;
  [[nodiscard]] virtual bool Exists(const ObjectKey& key) const = 0;
  virtual util::Status Erase(const ObjectKey& key) = 0;

  /// All keys currently stored (diagnostics / tests).
  [[nodiscard]] virtual std::vector<ObjectKey> Keys() const = 0;

  /// Total bytes stored.
  [[nodiscard]] virtual std::uint64_t TotalBytes() const = 0;

  /// Reads `len` bytes starting at `offset` of the object into `dst`. The
  /// default reads the whole object through Get() and slices — correct for
  /// every store (and for decorators it keeps their Get-side behaviour,
  /// e.g. checksum verification). Stores with cheap random access
  /// (MemStore, FileStore, RemoteStore) override it; the aggregation layer
  /// depends on it to restore one member out of a group object.
  virtual util::Status GetRange(const ObjectKey& key, std::uint64_t offset,
                                sim::BytePtr dst, std::uint64_t len) {
    auto size = Size(key);
    if (!size.ok()) return size.status();
    if (offset + len > *size || offset + len < offset) {
      return util::InvalidArgument("GetRange: [" + std::to_string(offset) +
                                   ", +" + std::to_string(len) +
                                   ") outside object " + key.ToString());
    }
    std::vector<std::byte> whole(static_cast<std::size_t>(*size));
    if (util::Status st = Get(key, whole.data(), *size); !st.ok()) return st;
    std::memcpy(dst, whole.data() + offset, static_cast<std::size_t>(len));
    return util::OkStatus();
  }

  /// Fills `out` with the store's remote/aggregation counters, returning
  /// true when the store (or, for decorators, anything beneath it) has any
  /// to report. The default — plain local stores — reports nothing.
  [[nodiscard]] virtual bool CollectStats(StoreStats& out) const {
    (void)out;
    return false;
  }
};

}  // namespace ckpt::storage
