// In-memory ObjectStore. Used as the backing medium for the simulated SSD
// and PFS tiers in benches (the bandwidth model supplies the timing; see
// ThrottledStore) and directly in unit tests.
#pragma once

#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/object_store.hpp"

namespace ckpt::storage {

class MemStore final : public ObjectStore {
 public:
  util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override;
  util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override;
  [[nodiscard]] util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const override;
  [[nodiscard]] bool Exists(const ObjectKey& key) const override;
  util::Status Erase(const ObjectKey& key) override;
  [[nodiscard]] std::vector<ObjectKey> Keys() const override;
  [[nodiscard]] std::uint64_t TotalBytes() const override;
  util::Status GetRange(const ObjectKey& key, std::uint64_t offset,
                        sim::BytePtr dst, std::uint64_t len) override;

 private:
  mutable std::mutex mu_;
  std::unordered_map<ObjectKey, std::vector<std::byte>, ObjectKeyHash> objects_;
};

}  // namespace ckpt::storage
