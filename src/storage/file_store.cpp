#include "storage/file_store.hpp"

#include <cstdio>
#include <string>
#include <system_error>

namespace ckpt::storage {

namespace fs = std::filesystem;

namespace {

/// Parses "r<rank>_v<version>.ckpt"; returns false on foreign files.
bool ParseName(const std::string& name, ObjectKey& key) {
  int rank = 0;
  unsigned long long version = 0;
  // Strict match: must consume the whole name.
  int consumed = 0;
  if (std::sscanf(name.c_str(), "r%d_v%llu.ckpt%n", &rank, &version, &consumed) != 2) {
    return false;
  }
  if (static_cast<std::size_t>(consumed) != name.size()) return false;
  key = ObjectKey{rank, version};
  return true;
}

}  // namespace

util::StatusOr<std::unique_ptr<FileStore>> FileStore::Open(const fs::path& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return util::IoError("create_directories(" + root.string() + "): " + ec.message());
  }
  auto store = std::unique_ptr<FileStore>(new FileStore(root));
  // Iterate with the error_code overloads throughout: the range-for form
  // uses the *throwing* increment (the constructor-time `ec` can never fire
  // again), and is_regular_file()/file_size() throw when a concurrently
  // deleted entry vanishes mid-scan. A file that disappears between steps is
  // simply skipped — it no longer exists, so it does not belong in the index.
  fs::directory_iterator it(root, ec);
  if (ec) {
    return util::IoError("directory_iterator(" + root.string() +
                         "): " + ec.message());
  }
  for (const fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) {
      return util::IoError("scan of " + root.string() + ": " + ec.message());
    }
    const fs::directory_entry& entry = *it;
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    ObjectKey key;
    if (!ParseName(entry.path().filename().string(), key)) continue;
    const std::uintmax_t size = entry.file_size(entry_ec);
    if (entry_ec) continue;
    store->index_[key] = size;
  }
  return store;
}

fs::path FileStore::PathFor(const ObjectKey& key) const {
  return root_ / (key.ToString() + ".ckpt");
}

util::Status FileStore::Put(const ObjectKey& key, sim::ConstBytePtr data,
                            std::uint64_t size) {
  if (data == nullptr && size > 0) return util::InvalidArgument("Put: null data");
  const fs::path path = PathFor(key);
  // Write to a temp file then rename, so readers never observe a torn
  // object. The temp name must be unique per writer: concurrent Puts of the
  // same key sharing one "<path>.tmp" would interleave their writes and
  // rename a torn mix into place, defeating the scheme.
  const fs::path tmp =
      path.string() + "." +
      std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed)) +
      ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return util::IoError("fopen(" + tmp.string() + ") failed");
    const std::size_t written = size ? std::fwrite(data, 1, size, f) : 0;
    const int close_rc = std::fclose(f);
    if (written != size || close_rc != 0) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return util::IoError("short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return util::IoError("rename to " + path.string() + ": " + ec.message());
  std::lock_guard lock(mu_);
  index_[key] = size;
  return util::OkStatus();
}

util::Status FileStore::Get(const ObjectKey& key, sim::BytePtr dst,
                            std::uint64_t size) {
  std::uint64_t object_size = 0;
  {
    std::lock_guard lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return util::NotFound("object " + key.ToString());
    object_size = it->second;
  }
  if (size < object_size) {
    return util::InvalidArgument("Get: buffer smaller than object " + key.ToString());
  }
  const fs::path path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // The file can legitimately vanish between the index lookup above and
    // the open: a concurrent Erase won the race. Re-check the index and
    // report that as NotFound, not IoError.
    std::lock_guard lock(mu_);
    if (index_.find(key) == index_.end()) {
      return util::NotFound("object " + key.ToString());
    }
    return util::IoError("fopen(" + path.string() + ") failed");
  }
  const std::size_t read = object_size ? std::fread(dst, 1, object_size, f) : 0;
  std::fclose(f);
  if (read != object_size) return util::IoError("short read from " + path.string());
  return util::OkStatus();
}

util::Status FileStore::GetRange(const ObjectKey& key, std::uint64_t offset,
                                 sim::BytePtr dst, std::uint64_t len) {
  std::uint64_t object_size = 0;
  {
    std::lock_guard lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return util::NotFound("object " + key.ToString());
    object_size = it->second;
  }
  if (offset + len > object_size || offset + len < offset) {
    return util::InvalidArgument("GetRange: out of bounds for " +
                                 key.ToString());
  }
  const fs::path path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::lock_guard lock(mu_);
    if (index_.find(key) == index_.end()) {
      return util::NotFound("object " + key.ToString());
    }
    return util::IoError("fopen(" + path.string() + ") failed");
  }
  std::size_t read = 0;
  if (len > 0 && std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
    read = std::fread(dst, 1, len, f);
  }
  std::fclose(f);
  if (read != len) return util::IoError("short read from " + path.string());
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> FileStore::Size(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return util::NotFound("object " + key.ToString());
  return it->second;
}

bool FileStore::Exists(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  return index_.find(key) != index_.end();
}

util::Status FileStore::Erase(const ObjectKey& key) {
  {
    std::lock_guard lock(mu_);
    if (index_.erase(key) == 0) return util::NotFound("object " + key.ToString());
  }
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  if (ec) return util::IoError("remove: " + ec.message());
  return util::OkStatus();
}

std::vector<ObjectKey> FileStore::Keys() const {
  std::lock_guard lock(mu_);
  std::vector<ObjectKey> keys;
  keys.reserve(index_.size());
  for (const auto& [k, v] : index_) keys.push_back(k);
  return keys;
}

std::uint64_t FileStore::TotalBytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [k, v] : index_) total += v;
  return total;
}

}  // namespace ckpt::storage
