#include "storage/file_store.hpp"

#include <cstdio>
#include <string>
#include <system_error>

namespace ckpt::storage {

namespace fs = std::filesystem;

namespace {

/// Parses "r<rank>_v<version>.ckpt"; returns false on foreign files.
bool ParseName(const std::string& name, ObjectKey& key) {
  int rank = 0;
  unsigned long long version = 0;
  // Strict match: must consume the whole name.
  int consumed = 0;
  if (std::sscanf(name.c_str(), "r%d_v%llu.ckpt%n", &rank, &version, &consumed) != 2) {
    return false;
  }
  if (static_cast<std::size_t>(consumed) != name.size()) return false;
  key = ObjectKey{rank, version};
  return true;
}

}  // namespace

util::StatusOr<std::unique_ptr<FileStore>> FileStore::Open(const fs::path& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return util::IoError("create_directories(" + root.string() + "): " + ec.message());
  }
  auto store = std::unique_ptr<FileStore>(new FileStore(root));
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    ObjectKey key;
    if (ParseName(entry.path().filename().string(), key)) {
      store->index_[key] = entry.file_size();
    }
  }
  return store;
}

fs::path FileStore::PathFor(const ObjectKey& key) const {
  return root_ / (key.ToString() + ".ckpt");
}

util::Status FileStore::Put(const ObjectKey& key, sim::ConstBytePtr data,
                            std::uint64_t size) {
  if (data == nullptr && size > 0) return util::InvalidArgument("Put: null data");
  const fs::path path = PathFor(key);
  // Write to a temp file then rename, so readers never observe a torn object.
  const fs::path tmp = path.string() + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) return util::IoError("fopen(" + tmp.string() + ") failed");
    const std::size_t written = size ? std::fwrite(data, 1, size, f) : 0;
    const int close_rc = std::fclose(f);
    if (written != size || close_rc != 0) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return util::IoError("short write to " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return util::IoError("rename to " + path.string() + ": " + ec.message());
  std::lock_guard lock(mu_);
  index_[key] = size;
  return util::OkStatus();
}

util::Status FileStore::Get(const ObjectKey& key, sim::BytePtr dst,
                            std::uint64_t size) {
  std::uint64_t object_size = 0;
  {
    std::lock_guard lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return util::NotFound("object " + key.ToString());
    object_size = it->second;
  }
  if (size < object_size) {
    return util::InvalidArgument("Get: buffer smaller than object " + key.ToString());
  }
  const fs::path path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return util::IoError("fopen(" + path.string() + ") failed");
  const std::size_t read = object_size ? std::fread(dst, 1, object_size, f) : 0;
  std::fclose(f);
  if (read != object_size) return util::IoError("short read from " + path.string());
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> FileStore::Size(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return util::NotFound("object " + key.ToString());
  return it->second;
}

bool FileStore::Exists(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  return index_.find(key) != index_.end();
}

util::Status FileStore::Erase(const ObjectKey& key) {
  {
    std::lock_guard lock(mu_);
    if (index_.erase(key) == 0) return util::NotFound("object " + key.ToString());
  }
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  if (ec) return util::IoError("remove: " + ec.message());
  return util::OkStatus();
}

std::vector<ObjectKey> FileStore::Keys() const {
  std::lock_guard lock(mu_);
  std::vector<ObjectKey> keys;
  keys.reserve(index_.size());
  for (const auto& [k, v] : index_) keys.push_back(k);
  return keys;
}

std::uint64_t FileStore::TotalBytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [k, v] : index_) total += v;
  return total;
}

}  // namespace ckpt::storage
