#include "storage/mem_store.hpp"

namespace ckpt::storage {

util::Status MemStore::Put(const ObjectKey& key, sim::ConstBytePtr data,
                           std::uint64_t size) {
  if (data == nullptr && size > 0) return util::InvalidArgument("Put: null data");
  std::vector<std::byte> copy(data, data + size);
  std::lock_guard lock(mu_);
  objects_[key] = std::move(copy);
  return util::OkStatus();
}

util::Status MemStore::Get(const ObjectKey& key, sim::BytePtr dst,
                           std::uint64_t size) {
  std::unique_lock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return util::NotFound("object " + key.ToString());
  }
  if (size < it->second.size()) {
    return util::InvalidArgument("Get: buffer smaller than object " + key.ToString());
  }
  // Copy under the lock: Erase of the same key must not race the memcpy.
  std::memcpy(dst, it->second.data(), it->second.size());
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> MemStore::Size(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return util::NotFound("object " + key.ToString());
  return static_cast<std::uint64_t>(it->second.size());
}

bool MemStore::Exists(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  return objects_.find(key) != objects_.end();
}

util::Status MemStore::Erase(const ObjectKey& key) {
  std::lock_guard lock(mu_);
  if (objects_.erase(key) == 0) return util::NotFound("object " + key.ToString());
  return util::OkStatus();
}

std::vector<ObjectKey> MemStore::Keys() const {
  std::lock_guard lock(mu_);
  std::vector<ObjectKey> keys;
  keys.reserve(objects_.size());
  for (const auto& [k, v] : objects_) keys.push_back(k);
  return keys;
}

util::Status MemStore::GetRange(const ObjectKey& key, std::uint64_t offset,
                                sim::BytePtr dst, std::uint64_t len) {
  std::lock_guard lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return util::NotFound("object " + key.ToString());
  if (offset + len > it->second.size() || offset + len < offset) {
    return util::InvalidArgument("GetRange: out of bounds for " +
                                 key.ToString());
  }
  std::memcpy(dst, it->second.data() + offset, static_cast<std::size_t>(len));
  return util::OkStatus();
}

std::uint64_t MemStore::TotalBytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [k, v] : objects_) total += v.size();
  return total;
}

}  // namespace ckpt::storage
