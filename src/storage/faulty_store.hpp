// Fault-injecting decorator for object stores. Wraps a durable tier (SSD /
// PFS) and makes it fail on a deterministic, seeded schedule so the engine's
// retry / degradation machinery can be exercised reproducibly: in production
// the SSD fills up and the PFS times out, and the async flush pipelines are
// exactly where such failures hide.
//
// Fault vocabulary:
//   * transient  -> kUnavailable  (retry may succeed: busy queue, timeout)
//   * permanent  -> kIoError      (retry is pointless: dead or full device);
//     by default a permanent fault "bricks" the store — every subsequent
//     operation fails until SetDown(false) revives it.
//
// Schedules compose (checked in order: down-state, forced FailNext budget,
// per-op index list, Bernoulli rate). All randomness derives from the seed
// via util/rng.hpp, so a fixed seed and op sequence reproduce the exact same
// fault pattern.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <random>
#include <vector>

#include "storage/object_store.hpp"
#include "util/rng.hpp"

namespace ckpt::storage {

enum class FaultKind : std::uint8_t { kNone = 0, kTransient, kPermanent };
enum class FaultOp : std::uint8_t { kPut = 0, kGet };

class FaultyStore final : public ObjectStore {
 public:
  struct Options {
    std::uint64_t seed = 1;

    /// Bernoulli faults: each put/get independently fails with this
    /// probability (deterministic for a fixed seed and op order).
    double put_fail_rate = 0.0;
    double get_fail_rate = 0.0;
    FaultKind rate_fault_kind = FaultKind::kTransient;

    /// Explicit schedule: the listed 1-based operation indices fail
    /// (puts and gets are counted independently).
    std::vector<std::uint64_t> fail_puts;
    std::vector<std::uint64_t> fail_gets;
    FaultKind scheduled_fault_kind = FaultKind::kTransient;

    /// A permanent fault takes the whole store down (disk-full / device
    /// death): every later op fails with kIoError until SetDown(false).
    bool permanent_is_terminal = true;

    /// Latency spikes: with probability `spike_rate` an op stalls for
    /// `spike` before executing (degraded-but-working device).
    double spike_rate = 0.0;
    std::chrono::microseconds spike{0};
  };

  FaultyStore(std::shared_ptr<ObjectStore> inner, Options options);

  // --- Manual controls (tests / benches) ---
  /// Forces the next `count` operations of type `op` to fail with `kind`.
  /// Forced faults take precedence over the seeded schedules.
  void FailNext(FaultOp op, FaultKind kind, std::uint64_t count = 1);
  /// Forces the store down (every op fails permanently) or revives it.
  void SetDown(bool down);

  [[nodiscard]] bool down() const;
  [[nodiscard]] std::uint64_t puts_attempted() const;
  [[nodiscard]] std::uint64_t gets_attempted() const;
  [[nodiscard]] std::uint64_t faults_injected() const;

  // --- ObjectStore ---
  util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override;
  util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override;
  [[nodiscard]] util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const override;
  [[nodiscard]] bool Exists(const ObjectKey& key) const override;
  util::Status Erase(const ObjectKey& key) override;
  [[nodiscard]] std::vector<ObjectKey> Keys() const override;
  [[nodiscard]] std::uint64_t TotalBytes() const override;
  util::Status GetRange(const ObjectKey& key, std::uint64_t offset,
                        sim::BytePtr dst, std::uint64_t len) override;
  [[nodiscard]] bool CollectStats(StoreStats& out) const override;

 private:
  /// Decides the fault for the op with 1-based index `idx`; advances the
  /// seeded draws and the forced budgets. Requires mu_ held. Returns the
  /// fault kind plus the spike to apply (zero when none).
  struct Decision {
    FaultKind kind = FaultKind::kNone;
    std::chrono::microseconds stall{0};
  };
  Decision Decide(FaultOp op, std::uint64_t idx);
  util::Status Inject(FaultOp op, FaultKind kind, std::uint64_t idx);

  std::shared_ptr<ObjectStore> inner_;
  Options options_;

  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t forced_left_[2] = {0, 0};       // indexed by FaultOp
  FaultKind forced_kind_[2] = {FaultKind::kNone, FaultKind::kNone};
  bool down_ = false;
};

}  // namespace ckpt::storage
