// S3-shaped remote object store terminating the hierarchy beyond the PFS:
// checkpoints leave the node over the simulated fabric toward a bucket that
// charges per *request* (fixed round-trip latency) and per *byte* (the
// shared uplink). Large objects upload as parallel multipart puts — parts of
// `part_bytes` with at most `max_inflight` in flight — so the per-part
// latency pipelines instead of accumulating, exactly how production S3
// clients hide their round trips. Each part retries transient faults with
// util::RetryWithBackoff, independently of the engine-level flush retry
// around the whole Put.
//
// Selected from the `tiers=` spec as a durable backend:
//   remote:durable:s3://bucket?part=1Mi&inflight=4&lat_us=200&group=8
// Options after '?' (all optional, '&'-separated):
//   part=<size>       multipart part size (default 1Mi)
//   inflight=<n>      max concurrent part uploads per Put (default 4)
//   lat_us=<us>       per-request round-trip latency (default 200)
//   fail=<p>          transient per-part-attempt fault probability (default 0)
//   seed=<n>          fault schedule seed (default 1)
//   group=<n>         aggregate n member puts per group object (default 0 =
//                     aggregation off; see storage/aggregating_store.hpp)
//   group_bytes=<sz>  also seal a group at this many buffered bytes
//   deadline_ms=<ms>  flush a partial group after this long (default 50)
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "simgpu/topology.hpp"
#include "storage/object_store.hpp"
#include "util/retry.hpp"

namespace ckpt::storage {

/// Parsed form of an "s3://bucket[?opts]" backend spec.
struct RemoteOptions {
  std::string bucket;
  std::uint64_t part_bytes = 1ull << 20;
  int max_inflight = 4;
  std::chrono::microseconds request_latency{200};
  double part_fail_rate = 0.0;
  std::uint64_t seed = 1;
  util::RetryPolicy part_retry{};
  // Aggregation knobs, consumed by OpenRemoteBackend (not RemoteStore).
  std::uint64_t group_members = 0;  ///< 0 = aggregation off
  std::uint64_t group_bytes = 0;    ///< 0 = no byte trigger
  std::chrono::milliseconds group_deadline{50};

  /// Parses "s3://bucket[?opt=val&...]". kInvalidArgument on anything else.
  static util::StatusOr<RemoteOptions> Parse(std::string_view spec);
};

class RemoteStore final : public ObjectStore {
 public:
  /// `topo` supplies the fabric the parts are charged on (the shared PFS /
  /// node-egress uplink); nullptr skips bandwidth charging (unit tests).
  RemoteStore(RemoteOptions options, const sim::Topology* topo);

  util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override;
  util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override;
  [[nodiscard]] util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const override;
  [[nodiscard]] bool Exists(const ObjectKey& key) const override;
  util::Status Erase(const ObjectKey& key) override;
  [[nodiscard]] std::vector<ObjectKey> Keys() const override;
  [[nodiscard]] std::uint64_t TotalBytes() const override;
  util::Status GetRange(const ObjectKey& key, std::uint64_t offset,
                        sim::BytePtr dst, std::uint64_t len) override;
  [[nodiscard]] bool CollectStats(StoreStats& out) const override;

  [[nodiscard]] const RemoteOptions& options() const noexcept {
    return options_;
  }

 private:
  /// One simulated request: round-trip latency plus `bytes` on the fabric.
  void ChargeRequest(std::uint64_t bytes) const;
  /// Uploads one part with transient-fault injection; called under retry.
  util::Status PutPart(const ObjectKey& key, std::uint64_t part_index,
                       std::uint64_t attempt_salt, std::uint64_t bytes);

  RemoteOptions options_;
  const sim::Topology* topo_;  // may be null (tests)

  mutable std::mutex mu_;
  std::unordered_map<ObjectKey, std::vector<std::byte>, ObjectKeyHash> objects_;

  // Stats (mu_-free: atomically incremented from part workers).
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> gets_{0};
  std::atomic<std::uint64_t> parts_{0};
  std::atomic<std::uint64_t> part_retries_{0};
  std::atomic<std::uint64_t> put_bytes_{0};
  std::atomic<std::uint64_t> get_bytes_{0};
};

/// Builds the store stack an "s3://..." backend spec describes: a
/// RemoteStore, wrapped in an AggregatingStore when the spec sets group
/// options. This is the entry point TierStoreFactory implementations use.
util::StatusOr<std::shared_ptr<ObjectStore>> OpenRemoteBackend(
    std::string_view spec, const sim::Topology* topo);

}  // namespace ckpt::storage
