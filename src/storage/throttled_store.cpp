#include "storage/throttled_store.hpp"

#include "simgpu/copy.hpp"

namespace ckpt::storage {

std::shared_ptr<ObjectStore> MakeSsdStore(const sim::Topology& topo,
                                          std::shared_ptr<ObjectStore> inner) {
  auto charge = [&topo](const ObjectKey& key, std::uint64_t size) {
    sim::ChargeNvme(topo, key.rank, size);
  };
  return std::make_shared<ThrottledStore>(std::move(inner), charge, charge);
}

std::shared_ptr<ObjectStore> MakePfsStore(const sim::Topology& topo,
                                          std::shared_ptr<ObjectStore> inner) {
  auto charge = [&topo](const ObjectKey&, std::uint64_t size) {
    sim::ChargePfs(topo, size);
  };
  return std::make_shared<ThrottledStore>(std::move(inner), charge, charge);
}

}  // namespace ckpt::storage
