// File-backed ObjectStore: one file per checkpoint object under a root
// directory. This is the persistence path used when durability across the
// process lifetime matters (examples, the WAIT-mode persistence scenario).
#pragma once

#include <atomic>
#include <filesystem>
#include <mutex>
#include <unordered_map>

#include "storage/object_store.hpp"

namespace ckpt::storage {

class FileStore final : public ObjectStore {
 public:
  /// Creates `root` if needed. Existing "*.ckpt" files are indexed, so a
  /// store can be reopened over a previous run's data (restart scenarios).
  static util::StatusOr<std::unique_ptr<FileStore>> Open(
      const std::filesystem::path& root);

  util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override;
  util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override;
  [[nodiscard]] util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const override;
  [[nodiscard]] bool Exists(const ObjectKey& key) const override;
  util::Status Erase(const ObjectKey& key) override;
  [[nodiscard]] std::vector<ObjectKey> Keys() const override;
  [[nodiscard]] std::uint64_t TotalBytes() const override;
  util::Status GetRange(const ObjectKey& key, std::uint64_t offset,
                        sim::BytePtr dst, std::uint64_t len) override;

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  explicit FileStore(std::filesystem::path root) : root_(std::move(root)) {}

  [[nodiscard]] std::filesystem::path PathFor(const ObjectKey& key) const;

  std::filesystem::path root_;
  mutable std::mutex mu_;
  std::unordered_map<ObjectKey, std::uint64_t, ObjectKeyHash> index_;  // key -> size
  std::atomic<std::uint64_t> tmp_seq_{0};  // per-writer unique temp names
};

}  // namespace ckpt::storage
