// Group-commit decorator for remote durable tiers: coalesces many small
// per-rank checkpoint objects into fewer, larger *group* objects before the
// terminal put ("Towards Aggregated Asynchronous Checkpointing" — small-
// object traffic is what kills object stores at production scale). A Put is
// acknowledged once the member is sealed into the open group buffer; the
// group goes inward as one object when it reaches `group_members` members
// (or `group_bytes` bytes), or when the oldest buffered member has waited
// `deadline` — so the extra durability window of group commit is bounded.
//
// Index: every member key maps to (group object, offset, size), so Get /
// Exists / Size / Erase keep resolving per rank+version. Reads of members
// whose group has not landed yet are served from the buffer; landed groups
// are read with a ranged GET of just the member's bytes. Erase drops the
// member's index entry immediately; the group object itself is reclaimed
// once its last member is erased (until then erased members cost dead bytes
// inside the group — the usual space amplification of log-structured
// aggregation).
//
// Failure semantics: a group put that fails after the inner store's own
// retries stays buffered and is retried by the deadline flusher, but the
// members were already acknowledged — like any write-back cache, a crash in
// that window loses the buffered members. The engine's durable flags track
// the *store's* acknowledgement, so this is a deliberate relaxation that
// the group deadline keeps bounded (and benches measure).
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/object_store.hpp"

namespace ckpt::storage {

class AggregatingStore final : public ObjectStore {
 public:
  struct Options {
    /// Seal the open group at this many live members (0 = no count trigger).
    std::uint64_t group_members = 8;
    /// Seal the open group at this many buffered bytes (0 = no byte trigger).
    std::uint64_t group_bytes = 0;
    /// Flush a partial group this long after its first member arrived.
    /// Zero disables the background flusher (tests drive Flush() manually).
    std::chrono::milliseconds deadline{50};
  };

  /// Synthetic rank of group object keys. Real ranks are >= 0, so group
  /// objects can never collide with member keys in the inner store.
  static constexpr sim::Rank kGroupRank = -1;

  AggregatingStore(std::shared_ptr<ObjectStore> inner, Options options);
  ~AggregatingStore() override;

  /// Seals and writes the open group (and retries any failed ones) now.
  /// Returns the first error; buffered members stay queued on failure.
  util::Status Flush();

  // --- ObjectStore ---
  util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override;
  util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override;
  [[nodiscard]] util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const override;
  [[nodiscard]] bool Exists(const ObjectKey& key) const override;
  util::Status Erase(const ObjectKey& key) override;
  [[nodiscard]] std::vector<ObjectKey> Keys() const override;
  [[nodiscard]] std::uint64_t TotalBytes() const override;
  util::Status GetRange(const ObjectKey& key, std::uint64_t offset,
                        sim::BytePtr dst, std::uint64_t len) override;
  [[nodiscard]] bool CollectStats(StoreStats& out) const override;

  [[nodiscard]] const ObjectStore& inner() const noexcept { return *inner_; }

 private:
  /// One group of coalesced members. Sealed groups live in staged_ until
  /// their upload lands; `uploading` serializes upload attempts per group.
  struct Group {
    std::uint64_t id = 0;
    std::vector<std::byte> buf;
    std::uint64_t live_members = 0;
    std::int64_t opened_ns = 0;  ///< NowNs() of the first member
    bool uploading = false;
    bool needs_retry = false;
    /// The group's lineage flow has emitted its start event. An open group
    /// whose members all get erased keeps its id and may be re-opened by a
    /// later Put; the re-open is a flow step, never a second start.
    bool flow_started = false;
  };
  struct MemberLoc {
    std::uint64_t group_id = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    bool sealed = false;  ///< false: member is in the open (pending) group
  };

  [[nodiscard]] static ObjectKey GroupKey(std::uint64_t id) noexcept {
    return ObjectKey{kGroupRank, id};
  }

  /// Moves the open group into staged_ and returns it for upload.
  /// `by_deadline` picks the seal-reason counter. Requires mu_ held; no-op
  /// (nullptr) when the open group has no live members.
  std::shared_ptr<Group> SealLocked(bool by_deadline);
  /// Uploads `g` as one inner object; handles retry/cancel bookkeeping.
  util::Status UploadGroup(const std::shared_ptr<Group>& g);
  /// Removes `key`'s member (overwrite or erase). Requires mu_ held.
  void DropMemberLocked(const ObjectKey& key, const MemberLoc& loc,
                        std::vector<ObjectKey>* reclaim);
  void FlusherLoop(const std::stop_token& stop);

  std::shared_ptr<ObjectStore> inner_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<ObjectKey, MemberLoc, ObjectKeyHash> index_;
  std::shared_ptr<Group> pending_;  ///< the open group (never null)
  std::unordered_map<std::uint64_t, std::shared_ptr<Group>> staged_;
  std::unordered_map<std::uint64_t, std::uint64_t> group_live_;  ///< landed groups
  std::unordered_set<std::uint64_t> cancelled_;  ///< reclaimed mid-upload
  std::uint64_t next_group_id_ = 0;
  std::uint64_t total_bytes_ = 0;  ///< live member bytes (logical view)

  // Stats (mu_ held).
  StoreStats stats_;

  std::jthread flusher_;  // last member: joins before the rest tears down
};

}  // namespace ckpt::storage
