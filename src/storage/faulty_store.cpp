#include "storage/faulty_store.hpp"

#include <algorithm>
#include <string>
#include <thread>

namespace ckpt::storage {

namespace {

const char* OpName(FaultOp op) { return op == FaultOp::kPut ? "put" : "get"; }

}  // namespace

FaultyStore::FaultyStore(std::shared_ptr<ObjectStore> inner, Options options)
    : inner_(std::move(inner)),
      options_(std::move(options)),
      rng_(util::MakeRng(options_.seed)) {}

void FaultyStore::FailNext(FaultOp op, FaultKind kind, std::uint64_t count) {
  std::lock_guard lock(mu_);
  forced_left_[static_cast<int>(op)] = count;
  forced_kind_[static_cast<int>(op)] = kind;
}

void FaultyStore::SetDown(bool down) {
  std::lock_guard lock(mu_);
  down_ = down;
}

bool FaultyStore::down() const {
  std::lock_guard lock(mu_);
  return down_;
}

std::uint64_t FaultyStore::puts_attempted() const {
  std::lock_guard lock(mu_);
  return puts_;
}

std::uint64_t FaultyStore::gets_attempted() const {
  std::lock_guard lock(mu_);
  return gets_;
}

std::uint64_t FaultyStore::faults_injected() const {
  std::lock_guard lock(mu_);
  return faults_;
}

FaultyStore::Decision FaultyStore::Decide(FaultOp op, std::uint64_t idx) {
  Decision d;
  // The seeded draws are consumed unconditionally and in a fixed order so
  // the schedule depends only on (seed, op sequence), not on which other
  // rules fired first.
  const double rate = op == FaultOp::kPut ? options_.put_fail_rate
                                          : options_.get_fail_rate;
  bool rate_hit = false;
  if (rate > 0.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    rate_hit = u(rng_) < rate;
  }
  bool spike_hit = false;
  if (options_.spike_rate > 0.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    spike_hit = u(rng_) < options_.spike_rate;
  }
  if (spike_hit) d.stall = options_.spike;

  if (down_) {
    d.kind = FaultKind::kPermanent;
    return d;
  }
  auto& forced = forced_left_[static_cast<int>(op)];
  if (forced > 0) {
    --forced;
    d.kind = forced_kind_[static_cast<int>(op)];
    return d;
  }
  const auto& scheduled =
      op == FaultOp::kPut ? options_.fail_puts : options_.fail_gets;
  if (std::find(scheduled.begin(), scheduled.end(), idx) != scheduled.end()) {
    d.kind = options_.scheduled_fault_kind;
    return d;
  }
  if (rate_hit) d.kind = options_.rate_fault_kind;
  return d;
}

util::Status FaultyStore::Inject(FaultOp op, FaultKind kind, std::uint64_t idx) {
  ++faults_;
  const std::string where =
      std::string(OpName(op)) + " #" + std::to_string(idx);
  if (kind == FaultKind::kPermanent) {
    if (options_.permanent_is_terminal) down_ = true;
    return util::IoError("injected permanent fault on " + where);
  }
  return util::Unavailable("injected transient fault on " + where);
}

util::Status FaultyStore::Put(const ObjectKey& key, sim::ConstBytePtr data,
                              std::uint64_t size) {
  Decision d;
  std::uint64_t idx = 0;
  {
    std::lock_guard lock(mu_);
    idx = ++puts_;
    d = Decide(FaultOp::kPut, idx);
    if (d.kind != FaultKind::kNone) return Inject(FaultOp::kPut, d.kind, idx);
  }
  if (d.stall.count() > 0) std::this_thread::sleep_for(d.stall);
  return inner_->Put(key, data, size);
}

util::Status FaultyStore::Get(const ObjectKey& key, sim::BytePtr dst,
                              std::uint64_t size) {
  Decision d;
  std::uint64_t idx = 0;
  {
    std::lock_guard lock(mu_);
    idx = ++gets_;
    d = Decide(FaultOp::kGet, idx);
    if (d.kind != FaultKind::kNone) return Inject(FaultOp::kGet, d.kind, idx);
  }
  if (d.stall.count() > 0) std::this_thread::sleep_for(d.stall);
  return inner_->Get(key, dst, size);
}

util::StatusOr<std::uint64_t> FaultyStore::Size(const ObjectKey& key) const {
  {
    std::lock_guard lock(mu_);
    if (down_) return util::Status(util::IoError("store down: size unavailable"));
  }
  return inner_->Size(key);
}

bool FaultyStore::Exists(const ObjectKey& key) const {
  {
    std::lock_guard lock(mu_);
    if (down_) return false;  // a dead device advertises nothing
  }
  return inner_->Exists(key);
}

util::Status FaultyStore::Erase(const ObjectKey& key) {
  {
    std::lock_guard lock(mu_);
    if (down_) return util::IoError("store down: erase failed");
  }
  return inner_->Erase(key);
}

std::vector<ObjectKey> FaultyStore::Keys() const { return inner_->Keys(); }

std::uint64_t FaultyStore::TotalBytes() const { return inner_->TotalBytes(); }

util::Status FaultyStore::GetRange(const ObjectKey& key, std::uint64_t offset,
                                   sim::BytePtr dst, std::uint64_t len) {
  // Ranged reads share the get schedule: same counter, same draws.
  Decision d;
  std::uint64_t idx = 0;
  {
    std::lock_guard lock(mu_);
    idx = ++gets_;
    d = Decide(FaultOp::kGet, idx);
    if (d.kind != FaultKind::kNone) return Inject(FaultOp::kGet, d.kind, idx);
  }
  if (d.stall.count() > 0) std::this_thread::sleep_for(d.stall);
  return inner_->GetRange(key, offset, dst, len);
}

bool FaultyStore::CollectStats(StoreStats& out) const {
  return inner_->CollectStats(out);
}

}  // namespace ckpt::storage
