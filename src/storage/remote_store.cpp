#include "storage/remote_store.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "storage/aggregating_store.hpp"
#include "util/config.hpp"
#include "util/flow_id.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace ckpt::storage {

namespace {

namespace trace = util::trace;

/// Splits "k=v" and applies it to `opts`; false on an unknown key.
util::Status ApplyOption(RemoteOptions& opts, std::string_view kv) {
  const std::size_t eq = kv.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return util::InvalidArgument("s3 option '" + std::string(kv) +
                                 "' is not key=value");
  }
  const std::string_view key = kv.substr(0, eq);
  const std::string_view val = kv.substr(eq + 1);
  const auto size_of = [&]() -> util::StatusOr<std::uint64_t> {
    auto n = util::ParseSize(val);
    if (!n.ok()) return n.status();
    if (*n < 0) {
      return util::InvalidArgument("s3 option '" + std::string(key) +
                                   "' must be non-negative");
    }
    return static_cast<std::uint64_t>(*n);
  };
  if (key == "part") {
    auto n = size_of();
    if (!n.ok()) return n.status();
    if (*n == 0) return util::InvalidArgument("s3 option part must be > 0");
    opts.part_bytes = *n;
  } else if (key == "inflight") {
    auto n = size_of();
    if (!n.ok()) return n.status();
    if (*n == 0 || *n > 64) {
      return util::InvalidArgument("s3 option inflight must be in [1, 64]");
    }
    opts.max_inflight = static_cast<int>(*n);
  } else if (key == "lat_us") {
    auto n = size_of();
    if (!n.ok()) return n.status();
    opts.request_latency = std::chrono::microseconds(*n);
  } else if (key == "fail") {
    char* end = nullptr;
    const std::string v(val);
    const double p = std::strtod(v.c_str(), &end);
    if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return util::InvalidArgument("s3 option fail must be in [0, 1]");
    }
    opts.part_fail_rate = p;
  } else if (key == "seed") {
    auto n = size_of();
    if (!n.ok()) return n.status();
    opts.seed = *n;
  } else if (key == "group") {
    auto n = size_of();
    if (!n.ok()) return n.status();
    opts.group_members = *n;
  } else if (key == "group_bytes") {
    auto n = size_of();
    if (!n.ok()) return n.status();
    opts.group_bytes = *n;
  } else if (key == "deadline_ms") {
    auto n = size_of();
    if (!n.ok()) return n.status();
    opts.group_deadline = std::chrono::milliseconds(*n);
  } else {
    return util::InvalidArgument("unknown s3 option '" + std::string(key) +
                                 "'");
  }
  return util::OkStatus();
}

}  // namespace

util::StatusOr<RemoteOptions> RemoteOptions::Parse(std::string_view spec) {
  constexpr std::string_view kScheme = "s3://";
  if (spec.substr(0, kScheme.size()) != kScheme) {
    return util::InvalidArgument("remote backend '" + std::string(spec) +
                                 "' does not start with s3://");
  }
  std::string_view rest = spec.substr(kScheme.size());
  RemoteOptions opts;
  const std::size_t q = rest.find('?');
  opts.bucket = std::string(rest.substr(0, q));
  if (opts.bucket.empty()) {
    return util::InvalidArgument("s3 spec '" + std::string(spec) +
                                 "' names no bucket");
  }
  if (q != std::string_view::npos) {
    std::string_view query = rest.substr(q + 1);
    while (!query.empty()) {
      const std::size_t amp = query.find('&');
      const std::string_view kv = query.substr(0, amp);
      if (!kv.empty()) {
        if (util::Status st = ApplyOption(opts, kv); !st.ok()) return st;
      }
      if (amp == std::string_view::npos) break;
      query.remove_prefix(amp + 1);
    }
  }
  return opts;
}

RemoteStore::RemoteStore(RemoteOptions options, const sim::Topology* topo)
    : options_(std::move(options)), topo_(topo) {}

void RemoteStore::ChargeRequest(std::uint64_t bytes) const {
  if (options_.request_latency.count() > 0) {
    std::this_thread::sleep_for(options_.request_latency);
  }
  if (topo_ != nullptr && bytes > 0) topo_->pfs().Acquire(bytes);
}

util::Status RemoteStore::PutPart(const ObjectKey& key,
                                  std::uint64_t part_index,
                                  std::uint64_t attempt_salt,
                                  std::uint64_t bytes) {
  // Fault draw first: a failed request still pays its round trip but not
  // the payload bandwidth (the connection broke before the body streamed).
  if (options_.part_fail_rate > 0.0) {
    auto rng = util::MakeRng(options_.seed,
                             ObjectKeyHash{}(key) * 1315423911ull +
                                 part_index * 2654435761ull + attempt_salt);
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(rng) < options_.part_fail_rate) {
      if (options_.request_latency.count() > 0) {
        std::this_thread::sleep_for(options_.request_latency);
      }
      return util::Unavailable("injected transient part fault on " +
                               key.ToString() + " part " +
                               std::to_string(part_index));
    }
  }
  ChargeRequest(bytes);
  parts_.fetch_add(1, std::memory_order_relaxed);
  return util::OkStatus();
}

util::Status RemoteStore::Put(const ObjectKey& key, sim::ConstBytePtr data,
                              std::uint64_t size) {
  if (data == nullptr && size > 0) return util::InvalidArgument("Put: null data");
  trace::Span span(trace::Kind::kFlush, "remote:put", key.rank, -1,
                   key.version, size);
  // Lineage hop: the object (or aggregated group: kGroupRank keys derive the
  // group's flow id) enters its multipart upload.
  trace::Flow(trace::Kind::kFlush, "remote:put",
              trace::FlowIdOf(key.rank, key.version), trace::FlowPhase::kStep,
              key.rank, /*tier=*/-1, key.version, size);
  // Multipart upload: parts stream concurrently (bounded by max_inflight)
  // into a staging buffer; "completing" the upload publishes it atomically.
  std::vector<std::byte> staged(static_cast<std::size_t>(size));
  const std::uint64_t nparts =
      size == 0 ? 1 : (size + options_.part_bytes - 1) / options_.part_bytes;
  const int workers = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(options_.max_inflight), nparts));

  std::atomic<std::uint64_t> next_part{0};
  std::atomic<std::uint64_t> retries{0};
  std::mutex err_mu;
  util::Status first_error = util::OkStatus();
  const auto upload_loop = [&] {
    for (std::uint64_t p = next_part.fetch_add(1, std::memory_order_relaxed);
         p < nparts;
         p = next_part.fetch_add(1, std::memory_order_relaxed)) {
      {
        std::lock_guard lock(err_mu);
        if (!first_error.ok()) return;  // a sibling part already failed
      }
      const std::uint64_t off = p * options_.part_bytes;
      const std::uint64_t len = std::min(options_.part_bytes, size - off);
      std::uint64_t attempt = 0;
      auto rng = util::MakeRng(options_.seed ^ key.version, p);
      const util::RetryOutcome out = util::RetryWithBackoff(
          options_.part_retry, rng,
          [&] { return PutPart(key, p, attempt++, len); });
      retries.fetch_add(out.retries(), std::memory_order_relaxed);
      if (!out.ok()) {
        std::lock_guard lock(err_mu);
        if (first_error.ok()) first_error = out.status;
        return;
      }
      if (len > 0) std::memcpy(staged.data() + off, data + off, len);
    }
  };
  if (workers <= 1) {
    upload_loop();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(upload_loop);
    for (std::thread& t : pool) t.join();
  }
  part_retries_.fetch_add(retries.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  if (!first_error.ok()) {
    span.Cancel();
    return first_error;
  }
  // Complete-multipart round trip: latency only, no payload.
  ChargeRequest(0);
  {
    std::lock_guard lock(mu_);
    objects_[key] = std::move(staged);
  }
  // Lineage hop: complete-multipart published the staged parts atomically;
  // only now is the object readable (and durable) at the remote tier.
  trace::Flow(trace::Kind::kFlush, "remote:publish",
              trace::FlowIdOf(key.rank, key.version), trace::FlowPhase::kStep,
              key.rank, /*tier=*/-1, key.version, size);
  puts_.fetch_add(1, std::memory_order_relaxed);
  put_bytes_.fetch_add(size, std::memory_order_relaxed);
  return util::OkStatus();
}

util::Status RemoteStore::Get(const ObjectKey& key, sim::BytePtr dst,
                              std::uint64_t size) {
  trace::Span span(trace::Kind::kPrefetch, "remote:get", key.rank, -1,
                   key.version, size);
  std::uint64_t object_size = 0;
  {
    std::lock_guard lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      span.Cancel();
      return util::NotFound("object " + key.ToString());
    }
    if (size < it->second.size()) {
      span.Cancel();
      return util::InvalidArgument("Get: buffer smaller than object " +
                                   key.ToString());
    }
    object_size = it->second.size();
    std::memcpy(dst, it->second.data(), it->second.size());
  }
  ChargeRequest(object_size);
  gets_.fetch_add(1, std::memory_order_relaxed);
  get_bytes_.fetch_add(object_size, std::memory_order_relaxed);
  return util::OkStatus();
}

util::Status RemoteStore::GetRange(const ObjectKey& key, std::uint64_t offset,
                                   sim::BytePtr dst, std::uint64_t len) {
  trace::Span span(trace::Kind::kPrefetch, "remote:get", key.rank, -1,
                   key.version, len);
  {
    std::lock_guard lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      span.Cancel();
      return util::NotFound("object " + key.ToString());
    }
    if (offset + len > it->second.size() || offset + len < offset) {
      span.Cancel();
      return util::InvalidArgument("GetRange: out of bounds for " +
                                   key.ToString());
    }
    std::memcpy(dst, it->second.data() + offset,
                static_cast<std::size_t>(len));
  }
  // A ranged GET pays one round trip and only the range's bytes.
  ChargeRequest(len);
  gets_.fetch_add(1, std::memory_order_relaxed);
  get_bytes_.fetch_add(len, std::memory_order_relaxed);
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> RemoteStore::Size(const ObjectKey& key) const {
  // HEAD request: metadata only, no bandwidth. No latency either — Size sits
  // on the engine's restart-scan path where a per-key round trip would
  // serialize; a real client batches these with LIST.
  std::lock_guard lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return util::NotFound("object " + key.ToString());
  return static_cast<std::uint64_t>(it->second.size());
}

bool RemoteStore::Exists(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  return objects_.find(key) != objects_.end();
}

util::Status RemoteStore::Erase(const ObjectKey& key) {
  {
    std::lock_guard lock(mu_);
    if (objects_.erase(key) == 0) {
      return util::NotFound("object " + key.ToString());
    }
  }
  // DELETE round trip, no payload.
  ChargeRequest(0);
  return util::OkStatus();
}

std::vector<ObjectKey> RemoteStore::Keys() const {
  std::lock_guard lock(mu_);
  std::vector<ObjectKey> keys;
  keys.reserve(objects_.size());
  for (const auto& [k, v] : objects_) keys.push_back(k);
  return keys;
}

std::uint64_t RemoteStore::TotalBytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [k, v] : objects_) total += v.size();
  return total;
}

bool RemoteStore::CollectStats(StoreStats& out) const {
  out.remote_puts += puts_.load(std::memory_order_relaxed);
  out.remote_gets += gets_.load(std::memory_order_relaxed);
  out.remote_parts += parts_.load(std::memory_order_relaxed);
  out.remote_part_retries += part_retries_.load(std::memory_order_relaxed);
  out.remote_put_bytes += put_bytes_.load(std::memory_order_relaxed);
  out.remote_get_bytes += get_bytes_.load(std::memory_order_relaxed);
  return true;
}

util::StatusOr<std::shared_ptr<ObjectStore>> OpenRemoteBackend(
    std::string_view spec, const sim::Topology* topo) {
  auto opts = RemoteOptions::Parse(spec);
  if (!opts.ok()) return opts.status();
  std::shared_ptr<ObjectStore> store =
      std::make_shared<RemoteStore>(*opts, topo);
  if (opts->group_members > 1 || opts->group_bytes > 0) {
    AggregatingStore::Options agg;
    agg.group_members = opts->group_members > 1 ? opts->group_members : 0;
    agg.group_bytes = opts->group_bytes;
    agg.deadline = opts->group_deadline;
    store = std::make_shared<AggregatingStore>(std::move(store), agg);
  }
  return store;
}

}  // namespace ckpt::storage
