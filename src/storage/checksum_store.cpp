#include "storage/checksum_store.hpp"

#include <cstring>
#include <vector>

#include "util/crc32.hpp"

namespace ckpt::storage {

namespace {
constexpr std::uint32_t kMagic = 0xC4C55C47u;  // "checksummed ckpt" marker
}

util::Status ChecksumStore::Put(const ObjectKey& key, sim::ConstBytePtr data,
                                std::uint64_t size) {
  if (data == nullptr && size > 0) return util::InvalidArgument("Put: null data");
  const std::uint32_t crc = util::Crc32c(data, size);
  std::vector<std::byte> framed(size + kTrailerBytes);
  if (size > 0) std::memcpy(framed.data(), data, size);
  std::memcpy(framed.data() + size, &kMagic, 4);
  std::memcpy(framed.data() + size + 4, &crc, 4);
  return inner_->Put(key, framed.data(), framed.size());
}

util::Status ChecksumStore::Get(const ObjectKey& key, sim::BytePtr dst,
                                std::uint64_t size) {
  auto framed_size = inner_->Size(key);
  if (!framed_size.ok()) return framed_size.status();
  if (*framed_size < kTrailerBytes) {
    ++failures_;
    return util::IoError("object " + key.ToString() + " too small for trailer");
  }
  const std::uint64_t payload = *framed_size - kTrailerBytes;
  if (size < payload) {
    return util::InvalidArgument("Get: buffer smaller than object " + key.ToString());
  }
  std::vector<std::byte> framed(*framed_size);
  CKPT_RETURN_IF_ERROR(inner_->Get(key, framed.data(), framed.size()));
  std::uint32_t magic = 0, stored_crc = 0;
  std::memcpy(&magic, framed.data() + payload, 4);
  std::memcpy(&stored_crc, framed.data() + payload + 4, 4);
  if (magic != kMagic) {
    ++failures_;
    return util::IoError("object " + key.ToString() + " missing checksum trailer");
  }
  const std::uint32_t crc = util::Crc32c(framed.data(), payload);
  if (crc != stored_crc) {
    ++failures_;
    return util::IoError("object " + key.ToString() +
                         " failed CRC verification (corrupt checkpoint)");
  }
  ++verified_;
  std::memcpy(dst, framed.data(), payload);
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> ChecksumStore::Size(const ObjectKey& key) const {
  auto framed = inner_->Size(key);
  if (!framed.ok()) return framed.status();
  if (*framed < kTrailerBytes) {
    return util::IoError("object " + key.ToString() + " too small for trailer");
  }
  return *framed - kTrailerBytes;
}

}  // namespace ckpt::storage
