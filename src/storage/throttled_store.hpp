// Bandwidth-model decorator for object stores, plus factory helpers that
// bind a store to the simulated node's NVMe drives or the global PFS uplink.
// Charging happens *during* the operation (interleaved per chunk at the
// limiter level), so concurrent flushes and prefetches share drive bandwidth
// the way the paper's evaluation exercises it.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "simgpu/topology.hpp"
#include "storage/object_store.hpp"

namespace ckpt::storage {

class ThrottledStore final : public ObjectStore {
 public:
  using ChargeFn = std::function<void(const ObjectKey&, std::uint64_t)>;

  ThrottledStore(std::shared_ptr<ObjectStore> inner, ChargeFn on_write,
                 ChargeFn on_read)
      : inner_(std::move(inner)),
        on_write_(std::move(on_write)),
        on_read_(std::move(on_read)) {}

  util::Status Put(const ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override {
    if (on_write_) on_write_(key, size);
    return inner_->Put(key, data, size);
  }

  util::Status Get(const ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override {
    auto object_size = inner_->Size(key);
    if (!object_size.ok()) return object_size.status();
    if (on_read_) on_read_(key, *object_size);
    return inner_->Get(key, dst, size);
  }

  [[nodiscard]] util::StatusOr<std::uint64_t> Size(const ObjectKey& key) const override {
    return inner_->Size(key);
  }
  [[nodiscard]] bool Exists(const ObjectKey& key) const override {
    return inner_->Exists(key);
  }
  util::Status Erase(const ObjectKey& key) override { return inner_->Erase(key); }
  [[nodiscard]] std::vector<ObjectKey> Keys() const override { return inner_->Keys(); }
  [[nodiscard]] std::uint64_t TotalBytes() const override {
    return inner_->TotalBytes();
  }
  util::Status GetRange(const ObjectKey& key, std::uint64_t offset,
                        sim::BytePtr dst, std::uint64_t len) override {
    // Ranged reads pay for exactly the bytes they move, not the whole object.
    if (on_read_) on_read_(key, len);
    return inner_->GetRange(key, offset, dst, len);
  }
  [[nodiscard]] bool CollectStats(StoreStats& out) const override {
    return inner_->CollectStats(out);
  }

 private:
  std::shared_ptr<ObjectStore> inner_;
  ChargeFn on_write_;
  ChargeFn on_read_;
};

/// Wraps `inner` with the NVMe drive bandwidth of the drive assigned to each
/// object's producing rank (node-local SSD tier semantics).
std::shared_ptr<ObjectStore> MakeSsdStore(const sim::Topology& topo,
                                          std::shared_ptr<ObjectStore> inner);

/// Wraps `inner` with the global PFS uplink bandwidth.
std::shared_ptr<ObjectStore> MakePfsStore(const sim::Topology& topo,
                                          std::shared_ptr<ObjectStore> inner);

}  // namespace ckpt::storage
