#include "storage/aggregating_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/clock.hpp"
#include "util/flow_id.hpp"
#include "util/status.hpp"
#include "util/trace.hpp"

namespace ckpt::storage {

namespace {
/// Lineage id of a group object: the synthetic group rank keeps it disjoint
/// from every member id (util/flow_id.hpp).
constexpr std::uint64_t GroupFlowId(std::uint64_t group_id) noexcept {
  return util::trace::FlowIdOf(AggregatingStore::kGroupRank, group_id);
}
}  // namespace

AggregatingStore::AggregatingStore(std::shared_ptr<ObjectStore> inner,
                                   Options options)
    : inner_(std::move(inner)), options_(options) {
  pending_ = std::make_shared<Group>();
  pending_->id = next_group_id_++;
  if (options_.deadline.count() > 0) {
    flusher_ = std::jthread(
        [this](const std::stop_token& stop) { FlusherLoop(stop); });
  }
}

AggregatingStore::~AggregatingStore() {
  if (flusher_.joinable()) {
    flusher_.request_stop();
    cv_.notify_all();
    flusher_.join();
  }
  // Best effort: members were acknowledged, so try to land what is buffered.
  (void)Flush();
}

std::shared_ptr<AggregatingStore::Group> AggregatingStore::SealLocked(
    bool by_deadline) {
  if (pending_->live_members == 0) return nullptr;
  std::shared_ptr<Group> sealed = std::move(pending_);
  pending_ = std::make_shared<Group>();
  pending_->id = next_group_id_++;
  for (auto& [key, loc] : index_) {
    if (!loc.sealed && loc.group_id == sealed->id) {
      loc.sealed = true;
      // Each member's lineage steps through the seal, so Perfetto draws the
      // member -> group join at the moment the buffer freezes.
      util::trace::Flow(util::trace::Kind::kFlush, "agg:seal",
                        util::trace::FlowIdOf(key.rank, key.version),
                        util::trace::FlowPhase::kStep, key.rank, /*tier=*/-1,
                        key.version, loc.size);
    }
  }
  util::trace::Flow(util::trace::Kind::kFlush, "agg:seal",
                    GroupFlowId(sealed->id), util::trace::FlowPhase::kStep,
                    kGroupRank, /*tier=*/-1, sealed->id, sealed->buf.size());
  staged_[sealed->id] = sealed;
  if (by_deadline) {
    ++stats_.agg_deadline_flushes;
  } else {
    ++stats_.agg_size_flushes;
  }
  return sealed;
}

util::Status AggregatingStore::UploadGroup(const std::shared_ptr<Group>& g) {
  {
    std::lock_guard lock(mu_);
    if (g->uploading) return util::OkStatus();  // another thread owns it
    g->uploading = true;
    g->needs_retry = false;
  }
  util::trace::Flow(util::trace::Kind::kFlush, "agg:upload",
                    GroupFlowId(g->id), util::trace::FlowPhase::kStep,
                    kGroupRank, /*tier=*/-1, g->id, g->buf.size());
  util::Status st = inner_->Put(GroupKey(g->id), g->buf.data(), g->buf.size());
  bool erase_inner = false;
  {
    std::lock_guard lock(mu_);
    g->uploading = false;
    if (!st.ok()) {
      ++stats_.agg_group_put_failures;
      cancelled_.erase(g->id);  // nothing landed, nothing to undo
      // Stays in staged_; the flusher (or the next Flush) retries it —
      // unless every member was erased while the upload was failing.
      if (staged_.count(g->id) > 0) {
        g->needs_retry = true;
      } else {
        util::trace::Flow(util::trace::Kind::kFlush, "agg:reclaimed",
                          GroupFlowId(g->id), util::trace::FlowPhase::kEnd,
                          kGroupRank, /*tier=*/-1, g->id, g->buf.size());
      }
      return st;
    }
    ++stats_.agg_group_puts;
    if (cancelled_.erase(g->id) > 0 || staged_.count(g->id) == 0) {
      // Last member erased mid-upload: the object just landed is garbage.
      erase_inner = true;
      util::trace::Flow(util::trace::Kind::kFlush, "agg:reclaimed",
                        GroupFlowId(g->id), util::trace::FlowPhase::kEnd,
                        kGroupRank, /*tier=*/-1, g->id, g->buf.size());
    } else {
      staged_.erase(g->id);
      group_live_[g->id] = g->live_members;
      util::trace::Flow(util::trace::Kind::kFlush, "agg:landed",
                        GroupFlowId(g->id), util::trace::FlowPhase::kEnd,
                        kGroupRank, /*tier=*/-1, g->id, g->buf.size());
    }
  }
  if (erase_inner) {
    (void)inner_->Erase(GroupKey(g->id));
    std::lock_guard lock(mu_);
    ++stats_.agg_group_reclaims;
  }
  return util::OkStatus();
}

util::Status AggregatingStore::Flush() {
  std::vector<std::shared_ptr<Group>> work;
  {
    std::lock_guard lock(mu_);
    if (auto sealed = SealLocked(/*by_deadline=*/true)) {
      work.push_back(std::move(sealed));
    }
    for (const auto& [id, g] : staged_) {
      if (g->needs_retry && !g->uploading) work.push_back(g);
    }
  }
  util::Status first = util::OkStatus();
  for (const auto& g : work) {
    if (util::Status st = UploadGroup(g); !st.ok() && first.ok()) first = st;
  }
  return first;
}

void AggregatingStore::FlusherLoop(const std::stop_token& stop) {
  std::unique_lock lock(mu_);
  while (!stop.stop_requested()) {
    const auto deadline_ns =
        std::chrono::nanoseconds(options_.deadline).count();
    std::int64_t wait_ns = deadline_ns;
    if (pending_->live_members > 0) {
      wait_ns = std::max<std::int64_t>(
          0, pending_->opened_ns + deadline_ns - util::NowNs());
    }
    cv_.wait_for(lock, std::chrono::nanoseconds(wait_ns), [&] {
      return stop.stop_requested() ||
             (pending_->live_members > 0 &&
              util::NowNs() - pending_->opened_ns >= deadline_ns);
    });
    if (stop.stop_requested()) return;
    std::vector<std::shared_ptr<Group>> work;
    if (pending_->live_members > 0 &&
        util::NowNs() - pending_->opened_ns >= deadline_ns) {
      if (auto sealed = SealLocked(/*by_deadline=*/true)) {
        work.push_back(std::move(sealed));
      }
    }
    for (const auto& [id, g] : staged_) {
      if (g->needs_retry && !g->uploading) work.push_back(g);
    }
    lock.unlock();
    for (const auto& g : work) (void)UploadGroup(g);
    lock.lock();
  }
}

void AggregatingStore::DropMemberLocked(const ObjectKey& key,
                                        const MemberLoc& loc,
                                        std::vector<ObjectKey>* reclaim) {
  total_bytes_ -= loc.size;
  if (!loc.sealed) {
    // Tombstone in the open group: the bytes stay as dead space in the
    // buffer, only the index entry and the live count go.
    --pending_->live_members;
    index_.erase(key);
    return;
  }
  const std::uint64_t gid = loc.group_id;
  index_.erase(key);
  if (auto it = group_live_.find(gid); it != group_live_.end()) {
    if (--it->second == 0) {
      group_live_.erase(it);
      ++stats_.agg_group_reclaims;
      if (reclaim != nullptr) reclaim->push_back(GroupKey(gid));
      // The group flow already terminated at agg:landed; the late reclaim is
      // a plain instant so no flow gets a second termination.
      util::trace::Instant(util::trace::Kind::kFlush, "agg:reclaim",
                           kGroupRank, /*tier=*/-1, gid);
    }
    return;
  }
  if (auto it = staged_.find(gid); it != staged_.end()) {
    if (--it->second->live_members == 0) {
      if (it->second->uploading) {
        cancelled_.insert(gid);  // uploader erases the landed object
      } else {
        ++stats_.agg_group_reclaims;  // never landed: just drop the buffer
        util::trace::Flow(util::trace::Kind::kFlush, "agg:reclaimed",
                          GroupFlowId(gid), util::trace::FlowPhase::kEnd,
                          kGroupRank, /*tier=*/-1, gid);
      }
      staged_.erase(it);
    }
  }
}

util::Status AggregatingStore::Put(const ObjectKey& key, sim::ConstBytePtr data,
                                   std::uint64_t size) {
  if (data == nullptr && size > 0) return util::InvalidArgument("Put: null data");
  std::shared_ptr<Group> sealed;
  {
    std::lock_guard lock(mu_);
    if (auto it = index_.find(key); it != index_.end()) {
      DropMemberLocked(key, it->second, nullptr);  // overwrite semantics
    }
    if (pending_->live_members == 0) {
      pending_->opened_ns = util::NowNs();
      pending_->buf.clear();  // reclaim tombstone-only dead space
    }
    MemberLoc loc;
    loc.group_id = pending_->id;
    loc.offset = pending_->buf.size();
    loc.size = size;
    pending_->buf.insert(pending_->buf.end(), data, data + size);
    ++pending_->live_members;
    index_[key] = loc;
    total_bytes_ += size;
    ++stats_.agg_member_puts;
    if (pending_->live_members == 1) {
      // This member opened the group: start the group object's own lineage
      // (a step, not a second start, if the group was drained and re-opened).
      util::trace::Flow(util::trace::Kind::kFlush, "agg:open",
                        GroupFlowId(pending_->id),
                        pending_->flow_started
                            ? util::trace::FlowPhase::kStep
                            : util::trace::FlowPhase::kStart,
                        kGroupRank, /*tier=*/-1, pending_->id, size);
      pending_->flow_started = true;
    }
    util::trace::Flow(util::trace::Kind::kFlush, "agg:member",
                      util::trace::FlowIdOf(key.rank, key.version),
                      util::trace::FlowPhase::kStep, key.rank, /*tier=*/-1,
                      key.version, size);
    const bool by_count = options_.group_members > 0 &&
                          pending_->live_members >= options_.group_members;
    const bool by_bytes = options_.group_bytes > 0 &&
                          pending_->buf.size() >= options_.group_bytes;
    if (by_count || by_bytes) sealed = SealLocked(/*by_deadline=*/false);
  }
  // The member is acknowledged regardless: a failed group upload stays
  // buffered for retry and must not fail the Put that happened to seal it.
  if (sealed) (void)UploadGroup(sealed);
  return util::OkStatus();
}

util::Status AggregatingStore::GetRange(const ObjectKey& key,
                                        std::uint64_t offset, sim::BytePtr dst,
                                        std::uint64_t len) {
  std::uint64_t group_id = 0;
  std::uint64_t group_offset = 0;
  {
    std::lock_guard lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return util::NotFound("object " + key.ToString());
    const MemberLoc& loc = it->second;
    if (offset + len > loc.size || offset + len < offset) {
      return util::InvalidArgument("GetRange: out of bounds for " +
                                   key.ToString());
    }
    const std::shared_ptr<Group>* buffered = nullptr;
    if (!loc.sealed) {
      buffered = &pending_;
    } else if (auto sit = staged_.find(loc.group_id); sit != staged_.end()) {
      buffered = &sit->second;
    }
    if (buffered != nullptr) {
      std::memcpy(dst, (*buffered)->buf.data() + loc.offset + offset,
                  static_cast<std::size_t>(len));
      ++stats_.agg_gets_from_pending;
      return util::OkStatus();
    }
    group_id = loc.group_id;
    group_offset = loc.offset;
  }
  // Landed group: ranged read of just this member's bytes off the lock.
  return inner_->GetRange(GroupKey(group_id), group_offset + offset, dst, len);
}

util::Status AggregatingStore::Get(const ObjectKey& key, sim::BytePtr dst,
                                   std::uint64_t size) {
  std::uint64_t member_size = 0;
  {
    std::lock_guard lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return util::NotFound("object " + key.ToString());
    if (size < it->second.size) {
      return util::InvalidArgument("Get: buffer smaller than object " +
                                   key.ToString());
    }
    member_size = it->second.size;
  }
  return GetRange(key, 0, dst, member_size);
}

util::StatusOr<std::uint64_t> AggregatingStore::Size(
    const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return util::NotFound("object " + key.ToString());
  return it->second.size;
}

bool AggregatingStore::Exists(const ObjectKey& key) const {
  std::lock_guard lock(mu_);
  return index_.find(key) != index_.end();
}

util::Status AggregatingStore::Erase(const ObjectKey& key) {
  std::vector<ObjectKey> reclaim;
  {
    std::lock_guard lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return util::NotFound("object " + key.ToString());
    DropMemberLocked(key, it->second, &reclaim);
  }
  for (const ObjectKey& gkey : reclaim) (void)inner_->Erase(gkey);
  return util::OkStatus();
}

std::vector<ObjectKey> AggregatingStore::Keys() const {
  std::lock_guard lock(mu_);
  std::vector<ObjectKey> keys;
  keys.reserve(index_.size());
  for (const auto& [k, loc] : index_) keys.push_back(k);
  return keys;
}

std::uint64_t AggregatingStore::TotalBytes() const {
  std::lock_guard lock(mu_);
  return total_bytes_;
}

bool AggregatingStore::CollectStats(StoreStats& out) const {
  (void)inner_->CollectStats(out);
  std::lock_guard lock(mu_);
  out.Merge(stats_);
  out.agg_pending_members += pending_->live_members;
  out.agg_pending_bytes += pending_->buf.size();
  for (const auto& [id, g] : staged_) {
    out.agg_pending_members += g->live_members;
    out.agg_pending_bytes += g->buf.size();
  }
  return true;
}

}  // namespace ckpt::storage
