// Bounded-retry policy with exponential, jittered backoff for storage-tier
// operations. Transient tier errors (a busy NVMe queue, a PFS timeout) are
// retried a bounded number of times; the jitter decorrelates the flush
// pipelines of different ranks so retries do not stampede a recovering
// device. Jitter comes from the caller's seeded rng (util/rng.hpp), so a
// retry schedule reproduces bit-identically for a fixed seed.
#pragma once

#include <chrono>
#include <functional>
#include <random>

#include "util/status.hpp"

namespace ckpt::util {

/// True for error codes that signal a transient condition worth retrying.
/// Everything else (kIoError, kNotFound, ...) is permanent for the op.
[[nodiscard]] constexpr bool IsRetryable(ErrorCode code) noexcept {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
}

struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 4;
  /// Backoff before the first retry; doubles (times `backoff_multiplier`)
  /// after each failed attempt, capped at `max_backoff`.
  std::chrono::microseconds initial_backoff{200};
  double backoff_multiplier = 2.0;
  std::chrono::microseconds max_backoff{5000};
  /// Each sleep is scaled by U[1 - jitter, 1 + jitter] drawn from the rng.
  double jitter = 0.5;
  /// Overall wall-clock budget for the op including sleeps; a retry that
  /// would overrun it is not attempted. Zero disables the deadline.
  std::chrono::microseconds deadline{0};
};

struct RetryOutcome {
  Status status = OkStatus();
  int attempts = 0;  ///< ops actually issued

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
  /// Extra attempts beyond the first (the `flush_retries` metric unit).
  [[nodiscard]] std::uint64_t retries() const noexcept {
    return attempts > 1 ? static_cast<std::uint64_t>(attempts - 1) : 0;
  }
};

/// Runs `op` until it succeeds, fails with a non-retryable code, exhausts
/// `policy.max_attempts` / `policy.deadline`, or `abort` returns true
/// (checked before every attempt). Returns the final status and the number
/// of attempts issued. `sleep` overrides the inter-attempt wait (tests);
/// the default is std::this_thread::sleep_for.
RetryOutcome RetryWithBackoff(
    const RetryPolicy& policy, std::mt19937_64& rng,
    const std::function<Status()>& op,
    const std::function<bool()>& abort = {},
    const std::function<void(std::chrono::microseconds)>& sleep = {});

}  // namespace ckpt::util
