// Minimal JSON parser for validating our own emitted artifacts (Chrome
// trace files, metrics snapshots) without an external dependency.
//
// Scope: full JSON grammar (RFC 8259) minus surrogate-pair decoding —
// \uXXXX escapes outside the BMP are preserved as '?' bytes, which is
// irrelevant for our ASCII-only producers. Numbers parse as double.
// Not a streaming parser; intended for test-sized documents.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace ckpt::util::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value, std::less<>>;

/// A parsed JSON value. Cheap to move; copies deep-copy.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), num_(d) {}
  explicit Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? num_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const noexcept {
    static const std::string empty;
    return is_string() ? str_ : empty;
  }
  [[nodiscard]] const Array& as_array() const noexcept {
    static const Array empty;
    return is_array() ? *arr_ : empty;
  }
  [[nodiscard]] const Object& as_object() const noexcept {
    static const Object empty;
    return is_object() ? *obj_ : empty;
  }

  /// Object member lookup; returns nullptr when absent or not an object.
  [[nodiscard]] const Value* Find(std::string_view key) const {
    if (!is_object()) return nullptr;
    auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<Array> arr_;   // shared so Value stays copyable cheaply
  std::shared_ptr<Object> obj_;
};

/// Parses `text` as a single JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
[[nodiscard]] StatusOr<Value> Parse(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
[[nodiscard]] std::string Escape(std::string_view s);

}  // namespace ckpt::util::json
