#include "util/config.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <string>

namespace ckpt::util {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

}  // namespace

StatusOr<std::int64_t> ParseSize(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return InvalidArgument("empty size literal");
  std::int64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{}) {
    return InvalidArgument("not an integer: '" + std::string(text) + "'");
  }
  std::string_view suffix = Trim(std::string_view(ptr, static_cast<std::size_t>(end - ptr)));
  if (suffix.empty()) return value;

  std::int64_t mul = 1;
  const char unit = static_cast<char>(std::tolower(static_cast<unsigned char>(suffix[0])));
  const bool binary = suffix.size() >= 2 && (suffix[1] == 'i' || suffix[1] == 'I');
  const std::int64_t base = binary ? 1024 : 1000;
  switch (unit) {
    case 'k': mul = base; break;
    case 'm': mul = base * base; break;
    case 'g': mul = base * base * base; break;
    case 't': mul = base * base * base * base; break;
    default:
      return InvalidArgument("unknown size suffix: '" + std::string(suffix) + "'");
  }
  const std::size_t expected = binary ? 2u : 1u;
  // Allow a trailing 'b'/'B' ("128kb", "4MiB").
  if (suffix.size() > expected &&
      !(suffix.size() == expected + 1 &&
        std::tolower(static_cast<unsigned char>(suffix[expected])) == 'b')) {
    return InvalidArgument("unknown size suffix: '" + std::string(suffix) + "'");
  }
  return value * mul;
}

StatusOr<Config> Config::Parse(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t next = text.find_first_of(",\n", pos);
    if (next == std::string_view::npos) next = text.size();
    std::string_view line = Trim(text.substr(pos, next - pos));
    pos = next + 1;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgument("config line missing '=': '" + std::string(line) + "'");
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    if (key.empty()) return InvalidArgument("config line with empty key");
    cfg.entries_[std::move(key)] = std::move(value);
  }
  return cfg;
}

void Config::Set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::Has(std::string_view key) const {
  return entries_.find(std::string(key)) != entries_.end();
}

std::optional<std::string> Config::GetString(std::string_view key) const {
  auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::GetString(std::string_view key, std::string_view def) const {
  auto v = GetString(key);
  return v ? *v : std::string(def);
}

StatusOr<std::int64_t> Config::GetInt(std::string_view key) const {
  auto v = GetString(key);
  if (!v) return NotFound("no config key '" + std::string(key) + "'");
  return ParseSize(*v);
}

std::int64_t Config::GetInt(std::string_view key, std::int64_t def) const {
  auto v = GetInt(key);
  return v.ok() ? *v : def;
}

StatusOr<double> Config::GetDouble(std::string_view key) const {
  auto v = GetString(key);
  if (!v) return NotFound("no config key '" + std::string(key) + "'");
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  if (end == v->c_str()) return InvalidArgument("not a double: '" + *v + "'");
  return d;
}

double Config::GetDouble(std::string_view key, double def) const {
  auto v = GetDouble(key);
  return v.ok() ? *v : def;
}

StatusOr<bool> Config::GetBool(std::string_view key) const {
  auto v = GetString(key);
  if (!v) return NotFound("no config key '" + std::string(key) + "'");
  std::string lower = *v;
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") return false;
  return InvalidArgument("not a boolean: '" + *v + "'");
}

bool Config::GetBool(std::string_view key, bool def) const {
  auto v = GetBool(key);
  return v.ok() ? *v : def;
}

std::int64_t EnvInt(const char* name, std::int64_t def) {
  const char* env = std::getenv(name);
  if (!env) return def;
  auto parsed = ParseSize(env);
  return parsed.ok() ? *parsed : def;
}

double EnvDouble(const char* name, double def) {
  const char* env = std::getenv(name);
  if (!env) return def;
  char* end = nullptr;
  const double d = std::strtod(env, &end);
  return end == env ? def : d;
}

std::string EnvString(const char* name, std::string_view def) {
  const char* env = std::getenv(name);
  return env ? std::string(env) : std::string(def);
}

}  // namespace ckpt::util
