// Fixed-size thread pool for background work that is not latency-critical
// (staging reads, trace generation, test drivers). The checkpoint engine's
// own flush/prefetch threads are dedicated jthreads, not pool tasks, because
// they must never queue behind unrelated work (the paper dedicates T_D2H,
// T_H2F and T_PF threads for the same reason).
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mpmc_queue.hpp"

namespace ckpt::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  std::future<R> Submit(Fn fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(idle_mu_);
      ++pending_;
    }
    queue_.Push([task] { (*task)(); });
    return fut;
  }

  /// Blocks until every task submitted so far has finished.
  void Wait();

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  MpmcQueue<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::size_t pending_ = 0;  // submitted but not yet finished
};

}  // namespace ckpt::util
