// Token-bucket rate limiter used to model every bandwidth-limited resource in
// the simulated node: NVLink/D2D engines, shared PCIe Gen4 links, NVMe
// drives, the parallel file system uplink, and pinned-memory registration.
//
// The limiter uses a debt model with weighted fair admission: acquire(n)
// waits until (a) it holds the smallest start-time tag among waiters and (b)
// the bucket is non-negative, then subtracts n (the bucket may go negative,
// which delays the *next* waiter). Admission order follows start-time fair
// queuing (SFQ): each request is tagged start = max(vclock, flow_finish[flow])
// and finish = start + n/weight; requests are served in ascending start-tag
// order, so concurrent flows share bandwidth in proportion to their weights.
// With a single flow (the default — every legacy caller), tags are strictly
// increasing and admission degenerates to exact FIFO, preserving the
// serialization observed on a shared physical link: two GPUs sharing a PCIe
// link each see roughly half the bandwidth under contention, full bandwidth
// alone — exactly the DGX-A100 behaviour the paper describes. Tenant-tagged
// traffic (core/tenant.hpp) passes flow = tenant id so one tenant's burst
// cannot starve another's restore path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>

#include "util/status.hpp"

namespace ckpt::util {

class RateLimiter {
 public:
  /// `bytes_per_sec == 0` means unlimited (acquire returns immediately).
  /// `burst_bytes` caps idle accumulation. The bucket starts *empty*: the
  /// debt model admits the first request instantly and shapes everything
  /// after it, which models a link accurately from the first byte.
  explicit RateLimiter(std::uint64_t bytes_per_sec,
                       std::uint64_t burst_bytes = 1ull << 16);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Blocks until `n` bytes worth of tokens have been admitted. `flow`
  /// identifies the fair-queuing flow (e.g. tenant id) and `weight` its
  /// bandwidth share; the defaults reproduce plain FIFO admission.
  void Acquire(std::uint64_t n, int flow = 0, double weight = 1.0);

  /// Non-blocking variant: admits only if no queue and tokens available now.
  [[nodiscard]] bool TryAcquire(std::uint64_t n);

  /// Blocks at most `timeout`; returns kTimeout if not admitted in time.
  Status AcquireFor(std::uint64_t n, std::chrono::nanoseconds timeout,
                    int flow = 0, double weight = 1.0);

  /// Dynamically retune the rate (e.g. ablations on link speed).
  void set_rate(std::uint64_t bytes_per_sec);
  [[nodiscard]] std::uint64_t rate() const;

  /// Total bytes admitted since construction (telemetry).
  [[nodiscard]] std::uint64_t admitted_bytes() const;

  /// Bytes admitted on behalf of `flow` (per-tenant telemetry).
  [[nodiscard]] std::uint64_t admitted_bytes(int flow) const;

  /// Estimated time for `n` further bytes to be admitted, given the current
  /// debt and queue. Used by the eviction predictor (`predict_evictable`).
  [[nodiscard]] std::chrono::nanoseconds EstimateDelay(std::uint64_t n) const;

 private:
  using Clock = std::chrono::steady_clock;
  /// SFQ admission key: (start tag, arrival ticket). The ticket breaks
  /// equal-tag ties in arrival order and makes every key unique.
  using Key = std::pair<double, std::uint64_t>;

  // Refills tokens_ from elapsed time. Caller holds mu_.
  void Refill(Clock::time_point now);
  // Nanoseconds until tokens_ reaches >= 0 at the current rate. Caller holds mu_.
  [[nodiscard]] std::chrono::nanoseconds TimeToSolvency() const;
  // Tags a new request and enqueues its key. Caller holds mu_.
  Key Enqueue(std::uint64_t n, int flow, double weight);
  // Grants the head request `key` for `n` bytes. Caller holds mu_.
  void Grant(const Key& key, std::uint64_t n, int flow);
  // Removes an abandoned waiter. Caller holds mu_.
  void Abandon(const Key& key, std::uint64_t n);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t rate_;         // bytes per second; 0 = unlimited
  std::uint64_t burst_;        // max positive tokens
  double tokens_;              // may be negative (debt)
  Clock::time_point last_refill_;
  std::uint64_t next_ticket_ = 0;   // tie-break + key uniqueness
  std::set<Key> waiting_;           // pending requests, ascending start tag
  bool in_service_ = false;         // head is inside the solvency wait
  double vclock_ = 0.0;             // SFQ virtual time (last granted start tag)
  std::map<int, double> flow_finish_;    // per-flow last finish tag
  std::uint64_t flow0_admitted_ = 0;            // flow-0 (legacy) fast path
  std::map<int, std::uint64_t> flow_admitted_;  // other flows' telemetry
  std::uint64_t admitted_ = 0;
  std::uint64_t queued_bytes_ = 0;  // bytes held by waiters, for EstimateDelay
};

}  // namespace ckpt::util
