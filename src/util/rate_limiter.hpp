// Token-bucket rate limiter used to model every bandwidth-limited resource in
// the simulated node: NVLink/D2D engines, shared PCIe Gen4 links, NVMe
// drives, the parallel file system uplink, and pinned-memory registration.
//
// The limiter uses a debt model with FIFO admission: acquire(n) waits until
// (a) it is the oldest waiter and (b) the bucket is non-negative, then
// subtracts n (the bucket may go negative, which delays the *next* waiter).
// This yields accurate long-term throughput shaping and models the
// serialization observed on a shared physical link: two GPUs sharing a PCIe
// link each see roughly half the bandwidth under contention, full bandwidth
// alone — exactly the DGX-A100 behaviour the paper describes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/status.hpp"

namespace ckpt::util {

class RateLimiter {
 public:
  /// `bytes_per_sec == 0` means unlimited (acquire returns immediately).
  /// `burst_bytes` caps idle accumulation. The bucket starts *empty*: the
  /// debt model admits the first request instantly and shapes everything
  /// after it, which models a link accurately from the first byte.
  explicit RateLimiter(std::uint64_t bytes_per_sec,
                       std::uint64_t burst_bytes = 1ull << 16);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Blocks until `n` bytes worth of tokens have been admitted.
  void Acquire(std::uint64_t n);

  /// Non-blocking variant: admits only if no queue and tokens available now.
  [[nodiscard]] bool TryAcquire(std::uint64_t n);

  /// Blocks at most `timeout`; returns kTimeout if not admitted in time.
  Status AcquireFor(std::uint64_t n, std::chrono::nanoseconds timeout);

  /// Dynamically retune the rate (e.g. ablations on link speed).
  void set_rate(std::uint64_t bytes_per_sec);
  [[nodiscard]] std::uint64_t rate() const;

  /// Total bytes admitted since construction (telemetry).
  [[nodiscard]] std::uint64_t admitted_bytes() const;

  /// Estimated time for `n` further bytes to be admitted, given the current
  /// debt and queue. Used by the eviction predictor (`predict_evictable`).
  [[nodiscard]] std::chrono::nanoseconds EstimateDelay(std::uint64_t n) const;

 private:
  using Clock = std::chrono::steady_clock;

  // Refills tokens_ from elapsed time. Caller holds mu_.
  void Refill(Clock::time_point now);
  // Nanoseconds until tokens_ reaches >= 0 at the current rate. Caller holds mu_.
  [[nodiscard]] std::chrono::nanoseconds TimeToSolvency() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t rate_;         // bytes per second; 0 = unlimited
  std::uint64_t burst_;        // max positive tokens
  double tokens_;              // may be negative (debt)
  Clock::time_point last_refill_;
  std::uint64_t next_ticket_ = 0;   // FIFO admission
  std::uint64_t serving_ticket_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t queued_bytes_ = 0;  // bytes held by waiters, for EstimateDelay
};

}  // namespace ckpt::util
