// Deterministic, seed-parameterized randomness. Every stochastic component
// (trace sizes, irregular restore orders, fill patterns) derives its engine
// from an explicit seed so experiments reproduce bit-identically.
#pragma once

#include <cstdint>
#include <random>

namespace ckpt::util {

/// SplitMix64 scrambler: derives statistically independent child seeds from
/// a master seed plus a stream id (e.g. process rank, shot index).
[[nodiscard]] constexpr std::uint64_t SplitMix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] constexpr std::uint64_t DeriveSeed(std::uint64_t master,
                                                 std::uint64_t stream) noexcept {
  return SplitMix64(master ^ SplitMix64(stream + 0x632BE59BD9B4E019ull));
}

[[nodiscard]] inline std::mt19937_64 MakeRng(std::uint64_t master,
                                             std::uint64_t stream = 0) {
  return std::mt19937_64(DeriveSeed(master, stream));
}

/// Samples a lognormal value clamped to [lo, hi]. Used by the RTM trace
/// model for compressed checkpoint sizes.
[[nodiscard]] inline double ClampedLognormal(std::mt19937_64& rng, double mu,
                                             double sigma, double lo, double hi) {
  std::lognormal_distribution<double> dist(mu, sigma);
  double v = dist(rng);
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

}  // namespace ckpt::util
