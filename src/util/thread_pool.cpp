#include "util/thread_pool.hpp"

#include <algorithm>

namespace ckpt::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(std::max<std::size_t>(num_threads, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(num_threads, 1); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.Close();
  // jthread joins in its destructor.
}

void ThreadPool::WorkerLoop() {
  while (auto task = queue_.Pop()) {
    (*task)();
    {
      std::lock_guard lock(idle_mu_);
      --pending_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::Wait() {
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [&] { return pending_ == 0; });
}

}  // namespace ckpt::util
