#include "util/rate_limiter.hpp"

#include <algorithm>

namespace ckpt::util {

RateLimiter::RateLimiter(std::uint64_t bytes_per_sec, std::uint64_t burst_bytes)
    : rate_(bytes_per_sec),
      burst_(std::max<std::uint64_t>(burst_bytes, 1)),
      tokens_(0.0),
      last_refill_(Clock::now()) {}

void RateLimiter::Refill(Clock::time_point now) {
  if (rate_ == 0) return;
  const auto elapsed = std::chrono::duration<double>(now - last_refill_).count();
  if (elapsed <= 0) return;
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + elapsed * static_cast<double>(rate_));
  last_refill_ = now;
}

std::chrono::nanoseconds RateLimiter::TimeToSolvency() const {
  if (rate_ == 0 || tokens_ >= 0) return std::chrono::nanoseconds(0);
  const double secs = -tokens_ / static_cast<double>(rate_);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(secs * 1e9) + 1);
}

RateLimiter::Key RateLimiter::Enqueue(std::uint64_t n, int flow,
                                      double weight) {
  if (waiting_.empty() && !in_service_) {
    // Idle reset: with no backlog there is no contention to arbitrate, so
    // virtual time restarts and stale per-flow finish tags are dropped
    // (standard SFQ idle handling — an idle flow is not owed back-credit).
    vclock_ = 0.0;
    flow_finish_.clear();
  }
  const double start = std::max(vclock_, flow_finish_[flow]);
  flow_finish_[flow] =
      start + static_cast<double>(n) / (weight > 0.0 ? weight : 1.0);
  const Key key{start, next_ticket_++};
  waiting_.insert(key);
  queued_bytes_ += n;
  return key;
}

void RateLimiter::Grant(const Key& key, std::uint64_t n, int flow) {
  tokens_ -= static_cast<double>(n);
  admitted_ += n;
  if (flow == 0) {
    flow0_admitted_ += n;
  } else {
    flow_admitted_[flow] += n;
  }
  queued_bytes_ -= n;
  vclock_ = std::max(vclock_, key.first);
  waiting_.erase(key);
  in_service_ = false;
  cv_.notify_all();
}

void RateLimiter::Abandon(const Key& key, std::uint64_t n) {
  waiting_.erase(key);
  queued_bytes_ -= n;
  cv_.notify_all();  // the head may have changed
}

void RateLimiter::Acquire(std::uint64_t n, int flow, double weight) {
  std::unique_lock lock(mu_);
  if (rate_ == 0) {
    admitted_ += n;  // unlimited: still count traffic
    // Flow 0 (every single-flow legacy caller) bypasses the per-flow map so
    // the unlimited fast path stays a couple of adds.
    if (flow == 0) {
      flow0_admitted_ += n;
    } else {
      flow_admitted_[flow] += n;
    }
    return;
  }
  const Key key = Enqueue(n, flow, weight);
  cv_.wait(lock, [&] { return !in_service_ && *waiting_.begin() == key; });
  in_service_ = true;
  // Head of the queue: wait until the bucket recovers from prior debt.
  for (;;) {
    Refill(Clock::now());
    if (tokens_ >= 0 || rate_ == 0) break;
    cv_.wait_for(lock, TimeToSolvency());
  }
  Grant(key, n, flow);
}

bool RateLimiter::TryAcquire(std::uint64_t n) {
  std::unique_lock lock(mu_);
  if (rate_ == 0) {
    admitted_ += n;
    flow0_admitted_ += n;
    return true;
  }
  if (!waiting_.empty() || in_service_) return false;  // someone is queued
  Refill(Clock::now());
  if (tokens_ < 0) return false;
  tokens_ -= static_cast<double>(n);
  admitted_ += n;
  flow0_admitted_ += n;
  return true;
}

Status RateLimiter::AcquireFor(std::uint64_t n, std::chrono::nanoseconds timeout,
                               int flow, double weight) {
  const auto deadline = Clock::now() + timeout;
  std::unique_lock lock(mu_);
  if (rate_ == 0) {
    admitted_ += n;
    if (flow == 0) {
      flow0_admitted_ += n;
    } else {
      flow_admitted_[flow] += n;
    }
    return OkStatus();
  }
  const Key key = Enqueue(n, flow, weight);
  if (!cv_.wait_until(lock, deadline, [&] {
        return !in_service_ && *waiting_.begin() == key;
      })) {
    Abandon(key, n);
    return Timeout("rate limiter admission timed out");
  }
  in_service_ = true;
  for (;;) {
    Refill(Clock::now());
    if (tokens_ >= 0 || rate_ == 0) break;
    if (Clock::now() >= deadline) {
      in_service_ = false;
      Abandon(key, n);
      return Timeout("rate limiter token wait timed out");
    }
    const auto wait = std::min<Clock::duration>(TimeToSolvency(),
                                                deadline - Clock::now());
    cv_.wait_for(lock, wait);
  }
  Grant(key, n, flow);
  return OkStatus();
}

void RateLimiter::set_rate(std::uint64_t bytes_per_sec) {
  std::lock_guard lock(mu_);
  Refill(Clock::now());
  rate_ = bytes_per_sec;
  cv_.notify_all();
}

std::uint64_t RateLimiter::rate() const {
  std::lock_guard lock(mu_);
  return rate_;
}

std::uint64_t RateLimiter::admitted_bytes() const {
  std::lock_guard lock(mu_);
  return admitted_;
}

std::uint64_t RateLimiter::admitted_bytes(int flow) const {
  std::lock_guard lock(mu_);
  if (flow == 0) return flow0_admitted_;
  const auto it = flow_admitted_.find(flow);
  return it == flow_admitted_.end() ? 0 : it->second;
}

std::chrono::nanoseconds RateLimiter::EstimateDelay(std::uint64_t n) const {
  std::lock_guard lock(mu_);
  if (rate_ == 0) return std::chrono::nanoseconds(0);
  // Outstanding debt + queued bytes + the new bytes, all served at rate_.
  double backlog = static_cast<double>(queued_bytes_) + static_cast<double>(n);
  if (tokens_ < 0) backlog += -tokens_;
  const double secs = backlog / static_cast<double>(rate_);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(secs * 1e9));
}

}  // namespace ckpt::util
