#include "util/rate_limiter.hpp"

#include <algorithm>

namespace ckpt::util {

RateLimiter::RateLimiter(std::uint64_t bytes_per_sec, std::uint64_t burst_bytes)
    : rate_(bytes_per_sec),
      burst_(std::max<std::uint64_t>(burst_bytes, 1)),
      tokens_(0.0),
      last_refill_(Clock::now()) {}

void RateLimiter::Refill(Clock::time_point now) {
  if (rate_ == 0) return;
  const auto elapsed = std::chrono::duration<double>(now - last_refill_).count();
  if (elapsed <= 0) return;
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + elapsed * static_cast<double>(rate_));
  last_refill_ = now;
}

std::chrono::nanoseconds RateLimiter::TimeToSolvency() const {
  if (rate_ == 0 || tokens_ >= 0) return std::chrono::nanoseconds(0);
  const double secs = -tokens_ / static_cast<double>(rate_);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(secs * 1e9) + 1);
}

void RateLimiter::Acquire(std::uint64_t n) {
  std::unique_lock lock(mu_);
  if (rate_ == 0) {
    ++admitted_;  // unlimited: still count traffic
    admitted_ += n - 1;
    return;
  }
  const std::uint64_t ticket = next_ticket_++;
  queued_bytes_ += n;
  cv_.wait(lock, [&] { return serving_ticket_ == ticket; });
  // Head of the queue: wait until the bucket recovers from prior debt.
  for (;;) {
    Refill(Clock::now());
    if (tokens_ >= 0 || rate_ == 0) break;
    cv_.wait_for(lock, TimeToSolvency());
  }
  tokens_ -= static_cast<double>(n);
  admitted_ += n;
  queued_bytes_ -= n;
  ++serving_ticket_;
  cv_.notify_all();
}

bool RateLimiter::TryAcquire(std::uint64_t n) {
  std::unique_lock lock(mu_);
  if (rate_ == 0) {
    admitted_ += n;
    return true;
  }
  if (serving_ticket_ != next_ticket_) return false;  // someone is queued
  Refill(Clock::now());
  if (tokens_ < 0) return false;
  ++next_ticket_;
  tokens_ -= static_cast<double>(n);
  admitted_ += n;
  ++serving_ticket_;
  return true;
}

Status RateLimiter::AcquireFor(std::uint64_t n, std::chrono::nanoseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  std::unique_lock lock(mu_);
  if (rate_ == 0) {
    admitted_ += n;
    return OkStatus();
  }
  const std::uint64_t ticket = next_ticket_++;
  queued_bytes_ += n;
  auto abandon = [&]() -> Status {
    // We cannot simply vanish: later tickets wait for serving_ticket_ to
    // reach them. Convert our turn into a no-op by advancing when served.
    cv_.wait(lock, [&] { return serving_ticket_ == ticket; });
    queued_bytes_ -= n;
    ++serving_ticket_;
    cv_.notify_all();
    return Timeout("rate limiter admission timed out");
  };
  if (!cv_.wait_until(lock, deadline, [&] { return serving_ticket_ == ticket; })) {
    return abandon();
  }
  for (;;) {
    Refill(Clock::now());
    if (tokens_ >= 0) break;
    const auto wait = std::min<Clock::duration>(TimeToSolvency(), deadline - Clock::now());
    if (Clock::now() >= deadline) {
      queued_bytes_ -= n;
      ++serving_ticket_;
      cv_.notify_all();
      return Timeout("rate limiter token wait timed out");
    }
    cv_.wait_for(lock, wait);
  }
  tokens_ -= static_cast<double>(n);
  admitted_ += n;
  queued_bytes_ -= n;
  ++serving_ticket_;
  cv_.notify_all();
  return OkStatus();
}

void RateLimiter::set_rate(std::uint64_t bytes_per_sec) {
  std::lock_guard lock(mu_);
  Refill(Clock::now());
  rate_ = bytes_per_sec;
  cv_.notify_all();
}

std::uint64_t RateLimiter::rate() const {
  std::lock_guard lock(mu_);
  return rate_;
}

std::uint64_t RateLimiter::admitted_bytes() const {
  std::lock_guard lock(mu_);
  return admitted_;
}

std::chrono::nanoseconds RateLimiter::EstimateDelay(std::uint64_t n) const {
  std::lock_guard lock(mu_);
  if (rate_ == 0) return std::chrono::nanoseconds(0);
  // Outstanding debt + queued bytes + the new bytes, all served at rate_.
  double backlog = static_cast<double>(queued_bytes_) + static_cast<double>(n);
  if (tokens_ < 0) backlog += -tokens_;
  const double secs = backlog / static_cast<double>(rate_);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(secs * 1e9));
}

}  // namespace ckpt::util
