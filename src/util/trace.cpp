#include "util/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "util/clock.hpp"

namespace ckpt::util::trace {

namespace {

constexpr std::size_t kDefaultCapacity = 8192;
constexpr std::size_t kMinCapacity = 64;

/// One thread's ring buffer. Lives in the registry as a shared_ptr so the
/// events survive the writer thread's exit; the writer holds a second
/// reference through its thread_local slot. A thread keeps its buffer for
/// its whole lifetime — ResetBuffers() clears contents in place instead of
/// dropping registrations, so a writer can never race into a buffer the
/// registry no longer knows about.
struct TraceBuffer {
  explicit TraceBuffer(std::uint64_t id_, std::size_t cap, std::string name)
      : id(id_), thread_name(std::move(name)) {
    ring.resize(std::max(cap, kMinCapacity));
  }

  void Push(const Event& e) {
    std::lock_guard lk(mu);
    const std::size_t cap = ring.size();
    if (count < cap) {
      ring[(start + count) % cap] = e;
      ++count;
    } else {
      ring[start] = e;
      start = (start + 1) % cap;
      ++dropped;
    }
  }

  /// Clears events and drop accounting; keeps the registration and name.
  void Clear() {
    std::lock_guard lk(mu);
    start = 0;
    count = 0;
    dropped = 0;
  }

  /// Rebuilds the ring at `cap` slots, keeping the newest events that fit.
  void Resize(std::size_t cap) {
    std::lock_guard lk(mu);
    cap = std::max(cap, kMinCapacity);
    if (cap == ring.size()) return;
    std::vector<Event> fresh(cap);
    const std::size_t keep = std::min(count, cap);
    for (std::size_t i = 0; i < keep; ++i) {
      fresh[i] = ring[(start + (count - keep) + i) % ring.size()];
    }
    dropped += count - keep;
    ring.swap(fresh);
    start = 0;
    count = keep;
  }

  const std::uint64_t id;
  std::mutex mu;  // leaf lock: never acquired while holding another lock here
  std::string thread_name;        // guarded by mu
  std::vector<Event> ring;        // guarded by mu
  std::size_t start = 0;          // index of oldest event; guarded by mu
  std::size_t count = 0;          // live events; guarded by mu
  std::uint64_t dropped = 0;      // events overwritten/discarded; guarded by mu
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::uint64_t next_id = 1;
  std::size_t capacity = kDefaultCapacity;
  std::string out_path;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: usable during static dtors
  return *r;
}

/// String intern pool. Node-based container: pointers into elements stay
/// valid forever.
struct InternPool {
  std::mutex mu;
  std::deque<std::string> storage;
  std::unordered_set<std::string_view> index;
};

InternPool& intern_pool() {
  static InternPool* p = new InternPool;
  return *p;
}

bool EnvTruthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s == "1" || s == "on" || s == "true" || s == "yes";
}

std::size_t ParseCapacity(const char* v) {
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const double base = std::strtod(v, &end);
  if (end == v || base <= 0) return 0;
  double mult = 1.0;
  switch (std::tolower(static_cast<unsigned char>(*end))) {
    case 'k': mult = 1024.0; break;
    case 'm': mult = 1024.0 * 1024.0; break;
    default: break;
  }
  return static_cast<std::size_t>(base * mult);
}

/// Seeds the registry configuration from CKPT_TRACE* exactly once.
void EnvSeedOnce() {
  static const bool seeded = [] {
    auto& r = registry();
    std::lock_guard lk(r.mu);
    if (const char* out = std::getenv("CKPT_TRACE_OUT")) r.out_path = out;
    if (const std::size_t cap = ParseCapacity(std::getenv("CKPT_TRACE_CAPACITY"));
        cap > 0) {
      r.capacity = cap;
    }
#ifndef CKPT_TRACE_DISABLED
    if (EnvTruthy("CKPT_TRACE")) {
      detail::g_enabled.store(true, std::memory_order_relaxed);
    }
    if (EnvTruthy("CKPT_LINEAGE")) {
      detail::g_flows.store(true, std::memory_order_relaxed);
    }
#endif
    return true;
  }();
  (void)seeded;
}

/// The enabled() fast path reads only the atomic flag, so the environment
/// seed must be applied before the first emission attempt — do it at static
/// initialization (idempotent with the lazy calls).
[[maybe_unused]] const bool g_env_seeded_at_startup = (EnvSeedOnce(), true);

/// Per-thread slot: a reference to this thread's buffer. The reference is
/// permanent once registered — ResetBuffers() clears contents rather than
/// invalidating registrations, so there is no re-registration epoch to
/// race against.
struct ThreadSlot {
  std::shared_ptr<TraceBuffer> buffer;
  std::string name;  // sticky label, applied at registration
};

ThreadSlot& thread_slot() {
  thread_local ThreadSlot slot;
  return slot;
}

TraceBuffer& CurrentBuffer() {
  EnvSeedOnce();
  ThreadSlot& slot = thread_slot();
  // Fast path without the registry lock: the slot's buffer stays registered
  // for the thread's lifetime, so the reference can never be stale.
  if (slot.buffer != nullptr) return *slot.buffer;
  auto& r = registry();
  std::lock_guard lk(r.mu);
  const std::uint64_t id = r.next_id++;
  auto buf = std::make_shared<TraceBuffer>(
      id, r.capacity,
      slot.name.empty() ? "thread-" + std::to_string(id) : slot.name);
  r.buffers.push_back(buf);
  slot.buffer = std::move(buf);
  return *slot.buffer;
}

}  // namespace

#ifndef CKPT_TRACE_DISABLED
namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_flows{false};
}  // namespace detail
#endif

namespace {

/// Applies a new per-thread ring capacity to future and already-registered
/// buffers (registrations are permanent, so a capacity change must reach
/// live rings in place).
void SetCapacity(std::size_t cap) {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  r.capacity = cap;
  for (const auto& b : r.buffers) b->Resize(cap);
}

}  // namespace

void Configure(bool on, std::size_t cap, std::string out) {
  EnvSeedOnce();
  auto& r = registry();
  if (cap > 0) SetCapacity(cap);
  if (!out.empty()) {
    std::lock_guard lk(r.mu);
    r.out_path = std::move(out);
  }
#ifndef CKPT_TRACE_DISABLED
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void Enable(std::size_t cap) {
  EnvSeedOnce();
  if (cap > 0) SetCapacity(cap);
#ifndef CKPT_TRACE_DISABLED
  detail::g_enabled.store(true, std::memory_order_relaxed);
#endif
}

void Disable() {
#ifndef CKPT_TRACE_DISABLED
  detail::g_enabled.store(false, std::memory_order_relaxed);
#endif
}

std::string out_path() {
  EnvSeedOnce();
  auto& r = registry();
  std::lock_guard lk(r.mu);
  return r.out_path;
}

std::size_t capacity() {
  EnvSeedOnce();
  auto& r = registry();
  std::lock_guard lk(r.mu);
  return r.capacity;
}

std::int64_t Now() noexcept {
  // Shared epoch with util::NowNs() so trace timestamps line up with the
  // logging prefix and metrics stopwatches.
  return NowNs();
}

const char* Intern(std::string_view name) {
  auto& p = intern_pool();
  std::lock_guard lk(p.mu);
  if (auto it = p.index.find(name); it != p.index.end()) return it->data();
  p.storage.emplace_back(name);
  auto [it, inserted] = p.index.insert(std::string_view(p.storage.back()));
  (void)inserted;
  return it->data();
}

void SetThreadName(std::string_view name) {
  ThreadSlot& slot = thread_slot();
  slot.name.assign(name);
  if (slot.buffer != nullptr) {
    std::lock_guard lk(slot.buffer->mu);
    slot.buffer->thread_name = slot.name;
  }
}

namespace detail {
void EmitEvent(const Event& e) { CurrentBuffer().Push(e); }
}  // namespace detail

TraceSnapshot Collect() {
  EnvSeedOnce();
  std::vector<std::shared_ptr<TraceBuffer>> bufs;
  {
    auto& r = registry();
    std::lock_guard lk(r.mu);
    bufs = r.buffers;
  }
  TraceSnapshot snap;
  snap.threads.reserve(bufs.size());
  for (const auto& b : bufs) {
    ThreadEvents te;
    std::lock_guard lk(b->mu);
    if (b->count == 0) continue;  // e.g. cleared by ResetBuffers, or idle
    te.buffer_id = b->id;
    te.thread_name = b->thread_name;
    te.dropped = b->dropped;
    te.events.reserve(b->count);
    // Oldest surviving event first.
    for (std::size_t i = 0; i < b->count; ++i) {
      te.events.push_back(b->ring[(b->start + i) % b->ring.size()]);
    }
    snap.threads.push_back(std::move(te));
  }
  return snap;
}

void ResetBuffers() {
  auto& r = registry();
  std::lock_guard lk(r.mu);
  for (const auto& b : r.buffers) b->Clear();
  // Prune buffers whose writer thread has exited (the registry holds the
  // only remaining reference); live threads keep their registration so
  // concurrent emission stays collectable.
  std::erase_if(r.buffers, [](const std::shared_ptr<TraceBuffer>& b) {
    return b.use_count() == 1;
  });
}

}  // namespace ckpt::util::trace
