// Minimal thread-safe leveled logger. The runtime logs sparingly (state
// transitions at kTrace, engine milestones at kDebug); benches and examples
// run at kInfo by default. Level is process-global and can be set from the
// CKPT_LOG_LEVEL environment variable (trace|debug|info|warn|error|off).
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string_view>

namespace ckpt::util {

enum class LogLevel : std::uint8_t {
  kTrace = 0,
  kDebug,
  kInfo,
  kWarn,
  kError,
  kOff,
};

/// Global minimum level; messages below it are compiled to a cheap branch.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses a level name (case-insensitive); returns kInfo on unknown input,
/// after warning once per process naming the bad value and the accepted set.
LogLevel parse_log_level(std::string_view name) noexcept;

namespace detail {
/// Re-arms the one-time unknown-level warning (test hook).
void ResetUnknownLevelWarningForTest() noexcept;
}  // namespace detail

namespace detail {
/// Emits one formatted line ("<elapsed_us> <LEVEL> <tag>: <msg>") to stderr
/// under an internal mutex so concurrent engine threads do not interleave.
void log_line(LogLevel level, std::string_view tag, std::string_view msg);
}  // namespace detail

/// Stream-style logging: CKPT_LOG(kDebug, "flush") << "ckpt " << id;
#define CKPT_LOG(level, tag)                                          \
  if (::ckpt::util::LogLevel::level < ::ckpt::util::log_level()) {    \
  } else                                                              \
    ::ckpt::util::detail::LogStream(::ckpt::util::LogLevel::level, tag)

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LogStream() { log_line(level_, tag_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view tag_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace ckpt::util
