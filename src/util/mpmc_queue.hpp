// Blocking multi-producer/multi-consumer queue with close semantics, used for
// the engine's flush and prefetch work queues (T_D2H, T_H2F, T_PF). The
// queues are low-rate control channels (one item per checkpoint), so a
// mutex-based design is the right trade-off over lock-free complexity.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ckpt::util {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity == 0` means unbounded.
  explicit MpmcQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while the queue is full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard lock(mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Push to the front (used to re-queue a popped item that must retain
  /// priority, e.g. a prefetch that could not reserve cache space yet).
  bool PushFront(T item) {
    std::lock_guard lock(mu_);
    if (closed_) return false;
    items_.push_front(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// After Close(), pushes fail; pops drain remaining items then return
  /// nullopt. Idempotent.
  void Close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ckpt::util
