// Lightweight status / status-or-value error handling for the checkpoint
// runtime. The runtime is exception-free on hot paths: every fallible
// operation returns a Status (or StatusOr<T>) that callers must consume.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ckpt::util {

/// Error taxonomy shared across all modules. Mirrors the kinds of failure a
/// CUDA-backed multi-level checkpoint runtime actually surfaces.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,    ///< caller violated an API precondition
  kNotFound,           ///< checkpoint/object/tier id unknown
  kAlreadyExists,      ///< duplicate checkpoint id on a tier
  kOutOfMemory,        ///< allocation failure on a device/host arena
  kCapacityExceeded,   ///< object larger than the whole cache/tier
  kUnavailable,        ///< transient: resource busy, retry may succeed
  kFailedPrecondition, ///< object in a state that forbids the operation
  kCancelled,          ///< operation cancelled (e.g. discarded checkpoint)
  kIoError,            ///< storage-tier read/write failure
  kTimeout,            ///< blocking wait exceeded its deadline
  kShutdown,           ///< engine is stopping; no new work accepted
  kInternal,           ///< invariant violation (bug)
};

/// Human-readable name for an error code.
std::string_view to_string(ErrorCode code) noexcept;

/// A cheap, movable status value. `ok()` statuses carry no message.
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors, mirroring absl-style helpers.
inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) {
  return {ErrorCode::kInvalidArgument, std::move(m)};
}
inline Status NotFound(std::string m) {
  return {ErrorCode::kNotFound, std::move(m)};
}
inline Status AlreadyExists(std::string m) {
  return {ErrorCode::kAlreadyExists, std::move(m)};
}
inline Status OutOfMemory(std::string m) {
  return {ErrorCode::kOutOfMemory, std::move(m)};
}
inline Status CapacityExceeded(std::string m) {
  return {ErrorCode::kCapacityExceeded, std::move(m)};
}
inline Status Unavailable(std::string m) {
  return {ErrorCode::kUnavailable, std::move(m)};
}
inline Status FailedPrecondition(std::string m) {
  return {ErrorCode::kFailedPrecondition, std::move(m)};
}
inline Status Cancelled(std::string m) {
  return {ErrorCode::kCancelled, std::move(m)};
}
inline Status IoError(std::string m) {
  return {ErrorCode::kIoError, std::move(m)};
}
inline Status Timeout(std::string m) {
  return {ErrorCode::kTimeout, std::move(m)};
}
inline Status ShutdownError(std::string m) {
  return {ErrorCode::kShutdown, std::move(m)};
}
inline Status Internal(std::string m) {
  return {ErrorCode::kInternal, std::move(m)};
}

/// Value-or-status result. Minimal std::expected stand-in (the toolchain's
/// libstdc++ predates <expected>) with the subset of the API we use.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T& operator*() const& { return *value_; }
  [[nodiscard]] T* operator->() { return &*value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }

 private:
  Status status_{};
  std::optional<T> value_{};
};

/// Propagate a non-OK status to the caller.
#define CKPT_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::ckpt::util::Status _st = (expr);              \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Assign the value of a StatusOr expression or propagate its status.
#define CKPT_ASSIGN_OR_RETURN(lhs, expr)            \
  auto CKPT_CONCAT_(_sor_, __LINE__) = (expr);      \
  if (!CKPT_CONCAT_(_sor_, __LINE__).ok())          \
    return CKPT_CONCAT_(_sor_, __LINE__).status();  \
  lhs = std::move(CKPT_CONCAT_(_sor_, __LINE__)).value()

#define CKPT_CONCAT_IMPL_(a, b) a##b
#define CKPT_CONCAT_(a, b) CKPT_CONCAT_IMPL_(a, b)

}  // namespace ckpt::util
