// Key=value configuration with environment-variable override, used to scale
// the simulated node (bandwidths, cache sizes, checkpoint counts) without
// recompiling. Benches read CKPT_SCALE_* variables through this module.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace ckpt::util {

class Config {
 public:
  Config() = default;

  /// Parses newline- or comma-separated "key = value" pairs. Lines starting
  /// with '#' are comments. Later keys override earlier ones.
  static StatusOr<Config> Parse(std::string_view text);

  void Set(std::string key, std::string value);

  [[nodiscard]] bool Has(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> GetString(std::string_view key) const;
  [[nodiscard]] std::string GetString(std::string_view key, std::string_view def) const;

  /// Integer values accept size suffixes: k/K (*1000), ki/Ki (*1024), and
  /// similarly m/M/g/G/t/T. "4Mi" == 4*1024*1024.
  [[nodiscard]] StatusOr<std::int64_t> GetInt(std::string_view key) const;
  [[nodiscard]] std::int64_t GetInt(std::string_view key, std::int64_t def) const;

  [[nodiscard]] StatusOr<double> GetDouble(std::string_view key) const;
  [[nodiscard]] double GetDouble(std::string_view key, double def) const;

  [[nodiscard]] StatusOr<bool> GetBool(std::string_view key) const;
  [[nodiscard]] bool GetBool(std::string_view key, bool def) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

/// Parses an integer with optional size suffix ("128k", "4Mi", "1G").
StatusOr<std::int64_t> ParseSize(std::string_view text);

/// Environment lookup with default; uses ParseSize for integers.
std::int64_t EnvInt(const char* name, std::int64_t def);
double EnvDouble(const char* name, double def);
std::string EnvString(const char* name, std::string_view def);

}  // namespace ckpt::util
