#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace ckpt::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

LogLevel initial_level() {
  if (const char* env = std::getenv("CKPT_LOG_LEVEL")) {
    return parse_log_level(env);
  }
  return LogLevel::kInfo;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

std::chrono::steady_clock::time_point g_start = std::chrono::steady_clock::now();

}  // namespace

LogLevel log_level() noexcept {
  static const LogLevel init = [] {
    LogLevel l = initial_level();
    g_level.store(l, std::memory_order_relaxed);
    return l;
  }();
  (void)init;
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

namespace {
std::atomic<bool> g_unknown_level_warned{false};
}  // namespace

LogLevel parse_log_level(std::string_view name) noexcept {
  std::string lower(name);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  // Unknown name (typically a typo'd CKPT_LOG_LEVEL). Warn once, directly
  // via log_line: parse_log_level runs inside log_level()'s one-time init,
  // so going through CKPT_LOG here would re-enter that initialization.
  if (!g_unknown_level_warned.exchange(true, std::memory_order_relaxed)) {
    detail::log_line(LogLevel::kWarn, "logging",
                     "unknown log level '" + std::string(name) +
                         "', defaulting to 'info' (accepted: trace, debug, "
                         "info, warn|warning, error, off|none)");
  }
  return LogLevel::kInfo;
}

namespace detail {

void ResetUnknownLevelWarningForTest() noexcept {
  g_unknown_level_warned.store(false, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view tag, std::string_view msg) {
  static std::mutex mu;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - g_start)
                      .count();
  std::lock_guard lock(mu);
  std::fprintf(stderr, "[%10lld us] %s %.*s: %.*s\n", static_cast<long long>(us),
               level_name(level), static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail

}  // namespace ckpt::util
