// Online statistics and histogram utilities used by the metric collectors:
// per-operation blocking-time accumulators (throughput figures), prefetch
// distance series (Fig. 7) and latency percentiles for the ablations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ckpt::util {

/// Welford-style single-pass accumulator: count/mean/variance/min/max/sum.
class OnlineStats {
 public:
  void Add(double x) noexcept {
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void Merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : 0.0;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of raw samples with exact percentiles. Fine for the volumes we
/// record (hundreds of operations per shot).
class SampleSeries {
 public:
  void Add(double x) { samples_.push_back(x); }
  void Reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  /// Exact percentile with linear interpolation; p in [0, 100].
  [[nodiscard]] double Percentile(double p) const;
  [[nodiscard]] double Sum() const;
  [[nodiscard]] double Mean() const;
  [[nodiscard]] double Min() const;
  [[nodiscard]] double Max() const;

 private:
  std::vector<double> samples_;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range values clamp to
/// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x) noexcept;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t num_buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;

  /// Render "lo..hi: count" lines, for debugging/bench output.
  [[nodiscard]] std::string ToString() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log-bucketed histogram for latency distributions: buckets are uniform in
/// log10(x) with `buckets_per_decade` buckets per decade over [lo, hi).
/// Values below lo (including non-positive) land in the first bucket,
/// values >= hi in the last. Defaults cover 100ns..1000s in seconds — wide
/// enough for any per-stage latency the engine measures.
class LogHistogram {
 public:
  explicit LogHistogram(double lo = 1e-7, double hi = 1e3,
                        std::size_t buckets_per_decade = 4);

  void Add(double x) noexcept;
  /// Accumulates another histogram with the same shape; mismatched shapes
  /// fold into min/max/total only (counts of `other` are re-added by value
  /// bucket using each bucket's lower edge).
  void Merge(const LogHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t num_buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  /// Lower edge of bucket i in value units.
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double min() const noexcept { return total_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return total_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }
  /// Approximate percentile (bucket lower-edge interpolation); p in [0,100].
  [[nodiscard]] double Percentile(double p) const noexcept;

  [[nodiscard]] bool SameShape(const LogHistogram& other) const noexcept {
    return lo_ == other.lo_ && buckets_per_decade_ == other.buckets_per_decade_ &&
           counts_.size() == other.counts_.size();
  }

 private:
  double lo_, log_lo_;
  std::size_t buckets_per_decade_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Formats a byte rate as a human-readable string ("25.0 GB/s").
[[nodiscard]] std::string FormatRate(double bytes_per_sec);
/// Formats a byte size ("4.0 MB").
[[nodiscard]] std::string FormatBytes(double bytes);

}  // namespace ckpt::util
