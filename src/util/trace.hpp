// Low-overhead structured event tracing (the paper's §5.3.5 evaluation is
// about *where time goes*; this is the sensor layer that makes one run's
// flush/prefetch overlap inspectable instead of inferable).
//
// Design:
//   * Per-thread fixed-capacity ring buffers of typed POD events. A writer
//     only touches its own buffer (one uncontended mutex acquisition per
//     event); when the ring is full the oldest events are overwritten and
//     counted as dropped, so tracing never blocks or allocates on the hot
//     path after buffer creation.
//   * A process-global registry keeps every buffer alive past thread exit,
//     so a dump after Engine::Shutdown still sees the worker events.
//   * Runtime gate: a single relaxed atomic load when tracing is off.
//   * Compile-out gate: building with -DCKPT_TRACE_DISABLED turns enabled()
//     into `constexpr false`, so every call site folds away entirely.
//
// The exporter side (Chrome trace-event JSON for Perfetto, metrics
// snapshots) lives in core/trace_sink; this layer is engine-agnostic.
//
// Configuration: Configure()/Enable()/Disable(), seeded from the
// environment on first use:
//   CKPT_TRACE          1|on|true enables tracing at process start
//   CKPT_TRACE_OUT      default output path for trace dumps
//   CKPT_TRACE_CAPACITY events per thread ring (default 8192, size suffixes
//                       accepted: "16k")
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ckpt::util::trace {

/// Event category. Exported as the Chrome trace `cat` field, so Perfetto
/// can filter one pipeline (all flush stages, all eviction rounds) at once.
enum class Kind : std::uint8_t {
  kLifecycle = 0,  ///< checkpoint FSM state dwells/transitions
  kFlush,          ///< flush pipeline stage copies and durable puts
  kPrefetch,       ///< prefetch promotions / hits / aborts
  kEviction,       ///< eviction planner rounds and re-plan waits
  kRetry,          ///< retry storms, tier degradations, lost checkpoints
  kApp,            ///< application-observed blocking (Checkpoint/Restore)
  kHealth,         ///< watchdog verdicts (stall detection, flight dumps)
};

[[nodiscard]] constexpr std::string_view to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kLifecycle: return "lifecycle";
    case Kind::kFlush: return "flush";
    case Kind::kPrefetch: return "prefetch";
    case Kind::kEviction: return "eviction";
    case Kind::kRetry: return "retry";
    case Kind::kApp: return "app";
    case Kind::kHealth: return "health";
  }
  return "?";
}

/// Causal-flow phase of an event. kNone marks ordinary spans/instants;
/// the others render as Chrome flow events (ph "s"/"t"/"f") bound across
/// threads by Event::flow_id, so Perfetto draws arrows along one
/// checkpoint's lineage (put -> flush stages -> group seal -> remote put
/// -> durable / erased / lost).
enum class FlowPhase : std::uint8_t {
  kNone = 0,  ///< not a flow event
  kStart,     ///< flow begins (ph "s"): object admitted / group opened
  kStep,      ///< intermediate hop (ph "t")
  kEnd,       ///< flow terminates (ph "f"): exactly one per incarnation
};

/// One trace event. `name` must point at storage that outlives the registry:
/// a string literal or an Intern()ed string.
struct Event {
  std::int64_t ts_ns = 0;    ///< begin time, ns since trace epoch
  std::int64_t dur_ns = -1;  ///< span duration; < 0 marks an instant event
  const char* name = "";
  Kind kind = Kind::kApp;
  FlowPhase flow = FlowPhase::kNone;  ///< lineage phase (flow events only)
  std::int16_t rank = -1;    ///< emitting rank, -1 when rank-less
  std::int16_t tier = -1;    ///< stack tier index the event refers to
  std::uint64_t version = 0; ///< checkpoint version
  std::uint64_t bytes = 0;
  std::uint64_t flow_id = 0; ///< lineage binding id; 0 = not a flow event
  double a = 0.0;            ///< kind-specific (e.g. eviction p_score)
  double b = 0.0;            ///< kind-specific (e.g. eviction s_score)

  [[nodiscard]] bool is_span() const noexcept { return dur_ns >= 0; }
  [[nodiscard]] bool is_flow() const noexcept {
    return flow != FlowPhase::kNone && flow_id != 0;
  }
};

#ifdef CKPT_TRACE_DISABLED
[[nodiscard]] constexpr bool enabled() noexcept { return false; }
[[nodiscard]] constexpr bool flows_enabled() noexcept { return false; }
inline void EnableFlows(bool) noexcept {}
#else
namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_flows;
}  // namespace detail
/// True when tracing is recording. One relaxed load; safe from any thread.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
/// True when lineage flow events are being recorded (requires tracing on).
/// Seeded from CKPT_LINEAGE; the engine also flips it via EngineOptions so
/// stores — which have no engine pointer — self-gate through Flow().
[[nodiscard]] inline bool flows_enabled() noexcept {
  return enabled() && detail::g_flows.load(std::memory_order_relaxed);
}
inline void EnableFlows(bool on) noexcept {
  detail::g_flows.store(on, std::memory_order_relaxed);
}
#endif

/// Applies a full configuration (config-file keys override the environment
/// seed). `capacity` of 0 keeps the current per-thread ring capacity.
void Configure(bool on, std::size_t capacity, std::string out_path);
/// Turns recording on (capacity 0 = keep current).
void Enable(std::size_t capacity = 0);
void Disable();

/// Default dump path (CKPT_TRACE_OUT / `trace_out`); empty when unset.
[[nodiscard]] std::string out_path();
/// Per-thread ring capacity new buffers are created with.
[[nodiscard]] std::size_t capacity();

/// Nanoseconds since the trace epoch (process start). Monotonic.
[[nodiscard]] std::int64_t Now() noexcept;

/// Interns `name` in a process-lifetime pool and returns a stable pointer,
/// for event names composed at runtime ("flush:gpu"). Bounded use only —
/// entries are never freed.
[[nodiscard]] const char* Intern(std::string_view name);

/// Labels the calling thread's track ("r0/flush:gpu"). Applies to the
/// thread's current ring buffer and any it registers later.
void SetThreadName(std::string_view name);

namespace detail {
void EmitEvent(const Event& e);
}  // namespace detail

/// Records an instant event (Chrome `ph:"i"`).
inline void Instant(Kind kind, const char* name, int rank, int tier = -1,
                    std::uint64_t version = 0, std::uint64_t bytes = 0,
                    double a = 0.0, double b = 0.0) {
  if (!enabled()) return;
  Event e;
  e.ts_ns = Now();
  e.dur_ns = -1;
  e.name = name;
  e.kind = kind;
  e.rank = static_cast<std::int16_t>(rank);
  e.tier = static_cast<std::int16_t>(tier);
  e.version = version;
  e.bytes = bytes;
  e.a = a;
  e.b = b;
  detail::EmitEvent(e);
}

/// Records a complete span (Chrome `ph:"X"`) that began at `begin_ns`
/// (a prior Now() reading) and ends now.
inline void SpanSince(Kind kind, const char* name, std::int64_t begin_ns,
                      int rank, int tier = -1, std::uint64_t version = 0,
                      std::uint64_t bytes = 0, double a = 0.0, double b = 0.0) {
  if (!enabled()) return;
  Event e;
  e.ts_ns = begin_ns;
  e.dur_ns = Now() - begin_ns;
  if (e.dur_ns < 0) e.dur_ns = 0;
  e.name = name;
  e.kind = kind;
  e.rank = static_cast<std::int16_t>(rank);
  e.tier = static_cast<std::int16_t>(tier);
  e.version = version;
  e.bytes = bytes;
  e.a = a;
  e.b = b;
  detail::EmitEvent(e);
}

/// Records a causal-flow event (Chrome ph "s"/"t"/"f" keyed by `flow_id`).
/// No-op unless lineage flows are enabled (CKPT_LINEAGE / EnableFlows) on
/// top of tracing itself, so legacy traces stay byte-identical.
inline void Flow(Kind kind, const char* name, std::uint64_t flow_id,
                 FlowPhase phase, int rank, int tier = -1,
                 std::uint64_t version = 0, std::uint64_t bytes = 0) {
  if (!flows_enabled() || flow_id == 0 || phase == FlowPhase::kNone) return;
  Event e;
  e.ts_ns = Now();
  e.dur_ns = -1;
  e.name = name;
  e.kind = kind;
  e.flow = phase;
  e.rank = static_cast<std::int16_t>(rank);
  e.tier = static_cast<std::int16_t>(tier);
  e.version = version;
  e.bytes = bytes;
  e.flow_id = flow_id;
  detail::EmitEvent(e);
}

/// RAII span: captures the begin time at construction, emits on destruction.
/// When tracing is disabled (or compiled out) construction is a no-op.
class Span {
 public:
  Span(Kind kind, const char* name, int rank, int tier = -1,
       std::uint64_t version = 0, std::uint64_t bytes = 0) {
    if (!enabled()) return;
    armed_ = true;
    begin_ns_ = Now();
    kind_ = kind;
    name_ = name;
    rank_ = rank;
    tier_ = tier;
    version_ = version;
    bytes_ = bytes;
  }
  ~Span() {
    if (armed_) {
      SpanSince(kind_, name_, begin_ns_, rank_, tier_, version_, bytes_, a_, b_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Updates the kind-specific args before the span closes.
  void SetArgs(double a, double b) noexcept { a_ = a; b_ = b; }
  void SetBytes(std::uint64_t bytes) noexcept { bytes_ = bytes; }
  void SetTier(int tier) noexcept { tier_ = tier; }
  /// Drops the span without emitting (e.g. an aborted operation that
  /// already emitted its own instant event).
  void Cancel() noexcept { armed_ = false; }

 private:
  bool armed_ = false;
  std::int64_t begin_ns_ = 0;
  Kind kind_ = Kind::kApp;
  const char* name_ = "";
  int rank_ = -1;
  int tier_ = -1;
  std::uint64_t version_ = 0;
  std::uint64_t bytes_ = 0;
  double a_ = 0.0;
  double b_ = 0.0;
};

/// Snapshot of every registered ring buffer, oldest event first per thread.
struct ThreadEvents {
  std::uint64_t buffer_id = 0;     ///< stable per-buffer id (Chrome tid)
  std::string thread_name;         ///< label from SetThreadName (or default)
  std::uint64_t dropped = 0;       ///< events overwritten by ring wrap
  std::vector<Event> events;
};
struct TraceSnapshot {
  std::vector<ThreadEvents> threads;
  [[nodiscard]] std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.events.size();
    return n;
  }
  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const auto& t : threads) n += t.dropped;
    return n;
  }
};

/// Copies every live buffer. Safe while writers are running (per-buffer
/// mutex); events recorded concurrently with the collection may or may not
/// be included. Buffers that hold no events are omitted.
[[nodiscard]] TraceSnapshot Collect();

/// Clears every registered buffer in place (events and drop counts), and
/// prunes buffers whose writer thread has exited. Live threads keep their
/// buffer registered, so an event emitted concurrently with the reset lands
/// either before the clear (discarded) or after it (kept) — never in an
/// orphaned buffer invisible to later Collect() calls. Does not change the
/// enabled flag. Intended for tests and for separating back-to-back runs in
/// one process.
void ResetBuffers();

}  // namespace ckpt::util::trace
