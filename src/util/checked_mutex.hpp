// A std::mutex wrapper that, in debug builds, tracks the owning thread so
// code can assert "this lock is held by me" at the top of helpers whose
// contract is lock-discipline-by-convention (the engine's per-rank state).
// Release builds compile the tracking away entirely: lock()/unlock() inline
// to the raw mutex calls and held_by_caller() folds to `true`, so the
// assertions cost nothing where it matters.
//
// Satisfies Lockable, so std::lock_guard<CheckedMutex>,
// std::unique_lock<CheckedMutex> and std::condition_variable_any all work
// unchanged.
#pragma once

#include <cassert>
#include <mutex>

#ifndef NDEBUG
#include <atomic>
#include <thread>
#endif

namespace ckpt::util {

class CheckedMutex {
 public:
  CheckedMutex() = default;
  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() {
    mu_.lock();
#ifndef NDEBUG
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  void unlock() {
#ifndef NDEBUG
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
#endif
    mu_.unlock();
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
#ifndef NDEBUG
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
    return true;
  }

  /// True when the calling thread holds the lock. Debug builds only; always
  /// true in release, so it is usable inside assert() without #ifdefs.
  [[nodiscard]] bool held_by_caller() const noexcept {
#ifndef NDEBUG
    return owner_.load(std::memory_order_relaxed) == std::this_thread::get_id();
#else
    return true;
#endif
  }

 private:
  std::mutex mu_;
#ifndef NDEBUG
  // Written only by the owner while holding mu_ (or by the next owner after
  // acquiring it); relaxed is enough for the debug assertion's purposes.
  std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace ckpt::util

/// Asserts the calling thread holds `mu` (debug builds; no-op in release).
#define CKPT_ASSERT_HELD(mu) assert((mu).held_by_caller())
