// Live telemetry substrate: a fixed-capacity ring of timestamped engine
// samples with lock-free readers, plus the process-global sampler
// configuration. Where util::trace answers "what happened" after the fact,
// this layer answers "what is happening now": the sampler thread
// (core::TelemetrySampler) periodically snapshots per-rank/per-tier gauges
// and counters into TelemetrySample records that scrapers (OpenMetrics
// exposition, the stall watchdog, flight-recorder dumps) read without
// touching any engine lock.
//
// Design:
//   * SampleRing stores std::atomic<std::shared_ptr<const TelemetrySample>>
//     slots. The writer publishes a fully-built immutable sample with one
//     atomic store; readers load slots lock-free and either see a complete
//     sample or none. No reader ever blocks the sampler (and vice versa).
//   * Samples are immutable after publication, so a scrape that overlaps a
//     ring wrap at worst sees a mix of old and new samples — each of them
//     internally consistent.
//   * Compile-out gate: -DCKPT_TELEMETRY_DISABLED turns enabled() into
//     `constexpr false` so call sites (including the engine's probe-cell
//     increments) fold away, mirroring CKPT_TRACE_DISABLED.
//
// Configuration, seeded from the environment on first use (config-file keys
// via Configure() override the seed, same precedence as util::trace):
//   CKPT_TELEMETRY            1|on|true starts the sampler with the engine
//   CKPT_TELEMETRY_PERIOD_MS  sampler tick period (default 100)
//   CKPT_TELEMETRY_WINDOW     ring capacity in samples (default 128)
//   CKPT_TELEMETRY_OUT        flight-recorder dump path prefix
//   CKPT_TELEMETRY_WATCHDOG   0|off disables the stall watchdog (default on)
//   CKPT_TELEMETRY_STALL_MS   FSM dwell bound before a stall trips (default 2000)
//   CKPT_TELEMETRY_STALL_WINDOWS  consecutive no-progress windows K (default 3)
//   CKPT_TELEMETRY_STRICT     1|on: a watchdog trip fails the run
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ckpt::util::telemetry {

/// Upper bucket edges (seconds) of the `ckpt_durability_lag_seconds`
/// histogram family (put -> durable-ack window, DESIGN.md §14). Roughly
/// half-decade log spacing from 100 µs to 100 s; the final +Inf bucket is
/// implied. Shared between the engine's probe cells and the OpenMetrics
/// renderer so `le` labels always match the counted edges.
inline constexpr double kDurabilityLagEdgesS[] = {
    0.0001, 0.000316, 0.001, 0.00316, 0.01, 0.0316,
    0.1,    0.316,    1.0,   3.16,    10.0, 31.6,   100.0};
/// Bucket count including the trailing +Inf bucket.
inline constexpr std::size_t kDurabilityLagBuckets =
    sizeof(kDurabilityLagEdgesS) / sizeof(double) + 1;

/// Per-tier gauges/counters inside one rank's sample. For cache tiers all
/// fields are live; durable tiers report only the flush byte counter.
struct TierSample {
  std::uint64_t bytes_used = 0;       ///< cache bytes resident (gauge)
  std::uint64_t bytes_capacity = 0;   ///< cache capacity (gauge)
  std::uint64_t flush_queue_depth = 0;  ///< queued + in-flight flush work
  std::uint64_t flush_bytes = 0;      ///< cumulative bytes landed (counter)
  std::uint64_t restores = 0;         ///< cumulative restores served (counter)
  double flush_Bps = 0.0;             ///< derived from the previous sample
  /// Durability-lag histogram cells for durable tiers when lineage tracking
  /// is on (DESIGN.md §14): per-bucket (non-cumulative) counts over
  /// kDurabilityLagEdgesS plus the +Inf bucket, with the classic _count and
  /// _sum. Empty vector = lineage off or cache tier; the renderer emits the
  /// family only when at least one tier carries cells, so legacy exposition
  /// is byte-identical.
  std::vector<std::uint64_t> lag_buckets;
  std::uint64_t lag_count = 0;
  std::uint64_t lag_sum_ns = 0;
};

/// One rank's slice of a sample. Counter fields are cumulative since engine
/// start; the sampler derives window rates from consecutive samples.
struct RankSample {
  int rank = -1;
  /// Owning tenant's name, empty in single-tenant engines. Scrapers emit a
  /// `tenant` label only when non-empty, so legacy exposition is unchanged.
  std::string tenant;
  /// FSM-state occupancy histogram, indexed by core::CkptState.
  std::vector<std::uint64_t> state_occupancy;
  std::int64_t last_transition_ns = 0;  ///< trace-epoch ns of newest FSM edge
  std::uint64_t restore_queue_depth = 0;
  std::uint64_t reserve_rounds = 0;
  std::uint64_t reserve_plans_stale = 0;
  std::uint64_t reserve_snapshot_reuse = 0;
  std::uint64_t reserve_quota_waits = 0;
  std::uint64_t flush_retries = 0;
  std::uint64_t fetch_retries = 0;
  std::uint64_t tier_degradations = 0;
  std::uint64_t checkpoints_lost = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t restores = 0;
  std::uint64_t bytes_checkpointed = 0;
  std::uint64_t bytes_restored = 0;
  std::uint64_t watchdog_stalls = 0;
  // Lineage outcome counters (DESIGN.md §14), all zero when lineage
  // tracking is off. objects_inflight = admitted - terminated, clamped.
  std::uint64_t objects_admitted = 0;
  std::uint64_t objects_durable = 0;
  std::uint64_t objects_degraded = 0;
  std::uint64_t objects_lost = 0;
  std::uint64_t objects_erased = 0;
  double restore_Bps = 0.0;  ///< derived from the previous sample
  std::vector<TierSample> tiers;  ///< one entry per stack tier
};

/// One remote/aggregating durable tier's store-level counters (see
/// storage::StoreStats). Present only for durable tiers whose store chain
/// reports stats — stacks without a remote tier leave `remote_tiers` empty
/// and their exposition byte-identical to before remote backends existed.
struct RemoteTierSample {
  int tier = -1;             ///< stack index of the durable tier
  std::string tier_name;     ///< stack name ("remote", ...)
  std::uint64_t remote_puts = 0;
  std::uint64_t remote_gets = 0;
  std::uint64_t remote_parts = 0;
  std::uint64_t remote_part_retries = 0;
  std::uint64_t remote_put_bytes = 0;
  std::uint64_t remote_get_bytes = 0;
  std::uint64_t agg_member_puts = 0;
  std::uint64_t agg_group_puts = 0;
  std::uint64_t agg_group_put_failures = 0;
  std::uint64_t agg_size_flushes = 0;
  std::uint64_t agg_deadline_flushes = 0;
  std::uint64_t agg_gets_from_pending = 0;
  std::uint64_t agg_group_reclaims = 0;
  std::uint64_t agg_pending_members = 0;  ///< gauge
  std::uint64_t agg_pending_bytes = 0;    ///< gauge
};

/// One timestamped engine snapshot. Immutable once published to the ring.
struct TelemetrySample {
  std::int64_t ts_ns = 0;   ///< trace-epoch timestamp (util::trace::Now)
  std::uint64_t seq = 0;    ///< 0-based sample index since sampler start
  /// True when the sampled engine runs with lineage tracking on; gates the
  /// lineage families in exposition (legacy output stays byte-identical).
  bool lineage = false;
  std::vector<RankSample> ranks;
  /// Engine-wide (not per-rank: the store is shared) remote-tier counters.
  std::vector<RemoteTierSample> remote_tiers;
};

using SamplePtr = std::shared_ptr<const TelemetrySample>;

/// Fixed-capacity ring of published samples. One writer (the sampler
/// thread), any number of lock-free readers.
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity)
      : slots_(capacity > 0 ? capacity : 1) {}

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  /// Publishes `s` as the newest sample. Writer-side only.
  void Push(SamplePtr s) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h % slots_.size()].store(std::move(s), std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Newest published sample, or nullptr before the first Push.
  [[nodiscard]] SamplePtr Latest() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (h == 0) return nullptr;
    return slots_[(h - 1) % slots_.size()].load(std::memory_order_acquire);
  }

  /// Current window, oldest first. Entries published concurrently with the
  /// read may straddle a wrap; nulls and out-of-order seq are filtered so
  /// the result is always a consistent ascending-seq window.
  [[nodiscard]] std::vector<SamplePtr> Window() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::size_t cap = slots_.size();
    const std::uint64_t n = h < cap ? h : cap;
    std::vector<SamplePtr> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      SamplePtr s = slots_[i % cap].load(std::memory_order_acquire);
      if (s == nullptr) continue;
      if (!out.empty() && s->seq <= out.back()->seq) continue;
      out.push_back(std::move(s));
    }
    return out;
  }

  /// Samples ever published (monotonic counter, not window size).
  [[nodiscard]] std::uint64_t total() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<std::atomic<SamplePtr>> slots_;
  std::atomic<std::uint64_t> head_{0};
};

#ifdef CKPT_TELEMETRY_DISABLED
[[nodiscard]] constexpr bool enabled() noexcept { return false; }
#else
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail
/// True when live sampling is requested. One relaxed load, any thread.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
#endif

/// Sampler/watchdog configuration knobs (see file header for env seeds).
struct Settings {
  bool enabled = false;
  std::int64_t period_ms = 100;
  std::size_t window = 128;
  std::string out_path;
  bool watchdog = true;
  std::int64_t stall_ms = 2000;
  int stall_windows = 3;
  bool strict = false;
};

/// Applies a full configuration (config-file keys override the env seed).
/// `period_ms`/`window`/`stall_ms`/`stall_windows` of 0 keep current values;
/// an empty `out_path` keeps the current path.
void Configure(const Settings& s);
/// Current effective settings (env-seeded, then Configure()-overridden).
[[nodiscard]] Settings settings();

/// Convenience accessors over settings().
[[nodiscard]] std::int64_t period_ms();
[[nodiscard]] std::size_t window();
[[nodiscard]] std::string out_path();

}  // namespace ckpt::util::telemetry
