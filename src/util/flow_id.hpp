// Stable 64-bit lineage ids for checkpoint objects. A flow id names one
// object's causal chain across threads, tiers and stores: the engine stamps
// it on Chrome-trace flow events (ph "s"/"t"/"f") at every hop, and
// tools/ckpt_lineage stitches the chain back together from a dump. The id
// must therefore be derivable anywhere the object is visible — engine seams
// know (rank, version); stores know the same pair as ObjectKey — without
// any shared state, which is why it is a pure hash and not a counter.
//
// Ranks are tenant-exclusive contiguous blocks (core::TenantRegistry), so
// (rank, version) already identifies the tenant; folding the tenant id in
// would add no entropy.
#pragma once

#include <cstdint>

namespace ckpt::util::trace {

/// splitmix64 finalizer: full-avalanche 64-bit mix, same construction as
/// storage::ObjectKeyHash.
[[nodiscard]] constexpr std::uint64_t MixFlowId(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Lineage id of checkpoint object (rank, version). Versions occupy the low
/// bits and the rank the high bits before mixing, so distinct objects can
/// only collide through the mix itself (~2^-64 per pair). Never returns 0:
/// Event::flow_id uses 0 for "not a flow event".
///
/// Group objects (storage::AggregatingStore) reuse this with the synthetic
/// group rank (-1) and the group id as the version, so member flows and the
/// group flow they join can never alias.
[[nodiscard]] constexpr std::uint64_t FlowIdOf(std::int64_t rank,
                                               std::uint64_t version) noexcept {
  const std::uint64_t mixed =
      MixFlowId((static_cast<std::uint64_t>(rank) << 44) ^ version);
  return mixed == 0 ? 1 : mixed;
}

}  // namespace ckpt::util::trace
