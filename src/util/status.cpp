#include "util/status.hpp"

namespace ckpt::util {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case ErrorCode::kCapacityExceeded: return "CAPACITY_EXCEEDED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kShutdown: return "SHUTDOWN";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(to_string(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ckpt::util
