// Steady-clock helpers: a scoped stopwatch for blocking-time measurement
// (the figures report application-observed blocking time) and busy/sleep
// helpers used by the workload driver's simulated compute intervals.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace ckpt::util {

using Clock = std::chrono::steady_clock;

// Every timestamp in the engine — trace events, eviction-round spans,
// reservation ETAs — comes from this one clock. It must be monotonic, or
// durations computed across threads (ValidateChromeTrace asserts them
// non-negative) could go backwards under NTP slew.
static_assert(Clock::is_steady,
              "ckpt::util::Clock must be monotonic: trace spans and "
              "eviction-round timing subtract timestamps across threads");

[[nodiscard]] inline std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Stopwatch: construct to start, ElapsedSec()/ElapsedNs() to read.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  [[nodiscard]] std::int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }
  [[nodiscard]] double ElapsedSec() const {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

 private:
  Clock::time_point start_;
};

/// Sleeps for `d`, using a hybrid strategy: OS sleep for the bulk, then a
/// short spin for sub-100us precision (checkpoint intervals in the paper are
/// 10 ms; scaled runs use 0.5-1 ms, where plain sleep_for jitter matters).
/// On machines with very few cores the spin phase is skipped entirely: a
/// spinning thread would starve the engine's background threads and distort
/// every measurement far more than sleep_for jitter does.
inline void PreciseSleep(std::chrono::nanoseconds d) {
  static const bool spin_ok = std::thread::hardware_concurrency() > 2;
  const auto deadline = Clock::now() + d;
  constexpr auto kSpinThreshold = std::chrono::microseconds(100);
  if (!spin_ok) {
    std::this_thread::sleep_for(d);
    return;
  }
  if (d > kSpinThreshold) {
    std::this_thread::sleep_for(d - kSpinThreshold);
  }
  while (Clock::now() < deadline) {
    // spin
  }
}

}  // namespace ckpt::util
