// CRC-32C (Castagnoli) over byte buffers, slice-by-one table implementation.
// Used by the storage layer to detect torn or corrupted checkpoint objects:
// a checkpoint runtime that silently returns corrupt restart data is worse
// than one that fails, so durable writes are checksummed and reads verified.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ckpt::util {

/// Incremental CRC-32C: pass the previous return value as `seed` to chain.
[[nodiscard]] std::uint32_t Crc32c(const void* data, std::size_t size,
                                   std::uint32_t seed = 0) noexcept;

}  // namespace ckpt::util
