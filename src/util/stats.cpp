#include "util/stats.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace ckpt::util {

void OnlineStats::Merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double SampleSeries::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double SampleSeries::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleSeries::Mean() const {
  return samples_.empty() ? 0.0 : Sum() / static_cast<double>(samples_.size());
}

double SampleSeries::Min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSeries::Max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram requires hi > lo and buckets > 0");
  }
}

void Histogram::Add(double x) noexcept {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(line, sizeof(line), "[%12.3f .. %12.3f): %llu\n", bucket_lo(i),
                  bucket_lo(i) + width_, static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t buckets_per_decade)
    : lo_(lo), log_lo_(std::log10(lo)), buckets_per_decade_(buckets_per_decade) {
  if (lo <= 0 || hi <= lo || buckets_per_decade == 0) {
    throw std::invalid_argument(
        "LogHistogram requires 0 < lo < hi and buckets_per_decade > 0");
  }
  const double decades = std::log10(hi) - log_lo_;
  const auto buckets = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(buckets_per_decade)));
  counts_.assign(std::max<std::size_t>(buckets, 1), 0);
}

void LogHistogram::Add(double x) noexcept {
  std::size_t idx = 0;
  if (x >= lo_) {
    const double pos =
        (std::log10(x) - log_lo_) * static_cast<double>(buckets_per_decade_);
    idx = std::min(static_cast<std::size_t>(std::max(pos, 0.0)),
                   counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void LogHistogram::Merge(const LogHistogram& other) noexcept {
  if (other.total_ == 0) return;
  if (SameShape(other)) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  } else {
    // Shape mismatch (e.g. ranks built with different bounds): re-bucket by
    // each source bucket's lower edge so no sample is silently lost.
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      const std::uint64_t n = other.counts_[i];
      if (n == 0) continue;
      const double edge = other.bucket_lo(i);
      const double pos =
          (std::log10(std::max(edge, lo_)) - log_lo_) *
          static_cast<double>(buckets_per_decade_);
      const std::size_t idx =
          std::min(static_cast<std::size_t>(std::max(pos, 0.0)),
                   counts_.size() - 1);
      counts_[idx] += n;
    }
  }
  total_ += other.total_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LogHistogram::bucket_lo(std::size_t i) const noexcept {
  return std::pow(10.0, log_lo_ + static_cast<double>(i) /
                            static_cast<double>(buckets_per_decade_));
}

double LogHistogram::Percentile(double p) const noexcept {
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      (p / 100.0) * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return bucket_lo(i);
  }
  return bucket_lo(counts_.size() - 1);
}

namespace {
std::string FormatWithUnits(double value, const char* const* units, int nunits) {
  int u = 0;
  while (value >= 1000.0 && u + 1 < nunits) {
    value /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[u]);
  return buf;
}
}  // namespace

std::string FormatRate(double bytes_per_sec) {
  static const char* const kUnits[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  return FormatWithUnits(bytes_per_sec, kUnits, 5);
}

std::string FormatBytes(double bytes) {
  static const char* const kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  return FormatWithUnits(bytes, kUnits, 5);
}

}  // namespace ckpt::util
