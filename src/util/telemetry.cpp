#include "util/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <mutex>

namespace ckpt::util::telemetry {

namespace {

struct GlobalSettings {
  std::mutex mu;
  Settings s;
};

GlobalSettings& global() {
  static GlobalSettings* g = new GlobalSettings;  // leaked: static-dtor safe
  return *g;
}

bool EnvTruthy(const char* v) {
  if (v == nullptr) return false;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s == "1" || s == "on" || s == "true" || s == "yes";
}

bool EnvFalsy(const char* v) {
  if (v == nullptr) return false;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s == "0" || s == "off" || s == "false" || s == "no";
}

std::int64_t EnvI64(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long n = std::strtoll(v, &end, 10);
  if (end == v || n <= 0) return fallback;
  return static_cast<std::int64_t>(n);
}

/// Seeds the settings from CKPT_TELEMETRY* exactly once.
void EnvSeedOnce() {
  static const bool seeded = [] {
    auto& g = global();
    std::lock_guard lk(g.mu);
    if (const char* out = std::getenv("CKPT_TELEMETRY_OUT")) g.s.out_path = out;
    g.s.period_ms = EnvI64("CKPT_TELEMETRY_PERIOD_MS", g.s.period_ms);
    g.s.window = static_cast<std::size_t>(
        EnvI64("CKPT_TELEMETRY_WINDOW", static_cast<std::int64_t>(g.s.window)));
    g.s.stall_ms = EnvI64("CKPT_TELEMETRY_STALL_MS", g.s.stall_ms);
    g.s.stall_windows = static_cast<int>(EnvI64(
        "CKPT_TELEMETRY_STALL_WINDOWS", g.s.stall_windows));
    if (EnvFalsy(std::getenv("CKPT_TELEMETRY_WATCHDOG"))) g.s.watchdog = false;
    if (EnvTruthy(std::getenv("CKPT_TELEMETRY_STRICT"))) g.s.strict = true;
#ifndef CKPT_TELEMETRY_DISABLED
    if (EnvTruthy(std::getenv("CKPT_TELEMETRY"))) {
      g.s.enabled = true;
      detail::g_enabled.store(true, std::memory_order_relaxed);
    }
#endif
    return true;
  }();
  (void)seeded;
}

/// Probe-cell increments in the engine gate on enabled() before the first
/// Configure() call, so the env seed must already be applied.
[[maybe_unused]] const bool g_env_seeded_at_startup = (EnvSeedOnce(), true);

}  // namespace

#ifndef CKPT_TELEMETRY_DISABLED
namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail
#endif

void Configure(const Settings& in) {
  EnvSeedOnce();
  auto& g = global();
  std::lock_guard lk(g.mu);
  g.s.enabled = in.enabled;
  if (in.period_ms > 0) g.s.period_ms = in.period_ms;
  if (in.window > 0) g.s.window = in.window;
  if (!in.out_path.empty()) g.s.out_path = in.out_path;
  g.s.watchdog = in.watchdog;
  if (in.stall_ms > 0) g.s.stall_ms = in.stall_ms;
  if (in.stall_windows > 0) g.s.stall_windows = in.stall_windows;
  g.s.strict = in.strict;
#ifndef CKPT_TELEMETRY_DISABLED
  detail::g_enabled.store(in.enabled, std::memory_order_relaxed);
#endif
}

Settings settings() {
  EnvSeedOnce();
  auto& g = global();
  std::lock_guard lk(g.mu);
  Settings s = g.s;
#ifdef CKPT_TELEMETRY_DISABLED
  s.enabled = false;
#endif
  return s;
}

std::int64_t period_ms() { return settings().period_ms; }
std::size_t window() { return settings().window; }
std::string out_path() { return settings().out_path; }

}  // namespace ckpt::util::telemetry
