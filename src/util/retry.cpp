#include "util/retry.hpp"

#include <algorithm>
#include <thread>

namespace ckpt::util {

RetryOutcome RetryWithBackoff(
    const RetryPolicy& policy, std::mt19937_64& rng,
    const std::function<Status()>& op, const std::function<bool()>& abort,
    const std::function<void(std::chrono::microseconds)>& sleep) {
  RetryOutcome out;
  const auto start = std::chrono::steady_clock::now();
  const int max_attempts = std::max(policy.max_attempts, 1);
  auto backoff = policy.initial_backoff;

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (abort && abort()) {
      if (out.attempts == 0) {
        out.status = Cancelled("retry aborted before first attempt");
      }
      return out;  // keep the last attempt's status otherwise
    }
    out.status = op();
    out.attempts = attempt;
    if (out.status.ok() || !IsRetryable(out.status.code())) return out;
    if (attempt == max_attempts) return out;

    // Jittered exponential backoff before the next attempt.
    std::uniform_real_distribution<double> scale(
        std::max(0.0, 1.0 - policy.jitter), 1.0 + policy.jitter);
    auto wait = std::chrono::microseconds(static_cast<std::int64_t>(
        static_cast<double>(backoff.count()) * scale(rng)));
    wait = std::min(wait, policy.max_backoff);
    if (policy.deadline.count() > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start);
      if (elapsed + wait >= policy.deadline) return out;  // would overrun
    }
    if (sleep) {
      sleep(wait);
    } else {
      std::this_thread::sleep_for(wait);
    }
    backoff = std::min(
        policy.max_backoff,
        std::chrono::microseconds(static_cast<std::int64_t>(
            static_cast<double>(backoff.count()) * policy.backoff_multiplier)));
  }
  return out;
}

}  // namespace ckpt::util
