#include "util/crc32.hpp"

#include <array>

namespace ckpt::util {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC-32C (Castagnoli), reflected

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace ckpt::util
