#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ckpt::util::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> ParseDocument() {
    SkipWs();
    CKPT_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(std::string what) const {
    return InvalidArgument("json: " + std::move(what) + " at offset " +
                           std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool AtEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] char Peek() const { return text_[pos_]; }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  StatusOr<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case 'n':
        if (Consume("null")) return Value();
        return Error("invalid literal");
      case 't':
        if (Consume("true")) return Value(true);
        return Error("invalid literal");
      case 'f':
        if (Consume("false")) return Value(false);
        return Error("invalid literal");
      case '"': {
        CKPT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case '[': return ParseArray(depth);
      case '{': return ParseObject(depth);
      default: return ParseNumber();
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogates degrade to '?'.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            out.push_back('?');
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return Error("invalid escape character");
      }
    }
  }

  StatusOr<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') { ++pos_; ++n; }
      return n;
    };
    if (digits() == 0) return Error("invalid number");
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (digits() == 0) return Error("digits required after decimal point");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (digits() == 0) return Error("digits required in exponent");
    }
    // The slice is a valid JSON number, which is also a valid strtod input.
    const std::string slice(text_.substr(start, pos_ - start));
    return Value(std::strtod(slice.c_str(), nullptr));
  }

  StatusOr<Value> ParseArray(int depth) {
    ++pos_;  // '['
    Array arr;
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      SkipWs();
      CKPT_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      arr.push_back(std::move(v));
      SkipWs();
      if (AtEnd()) return Error("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return Value(std::move(arr));
      if (c != ',') return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    Object obj;
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      CKPT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (AtEnd() || text_[pos_++] != ':') return Error("expected ':' after key");
      SkipWs();
      CKPT_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      obj.insert_or_assign(std::move(key), std::move(v));
      SkipWs();
      if (AtEnd()) return Error("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return Value(std::move(obj));
      if (c != ',') return Error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace ckpt::util::json
