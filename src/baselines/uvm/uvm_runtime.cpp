#include "baselines/uvm/uvm_runtime.hpp"

#include <cassert>

#include "simgpu/copy.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"

namespace ckpt::uvm {

namespace {
storage::ObjectKey KeyOf(sim::Rank rank, core::Version v) {
  return storage::ObjectKey{rank, v};
}
}  // namespace

UvmRuntime::UvmRuntime(sim::Cluster& cluster,
                       std::shared_ptr<storage::ObjectStore> ssd,
                       std::shared_ptr<storage::ObjectStore> pfs,
                       UvmRuntimeOptions options, int num_ranks)
    : cluster_(cluster), ssd_(std::move(ssd)), pfs_(std::move(pfs)),
      options_(options) {
  assert(ssd_ != nullptr);
  ranks_.reserve(static_cast<std::size_t>(num_ranks));
  for (sim::Rank r = 0; r < num_ranks; ++r) {
    auto c = std::make_unique<RankCtx>();
    c->rank = r;
    c->space = std::make_unique<UvmSpace>(cluster_, r, options_.uvm);
    RankCtx* ptr = c.get();
    c->t_flush = std::jthread([this, ptr] { FlushLoop(*ptr); });
    c->t_pf = std::jthread([this, ptr] { PrefetchLoop(*ptr); });
    ranks_.push_back(std::move(c));
  }
}

UvmRuntime::~UvmRuntime() { Shutdown(); }

void UvmRuntime::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& c : ranks_) {
    {
      std::lock_guard lock(c->mu);
      c->shutdown = true;
    }
    c->flush_q.Close();
    c->cv.notify_all();
  }
  for (auto& c : ranks_) {
    if (c->t_flush.joinable()) c->t_flush.join();
    if (c->t_pf.joinable()) c->t_pf.join();
  }
}

UvmRuntime::RankCtx& UvmRuntime::ctx(sim::Rank rank) {
  return *ranks_.at(static_cast<std::size_t>(rank));
}
const UvmRuntime::RankCtx& UvmRuntime::ctx(sim::Rank rank) const {
  return *ranks_.at(static_cast<std::size_t>(rank));
}

util::Status UvmRuntime::Checkpoint(sim::Rank rank, core::Version v,
                                    sim::ConstBytePtr src, std::uint64_t size) {
  if (src == nullptr || size == 0) {
    return util::InvalidArgument("Checkpoint: empty payload");
  }
  const util::Stopwatch sw;
  RankCtx& c = ctx(rank);
  RegionId region = 0;
  {
    std::unique_lock lock(c.mu);
    if (c.shutdown) return util::ShutdownError("runtime stopping");
    if (c.records.count(v) != 0) {
      return util::AlreadyExists("checkpoint version " + std::to_string(v));
    }
    // Host budget: page flushed history out to the SSD, or block until the
    // flusher catches up (the all-tiers-full wait the paper reports).
    for (;;) {
      if (c.shutdown) return util::ShutdownError("runtime stopping");
      ReclaimHost(c, size);
      if (c.host_bytes + size <= options_.host_backing_bytes ||
          size > options_.host_backing_bytes) {
        break;
      }
      c.cv.wait(lock);
    }
    auto rid = c.space->CreateRegion(size);
    if (!rid.ok()) return rid.status();
    region = *rid;
    Record& rec = c.records[v];
    rec.version = v;
    rec.region = region;
    rec.size = size;
    rec.flush_pending = true;
    c.host_bytes += size;
    ++c.inflight_flushes;
  }

  // The blocking cost of a UVM checkpoint: a device-side write into managed
  // memory (first-touch page allocation + D2D payload).
  CKPT_RETURN_IF_ERROR(c.space->DeviceWrite(region, 0, src, size));

  if (options_.use_hints) {
    // Flush-like demotion: tell the driver the checkpoint belongs on the
    // host so its pages drain out of the device cache eagerly.
    (void)c.space->Advise(region, Advice::kPreferredLocationHost);
    (void)c.space->EvictRegion(region);
  }
  c.flush_q.Push(v);

  std::lock_guard lock(c.mu);
  c.metrics.ckpt_block_s.Add(sw.ElapsedSec());
  c.metrics.bytes_checkpointed += size;
  return util::OkStatus();
}

util::Status UvmRuntime::Restore(sim::Rank rank, core::Version v,
                                 sim::BytePtr dst, std::uint64_t capacity) {
  if (dst == nullptr) return util::InvalidArgument("Restore: null buffer");
  const util::Stopwatch sw;
  RankCtx& c = ctx(rank);
  RegionId region = 0;
  std::uint64_t size = 0;
  std::uint64_t pdist = 0;
  bool from_store = false;
  {
    std::unique_lock lock(c.mu);
    if (c.shutdown) return util::ShutdownError("runtime stopping");
    auto it = c.records.find(v);
    if (it == c.records.end()) {
      // Restart path: only the durable store holds it.
      auto s = ssd_->Size(KeyOf(rank, v));
      if (!s.ok()) return s.status();
      Record rec;
      rec.version = v;
      rec.size = *s;
      rec.on_store = true;
      it = c.records.emplace(v, rec).first;
    }
    Record& rec = it->second;
    if (capacity < rec.size) {
      return util::InvalidArgument("Restore: buffer too small");
    }
    size = rec.size;
    region = rec.region;
    from_store = region == 0;
    // Fig. 7 metric: consecutive hinted successors fully resident on device.
    for (std::size_t i = 0;; ++i) {
      auto h = c.hints.Peek(i);
      if (!h) break;
      auto hit = c.records.find(*h);
      if (hit == c.records.end() || hit->second.region == 0 ||
          !c.space->FullyResident(hit->second.region)) {
        break;
      }
      ++pdist;
    }
    c.hints.Drop(v);
    c.cv.notify_all();
  }

  util::Status st;
  if (!from_store) {
    // Fault-driven read: resident pages are fast, evicted pages pay
    // migration + replay — UVM's restore cost model.
    st = c.space->DeviceRead(region, 0, dst, size);
  } else {
    // Data only on the durable store: read back into a fresh managed region
    // (host-backed), then fault it into the device.
    auto rid = c.space->CreateRegion(size);
    if (!rid.ok()) return rid.status();
    region = *rid;
    std::vector<std::byte> staging(size);
    st = ssd_->Get(KeyOf(rank, v), staging.data(), size);
    if (st.ok()) {
      sim::ChargeHostMem(cluster_.topology(),
                         cluster_.topology().gpu_of_rank(rank), size);
      st = c.space->DeviceWrite(region, 0, staging.data(), size);
      if (st.ok()) st = c.space->DeviceRead(region, 0, dst, size);
    }
  }
  if (!st.ok()) return st;

  std::unique_lock lock(c.mu);
  Record& rec = c.records.at(v);
  rec.consumed = true;
  if (rec.region == 0) {
    rec.region = region;
    c.host_bytes += rec.size;  // re-created backing for the store read
  }
  if (rec.prefetched) {
    c.prefetched_bytes -= rec.size;
    rec.prefetched = false;
  }
  ++c.metrics.restores_from_gpu;  // served through the device view
  c.metrics.restore_block_s.Add(sw.ElapsedSec());
  c.metrics.bytes_restored += size;
  c.metrics.restore_series.push_back(core::RestorePoint{
      static_cast<std::uint64_t>(c.metrics.restore_series.size()), v,
      sw.ElapsedSec(), size, pdist});
  const RegionId consumed_region = rec.region;
  const bool discard = options_.discard_after_restore && rec.on_store;
  lock.unlock();

  if (options_.use_hints) {
    // Release the consumed checkpoint from the device cache immediately
    // (clean eviction thanks to the preferred-location advice).
    (void)c.space->Advise(consumed_region, Advice::kPreferredLocationHost);
    (void)c.space->EvictRegion(consumed_region);
  }
  {
    std::lock_guard g(c.mu);
    if (discard) {
      (void)c.space->FreeRegion(consumed_region);
      Record& r2 = c.records.at(v);
      if (r2.region != 0) {
        c.host_bytes -= r2.size;
        r2.region = 0;
      }
    }
    ReclaimHost(c, 0);
  }
  c.cv.notify_all();
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> UvmRuntime::RecoverSize(sim::Rank rank,
                                                      core::Version v) {
  RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  auto it = c.records.find(v);
  if (it != c.records.end()) return it->second.size;
  auto s = ssd_->Size(KeyOf(rank, v));
  if (s.ok()) return *s;
  return util::NotFound("checkpoint " + std::to_string(v) + " unknown");
}

util::Status UvmRuntime::PrefetchEnqueue(sim::Rank rank, core::Version v) {
  RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  if (c.shutdown) return util::ShutdownError("runtime stopping");
  c.hints.Enqueue(v);
  c.cv.notify_all();
  return util::OkStatus();
}

util::Status UvmRuntime::PrefetchStart(sim::Rank rank) {
  RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  if (c.shutdown) return util::ShutdownError("runtime stopping");
  c.prefetch_started = true;
  c.cv.notify_all();
  return util::OkStatus();
}

util::Status UvmRuntime::WaitForFlushes(sim::Rank rank) {
  const util::Stopwatch sw;
  RankCtx& c = ctx(rank);
  std::unique_lock lock(c.mu);
  c.cv.wait(lock, [&] { return c.inflight_flushes == 0 || c.shutdown; });
  c.metrics.wait_for_flush_s += sw.ElapsedSec();
  if (c.shutdown && c.inflight_flushes != 0) {
    return util::ShutdownError("runtime stopped with flushes pending");
  }
  return util::OkStatus();
}

core::RankMetrics UvmRuntime::metrics(sim::Rank rank) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  return c.metrics;
}

UvmStats UvmRuntime::uvm_stats(sim::Rank rank) const {
  return ctx(rank).space->stats();
}

void UvmRuntime::ReclaimHost(RankCtx& c, std::uint64_t reserve) {
  const std::uint64_t budget = options_.host_backing_bytes;
  auto fits = [&] { return c.host_bytes + reserve <= budget; };
  if (fits()) return;
  // Page out store-captured backings, consumed first, then oldest versions.
  for (int pass = 0; pass < 2 && !fits(); ++pass) {
    std::vector<core::Version> order;
    order.reserve(c.records.size());
    for (const auto& [ver, rec] : c.records) {
      if (rec.region != 0 && rec.on_store && !rec.flush_pending &&
          !rec.prefetched && (pass == 1 || rec.consumed)) {
        order.push_back(ver);
      }
    }
    std::sort(order.begin(), order.end());
    for (core::Version ver : order) {
      if (fits()) break;
      Record& rec = c.records.at(ver);
      (void)c.space->FreeRegion(rec.region);
      rec.region = 0;
      c.host_bytes -= rec.size;
    }
  }
}

void UvmRuntime::FlushLoop(RankCtx& c) {
  while (auto vo = c.flush_q.Pop()) {
    const core::Version v = *vo;
    RegionId region = 0;
    std::uint64_t size = 0;
    {
      std::lock_guard lock(c.mu);
      auto it = c.records.find(v);
      if (it == c.records.end()) continue;
      // Condition (5) parity: skip flushes of consumed checkpoints.
      if (options_.discard_after_restore && it->second.consumed) {
        it->second.flush_pending = false;
        --c.inflight_flushes;
        ++c.metrics.flushes_cancelled;
        c.cv.notify_all();
        continue;
      }
      region = it->second.region;
      size = it->second.size;
    }
    // Stream the host backing to the SSD store.
    std::vector<std::byte> staging(size);
    util::Status st = c.space->HostRead(region, 0, staging.data(), size);
    if (st.ok()) st = ssd_->Put(KeyOf(c.rank, v), staging.data(), size);
    if (st.ok() && options_.terminal_tier == core::Tier::kPfs) {
      st = pfs_->Put(KeyOf(c.rank, v), staging.data(), size);
    }
    std::lock_guard lock(c.mu);
    auto it = c.records.find(v);
    if (it != c.records.end()) {
      it->second.flush_pending = false;
      if (st.ok()) {
        it->second.on_store = true;
        ++c.metrics.flushes_completed;
      } else {
        CKPT_LOG(kError, "uvm") << "flush failed: " << st.ToString();
      }
    }
    --c.inflight_flushes;
    c.cv.notify_all();
  }
}

void UvmRuntime::PrefetchLoop(RankCtx& c) {
  std::unique_lock lock(c.mu);
  for (;;) {
    c.cv.wait(lock, [&] {
      return c.shutdown ||
             (options_.use_hints && c.prefetch_started &&
              c.hints.Head().has_value());
    });
    if (c.shutdown) return;
    const core::Version v = *c.hints.Head();
    auto it = c.records.find(v);
    if (it == c.records.end() || it->second.region == 0) {
      // Unknown or store-only checkpoint; UVM prefetch cannot help. Skip.
      c.hints.PopHead();
      continue;
    }
    Record& rec = it->second;
    // Explicit device-budget control (the paper's addition): block further
    // prefetches until the application consumes what was already promoted.
    bool gave_up = false;
    while (c.prefetched_bytes + rec.size > options_.uvm.device_cache_bytes &&
           !c.shutdown) {
      if (rec.consumed) {
        gave_up = true;
        break;
      }
      c.cv.wait(lock);
    }
    if (c.shutdown) return;
    if (gave_up || c.hints.Head() != std::optional<core::Version>(v)) {
      if (c.hints.Head() == std::optional<core::Version>(v)) c.hints.PopHead();
      continue;
    }
    c.hints.PopHead();
    const RegionId region = rec.region;
    const std::uint64_t size = rec.size;
    rec.prefetched = true;
    c.prefetched_bytes += size;
    lock.unlock();
    (void)c.space->Advise(region, Advice::kPreferredLocationDevice);
    (void)c.space->Advise(region, Advice::kAccessedBy);
    const util::Status st = c.space->PrefetchToDevice(region);
    lock.lock();
    if (!st.ok()) {
      CKPT_LOG(kWarn, "uvm") << "prefetch failed: " << st.ToString();
      auto it2 = c.records.find(v);
      if (it2 != c.records.end() && it2->second.prefetched) {
        it2->second.prefetched = false;
        c.prefetched_bytes -= size;
      }
    } else {
      ++c.metrics.prefetch_promotions;
    }
    c.cv.notify_all();
  }
}

}  // namespace ckpt::uvm
