// Simulated Nvidia Unified Virtual Memory (§5.2.2 baseline).
//
// A UvmSpace models one GPU's managed-memory view: regions are host-backed
// (the backing vector always holds the truth), and a page-granular residency
// set tracks which pages currently mirror into the device's limited UVM
// cache. Device-side access to non-resident pages triggers fault batches:
// each batch pays a fixed replay latency plus H2D migration bandwidth —
// the costs the paper's UVM analysis attributes to page-fault replay and
// migrate-before-evict behaviour [Allen & Ge 2021; Ganguly et al. 2019].
//
// Hint support mirrors the CUDA primitives the paper uses for the
// "optimized UVM" comparison:
//   * MemAdvise(kPreferredLocationHost)  — consumed checkpoints become
//     cheap to evict (no writeback) and are evicted first;
//   * MemAdvise(kPreferredLocationDevice)— pages resist eviction;
//   * MemAdvise(kAccessedBy)             — establishes mapping, halves the
//     fault replay latency (access counters pre-armed);
//   * PrefetchToDevice                   — cudaMemPrefetchAsync equivalent:
//     bulk migration without per-fault replay cost.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "simgpu/cluster.hpp"
#include "util/status.hpp"

namespace ckpt::uvm {

using RegionId = std::uint64_t;

enum class Advice : std::uint8_t {
  kPreferredLocationHost,
  kPreferredLocationDevice,
  kAccessedBy,
  kUnsetAccessedBy,
};

struct UvmConfig {
  std::uint64_t device_cache_bytes = 4ull << 20;  ///< UVM device cache (== paper's GPU cache size)
  std::uint64_t page_size = 2ull << 10;           ///< 2 MiB pages /1000 -> 2 KiB (faithful page counts)
  std::uint64_t fault_latency_ns = 30000;         ///< replay cost per fault batch
  std::uint64_t fault_batch_pages = 16;           ///< pages migrated per replay batch
  /// Page migrations (in and out) achieve only a fraction of pinned-copy
  /// link efficiency (driver bookkeeping, TLB shootdowns, page-sized DMA):
  /// measured UVM migration throughput is roughly half of cudaMemcpy
  /// [Allen & Ge 2021]. Charged as bytes / efficiency on the link.
  double migration_efficiency = 0.5;
};

struct UvmStats {
  std::uint64_t faults = 0;            ///< fault batches served
  std::uint64_t pages_migrated_in = 0;
  std::uint64_t pages_evicted = 0;
  std::uint64_t pages_written_back = 0;  ///< evictions that paid D2H migration
  std::uint64_t prefetched_pages = 0;
};

class UvmSpace {
 public:
  UvmSpace(sim::Cluster& cluster, sim::Rank rank, UvmConfig config);

  UvmSpace(const UvmSpace&) = delete;
  UvmSpace& operator=(const UvmSpace&) = delete;

  /// cudaMallocManaged: allocates a host-backed region (on-demand, cheap —
  /// one of UVM's genuine advantages).
  util::StatusOr<RegionId> CreateRegion(std::uint64_t size);
  util::Status FreeRegion(RegionId id);

  /// Device-side kernel write into the region (e.g. a checkpoint copy from
  /// the application buffer). Faults in non-resident pages (first-touch
  /// writes allocate device pages without migration traffic), pays D2D for
  /// the payload, stores the bytes into the backing memory, marks dirty.
  util::Status DeviceWrite(RegionId id, std::uint64_t offset,
                           sim::ConstBytePtr src, std::uint64_t n);

  /// Device-side kernel read (restore into the application buffer). Faults
  /// in non-resident pages with H2D migration, pays D2D for the payload.
  util::Status DeviceRead(RegionId id, std::uint64_t offset, sim::BytePtr dst,
                          std::uint64_t n);

  /// Host-side read of the backing memory (used by the durability flusher;
  /// pays host-memory bandwidth only).
  util::Status HostRead(RegionId id, std::uint64_t offset, sim::BytePtr dst,
                        std::uint64_t n);

  /// cudaMemAdvise equivalent.
  util::Status Advise(RegionId id, Advice advice);

  /// cudaMemPrefetchAsync equivalent (synchronous here; the runtime calls
  /// it from its own prefetch thread): migrates all of the region's pages
  /// to the device without per-fault replay costs.
  util::Status PrefetchToDevice(RegionId id);

  /// Evicts all of the region's device pages. With preferred-location-host
  /// set and clean pages this is free; otherwise it pays D2H migration
  /// (UVM's migrate-before-evict behaviour).
  util::Status EvictRegion(RegionId id);

  [[nodiscard]] std::uint64_t device_bytes_used() const;
  [[nodiscard]] std::uint64_t RegionSize(RegionId id) const;
  [[nodiscard]] bool FullyResident(RegionId id) const;
  [[nodiscard]] UvmStats stats() const;
  [[nodiscard]] const UvmConfig& config() const noexcept { return config_; }

 private:
  struct Page {
    RegionId region = 0;
    std::uint64_t index = 0;  ///< page index within the region
    friend bool operator==(const Page&, const Page&) = default;
  };

  struct Region {
    std::vector<std::byte> backing;           // host truth
    std::vector<bool> resident;               // per page
    std::vector<bool> dirty;                  // per page
    bool prefer_host = false;
    bool prefer_device = false;
    bool accessed_by = false;
    std::vector<std::list<Page>::iterator> lru_pos;  // valid iff resident
  };

  // All methods below require mu_ held.
  /// Link bytes actually charged for `payload` migration bytes.
  [[nodiscard]] std::uint64_t MigrationBytes(std::uint64_t payload) const;
  [[nodiscard]] std::uint64_t PagesOf(const Region& r) const;
  /// Makes [first_page, last_page] resident. `write_alloc` means first-touch
  /// writes: non-resident pages are device-allocated without H2D traffic.
  /// `faulting` selects per-batch replay latency vs bulk prefetch.
  util::Status EnsureResident(std::unique_lock<std::mutex>& lock, RegionId id,
                              std::uint64_t first_page, std::uint64_t last_page,
                              bool write_alloc, bool faulting);
  /// Evicts LRU pages until `needed` bytes fit. Prefers clean
  /// preferred-location-host pages (they leave without migration traffic).
  util::Status MakeRoom(std::unique_lock<std::mutex>& lock, std::uint64_t needed);
  void TouchLru(Region& r, RegionId id, std::uint64_t page);
  void DropResident(Region& r, std::uint64_t page);

  sim::Cluster& cluster_;
  sim::Rank rank_;
  sim::GpuId gpu_;
  UvmConfig config_;

  mutable std::mutex mu_;
  std::unordered_map<RegionId, Region> regions_;
  std::list<Page> lru_;  // front = least recently used
  std::uint64_t device_used_ = 0;
  RegionId next_id_ = 1;
  UvmStats stats_;
};

}  // namespace ckpt::uvm
