// UVM-based checkpoint runtime: the paper's "optimized UVM" baseline
// (§5.2.2). Checkpoints live in managed memory regions; data movement
// between the device cache and host is driven by UVM's fault/LRU machinery
// plus the full set of hint optimizations the paper grants this baseline:
//
//  * after a checkpoint write, the region is advised preferred-location-host
//    (flush-like demotion) so the driver migrates it out eagerly;
//  * hints drive cudaMemPrefetchAsync promotions from a dedicated thread;
//  * prefetch volume is explicitly capped to the UVM device cache size,
//    tracking consumed/released bytes (the paper's thrash-control addition);
//  * consumed checkpoints are advised host-preferred so they evict
//    immediately and cleanly.
//
// Durability matches the other runtimes: a background flusher writes each
// checkpoint's host backing to the SSD store (and optionally the PFS).
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/uvm/uvm_space.hpp"
#include "core/restore_queue.hpp"
#include "core/runtime.hpp"
#include "simgpu/cluster.hpp"
#include "storage/object_store.hpp"
#include "util/mpmc_queue.hpp"

namespace ckpt::uvm {

struct UvmRuntimeOptions {
  UvmConfig uvm;
  core::Tier terminal_tier = core::Tier::kSsd;
  bool discard_after_restore = false;
  /// Grant the hint optimizations (advise + prefetch). Disable to model
  /// plain UVM without foreknowledge.
  bool use_hints = true;
  /// Host-memory budget for managed backings (the paper bounds the host
  /// tier at 32 GB per process; scaled 32 MB). When exceeded, checkpoints
  /// block until the flusher pages old checkpoints out to the SSD —
  /// matching the waits-for-eviction behaviour the paper reports for all
  /// approaches once both memory tiers fill (§5.4.2).
  std::uint64_t host_backing_bytes = 32ull << 20;
};

class UvmRuntime final : public core::Runtime {
 public:
  UvmRuntime(sim::Cluster& cluster, std::shared_ptr<storage::ObjectStore> ssd,
             std::shared_ptr<storage::ObjectStore> pfs,
             UvmRuntimeOptions options, int num_ranks);
  ~UvmRuntime() override;

  util::Status Checkpoint(sim::Rank rank, core::Version v, sim::ConstBytePtr src,
                          std::uint64_t size) override;
  util::Status Restore(sim::Rank rank, core::Version v, sim::BytePtr dst,
                       std::uint64_t capacity) override;
  util::StatusOr<std::uint64_t> RecoverSize(sim::Rank rank, core::Version v) override;
  util::Status PrefetchEnqueue(sim::Rank rank, core::Version v) override;
  util::Status PrefetchStart(sim::Rank rank) override;
  util::Status WaitForFlushes(sim::Rank rank) override;
  void Shutdown() override;

  [[nodiscard]] core::RankMetrics metrics(sim::Rank rank) const override;
  [[nodiscard]] std::string_view name() const override { return "uvm"; }
  [[nodiscard]] UvmStats uvm_stats(sim::Rank rank) const;

 private:
  struct Record {
    core::Version version = 0;
    RegionId region = 0;   ///< 0 = backing paged out (data only on store)
    std::uint64_t size = 0;
    bool on_store = false;
    bool consumed = false;
    bool flush_pending = false;
    bool prefetched = false;  ///< counted against the device prefetch budget
  };

  struct RankCtx {
    sim::Rank rank = 0;
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unique_ptr<UvmSpace> space;
    std::unordered_map<core::Version, Record> records;
    core::RestoreQueue hints;
    bool prefetch_started = false;
    bool shutdown = false;
    std::uint64_t prefetched_bytes = 0;  ///< explicit device-budget tracking
    std::uint64_t host_bytes = 0;        ///< managed backings resident in host RAM
    std::uint64_t inflight_flushes = 0;
    core::RankMetrics metrics;
    util::MpmcQueue<core::Version> flush_q;
    std::jthread t_flush;
    std::jthread t_pf;
  };

  void FlushLoop(RankCtx& c);
  void PrefetchLoop(RankCtx& c);
  /// Pages out flushed (and preferably consumed) backings, oldest first,
  /// until `reserve` more bytes fit within the host budget. Requires c.mu
  /// held.
  void ReclaimHost(RankCtx& c, std::uint64_t reserve);
  [[nodiscard]] RankCtx& ctx(sim::Rank rank);
  [[nodiscard]] const RankCtx& ctx(sim::Rank rank) const;

  sim::Cluster& cluster_;
  std::shared_ptr<storage::ObjectStore> ssd_;
  std::shared_ptr<storage::ObjectStore> pfs_;
  UvmRuntimeOptions options_;
  std::vector<std::unique_ptr<RankCtx>> ranks_;
  bool shutdown_ = false;
};

}  // namespace ckpt::uvm
