#include "baselines/uvm/uvm_space.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

#include "simgpu/copy.hpp"
#include "util/clock.hpp"

namespace ckpt::uvm {

UvmSpace::UvmSpace(sim::Cluster& cluster, sim::Rank rank, UvmConfig config)
    : cluster_(cluster),
      rank_(rank),
      gpu_(cluster.topology().gpu_of_rank(rank)),
      config_(config) {
  assert(config_.page_size > 0 && config_.fault_batch_pages > 0);
}

std::uint64_t UvmSpace::MigrationBytes(std::uint64_t payload) const {
  const double eff = config_.migration_efficiency;
  if (eff <= 0.0 || eff >= 1.0) return payload;
  return static_cast<std::uint64_t>(static_cast<double>(payload) / eff);
}

std::uint64_t UvmSpace::PagesOf(const Region& r) const {
  return (r.backing.size() + config_.page_size - 1) / config_.page_size;
}

util::StatusOr<RegionId> UvmSpace::CreateRegion(std::uint64_t size) {
  if (size == 0) return util::InvalidArgument("CreateRegion(0)");
  std::lock_guard lock(mu_);
  const RegionId id = next_id_++;
  Region& r = regions_[id];
  r.backing.resize(size);
  const std::uint64_t pages = PagesOf(r);
  r.resident.assign(pages, false);
  r.dirty.assign(pages, false);
  r.lru_pos.resize(pages);
  return id;
}

util::Status UvmSpace::FreeRegion(RegionId id) {
  std::lock_guard lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return util::NotFound("region " + std::to_string(id));
  Region& r = it->second;
  for (std::uint64_t p = 0; p < PagesOf(r); ++p) {
    if (r.resident[p]) DropResident(r, p);
  }
  regions_.erase(it);
  return util::OkStatus();
}

void UvmSpace::TouchLru(Region& r, RegionId id, std::uint64_t page) {
  if (r.resident[page]) {
    lru_.erase(r.lru_pos[page]);
  }
  lru_.push_back(Page{id, page});
  r.lru_pos[page] = std::prev(lru_.end());
}

void UvmSpace::DropResident(Region& r, std::uint64_t page) {
  lru_.erase(r.lru_pos[page]);
  r.resident[page] = false;
  r.dirty[page] = false;
  device_used_ -= config_.page_size;
  ++stats_.pages_evicted;
}

util::Status UvmSpace::MakeRoom(std::unique_lock<std::mutex>& lock,
                                std::uint64_t needed) {
  while (device_used_ + needed > config_.device_cache_bytes) {
    if (lru_.empty()) {
      return util::OutOfMemory("UVM device cache exhausted with no evictable page");
    }
    const Page victim = lru_.front();
    Region& r = regions_.at(victim.region);
    // Migrate-before-evict: dirty pages (and pages preferred on the device)
    // pay a D2H migration on the way out; clean preferred-host pages leave
    // for free — this is the asymmetry the paper exploits against UVM.
    const bool writeback = r.dirty[victim.index] || r.prefer_device;
    DropResident(r, victim.index);
    if (writeback) {
      ++stats_.pages_written_back;
      lock.unlock();
      sim::ChargePcie(cluster_.topology(), gpu_, MigrationBytes(config_.page_size),
                      sim::Topology::LinkDir::kD2H);
      lock.lock();
    }
  }
  return util::OkStatus();
}

util::Status UvmSpace::EnsureResident(std::unique_lock<std::mutex>& lock,
                                      RegionId id, std::uint64_t first_page,
                                      std::uint64_t last_page, bool write_alloc,
                                      bool faulting) {
  std::uint64_t page = first_page;
  while (page <= last_page) {
    auto rit = regions_.find(id);
    if (rit == regions_.end()) return util::NotFound("region vanished");
    Region& r = rit->second;
    // Collect the next batch of non-resident pages. A batch may never
    // exceed the device cache itself, or MakeRoom could not satisfy it.
    const std::uint64_t max_batch = std::max<std::uint64_t>(
        1, std::min(config_.fault_batch_pages,
                    config_.device_cache_bytes / config_.page_size));
    std::vector<std::uint64_t> batch;
    while (page <= last_page && batch.size() < max_batch) {
      if (!r.resident[page]) {
        batch.push_back(page);
      } else {
        TouchLru(r, id, page);
      }
      ++page;
    }
    if (batch.empty()) continue;

    CKPT_RETURN_IF_ERROR(
        MakeRoom(lock, config_.page_size * batch.size()));
    // MakeRoom may have dropped the lock; re-resolve and skip pages that
    // became resident meanwhile (another thread may have faulted them in).
    Region& r2 = regions_.at(id);
    std::uint64_t migrate_pages = 0;
    for (std::uint64_t p : batch) {
      if (r2.resident[p]) continue;
      r2.resident[p] = true;
      device_used_ += config_.page_size;
      lru_.push_back(Page{id, p});
      r2.lru_pos[p] = std::prev(lru_.end());
      if (write_alloc) r2.dirty[p] = true;
      ++migrate_pages;
    }
    if (migrate_pages == 0) continue;
    stats_.pages_migrated_in += migrate_pages;

    // Pay the fault replay latency and (for reads) the H2D migration.
    std::uint64_t latency = 0;
    if (faulting) {
      ++stats_.faults;
      latency = r2.accessed_by ? config_.fault_latency_ns / 2
                               : config_.fault_latency_ns;
    } else {
      stats_.prefetched_pages += migrate_pages;
    }
    const bool pay_migration = !write_alloc;  // first-touch writes allocate only
    lock.unlock();
    if (latency > 0) {
      util::PreciseSleep(std::chrono::nanoseconds(latency));
    }
    if (pay_migration) {
      sim::ChargePcie(cluster_.topology(), gpu_,
                      MigrationBytes(config_.page_size * migrate_pages));
    }
    lock.lock();
  }
  return util::OkStatus();
}

util::Status UvmSpace::DeviceWrite(RegionId id, std::uint64_t offset,
                                   sim::ConstBytePtr src, std::uint64_t n) {
  if (src == nullptr || n == 0) return util::InvalidArgument("DeviceWrite: empty");
  std::unique_lock lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return util::NotFound("region " + std::to_string(id));
  if (offset + n > it->second.backing.size()) {
    return util::InvalidArgument("DeviceWrite: out of region bounds");
  }
  const std::uint64_t first = offset / config_.page_size;
  const std::uint64_t last = (offset + n - 1) / config_.page_size;
  CKPT_RETURN_IF_ERROR(EnsureResident(lock, id, first, last,
                                      /*write_alloc=*/true, /*faulting=*/true));
  Region& r = regions_.at(id);
  for (std::uint64_t p = first; p <= last; ++p) r.dirty[p] = true;
  std::byte* dst = r.backing.data() + offset;
  lock.unlock();
  // The payload itself moves at on-device bandwidth (the pages are resident
  // now); the bytes land in the host backing, which is the simulation's
  // single source of truth.
  sim::ChargeD2D(cluster_.topology(), gpu_, n);
  std::memcpy(dst, src, n);
  return util::OkStatus();
}

util::Status UvmSpace::DeviceRead(RegionId id, std::uint64_t offset,
                                  sim::BytePtr dst, std::uint64_t n) {
  if (dst == nullptr || n == 0) return util::InvalidArgument("DeviceRead: empty");
  std::unique_lock lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return util::NotFound("region " + std::to_string(id));
  if (offset + n > it->second.backing.size()) {
    return util::InvalidArgument("DeviceRead: out of region bounds");
  }
  const std::uint64_t first = offset / config_.page_size;
  const std::uint64_t last = (offset + n - 1) / config_.page_size;
  CKPT_RETURN_IF_ERROR(EnsureResident(lock, id, first, last,
                                      /*write_alloc=*/false, /*faulting=*/true));
  const std::byte* src = regions_.at(id).backing.data() + offset;
  lock.unlock();
  sim::ChargeD2D(cluster_.topology(), gpu_, n);
  std::memcpy(dst, src, n);
  return util::OkStatus();
}

util::Status UvmSpace::HostRead(RegionId id, std::uint64_t offset,
                                sim::BytePtr dst, std::uint64_t n) {
  if (dst == nullptr || n == 0) return util::InvalidArgument("HostRead: empty");
  std::unique_lock lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return util::NotFound("region " + std::to_string(id));
  if (offset + n > it->second.backing.size()) {
    return util::InvalidArgument("HostRead: out of region bounds");
  }
  const std::byte* src = it->second.backing.data() + offset;
  lock.unlock();
  sim::ChargeHostMem(cluster_.topology(), gpu_, n);
  std::memcpy(dst, src, n);
  return util::OkStatus();
}

util::Status UvmSpace::Advise(RegionId id, Advice advice) {
  std::lock_guard lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return util::NotFound("region " + std::to_string(id));
  Region& r = it->second;
  switch (advice) {
    case Advice::kPreferredLocationHost:
      r.prefer_host = true;
      r.prefer_device = false;
      // Demote resident pages to the LRU front so they evict first (the
      // paper's consumed-checkpoint optimization). Dirty pages still pay
      // the D2H writeback on the way out: advising a location never makes
      // device-only data magically host-resident.
      for (std::uint64_t p = 0; p < PagesOf(r); ++p) {
        if (r.resident[p]) {
          lru_.erase(r.lru_pos[p]);
          lru_.push_front(Page{id, p});
          r.lru_pos[p] = lru_.begin();
        }
      }
      break;
    case Advice::kPreferredLocationDevice:
      r.prefer_device = true;
      r.prefer_host = false;
      break;
    case Advice::kAccessedBy:
      r.accessed_by = true;
      break;
    case Advice::kUnsetAccessedBy:
      r.accessed_by = false;
      break;
  }
  return util::OkStatus();
}

util::Status UvmSpace::PrefetchToDevice(RegionId id) {
  std::unique_lock lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return util::NotFound("region " + std::to_string(id));
  const std::uint64_t pages = PagesOf(it->second);
  return EnsureResident(lock, id, 0, pages - 1, /*write_alloc=*/false,
                        /*faulting=*/false);
}

util::Status UvmSpace::EvictRegion(RegionId id) {
  std::unique_lock lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return util::NotFound("region " + std::to_string(id));
  Region& r = it->second;
  std::uint64_t writeback_pages = 0;
  for (std::uint64_t p = 0; p < PagesOf(r); ++p) {
    if (!r.resident[p]) continue;
    if (r.dirty[p] || r.prefer_device) ++writeback_pages;
    DropResident(r, p);
  }
  stats_.pages_written_back += writeback_pages;
  if (writeback_pages > 0) {
    lock.unlock();
    sim::ChargePcie(cluster_.topology(), gpu_,
                    MigrationBytes(writeback_pages * config_.page_size),
                    sim::Topology::LinkDir::kD2H);
  }
  return util::OkStatus();
}

std::uint64_t UvmSpace::device_bytes_used() const {
  std::lock_guard lock(mu_);
  return device_used_;
}

std::uint64_t UvmSpace::RegionSize(RegionId id) const {
  std::lock_guard lock(mu_);
  auto it = regions_.find(id);
  return it == regions_.end() ? 0 : it->second.backing.size();
}

bool UvmSpace::FullyResident(RegionId id) const {
  std::lock_guard lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return false;
  const Region& r = it->second;
  for (std::uint64_t p = 0; p < PagesOf(r); ++p) {
    if (!r.resident[p]) return false;
  }
  return true;
}

UvmStats UvmSpace::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace ckpt::uvm
