// ADIOS2 BP5-style baseline (§5.2.1): deferred (asynchronous) I/O that
// buffers checkpoints in *pageable* main memory and drains them to the
// node-local NVMe in the background. Faithful to the properties the paper
// compares against:
//
//  * no dedicated GPU cache tier — every checkpoint crosses PCIe on demand
//    (the adios2::MemorySpace::CUDA on-demand movement);
//  * pageable host buffering — D2H lands in an internal pinned bounce
//    buffer and is then copied into the pageable BP buffer (two hops, which
//    is why pageable transfers run at roughly half the pinned rate);
//  * a bounded buffer pool: Put blocks when the pool is full until the
//    drainer frees space (BP5's flush-on-buffer-full behaviour);
//  * reads are served from the host buffer while the object still resides
//    there, otherwise from the SSD file — no prefetching of any kind.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/runtime.hpp"
#include "simgpu/cluster.hpp"
#include "simgpu/pinned.hpp"
#include "storage/object_store.hpp"
#include "util/mpmc_queue.hpp"

namespace ckpt::adios {

struct AdiosOptions {
  /// Host buffer pool per rank (BP5 BufferChunkSize * MaxBufferSize model).
  std::uint64_t host_buffer_bytes = 64ull << 20;
  /// Pinned bounce buffer used for the staged D2H/H2D hops.
  std::uint64_t bounce_bytes = 4ull << 20;
  core::Tier terminal_tier = core::Tier::kSsd;
  /// BP5 marshaling rate: Put() serializes payload + metadata into the BP
  /// buffer format on the CPU, single-threaded (~0.8 GB/s real; scaled
  /// /100). This is the overhead that makes ADIOS2 the slowest writer in
  /// the paper's comparison regardless of interval (§5.4.5). 0 disables.
  std::uint64_t serialize_bw = 8ull << 20;
};

class AdiosRuntime final : public core::Runtime {
 public:
  AdiosRuntime(sim::Cluster& cluster, std::shared_ptr<storage::ObjectStore> ssd,
               std::shared_ptr<storage::ObjectStore> pfs, AdiosOptions options,
               int num_ranks);
  ~AdiosRuntime() override;

  util::Status Checkpoint(sim::Rank rank, core::Version v, sim::ConstBytePtr src,
                          std::uint64_t size) override;
  util::Status Restore(sim::Rank rank, core::Version v, sim::BytePtr dst,
                       std::uint64_t capacity) override;
  util::StatusOr<std::uint64_t> RecoverSize(sim::Rank rank, core::Version v) override;
  /// ADIOS2 has no restore-order hint concept; accepted and ignored.
  util::Status PrefetchEnqueue(sim::Rank rank, core::Version v) override;
  util::Status PrefetchStart(sim::Rank rank) override;
  util::Status WaitForFlushes(sim::Rank rank) override;
  void Shutdown() override;

  [[nodiscard]] core::RankMetrics metrics(sim::Rank rank) const override;
  [[nodiscard]] std::string_view name() const override { return "adios2"; }

 private:
  struct Buffered {
    std::vector<std::byte> data;
    int readers = 0;  ///< restores currently copying out of this buffer
  };

  struct RankCtx {
    sim::Rank rank = 0;
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<core::Version, Buffered> buffered;
    std::unordered_map<core::Version, std::uint64_t> sizes;  // all known versions
    std::uint64_t pool_used = 0;
    std::uint64_t inflight = 0;
    bool shutdown = false;
    core::RankMetrics metrics;
    std::unique_ptr<sim::PinnedArena> bounce;  // staged-transfer bounce buffer
    std::mutex bounce_mu;                      // serializes bounce usage
    util::MpmcQueue<core::Version> drain_q;
    std::jthread t_drain;
  };

  void DrainLoop(RankCtx& c);
  /// Staged pageable D2H: device -> pinned bounce -> pageable dst.
  util::Status StagedD2H(RankCtx& c, sim::ConstBytePtr src, std::byte* dst,
                         std::uint64_t n);
  /// Staged pageable H2D: pageable src -> pinned bounce -> device dst.
  util::Status StagedH2D(RankCtx& c, const std::byte* src, sim::BytePtr dst,
                         std::uint64_t n);

  [[nodiscard]] RankCtx& ctx(sim::Rank rank);
  [[nodiscard]] const RankCtx& ctx(sim::Rank rank) const;

  sim::Cluster& cluster_;
  std::shared_ptr<storage::ObjectStore> ssd_;
  std::shared_ptr<storage::ObjectStore> pfs_;
  AdiosOptions options_;
  std::vector<std::unique_ptr<RankCtx>> ranks_;
  bool shutdown_ = false;
};

}  // namespace ckpt::adios
