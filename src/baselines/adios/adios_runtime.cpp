#include "baselines/adios/adios_runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "simgpu/copy.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"

namespace ckpt::adios {

namespace {
storage::ObjectKey KeyOf(sim::Rank rank, core::Version v) {
  return storage::ObjectKey{rank, v};
}
}  // namespace

AdiosRuntime::AdiosRuntime(sim::Cluster& cluster,
                           std::shared_ptr<storage::ObjectStore> ssd,
                           std::shared_ptr<storage::ObjectStore> pfs,
                           AdiosOptions options, int num_ranks)
    : cluster_(cluster), ssd_(std::move(ssd)), pfs_(std::move(pfs)),
      options_(options) {
  assert(ssd_ != nullptr);
  ranks_.reserve(static_cast<std::size_t>(num_ranks));
  for (sim::Rank r = 0; r < num_ranks; ++r) {
    auto c = std::make_unique<RankCtx>();
    c->rank = r;
    c->bounce = std::make_unique<sim::PinnedArena>(
        cluster_.topology(), cluster_.topology().node_of_rank(r),
        options_.bounce_bytes);
    RankCtx* ptr = c.get();
    c->t_drain = std::jthread([this, ptr] { DrainLoop(*ptr); });
    ranks_.push_back(std::move(c));
  }
}

AdiosRuntime::~AdiosRuntime() { Shutdown(); }

void AdiosRuntime::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& c : ranks_) {
    {
      std::lock_guard lock(c->mu);
      c->shutdown = true;
    }
    c->drain_q.Close();
    c->cv.notify_all();
  }
  for (auto& c : ranks_) {
    if (c->t_drain.joinable()) c->t_drain.join();
  }
}

AdiosRuntime::RankCtx& AdiosRuntime::ctx(sim::Rank rank) {
  return *ranks_.at(static_cast<std::size_t>(rank));
}
const AdiosRuntime::RankCtx& AdiosRuntime::ctx(sim::Rank rank) const {
  return *ranks_.at(static_cast<std::size_t>(rank));
}

util::Status AdiosRuntime::StagedD2H(RankCtx& c, sim::ConstBytePtr src,
                                     std::byte* dst, std::uint64_t n) {
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(c.rank);
  std::lock_guard bounce_lock(c.bounce_mu);
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(options_.bounce_bytes, n - done);
    CKPT_RETURN_IF_ERROR(sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                              c.bounce->data(), src + done,
                                              chunk, sim::MemcpyKind::kD2H));
    CKPT_RETURN_IF_ERROR(sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                              dst + done, c.bounce->data(),
                                              chunk, sim::MemcpyKind::kH2H));
    done += chunk;
  }
  return util::OkStatus();
}

util::Status AdiosRuntime::StagedH2D(RankCtx& c, const std::byte* src,
                                     sim::BytePtr dst, std::uint64_t n) {
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(c.rank);
  std::lock_guard bounce_lock(c.bounce_mu);
  std::uint64_t done = 0;
  while (done < n) {
    const std::uint64_t chunk = std::min(options_.bounce_bytes, n - done);
    CKPT_RETURN_IF_ERROR(sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                              c.bounce->data(), src + done,
                                              chunk, sim::MemcpyKind::kH2H));
    CKPT_RETURN_IF_ERROR(sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                              dst + done, c.bounce->data(),
                                              chunk, sim::MemcpyKind::kH2D));
    done += chunk;
  }
  return util::OkStatus();
}

util::Status AdiosRuntime::Checkpoint(sim::Rank rank, core::Version v,
                                      sim::ConstBytePtr src, std::uint64_t size) {
  if (src == nullptr || size == 0) {
    return util::InvalidArgument("Checkpoint: empty payload");
  }
  const util::Stopwatch sw;
  RankCtx& c = ctx(rank);
  {
    // BP5 buffer reservation: block while the pool is full (deferred puts
    // flush on buffer-full).
    std::unique_lock lock(c.mu);
    if (c.shutdown) return util::ShutdownError("runtime stopping");
    if (c.sizes.count(v) != 0) {
      return util::AlreadyExists("checkpoint version " + std::to_string(v));
    }
    c.cv.wait(lock, [&] {
      return c.shutdown || c.pool_used + size <= options_.host_buffer_bytes ||
             size > options_.host_buffer_bytes;
    });
    if (c.shutdown) return util::ShutdownError("runtime stopping");
    c.sizes[v] = size;
    if (size <= options_.host_buffer_bytes) {
      c.pool_used += size;
      c.buffered[v].data.resize(size);
    }
    ++c.inflight;
  }

  std::byte* host_dst = nullptr;
  {
    std::lock_guard lock(c.mu);
    auto it = c.buffered.find(v);
    if (it != c.buffered.end()) host_dst = it->second.data.data();
  }

  // BP5 marshaling: CPU-side serialization of payload + metadata.
  if (options_.serialize_bw > 0) {
    const double secs = static_cast<double>(size) /
                        static_cast<double>(options_.serialize_bw);
    util::PreciseSleep(std::chrono::nanoseconds(
        static_cast<std::int64_t>(secs * 1e9)));
  }

  util::Status st;
  if (host_dst != nullptr) {
    // Deferred put: D2H into the pageable BP buffer; draining is async.
    st = StagedD2H(c, src, host_dst, size);
    if (st.ok()) {
      c.drain_q.Push(v);
    }
  } else {
    // Object larger than the whole pool: synchronous write-through.
    std::vector<std::byte> staging(size);
    st = StagedD2H(c, src, staging.data(), size);
    if (st.ok()) st = ssd_->Put(KeyOf(rank, v), staging.data(), size);
    if (st.ok() && options_.terminal_tier == core::Tier::kPfs) {
      st = pfs_->Put(KeyOf(rank, v), staging.data(), size);
    }
    std::lock_guard lock(c.mu);
    --c.inflight;
    c.cv.notify_all();
  }

  std::lock_guard lock(c.mu);
  if (!st.ok()) {
    c.sizes.erase(v);
    auto it = c.buffered.find(v);
    if (it != c.buffered.end()) {
      c.pool_used -= it->second.data.size();
      c.buffered.erase(it);
    }
    return st;
  }
  c.metrics.ckpt_block_s.Add(sw.ElapsedSec());
  c.metrics.bytes_checkpointed += size;
  return util::OkStatus();
}

util::Status AdiosRuntime::Restore(sim::Rank rank, core::Version v,
                                   sim::BytePtr dst, std::uint64_t capacity) {
  if (dst == nullptr) return util::InvalidArgument("Restore: null buffer");
  const util::Stopwatch sw;
  RankCtx& c = ctx(rank);
  std::uint64_t size = 0;
  bool from_buffer = false;
  {
    std::unique_lock lock(c.mu);
    if (c.shutdown) return util::ShutdownError("runtime stopping");
    auto sit = c.sizes.find(v);
    if (sit == c.sizes.end()) {
      auto s = ssd_->Size(KeyOf(rank, v));
      if (!s.ok()) return s.status();
      sit = c.sizes.emplace(v, *s).first;
    }
    size = sit->second;
    if (capacity < size) return util::InvalidArgument("Restore: buffer too small");
    auto bit = c.buffered.find(v);
    if (bit != c.buffered.end()) {
      from_buffer = true;
      ++bit->second.readers;  // pin against pool release mid-read
    }
  }

  util::Status st;
  if (from_buffer) {
    std::byte* src = nullptr;
    {
      std::lock_guard lock(c.mu);
      src = c.buffered.at(v).data.data();
    }
    st = StagedH2D(c, src, dst, size);
    std::lock_guard lock(c.mu);
    --c.buffered.at(v).readers;
    c.cv.notify_all();
    ++c.metrics.restores_from_host;
  } else {
    // On-demand read from the BP file on the SSD, then staged H2D.
    std::vector<std::byte> staging(size);
    st = ssd_->Get(KeyOf(rank, v), staging.data(), size);
    if (!st.ok() && pfs_ != nullptr) {
      st = pfs_->Get(KeyOf(rank, v), staging.data(), size);
    }
    if (st.ok()) st = StagedH2D(c, staging.data(), dst, size);
    std::lock_guard lock(c.mu);
    ++c.metrics.restores_from_store;
  }
  if (!st.ok()) return st;

  std::lock_guard lock(c.mu);
  c.metrics.restore_block_s.Add(sw.ElapsedSec());
  c.metrics.bytes_restored += size;
  c.metrics.restore_series.push_back(core::RestorePoint{
      static_cast<std::uint64_t>(c.metrics.restore_series.size()), v,
      sw.ElapsedSec(), size, 0});
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> AdiosRuntime::RecoverSize(sim::Rank rank,
                                                        core::Version v) {
  RankCtx& c = ctx(rank);
  {
    std::lock_guard lock(c.mu);
    auto it = c.sizes.find(v);
    if (it != c.sizes.end()) return it->second;
  }
  auto s = ssd_->Size(KeyOf(rank, v));
  if (s.ok()) return *s;
  return util::NotFound("checkpoint " + std::to_string(v) + " unknown");
}

util::Status AdiosRuntime::PrefetchEnqueue(sim::Rank, core::Version) {
  return util::OkStatus();  // no hint support in ADIOS2; ignored
}

util::Status AdiosRuntime::PrefetchStart(sim::Rank) { return util::OkStatus(); }

util::Status AdiosRuntime::WaitForFlushes(sim::Rank rank) {
  const util::Stopwatch sw;
  RankCtx& c = ctx(rank);
  std::unique_lock lock(c.mu);
  c.cv.wait(lock, [&] { return c.inflight == 0 || c.shutdown; });
  c.metrics.wait_for_flush_s += sw.ElapsedSec();
  if (c.shutdown && c.inflight != 0) {
    return util::ShutdownError("runtime stopped with drains pending");
  }
  return util::OkStatus();
}

core::RankMetrics AdiosRuntime::metrics(sim::Rank rank) const {
  const RankCtx& c = ctx(rank);
  std::lock_guard lock(c.mu);
  return c.metrics;
}

void AdiosRuntime::DrainLoop(RankCtx& c) {
  while (auto vo = c.drain_q.Pop()) {
    const core::Version v = *vo;
    std::byte* src = nullptr;
    std::uint64_t size = 0;
    {
      std::unique_lock lock(c.mu);
      auto it = c.buffered.find(v);
      if (it == c.buffered.end()) {
        --c.inflight;
        c.cv.notify_all();
        continue;
      }
      // Wait out a concurrent reader before we release the buffer later.
      src = it->second.data.data();
      size = it->second.data.size();
    }
    util::Status st = ssd_->Put(KeyOf(c.rank, v), src, size);
    if (st.ok() && options_.terminal_tier == core::Tier::kPfs) {
      st = pfs_->Put(KeyOf(c.rank, v), src, size);
    }
    std::unique_lock lock(c.mu);
    if (!st.ok()) {
      CKPT_LOG(kError, "adios") << "drain failed: " << st.ToString();
    } else {
      // Wait out concurrent readers before releasing the buffer.
      c.cv.wait(lock, [&] { return c.buffered.at(v).readers == 0; });
      c.pool_used -= size;
      c.buffered.erase(v);
      ++c.metrics.flushes_completed;
    }
    --c.inflight;
    c.cv.notify_all();
  }
}

}  // namespace ckpt::adios
