#include "rtm/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace ckpt::rtm {

TraceModel::TraceModel(TraceConfig config) : config_(config) {}

double TraceModel::MeanAt(int i) const {
  const double ramp_len =
      std::max(1.0, config_.ramp_fraction * config_.num_snapshots);
  const double t = std::min(1.0, static_cast<double>(i) / ramp_len);
  // Smoothstep ramp: gentle start, gentle landing on the plateau.
  const double s = t * t * (3.0 - 2.0 * t);
  return static_cast<double>(config_.ramp_start_mean) +
         s * static_cast<double>(config_.plateau_mean - config_.ramp_start_mean);
}

std::vector<std::uint64_t> TraceModel::GenerateShot(std::uint64_t shot_index) const {
  auto rng = util::MakeRng(config_.seed, shot_index);
  std::vector<std::uint64_t> sizes;
  sizes.reserve(static_cast<std::size_t>(config_.num_snapshots));
  const double sigma = config_.sigma;
  for (int i = 0; i < config_.num_snapshots; ++i) {
    const double mean = MeanAt(i);
    // Lognormal with the target mean: mu = ln(mean) - sigma^2/2.
    const double mu = std::log(mean) - sigma * sigma / 2.0;
    const double v = util::ClampedLognormal(
        rng, mu, sigma, static_cast<double>(config_.min_size),
        static_cast<double>(config_.max_size));
    // Round to 256 B (transfer alignment) to keep the tables tidy.
    const auto size = static_cast<std::uint64_t>(v) / 256 * 256;
    sizes.push_back(std::max<std::uint64_t>(size, 256));
  }
  return sizes;
}

std::vector<std::uint64_t> TraceModel::GenerateUniform() const {
  return std::vector<std::uint64_t>(
      static_cast<std::size_t>(config_.num_snapshots), config_.uniform_size);
}

std::vector<SnapshotSizeStats> TraceModel::SnapshotStats(int num_shots) const {
  std::vector<SnapshotSizeStats> stats(
      static_cast<std::size_t>(config_.num_snapshots));
  for (auto& s : stats) {
    s.min = ~0ull;
    s.max = 0;
    s.avg = 0.0;
  }
  for (int shot = 0; shot < num_shots; ++shot) {
    const auto sizes = GenerateShot(static_cast<std::uint64_t>(shot));
    for (int i = 0; i < config_.num_snapshots; ++i) {
      auto& s = stats[static_cast<std::size_t>(i)];
      const std::uint64_t v = sizes[static_cast<std::size_t>(i)];
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
      s.avg += static_cast<double>(v);
    }
  }
  for (auto& s : stats) s.avg /= std::max(1, num_shots);
  return stats;
}

std::uint64_t TraceModel::ShotBytes(const std::vector<std::uint64_t>& sizes) {
  std::uint64_t total = 0;
  for (std::uint64_t s : sizes) total += s;
  return total;
}

}  // namespace ckpt::rtm
