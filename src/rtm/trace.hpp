// RTM (Reverse Time Migration) checkpoint-size trace model (§5.3.1/§5.3.3).
//
// SUBSTITUTION NOTE (DESIGN.md §2): the paper benchmarks against traces of
// 1600 production RTM shots from Saudi Aramco, which record per-snapshot
// compressed checkpoint sizes (~30x compression, highly variable). Those
// traces are proprietary; this model generates synthetic shots calibrated to
// the published properties (Fig. 4):
//   * 384 snapshots per shot;
//   * small checkpoints early in the shot (the wavefield has little energy
//     content at first, so it compresses extremely well), ramping up to a
//     wide plateau;
//   * large min/max spread per snapshot index across shots (lognormal);
//   * aggregate per shot in a fixed band (paper: 38-50 GB; scaled /1000:
//     38-50 MB), median snapshot ~= the 128 MB uniform-mode size.
//
// All sizes here are in the scaled regime (divide paper numbers by 1000).
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace ckpt::rtm {

struct TraceConfig {
  int num_snapshots = 384;
  std::uint64_t uniform_size = 128ull << 10;  ///< 128 MB /1000 -> 128 KB
  std::uint64_t min_size = 8ull << 10;        ///< floor of compressed sizes
  std::uint64_t max_size = 448ull << 10;      ///< cap of compressed sizes
  std::uint64_t plateau_mean = 150ull << 10;  ///< late-shot mean size
  std::uint64_t ramp_start_mean = 16ull << 10;
  double ramp_fraction = 0.25;  ///< fraction of the shot spent ramping up
  double sigma = 0.35;          ///< lognormal spread
  std::uint64_t seed = 42;
};

/// Whether a shot uses trace-derived variable sizes or the uniform 128 KB
/// (scaled) comparison mode (§5.3.3).
enum class SizeMode : std::uint8_t { kUniform, kVariable };

[[nodiscard]] constexpr const char* to_string(SizeMode m) noexcept {
  return m == SizeMode::kUniform ? "uniform" : "variable";
}

/// Per-snapshot-index aggregate over a set of shots (the Fig. 4 series).
struct SnapshotSizeStats {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double avg = 0.0;
};

class TraceModel {
 public:
  explicit TraceModel(TraceConfig config = {});

  /// Deterministic per-shot size series. The same (seed, shot_index) always
  /// produces the same sizes; distinct shots differ.
  [[nodiscard]] std::vector<std::uint64_t> GenerateShot(std::uint64_t shot_index) const;

  /// Uniform-mode series (all snapshots uniform_size).
  [[nodiscard]] std::vector<std::uint64_t> GenerateUniform() const;

  [[nodiscard]] std::vector<std::uint64_t> Generate(SizeMode mode,
                                                    std::uint64_t shot_index) const {
    return mode == SizeMode::kUniform ? GenerateUniform() : GenerateShot(shot_index);
  }

  /// Fig. 4: min/avg/max per snapshot index across `num_shots` shots.
  [[nodiscard]] std::vector<SnapshotSizeStats> SnapshotStats(int num_shots) const;

  /// Total bytes of one shot.
  [[nodiscard]] static std::uint64_t ShotBytes(const std::vector<std::uint64_t>& sizes);

  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }

 private:
  /// Mean size at snapshot `i` (ramp then plateau).
  [[nodiscard]] double MeanAt(int i) const;

  TraceConfig config_;
};

}  // namespace ckpt::rtm
