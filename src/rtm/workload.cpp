#include "rtm/workload.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstring>
#include <numeric>
#include <thread>

#include "util/clock.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace ckpt::rtm {

std::vector<core::Version> MakeRestoreOrder(const ShotConfig& cfg,
                                            sim::Rank rank) {
  std::vector<core::Version> order(static_cast<std::size_t>(cfg.num_ckpts));
  std::iota(order.begin(), order.end(), core::Version{0});
  switch (cfg.read_order) {
    case ReadOrder::kSequential:
      break;
    case ReadOrder::kReverse:
      std::reverse(order.begin(), order.end());
      break;
    case ReadOrder::kIrregular: {
      // Random but predetermined (§5.3.2): fixed by (seed, rank).
      auto rng = util::MakeRng(cfg.seed, static_cast<std::uint64_t>(rank) + 1);
      std::shuffle(order.begin(), order.end(), rng);
      break;
    }
  }
  return order;
}

void FillPattern(sim::Rank rank, core::Version v, sim::BytePtr buf,
                 std::uint64_t size) {
  const std::uint64_t stamp =
      util::DeriveSeed(0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(rank), v);
  std::uint64_t word = stamp;
  std::uint64_t off = 0;
  while (off + sizeof(word) <= size) {
    std::memcpy(buf + off, &word, sizeof(word));
    word = word * 6364136223846793005ull + 1442695040888963407ull;
    off += sizeof(word);
  }
  for (; off < size; ++off) buf[off] = static_cast<std::byte>(off & 0xff);
}

bool CheckPattern(sim::Rank rank, core::Version v, sim::ConstBytePtr buf,
                  std::uint64_t size) {
  const std::uint64_t stamp =
      util::DeriveSeed(0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(rank), v);
  std::uint64_t word = stamp;
  std::uint64_t off = 0;
  while (off + sizeof(word) <= size) {
    std::uint64_t got = 0;
    std::memcpy(&got, buf + off, sizeof(got));
    if (got != word) return false;
    word = word * 6364136223846793005ull + 1442695040888963407ull;
    off += sizeof(word);
  }
  for (; off < size; ++off) {
    if (buf[off] != static_cast<std::byte>(off & 0xff)) return false;
  }
  return true;
}

double ShotResult::MeanCkptThroughput() const {
  if (per_rank.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : per_rank) sum += m.CkptThroughput();
  return sum / static_cast<double>(per_rank.size());
}

double ShotResult::MeanRestoreThroughput() const {
  if (per_rank.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& m : per_rank) sum += m.RestoreThroughput();
  return sum / static_cast<double>(per_rank.size());
}

double ShotResult::AggCkptThroughput() const {
  double sum = 0.0;
  for (const auto& m : per_rank) sum += m.CkptThroughput();
  return sum;
}

double ShotResult::AggRestoreThroughput() const {
  double sum = 0.0;
  for (const auto& m : per_rank) sum += m.RestoreThroughput();
  return sum;
}

util::StatusOr<ShotResult> RunShot(sim::Cluster& cluster, core::Runtime& runtime,
                                   const ShotConfig& cfg, int num_ranks) {
  if (num_ranks <= 0 || num_ranks > cluster.total_gpus()) {
    return util::InvalidArgument("RunShot: bad rank count");
  }
  const TraceModel trace(cfg.trace);
  const bool coupled = cfg.coupling == Coupling::kTightlyCoupled;
  std::barrier iteration_barrier(num_ranks);
  std::atomic<std::uint64_t> verify_failures{0};
  std::vector<util::Status> rank_status(static_cast<std::size_t>(num_ranks),
                                        util::OkStatus());
  std::atomic<std::uint64_t> total_bytes{0};

  const util::Stopwatch wall;
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks));
    for (sim::Rank rank = 0; rank < num_ranks; ++rank) {
      threads.emplace_back([&, rank] {
        util::trace::SetThreadName("r" + std::to_string(rank) + "/app");
        sim::BytePtr buf = nullptr;
        auto fail = [&](util::Status st) {
          rank_status[static_cast<std::size_t>(rank)] = std::move(st);
          if (buf != nullptr) (void)cluster.device(rank).Free(buf);
          // Keep surviving ranks from deadlocking on the barrier.
          if (coupled) iteration_barrier.arrive_and_drop();
        };
        const auto sizes =
            trace.Generate(cfg.size_mode, static_cast<std::uint64_t>(rank));
        const std::uint64_t max_size =
            *std::max_element(sizes.begin(), sizes.end());
        auto buf_or = cluster.device(rank).Allocate(max_size);
        if (!buf_or.ok()) return fail(buf_or.status());
        buf = *buf_or;
        const auto order = MakeRestoreOrder(cfg, rank);

        // All-hints mode: the full restore order is known before the
        // forward pass begins (Listing 1, lines 2-3).
        if (cfg.hint_mode == HintMode::kAll) {
          for (core::Version v : order) {
            if (auto st = runtime.PrefetchEnqueue(rank, v); !st.ok()) {
              return fail(st);
            }
          }
        }

        // Forward pass: compute (sleep) + checkpoint per iteration.
        for (int i = 0; i < cfg.num_ckpts; ++i) {
          util::PreciseSleep(cfg.compute_interval);
          const std::uint64_t size = sizes[static_cast<std::size_t>(i)];
          if (cfg.verify) {
            FillPattern(rank, static_cast<core::Version>(i), buf, size);
          }
          if (auto st = runtime.Checkpoint(rank, static_cast<core::Version>(i),
                                           buf, size);
              !st.ok()) {
            return fail(st);
          }
          total_bytes += size;
          if (coupled) iteration_barrier.arrive_and_wait();
        }

        // WAIT mode: persist everything before the restore phase (Fig. 5).
        if (cfg.wait_for_flush) {
          if (auto st = runtime.WaitForFlushes(rank); !st.ok()) return fail(st);
        }

        if (auto st = runtime.PrefetchStart(rank); !st.ok()) return fail(st);

        // Backward pass: restore in the configured order.
        for (std::size_t k = 0; k < order.size(); ++k) {
          const core::Version v = order[k];
          // Single-hint mode: announce the *next* restore at the start of
          // the current iteration (§5.2.4).
          if (cfg.hint_mode == HintMode::kSingle && k + 1 < order.size()) {
            if (auto st = runtime.PrefetchEnqueue(rank, order[k + 1]); !st.ok()) {
              return fail(st);
            }
          }
          util::PreciseSleep(cfg.compute_interval);
          auto size_or = runtime.RecoverSize(rank, v);
          if (!size_or.ok()) return fail(size_or.status());
          if (auto st = runtime.Restore(rank, v, buf, max_size); !st.ok()) {
            return fail(st);
          }
          if (cfg.verify && !CheckPattern(rank, v, buf, *size_or)) {
            ++verify_failures;
          }
          if (coupled) iteration_barrier.arrive_and_wait();
        }
        (void)cluster.device(rank).Free(buf);
      });
    }
  }  // joins all rank threads

  for (const auto& st : rank_status) {
    if (!st.ok()) return st;
  }

  ShotResult result;
  result.wall_s = wall.ElapsedSec();
  result.total_bytes = total_bytes.load();
  result.verify_failures = verify_failures.load();
  for (sim::Rank rank = 0; rank < num_ranks; ++rank) {
    result.per_rank.push_back(runtime.metrics(rank));
    result.merged.Merge(result.per_rank.back());
  }
  return result;
}

}  // namespace ckpt::rtm
