// RTM shot workload driver (§5.3.1/§5.3.2): emulates the paper's benchmark —
// trivial iterations that sleep to simulate computation but generate the
// exact trace checkpoint sizes. One *shot* = a forward pass writing a
// checkpoint per iteration, an optional wait-for-flush barrier, a
// Prefetch_start, and a backward pass restoring in one of three orders
// (Sequential / Reverse / Irregular). Runs P rank-threads, one per simulated
// GPU, in embarrassingly-parallel or tightly-coupled (per-iteration barrier)
// mode.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/runtime.hpp"
#include "rtm/trace.hpp"
#include "simgpu/cluster.hpp"

namespace ckpt::rtm {

enum class ReadOrder : std::uint8_t { kSequential, kReverse, kIrregular };
enum class HintMode : std::uint8_t { kNone, kSingle, kAll };
enum class Coupling : std::uint8_t { kEmbarrassinglyParallel, kTightlyCoupled };

[[nodiscard]] constexpr const char* to_string(ReadOrder o) noexcept {
  switch (o) {
    case ReadOrder::kSequential: return "sequential";
    case ReadOrder::kReverse: return "reverse";
    case ReadOrder::kIrregular: return "irregular";
  }
  return "?";
}
[[nodiscard]] constexpr const char* to_string(HintMode h) noexcept {
  switch (h) {
    case HintMode::kNone: return "no-hints";
    case HintMode::kSingle: return "single-hint";
    case HintMode::kAll: return "all-hints";
  }
  return "?";
}

struct ShotConfig {
  int num_ckpts = 96;
  SizeMode size_mode = SizeMode::kUniform;
  ReadOrder read_order = ReadOrder::kReverse;
  HintMode hint_mode = HintMode::kAll;
  Coupling coupling = Coupling::kEmbarrassinglyParallel;
  /// Simulated compute between iterations (paper: 10 ms; scaled: 1 ms).
  std::chrono::nanoseconds compute_interval = std::chrono::milliseconds(1);
  /// WAIT mode (Fig. 5): block until all flushes finish before restoring.
  bool wait_for_flush = false;
  /// Fill buffers with per-(rank,version) patterns and verify on restore.
  bool verify = false;
  TraceConfig trace;
  std::uint64_t seed = 7;
};

/// The restore order for one shot (a permutation of [0, num_ckpts)).
/// Deterministic: irregular orders derive from (seed, rank).
[[nodiscard]] std::vector<core::Version> MakeRestoreOrder(const ShotConfig& cfg,
                                                          sim::Rank rank);

struct ShotResult {
  std::vector<core::RankMetrics> per_rank;
  core::RankMetrics merged;
  double wall_s = 0.0;
  std::uint64_t total_bytes = 0;
  std::uint64_t verify_failures = 0;

  /// Mean of per-rank throughputs (Figs. 5/6/8 report per-GPU averages).
  [[nodiscard]] double MeanCkptThroughput() const;
  [[nodiscard]] double MeanRestoreThroughput() const;
  /// Sum of per-rank throughputs (Fig. 9's stacked bars).
  [[nodiscard]] double AggCkptThroughput() const;
  [[nodiscard]] double AggRestoreThroughput() const;
};

/// Runs one shot over `num_ranks` rank-threads against `runtime`.
/// Each rank checkpoints the trace sizes of shot `rank` (variable mode) or
/// the uniform series, then restores per the configured order.
util::StatusOr<ShotResult> RunShot(sim::Cluster& cluster, core::Runtime& runtime,
                                   const ShotConfig& cfg, int num_ranks);

/// Deterministic fill pattern for verification.
void FillPattern(sim::Rank rank, core::Version v, sim::BytePtr buf,
                 std::uint64_t size);
[[nodiscard]] bool CheckPattern(sim::Rank rank, core::Version v,
                                sim::ConstBytePtr buf, std::uint64_t size);

}  // namespace ckpt::rtm
