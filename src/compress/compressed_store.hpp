// Transparent compression decorator for the durable tiers: Put compresses
// (keeping the original when the codec does not help), Get decompresses,
// Size reports the logical (uncompressed) size. Composes with the checksum
// and bandwidth decorators; the bandwidth models then charge the *stored*
// (compressed) bytes, which is exactly the I/O saving compression buys.
#pragma once

#include <atomic>
#include <memory>

#include "compress/codec.hpp"
#include "storage/object_store.hpp"

namespace ckpt::compress {

class CompressedStore final : public storage::ObjectStore {
 public:
  CompressedStore(std::shared_ptr<storage::ObjectStore> inner, CodecKind kind)
      : inner_(std::move(inner)), kind_(kind), codec_(MakeCodec(kind)) {}

  util::Status Put(const storage::ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override;
  util::Status Get(const storage::ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override;
  [[nodiscard]] util::StatusOr<std::uint64_t> Size(
      const storage::ObjectKey& key) const override;
  [[nodiscard]] bool Exists(const storage::ObjectKey& key) const override {
    return inner_->Exists(key);
  }
  util::Status Erase(const storage::ObjectKey& key) override {
    return inner_->Erase(key);
  }
  [[nodiscard]] std::vector<storage::ObjectKey> Keys() const override {
    return inner_->Keys();
  }
  [[nodiscard]] std::uint64_t TotalBytes() const override {
    return inner_->TotalBytes();
  }
  // GetRange deliberately stays the whole-object default: a byte range of
  // the logical payload is not a byte range of the compressed object.
  [[nodiscard]] bool CollectStats(storage::StoreStats& out) const override {
    return inner_->CollectStats(out);
  }

  /// Cumulative logical vs stored bytes (telemetry; ratio = logical/stored).
  [[nodiscard]] std::uint64_t logical_bytes() const noexcept { return logical_; }
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept { return stored_; }

  static constexpr std::uint64_t kHeaderBytes = 13;  // magic u32 | raw u64 | codec u8

 private:
  std::shared_ptr<storage::ObjectStore> inner_;
  CodecKind kind_;
  std::unique_ptr<Codec> codec_;
  std::atomic<std::uint64_t> logical_{0};
  std::atomic<std::uint64_t> stored_{0};
};

}  // namespace ckpt::compress
