#include "compress/codec.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace ckpt::compress {

namespace {

// --- RLE -------------------------------------------------------------------
// Control byte c:
//   c in [0, 127]   -> literal run: the next c+1 bytes are verbatim
//   c in [128, 255] -> repeat run: the next byte repeats (c - 126) times,
//                      i.e. runs of 2..129
// Worst case: one control byte per 128 literals (+1 tail) -> n + n/128 + 1.

class RleCodec final : public Codec {
 public:
  std::uint64_t MaxCompressedSize(std::uint64_t n) const override {
    return n + n / 128 + 2;
  }

  util::StatusOr<std::uint64_t> Compress(const std::byte* src, std::uint64_t n,
                                         std::byte* dst,
                                         std::uint64_t cap) const override {
    std::uint64_t in = 0;
    std::uint64_t out = 0;
    auto emit = [&](std::byte b) -> bool {
      if (out >= cap) return false;
      dst[out++] = b;
      return true;
    };
    while (in < n) {
      // Measure the run starting at `in`.
      std::uint64_t run = 1;
      while (in + run < n && run < 129 && src[in + run] == src[in]) ++run;
      if (run >= 2) {
        if (!emit(static_cast<std::byte>(126 + run))) {
          return util::CapacityExceeded("RLE: output full");
        }
        if (!emit(src[in])) return util::CapacityExceeded("RLE: output full");
        in += run;
        continue;
      }
      // Literal run: scan until the next repeat of >= 3 (a 2-run inside
      // literals is cheaper left literal) or 128 bytes.
      std::uint64_t lit = 1;
      while (in + lit < n && lit < 128) {
        const std::uint64_t left = n - (in + lit);
        if (left >= 3 && src[in + lit] == src[in + lit + 1] &&
            src[in + lit] == src[in + lit + 2]) {
          break;
        }
        ++lit;
      }
      if (!emit(static_cast<std::byte>(lit - 1))) {
        return util::CapacityExceeded("RLE: output full");
      }
      if (out + lit > cap) return util::CapacityExceeded("RLE: output full");
      std::memcpy(dst + out, src + in, lit);
      out += lit;
      in += lit;
    }
    return out;
  }

  util::StatusOr<std::uint64_t> Decompress(const std::byte* src, std::uint64_t n,
                                           std::byte* dst,
                                           std::uint64_t cap) const override {
    std::uint64_t in = 0;
    std::uint64_t out = 0;
    while (in < n) {
      const auto c = static_cast<std::uint8_t>(src[in++]);
      if (c < 128) {
        const std::uint64_t lit = c + 1u;
        if (in + lit > n) return util::IoError("RLE: truncated literal run");
        if (out + lit > cap) return util::CapacityExceeded("RLE: dst full");
        std::memcpy(dst + out, src + in, lit);
        in += lit;
        out += lit;
      } else {
        const std::uint64_t run = static_cast<std::uint64_t>(c) - 126;
        if (in >= n) return util::IoError("RLE: truncated repeat run");
        if (out + run > cap) return util::CapacityExceeded("RLE: dst full");
        std::memset(dst + out, static_cast<int>(src[in]), run);
        ++in;
        out += run;
      }
    }
    return out;
  }

  std::string_view name() const override { return "rle"; }
};

// --- Delta + RLE ------------------------------------------------------------
// XOR each 64-bit word with its predecessor, then RLE the result. Smooth
// fields produce long zero runs after the delta. The delta is its own
// inverse, so decompression is RLE-decode then prefix-XOR.

class DeltaRleCodec final : public Codec {
 public:
  std::uint64_t MaxCompressedSize(std::uint64_t n) const override {
    return rle_.MaxCompressedSize(n);
  }

  util::StatusOr<std::uint64_t> Compress(const std::byte* src, std::uint64_t n,
                                         std::byte* dst,
                                         std::uint64_t cap) const override {
    std::vector<std::byte> delta(n);
    ApplyDelta(src, delta.data(), n);
    return rle_.Compress(delta.data(), n, dst, cap);
  }

  util::StatusOr<std::uint64_t> Decompress(const std::byte* src, std::uint64_t n,
                                           std::byte* dst,
                                           std::uint64_t cap) const override {
    auto size = rle_.Decompress(src, n, dst, cap);
    if (!size.ok()) return size;
    UndoDelta(dst, *size);
    return size;
  }

  std::string_view name() const override { return "delta-rle"; }

 private:
  static void ApplyDelta(const std::byte* src, std::byte* out, std::uint64_t n) {
    std::uint64_t prev = 0;
    std::uint64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint64_t word = 0;
      std::memcpy(&word, src + i, 8);
      const std::uint64_t d = word ^ prev;
      std::memcpy(out + i, &d, 8);
      prev = word;
    }
    for (; i < n; ++i) out[i] = src[i];
  }

  static void UndoDelta(std::byte* buf, std::uint64_t n) {
    std::uint64_t prev = 0;
    std::uint64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      std::uint64_t d = 0;
      std::memcpy(&d, buf + i, 8);
      const std::uint64_t word = d ^ prev;
      std::memcpy(buf + i, &word, 8);
      prev = word;
    }
  }

  RleCodec rle_;
};

}  // namespace

std::unique_ptr<Codec> MakeCodec(CodecKind kind) {
  switch (kind) {
    case CodecKind::kRle: return std::make_unique<RleCodec>();
    case CodecKind::kDeltaRle: return std::make_unique<DeltaRleCodec>();
  }
  return std::make_unique<RleCodec>();
}

std::string_view to_string(CodecKind kind) noexcept {
  switch (kind) {
    case CodecKind::kRle: return "rle";
    case CodecKind::kDeltaRle: return "delta-rle";
  }
  return "?";
}

}  // namespace ckpt::compress
