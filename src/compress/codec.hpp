// Checkpoint compression codecs.
//
// The paper's RTM workload compresses wavefield snapshots *before*
// checkpointing ("compute_and_compress" in Listing 1) at ~30x average ratio,
// which is what produces the variable checkpoint sizes of Fig. 4. This
// module provides the application-side codecs for that pattern, plus a
// storage decorator (compressed_store.hpp) that can transparently compress
// the durable tiers.
//
// Two codecs:
//   * RLE        — classic byte run-length with literal runs; bounded
//                  expansion (~0.8%) on incompressible data.
//   * Delta+RLE  — XOR-delta over 64-bit words, then RLE. Wavefield-like
//                  smooth data XORs to long zero runs; random data degrades
//                  gracefully to the RLE bound.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "util/status.hpp"

namespace ckpt::compress {

class Codec {
 public:
  virtual ~Codec() = default;

  /// Worst-case output size for `n` input bytes (allocate this much).
  [[nodiscard]] virtual std::uint64_t MaxCompressedSize(std::uint64_t n) const = 0;

  /// Compresses [src, src+n) into dst (capacity `cap`); returns the
  /// compressed size. Fails with kCapacityExceeded if dst is too small.
  virtual util::StatusOr<std::uint64_t> Compress(const std::byte* src,
                                                 std::uint64_t n, std::byte* dst,
                                                 std::uint64_t cap) const = 0;

  /// Decompresses into dst; returns the decompressed size. Fails with
  /// kIoError on malformed input, kCapacityExceeded if dst is too small.
  virtual util::StatusOr<std::uint64_t> Decompress(const std::byte* src,
                                                   std::uint64_t n,
                                                   std::byte* dst,
                                                   std::uint64_t cap) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

enum class CodecKind : std::uint8_t { kRle = 1, kDeltaRle = 2 };

[[nodiscard]] std::unique_ptr<Codec> MakeCodec(CodecKind kind);
[[nodiscard]] std::string_view to_string(CodecKind kind) noexcept;

}  // namespace ckpt::compress
