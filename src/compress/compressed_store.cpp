#include "compress/compressed_store.hpp"

#include <atomic>
#include <cstring>
#include <vector>

namespace ckpt::compress {

namespace {
constexpr std::uint32_t kMagic = 0xC0DEC5EDu;
constexpr std::uint8_t kStoredRaw = 0;  // codec id 0 = stored uncompressed
}  // namespace

util::Status CompressedStore::Put(const storage::ObjectKey& key,
                                  sim::ConstBytePtr data, std::uint64_t size) {
  if (data == nullptr && size > 0) return util::InvalidArgument("Put: null data");
  std::vector<std::byte> framed(kHeaderBytes + codec_->MaxCompressedSize(size));
  std::uint8_t codec_id = static_cast<std::uint8_t>(kind_);
  std::uint64_t payload = 0;
  auto compressed = codec_->Compress(data, size, framed.data() + kHeaderBytes,
                                     framed.size() - kHeaderBytes);
  if (compressed.ok() && *compressed < size) {
    payload = *compressed;
  } else {
    // Incompressible (or codec failure): store raw, never expand.
    codec_id = kStoredRaw;
    payload = size;
    if (framed.size() < kHeaderBytes + size) framed.resize(kHeaderBytes + size);
    if (size > 0) std::memcpy(framed.data() + kHeaderBytes, data, size);
  }
  std::memcpy(framed.data(), &kMagic, 4);
  std::memcpy(framed.data() + 4, &size, 8);
  framed[12] = static_cast<std::byte>(codec_id);
  logical_ += size;
  stored_ += kHeaderBytes + payload;
  return inner_->Put(key, framed.data(), kHeaderBytes + payload);
}

util::Status CompressedStore::Get(const storage::ObjectKey& key, sim::BytePtr dst,
                                  std::uint64_t size) {
  auto framed_size = inner_->Size(key);
  if (!framed_size.ok()) return framed_size.status();
  if (*framed_size < kHeaderBytes) {
    return util::IoError("object " + key.ToString() + " missing codec header");
  }
  std::vector<std::byte> framed(*framed_size);
  CKPT_RETURN_IF_ERROR(inner_->Get(key, framed.data(), framed.size()));
  std::uint32_t magic = 0;
  std::uint64_t raw_size = 0;
  std::memcpy(&magic, framed.data(), 4);
  std::memcpy(&raw_size, framed.data() + 4, 8);
  const auto codec_id = static_cast<std::uint8_t>(framed[12]);
  if (magic != kMagic) {
    return util::IoError("object " + key.ToString() + " has a bad codec header");
  }
  if (size < raw_size) {
    return util::InvalidArgument("Get: buffer smaller than object " + key.ToString());
  }
  const std::byte* payload = framed.data() + kHeaderBytes;
  const std::uint64_t payload_size = *framed_size - kHeaderBytes;
  if (codec_id == kStoredRaw) {
    if (payload_size != raw_size) {
      return util::IoError("object " + key.ToString() + " raw-size mismatch");
    }
    std::memcpy(dst, payload, raw_size);
    return util::OkStatus();
  }
  if (codec_id != static_cast<std::uint8_t>(kind_)) {
    return util::IoError("object " + key.ToString() +
                         " was written with a different codec");
  }
  auto out = codec_->Decompress(payload, payload_size, dst, size);
  if (!out.ok()) return out.status();
  if (*out != raw_size) {
    return util::IoError("object " + key.ToString() +
                         " decompressed to an unexpected size");
  }
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> CompressedStore::Size(
    const storage::ObjectKey& key) const {
  auto framed_size = inner_->Size(key);
  if (!framed_size.ok()) return framed_size.status();
  if (*framed_size < kHeaderBytes) {
    return util::IoError("object " + key.ToString() + " missing codec header");
  }
  // Read just the header's raw-size field through a full Get of the header
  // region: the inner interface is whole-object, so fetch and parse.
  // (Durable-tier Size() calls are metadata-path only, not hot.)
  std::vector<std::byte> framed(*framed_size);
  CKPT_RETURN_IF_ERROR(
      const_cast<CompressedStore*>(this)->inner_->Get(key, framed.data(),
                                                      framed.size()));
  std::uint64_t raw_size = 0;
  std::memcpy(&raw_size, framed.data() + 4, 8);
  return raw_size;
}

}  // namespace ckpt::compress
