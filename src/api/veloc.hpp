// VELOC-style application API (§4.3): the paper implements its approach as
// an extension of the VELOC checkpoint-restart runtime and adds two
// primitives to the classic set. This header mirrors that surface:
//
//   classic:  Mem_protect, Checkpoint, Restart, Recover_size
//   new:      Prefetch_enqueue, Prefetch_start      (highlighted in Listing 1)
//
// One VelocClient wraps one process (rank). Multiple protected memory
// regions are packed into a single monolithic checkpoint object (checkpoints
// are whole-object immutable, paper §1); a single protected region takes a
// zero-copy path straight through the engine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "simgpu/cluster.hpp"

namespace ckpt::api {

class VelocClient {
 public:
  /// `engine` and `cluster` must outlive the client.
  VelocClient(core::Engine& engine, sim::Cluster& cluster, sim::Rank rank);
  ~VelocClient();

  VelocClient(const VelocClient&) = delete;
  VelocClient& operator=(const VelocClient&) = delete;

  /// Declares (or re-declares, e.g. before a Restart of a different-sized
  /// version) a device memory region to checkpoint. Regions are identified
  /// by `region_id` and concatenated in id order.
  util::Status MemProtect(int region_id, sim::BytePtr ptr, std::uint64_t size);

  /// Removes a protected region.
  util::Status MemUnprotect(int region_id);

  /// Writes all protected regions as checkpoint version `ver`. Blocks until
  /// the data reaches the GPU cache; flushing continues in the background.
  /// `name` labels the checkpoint series (kept for API fidelity/telemetry).
  util::Status Checkpoint(const std::string& name, core::Version ver);

  /// Restores version `ver` into the protected regions.
  util::Status Restart(core::Version ver);

  /// Size of region `region_id` in version `ver`. Falls back to the whole
  /// object size when the region manifest is unavailable (restart from a
  /// durable store with a single protected region).
  util::StatusOr<std::uint64_t> RecoverSize(core::Version ver, int region_id);

  /// NEW (paper): appends a restore-order hint.
  util::Status PrefetchEnqueue(core::Version ver);

  /// NEW (paper): releases the prefetcher. Optional; useful to delay
  /// prefetches until the flush-heavy forward pass is done (Listing 1).
  util::Status PrefetchStart();

  /// Blocks until all checkpoints of this rank are durable.
  util::Status WaitForFlushes();

  [[nodiscard]] sim::Rank rank() const noexcept { return rank_; }
  [[nodiscard]] core::RankMetrics metrics() const {
    return engine_.metrics(rank_);
  }
  /// Tenant owning this client's rank (kDefaultTenant in single-tenant mode).
  [[nodiscard]] core::TenantId tenant() const noexcept {
    return engine_.TenantOf(rank_);
  }
  /// Owning tenant's name; empty in single-tenant mode.
  [[nodiscard]] std::string tenant_name() const {
    return engine_.TenantLabelOf(rank_);
  }

 private:
  struct Region {
    sim::BytePtr ptr = nullptr;
    std::uint64_t size = 0;
  };

  /// Total bytes across protected regions.
  [[nodiscard]] std::uint64_t ProtectedBytes() const;
  /// Ensures the device pack buffer holds at least `size` bytes.
  util::Status EnsurePackBuffer(std::uint64_t size);

  core::Engine& engine_;
  sim::Cluster& cluster_;
  sim::Rank rank_;
  std::map<int, Region> regions_;
  // Per-version region-size manifest for multi-region RecoverSize.
  std::map<core::Version, std::vector<std::pair<int, std::uint64_t>>> manifest_;
  sim::BytePtr pack_buf_ = nullptr;
  std::uint64_t pack_capacity_ = 0;
};

}  // namespace ckpt::api
