/* C API for the checkpoint runtime, mirroring the VELOC C interface the
 * paper's Listing 1 is written against (VELOC_Init / VELOC_Mem_protect /
 * VELOC_Checkpoint / VELOC_Restart / VELOC_Recover_size plus the paper's
 * new VELOC_Prefetch_enqueue / VELOC_Prefetch_start). Prefixed VELOCX_ to
 * avoid colliding with a real libveloc.
 *
 * The shim owns the whole stack (simulated cluster, durable stores, engine)
 * as a process-global context configured from a key=value string:
 *
 *   gpu_cache = 4Mi, host_cache = 32Mi, eviction = score,
 *   gpudirect = false, discard_after_restore = false,
 *   terminal_tier = ssd | pfs, ssd_dir = /path  (empty = in-memory store)
 *
 * All functions return VELOCX_SUCCESS (0) or a negative error code;
 * VELOCX_Error_string() describes the most recent failure on this thread.
 */
#ifndef CKPT_API_VELOC_C_H_
#define CKPT_API_VELOC_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

enum {
  VELOCX_SUCCESS = 0,
  VELOCX_EINVAL = -1,      /* bad argument / bad config */
  VELOCX_ENOTFOUND = -2,   /* unknown checkpoint version */
  VELOCX_EEXIST = -3,      /* version already written */
  VELOCX_ENOMEM = -4,      /* device allocation failure */
  VELOCX_EIO = -5,         /* storage failure / corruption */
  VELOCX_ESHUTDOWN = -6,   /* runtime finalized */
  VELOCX_EINTERNAL = -7,   /* any other failure */
};

/* Builds the global runtime for `num_ranks` simulated GPU processes.
 * `config_text` may be NULL for defaults. Fails if already initialized. */
int VELOCX_Init(const char* config_text, int num_ranks);

/* Tears the runtime down; waits for in-flight transfers. Idempotent. */
int VELOCX_Finalize(void);

/* Device memory helpers so pure-C clients can obtain "GPU" buffers. */
int VELOCX_Device_alloc(int rank, size_t size, void** out_ptr);
int VELOCX_Device_free(int rank, void* ptr);

/* Classic VELOC primitives. */
int VELOCX_Mem_protect(int rank, int region_id, void* ptr, size_t size);
int VELOCX_Mem_unprotect(int rank, int region_id);
int VELOCX_Checkpoint(int rank, const char* name, uint64_t version);
int VELOCX_Restart(int rank, uint64_t version);
int VELOCX_Recover_size(int rank, uint64_t version, int region_id,
                        size_t* out_size);
/* Blocks until every checkpoint of `rank` is durable (VELOC's
 * VELOC_Checkpoint_wait). */
int VELOCX_Checkpoint_wait(int rank);

/* The paper's new primitives (Listing 1, highlighted). */
int VELOCX_Prefetch_enqueue(int rank, uint64_t version);
int VELOCX_Prefetch_start(int rank);

/* Multi-tenant service mode. A `tenants` config key at Init carves the
 * ranks into contiguous per-job blocks sharing one engine:
 *
 *   tenants = name ":" quota [":" weight] (";" ...)*
 *   e.g.    tenants = rtm:24Mi;synth:8Mi:0.5
 *
 * quota caps the tenant's total cache bytes (0 = unlimited); weight scales
 * its fair share of PCIe/NVMe bandwidth under contention. Without the key
 * the runtime is single-tenant and behaves exactly as before. */

/* Resolves the tenant named at Init to its id (for Tenant_close and
 * metric correlation). VELOCX_ENOTFOUND for unknown names. */
int VELOCX_Tenant_open(const char* name, int* out_id);

/* Quiesces a tenant: waits for its in-flight flushes, then rejects new
 * checkpoint/restore/prefetch calls on its ranks. Other tenants are
 * unaffected. */
int VELOCX_Tenant_close(int tenant_id);

/* Observability. Tracing is configured through the Init config string
 * (trace = true, trace_out = /path/trace.json, trace_capacity = 16k) or the
 * CKPT_TRACE / CKPT_TRACE_OUT / CKPT_TRACE_CAPACITY environment knobs;
 * config keys win. When a trace output path is configured, Finalize dumps
 * the trace there automatically.
 *
 * Live telemetry is configured the same way (config keys override the
 * CKPT_TELEMETRY* environment seed):
 *   telemetry = true            start the background sampler with the engine
 *   telemetry_period_ms = 100   sampler tick period
 *   telemetry_window = 128      sample-ring capacity
 *   telemetry_out = /path/run   flight-recorder dump path prefix
 *   telemetry_watchdog = true   stall detectors on each tick
 *   telemetry_stall_ms = 2000   FSM dwell bound before a stall trips
 *   telemetry_stall_windows = 3 consecutive no-progress samples to trip
 *   telemetry_strict = false    a watchdog trip fails VELOCX_Finalize (EIO)
 * When the watchdog trips and telemetry_out is set, the flight recorder
 * dumps <out>.trace.json, <out>.window.json, <out>.openmetrics.txt and
 * <out>.metrics.json once per run. */

/* Writes the engine metrics snapshot (per-rank and merged counters, latency
 * histograms, restore series) as JSON to `path`. */
int VELOCX_Metrics_snapshot_json(const char* path);

/* Dumps the recorded trace as Chrome trace-event JSON (Perfetto-loadable)
 * to `path`; NULL or "" uses the configured trace output path. */
int VELOCX_Trace_dump(const char* path);

/* Renders the current engine telemetry in OpenMetrics text format into
 * `buf` (NUL-terminated). Serves the background sampler's newest sample
 * when the sampler is running, otherwise probes the engine on the spot.
 * `*out_len` (may be NULL) receives the full payload length excluding the
 * NUL, even on failure — call with cap 0 to size a buffer, then retry with
 * *out_len + 1 bytes. Returns VELOCX_EINVAL when `buf` is too small (the
 * buffer then holds a truncated, NUL-terminated prefix). */
int VELOCX_Telemetry_scrape(char* buf, size_t cap, size_t* out_len);

/* Description of the most recent error on the calling thread ("" if none). */
const char* VELOCX_Error_string(void);

#ifdef __cplusplus
}
#endif

#endif /* CKPT_API_VELOC_C_H_ */
