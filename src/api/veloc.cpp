#include "api/veloc.hpp"

#include "simgpu/copy.hpp"

namespace ckpt::api {

VelocClient::VelocClient(core::Engine& engine, sim::Cluster& cluster,
                         sim::Rank rank)
    : engine_(engine), cluster_(cluster), rank_(rank) {}

VelocClient::~VelocClient() {
  if (pack_buf_ != nullptr) {
    (void)cluster_.device(rank_).Free(pack_buf_);
  }
}

util::Status VelocClient::MemProtect(int region_id, sim::BytePtr ptr,
                                     std::uint64_t size) {
  if (ptr == nullptr || size == 0) {
    return util::InvalidArgument("MemProtect: empty region");
  }
  regions_[region_id] = Region{ptr, size};
  return util::OkStatus();
}

util::Status VelocClient::MemUnprotect(int region_id) {
  if (regions_.erase(region_id) == 0) {
    return util::NotFound("MemUnprotect: region " + std::to_string(region_id));
  }
  return util::OkStatus();
}

std::uint64_t VelocClient::ProtectedBytes() const {
  std::uint64_t total = 0;
  for (const auto& [id, r] : regions_) total += r.size;
  return total;
}

util::Status VelocClient::EnsurePackBuffer(std::uint64_t size) {
  if (pack_capacity_ >= size) return util::OkStatus();
  if (pack_buf_ != nullptr) {
    CKPT_RETURN_IF_ERROR(cluster_.device(rank_).Free(pack_buf_));
    pack_buf_ = nullptr;
    pack_capacity_ = 0;
  }
  auto mem = cluster_.device(rank_).Allocate(size);
  if (!mem.ok()) return mem.status();
  pack_buf_ = *mem;
  pack_capacity_ = size;
  return util::OkStatus();
}

util::Status VelocClient::Checkpoint(const std::string& name, core::Version ver) {
  (void)name;
  if (regions_.empty()) {
    return util::FailedPrecondition("Checkpoint: no protected regions");
  }
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(rank_);

  // Single region: zero-copy pass-through.
  if (regions_.size() == 1) {
    const Region& r = regions_.begin()->second;
    manifest_[ver] = {{regions_.begin()->first, r.size}};
    return engine_.Checkpoint(rank_, ver, r.ptr, r.size);
  }

  // Multiple regions: pack into a contiguous device buffer first.
  const std::uint64_t total = ProtectedBytes();
  CKPT_RETURN_IF_ERROR(EnsurePackBuffer(total));
  std::uint64_t off = 0;
  std::vector<std::pair<int, std::uint64_t>> manifest;
  for (const auto& [id, r] : regions_) {
    CKPT_RETURN_IF_ERROR(sim::ThrottledMemcpy(cluster_.topology(), gpu,
                                              pack_buf_ + off, r.ptr, r.size,
                                              sim::MemcpyKind::kD2D));
    manifest.emplace_back(id, r.size);
    off += r.size;
  }
  manifest_[ver] = std::move(manifest);
  return engine_.Checkpoint(rank_, ver, pack_buf_, total);
}

util::Status VelocClient::Restart(core::Version ver) {
  if (regions_.empty()) {
    return util::FailedPrecondition("Restart: no protected regions");
  }
  const sim::GpuId gpu = cluster_.topology().gpu_of_rank(rank_);

  if (regions_.size() == 1) {
    const Region& r = regions_.begin()->second;
    return engine_.Restore(rank_, ver, r.ptr, r.size);
  }

  const std::uint64_t total = ProtectedBytes();
  CKPT_RETURN_IF_ERROR(EnsurePackBuffer(total));
  CKPT_RETURN_IF_ERROR(engine_.Restore(rank_, ver, pack_buf_, total));
  std::uint64_t off = 0;
  for (const auto& [id, r] : regions_) {
    CKPT_RETURN_IF_ERROR(sim::ThrottledMemcpy(cluster_.topology(), gpu, r.ptr,
                                              pack_buf_ + off, r.size,
                                              sim::MemcpyKind::kD2D));
    off += r.size;
  }
  return util::OkStatus();
}

util::StatusOr<std::uint64_t> VelocClient::RecoverSize(core::Version ver,
                                                       int region_id) {
  auto mit = manifest_.find(ver);
  if (mit != manifest_.end()) {
    for (const auto& [id, size] : mit->second) {
      if (id == region_id) return size;
    }
    return util::NotFound("RecoverSize: region " + std::to_string(region_id) +
                          " not in version " + std::to_string(ver));
  }
  // No manifest (restart from a durable store): the whole object is the
  // single protected region.
  return engine_.RecoverSize(rank_, ver);
}

util::Status VelocClient::PrefetchEnqueue(core::Version ver) {
  return engine_.PrefetchEnqueue(rank_, ver);
}

util::Status VelocClient::PrefetchStart() { return engine_.PrefetchStart(rank_); }

util::Status VelocClient::WaitForFlushes() { return engine_.WaitForFlushes(rank_); }

}  // namespace ckpt::api
