#include "api/veloc_c.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/veloc.hpp"
#include "core/engine.hpp"
#include "core/telemetry_sampler.hpp"
#include "core/tenant.hpp"
#include "core/telemetry_sink.hpp"
#include "core/tier_stack.hpp"
#include "core/trace_sink.hpp"
#include "storage/file_store.hpp"
#include "storage/mem_store.hpp"
#include "storage/remote_store.hpp"
#include "storage/throttled_store.hpp"
#include "util/config.hpp"
#include "util/logging.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace {

using namespace ckpt;

struct GlobalContext {
  std::unique_ptr<sim::Cluster> cluster;
  std::shared_ptr<storage::ObjectStore> ssd;
  std::shared_ptr<storage::ObjectStore> pfs;
  std::unique_ptr<core::Engine> engine;  // after cluster: destroyed first
  std::unique_ptr<core::TelemetrySampler> sampler;  // after engine: stops first
  std::vector<std::unique_ptr<api::VelocClient>> clients;
};

std::mutex g_mu;
std::unique_ptr<GlobalContext> g_ctx;
thread_local std::string t_error;

int Fail(int code, std::string message) {
  t_error = std::move(message);
  return code;
}

int FromStatus(const util::Status& st) {
  if (st.ok()) {
    t_error.clear();
    return VELOCX_SUCCESS;
  }
  t_error = st.ToString();
  switch (st.code()) {
    case util::ErrorCode::kInvalidArgument: return VELOCX_EINVAL;
    case util::ErrorCode::kNotFound: return VELOCX_ENOTFOUND;
    case util::ErrorCode::kAlreadyExists: return VELOCX_EEXIST;
    case util::ErrorCode::kOutOfMemory:
    case util::ErrorCode::kCapacityExceeded: return VELOCX_ENOMEM;
    case util::ErrorCode::kIoError: return VELOCX_EIO;
    case util::ErrorCode::kShutdown: return VELOCX_ESHUTDOWN;
    default: return VELOCX_EINTERNAL;
  }
}

/// Looks up the client for `rank`; nullptr (with t_error set) on failure.
api::VelocClient* ClientFor(int rank) {
  if (!g_ctx) {
    t_error = "VELOCX_Init has not been called";
    return nullptr;
  }
  if (rank < 0 || static_cast<std::size_t>(rank) >= g_ctx->clients.size()) {
    t_error = "rank " + std::to_string(rank) + " out of range";
    return nullptr;
  }
  return g_ctx->clients[static_cast<std::size_t>(rank)].get();
}

}  // namespace

extern "C" {

int VELOCX_Init(const char* config_text, int num_ranks) {
  std::lock_guard lock(g_mu);
  if (g_ctx) return Fail(VELOCX_EINVAL, "runtime already initialized");
  if (num_ranks <= 0) return Fail(VELOCX_EINVAL, "num_ranks must be positive");

  auto parsed = util::Config::Parse(config_text != nullptr ? config_text : "");
  if (!parsed.ok()) return FromStatus(parsed.status());
  const util::Config& cfg = *parsed;

  // Tracing knobs: explicit config keys override the CKPT_TRACE* environment
  // seed; absent keys leave the seeded values alone.
  if (cfg.Has("trace") || cfg.Has("trace_out") || cfg.Has("trace_capacity")) {
    const bool trace_on = cfg.GetBool("trace", util::trace::enabled());
    const auto trace_cap =
        static_cast<std::size_t>(cfg.GetInt("trace_capacity", 0));
    util::trace::Configure(trace_on, trace_cap,
                           cfg.GetString("trace_out", util::trace::out_path()));
  }

  // Telemetry knobs, same precedence: config keys override the
  // CKPT_TELEMETRY* environment seed; absent keys keep the seeded values.
  if (cfg.Has("telemetry") || cfg.Has("telemetry_period_ms") ||
      cfg.Has("telemetry_window") || cfg.Has("telemetry_out") ||
      cfg.Has("telemetry_watchdog") || cfg.Has("telemetry_stall_ms") ||
      cfg.Has("telemetry_stall_windows") || cfg.Has("telemetry_strict")) {
    util::telemetry::Settings ts = util::telemetry::settings();
    ts.enabled = cfg.GetBool("telemetry", ts.enabled);
    ts.period_ms = cfg.GetInt("telemetry_period_ms", ts.period_ms);
    ts.window = static_cast<std::size_t>(
        cfg.GetInt("telemetry_window", static_cast<std::int64_t>(ts.window)));
    ts.out_path = cfg.GetString("telemetry_out", ts.out_path);
    ts.watchdog = cfg.GetBool("telemetry_watchdog", ts.watchdog);
    ts.stall_ms = cfg.GetInt("telemetry_stall_ms", ts.stall_ms);
    ts.stall_windows = static_cast<int>(
        cfg.GetInt("telemetry_stall_windows", ts.stall_windows));
    ts.strict = cfg.GetBool("telemetry_strict", ts.strict);
    util::telemetry::Configure(ts);
  }

  auto ctx = std::make_unique<GlobalContext>();
  ctx->cluster = std::make_unique<sim::Cluster>(sim::TopologyConfig::Scaled());
  if (num_ranks > ctx->cluster->total_gpus()) {
    return Fail(VELOCX_EINVAL, "num_ranks exceeds simulated GPUs");
  }

  core::EngineOptions opts;
  opts.gpu_cache_bytes =
      static_cast<std::uint64_t>(cfg.GetInt("gpu_cache", 4ll << 20));
  opts.host_cache_bytes =
      static_cast<std::uint64_t>(cfg.GetInt("host_cache", 32ll << 20));
  opts.discard_after_restore = cfg.GetBool("discard_after_restore", false);
  opts.gpudirect = cfg.GetBool("gpudirect", false);
  // Global default; cache tiers in a "tiers" spec may override per tier.
  const std::string eviction = cfg.GetString("eviction", "score");
  if (const auto kind = core::ParseEvictionKind(eviction); kind.has_value()) {
    opts.eviction = *kind;
  } else {
    return Fail(VELOCX_EINVAL, "unknown eviction policy '" + eviction + "'");
  }
  // Multi-tenant mode: a "tenants" key splits the ranks into contiguous
  // per-job blocks over the shared stack (core/tenant.hpp grammar). Absent
  // key = legacy single-tenant runtime.
  if (cfg.Has("tenants")) {
    auto specs = core::ParseTenantSpecs(cfg.GetString("tenants", ""));
    if (!specs.ok()) return FromStatus(specs.status());
    if (static_cast<int>(specs->size()) > num_ranks) {
      return Fail(VELOCX_EINVAL,
                  "tenants: " + std::to_string(specs->size()) +
                      " tenants need at least as many ranks, have " +
                      std::to_string(num_ranks));
    }
    opts.tenants = std::move(*specs);
  }
  // Tier layout: a "tiers" key describes an arbitrary N-tier stack
  // ("name:kind[:arg[:policy]],..." — see core/tier_stack.hpp); without it
  // the classic GPU -> host -> SSD [-> PFS] stack is built from the legacy
  // gpu_cache/host_cache/terminal_tier keys.
  const sim::Topology& topo = ctx->cluster->topology();
  const auto open_backend =
      [&topo](std::string_view tier, std::string_view backend)
      -> util::StatusOr<std::shared_ptr<storage::ObjectStore>> {
    if (backend.empty() || backend == "mem") {
      return std::shared_ptr<storage::ObjectStore>(
          std::make_shared<storage::MemStore>());
    }
    if (backend.substr(0, 5) == "file=") {
      auto fs = storage::FileStore::Open(std::string(backend.substr(5)));
      if (!fs.ok()) return fs.status();
      return std::shared_ptr<storage::ObjectStore>(std::move(*fs));
    }
    if (backend.substr(0, 5) == "s3://") {
      return storage::OpenRemoteBackend(backend, &topo);
    }
    return util::InvalidArgument("tier '" + std::string(tier) +
                                 "': unknown backend '" + std::string(backend) +
                                 "' (want mem, file=<dir> or s3://<bucket>)");
  };
  if (cfg.Has("tiers")) {
    const core::TierStoreFactory factory =
        [&topo, &open_backend](std::string_view tier, std::string_view backend,
                               int ordinal)
        -> util::StatusOr<std::shared_ptr<storage::ObjectStore>> {
      auto raw = open_backend(tier, backend);
      if (!raw.ok()) return raw.status();
      // Remote backends model their own fabric charges (per-request latency
      // plus uplink bandwidth inside RemoteStore) — wrapping them in the
      // SSD/PFS bandwidth decorators would double-charge the same bytes.
      if (backend.substr(0, 5) == "s3://") return raw;
      // The first durable tier gets node-local SSD drive bandwidth; every
      // deeper one shares the PFS uplink.
      return ordinal == 0 ? storage::MakeSsdStore(topo, std::move(*raw))
                          : storage::MakePfsStore(topo, std::move(*raw));
    };
    auto stack = core::TierStackFromConfig(cfg, factory);
    if (!stack.ok()) return FromStatus(stack.status());
    ctx->engine = std::make_unique<core::Engine>(
        *ctx->cluster, std::move(**stack), opts, num_ranks);
  } else {
    const std::string terminal = cfg.GetString("terminal_tier", "ssd");
    if (terminal == "ssd") {
      opts.terminal_tier = core::Tier::kSsd;
    } else if (terminal == "pfs") {
      opts.terminal_tier = core::Tier::kPfs;
    } else {
      return Fail(VELOCX_EINVAL, "unknown terminal tier '" + terminal + "'");
    }
    const std::string ssd_dir = cfg.GetString("ssd_dir", "");
    const std::string ssd_backend = ssd_dir.empty() ? "" : "file=" + ssd_dir;
    auto ssd_raw = open_backend("ssd", ssd_backend);
    if (!ssd_raw.ok()) return FromStatus(ssd_raw.status());
    ctx->ssd = storage::MakeSsdStore(topo, std::move(*ssd_raw));
    ctx->pfs = storage::MakePfsStore(topo, std::make_shared<storage::MemStore>());
    ctx->engine = std::make_unique<core::Engine>(*ctx->cluster, ctx->ssd,
                                                 ctx->pfs, opts, num_ranks);
  }
  if (util::telemetry::enabled()) {
    ctx->sampler = std::make_unique<core::TelemetrySampler>(
        *ctx->engine, core::TelemetrySampler::Options::FromGlobalConfig());
  }
  for (int r = 0; r < num_ranks; ++r) {
    ctx->clients.push_back(
        std::make_unique<api::VelocClient>(*ctx->engine, *ctx->cluster, r));
  }
  g_ctx = std::move(ctx);
  t_error.clear();
  return VELOCX_SUCCESS;
}

int VELOCX_Finalize(void) {
  std::lock_guard lock(g_mu);
  if (!g_ctx) return VELOCX_SUCCESS;
  for (auto& client : g_ctx->clients) {
    (void)client->WaitForFlushes();
  }
  // Stop sampling while the engine is still alive, then check the watchdog
  // verdict (surfaced after a complete teardown so strict mode never leaks
  // threads or allocations).
  bool strict_failed = false;
  std::uint64_t stalls = 0;
  if (g_ctx->sampler != nullptr) {
    g_ctx->sampler->Stop();
    strict_failed = g_ctx->sampler->strict_tripped();
    stalls = g_ctx->sampler->stalls_detected();
    g_ctx->sampler.reset();
  }
  g_ctx->clients.clear();  // clients reference the engine: drop them first
  g_ctx->engine->Shutdown();
  g_ctx.reset();
  // Auto-dump after shutdown so every worker's final events are in the rings.
  if (util::trace::enabled() && !util::trace::out_path().empty()) {
    const util::Status st = core::WriteChromeTrace(util::trace::out_path());
    if (!st.ok()) {
      CKPT_LOG(kWarn, "api") << "trace dump failed: " << st.ToString();
    }
  }
  if (strict_failed) {
    return Fail(VELOCX_EIO, "telemetry watchdog detected " +
                                std::to_string(stalls) +
                                " stall(s) in strict mode");
  }
  t_error.clear();
  return VELOCX_SUCCESS;
}

int VELOCX_Device_alloc(int rank, size_t size, void** out_ptr) {
  if (out_ptr == nullptr) return Fail(VELOCX_EINVAL, "null out_ptr");
  std::lock_guard lock(g_mu);
  if (!g_ctx) return Fail(VELOCX_ESHUTDOWN, "not initialized");
  if (rank < 0 || static_cast<std::size_t>(rank) >= g_ctx->clients.size()) {
    return Fail(VELOCX_EINVAL, "rank out of range");
  }
  auto ptr = g_ctx->cluster->device(rank).Allocate(size);
  if (!ptr.ok()) return FromStatus(ptr.status());
  *out_ptr = *ptr;
  return VELOCX_SUCCESS;
}

int VELOCX_Device_free(int rank, void* ptr) {
  std::lock_guard lock(g_mu);
  if (!g_ctx) return Fail(VELOCX_ESHUTDOWN, "not initialized");
  if (rank < 0 || static_cast<std::size_t>(rank) >= g_ctx->clients.size()) {
    return Fail(VELOCX_EINVAL, "rank out of range");
  }
  return FromStatus(
      g_ctx->cluster->device(rank).Free(static_cast<sim::BytePtr>(ptr)));
}

int VELOCX_Mem_protect(int rank, int region_id, void* ptr, size_t size) {
  std::lock_guard lock(g_mu);
  api::VelocClient* c = ClientFor(rank);
  if (c == nullptr) return VELOCX_EINVAL;
  return FromStatus(
      c->MemProtect(region_id, static_cast<sim::BytePtr>(ptr), size));
}

int VELOCX_Mem_unprotect(int rank, int region_id) {
  std::lock_guard lock(g_mu);
  api::VelocClient* c = ClientFor(rank);
  if (c == nullptr) return VELOCX_EINVAL;
  return FromStatus(c->MemUnprotect(region_id));
}

int VELOCX_Checkpoint(int rank, const char* name, uint64_t version) {
  api::VelocClient* c;
  {
    std::lock_guard lock(g_mu);
    c = ClientFor(rank);
  }
  if (c == nullptr) return VELOCX_EINVAL;
  // No global lock across the blocking transfer: ranks checkpoint in
  // parallel, as with the C++ API.
  return FromStatus(c->Checkpoint(name != nullptr ? name : "", version));
}

int VELOCX_Restart(int rank, uint64_t version) {
  api::VelocClient* c;
  {
    std::lock_guard lock(g_mu);
    c = ClientFor(rank);
  }
  if (c == nullptr) return VELOCX_EINVAL;
  return FromStatus(c->Restart(version));
}

int VELOCX_Recover_size(int rank, uint64_t version, int region_id,
                        size_t* out_size) {
  if (out_size == nullptr) return Fail(VELOCX_EINVAL, "null out_size");
  api::VelocClient* c;
  {
    std::lock_guard lock(g_mu);
    c = ClientFor(rank);
  }
  if (c == nullptr) return VELOCX_EINVAL;
  auto size = c->RecoverSize(version, region_id);
  if (!size.ok()) return FromStatus(size.status());
  *out_size = *size;
  t_error.clear();
  return VELOCX_SUCCESS;
}

int VELOCX_Checkpoint_wait(int rank) {
  api::VelocClient* c;
  {
    std::lock_guard lock(g_mu);
    c = ClientFor(rank);
  }
  if (c == nullptr) return VELOCX_EINVAL;
  return FromStatus(c->WaitForFlushes());
}

int VELOCX_Prefetch_enqueue(int rank, uint64_t version) {
  api::VelocClient* c;
  {
    std::lock_guard lock(g_mu);
    c = ClientFor(rank);
  }
  if (c == nullptr) return VELOCX_EINVAL;
  return FromStatus(c->PrefetchEnqueue(version));
}

int VELOCX_Prefetch_start(int rank) {
  api::VelocClient* c;
  {
    std::lock_guard lock(g_mu);
    c = ClientFor(rank);
  }
  if (c == nullptr) return VELOCX_EINVAL;
  return FromStatus(c->PrefetchStart());
}

int VELOCX_Tenant_open(const char* name, int* out_id) {
  if (name == nullptr || name[0] == '\0') {
    return Fail(VELOCX_EINVAL, "null tenant name");
  }
  std::lock_guard lock(g_mu);
  if (!g_ctx) return Fail(VELOCX_ESHUTDOWN, "not initialized");
  const core::TenantId id = g_ctx->engine->tenant_registry().FindByName(name);
  if (id == core::kNoTenant) {
    return Fail(VELOCX_ENOTFOUND,
                "unknown tenant '" + std::string(name) + "'");
  }
  if (out_id != nullptr) *out_id = id;
  t_error.clear();
  return VELOCX_SUCCESS;
}

int VELOCX_Tenant_close(int tenant_id) {
  std::lock_guard lock(g_mu);
  if (!g_ctx) return Fail(VELOCX_ESHUTDOWN, "not initialized");
  return FromStatus(g_ctx->engine->CloseTenant(tenant_id));
}

int VELOCX_Metrics_snapshot_json(const char* path) {
  if (path == nullptr || path[0] == '\0') {
    return Fail(VELOCX_EINVAL, "null metrics snapshot path");
  }
  std::lock_guard lock(g_mu);
  if (!g_ctx) return Fail(VELOCX_ESHUTDOWN, "not initialized");
  return FromStatus(core::WriteMetricsSnapshot(*g_ctx->engine, path));
}

int VELOCX_Trace_dump(const char* path) {
  const std::string p = (path != nullptr && path[0] != '\0')
                            ? std::string(path)
                            : util::trace::out_path();
  if (p.empty()) {
    return Fail(VELOCX_EINVAL,
                "no trace output path (pass one, or set trace_out / "
                "CKPT_TRACE_OUT)");
  }
  return FromStatus(core::WriteChromeTrace(p));
}

int VELOCX_Telemetry_scrape(char* buf, size_t cap, size_t* out_len) {
  std::lock_guard lock(g_mu);
  if (!g_ctx) return Fail(VELOCX_ESHUTDOWN, "not initialized");
  const std::string text = g_ctx->sampler != nullptr
                               ? g_ctx->sampler->ScrapeOpenMetrics()
                               : core::OpenMetricsText(*g_ctx->engine);
  if (out_len != nullptr) *out_len = text.size();
  if (buf == nullptr || cap == 0) {
    return Fail(VELOCX_EINVAL, "scrape buffer too small (need " +
                                   std::to_string(text.size() + 1) +
                                   " bytes)");
  }
  const size_t n = std::min(cap - 1, text.size());
  std::memcpy(buf, text.data(), n);
  buf[n] = '\0';
  if (n < text.size()) {
    return Fail(VELOCX_EINVAL, "scrape truncated: need " +
                                   std::to_string(text.size() + 1) +
                                   " bytes, got " + std::to_string(cap));
  }
  t_error.clear();
  return VELOCX_SUCCESS;
}

const char* VELOCX_Error_string(void) { return t_error.c_str(); }

}  // extern "C"
