#include "baselines/uvm/uvm_space.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace ckpt::uvm {
namespace {

class UvmSpaceTest : public ::testing::Test {
 protected:
  UvmSpaceTest() : cluster_(sim::TopologyConfig::Testing()) {}

  UvmConfig SmallCache() {
    UvmConfig cfg;
    cfg.device_cache_bytes = 64 << 10;  // 8 pages of 8 KiB
    cfg.page_size = 8 << 10;
    cfg.fault_latency_ns = 0;
    return cfg;
  }

  std::vector<std::byte> Blob(std::size_t n, std::uint8_t seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i + seed) & 0xff);
    }
    return v;
  }

  sim::Cluster cluster_;
};

TEST_F(UvmSpaceTest, WriteReadRoundTrip) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(20 << 10);
  ASSERT_TRUE(r.ok());
  const auto blob = Blob(20 << 10, 1);
  ASSERT_TRUE(space.DeviceWrite(*r, 0, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(space.DeviceRead(*r, 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, blob);
}

TEST_F(UvmSpaceTest, PartialOffsetsWork) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(32 << 10);
  ASSERT_TRUE(r.ok());
  const auto blob = Blob(4 << 10, 2);
  ASSERT_TRUE(space.DeviceWrite(*r, 10 << 10, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(space.DeviceRead(*r, 10 << 10, out.data(), out.size()).ok());
  EXPECT_EQ(out, blob);
}

TEST_F(UvmSpaceTest, BoundsAndArgumentChecks) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(8 << 10);
  ASSERT_TRUE(r.ok());
  std::byte b{};
  EXPECT_FALSE(space.DeviceWrite(*r, 8 << 10, &b, 1).ok());  // past end
  EXPECT_FALSE(space.DeviceRead(*r, 0, nullptr, 1).ok());
  EXPECT_FALSE(space.DeviceRead(999, 0, &b, 1).ok());  // unknown region
  EXPECT_FALSE(space.CreateRegion(0).ok());
}

TEST_F(UvmSpaceTest, ResidencyTrackedAndCapacityEnforced) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto a = space.CreateRegion(32 << 10);  // 4 pages
  auto b = space.CreateRegion(48 << 10);  // 6 pages
  ASSERT_TRUE(a.ok() && b.ok());
  const auto blob_a = Blob(32 << 10, 1);
  const auto blob_b = Blob(48 << 10, 2);
  ASSERT_TRUE(space.DeviceWrite(*a, 0, blob_a.data(), blob_a.size()).ok());
  EXPECT_TRUE(space.FullyResident(*a));
  ASSERT_TRUE(space.DeviceWrite(*b, 0, blob_b.data(), blob_b.size()).ok());
  // 4 + 6 pages > 8-page cache: region a must have lost pages (LRU).
  EXPECT_FALSE(space.FullyResident(*a));
  EXPECT_LE(space.device_bytes_used(), SmallCache().device_cache_bytes);
  EXPECT_GT(space.stats().pages_evicted, 0u);
  // Data still correct after eviction (host backing is the truth).
  std::vector<std::byte> out(blob_a.size());
  ASSERT_TRUE(space.DeviceRead(*a, 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, blob_a);
}

TEST_F(UvmSpaceTest, FaultsCountedOnNonResidentReads) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(16 << 10);
  ASSERT_TRUE(r.ok());
  const auto blob = Blob(16 << 10, 3);
  ASSERT_TRUE(space.DeviceWrite(*r, 0, blob.data(), blob.size()).ok());
  ASSERT_TRUE(space.EvictRegion(*r).ok());
  const auto faults_before = space.stats().faults;
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(space.DeviceRead(*r, 0, out.data(), out.size()).ok());
  EXPECT_GT(space.stats().faults, faults_before);
  EXPECT_GT(space.stats().pages_migrated_in, 0u);
}

TEST_F(UvmSpaceTest, PrefetchAvoidsFaultReplay) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(16 << 10);
  ASSERT_TRUE(r.ok());
  const auto blob = Blob(16 << 10, 4);
  ASSERT_TRUE(space.DeviceWrite(*r, 0, blob.data(), blob.size()).ok());
  ASSERT_TRUE(space.EvictRegion(*r).ok());
  const auto faults_before = space.stats().faults;
  ASSERT_TRUE(space.PrefetchToDevice(*r).ok());
  EXPECT_EQ(space.stats().faults, faults_before);  // bulk, not replayed
  EXPECT_TRUE(space.FullyResident(*r));
  EXPECT_GT(space.stats().prefetched_pages, 0u);
}

TEST_F(UvmSpaceTest, DirtyEvictionPaysWritebackCleanDoesNot) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(16 << 10);
  ASSERT_TRUE(r.ok());
  const auto blob = Blob(16 << 10, 5);
  ASSERT_TRUE(space.DeviceWrite(*r, 0, blob.data(), blob.size()).ok());
  // Dirty pages: eviction pays migrate-before-evict writeback.
  ASSERT_TRUE(space.EvictRegion(*r).ok());
  const auto wb_dirty = space.stats().pages_written_back;
  EXPECT_GT(wb_dirty, 0u);
  // Re-fault in cleanly, advise host, evict: no further writebacks.
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(space.DeviceRead(*r, 0, out.data(), out.size()).ok());
  ASSERT_TRUE(space.Advise(*r, Advice::kPreferredLocationHost).ok());
  ASSERT_TRUE(space.EvictRegion(*r).ok());
  EXPECT_EQ(space.stats().pages_written_back, wb_dirty);
}

TEST_F(UvmSpaceTest, PreferredHostPagesEvictFirst) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto hot = space.CreateRegion(24 << 10);   // 3 pages
  auto cold = space.CreateRegion(24 << 10);  // 3 pages
  ASSERT_TRUE(hot.ok() && cold.ok());
  const auto blob = Blob(24 << 10, 6);
  // cold is written first (would be LRU-oldest anyway), then hot.
  ASSERT_TRUE(space.DeviceWrite(*cold, 0, blob.data(), blob.size()).ok());
  ASSERT_TRUE(space.DeviceWrite(*hot, 0, blob.data(), blob.size()).ok());
  // Re-touch cold so it is LRU-newest, then advise it host-preferred:
  // the advice must demote it ahead of hot.
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(space.DeviceRead(*cold, 0, out.data(), out.size()).ok());
  ASSERT_TRUE(space.Advise(*cold, Advice::kPreferredLocationHost).ok());
  auto third = space.CreateRegion(24 << 10);
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(space.DeviceWrite(*third, 0, blob.data(), blob.size()).ok());
  EXPECT_TRUE(space.FullyResident(*hot));
  EXPECT_FALSE(space.FullyResident(*cold));
}

TEST_F(UvmSpaceTest, FreeRegionReleasesDeviceBytes) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(16 << 10);
  ASSERT_TRUE(r.ok());
  const auto blob = Blob(16 << 10, 7);
  ASSERT_TRUE(space.DeviceWrite(*r, 0, blob.data(), blob.size()).ok());
  EXPECT_GT(space.device_bytes_used(), 0u);
  ASSERT_TRUE(space.FreeRegion(*r).ok());
  EXPECT_EQ(space.device_bytes_used(), 0u);
  EXPECT_EQ(space.RegionSize(*r), 0u);
  EXPECT_FALSE(space.FreeRegion(*r).ok());
}

TEST_F(UvmSpaceTest, HostReadSeesBackingTruth) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(8 << 10);
  ASSERT_TRUE(r.ok());
  const auto blob = Blob(8 << 10, 8);
  ASSERT_TRUE(space.DeviceWrite(*r, 0, blob.data(), blob.size()).ok());
  ASSERT_TRUE(space.EvictRegion(*r).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(space.HostRead(*r, 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, blob);
}

TEST_F(UvmSpaceTest, RegionLargerThanCacheStillWorks) {
  UvmSpace space(cluster_, 0, SmallCache());
  auto r = space.CreateRegion(128 << 10);  // 16 pages > 8-page cache
  ASSERT_TRUE(r.ok());
  const auto blob = Blob(128 << 10, 9);
  ASSERT_TRUE(space.DeviceWrite(*r, 0, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(space.DeviceRead(*r, 0, out.data(), out.size()).ok());
  EXPECT_EQ(out, blob);
  EXPECT_FALSE(space.FullyResident(*r));
}

}  // namespace
}  // namespace ckpt::uvm
