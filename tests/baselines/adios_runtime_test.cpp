#include "baselines/adios/adios_runtime.hpp"

#include <gtest/gtest.h>

#include "rtm/workload.hpp"
#include "storage/mem_store.hpp"

namespace ckpt::adios {
namespace {

using rtm::CheckPattern;
using rtm::FillPattern;

class AdiosRuntimeTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kCkptSize = 64 << 10;

  void Build(AdiosOptions opts, int ranks = 1) {
    runtime_.reset();
    cluster_ = std::make_unique<sim::Cluster>(sim::TopologyConfig::Testing());
    ssd_ = std::make_shared<storage::MemStore>();
    runtime_ =
        std::make_unique<AdiosRuntime>(*cluster_, ssd_, nullptr, opts, ranks);
  }

  AdiosOptions Small() {
    AdiosOptions opts;
    opts.host_buffer_bytes = 4 * kCkptSize;
    opts.bounce_bytes = kCkptSize;
    return opts;
  }

  void WriteCkpt(sim::Rank rank, core::Version v, std::uint64_t size = kCkptSize) {
    auto buf = cluster_->device(rank).Allocate(size);
    ASSERT_TRUE(buf.ok());
    FillPattern(rank, v, *buf, size);
    ASSERT_TRUE(runtime_->Checkpoint(rank, v, *buf, size).ok());
    ASSERT_TRUE(cluster_->device(rank).Free(*buf).ok());
  }

  void RestoreAndVerify(sim::Rank rank, core::Version v,
                        std::uint64_t size = kCkptSize) {
    auto buf = cluster_->device(rank).Allocate(size);
    ASSERT_TRUE(buf.ok());
    auto st = runtime_->Restore(rank, v, *buf, size);
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_TRUE(CheckPattern(rank, v, *buf, size));
    ASSERT_TRUE(cluster_->device(rank).Free(*buf).ok());
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::shared_ptr<storage::MemStore> ssd_;
  std::unique_ptr<AdiosRuntime> runtime_;
};

TEST_F(AdiosRuntimeTest, RoundTripThroughBufferOrFile) {
  Build(Small());
  WriteCkpt(0, 0);
  RestoreAndVerify(0, 0);
}

TEST_F(AdiosRuntimeTest, DrainReachesSsd) {
  Build(Small());
  for (core::Version v = 0; v < 3; ++v) WriteCkpt(0, v);
  ASSERT_TRUE(runtime_->WaitForFlushes(0).ok());
  EXPECT_EQ(ssd_->Keys().size(), 3u);
  EXPECT_EQ(runtime_->metrics(0).flushes_completed, 3u);
}

TEST_F(AdiosRuntimeTest, PoolPressureBlocksThenProceeds) {
  // Pool of 4 checkpoints; write 12: puts must block on buffer-full and
  // drain, never fail, and everything lands on the SSD.
  Build(Small());
  for (core::Version v = 0; v < 12; ++v) WriteCkpt(0, v);
  ASSERT_TRUE(runtime_->WaitForFlushes(0).ok());
  EXPECT_EQ(ssd_->Keys().size(), 12u);
  for (int v = 11; v >= 0; --v) RestoreAndVerify(0, static_cast<core::Version>(v));
}

TEST_F(AdiosRuntimeTest, OversizePoolObjectWritesThrough) {
  Build(Small());
  const std::uint64_t big = 8 * kCkptSize;  // > pool
  WriteCkpt(0, 0, big);
  EXPECT_TRUE(ssd_->Exists({0, 0}));
  RestoreAndVerify(0, 0, big);
}

TEST_F(AdiosRuntimeTest, HintsAreAcceptedAndIgnored) {
  Build(Small());
  EXPECT_TRUE(runtime_->PrefetchEnqueue(0, 5).ok());
  EXPECT_TRUE(runtime_->PrefetchStart(0).ok());
  WriteCkpt(0, 5);
  RestoreAndVerify(0, 5);
  EXPECT_EQ(runtime_->metrics(0).prefetch_promotions, 0u);
}

TEST_F(AdiosRuntimeTest, DuplicateAndUnknown) {
  Build(Small());
  WriteCkpt(0, 1);
  auto buf = cluster_->device(0).Allocate(kCkptSize);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(runtime_->Checkpoint(0, 1, *buf, kCkptSize).code(),
            util::ErrorCode::kAlreadyExists);
  EXPECT_EQ(runtime_->Restore(0, 42, *buf, kCkptSize).code(),
            util::ErrorCode::kNotFound);
  EXPECT_EQ(runtime_->Restore(0, 1, *buf, 10).code(),
            util::ErrorCode::kInvalidArgument);
  ASSERT_TRUE(cluster_->device(0).Free(*buf).ok());
}

TEST_F(AdiosRuntimeTest, RecoverSizeAndRestartFromStore) {
  Build(Small());
  WriteCkpt(0, 3);
  ASSERT_TRUE(runtime_->WaitForFlushes(0).ok());
  EXPECT_EQ(*runtime_->RecoverSize(0, 3), kCkptSize);
  runtime_ = std::make_unique<AdiosRuntime>(*cluster_, ssd_, nullptr, Small(), 1);
  EXPECT_EQ(*runtime_->RecoverSize(0, 3), kCkptSize);
  RestoreAndVerify(0, 3);
  EXPECT_EQ(runtime_->metrics(0).restores_from_store, 1u);
}

TEST_F(AdiosRuntimeTest, RestoreFromBufferCountsAsHostHit) {
  AdiosOptions opts = Small();
  opts.host_buffer_bytes = 64 * kCkptSize;  // keep everything buffered
  Build(opts);
  WriteCkpt(0, 0);
  RestoreAndVerify(0, 0);
  const auto& m = runtime_->metrics(0);
  EXPECT_EQ(m.restores_from_host + m.restores_from_store, 1u);
}

TEST_F(AdiosRuntimeTest, MultiRankConcurrent) {
  Build(Small(), 2);
  std::jthread t0([&] {
    for (core::Version v = 0; v < 8; ++v) WriteCkpt(0, v);
    for (core::Version v = 0; v < 8; ++v) RestoreAndVerify(0, v);
  });
  std::jthread t1([&] {
    for (core::Version v = 0; v < 8; ++v) WriteCkpt(1, v);
    for (core::Version v = 0; v < 8; ++v) RestoreAndVerify(1, v);
  });
}

}  // namespace
}  // namespace ckpt::adios
