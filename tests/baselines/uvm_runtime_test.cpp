#include "baselines/uvm/uvm_runtime.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "rtm/workload.hpp"
#include "storage/mem_store.hpp"

namespace ckpt::uvm {
namespace {

using rtm::CheckPattern;
using rtm::FillPattern;

class UvmRuntimeTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kCkptSize = 64 << 10;

  void Build(UvmRuntimeOptions opts, int ranks = 1) {
    runtime_.reset();
    cluster_ = std::make_unique<sim::Cluster>(sim::TopologyConfig::Testing());
    ssd_ = std::make_shared<storage::MemStore>();
    runtime_ = std::make_unique<UvmRuntime>(*cluster_, ssd_, nullptr, opts, ranks);
  }

  UvmRuntimeOptions Small() {
    UvmRuntimeOptions opts;
    opts.uvm.device_cache_bytes = 4 * kCkptSize;
    opts.uvm.page_size = 8 << 10;
    opts.uvm.fault_latency_ns = 0;
    return opts;
  }

  void WriteCkpt(sim::Rank rank, core::Version v) {
    auto buf = cluster_->device(rank).Allocate(kCkptSize);
    ASSERT_TRUE(buf.ok());
    FillPattern(rank, v, *buf, kCkptSize);
    ASSERT_TRUE(runtime_->Checkpoint(rank, v, *buf, kCkptSize).ok());
    ASSERT_TRUE(cluster_->device(rank).Free(*buf).ok());
  }

  void RestoreAndVerify(sim::Rank rank, core::Version v) {
    auto buf = cluster_->device(rank).Allocate(kCkptSize);
    ASSERT_TRUE(buf.ok());
    auto st = runtime_->Restore(rank, v, *buf, kCkptSize);
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_TRUE(CheckPattern(rank, v, *buf, kCkptSize));
    ASSERT_TRUE(cluster_->device(rank).Free(*buf).ok());
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::shared_ptr<storage::MemStore> ssd_;
  std::unique_ptr<UvmRuntime> runtime_;
};

TEST_F(UvmRuntimeTest, RoundTripManagedMemory) {
  Build(Small());
  WriteCkpt(0, 0);
  RestoreAndVerify(0, 0);
}

TEST_F(UvmRuntimeTest, HistoryBeyondDeviceCache) {
  Build(Small());
  for (core::Version v = 0; v < 16; ++v) WriteCkpt(0, v);
  for (int v = 15; v >= 0; --v) RestoreAndVerify(0, static_cast<core::Version>(v));
  const auto stats = runtime_->uvm_stats(0);
  EXPECT_GT(stats.pages_evicted, 0u);  // device cache churned
}

TEST_F(UvmRuntimeTest, FlushesReachSsd) {
  Build(Small());
  for (core::Version v = 0; v < 4; ++v) WriteCkpt(0, v);
  ASSERT_TRUE(runtime_->WaitForFlushes(0).ok());
  EXPECT_EQ(ssd_->Keys().size(), 4u);
  EXPECT_EQ(runtime_->metrics(0).flushes_completed, 4u);
}

TEST_F(UvmRuntimeTest, DuplicateAndUnknownVersions) {
  Build(Small());
  WriteCkpt(0, 1);
  auto buf = cluster_->device(0).Allocate(kCkptSize);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(runtime_->Checkpoint(0, 1, *buf, kCkptSize).code(),
            util::ErrorCode::kAlreadyExists);
  EXPECT_EQ(runtime_->Restore(0, 99, *buf, kCkptSize).code(),
            util::ErrorCode::kNotFound);
  ASSERT_TRUE(cluster_->device(0).Free(*buf).ok());
}

TEST_F(UvmRuntimeTest, PrefetchHintsPromoteRegions) {
  Build(Small());
  constexpr int kN = 8;
  for (core::Version v = 0; v < kN; ++v) WriteCkpt(0, v);
  ASSERT_TRUE(runtime_->WaitForFlushes(0).ok());
  for (core::Version v = 0; v < kN; ++v) {
    ASSERT_TRUE(runtime_->PrefetchEnqueue(0, v).ok());
  }
  ASSERT_TRUE(runtime_->PrefetchStart(0).ok());
  for (core::Version v = 0; v < kN; ++v) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    RestoreAndVerify(0, v);
  }
  EXPECT_GT(runtime_->metrics(0).prefetch_promotions, 0u);
  EXPECT_GT(runtime_->uvm_stats(0).prefetched_pages, 0u);
}

TEST_F(UvmRuntimeTest, RecoverSizeFromRecordsAndStore) {
  Build(Small());
  WriteCkpt(0, 0);
  auto s = runtime_->RecoverSize(0, 0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, kCkptSize);
  EXPECT_FALSE(runtime_->RecoverSize(0, 9).ok());
}

TEST_F(UvmRuntimeTest, RestartFromStoreAfterRebuild) {
  Build(Small());
  WriteCkpt(0, 0);
  ASSERT_TRUE(runtime_->WaitForFlushes(0).ok());
  runtime_ = std::make_unique<UvmRuntime>(*cluster_, ssd_, nullptr, Small(), 1);
  RestoreAndVerify(0, 0);
  EXPECT_GT(runtime_->metrics(0).bytes_restored, 0u);
}

TEST_F(UvmRuntimeTest, DiscardAfterRestoreSkipsFlush) {
  auto opts = Small();
  opts.discard_after_restore = true;
  Build(opts);
  WriteCkpt(0, 0);
  RestoreAndVerify(0, 0);
  ASSERT_TRUE(runtime_->WaitForFlushes(0).ok());
  const auto& m = runtime_->metrics(0);
  EXPECT_EQ(m.flushes_cancelled + m.flushes_completed, 1u);
}

TEST_F(UvmRuntimeTest, MultiRankIsolation) {
  Build(Small(), 2);
  WriteCkpt(0, 0);
  WriteCkpt(1, 0);
  RestoreAndVerify(1, 0);  // patterns differ per rank; cross-talk would fail
  RestoreAndVerify(0, 0);
}

TEST_F(UvmRuntimeTest, MetricsPopulated) {
  Build(Small());
  WriteCkpt(0, 0);
  RestoreAndVerify(0, 0);
  const auto& m = runtime_->metrics(0);
  EXPECT_EQ(m.ckpt_block_s.size(), 1u);
  EXPECT_EQ(m.restore_block_s.size(), 1u);
  EXPECT_EQ(m.bytes_checkpointed, kCkptSize);
  EXPECT_EQ(m.restore_series.size(), 1u);
}

}  // namespace
}  // namespace ckpt::uvm
