// Tests of the C API shim, including the Listing-1 flow written exactly as
// a C client would write it.
#include "api/veloc_c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/trace.hpp"

namespace {

/// The C API owns one process-global runtime; serialize tests around it.
class VelocCApiTest : public ::testing::Test {
 protected:
  void TearDown() override { VELOCX_Finalize(); }
};

TEST_F(VelocCApiTest, InitFinalizeLifecycle) {
  ASSERT_EQ(VELOCX_Init("gpu_cache = 512Ki, host_cache = 2Mi", 1),
            VELOCX_SUCCESS);
  EXPECT_EQ(VELOCX_Init(nullptr, 1), VELOCX_EINVAL);  // double init
  EXPECT_EQ(VELOCX_Finalize(), VELOCX_SUCCESS);
  EXPECT_EQ(VELOCX_Finalize(), VELOCX_SUCCESS);  // idempotent
}

TEST_F(VelocCApiTest, RejectsBadConfigAndArgs) {
  EXPECT_EQ(VELOCX_Init("eviction = quantum", 1), VELOCX_EINVAL);
  EXPECT_NE(VELOCX_Error_string()[0], '\0');
  EXPECT_EQ(VELOCX_Init(nullptr, 0), VELOCX_EINVAL);
  EXPECT_EQ(VELOCX_Init("not a config line", 1), VELOCX_EINVAL);
  // Calls before init:
  EXPECT_EQ(VELOCX_Checkpoint_wait(0), VELOCX_EINVAL);
  void* p = nullptr;
  EXPECT_EQ(VELOCX_Device_alloc(0, 128, &p), VELOCX_ESHUTDOWN);
}

TEST_F(VelocCApiTest, Listing1EndToEnd) {
  ASSERT_EQ(VELOCX_Init("gpu_cache = 256Ki, host_cache = 1Mi", 1),
            VELOCX_SUCCESS);
  enum { kNumCkpts = 12, kSize = 32 << 10 };
  void* ptr = nullptr;
  ASSERT_EQ(VELOCX_Device_alloc(0, kSize, &ptr), VELOCX_SUCCESS);

  for (int ver = kNumCkpts - 1; ver >= 0; --ver) {
    ASSERT_EQ(VELOCX_Prefetch_enqueue(0, (uint64_t)ver), VELOCX_SUCCESS);
  }
  ASSERT_EQ(VELOCX_Mem_protect(0, 1, ptr, kSize), VELOCX_SUCCESS);
  for (int ver = 0; ver < kNumCkpts; ++ver) {
    std::memset(ptr, ver + 1, kSize);  /* "compute" */
    ASSERT_EQ(VELOCX_Checkpoint(0, "shot", (uint64_t)ver), VELOCX_SUCCESS);
  }
  ASSERT_EQ(VELOCX_Prefetch_start(0), VELOCX_SUCCESS);
  for (int ver = kNumCkpts - 1; ver >= 0; --ver) {
    size_t size = 0;
    ASSERT_EQ(VELOCX_Recover_size(0, (uint64_t)ver, 1, &size), VELOCX_SUCCESS);
    ASSERT_EQ(size, (size_t)kSize);
    ASSERT_EQ(VELOCX_Mem_protect(0, 1, ptr, size), VELOCX_SUCCESS);
    ASSERT_EQ(VELOCX_Restart(0, (uint64_t)ver), VELOCX_SUCCESS);
    EXPECT_EQ(std::memcmp(ptr, std::vector<char>(kSize, ver + 1).data(), kSize),
              0);
  }
  ASSERT_EQ(VELOCX_Device_free(0, ptr), VELOCX_SUCCESS);
}

TEST_F(VelocCApiTest, ErrorCodesMapped) {
  ASSERT_EQ(VELOCX_Init(nullptr, 1), VELOCX_SUCCESS);
  void* ptr = nullptr;
  ASSERT_EQ(VELOCX_Device_alloc(0, 4096, &ptr), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Mem_protect(0, 1, ptr, 4096), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Checkpoint(0, "x", 5), VELOCX_SUCCESS);
  EXPECT_EQ(VELOCX_Checkpoint(0, "x", 5), VELOCX_EEXIST);
  EXPECT_EQ(VELOCX_Restart(0, 42), VELOCX_ENOTFOUND);
  size_t size = 0;
  EXPECT_EQ(VELOCX_Recover_size(0, 42, 1, &size), VELOCX_ENOTFOUND);
  EXPECT_EQ(VELOCX_Mem_protect(0, 1, nullptr, 10), VELOCX_EINVAL);
  EXPECT_EQ(VELOCX_Mem_unprotect(0, 99), VELOCX_ENOTFOUND);
  EXPECT_EQ(VELOCX_Checkpoint(3, "x", 0), VELOCX_EINVAL);  // bad rank
  ASSERT_EQ(VELOCX_Device_free(0, ptr), VELOCX_SUCCESS);
}

TEST_F(VelocCApiTest, MultiRankAndWait) {
  ASSERT_EQ(VELOCX_Init("gpu_cache = 256Ki, host_cache = 1Mi", 2),
            VELOCX_SUCCESS);
  for (int r = 0; r < 2; ++r) {
    void* ptr = nullptr;
    ASSERT_EQ(VELOCX_Device_alloc(r, 8192, &ptr), VELOCX_SUCCESS);
    ASSERT_EQ(VELOCX_Mem_protect(r, 1, ptr, 8192), VELOCX_SUCCESS);
    std::memset(ptr, 0x40 + r, 8192);
    ASSERT_EQ(VELOCX_Checkpoint(r, "mr", 0), VELOCX_SUCCESS);
    ASSERT_EQ(VELOCX_Checkpoint_wait(r), VELOCX_SUCCESS);
    ASSERT_EQ(VELOCX_Restart(r, 0), VELOCX_SUCCESS);
    EXPECT_EQ(static_cast<unsigned char*>(ptr)[100], 0x40 + r);
    ASSERT_EQ(VELOCX_Device_free(r, ptr), VELOCX_SUCCESS);
  }
}

TEST_F(VelocCApiTest, TiersConfigBuildsCustomStack) {
  // Host-only 3-tier stack via the "tiers" key (';' separates entries
  // inside a config value).
  ASSERT_EQ(VELOCX_Init("tiers = host:cache:1Mi;ssd:durable;pfs:durable, "
                        "terminal_tier = pfs",
                        1),
            VELOCX_SUCCESS);
  void* ptr = nullptr;
  ASSERT_EQ(VELOCX_Device_alloc(0, 8192, &ptr), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Mem_protect(0, 1, ptr, 8192), VELOCX_SUCCESS);
  std::memset(ptr, 0x5a, 8192);
  ASSERT_EQ(VELOCX_Checkpoint(0, "nt", 0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Checkpoint_wait(0), VELOCX_SUCCESS);
  std::memset(ptr, 0, 8192);
  ASSERT_EQ(VELOCX_Restart(0, 0), VELOCX_SUCCESS);
  EXPECT_EQ(static_cast<unsigned char*>(ptr)[4096], 0x5a);
  ASSERT_EQ(VELOCX_Device_free(0, ptr), VELOCX_SUCCESS);
}

TEST_F(VelocCApiTest, TiersConfigAcceptsPerTierPolicies) {
  // Mixed-policy stack through the C API: gpu=score, host=fifo, and the
  // legacy global "eviction" key only sets the default for silent tiers.
  ASSERT_EQ(
      VELOCX_Init("tiers = gpu:gpucache:256Ki:score;host:cache:1Mi:fifo;"
                  "ssd:durable, eviction = lru",
                  1),
      VELOCX_SUCCESS);
  void* ptr = nullptr;
  ASSERT_EQ(VELOCX_Device_alloc(0, 8192, &ptr), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Mem_protect(0, 1, ptr, 8192), VELOCX_SUCCESS);
  std::memset(ptr, 0x33, 8192);
  ASSERT_EQ(VELOCX_Checkpoint(0, "pp", 0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Checkpoint_wait(0), VELOCX_SUCCESS);
  std::memset(ptr, 0, 8192);
  ASSERT_EQ(VELOCX_Restart(0, 0), VELOCX_SUCCESS);
  EXPECT_EQ(static_cast<unsigned char*>(ptr)[1024], 0x33);
  ASSERT_EQ(VELOCX_Device_free(0, ptr), VELOCX_SUCCESS);
}

TEST_F(VelocCApiTest, InvalidTiersConfigIsRejectedAtInit) {
  EXPECT_EQ(VELOCX_Init("tiers = host:cache:0;ssd:durable", 1), VELOCX_EINVAL);
  // Unknown per-tier policy names fail Init, like every stack violation.
  EXPECT_EQ(VELOCX_Init("tiers = host:cache:1Mi:belady;ssd:durable", 1),
            VELOCX_EINVAL);
  EXPECT_EQ(VELOCX_Init("tiers = host:cache:1Mi", 1), VELOCX_EINVAL);
  EXPECT_EQ(VELOCX_Init("tiers = host:cache:1Mi;ssd:durable, "
                        "terminal_tier = tape",
                        1),
            VELOCX_EINVAL);
  // A failed Init must leave the runtime un-initialized, not half-built.
  EXPECT_EQ(VELOCX_Checkpoint(0, "x", 0), VELOCX_EINVAL);
  ASSERT_EQ(VELOCX_Init("tiers = host:cache:1Mi;ssd:durable", 1),
            VELOCX_SUCCESS);
}

TEST_F(VelocCApiTest, MetricsSnapshotJsonWritesParseableFile) {
  ASSERT_EQ(VELOCX_Init("gpu_cache = 256Ki, host_cache = 1Mi", 1),
            VELOCX_SUCCESS);
  // Argument validation first: bad path / missing runtime.
  EXPECT_EQ(VELOCX_Metrics_snapshot_json(nullptr), VELOCX_EINVAL);
  EXPECT_EQ(VELOCX_Metrics_snapshot_json(""), VELOCX_EINVAL);

  void* ptr = nullptr;
  ASSERT_EQ(VELOCX_Device_alloc(0, 8192, &ptr), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Mem_protect(0, 1, ptr, 8192), VELOCX_SUCCESS);
  std::memset(ptr, 0x11, 8192);
  ASSERT_EQ(VELOCX_Checkpoint(0, "obs", 0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Checkpoint_wait(0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Restart(0, 0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Device_free(0, ptr), VELOCX_SUCCESS);

  const std::string path = ::testing::TempDir() + "velocx_metrics.json";
  ASSERT_EQ(VELOCX_Metrics_snapshot_json(path.c_str()), VELOCX_SUCCESS);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  // Cheap structural checks without dragging the parser into the C tests.
  EXPECT_NE(json.find("\"tiers\""), std::string::npos);
  EXPECT_NE(json.find("\"merged\""), std::string::npos);
  EXPECT_NE(json.find("\"restore_series\""), std::string::npos);

  ASSERT_EQ(VELOCX_Finalize(), VELOCX_SUCCESS);
  EXPECT_EQ(VELOCX_Metrics_snapshot_json(path.c_str()), VELOCX_ESHUTDOWN);
}

TEST_F(VelocCApiTest, TraceDumpHonorsConfigKeysAndExplicitPath) {
#ifdef CKPT_TRACE_DISABLED
  GTEST_SKIP() << "built with CKPT_TRACE_DISABLED";
#else
  const std::string path = ::testing::TempDir() + "velocx_trace.json";
  // trace_out configured but dump to an explicit path; trace=true turns
  // the subsystem on for the process.
  const std::string cfg = "gpu_cache = 256Ki, host_cache = 1Mi, trace = true, "
                          "trace_capacity = 4096";
  ASSERT_EQ(VELOCX_Init(cfg.c_str(), 1), VELOCX_SUCCESS);
  void* ptr = nullptr;
  ASSERT_EQ(VELOCX_Device_alloc(0, 8192, &ptr), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Mem_protect(0, 1, ptr, 8192), VELOCX_SUCCESS);
  std::memset(ptr, 0x22, 8192);
  ASSERT_EQ(VELOCX_Checkpoint(0, "tr", 0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Checkpoint_wait(0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Restart(0, 0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Device_free(0, ptr), VELOCX_SUCCESS);

  ASSERT_EQ(VELOCX_Trace_dump(path.c_str()), VELOCX_SUCCESS);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  ASSERT_EQ(VELOCX_Finalize(), VELOCX_SUCCESS);
  // Leave the process-global subsystem off for the remaining tests.
  ckpt::util::trace::Disable();
  ckpt::util::trace::ResetBuffers();
#endif
}

TEST_F(VelocCApiTest, GpudirectConfigWorks) {
  ASSERT_EQ(VELOCX_Init("gpudirect = true, gpu_cache = 256Ki", 1),
            VELOCX_SUCCESS);
  void* ptr = nullptr;
  ASSERT_EQ(VELOCX_Device_alloc(0, 4096, &ptr), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Mem_protect(0, 1, ptr, 4096), VELOCX_SUCCESS);
  std::memset(ptr, 0x7e, 4096);
  ASSERT_EQ(VELOCX_Checkpoint(0, "gds", 0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Checkpoint_wait(0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Restart(0, 0), VELOCX_SUCCESS);
  EXPECT_EQ(static_cast<unsigned char*>(ptr)[0], 0x7e);
  ASSERT_EQ(VELOCX_Device_free(0, ptr), VELOCX_SUCCESS);
}

TEST_F(VelocCApiTest, TenantsConfigSplitsRanksAndResolvesByName) {
  ASSERT_EQ(VELOCX_Init("gpu_cache = 256Ki, host_cache = 1Mi, "
                        "tenants = jobA:1Mi;jobB:512Ki:0.5",
                        2),
            VELOCX_SUCCESS);
  int a = -1;
  int b = -1;
  ASSERT_EQ(VELOCX_Tenant_open("jobA", &a), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Tenant_open("jobB", &b), VELOCX_SUCCESS);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(VELOCX_Tenant_open("nosuch", &a), VELOCX_ENOTFOUND);
  EXPECT_EQ(VELOCX_Tenant_open(nullptr, &a), VELOCX_EINVAL);

  /* jobB's rank works until its tenant closes; jobA is unaffected. */
  void* pa = nullptr;
  void* pb = nullptr;
  ASSERT_EQ(VELOCX_Device_alloc(0, 4096, &pa), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Device_alloc(1, 4096, &pb), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Mem_protect(0, 1, pa, 4096), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Mem_protect(1, 1, pb, 4096), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Checkpoint(1, "b", 0), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Tenant_close(b), VELOCX_SUCCESS);
  EXPECT_NE(VELOCX_Checkpoint(1, "b", 1), VELOCX_SUCCESS);
  EXPECT_EQ(VELOCX_Checkpoint(0, "a", 0), VELOCX_SUCCESS);
  EXPECT_NE(VELOCX_Tenant_close(b), VELOCX_SUCCESS);  /* double close */
  ASSERT_EQ(VELOCX_Device_free(0, pa), VELOCX_SUCCESS);
  ASSERT_EQ(VELOCX_Device_free(1, pb), VELOCX_SUCCESS);
}

TEST_F(VelocCApiTest, InvalidTenantsConfigIsRejectedAtInit) {
  EXPECT_EQ(VELOCX_Init("tenants = solo", 1), VELOCX_EINVAL);
  EXPECT_EQ(VELOCX_Init("tenants = a:1Mi;a:2Mi", 1), VELOCX_EINVAL);
  EXPECT_EQ(VELOCX_Init("tenants = a:1Mi:0", 1), VELOCX_EINVAL);
  /* more tenants than ranks */
  EXPECT_EQ(VELOCX_Init("tenants = a:1Mi;b:1Mi", 1), VELOCX_EINVAL);
  /* tenant calls on a single-tenant engine still resolve the default */
  ASSERT_EQ(VELOCX_Init(nullptr, 1), VELOCX_SUCCESS);
  int id = -1;
  EXPECT_EQ(VELOCX_Tenant_open("default", &id), VELOCX_SUCCESS);
  EXPECT_EQ(id, 0);
}

}  // namespace
