// Tests of the VELOC-style API surface, including the Listing-1 usage
// pattern from the paper (reverse-order replay with prefetch hints).
#include "api/veloc.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rtm/workload.hpp"
#include "storage/mem_store.hpp"

namespace ckpt::api {
namespace {

using rtm::CheckPattern;
using rtm::FillPattern;

class VelocApiTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kSize = 32 << 10;

  void SetUp() override {
    engine_.reset();
    cluster_ = std::make_unique<sim::Cluster>(sim::TopologyConfig::Testing());
    ssd_ = std::make_shared<storage::MemStore>();
    core::EngineOptions opts;
    opts.gpu_cache_bytes = 4 * kSize;
    opts.host_cache_bytes = 16 * kSize;
    engine_ = std::make_unique<core::Engine>(*cluster_, ssd_, nullptr, opts, 1);
    client_ = std::make_unique<VelocClient>(*engine_, *cluster_, 0);
  }

  void TearDown() override {
    client_.reset();
    engine_.reset();
  }

  sim::BytePtr DevAlloc(std::uint64_t n) {
    auto p = cluster_->device(0).Allocate(n);
    EXPECT_TRUE(p.ok());
    return *p;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::shared_ptr<storage::MemStore> ssd_;
  std::unique_ptr<core::Engine> engine_;
  std::unique_ptr<VelocClient> client_;
};

TEST_F(VelocApiTest, SingleRegionRoundTrip) {
  sim::BytePtr buf = DevAlloc(kSize);
  ASSERT_TRUE(client_->MemProtect(1, buf, kSize).ok());
  FillPattern(0, 0, buf, kSize);
  ASSERT_TRUE(client_->Checkpoint("ckpt", 0).ok());
  FillPattern(0, 99, buf, kSize);  // clobber
  ASSERT_TRUE(client_->Restart(0).ok());
  EXPECT_TRUE(CheckPattern(0, 0, buf, kSize));
}

TEST_F(VelocApiTest, Listing1ReverseReplayWithHints) {
  // The exact structure of the paper's Listing 1.
  constexpr int kNumCkpts = 12;
  sim::BytePtr ptr = DevAlloc(kSize);

  for (int ver = kNumCkpts - 1; ver >= 0; --ver) {
    ASSERT_TRUE(client_->PrefetchEnqueue(static_cast<core::Version>(ver)).ok());
  }
  ASSERT_TRUE(client_->MemProtect(1, ptr, kSize).ok());
  for (int ver = 0; ver < kNumCkpts; ++ver) {
    FillPattern(0, static_cast<core::Version>(ver), ptr, kSize);  // "compute"
    ASSERT_TRUE(client_->Checkpoint("shot", static_cast<core::Version>(ver)).ok());
  }
  ASSERT_TRUE(client_->PrefetchStart().ok());
  for (int ver = kNumCkpts - 1; ver >= 0; --ver) {
    auto size = client_->RecoverSize(static_cast<core::Version>(ver), 1);
    ASSERT_TRUE(size.ok());
    ASSERT_TRUE(client_->MemProtect(1, ptr, *size).ok());
    ASSERT_TRUE(client_->Restart(static_cast<core::Version>(ver)).ok());
    EXPECT_TRUE(CheckPattern(0, static_cast<core::Version>(ver), ptr, *size));
  }
}

TEST_F(VelocApiTest, MultiRegionPackAndUnpack) {
  sim::BytePtr a = DevAlloc(8 << 10);
  sim::BytePtr b = DevAlloc(16 << 10);
  ASSERT_TRUE(client_->MemProtect(1, a, 8 << 10).ok());
  ASSERT_TRUE(client_->MemProtect(2, b, 16 << 10).ok());
  FillPattern(0, 1, a, 8 << 10);
  FillPattern(0, 2, b, 16 << 10);
  ASSERT_TRUE(client_->Checkpoint("multi", 0).ok());
  FillPattern(0, 77, a, 8 << 10);
  FillPattern(0, 78, b, 16 << 10);
  ASSERT_TRUE(client_->Restart(0).ok());
  EXPECT_TRUE(CheckPattern(0, 1, a, 8 << 10));
  EXPECT_TRUE(CheckPattern(0, 2, b, 16 << 10));
}

TEST_F(VelocApiTest, RecoverSizePerRegion) {
  sim::BytePtr a = DevAlloc(8 << 10);
  sim::BytePtr b = DevAlloc(16 << 10);
  ASSERT_TRUE(client_->MemProtect(1, a, 8 << 10).ok());
  ASSERT_TRUE(client_->MemProtect(2, b, 16 << 10).ok());
  ASSERT_TRUE(client_->Checkpoint("multi", 0).ok());
  EXPECT_EQ(*client_->RecoverSize(0, 1), 8u << 10);
  EXPECT_EQ(*client_->RecoverSize(0, 2), 16u << 10);
  EXPECT_FALSE(client_->RecoverSize(0, 3).ok());
}

TEST_F(VelocApiTest, ProtectValidation) {
  EXPECT_FALSE(client_->MemProtect(1, nullptr, 10).ok());
  sim::BytePtr buf = DevAlloc(64);
  EXPECT_FALSE(client_->MemProtect(1, buf, 0).ok());
  EXPECT_FALSE(client_->Checkpoint("x", 0).ok());  // nothing protected
  EXPECT_FALSE(client_->Restart(0).ok());
}

TEST_F(VelocApiTest, UnprotectRemovesRegion) {
  sim::BytePtr buf = DevAlloc(kSize);
  ASSERT_TRUE(client_->MemProtect(1, buf, kSize).ok());
  ASSERT_TRUE(client_->MemUnprotect(1).ok());
  EXPECT_FALSE(client_->MemUnprotect(1).ok());
  EXPECT_FALSE(client_->Checkpoint("x", 0).ok());
}

TEST_F(VelocApiTest, ReProtectDifferentSizeAcrossVersions) {
  sim::BytePtr buf = DevAlloc(kSize);
  ASSERT_TRUE(client_->MemProtect(1, buf, 8 << 10).ok());
  FillPattern(0, 0, buf, 8 << 10);
  ASSERT_TRUE(client_->Checkpoint("v", 0).ok());
  ASSERT_TRUE(client_->MemProtect(1, buf, 16 << 10).ok());
  FillPattern(0, 1, buf, 16 << 10);
  ASSERT_TRUE(client_->Checkpoint("v", 1).ok());
  EXPECT_EQ(*client_->RecoverSize(0, 1), 8u << 10);
  EXPECT_EQ(*client_->RecoverSize(1, 1), 16u << 10);
  ASSERT_TRUE(client_->MemProtect(1, buf, 8 << 10).ok());
  ASSERT_TRUE(client_->Restart(0).ok());
  EXPECT_TRUE(CheckPattern(0, 0, buf, 8 << 10));
}

TEST_F(VelocApiTest, WaitForFlushesPersists) {
  sim::BytePtr buf = DevAlloc(kSize);
  ASSERT_TRUE(client_->MemProtect(1, buf, kSize).ok());
  FillPattern(0, 0, buf, kSize);
  ASSERT_TRUE(client_->Checkpoint("w", 0).ok());
  ASSERT_TRUE(client_->WaitForFlushes().ok());
  EXPECT_TRUE(ssd_->Exists({0, 0}));
  EXPECT_GT(client_->metrics().flushes_completed, 0u);
}

}  // namespace
}  // namespace ckpt::api
