#include "compress/compressed_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "storage/checksum_store.hpp"
#include "storage/mem_store.hpp"

namespace ckpt::compress {
namespace {

TEST(CompressedStoreTest, CompressibleRoundTrip) {
  auto inner = std::make_shared<storage::MemStore>();
  CompressedStore store(inner, CodecKind::kRle);
  std::vector<std::byte> zeros(32 << 10, std::byte{0});
  ASSERT_TRUE(store.Put({0, 0}, zeros.data(), zeros.size()).ok());
  EXPECT_EQ(*store.Size({0, 0}), zeros.size());       // logical size
  EXPECT_LT(*inner->Size({0, 0}), zeros.size() / 20); // stored size shrank
  std::vector<std::byte> out(zeros.size());
  ASSERT_TRUE(store.Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(out, zeros);
  EXPECT_EQ(store.logical_bytes(), zeros.size());
  EXPECT_LT(store.stored_bytes(), zeros.size());
}

TEST(CompressedStoreTest, IncompressibleStoredRawNeverExpands) {
  auto inner = std::make_shared<storage::MemStore>();
  CompressedStore store(inner, CodecKind::kDeltaRle);
  std::mt19937_64 rng(11);
  std::vector<std::byte> noise(16 << 10);
  for (auto& b : noise) b = static_cast<std::byte>(rng());
  ASSERT_TRUE(store.Put({0, 1}, noise.data(), noise.size()).ok());
  EXPECT_LE(*inner->Size({0, 1}),
            noise.size() + CompressedStore::kHeaderBytes);
  std::vector<std::byte> out(noise.size());
  ASSERT_TRUE(store.Get({0, 1}, out.data(), out.size()).ok());
  EXPECT_EQ(out, noise);
}

TEST(CompressedStoreTest, BufferTooSmallRejected) {
  auto inner = std::make_shared<storage::MemStore>();
  CompressedStore store(inner, CodecKind::kRle);
  std::vector<std::byte> data(1024, std::byte{5});
  ASSERT_TRUE(store.Put({0, 0}, data.data(), data.size()).ok());
  std::vector<std::byte> out(100);
  EXPECT_EQ(store.Get({0, 0}, out.data(), out.size()).code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(CompressedStoreTest, BadHeaderRejected) {
  auto inner = std::make_shared<storage::MemStore>();
  CompressedStore store(inner, CodecKind::kRle);
  std::vector<std::byte> junk(64, std::byte{0x42});
  ASSERT_TRUE(inner->Put({7, 7}, junk.data(), junk.size()).ok());
  std::vector<std::byte> out(junk.size());
  EXPECT_EQ(store.Get({7, 7}, out.data(), out.size()).code(),
            util::ErrorCode::kIoError);
}

TEST(CompressedStoreTest, ComposesWithChecksumStore) {
  // Compression over checksumming: corrupting the inner bytes must be
  // caught by the CRC before the codec ever sees them.
  auto mem = std::make_shared<storage::MemStore>();
  auto checksummed = std::make_shared<storage::ChecksumStore>(mem);
  CompressedStore store(checksummed, CodecKind::kDeltaRle);
  std::vector<std::byte> data(8 << 10, std::byte{3});
  ASSERT_TRUE(store.Put({0, 0}, data.data(), data.size()).ok());
  std::vector<std::byte> out(data.size());
  ASSERT_TRUE(store.Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);

  std::vector<std::byte> framed(*mem->Size({0, 0}));
  ASSERT_TRUE(mem->Get({0, 0}, framed.data(), framed.size()).ok());
  framed[5] ^= std::byte{1};
  ASSERT_TRUE(mem->Put({0, 0}, framed.data(), framed.size()).ok());
  EXPECT_EQ(store.Get({0, 0}, out.data(), out.size()).code(),
            util::ErrorCode::kIoError);
}

TEST(CompressedStoreTest, MetadataDelegation) {
  auto inner = std::make_shared<storage::MemStore>();
  CompressedStore store(inner, CodecKind::kRle);
  std::vector<std::byte> data(512, std::byte{1});
  ASSERT_TRUE(store.Put({2, 3}, data.data(), data.size()).ok());
  EXPECT_TRUE(store.Exists({2, 3}));
  EXPECT_EQ(store.Keys().size(), 1u);
  ASSERT_TRUE(store.Erase({2, 3}).ok());
  EXPECT_FALSE(store.Exists({2, 3}));
  EXPECT_FALSE(store.Size({2, 3}).ok());
}

}  // namespace
}  // namespace ckpt::compress
