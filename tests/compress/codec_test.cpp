#include "compress/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

namespace ckpt::compress {
namespace {

std::vector<std::byte> RoundTrip(const Codec& codec,
                                 const std::vector<std::byte>& input,
                                 std::uint64_t* compressed_size = nullptr) {
  std::vector<std::byte> packed(codec.MaxCompressedSize(input.size()));
  auto csize = codec.Compress(input.data(), input.size(), packed.data(),
                              packed.size());
  EXPECT_TRUE(csize.ok()) << csize.status();
  if (compressed_size != nullptr) *compressed_size = *csize;
  std::vector<std::byte> out(input.size());
  auto dsize = codec.Decompress(packed.data(), *csize, out.data(), out.size());
  EXPECT_TRUE(dsize.ok()) << dsize.status();
  EXPECT_EQ(*dsize, input.size());
  return out;
}

class CodecParamTest : public ::testing::TestWithParam<CodecKind> {
 protected:
  std::unique_ptr<Codec> codec_ = MakeCodec(GetParam());
};

TEST_P(CodecParamTest, EmptyInput) {
  std::vector<std::byte> empty;
  std::vector<std::byte> packed(codec_->MaxCompressedSize(0) + 1);
  auto csize = codec_->Compress(empty.data(), 0, packed.data(), packed.size());
  ASSERT_TRUE(csize.ok());
  EXPECT_EQ(*csize, 0u);
  std::byte sink;
  auto dsize = codec_->Decompress(packed.data(), 0, &sink, 1);
  ASSERT_TRUE(dsize.ok());
  EXPECT_EQ(*dsize, 0u);
}

TEST_P(CodecParamTest, ZerosCompressMassively) {
  std::vector<std::byte> zeros(64 << 10, std::byte{0});
  std::uint64_t csize = 0;
  EXPECT_EQ(RoundTrip(*codec_, zeros, &csize), zeros);
  EXPECT_LT(csize, zeros.size() / 30);  // at least the paper's ~30x
}

TEST_P(CodecParamTest, RandomDataRoundTripsWithinBound) {
  std::mt19937_64 rng(2);
  std::vector<std::byte> noise(32 << 10);
  for (auto& b : noise) b = static_cast<std::byte>(rng());
  std::uint64_t csize = 0;
  EXPECT_EQ(RoundTrip(*codec_, noise, &csize), noise);
  EXPECT_LE(csize, codec_->MaxCompressedSize(noise.size()));
}

TEST_P(CodecParamTest, OddLengthsRoundTrip) {
  std::mt19937_64 rng(3);
  for (std::size_t n : {1u, 2u, 7u, 127u, 128u, 129u, 130u, 257u, 1023u}) {
    std::vector<std::byte> buf(n);
    for (auto& b : buf) b = static_cast<std::byte>(rng() % 4);  // runs likely
    EXPECT_EQ(RoundTrip(*codec_, buf), buf) << "n=" << n;
  }
}

TEST_P(CodecParamTest, CompressRejectsTinyOutput) {
  std::vector<std::byte> buf(1024, std::byte{7});
  std::array<std::byte, 1> tiny;
  // Worst-case-sized inputs can't fit one byte of output.
  std::mt19937_64 rng(4);
  for (auto& b : buf) b = static_cast<std::byte>(rng());
  auto csize = codec_->Compress(buf.data(), buf.size(), tiny.data(), tiny.size());
  EXPECT_EQ(csize.status().code(), util::ErrorCode::kCapacityExceeded);
}

TEST_P(CodecParamTest, DecompressRejectsSmallDst) {
  std::vector<std::byte> buf(1024, std::byte{9});
  std::vector<std::byte> packed(codec_->MaxCompressedSize(buf.size()));
  auto csize = codec_->Compress(buf.data(), buf.size(), packed.data(),
                                packed.size());
  ASSERT_TRUE(csize.ok());
  std::vector<std::byte> small(10);
  EXPECT_EQ(codec_->Decompress(packed.data(), *csize, small.data(), small.size())
                .status()
                .code(),
            util::ErrorCode::kCapacityExceeded);
}

TEST_P(CodecParamTest, DecompressRejectsTruncatedInput) {
  std::vector<std::byte> buf(512);
  std::mt19937_64 rng(6);
  for (auto& b : buf) b = static_cast<std::byte>(rng());
  std::vector<std::byte> packed(codec_->MaxCompressedSize(buf.size()));
  auto csize = codec_->Compress(buf.data(), buf.size(), packed.data(),
                                packed.size());
  ASSERT_TRUE(csize.ok());
  std::vector<std::byte> out(buf.size());
  // Chop the stream mid-token; must fail cleanly, not overrun.
  auto dsize = codec_->Decompress(packed.data(), *csize / 2, out.data(),
                                  out.size());
  // Either a clean short decode or an explicit error — never a crash; a
  // short decode must not claim the full size.
  if (dsize.ok()) EXPECT_LT(*dsize, buf.size());
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecParamTest,
                         ::testing::Values(CodecKind::kRle, CodecKind::kDeltaRle),
                         [](const ::testing::TestParamInfo<CodecKind>& info) {
                           std::string n(to_string(info.param));
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(DeltaRleTest, StructuredFieldBeatsPlainRle) {
  // A constant-valued 64-bit field whose byte representation has no runs
  // (every word is the same multi-byte value — e.g. a quiet wavefield at a
  // non-zero ambient level). Plain RLE sees no byte runs at all; the XOR
  // delta collapses every repeated word to zero.
  std::vector<std::byte> field(64 << 10);
  for (std::size_t i = 0; i + 8 <= field.size(); i += 8) {
    const std::uint64_t v = 0x1f2e3d4c5b6a7988ull;
    std::memcpy(field.data() + i, &v, 8);
  }
  auto rle = MakeCodec(CodecKind::kRle);
  auto delta = MakeCodec(CodecKind::kDeltaRle);
  std::uint64_t rle_size = 0, delta_size = 0;
  EXPECT_EQ(RoundTrip(*rle, field, &rle_size), field);
  EXPECT_EQ(RoundTrip(*delta, field, &delta_size), field);
  EXPECT_LT(delta_size, rle_size / 2);
}

TEST(CodecFactoryTest, NamesAndKinds) {
  EXPECT_EQ(MakeCodec(CodecKind::kRle)->name(), "rle");
  EXPECT_EQ(MakeCodec(CodecKind::kDeltaRle)->name(), "delta-rle");
  EXPECT_EQ(to_string(CodecKind::kRle), "rle");
}

}  // namespace
}  // namespace ckpt::compress
