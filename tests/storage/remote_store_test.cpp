#include "storage/remote_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "storage/aggregating_store.hpp"

namespace ckpt::storage {
namespace {

std::vector<std::byte> Blob(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return v;
}

RemoteOptions FastOptions() {
  RemoteOptions o;
  o.bucket = "test";
  o.request_latency = std::chrono::microseconds(0);
  o.part_bytes = 4 << 10;
  return o;
}

TEST(RemoteOptionsTest, ParsesBucketAndDefaults) {
  auto o = RemoteOptions::Parse("s3://ckpts");
  ASSERT_TRUE(o.ok()) << o.status();
  EXPECT_EQ(o->bucket, "ckpts");
  EXPECT_EQ(o->part_bytes, 1u << 20);
  EXPECT_EQ(o->max_inflight, 4);
  EXPECT_EQ(o->request_latency.count(), 200);
  EXPECT_EQ(o->group_members, 0u);
}

TEST(RemoteOptionsTest, ParsesQueryOptions) {
  auto o = RemoteOptions::Parse(
      "s3://b?part=2Mi&inflight=8&lat_us=50&fail=0.25&seed=7&group=16&"
      "group_bytes=8Mi&deadline_ms=10");
  ASSERT_TRUE(o.ok()) << o.status();
  EXPECT_EQ(o->bucket, "b");
  EXPECT_EQ(o->part_bytes, 2u << 20);
  EXPECT_EQ(o->max_inflight, 8);
  EXPECT_EQ(o->request_latency.count(), 50);
  EXPECT_DOUBLE_EQ(o->part_fail_rate, 0.25);
  EXPECT_EQ(o->seed, 7u);
  EXPECT_EQ(o->group_members, 16u);
  EXPECT_EQ(o->group_bytes, 8u << 20);
  EXPECT_EQ(o->group_deadline.count(), 10);
}

TEST(RemoteOptionsTest, RejectsMalformedSpecs) {
  EXPECT_EQ(RemoteOptions::Parse("file=/tmp").status().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(RemoteOptions::Parse("s3://").status().code(),
            util::ErrorCode::kInvalidArgument);  // empty bucket
  EXPECT_EQ(RemoteOptions::Parse("s3://b?bogus=1").status().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(RemoteOptions::Parse("s3://b?fail=2.0").status().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(RemoteOptions::Parse("s3://b?inflight=0").status().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(RemoteOptions::Parse("s3://b?part=").status().code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(RemoteStoreTest, MultipartPutGetRoundTrip) {
  RemoteStore store(FastOptions(), nullptr);
  // 3.5 parts: exercises the partial tail part.
  const auto blob = Blob(14 << 10, 3);
  ASSERT_TRUE(store.Put({0, 1}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(store.Get({0, 1}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
  EXPECT_EQ(*store.Size({0, 1}), blob.size());

  StoreStats st;
  ASSERT_TRUE(store.CollectStats(st));
  EXPECT_EQ(st.remote_puts, 1u);
  EXPECT_EQ(st.remote_parts, 4u);  // ceil(14Ki / 4Ki)
  EXPECT_EQ(st.remote_gets, 1u);
  EXPECT_EQ(st.remote_put_bytes, blob.size());
  EXPECT_EQ(st.remote_get_bytes, blob.size());
}

TEST(RemoteStoreTest, ZeroByteObjectRoundTrips) {
  RemoteStore store(FastOptions(), nullptr);
  ASSERT_TRUE(store.Put({0, 0}, nullptr, 0).ok());
  EXPECT_TRUE(store.Exists({0, 0}));
  EXPECT_EQ(*store.Size({0, 0}), 0u);
  ASSERT_TRUE(store.Get({0, 0}, nullptr, 0).ok());
}

TEST(RemoteStoreTest, GetRangeReadsSlice) {
  RemoteStore store(FastOptions(), nullptr);
  const auto blob = Blob(10 << 10, 5);
  ASSERT_TRUE(store.Put({2, 9}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(1000);
  ASSERT_TRUE(store.GetRange({2, 9}, 4096, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data() + 4096, out.size()), 0);
  // Out-of-bounds range fails without touching dst.
  EXPECT_EQ(store.GetRange({2, 9}, blob.size() - 10, out.data(), 11).code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(store.GetRange({9, 9}, 0, out.data(), 1).code(),
            util::ErrorCode::kNotFound);
}

TEST(RemoteStoreTest, EraseAndMissingKeys) {
  RemoteStore store(FastOptions(), nullptr);
  const auto blob = Blob(128, 1);
  ASSERT_TRUE(store.Put({1, 1}, blob.data(), blob.size()).ok());
  EXPECT_EQ(store.Keys().size(), 1u);
  EXPECT_EQ(store.TotalBytes(), 128u);
  ASSERT_TRUE(store.Erase({1, 1}).ok());
  EXPECT_FALSE(store.Exists({1, 1}));
  EXPECT_EQ(store.Erase({1, 1}).code(), util::ErrorCode::kNotFound);
  std::byte b;
  EXPECT_EQ(store.Get({1, 1}, &b, 1).code(), util::ErrorCode::kNotFound);
  EXPECT_EQ(store.Size({1, 1}).status().code(), util::ErrorCode::kNotFound);
}

TEST(RemoteStoreTest, PartFaultsRetryAndSucceed) {
  RemoteOptions o = FastOptions();
  o.part_fail_rate = 0.5;
  o.seed = 42;
  o.part_retry.max_attempts = 16;  // 0.5^16: a part practically cannot fail
  o.part_retry.initial_backoff = std::chrono::microseconds(1);
  o.part_retry.max_backoff = std::chrono::microseconds(4);
  RemoteStore store(o, nullptr);
  const auto blob = Blob(32 << 10, 7);  // 8 parts
  ASSERT_TRUE(store.Put({0, 3}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(store.Get({0, 3}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
  StoreStats st;
  ASSERT_TRUE(store.CollectStats(st));
  // With p=0.5 per attempt over 8 parts, some retries must have happened.
  EXPECT_GT(st.remote_part_retries, 0u);
  EXPECT_EQ(st.remote_parts, 8u);
}

TEST(RemoteStoreTest, ConcurrentSameKeyAndCrossKeyStorm) {
  RemoteStore store(FastOptions(), nullptr);
  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          // Same-key contention on {0,0} plus a private per-thread key.
          const auto shared_blob = Blob(6 << 10, static_cast<std::uint8_t>(t));
          ASSERT_TRUE(
              store.Put({0, 0}, shared_blob.data(), shared_blob.size()).ok());
          const auto own = Blob(2 << 10, static_cast<std::uint8_t>(t + 100));
          const ObjectKey key{t + 1, static_cast<std::uint64_t>(i)};
          ASSERT_TRUE(store.Put(key, own.data(), own.size()).ok());
          std::vector<std::byte> out(own.size());
          ASSERT_TRUE(store.Get(key, out.data(), out.size()).ok());
          EXPECT_EQ(std::memcmp(out.data(), own.data(), own.size()), 0);
          if (i % 3 == 0) {
            ASSERT_TRUE(store.Erase(key).ok());
          }
          std::vector<std::byte> shared_out(6 << 10);
          const util::Status got =
              store.Get({0, 0}, shared_out.data(), shared_out.size());
          ASSERT_TRUE(got.ok()) << got;  // never torn, never missing
        }
      });
    }
  }
  EXPECT_TRUE(store.Exists({0, 0}));
}

TEST(OpenRemoteBackendTest, BuildsPlainRemoteStoreWithoutGroupOptions) {
  auto store = OpenRemoteBackend("s3://bucket?lat_us=0", nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_NE(dynamic_cast<RemoteStore*>(store->get()), nullptr);
  EXPECT_EQ(dynamic_cast<AggregatingStore*>(store->get()), nullptr);
}

TEST(OpenRemoteBackendTest, WrapsInAggregatorWhenGroupingRequested) {
  auto store = OpenRemoteBackend("s3://bucket?lat_us=0&group=4&deadline_ms=0",
                                 nullptr);
  ASSERT_TRUE(store.ok()) << store.status();
  auto* agg = dynamic_cast<AggregatingStore*>(store->get());
  ASSERT_NE(agg, nullptr);
  EXPECT_NE(dynamic_cast<const RemoteStore*>(&agg->inner()), nullptr);

  // End to end through the aggregator: 4 member puts -> 1 remote object.
  const auto blob = Blob(1 << 10, 9);
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(
        (*store)->Put({r, 1}, blob.data(), blob.size()).ok());
  }
  StoreStats st;
  ASSERT_TRUE((*store)->CollectStats(st));
  EXPECT_EQ(st.agg_member_puts, 4u);
  EXPECT_EQ(st.agg_group_puts, 1u);
  EXPECT_EQ(st.remote_puts, 1u);
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE((*store)->Get({2, 1}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
}

TEST(OpenRemoteBackendTest, PropagatesParseErrors) {
  EXPECT_EQ(OpenRemoteBackend("s3://", nullptr).status().code(),
            util::ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace ckpt::storage
