#include "storage/file_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

namespace ckpt::storage {
namespace {

namespace fs = std::filesystem;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("ckpt_filestore_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static std::vector<std::byte> Blob(std::size_t n, std::uint8_t seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i * 3 + seed) & 0xff);
    }
    return v;
  }

  fs::path root_;
};

TEST_F(FileStoreTest, PutGetRoundTrip) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok()) << store.status();
  const auto blob = Blob(10000, 5);
  ASSERT_TRUE((*store)->Put({0, 3}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE((*store)->Get({0, 3}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
}

TEST_F(FileStoreTest, PersistsAcrossReopen) {
  {
    auto store = FileStore::Open(root_);
    ASSERT_TRUE(store.ok());
    const auto blob = Blob(512, 1);
    ASSERT_TRUE((*store)->Put({4, 9}, blob.data(), blob.size()).ok());
  }
  auto reopened = FileStore::Open(root_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Exists({4, 9}));
  EXPECT_EQ(*(*reopened)->Size({4, 9}), 512u);
  std::vector<std::byte> out(512);
  ASSERT_TRUE((*reopened)->Get({4, 9}, out.data(), out.size()).ok());
  EXPECT_EQ(out, Blob(512, 1));
}

TEST_F(FileStoreTest, IgnoresForeignFilesOnReopen) {
  fs::create_directories(root_);
  std::ofstream(root_ / "not_a_checkpoint.txt") << "hello";
  std::ofstream(root_ / "r1_vbad.ckpt") << "junk";
  std::ofstream(root_ / "r1_v2.ckpt.tmp") << "torn";
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Keys().empty());
}

TEST_F(FileStoreTest, EraseRemovesFile) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  const auto blob = Blob(64, 2);
  ASSERT_TRUE((*store)->Put({0, 0}, blob.data(), blob.size()).ok());
  EXPECT_TRUE(fs::exists(root_ / "r0_v0.ckpt"));
  ASSERT_TRUE((*store)->Erase({0, 0}).ok());
  EXPECT_FALSE(fs::exists(root_ / "r0_v0.ckpt"));
  EXPECT_FALSE((*store)->Exists({0, 0}));
}

TEST_F(FileStoreTest, GetMissingAndTooSmall) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  std::byte b;
  EXPECT_EQ((*store)->Get({0, 0}, &b, 1).code(), util::ErrorCode::kNotFound);
  const auto blob = Blob(100, 3);
  ASSERT_TRUE((*store)->Put({0, 0}, blob.data(), blob.size()).ok());
  EXPECT_EQ((*store)->Get({0, 0}, &b, 1).code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(FileStoreTest, OverwriteIsAtomicReplacement) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  const auto a = Blob(100, 1);
  const auto b = Blob(200, 2);
  ASSERT_TRUE((*store)->Put({0, 0}, a.data(), a.size()).ok());
  ASSERT_TRUE((*store)->Put({0, 0}, b.data(), b.size()).ok());
  EXPECT_EQ(*(*store)->Size({0, 0}), 200u);
  std::vector<std::byte> out(200);
  ASSERT_TRUE((*store)->Get({0, 0}, out.data(), 200).ok());
  EXPECT_EQ(out, b);
  // No stray temp files left behind.
  for (const auto& e : fs::directory_iterator(root_)) {
    EXPECT_EQ(e.path().extension(), ".ckpt");
  }
}

TEST_F(FileStoreTest, TotalBytesAndKeys) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  const auto blob = Blob(128, 4);
  for (std::uint64_t v = 0; v < 5; ++v) {
    ASSERT_TRUE((*store)->Put({1, v}, blob.data(), blob.size()).ok());
  }
  EXPECT_EQ((*store)->Keys().size(), 5u);
  EXPECT_EQ((*store)->TotalBytes(), 5u * 128);
}

}  // namespace
}  // namespace ckpt::storage
