#include "storage/file_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

namespace ckpt::storage {
namespace {

namespace fs = std::filesystem;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("ckpt_filestore_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static std::vector<std::byte> Blob(std::size_t n, std::uint8_t seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::byte>((i * 3 + seed) & 0xff);
    }
    return v;
  }

  fs::path root_;
};

TEST_F(FileStoreTest, PutGetRoundTrip) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok()) << store.status();
  const auto blob = Blob(10000, 5);
  ASSERT_TRUE((*store)->Put({0, 3}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE((*store)->Get({0, 3}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
}

TEST_F(FileStoreTest, PersistsAcrossReopen) {
  {
    auto store = FileStore::Open(root_);
    ASSERT_TRUE(store.ok());
    const auto blob = Blob(512, 1);
    ASSERT_TRUE((*store)->Put({4, 9}, blob.data(), blob.size()).ok());
  }
  auto reopened = FileStore::Open(root_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Exists({4, 9}));
  EXPECT_EQ(*(*reopened)->Size({4, 9}), 512u);
  std::vector<std::byte> out(512);
  ASSERT_TRUE((*reopened)->Get({4, 9}, out.data(), out.size()).ok());
  EXPECT_EQ(out, Blob(512, 1));
}

TEST_F(FileStoreTest, IgnoresForeignFilesOnReopen) {
  fs::create_directories(root_);
  std::ofstream(root_ / "not_a_checkpoint.txt") << "hello";
  std::ofstream(root_ / "r1_vbad.ckpt") << "junk";
  std::ofstream(root_ / "r1_v2.ckpt.tmp") << "torn";
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Keys().empty());
}

TEST_F(FileStoreTest, EraseRemovesFile) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  const auto blob = Blob(64, 2);
  ASSERT_TRUE((*store)->Put({0, 0}, blob.data(), blob.size()).ok());
  EXPECT_TRUE(fs::exists(root_ / "r0_v0.ckpt"));
  ASSERT_TRUE((*store)->Erase({0, 0}).ok());
  EXPECT_FALSE(fs::exists(root_ / "r0_v0.ckpt"));
  EXPECT_FALSE((*store)->Exists({0, 0}));
}

TEST_F(FileStoreTest, GetMissingAndTooSmall) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  std::byte b;
  EXPECT_EQ((*store)->Get({0, 0}, &b, 1).code(), util::ErrorCode::kNotFound);
  const auto blob = Blob(100, 3);
  ASSERT_TRUE((*store)->Put({0, 0}, blob.data(), blob.size()).ok());
  EXPECT_EQ((*store)->Get({0, 0}, &b, 1).code(), util::ErrorCode::kInvalidArgument);
}

TEST_F(FileStoreTest, OverwriteIsAtomicReplacement) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  const auto a = Blob(100, 1);
  const auto b = Blob(200, 2);
  ASSERT_TRUE((*store)->Put({0, 0}, a.data(), a.size()).ok());
  ASSERT_TRUE((*store)->Put({0, 0}, b.data(), b.size()).ok());
  EXPECT_EQ(*(*store)->Size({0, 0}), 200u);
  std::vector<std::byte> out(200);
  ASSERT_TRUE((*store)->Get({0, 0}, out.data(), 200).ok());
  EXPECT_EQ(out, b);
  // No stray temp files left behind.
  for (const auto& e : fs::directory_iterator(root_)) {
    EXPECT_EQ(e.path().extension(), ".ckpt");
  }
}

TEST_F(FileStoreTest, TotalBytesAndKeys) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  const auto blob = Blob(128, 4);
  for (std::uint64_t v = 0; v < 5; ++v) {
    ASSERT_TRUE((*store)->Put({1, v}, blob.data(), blob.size()).ok());
  }
  EXPECT_EQ((*store)->Keys().size(), 5u);
  EXPECT_EQ((*store)->TotalBytes(), 5u * 128);
}

TEST_F(FileStoreTest, GetRangeReadsSlice) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  const auto blob = Blob(4096, 6);
  ASSERT_TRUE((*store)->Put({0, 1}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(100);
  ASSERT_TRUE((*store)->GetRange({0, 1}, 1000, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data() + 1000, out.size()), 0);
  EXPECT_EQ((*store)->GetRange({0, 1}, 4090, out.data(), 10).code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ((*store)->GetRange({9, 9}, 0, out.data(), 1).code(),
            util::ErrorCode::kNotFound);
}

// Regression: concurrent Put of the SAME key used to share one "<path>.tmp"
// staging file — two writers interleaving fwrite into it could publish a
// torn object via rename. With per-writer temp names every published object
// must be exactly one writer's payload.
TEST_F(FileStoreTest, ConcurrentSameKeyPutsNeverTearObjects) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  constexpr int kWriters = 8;
  constexpr int kRounds = 30;
  constexpr std::size_t kSize = 8192;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&, t] {
        // Each writer's payload is one repeated byte, so a torn mix of two
        // writers is detectable from any two positions.
        std::vector<std::byte> blob(kSize, static_cast<std::byte>(t + 1));
        for (int i = 0; i < kRounds; ++i) {
          ASSERT_TRUE((*store)->Put({0, 0}, blob.data(), blob.size()).ok());
        }
      });
    }
  }
  std::vector<std::byte> out(kSize);
  ASSERT_TRUE((*store)->Get({0, 0}, out.data(), out.size()).ok());
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_EQ(out[i], out[0]) << "torn object at byte " << i;
  }
  // No stray temp files either.
  for (const auto& e : fs::directory_iterator(root_)) {
    EXPECT_EQ(e.path().extension(), ".ckpt");
  }
}

// Regression: Get racing Erase of the same key used to surface kIoError
// (fopen of the unlinked file) instead of kNotFound.
TEST_F(FileStoreTest, GetRacingEraseReportsNotFoundNotIoError) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  constexpr int kRounds = 200;
  const auto blob = Blob(512, 9);
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE((*store)->Put({0, 7}, blob.data(), blob.size()).ok());
    std::jthread eraser([&] { (void)(*store)->Erase({0, 7}); });
    std::vector<std::byte> out(blob.size());
    const util::Status st = (*store)->Get({0, 7}, out.data(), out.size());
    if (!st.ok()) {
      ASSERT_EQ(st.code(), util::ErrorCode::kNotFound) << st;
    }
  }
}

TEST_F(FileStoreTest, ConcurrentPutGetEraseStormAcrossKeys) {
  auto store = FileStore::Open(root_);
  ASSERT_TRUE(store.ok());
  constexpr int kThreads = 8;
  constexpr int kIters = 30;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          const auto blob = Blob(1024, static_cast<std::uint8_t>(t));
          const ObjectKey key{t, static_cast<std::uint64_t>(i % 5)};
          ASSERT_TRUE((*store)->Put(key, blob.data(), blob.size()).ok());
          std::vector<std::byte> out(blob.size());
          const util::Status st = (*store)->Get(key, out.data(), out.size());
          // Another thread may have erased or be rewriting the key; the only
          // acceptable failure is a clean NotFound.
          if (!st.ok()) {
            ASSERT_EQ(st.code(), util::ErrorCode::kNotFound) << st;
          }
          if (i % 7 == 3) (void)(*store)->Erase(key);
        }
      });
    }
  }
}

// Regression: the old ObjectKeyHash folded the rank into bits >= 40, so any
// two keys whose (rank << 40) ^ version matched collided — e.g. {1, 0} and
// {0, 1 << 40}. The mixed hash must separate such pairs.
TEST(ObjectKeyHashTest, RankAndLargeVersionsDoNotAliasByConstruction) {
  const ObjectKeyHash h;
  EXPECT_NE(h(ObjectKey{1, 0}), h(ObjectKey{0, 1ull << 40}));
  EXPECT_NE(h(ObjectKey{2, 0}), h(ObjectKey{0, 2ull << 40}));
  EXPECT_NE(h(ObjectKey{1, 1ull << 40}), h(ObjectKey{0, 0}));
  // Versions differing only above bit 40 must not collide for a fixed rank.
  EXPECT_NE(h(ObjectKey{3, 1ull << 41}), h(ObjectKey{3, 1ull << 42}));
  // Negative (synthetic) ranks hash distinctly from non-negative ones.
  EXPECT_NE(h(ObjectKey{-1, 5}), h(ObjectKey{0, 5}));
  EXPECT_NE(h(ObjectKey{-1, 5}), h(ObjectKey{1, 5}));
}

}  // namespace
}  // namespace ckpt::storage
