#include "storage/checksum_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "storage/mem_store.hpp"

namespace ckpt::storage {
namespace {

std::vector<std::byte> Blob(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 7 + seed) & 0xff);
  }
  return v;
}

TEST(ChecksumStoreTest, RoundTripVerifies) {
  auto inner = std::make_shared<MemStore>();
  ChecksumStore store(inner);
  const auto blob = Blob(4096, 1);
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(store.Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(out, blob);
  EXPECT_EQ(store.verified(), 1u);
  EXPECT_EQ(store.failures(), 0u);
}

TEST(ChecksumStoreTest, SizeReportsPayloadNotFramed) {
  auto inner = std::make_shared<MemStore>();
  ChecksumStore store(inner);
  const auto blob = Blob(1000, 2);
  ASSERT_TRUE(store.Put({1, 2}, blob.data(), blob.size()).ok());
  EXPECT_EQ(*store.Size({1, 2}), 1000u);
  // The inner store holds payload + trailer.
  EXPECT_EQ(*inner->Size({1, 2}), 1000u + ChecksumStore::kTrailerBytes);
}

TEST(ChecksumStoreTest, DetectsPayloadCorruption) {
  auto inner = std::make_shared<MemStore>();
  ChecksumStore store(inner);
  const auto blob = Blob(512, 3);
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  // Corrupt one payload byte in the inner store.
  std::vector<std::byte> framed(*inner->Size({0, 0}));
  ASSERT_TRUE(inner->Get({0, 0}, framed.data(), framed.size()).ok());
  framed[100] ^= std::byte{0x01};
  ASSERT_TRUE(inner->Put({0, 0}, framed.data(), framed.size()).ok());

  std::vector<std::byte> out(blob.size());
  const auto st = store.Get({0, 0}, out.data(), out.size());
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError);
  EXPECT_EQ(store.failures(), 1u);
}

TEST(ChecksumStoreTest, DetectsTrailerCorruptionAndMissingTrailer) {
  auto inner = std::make_shared<MemStore>();
  ChecksumStore store(inner);
  const auto blob = Blob(128, 4);
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  // Clobber the magic.
  std::vector<std::byte> framed(*inner->Size({0, 0}));
  ASSERT_TRUE(inner->Get({0, 0}, framed.data(), framed.size()).ok());
  framed[blob.size()] ^= std::byte{0xFF};
  ASSERT_TRUE(inner->Put({0, 0}, framed.data(), framed.size()).ok());
  std::vector<std::byte> out(blob.size());
  EXPECT_EQ(store.Get({0, 0}, out.data(), out.size()).code(),
            util::ErrorCode::kIoError);

  // An object written without a trailer at all.
  const auto raw = Blob(4, 5);
  ASSERT_TRUE(inner->Put({9, 9}, raw.data(), raw.size()).ok());
  EXPECT_EQ(store.Get({9, 9}, out.data(), out.size()).code(),
            util::ErrorCode::kIoError);
}

TEST(ChecksumStoreTest, EmptyObjectRoundTrips) {
  auto inner = std::make_shared<MemStore>();
  ChecksumStore store(inner);
  ASSERT_TRUE(store.Put({0, 0}, nullptr, 0).ok());
  EXPECT_EQ(*store.Size({0, 0}), 0u);
  std::byte sink;
  EXPECT_TRUE(store.Get({0, 0}, &sink, 1).ok());
}

TEST(ChecksumStoreTest, BufferTooSmallRejectedBeforeRead) {
  auto inner = std::make_shared<MemStore>();
  ChecksumStore store(inner);
  const auto blob = Blob(256, 6);
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(100);
  EXPECT_EQ(store.Get({0, 0}, out.data(), out.size()).code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(ChecksumStoreTest, DelegatesMetadataOps) {
  auto inner = std::make_shared<MemStore>();
  ChecksumStore store(inner);
  const auto blob = Blob(64, 7);
  ASSERT_TRUE(store.Put({3, 4}, blob.data(), blob.size()).ok());
  EXPECT_TRUE(store.Exists({3, 4}));
  EXPECT_EQ(store.Keys().size(), 1u);
  ASSERT_TRUE(store.Erase({3, 4}).ok());
  EXPECT_FALSE(store.Exists({3, 4}));
}

}  // namespace
}  // namespace ckpt::storage
