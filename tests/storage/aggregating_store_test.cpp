#include "storage/aggregating_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/trace_sink.hpp"
#include "storage/faulty_store.hpp"
#include "storage/mem_store.hpp"
#include "util/trace.hpp"

namespace ckpt::storage {
namespace {

std::vector<std::byte> Blob(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 7 + seed) & 0xff);
  }
  return v;
}

AggregatingStore::Options NoDeadline(std::uint64_t members,
                                     std::uint64_t bytes = 0) {
  AggregatingStore::Options o;
  o.group_members = members;
  o.group_bytes = bytes;
  o.deadline = std::chrono::milliseconds(0);  // tests drive Flush() manually
  return o;
}

/// Counts the group objects (synthetic rank) currently in `inner`.
std::size_t GroupObjects(const ObjectStore& inner) {
  std::size_t n = 0;
  for (const ObjectKey& k : inner.Keys()) {
    if (k.rank == AggregatingStore::kGroupRank) ++n;
  }
  return n;
}

TEST(AggregatingStoreTest, SealsOnMemberCountAndRoundTrips) {
  auto mem = std::make_shared<MemStore>();
  AggregatingStore store(mem, NoDeadline(4));
  std::vector<std::vector<std::byte>> blobs;
  for (int r = 0; r < 8; ++r) {
    blobs.push_back(Blob(1024 + static_cast<std::size_t>(r) * 100,
                         static_cast<std::uint8_t>(r)));
    ASSERT_TRUE(store.Put({r, 1}, blobs.back().data(), blobs.back().size()).ok());
  }
  // 8 member puts at group=4: exactly 2 group objects, no member objects.
  EXPECT_EQ(mem->Keys().size(), 2u);
  EXPECT_EQ(GroupObjects(*mem), 2u);
  for (int r = 0; r < 8; ++r) {
    const auto& blob = blobs[static_cast<std::size_t>(r)];
    EXPECT_EQ(*store.Size({r, 1}), blob.size());
    std::vector<std::byte> out(blob.size());
    ASSERT_TRUE(store.Get({r, 1}, out.data(), out.size()).ok());
    EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
  }
  StoreStats st;
  ASSERT_TRUE(store.CollectStats(st));
  EXPECT_EQ(st.agg_member_puts, 8u);
  EXPECT_EQ(st.agg_group_puts, 2u);
  EXPECT_EQ(st.agg_size_flushes, 2u);
  EXPECT_EQ(st.agg_pending_members, 0u);
}

TEST(AggregatingStoreTest, PartialFinalGroupFlushesExplicitly) {
  auto mem = std::make_shared<MemStore>();
  AggregatingStore store(mem, NoDeadline(4));
  const auto blob = Blob(512, 1);
  for (int r = 0; r < 6; ++r) {
    ASSERT_TRUE(store.Put({r, 0}, blob.data(), blob.size()).ok());
  }
  EXPECT_EQ(GroupObjects(*mem), 1u);  // 4 sealed, 2 still pending
  {
    StoreStats st;
    ASSERT_TRUE(store.CollectStats(st));
    EXPECT_EQ(st.agg_pending_members, 2u);
    EXPECT_EQ(st.agg_pending_bytes, 2u * 512u);
  }
  // Pending members are readable before any flush.
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(store.Get({5, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
  {
    StoreStats st;
    ASSERT_TRUE(store.CollectStats(st));
    EXPECT_GT(st.agg_gets_from_pending, 0u);
  }

  ASSERT_TRUE(store.Flush().ok());
  EXPECT_EQ(GroupObjects(*mem), 2u);
  StoreStats st;
  ASSERT_TRUE(store.CollectStats(st));
  EXPECT_EQ(st.agg_pending_members, 0u);
  EXPECT_EQ(st.agg_deadline_flushes, 1u);  // explicit flush counts here
  ASSERT_TRUE(store.Get({5, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
}

TEST(AggregatingStoreTest, SealsOnByteThreshold) {
  auto mem = std::make_shared<MemStore>();
  AggregatingStore store(mem, NoDeadline(0, 4096));
  const auto blob = Blob(1500, 2);
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(store.Put({r, 0}, blob.data(), blob.size()).ok());
  }
  // 3 x 1500 = 4500 >= 4096: sealed at the third put.
  EXPECT_EQ(GroupObjects(*mem), 1u);
  StoreStats st;
  ASSERT_TRUE(store.CollectStats(st));
  EXPECT_EQ(st.agg_size_flushes, 1u);
}

TEST(AggregatingStoreTest, DeadlineFlusherLandsPartialGroup) {
  auto mem = std::make_shared<MemStore>();
  AggregatingStore::Options o;
  o.group_members = 100;  // never reached
  o.deadline = std::chrono::milliseconds(20);
  AggregatingStore store(mem, o);
  const auto blob = Blob(256, 3);
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  // The background flusher must land the group without any explicit call.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (GroupObjects(*mem) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(GroupObjects(*mem), 1u);
  StoreStats st;
  ASSERT_TRUE(store.CollectStats(st));
  EXPECT_EQ(st.agg_deadline_flushes, 1u);
}

TEST(AggregatingStoreTest, EraseTombstonesPendingAndReclaimsLandedGroups) {
  auto mem = std::make_shared<MemStore>();
  AggregatingStore store(mem, NoDeadline(2));
  const auto blob = Blob(300, 4);
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  ASSERT_TRUE(store.Put({1, 0}, blob.data(), blob.size()).ok());  // seals
  ASSERT_TRUE(store.Put({2, 0}, blob.data(), blob.size()).ok());  // pending
  EXPECT_EQ(GroupObjects(*mem), 1u);

  // Pending member: tombstoned, gone immediately.
  ASSERT_TRUE(store.Erase({2, 0}).ok());
  EXPECT_FALSE(store.Exists({2, 0}));
  std::byte b;
  EXPECT_EQ(store.Get({2, 0}, &b, 1).code(), util::ErrorCode::kNotFound);
  EXPECT_EQ(store.Erase({2, 0}).code(), util::ErrorCode::kNotFound);

  // Landed members: the group object survives the first erase...
  ASSERT_TRUE(store.Erase({0, 0}).ok());
  EXPECT_EQ(GroupObjects(*mem), 1u);
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(store.Get({1, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
  // ...and is reclaimed when its last member goes.
  ASSERT_TRUE(store.Erase({1, 0}).ok());
  EXPECT_EQ(GroupObjects(*mem), 0u);
  EXPECT_EQ(store.TotalBytes(), 0u);
  StoreStats st;
  ASSERT_TRUE(store.CollectStats(st));
  EXPECT_EQ(st.agg_group_reclaims, 1u);
}

TEST(AggregatingStoreTest, OverwriteReplacesMember) {
  auto mem = std::make_shared<MemStore>();
  AggregatingStore store(mem, NoDeadline(2));
  const auto a = Blob(100, 1);
  const auto b = Blob(200, 9);
  ASSERT_TRUE(store.Put({0, 0}, a.data(), a.size()).ok());
  ASSERT_TRUE(store.Put({0, 0}, b.data(), b.size()).ok());
  EXPECT_EQ(*store.Size({0, 0}), 200u);
  EXPECT_EQ(store.TotalBytes(), 200u);
  std::vector<std::byte> out(b.size());
  ASSERT_TRUE(store.Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), b.data(), b.size()), 0);
}

TEST(AggregatingStoreTest, FailedGroupUploadStaysReadableAndRetries) {
  auto mem = std::make_shared<MemStore>();
  auto faulty = std::make_shared<FaultyStore>(mem, FaultyStore::Options{});
  AggregatingStore store(faulty, NoDeadline(2));
  faulty->FailNext(FaultOp::kPut, FaultKind::kTransient, 1);

  const auto blob = Blob(400, 5);
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  // The sealing put's upload fails, but the member put already succeeded
  // (write-back semantics) and the data stays readable from the buffer.
  ASSERT_TRUE(store.Put({1, 0}, blob.data(), blob.size()).ok());
  EXPECT_EQ(GroupObjects(*mem), 0u);
  std::vector<std::byte> out(blob.size());
  ASSERT_TRUE(store.Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
  {
    StoreStats st;
    ASSERT_TRUE(store.CollectStats(st));
    EXPECT_EQ(st.agg_group_put_failures, 1u);
    EXPECT_EQ(st.agg_group_puts, 0u);
  }

  // The next Flush retries the failed group and lands it.
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_EQ(GroupObjects(*mem), 1u);
  ASSERT_TRUE(store.Get({1, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
  StoreStats st;
  ASSERT_TRUE(store.CollectStats(st));
  EXPECT_EQ(st.agg_group_puts, 1u);
  EXPECT_EQ(st.agg_pending_members, 0u);
}

TEST(AggregatingStoreTest, DestructorFlushesBufferedMembers) {
  auto mem = std::make_shared<MemStore>();
  {
    AggregatingStore store(mem, NoDeadline(100));
    const auto blob = Blob(64, 6);
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(store.Put({r, 0}, blob.data(), blob.size()).ok());
    }
    EXPECT_EQ(GroupObjects(*mem), 0u);
  }
  EXPECT_EQ(GroupObjects(*mem), 1u);
}

TEST(AggregatingStoreTest, KeysReportLogicalMemberView) {
  auto mem = std::make_shared<MemStore>();
  AggregatingStore store(mem, NoDeadline(2));
  const auto blob = Blob(128, 7);
  ASSERT_TRUE(store.Put({0, 5}, blob.data(), blob.size()).ok());
  ASSERT_TRUE(store.Put({1, 5}, blob.data(), blob.size()).ok());
  const auto keys = store.Keys();
  ASSERT_EQ(keys.size(), 2u);
  for (const ObjectKey& k : keys) {
    EXPECT_NE(k.rank, AggregatingStore::kGroupRank);
    EXPECT_EQ(k.version, 5u);
  }
  EXPECT_EQ(store.TotalBytes(), 2u * 128u);
}

TEST(AggregatingStoreTest, ConcurrentPutGetEraseStorm) {
  auto mem = std::make_shared<MemStore>();
  AggregatingStore::Options o;
  o.group_members = 4;
  o.deadline = std::chrono::milliseconds(2);  // flusher races the writers
  AggregatingStore store(mem, o);
  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          const auto blob =
              Blob(256 + static_cast<std::size_t>(i), static_cast<std::uint8_t>(t));
          const ObjectKey key{t, static_cast<std::uint64_t>(i)};
          ASSERT_TRUE(store.Put(key, blob.data(), blob.size()).ok());
          std::vector<std::byte> out(blob.size());
          ASSERT_TRUE(store.Get(key, out.data(), out.size()).ok());
          EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
          if (i % 4 == 1) {
            ASSERT_TRUE(store.Erase(key).ok());
          }
        }
      });
    }
  }
  ASSERT_TRUE(store.Flush().ok());
  // Every surviving member still round-trips after the storm.
  std::size_t live = 0;
  for (const ObjectKey& k : store.Keys()) {
    std::vector<std::byte> out(*store.Size(k));
    ASSERT_TRUE(store.Get(k, out.data(), out.size()).ok());
    ++live;
  }
  EXPECT_EQ(live, static_cast<std::size_t>(kThreads) * (kIters - kIters / 4));
}

#ifndef CKPT_TRACE_DISABLED
TEST(AggregatingStoreTest, GroupFlowTerminatesOnEraseToZeroReclaim) {
  // Lineage flow accounting (DESIGN.md §14): a group flow must end exactly
  // once whichever way the group dies. A staged group whose members are all
  // erased before its upload lands finishes with "agg:reclaimed"; a landed
  // group reclaimed later has already finished at "agg:landed", so the
  // reclaim is a plain "agg:reclaim" instant, never a second termination.
  util::trace::Enable();
  util::trace::EnableFlows(true);
  util::trace::ResetBuffers();

  {
    auto mem = std::make_shared<MemStore>();
    auto faulty = std::make_shared<FaultyStore>(mem, FaultyStore::Options{});
    AggregatingStore store(faulty, NoDeadline(2));
    const auto blob = Blob(256, 7);

    // Staged-then-erased-to-zero: the sealing upload fails, both members go.
    faulty->FailNext(FaultOp::kPut, FaultKind::kTransient, 1);
    ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
    ASSERT_TRUE(store.Put({1, 0}, blob.data(), blob.size()).ok());
    ASSERT_TRUE(store.Erase({0, 0}).ok());
    ASSERT_TRUE(store.Erase({1, 0}).ok());
    ASSERT_TRUE(store.Flush().ok());  // nothing left to upload
    EXPECT_EQ(GroupObjects(*mem), 0u);

    // Landed-then-reclaimed: the group uploads, then empties.
    ASSERT_TRUE(store.Put({2, 0}, blob.data(), blob.size()).ok());
    ASSERT_TRUE(store.Put({3, 0}, blob.data(), blob.size()).ok());
    EXPECT_EQ(GroupObjects(*mem), 1u);
    ASSERT_TRUE(store.Erase({2, 0}).ok());
    ASSERT_TRUE(store.Erase({3, 0}).ok());
    EXPECT_EQ(GroupObjects(*mem), 0u);
  }

  const std::string json = core::ChromeTraceJson();
  const core::TraceCheck check = core::ValidateChromeTrace(json);
  ASSERT_TRUE(check.ok) << check.error;
  // Both group flows terminated: no dangling ids in the dump.
  EXPECT_EQ(check.flows_dangling, 0u);
  EXPECT_NE(json.find("agg:reclaimed"), std::string::npos);
  EXPECT_NE(json.find("agg:landed"), std::string::npos);
  EXPECT_NE(json.find("\"agg:reclaim\""), std::string::npos);

  util::trace::Disable();
  util::trace::EnableFlows(false);
  util::trace::ResetBuffers();
}
#endif  // CKPT_TRACE_DISABLED

}  // namespace
}  // namespace ckpt::storage
