#include "storage/throttled_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include <thread>

#include "storage/mem_store.hpp"
#include "util/clock.hpp"

namespace ckpt::storage {
namespace {

TEST(ThrottledStoreTest, DelegatesAllOperations) {
  auto inner = std::make_shared<MemStore>();
  int writes = 0, reads = 0;
  ThrottledStore store(
      inner, [&](const ObjectKey&, std::uint64_t) { ++writes; },
      [&](const ObjectKey&, std::uint64_t) { ++reads; });

  std::vector<std::byte> blob(128, std::byte{0x5a});
  ASSERT_TRUE(store.Put({0, 1}, blob.data(), blob.size()).ok());
  EXPECT_TRUE(store.Exists({0, 1}));
  EXPECT_EQ(*store.Size({0, 1}), 128u);
  std::vector<std::byte> out(128);
  ASSERT_TRUE(store.Get({0, 1}, out.data(), out.size()).ok());
  EXPECT_EQ(out, blob);
  EXPECT_EQ(store.Keys().size(), 1u);
  EXPECT_EQ(store.TotalBytes(), 128u);
  ASSERT_TRUE(store.Erase({0, 1}).ok());
  EXPECT_EQ(writes, 1);
  EXPECT_EQ(reads, 1);
}

TEST(ThrottledStoreTest, GetOnMissingObjectSkipsCharge) {
  auto inner = std::make_shared<MemStore>();
  int reads = 0;
  ThrottledStore store(inner, nullptr,
                       [&](const ObjectKey&, std::uint64_t) { ++reads; });
  std::byte b;
  EXPECT_FALSE(store.Get({9, 9}, &b, 1).ok());
  EXPECT_EQ(reads, 0);  // bandwidth not charged for a failed lookup
}

TEST(ThrottledStoreTest, ChargeSeesObjectSizeNotBufferSize) {
  auto inner = std::make_shared<MemStore>();
  std::uint64_t charged = 0;
  ThrottledStore store(inner, nullptr,
                       [&](const ObjectKey&, std::uint64_t n) { charged = n; });
  std::vector<std::byte> blob(100, std::byte{1});
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(500);
  ASSERT_TRUE(store.Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(charged, 100u);
}

TEST(ThrottledStoreTest, SsdFactoryThrottlesByDriveBandwidth) {
  sim::TopologyConfig cfg = sim::TopologyConfig::Testing();
  cfg.nvme_drive_bw = 4 << 20;  // 4 MiB/s
  sim::Topology topo(cfg);
  auto store = MakeSsdStore(topo, std::make_shared<MemStore>());
  std::vector<std::byte> blob(1 << 20, std::byte{2});  // ~250 ms
  const util::Stopwatch sw;
  ASSERT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  EXPECT_GT(sw.ElapsedSec(), 0.15);
}

TEST(ThrottledStoreTest, PfsFactoryThrottlesGlobally) {
  sim::TopologyConfig cfg = sim::TopologyConfig::Testing();
  cfg.pfs_bw = 4 << 20;
  sim::Topology topo(cfg);
  auto store = MakePfsStore(topo, std::make_shared<MemStore>());
  std::vector<std::byte> blob(1 << 20, std::byte{3});
  const util::Stopwatch sw;
  ASSERT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(1 << 20);
  ASSERT_TRUE(store->Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_GT(sw.ElapsedSec(), 0.3);  // two 1 MiB transfers at 4 MiB/s
}

TEST(ThrottledStoreTest, DifferentRanksUseDifferentDrives) {
  sim::TopologyConfig cfg = sim::TopologyConfig::Testing();
  cfg.gpus_per_node = 8;
  cfg.nvme_drives_per_node = 4;
  cfg.nvme_drive_bw = 8 << 20;
  sim::Topology topo(cfg);
  auto store = MakeSsdStore(topo, std::make_shared<MemStore>());
  std::vector<std::byte> blob(1 << 20, std::byte{4});
  // Ranks 0 and 1 stripe to different drives: writing both concurrently
  // should take about as long as one write, not two.
  util::Stopwatch sw;
  ASSERT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  const double single = sw.ElapsedSec();
  sw.Restart();
  {
    std::jthread other([&] {
      ASSERT_TRUE(store->Put({1, 1}, blob.data(), blob.size()).ok());
    });
    ASSERT_TRUE(store->Put({0, 1}, blob.data(), blob.size()).ok());
  }
  const double both = sw.ElapsedSec();
  EXPECT_LT(both, single * 1.7);
}

}  // namespace
}  // namespace ckpt::storage
