#include "storage/mem_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace ckpt::storage {
namespace {

std::vector<std::byte> Blob(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i + seed) & 0xff);
  }
  return v;
}

TEST(MemStoreTest, PutGetRoundTrip) {
  MemStore store;
  const auto blob = Blob(4096, 1);
  ASSERT_TRUE(store.Put({0, 1}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(store.Get({0, 1}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
}

TEST(MemStoreTest, GetMissingFails) {
  MemStore store;
  std::byte b;
  EXPECT_EQ(store.Get({1, 2}, &b, 1).code(), util::ErrorCode::kNotFound);
}

TEST(MemStoreTest, GetBufferTooSmallFails) {
  MemStore store;
  const auto blob = Blob(100, 2);
  ASSERT_TRUE(store.Put({0, 0}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(50);
  EXPECT_EQ(store.Get({0, 0}, out.data(), out.size()).code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(MemStoreTest, OverwriteReplacesObject) {
  MemStore store;
  const auto a = Blob(64, 1);
  const auto b = Blob(128, 9);
  ASSERT_TRUE(store.Put({0, 0}, a.data(), a.size()).ok());
  ASSERT_TRUE(store.Put({0, 0}, b.data(), b.size()).ok());
  EXPECT_EQ(*store.Size({0, 0}), 128u);
  EXPECT_EQ(store.TotalBytes(), 128u);
}

TEST(MemStoreTest, SizeExistsEraseKeys) {
  MemStore store;
  const auto blob = Blob(64, 3);
  ASSERT_TRUE(store.Put({2, 7}, blob.data(), blob.size()).ok());
  EXPECT_TRUE(store.Exists({2, 7}));
  EXPECT_FALSE(store.Exists({2, 8}));
  EXPECT_EQ(*store.Size({2, 7}), 64u);
  EXPECT_EQ(store.Keys().size(), 1u);
  EXPECT_EQ(store.Keys()[0], (ObjectKey{2, 7}));
  EXPECT_TRUE(store.Erase({2, 7}).ok());
  EXPECT_FALSE(store.Exists({2, 7}));
  EXPECT_EQ(store.Erase({2, 7}).code(), util::ErrorCode::kNotFound);
}

TEST(MemStoreTest, DistinctKeysPerRankAndVersion) {
  MemStore store;
  const auto a = Blob(16, 1);
  const auto b = Blob(16, 2);
  ASSERT_TRUE(store.Put({0, 5}, a.data(), a.size()).ok());
  ASSERT_TRUE(store.Put({1, 5}, b.data(), b.size()).ok());
  std::vector<std::byte> out(16);
  ASSERT_TRUE(store.Get({1, 5}, out.data(), 16).ok());
  EXPECT_EQ(std::memcmp(out.data(), b.data(), 16), 0);
}

TEST(MemStoreTest, ConcurrentPutsAndGets) {
  MemStore store;
  constexpr int kThreads = 8;
  constexpr int kObjects = 50;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kObjects; ++i) {
          const auto blob = Blob(256, static_cast<std::uint8_t>(t));
          ASSERT_TRUE(store
                          .Put({t, static_cast<std::uint64_t>(i)}, blob.data(),
                               blob.size())
                          .ok());
          std::vector<std::byte> out(256);
          ASSERT_TRUE(store
                          .Get({t, static_cast<std::uint64_t>(i)}, out.data(),
                               out.size())
                          .ok());
          EXPECT_EQ(std::memcmp(out.data(), blob.data(), 256), 0);
        }
      });
    }
  }
  EXPECT_EQ(store.Keys().size(), static_cast<std::size_t>(kThreads * kObjects));
  EXPECT_EQ(store.TotalBytes(), static_cast<std::uint64_t>(kThreads * kObjects) * 256);
}

TEST(ObjectKeyTest, ToStringFormat) {
  EXPECT_EQ((ObjectKey{3, 17}).ToString(), "r3_v17");
}

}  // namespace
}  // namespace ckpt::storage
