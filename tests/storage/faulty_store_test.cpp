// Tests of the fault-injecting store decorator: deterministic seeded
// schedules, forced faults, down-state semantics and pass-through behavior.
#include "storage/faulty_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "storage/mem_store.hpp"

namespace ckpt::storage {
namespace {

std::vector<std::byte> Blob(std::size_t n, std::uint8_t seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i + seed) & 0xff);
  }
  return v;
}

std::shared_ptr<FaultyStore> Make(FaultyStore::Options opts = {}) {
  return std::make_shared<FaultyStore>(std::make_shared<MemStore>(), opts);
}

TEST(FaultyStoreTest, NoFaultsIsTransparent) {
  auto store = Make();
  const auto blob = Blob(4096, 1);
  ASSERT_TRUE(store->Put({0, 1}, blob.data(), blob.size()).ok());
  EXPECT_TRUE(store->Exists({0, 1}));
  EXPECT_EQ(*store->Size({0, 1}), 4096u);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(store->Get({0, 1}, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), blob.data(), blob.size()), 0);
  EXPECT_EQ(store->faults_injected(), 0u);
  EXPECT_EQ(store->puts_attempted(), 1u);
  EXPECT_EQ(store->gets_attempted(), 1u);
}

TEST(FaultyStoreTest, ScheduledPutIndicesFail) {
  FaultyStore::Options opts;
  opts.fail_puts = {1, 3};
  auto store = Make(opts);
  const auto blob = Blob(64, 2);
  EXPECT_EQ(store->Put({0, 0}, blob.data(), blob.size()).code(),
            util::ErrorCode::kUnavailable);  // put #1
  EXPECT_TRUE(store->Put({0, 1}, blob.data(), blob.size()).ok());   // #2
  EXPECT_EQ(store->Put({0, 2}, blob.data(), blob.size()).code(),
            util::ErrorCode::kUnavailable);  // #3
  EXPECT_TRUE(store->Put({0, 3}, blob.data(), blob.size()).ok());   // #4
  EXPECT_EQ(store->faults_injected(), 2u);
  EXPECT_FALSE(store->Exists({0, 0}));  // the faulted put wrote nothing
  EXPECT_TRUE(store->Exists({0, 1}));
}

TEST(FaultyStoreTest, ScheduledGetIndicesIndependentFromPuts) {
  FaultyStore::Options opts;
  opts.fail_gets = {2};
  auto store = Make(opts);
  const auto blob = Blob(64, 3);
  ASSERT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(64);
  EXPECT_TRUE(store->Get({0, 0}, out.data(), out.size()).ok());  // get #1
  EXPECT_EQ(store->Get({0, 0}, out.data(), out.size()).code(),
            util::ErrorCode::kUnavailable);  // get #2
  EXPECT_TRUE(store->Get({0, 0}, out.data(), out.size()).ok());  // get #3
}

TEST(FaultyStoreTest, RateScheduleIsDeterministicForFixedSeed) {
  const auto run = [] {
    FaultyStore::Options opts;
    opts.seed = 99;
    opts.put_fail_rate = 0.5;
    auto store = Make(opts);
    const auto blob = Blob(16, 4);
    std::vector<bool> pattern;
    for (std::uint64_t v = 0; v < 64; ++v) {
      pattern.push_back(store->Put({0, v}, blob.data(), blob.size()).ok());
    }
    return pattern;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  // A 0.5 rate over 64 ops produces both outcomes with near-certainty.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultyStoreTest, ForcedFaultBudgetIsConsumedExactly) {
  auto store = Make();
  store->FailNext(FaultOp::kPut, FaultKind::kTransient, 2);
  const auto blob = Blob(16, 5);
  EXPECT_EQ(store->Put({0, 0}, blob.data(), blob.size()).code(),
            util::ErrorCode::kUnavailable);
  EXPECT_EQ(store->Put({0, 1}, blob.data(), blob.size()).code(),
            util::ErrorCode::kUnavailable);
  EXPECT_TRUE(store->Put({0, 2}, blob.data(), blob.size()).ok());
  EXPECT_EQ(store->faults_injected(), 2u);
}

TEST(FaultyStoreTest, TransientFaultDoesNotBrickTheStore) {
  auto store = Make();
  store->FailNext(FaultOp::kGet, FaultKind::kTransient, 1);
  const auto blob = Blob(16, 6);
  ASSERT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(16);
  EXPECT_EQ(store->Get({0, 0}, out.data(), out.size()).code(),
            util::ErrorCode::kUnavailable);
  EXPECT_FALSE(store->down());
  EXPECT_TRUE(store->Get({0, 0}, out.data(), out.size()).ok());  // retry works
}

TEST(FaultyStoreTest, PermanentFaultBricksTheStore) {
  auto store = Make();
  const auto blob = Blob(16, 7);
  ASSERT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  store->FailNext(FaultOp::kPut, FaultKind::kPermanent, 1);
  EXPECT_EQ(store->Put({0, 1}, blob.data(), blob.size()).code(),
            util::ErrorCode::kIoError);
  EXPECT_TRUE(store->down());
  // Every later op fails until revived; a dead device advertises nothing.
  std::vector<std::byte> out(16);
  EXPECT_EQ(store->Get({0, 0}, out.data(), out.size()).code(),
            util::ErrorCode::kIoError);
  EXPECT_FALSE(store->Exists({0, 0}));
  EXPECT_FALSE(store->Size({0, 0}).ok());
  EXPECT_EQ(store->Erase({0, 0}).code(), util::ErrorCode::kIoError);
  store->SetDown(false);
  EXPECT_TRUE(store->Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_TRUE(store->Exists({0, 0}));  // data survived below the fault layer
}

TEST(FaultyStoreTest, PermanentNotTerminalFailsSingleOp) {
  FaultyStore::Options opts;
  opts.permanent_is_terminal = false;
  auto store = Make(opts);
  store->FailNext(FaultOp::kPut, FaultKind::kPermanent, 1);
  const auto blob = Blob(16, 8);
  EXPECT_EQ(store->Put({0, 0}, blob.data(), blob.size()).code(),
            util::ErrorCode::kIoError);
  EXPECT_FALSE(store->down());
  EXPECT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
}

TEST(FaultyStoreTest, SetDownTakesEffectImmediately) {
  auto store = Make();
  const auto blob = Blob(16, 9);
  ASSERT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  store->SetDown(true);
  EXPECT_EQ(store->Put({0, 1}, blob.data(), blob.size()).code(),
            util::ErrorCode::kIoError);
  EXPECT_EQ(store->faults_injected(), 1u);
}

TEST(FaultyStoreTest, LatencySpikeStallsButSucceeds) {
  FaultyStore::Options opts;
  opts.spike_rate = 1.0;
  opts.spike = std::chrono::microseconds(100);
  auto store = Make(opts);
  const auto blob = Blob(16, 10);
  EXPECT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  std::vector<std::byte> out(16);
  EXPECT_TRUE(store->Get({0, 0}, out.data(), out.size()).ok());
  EXPECT_EQ(store->faults_injected(), 0u);  // spikes are not faults
}

TEST(FaultyStoreTest, KeysAndTotalBytesDelegate) {
  auto store = Make();
  const auto blob = Blob(128, 11);
  ASSERT_TRUE(store->Put({0, 0}, blob.data(), blob.size()).ok());
  ASSERT_TRUE(store->Put({1, 4}, blob.data(), blob.size()).ok());
  EXPECT_EQ(store->Keys().size(), 2u);
  EXPECT_EQ(store->TotalBytes(), 256u);
}

}  // namespace
}  // namespace ckpt::storage
