// Cross-runtime integration sweeps: every approach x read order x hint mode
// x size mode must round-trip with verified data on the scaled DGX-like
// topology, through the same harness the benches use. Parameterized gtest
// gives one test instance per cell of the evaluation matrix.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.hpp"

namespace ckpt::harness {
namespace {

sim::TopologyConfig FastTopo() {
  // Scaled topology shape with brisk bandwidths so the sweep stays quick
  // while still exercising throttled paths and contention.
  sim::TopologyConfig topo = sim::TopologyConfig::Scaled();
  topo.gpus_per_node = 4;
  topo.hbm_capacity = 16 << 20;
  topo.d2d_bw = 0;
  topo.pcie_link_bw = 800 << 20;
  topo.host_mem_bw = 0;
  topo.nvme_drive_bw = 400 << 20;
  topo.pfs_bw = 200 << 20;
  topo.device_alloc_bw = 0;
  topo.pinned_alloc_bw = 0;
  topo.copy_latency_ns = 0;
  return topo;
}

ExperimentConfig BaseConfig() {
  ExperimentConfig cfg;
  cfg.topology = FastTopo();
  cfg.num_ranks = 4;
  cfg.gpu_cache_bytes = 256 << 10;
  cfg.host_cache_bytes = 1 << 20;
  cfg.shot.num_ckpts = 16;
  cfg.shot.compute_interval = std::chrono::microseconds(100);
  cfg.shot.verify = true;
  cfg.shot.trace.num_snapshots = 16;
  cfg.shot.trace.uniform_size = 48 << 10;
  cfg.shot.trace.min_size = 8 << 10;
  cfg.shot.trace.max_size = 96 << 10;
  cfg.shot.trace.plateau_mean = 56 << 10;
  cfg.shot.trace.ramp_start_mean = 12 << 10;
  return cfg;
}

using Cell = std::tuple<Approach, rtm::ReadOrder, rtm::HintMode, rtm::SizeMode>;

class MatrixTest : public ::testing::TestWithParam<Cell> {};

TEST_P(MatrixTest, RoundTripsWithVerification) {
  const auto [approach, order, hints, sizes] = GetParam();
  ExperimentConfig cfg = BaseConfig();
  cfg.approach = approach;
  cfg.shot.read_order = order;
  cfg.shot.hint_mode = hints;
  cfg.shot.size_mode = sizes;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
  EXPECT_GT(result->ckpt_MBps_mean, 0.0);
  EXPECT_GT(result->restore_MBps_mean, 0.0);
  EXPECT_EQ(result->shot.merged.bytes_restored,
            result->shot.merged.bytes_checkpointed);
}

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  const auto [approach, order, hints, sizes] = info.param;
  std::string name = std::string(to_string(approach)) + "_" +
                     rtm::to_string(order) + "_" + rtm::to_string(hints) + "_" +
                     rtm::to_string(sizes);
  for (char& c : name) {
    if (c == '-' || c == ' ') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    EvaluationMatrix, MatrixTest,
    ::testing::Combine(
        ::testing::Values(Approach::kAdios, Approach::kUvm, Approach::kScore),
        ::testing::Values(rtm::ReadOrder::kSequential, rtm::ReadOrder::kReverse,
                          rtm::ReadOrder::kIrregular),
        ::testing::Values(rtm::HintMode::kNone, rtm::HintMode::kSingle,
                          rtm::HintMode::kAll),
        ::testing::Values(rtm::SizeMode::kUniform, rtm::SizeMode::kVariable)),
    CellName);

// WAIT-mode (Fig. 5 protocol) sweep over approaches.
class WaitModeTest : public ::testing::TestWithParam<Approach> {};

TEST_P(WaitModeTest, FlushBarrierThenRestore) {
  ExperimentConfig cfg = BaseConfig();
  cfg.approach = GetParam();
  cfg.shot.wait_for_flush = true;
  cfg.shot.read_order = rtm::ReadOrder::kReverse;
  cfg.shot.hint_mode = rtm::HintMode::kAll;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Approaches, WaitModeTest,
                         ::testing::Values(Approach::kAdios, Approach::kUvm,
                                           Approach::kScore),
                         [](const ::testing::TestParamInfo<Approach>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(IntegrationTest, TightlyCoupledScoreShot) {
  ExperimentConfig cfg = BaseConfig();
  cfg.shot.coupling = rtm::Coupling::kTightlyCoupled;
  cfg.shot.read_order = rtm::ReadOrder::kReverse;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
}

TEST(IntegrationTest, SplitCacheAblationRuns) {
  ExperimentConfig cfg = BaseConfig();
  cfg.split_flush_prefetch = true;
  cfg.shot.read_order = rtm::ReadOrder::kReverse;
  cfg.shot.hint_mode = rtm::HintMode::kAll;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
}

TEST(IntegrationTest, EvictionAblationPoliciesRun) {
  for (core::EvictionKind kind :
       {core::EvictionKind::kLru, core::EvictionKind::kFifo,
        core::EvictionKind::kGreedyGap}) {
    ExperimentConfig cfg = BaseConfig();
    cfg.eviction = kind;
    cfg.shot.size_mode = rtm::SizeMode::kVariable;
    cfg.shot.read_order = rtm::ReadOrder::kIrregular;
    auto result = RunExperiment(cfg);
    ASSERT_TRUE(result.ok()) << core::to_string(kind) << ": " << result.status();
    EXPECT_EQ(result->shot.verify_failures, 0u) << core::to_string(kind);
  }
}

TEST(IntegrationTest, DiscardAfterRestoreMode) {
  ExperimentConfig cfg = BaseConfig();
  cfg.discard_after_restore = true;
  cfg.shot.read_order = rtm::ReadOrder::kReverse;
  cfg.shot.hint_mode = rtm::HintMode::kAll;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
}

TEST(IntegrationTest, ConfigNamesMatchTable1) {
  EXPECT_EQ(ConfigName(Approach::kAdios, rtm::HintMode::kNone),
            "No hints, ADIOS2");
  EXPECT_EQ(ConfigName(Approach::kUvm, rtm::HintMode::kSingle),
            "Single hint, UVM");
  EXPECT_EQ(ConfigName(Approach::kScore, rtm::HintMode::kAll),
            "All hints, Score");
}

}  // namespace
}  // namespace ckpt::harness
