// End-to-end observability check (the PR's acceptance test): run a small
// RTM experiment with tracing on, render the Chrome trace, and assert the
// validator finds at least one complete span for every stage of the
// checkpoint lifecycle — plus that the harness's embedded metrics snapshot
// is well-formed JSON carrying the Fig. 7 series and stage histograms.
#include "core/trace_sink.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/experiment.hpp"
#include "util/json.hpp"
#include "util/trace.hpp"

namespace ckpt::core {
namespace {

#ifdef CKPT_TRACE_DISABLED
#define SKIP_IF_TRACE_COMPILED_OUT() \
  GTEST_SKIP() << "built with CKPT_TRACE_DISABLED"
#else
#define SKIP_IF_TRACE_COMPILED_OUT() (void)0
#endif

/// A small experiment that still exercises every traced path: 16 ckpts
/// against an 8-slot GPU cache forces evictions during the write phase and
/// promotions during the reverse-order restore phase.
harness::ExperimentConfig SmallTracedExperiment() {
  harness::ExperimentConfig cfg;
  cfg.topology = sim::TopologyConfig::Testing();
  cfg.num_ranks = 2;
  cfg.gpu_cache_bytes = 256 << 10;
  cfg.host_cache_bytes = 1 << 20;
  cfg.shot.num_ckpts = 16;
  cfg.shot.trace.num_snapshots = 16;
  cfg.shot.trace.uniform_size = 32 << 10;
  cfg.shot.compute_interval = std::chrono::microseconds(100);
  cfg.shot.verify = true;
  return cfg;
}

class TraceIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::trace::Disable();
    util::trace::ResetBuffers();
  }
  void TearDown() override {
    util::trace::Disable();
    util::trace::ResetBuffers();
  }
};

TEST_F(TraceIntegrationTest, ExperimentEmitsCompleteSpansForEveryStage) {
  SKIP_IF_TRACE_COMPILED_OUT();
  util::trace::Enable();
  auto result = harness::RunExperiment(SmallTracedExperiment());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);

  const std::string json = ChromeTraceJson();
  const TraceCheck check = ValidateChromeTrace(json);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.events, 0u);
  // One track per engine thread per rank plus the app threads: strictly
  // more than one track proves per-thread attribution works.
  EXPECT_GT(check.tracks, 1u);
  // At least one *complete* span per traced subsystem.
  EXPECT_GE(check.spans_in("lifecycle"), 1u) << json.substr(0, 400);
  EXPECT_GE(check.spans_in("flush"), 1u);
  EXPECT_GE(check.spans_in("prefetch"), 1u);
  EXPECT_GE(check.spans_in("eviction"), 1u);
  EXPECT_GE(check.spans_in("app"), 1u);
}

TEST_F(TraceIntegrationTest, WriteChromeTraceRoundTripsThroughDisk) {
  SKIP_IF_TRACE_COMPILED_OUT();
  util::trace::Enable();
  auto result = harness::RunExperiment(SmallTracedExperiment());
  ASSERT_TRUE(result.ok()) << result.status();

  const std::string path = ::testing::TempDir() + "ckpt_trace_roundtrip.json";
  auto st = WriteChromeTrace(path);
  ASSERT_TRUE(st.ok()) << st;
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const TraceCheck check = ValidateChromeTrace(buf.str());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.spans, 0u);
}

TEST_F(TraceIntegrationTest, ValidatorAggregatesPerTrackStats) {
  SKIP_IF_TRACE_COMPILED_OUT();
  util::trace::Enable();
  auto result = harness::RunExperiment(SmallTracedExperiment());
  ASSERT_TRUE(result.ok()) << result.status();

  const TraceCheck check = ValidateChromeTrace(ChromeTraceJson());
  ASSERT_TRUE(check.ok) << check.error;
  ASSERT_FALSE(check.track_stats.empty());
  EXPECT_EQ(check.track_stats.size(), check.tracks);
  std::size_t events = 0, spans = 0;
  bool saw_named_track = false;
  for (std::size_t i = 0; i < check.track_stats.size(); ++i) {
    const TraceCheck::TrackStats& t = check.track_stats[i];
    EXPECT_GT(t.events, 0u);  // metadata-only tracks are excluded
    EXPECT_LE(t.spans, t.events);
    EXPECT_GE(t.total_dur_us, t.max_dur_us);
    EXPECT_GE(t.max_dur_us, 0.0);
    if (t.spans > 0) EXPECT_GT(t.max_dur_us, 0.0);
    if (!t.name.empty()) saw_named_track = true;
    if (i > 0) {  // ordered by (pid, tid) for stable --summary output
      const TraceCheck::TrackStats& p = check.track_stats[i - 1];
      EXPECT_TRUE(p.pid < t.pid || (p.pid == t.pid && p.tid < t.tid));
    }
    events += t.events;
    spans += t.spans;
  }
  // Engine worker threads announce themselves via SetThreadName.
  EXPECT_TRUE(saw_named_track);
  // Per-track tallies partition the global ones.
  EXPECT_EQ(events, check.events);
  EXPECT_EQ(spans, check.spans);
}

TEST_F(TraceIntegrationTest, HarnessEmbedsParseableMetricsSnapshot) {
  // Metrics are recorded unconditionally, so this holds even in the
  // CKPT_TRACE_DISABLED build.
  auto result = harness::RunExperiment(SmallTracedExperiment());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->metrics_json.empty());

  auto parsed = util::json::Parse(result->metrics_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const util::json::Value* tiers = parsed->Find("tiers");
  ASSERT_NE(tiers, nullptr);
  EXPECT_FALSE(tiers->as_array().empty());
  const util::json::Value* ranks = parsed->Find("ranks");
  ASSERT_NE(ranks, nullptr);
  EXPECT_EQ(ranks->as_array().size(), 2u);
  const util::json::Value* merged = parsed->Find("merged");
  ASSERT_NE(merged, nullptr);
  // The Fig. 7 restore series made it through: one point per restore,
  // carrying prefetch_distance and blocking seconds.
  const util::json::Value* series = merged->Find("restore_series");
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(series->as_array().empty());
  const util::json::Value& point = series->as_array().front();
  EXPECT_NE(point.Find("prefetch_distance"), nullptr);
  EXPECT_NE(point.Find("blocking_s"), nullptr);
  // Per-stage latency histograms keyed by tier name.
  EXPECT_NE(merged->Find("flush_stage_hist"), nullptr);
  EXPECT_NE(merged->Find("ckpt_block_hist"), nullptr);
}

TEST_F(TraceIntegrationTest, ValidatorRejectsMalformedTraces) {
  EXPECT_FALSE(ValidateChromeTrace("").ok);
  EXPECT_FALSE(ValidateChromeTrace("not json").ok);
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\": 3}").ok);
  EXPECT_FALSE(ValidateChromeTrace("{\"traceEvents\": []}").ok);  // empty
  // A span with a negative duration must be flagged.
  EXPECT_FALSE(
      ValidateChromeTrace(
          R"({"traceEvents":[{"name":"x","cat":"flush","ph":"X","ts":1.0,)"
          R"("dur":-2.0,"pid":0,"tid":1}]})")
          .ok);
}

}  // namespace
}  // namespace ckpt::core
