// End-to-end coverage of the S3-shaped remote terminal tier: full RTM shots
// through the harness on a gpu>host>ssd>remote stack, with and without
// group aggregation, plus the telemetry contract — remote/aggregation
// families appear (and validate) exactly when a remote tier is configured,
// and stay absent (byte-level) otherwise.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "core/telemetry_sink.hpp"
#include "core/tier_stack.hpp"
#include "harness/experiment.hpp"
#include "rtm/workload.hpp"
#include "storage/mem_store.hpp"
#include "storage/remote_store.hpp"

namespace ckpt::harness {
namespace {

sim::TopologyConfig FastTopo() {
  sim::TopologyConfig topo = sim::TopologyConfig::Scaled();
  topo.gpus_per_node = 4;
  topo.hbm_capacity = 16 << 20;
  topo.d2d_bw = 0;
  topo.pcie_link_bw = 800 << 20;
  topo.host_mem_bw = 0;
  topo.nvme_drive_bw = 400 << 20;
  topo.pfs_bw = 200 << 20;
  topo.device_alloc_bw = 0;
  topo.pinned_alloc_bw = 0;
  topo.copy_latency_ns = 0;
  return topo;
}

ExperimentConfig BaseConfig() {
  ExperimentConfig cfg;
  cfg.topology = FastTopo();
  cfg.num_ranks = 4;
  cfg.shot.num_ckpts = 12;
  cfg.shot.compute_interval = std::chrono::microseconds(100);
  cfg.shot.verify = true;
  cfg.shot.read_order = rtm::ReadOrder::kReverse;
  cfg.shot.hint_mode = rtm::HintMode::kAll;
  cfg.shot.trace.num_snapshots = 12;
  cfg.shot.trace.uniform_size = 48 << 10;
  cfg.shot.trace.min_size = 8 << 10;
  cfg.shot.trace.max_size = 96 << 10;
  cfg.shot.trace.plateau_mean = 56 << 10;
  cfg.shot.trace.ramp_start_mean = 12 << 10;
  return cfg;
}

constexpr const char* kRemoteStack =
    "gpu:gpucache:256Ki;host:cache:1Mi;ssd:durable:mem;"
    "remote:durable:s3://bucket?lat_us=20&part=16Ki";
// deadline_ms=0: only count-seals, so the group arithmetic below is exact
// (48 member puts / group=4 -> 12 group objects). The deadline flusher is
// exercised by FaultInjectedRemoteStackStillVerifies and the unit tests.
constexpr const char* kRemoteStackAggregated =
    "gpu:gpucache:256Ki;host:cache:1Mi;ssd:durable:mem;"
    "remote:durable:s3://bucket?lat_us=20&part=16Ki&group=4&deadline_ms=0";

TEST(RemoteIntegration, RemoteTerminalStackRoundTrips) {
  ExperimentConfig cfg = BaseConfig();
  cfg.tiers = kRemoteStack;
  cfg.terminal_tier_name = "remote";
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
  EXPECT_EQ(result->shot.merged.bytes_restored,
            result->shot.merged.bytes_checkpointed);
  EXPECT_EQ(result->shot.merged.checkpoints_lost, 0u);
  EXPECT_EQ(result->shot.merged.tier_degradations, 0u);
  // The bench-report metrics snapshot carries the remote tier counters.
  const std::string& json = result->metrics_json;
  EXPECT_NE(json.find("\"remote_tiers\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"remote_puts\""), std::string::npos);
}

TEST(RemoteIntegration, AggregationCutsTerminalPutsByGroupFactor) {
  // Identical shots, aggregation off vs on (group=4): the aggregated run
  // must land at most 1/4 the remote objects (plus the final partial
  // groups) while still verifying every byte. This is the acceptance
  // experiment ISSUE.md's bench trajectory records.
  ExperimentConfig off = BaseConfig();
  off.tiers = kRemoteStack;
  off.terminal_tier_name = "remote";
  auto off_result = RunExperiment(off);
  ASSERT_TRUE(off_result.ok()) << off_result.status();
  EXPECT_EQ(off_result->shot.verify_failures, 0u);

  ExperimentConfig on = BaseConfig();
  on.tiers = kRemoteStackAggregated;
  on.terminal_tier_name = "remote";
  auto on_result = RunExperiment(on);
  ASSERT_TRUE(on_result.ok()) << on_result.status();
  EXPECT_EQ(on_result->shot.verify_failures, 0u);
  EXPECT_EQ(on_result->shot.merged.bytes_restored,
            on_result->shot.merged.bytes_checkpointed);

  const auto remote_puts = [](const std::string& json) -> std::uint64_t {
    const std::size_t at = json.find("\"remote_puts\":");
    EXPECT_NE(at, std::string::npos) << json;
    if (at == std::string::npos) return 0;
    return std::strtoull(json.c_str() + at + 14, nullptr, 10);
  };
  const std::uint64_t puts_off = remote_puts(off_result->metrics_json);
  const std::uint64_t puts_on = remote_puts(on_result->metrics_json);
  // 4 ranks x 12 ckpts, every one reaching the terminal tier.
  EXPECT_EQ(puts_off, 48u);
  // Group factor 4, count-seals only: exactly 48 / 4 = 12 group objects.
  EXPECT_EQ(puts_on * 4, puts_off);
}

TEST(RemoteIntegration, FaultInjectedRemoteStackStillVerifies) {
  ExperimentConfig cfg = BaseConfig();
  cfg.tiers =
      "gpu:gpucache:256Ki;host:cache:1Mi;ssd:durable:mem;"
      "remote:durable:s3://bucket?lat_us=20&part=16Ki&fail=0.2&group=4&"
      "deadline_ms=25";
  cfg.terminal_tier_name = "remote";
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
  EXPECT_EQ(result->shot.merged.checkpoints_lost, 0u);
  // Per-part transient faults at 20% must surface as part retries.
  const std::string& json = result->metrics_json;
  const std::size_t at = json.find("\"remote_part_retries\":");
  ASSERT_NE(at, std::string::npos) << json;
  EXPECT_GT(std::strtoull(json.c_str() + at + 22, nullptr, 10), 0u);
}

// Drives an engine over `spec` for a few checkpoints and returns a direct
// OpenMetrics scrape of it.
std::string ScrapeStack(sim::Cluster& cluster, const std::string& spec,
                        const std::string& terminal) {
  constexpr std::uint64_t kCkptSize = 64 << 10;
  const core::TierStoreFactory factory =
      [&](const std::string&, const std::string& backend,
          int) -> util::StatusOr<std::shared_ptr<storage::ObjectStore>> {
    if (backend.substr(0, 5) == "s3://") {
      auto remote = storage::OpenRemoteBackend(backend, &cluster.topology());
      if (!remote.ok()) return remote.status();
      return std::move(*remote);
    }
    return std::shared_ptr<storage::ObjectStore>(
        std::make_shared<storage::MemStore>());
  };
  auto stack = core::ParseTierStack(spec, terminal, factory);
  EXPECT_TRUE(stack.ok()) << stack.status();
  if (!stack.ok()) return {};
  core::EngineOptions opts;
  core::Engine engine(cluster, std::move(*stack), opts, /*num_ranks=*/1);
  for (std::uint64_t v = 0; v < 4; ++v) {
    auto buf = cluster.device(0).Allocate(kCkptSize);
    EXPECT_TRUE(buf.ok()) << buf.status();
    if (!buf.ok()) return {};
    rtm::FillPattern(0, v, *buf, kCkptSize);
    EXPECT_TRUE(engine.Checkpoint(0, v, *buf, kCkptSize).ok());
    EXPECT_TRUE(cluster.device(0).Free(*buf).ok());
  }
  EXPECT_TRUE(engine.WaitForFlushes(0).ok());
  return core::OpenMetricsText(engine);
}

TEST(RemoteIntegration, OpenMetricsGatingKeepsNonRemoteExpositionIdentical) {
  // A remote-tier engine must expose the ckpt_remote_*/ckpt_agg_* families
  // and still validate as OpenMetrics; a mem-only stack must not mention
  // them at all (the gating contract behind "byte-identical").
  sim::Cluster cluster(sim::TopologyConfig::Testing());
  const std::string with_remote = ScrapeStack(
      cluster,
      "gpu:gpucache:256Ki;host:cache:1Mi;"
      "remote:durable:s3://bucket?lat_us=0&group=4&deadline_ms=0",
      "remote");
  ASSERT_FALSE(with_remote.empty());
  const auto ck = core::ValidateOpenMetrics(with_remote);
  ASSERT_TRUE(ck.ok) << ck.error;
  EXPECT_NE(with_remote.find("ckpt_remote_puts_total{tier=\"remote\"}"),
            std::string::npos)
      << with_remote;
  EXPECT_NE(with_remote.find("ckpt_agg_member_puts_total{tier=\"remote\"}"),
            std::string::npos);
  EXPECT_NE(with_remote.find("ckpt_agg_pending_bytes{tier=\"remote\"}"),
            std::string::npos);

  const std::string without_remote = ScrapeStack(
      cluster, "gpu:gpucache:256Ki;host:cache:1Mi;ssd:durable:mem", "");
  ASSERT_FALSE(without_remote.empty());
  const auto mem_ck = core::ValidateOpenMetrics(without_remote);
  ASSERT_TRUE(mem_ck.ok) << mem_ck.error;
  EXPECT_EQ(without_remote.find("ckpt_remote"), std::string::npos);
  EXPECT_EQ(without_remote.find("ckpt_agg"), std::string::npos);
}

}  // namespace
}  // namespace ckpt::harness
