// End-to-end coverage of config-driven N-tier stacks: a host-only 3-tier
// stack and a 5-tier stack with a second durable stage must complete full
// RTM shots with verified data through the same harness the benches use,
// and a permanent failure of the deepest durable tier must degrade
// durability to the next surviving durable tier instead of losing data.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.hpp"
#include "core/tier_stack.hpp"
#include "harness/experiment.hpp"
#include "rtm/workload.hpp"
#include "storage/faulty_store.hpp"
#include "storage/mem_store.hpp"

namespace ckpt::harness {
namespace {

sim::TopologyConfig FastTopo() {
  sim::TopologyConfig topo = sim::TopologyConfig::Scaled();
  topo.gpus_per_node = 4;
  topo.hbm_capacity = 16 << 20;
  topo.d2d_bw = 0;
  topo.pcie_link_bw = 800 << 20;
  topo.host_mem_bw = 0;
  topo.nvme_drive_bw = 400 << 20;
  topo.pfs_bw = 200 << 20;
  topo.device_alloc_bw = 0;
  topo.pinned_alloc_bw = 0;
  topo.copy_latency_ns = 0;
  return topo;
}

ExperimentConfig BaseConfig() {
  ExperimentConfig cfg;
  cfg.topology = FastTopo();
  cfg.num_ranks = 4;
  cfg.shot.num_ckpts = 16;
  cfg.shot.compute_interval = std::chrono::microseconds(100);
  cfg.shot.verify = true;
  cfg.shot.read_order = rtm::ReadOrder::kReverse;
  cfg.shot.hint_mode = rtm::HintMode::kAll;
  cfg.shot.trace.num_snapshots = 16;
  cfg.shot.trace.uniform_size = 48 << 10;
  cfg.shot.trace.min_size = 8 << 10;
  cfg.shot.trace.max_size = 96 << 10;
  cfg.shot.trace.plateau_mean = 56 << 10;
  cfg.shot.trace.ramp_start_mean = 12 << 10;
  return cfg;
}

TEST(TierStackIntegration, HostOnlyThreeTierStackRoundTrips) {
  ExperimentConfig cfg = BaseConfig();
  // No device cache at all: checkpoints land in the pinned host tier and
  // promotions are host-to-host — the engine must not assume a GPU tier.
  cfg.tiers = "host:cache:1Mi,ssd:durable,pfs:durable";
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
  EXPECT_EQ(result->shot.merged.bytes_restored,
            result->shot.merged.bytes_checkpointed);
  EXPECT_GT(result->restore_MBps_mean, 0.0);
  // A stack without a device tier cannot serve device-cache restores.
  EXPECT_EQ(result->shot.merged.restores_from_gpu, 0u);
}

TEST(TierStackIntegration, FiveTierStackWithSecondDurableStageRoundTrips) {
  ExperimentConfig cfg = BaseConfig();
  cfg.tiers =
      "gpu:gpucache:256Ki,host:cache:1Mi,ssd:durable,pfs:durable,"
      "archive:durable";
  cfg.terminal_tier_name = "pfs";
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
  EXPECT_EQ(result->shot.merged.bytes_restored,
            result->shot.merged.bytes_checkpointed);
  EXPECT_EQ(result->shot.merged.tier_degradations, 0u);
}

TEST(TierStackIntegration, IrregularReadsOnDeepStack) {
  ExperimentConfig cfg = BaseConfig();
  cfg.tiers =
      "gpu:gpucache:256Ki,host:cache:1Mi,ssd:durable,pfs:durable,"
      "archive:durable";
  cfg.terminal_tier_name = "archive";
  cfg.shot.read_order = rtm::ReadOrder::kIrregular;
  cfg.shot.size_mode = rtm::SizeMode::kVariable;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
}

TEST(TierStackIntegration, DeadTerminalTierDegradesButShotCompletes) {
  ExperimentConfig cfg = BaseConfig();
  cfg.tiers = "gpu:gpucache:256Ki,host:cache:1Mi,ssd:durable,pfs:durable";
  cfg.terminal_tier_name = "pfs";
  // The deepest durable tier is dead from the start: every flush exhausts
  // its retries there, degrades durability to the SSD tier, and the shot
  // must still round-trip every checkpoint.
  cfg.tier_store_factory =
      [](const std::string&, const std::string&,
         int ordinal) -> util::StatusOr<std::shared_ptr<storage::ObjectStore>> {
    auto mem = std::make_shared<storage::MemStore>();
    if (ordinal != 1) return std::shared_ptr<storage::ObjectStore>(mem);
    auto faulty = std::make_shared<storage::FaultyStore>(
        mem, storage::FaultyStore::Options{});
    faulty->SetDown(true);
    return std::shared_ptr<storage::ObjectStore>(faulty);
  };
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
  EXPECT_EQ(result->shot.merged.bytes_restored,
            result->shot.merged.bytes_checkpointed);
  EXPECT_GT(result->shot.merged.tier_degradations, 0u);
  EXPECT_EQ(result->shot.merged.checkpoints_lost, 0u);
}

TEST(TierStackIntegration, MixedPolicyStackRoundTripsWithPerTierEvictions) {
  // The tentpole scenario: a score-driven GPU tier over a FIFO host tier,
  // undersized so both evict, run end-to-end through the RTM harness. Both
  // cache tiers must report evictions, durable tiers must report none, and
  // the shot must still verify every byte.
  ExperimentConfig cfg = BaseConfig();
  cfg.tiers =
      "gpu:gpucache:256Ki:score,host:cache:512Ki:fifo,ssd:durable,pfs:durable";
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->shot.verify_failures, 0u);
  EXPECT_EQ(result->shot.merged.bytes_restored,
            result->shot.merged.bytes_checkpointed);
  const core::RankMetrics& m = result->shot.merged;
  ASSERT_EQ(m.evictions_from_tier.size(), 4u);
  ASSERT_EQ(m.evicted_bytes_from_tier.size(), 4u);
  // 16 ckpts x 48Ki per rank vs 256Ki GPU / 512Ki host: both tiers evict.
  EXPECT_GT(m.evictions_from_tier[0], 0u);
  EXPECT_GT(m.evictions_from_tier[1], 0u);
  EXPECT_GT(m.evicted_bytes_from_tier[0], 0u);
  EXPECT_GT(m.evicted_bytes_from_tier[1], 0u);
  EXPECT_EQ(m.evictions_from_tier[2], 0u);  // durable tiers never evict
  EXPECT_EQ(m.evictions_from_tier[3], 0u);
}

TEST(TierStackIntegration, UnknownPolicyNameFailsInitWithInvalidArgument) {
  ExperimentConfig cfg = BaseConfig();
  cfg.tiers = "gpu:gpucache:256Ki:belady,host:cache:1Mi,ssd:durable";
  auto result = RunExperiment(cfg);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("unknown eviction policy"),
            std::string::npos)
      << result.status();
}

// --- Direct engine coverage on custom stacks ------------------------------

class TierStackEngineTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kCkptSize = 64 << 10;

  void Build(core::TierStack stack, core::EngineOptions opts = {},
             int ranks = 1) {
    engine_.reset();  // must go before the cluster it references
    cluster_ = std::make_unique<sim::Cluster>(sim::TopologyConfig::Testing());
    opts.flush_retry.initial_backoff = std::chrono::microseconds(50);
    opts.flush_retry.max_backoff = std::chrono::microseconds(200);
    opts.fetch_retry.initial_backoff = std::chrono::microseconds(50);
    opts.fetch_retry.max_backoff = std::chrono::microseconds(200);
    engine_ = std::make_unique<core::Engine>(*cluster_, std::move(stack), opts,
                                             ranks);
  }

  void WriteCkpt(sim::Rank rank, core::Version v,
                 std::uint64_t size = kCkptSize) {
    auto buf = cluster_->device(rank).Allocate(size);
    ASSERT_TRUE(buf.ok()) << buf.status();
    rtm::FillPattern(rank, v, *buf, size);
    ASSERT_TRUE(engine_->Checkpoint(rank, v, *buf, size).ok());
    ASSERT_TRUE(cluster_->device(rank).Free(*buf).ok());
  }

  void RestoreAndVerify(sim::Rank rank, core::Version v,
                        std::uint64_t size = kCkptSize) {
    auto buf = cluster_->device(rank).Allocate(size);
    ASSERT_TRUE(buf.ok()) << buf.status();
    auto st = engine_->Restore(rank, v, *buf, size);
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_TRUE(rtm::CheckPattern(rank, v, *buf, size))
        << "data corruption for version " << v;
    ASSERT_TRUE(cluster_->device(rank).Free(*buf).ok());
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<core::Engine> engine_;
};

TEST_F(TierStackEngineTest, HostOnlyStackCheckpointsAndRestores) {
  auto stack = core::ParseTierStack("host:cache:512Ki,ssd:durable", "",
                                    /*factory=*/{});
  ASSERT_TRUE(stack.ok()) << stack.status();
  Build(std::move(*stack));
  for (core::Version v = 0; v < 4; ++v) WriteCkpt(0, v);
  ASSERT_TRUE(engine_->WaitForFlushes(0).ok());
  EXPECT_EQ(engine_->GpuCacheUsed(0), 0u);  // no device tier exists
  EXPECT_GT(engine_->HostCacheUsed(0), 0u);
  for (core::Version v = 0; v < 4; ++v) {
    EXPECT_TRUE(engine_->ResidentOnIndex(0, v, 1));  // durable on "ssd"
    RestoreAndVerify(0, v);
  }
}

TEST_F(TierStackEngineTest, DeepestDurableFailureDegradesToNextDurable) {
  // 5-tier stack whose terminal "archive" tier is permanently down: flushes
  // must settle on the deepest *surviving* durable tier ("pfs"), generically
  // — not on a hard-coded host/SSD pair.
  auto archive_mem = std::make_shared<storage::MemStore>();
  auto archive = std::make_shared<storage::FaultyStore>(
      archive_mem, storage::FaultyStore::Options{});
  archive->SetDown(true);
  std::vector<core::TierDesc> tiers;
  tiers.push_back({"gpu", core::TierKind::kCache, core::CacheMedium::kDevice,
                   4 * kCkptSize, nullptr});
  tiers.push_back({"host", core::TierKind::kCache,
                   core::CacheMedium::kPinnedHost, 16 * kCkptSize, nullptr});
  tiers.push_back({"ssd", core::TierKind::kDurable,
                   core::CacheMedium::kPinnedHost, 0,
                   std::make_shared<storage::MemStore>()});
  tiers.push_back({"pfs", core::TierKind::kDurable,
                   core::CacheMedium::kPinnedHost, 0,
                   std::make_shared<storage::MemStore>()});
  tiers.push_back({"archive", core::TierKind::kDurable,
                   core::CacheMedium::kPinnedHost, 0, archive});
  auto stack = core::TierStack::Create(std::move(tiers), "archive");
  ASSERT_TRUE(stack.ok()) << stack.status();
  Build(std::move(*stack));

  WriteCkpt(0, 0);
  ASSERT_TRUE(engine_->WaitForFlushes(0).ok());  // degraded, not failed
  auto tier = engine_->DurableTierIndexOf(0, 0);
  ASSERT_TRUE(tier.ok()) << tier.status();
  EXPECT_EQ(*tier, engine_->tiers().IndexOf("pfs"));
  EXPECT_TRUE(engine_->ResidentOnIndex(0, 0, 2));   // ssd copy
  EXPECT_TRUE(engine_->ResidentOnIndex(0, 0, 3));   // pfs copy
  EXPECT_FALSE(engine_->ResidentOnIndex(0, 0, 4));  // archive never reached
  const core::RankMetrics& m = engine_->metrics(0);
  EXPECT_GT(m.tier_degradations, 0u);
  EXPECT_EQ(m.checkpoints_lost, 0u);
  RestoreAndVerify(0, 0);
}

TEST_F(TierStackEngineTest, InitResolvesPerTierPoliciesAgainstTheGlobalKnob) {
  // gpu names "score" explicitly, host stays silent: after Init the silent
  // tier must have inherited the engine-wide default (lru here), and the
  // stack summary must show the concrete per-tier mix.
  auto stack = core::ParseTierStack(
      "gpu:gpucache:256Ki:score,host:cache:1Mi,ssd:durable", "",
      /*factory=*/{});
  ASSERT_TRUE(stack.ok()) << stack.status();
  core::EngineOptions opts;
  opts.eviction = core::EvictionKind::kLru;
  Build(std::move(*stack), opts);
  EXPECT_EQ(engine_->tiers().policy(0), core::EvictionKind::kScore);
  EXPECT_EQ(engine_->tiers().policy(1), core::EvictionKind::kLru);
  EXPECT_EQ(engine_->tiers().ToString(),
            "gpu(256Ki,score)>host(1Mi,lru)>ssd*");
  WriteCkpt(0, 0);
  ASSERT_TRUE(engine_->WaitForFlushes(0).ok());
  RestoreAndVerify(0, 0);
}

TEST_F(TierStackEngineTest, PerTierMetricsTrackTheConfiguredStack) {
  auto stack = core::ParseTierStack(
      "gpu:gpucache:256Ki,host:cache:1Mi,ssd:durable,pfs:durable", "pfs",
      /*factory=*/{});
  ASSERT_TRUE(stack.ok()) << stack.status();
  Build(std::move(*stack));
  for (core::Version v = 0; v < 3; ++v) WriteCkpt(0, v);
  ASSERT_TRUE(engine_->WaitForFlushes(0).ok());
  const core::RankMetrics m = engine_->metrics(0);
  ASSERT_EQ(m.flush_bytes_to_tier.size(), 4u);
  ASSERT_EQ(m.restores_from_tier.size(), 4u);
  // Every checkpoint reached both durable tiers (terminal = pfs).
  EXPECT_EQ(m.flush_bytes_to_tier[2], 3 * kCkptSize);
  EXPECT_EQ(m.flush_bytes_to_tier[3], 3 * kCkptSize);
  RestoreAndVerify(0, 0);
  // metrics() returns a snapshot, so re-read after the restore.
  const core::RankMetrics after = engine_->metrics(0);
  std::uint64_t served = 0;
  for (std::uint64_t n : after.restores_from_tier) served += n;
  EXPECT_EQ(served, 1u);
}

}  // namespace
}  // namespace ckpt::harness
