// End-to-end telemetry tests: concurrent OpenMetrics scrapes against a live
// engine under checkpoint load, and the forced-stall path — a gated
// terminal store freezes the flush pipeline through the harness's
// tier_store_factory hook, the watchdog trips, and the flight recorder
// drops its four artifacts. This is the test-side of the CI `telemetry`
// job's forced-stall leg.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/telemetry_sampler.hpp"
#include "core/telemetry_sink.hpp"
#include "harness/experiment.hpp"
#include "rtm/workload.hpp"
#include "storage/mem_store.hpp"
#include "util/json.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace ckpt {
namespace {

#ifdef CKPT_TELEMETRY_DISABLED
#define SKIP_IF_TELEMETRY_COMPILED_OUT() \
  GTEST_SKIP() << "built with CKPT_TELEMETRY_DISABLED"
#else
#define SKIP_IF_TELEMETRY_COMPILED_OUT() (void)0
#endif

/// Terminal store whose Put blocks until the gate opens: freezes the flush
/// pipeline (queue depth > 0, landed bytes frozen) without failing any
/// operation, which is exactly the hang signature the watchdog hunts.
class GatedStore : public storage::ObjectStore {
 public:
  explicit GatedStore(std::shared_ptr<storage::ObjectStore> inner)
      : inner_(std::move(inner)) {}

  ~GatedStore() override { Open(); }

  void Open() {
    {
      std::lock_guard lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  util::Status Put(const storage::ObjectKey& key, sim::ConstBytePtr data,
                   std::uint64_t size) override {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return open_; });
    lk.unlock();
    return inner_->Put(key, data, size);
  }
  util::Status Get(const storage::ObjectKey& key, sim::BytePtr dst,
                   std::uint64_t size) override {
    return inner_->Get(key, dst, size);
  }
  util::StatusOr<std::uint64_t> Size(
      const storage::ObjectKey& key) const override {
    return inner_->Size(key);
  }
  bool Exists(const storage::ObjectKey& key) const override {
    return inner_->Exists(key);
  }
  util::Status Erase(const storage::ObjectKey& key) override {
    return inner_->Erase(key);
  }
  std::vector<storage::ObjectKey> Keys() const override {
    return inner_->Keys();
  }
  std::uint64_t TotalBytes() const override { return inner_->TotalBytes(); }

 private:
  std::shared_ptr<storage::ObjectStore> inner_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  out = buf.str();
  return true;
}

class TelemetryIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::trace::Disable();
    util::trace::ResetBuffers();
  }
  void TearDown() override {
    util::telemetry::Settings off;
    off.enabled = false;
    util::telemetry::Configure(off);
    util::trace::Disable();
    util::trace::ResetBuffers();
  }
};

// Scrape-under-load: a background sampler publishes while rank threads
// checkpoint; every concurrent scrape must be valid OpenMetrics and the
// counters must never move backwards between consecutive scrapes.
TEST_F(TelemetryIntegrationTest, ConcurrentScrapesStayValidAndMonotonic) {
  SKIP_IF_TELEMETRY_COMPILED_OUT();
  constexpr std::uint64_t kCkptSize = 32 << 10;
  sim::Cluster cluster(sim::TopologyConfig::Testing());
  core::EngineOptions opts;
  opts.gpu_cache_bytes = 8 * kCkptSize;
  opts.host_cache_bytes = 32 * kCkptSize;
  core::Engine engine(cluster, std::make_shared<storage::MemStore>(),
                      std::make_shared<storage::MemStore>(), opts,
                      /*num_ranks=*/2);

  core::TelemetrySampler::Options sopts;
  sopts.period_ms = 1;
  // This test is about scrape validity under load, not stall detection; at
  // a 1 ms period the default windows would let a briefly descheduled
  // flush worker read as "no progress". Make the watchdog effectively
  // unreachable so the zero-stall assertion below stays deterministic.
  sopts.stall_ms = 60'000;
  sopts.stall_windows = 10'000;
  core::TelemetrySampler sampler(engine, sopts);

  std::atomic<bool> failed{false};
  std::vector<std::thread> writers;
  writers.reserve(2);
  for (int rank = 0; rank < 2; ++rank) {
    writers.emplace_back([&, rank] {
      for (core::Version v = 0; v < 16; ++v) {
        auto buf = cluster.device(rank).Allocate(kCkptSize);
        if (!buf.ok()) {
          failed.store(true);
          return;
        }
        rtm::FillPattern(rank, v, *buf, kCkptSize);
        if (!engine.Checkpoint(rank, v, *buf, kCkptSize).ok()) {
          failed.store(true);
          return;
        }
        (void)cluster.device(rank).Free(*buf);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  core::TelemetryCheck prev;
  for (int i = 0; i < 40; ++i) {
    const core::TelemetryCheck cur =
        core::ValidateOpenMetrics(sampler.ScrapeOpenMetrics());
    ASSERT_TRUE(cur.ok) << "scrape " << i << ": " << cur.error;
    if (prev.ok) {
      const util::Status st = core::CheckCounterMonotonic(prev, cur);
      ASSERT_TRUE(st.ok()) << "scrape " << i << ": " << st;
    }
    prev = cur;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : writers) t.join();
  ASSERT_FALSE(failed.load());
  ASSERT_TRUE(engine.WaitForFlushes(0).ok());
  ASSERT_TRUE(engine.WaitForFlushes(1).ok());
  sampler.Stop();

  EXPECT_EQ(sampler.stalls_detected(), 0u);
  const core::TelemetryCheck last =
      core::ValidateOpenMetrics(sampler.ScrapeOpenMetrics());
  ASSERT_TRUE(last.ok) << last.error;
  EXPECT_EQ(last.value_or("ckpt_checkpoints_total{rank=\"0\"}", -1), 16.0);
  EXPECT_EQ(last.value_or("ckpt_checkpoints_total{rank=\"1\"}", -1), 16.0);
  EXPECT_EQ(last.value_or("ckpt_watchdog_stalls_total{rank=\"0\"}", -1), 0.0);
  engine.Shutdown();
}

// Forced stall through the full harness path: the gated terminal store goes
// in through ExperimentConfig::tier_store_factory, the run's flush pipeline
// freezes until a timer opens the gate, and the watchdog must trip and dump
// the flight recorder while the shot is still running.
TEST_F(TelemetryIntegrationTest, ForcedStallTripsWatchdogAndDumpsFlightRecorder) {
  SKIP_IF_TELEMETRY_COMPILED_OUT();
  const std::string prefix = ::testing::TempDir() + "telemetry_forced_stall";
  for (const char* suffix :
       {".trace.json", ".window.json", ".openmetrics.txt", ".metrics.json"}) {
    std::remove((prefix + suffix).c_str());
  }
  util::trace::Enable(/*capacity=*/4096);

  util::telemetry::Settings ts;
  ts.enabled = true;
  ts.period_ms = 5;
  ts.window = 64;
  ts.out_path = prefix;
  ts.watchdog = true;
  ts.stall_ms = 50;
  ts.stall_windows = 2;
  ts.strict = false;
  util::telemetry::Configure(ts);

  auto gated = std::make_shared<GatedStore>(std::make_shared<storage::MemStore>());
  harness::ExperimentConfig cfg;
  cfg.topology = sim::TopologyConfig::Testing();
  cfg.num_ranks = 1;
  cfg.tiers = "host:cache:1Mi,term:durable";
  cfg.tier_store_factory =
      [&gated](std::string_view, std::string_view,
               int) -> util::StatusOr<std::shared_ptr<storage::ObjectStore>> {
    return std::shared_ptr<storage::ObjectStore>(gated);
  };
  cfg.shot.num_ckpts = 8;
  cfg.shot.trace.num_snapshots = 8;
  cfg.shot.trace.uniform_size = 32 << 10;
  cfg.shot.hint_mode = rtm::HintMode::kNone;
  cfg.shot.read_order = rtm::ReadOrder::kSequential;
  cfg.shot.compute_interval = std::chrono::milliseconds(5);
  // Keep the shot (and with it the sampler, which stops when the shot
  // ends) alive until the gate opens: the no-progress detectors need
  // stall_ms of observed freeze, which the ~40 ms write phase alone does
  // not guarantee to cover.
  cfg.shot.wait_for_flush = true;

  // The flush worker wedges in the gated Put from the first checkpoint on.
  // Open the gate once the trip is observable — the flight recorder's last
  // artifact (.metrics.json) exists — so teardown can drain. Event-driven
  // rather than a fixed sleep: under a sanitizer's slowdown a timer could
  // open the gate before the stall horizon is ever reached. The 30 s cap
  // only bounds a genuinely broken watchdog.
  std::thread opener([&gated, &prefix] {
    const std::string last_artifact = prefix + ".metrics.json";
    for (int i = 0; i < 3000; ++i) {
      if (std::ifstream(last_artifact).good()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    gated->Open();
  });
  auto result = harness::RunExperiment(cfg);
  opener.join();
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_GE(result->watchdog_stalls, 1u);
  const core::TelemetryCheck final_scrape =
      core::ValidateOpenMetrics(result->openmetrics_text);
  ASSERT_TRUE(final_scrape.ok) << final_scrape.error;
  EXPECT_GE(final_scrape.value_or("ckpt_watchdog_stalls_total{rank=\"0\"}", 0),
            1.0);

  // Flight-recorder artifacts: all four land under the configured prefix.
  std::string trace_json, window_json, openmetrics, metrics_json;
  ASSERT_TRUE(ReadFile(prefix + ".trace.json", trace_json));
  ASSERT_TRUE(ReadFile(prefix + ".window.json", window_json));
  ASSERT_TRUE(ReadFile(prefix + ".openmetrics.txt", openmetrics));
  ASSERT_TRUE(ReadFile(prefix + ".metrics.json", metrics_json));

  // The stall instant made it into the dumped trace.
  EXPECT_NE(trace_json.find("health:stall"), std::string::npos);

  // The dumped window is valid JSON with at least one sample.
  auto window = util::json::Parse(window_json);
  ASSERT_TRUE(window.ok()) << window.status();
  EXPECT_FALSE(window->as_object().at("samples").as_array().empty());

  // The stall-time scrape validates as OpenMetrics and already carries the
  // stall the trip charged (the dump probes fresh, it does not reuse the
  // pre-trip ring sample).
  const core::TelemetryCheck dump_scrape =
      core::ValidateOpenMetrics(openmetrics);
  ASSERT_TRUE(dump_scrape.ok) << dump_scrape.error;
  EXPECT_GE(dump_scrape.value_or("ckpt_watchdog_stalls_total{rank=\"0\"}", 0),
            1.0);

  // The metrics snapshot parses and carries the per-reason stall counters.
  auto metrics = util::json::Parse(metrics_json);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics_json.find("watchdog_stalls"), std::string::npos);
}

// The harness writes the healthy-run exposition files when telemetry is on
// and no stall claimed the prefix for the flight recorder.
TEST_F(TelemetryIntegrationTest, HealthyHarnessRunWritesEndOfRunExposition) {
  SKIP_IF_TELEMETRY_COMPILED_OUT();
  const std::string prefix = ::testing::TempDir() + "telemetry_healthy";
  for (const char* suffix : {".openmetrics.txt", ".window.json"}) {
    std::remove((prefix + suffix).c_str());
  }
  util::telemetry::Settings ts;
  ts.enabled = true;
  ts.period_ms = 2;
  ts.out_path = prefix;
  util::telemetry::Configure(ts);

  harness::ExperimentConfig cfg;
  cfg.topology = sim::TopologyConfig::Testing();
  cfg.num_ranks = 2;
  cfg.gpu_cache_bytes = 256 << 10;
  cfg.host_cache_bytes = 1 << 20;
  cfg.shot.num_ckpts = 8;
  cfg.shot.trace.num_snapshots = 8;
  cfg.shot.trace.uniform_size = 32 << 10;
  cfg.shot.compute_interval = std::chrono::microseconds(500);
  cfg.shot.verify = true;
  auto result = harness::RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->watchdog_stalls, 0u);
  EXPECT_EQ(result->shot.verify_failures, 0u);
  const core::TelemetryCheck check =
      core::ValidateOpenMetrics(result->openmetrics_text);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.value_or("ckpt_watchdog_stalls_total{rank=\"0\"}", -1), 0.0);

  // Critical-path attribution rides along in the result.
  auto critical = util::json::Parse(result->critical_path_json);
  ASSERT_TRUE(critical.ok()) << critical.status();
  EXPECT_EQ(critical->as_object().at("ranks").as_array().size(), 2u);

  std::string text;
  ASSERT_TRUE(ReadFile(prefix + ".openmetrics.txt", text));
  EXPECT_TRUE(core::ValidateOpenMetrics(text).ok);
  ASSERT_TRUE(ReadFile(prefix + ".window.json", text));
  EXPECT_TRUE(util::json::Parse(text).ok());
}

}  // namespace
}  // namespace ckpt
