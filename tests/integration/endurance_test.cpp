// Endurance / soak tests: one engine instance serving several consecutive
// shots (an RTM ensemble runs hundreds of shots per process) must show no
// state drift — cache accounting returns to steady state, every round trips
// verify, and the durable store grows exactly with the written history.
#include <gtest/gtest.h>

#include "compress/compressed_store.hpp"
#include "core/engine.hpp"
#include "rtm/workload.hpp"
#include "storage/checksum_store.hpp"
#include "storage/mem_store.hpp"

namespace ckpt::core {
namespace {

using rtm::CheckPattern;
using rtm::FillPattern;

TEST(EnduranceTest, ThreeConsecutiveShotsOnOneEngine) {
  sim::Cluster cluster(sim::TopologyConfig::Testing());
  auto ssd = std::make_shared<storage::MemStore>();
  EngineOptions opts;
  opts.gpu_cache_bytes = 4 * (24 << 10);
  opts.host_cache_bytes = 12 * (24 << 10);
  Engine engine(cluster, ssd, nullptr, opts, 1);
  auto buf = *cluster.device(0).Allocate(24 << 10);

  constexpr int kPerShot = 20;
  for (int shot = 0; shot < 3; ++shot) {
    const Version base = static_cast<Version>(shot * kPerShot);
    for (Version v = base; v < base + kPerShot; ++v) {
      ASSERT_TRUE(engine.PrefetchEnqueue(0, v).ok());
    }
    for (Version v = base; v < base + kPerShot; ++v) {
      FillPattern(0, v, buf, 24 << 10);
      ASSERT_TRUE(engine.Checkpoint(0, v, buf, 24 << 10).ok());
    }
    ASSERT_TRUE(engine.WaitForFlushes(0).ok());
    ASSERT_TRUE(engine.PrefetchStart(0).ok());
    for (Version v = base; v < base + kPerShot; ++v) {
      ASSERT_TRUE(engine.Restore(0, v, buf, 24 << 10).ok());
      ASSERT_TRUE(CheckPattern(0, v, buf, 24 << 10)) << "shot " << shot;
    }
    // Steady state between shots: caches bounded, store holds all history.
    EXPECT_LE(engine.GpuCacheUsed(0), opts.gpu_cache_bytes);
    EXPECT_LE(engine.HostCacheUsed(0), opts.host_cache_bytes);
    EXPECT_EQ(ssd->Keys().size(),
              static_cast<std::size_t>((shot + 1) * kPerShot));
  }
  EXPECT_EQ(engine.metrics(0).bytes_restored,
            3u * kPerShot * (24 << 10));
  ASSERT_TRUE(cluster.device(0).Free(buf).ok());
}

TEST(EnduranceTest, EngineOverChecksummedCompressedStore) {
  // The full decorated durable tier under the engine: every flush is
  // compressed + CRC'd, every store-path restore decompresses + verifies.
  sim::Cluster cluster(sim::TopologyConfig::Testing());
  auto mem = std::make_shared<storage::MemStore>();
  auto checksummed = std::make_shared<storage::ChecksumStore>(mem);
  auto compressed = std::make_shared<compress::CompressedStore>(
      checksummed, compress::CodecKind::kDeltaRle);
  EngineOptions opts;
  opts.gpu_cache_bytes = 2 * (32 << 10);
  opts.host_cache_bytes = 4 * (32 << 10);
  Engine engine(cluster, compressed, nullptr, opts, 1);
  auto buf = *cluster.device(0).Allocate(32 << 10);
  constexpr int kN = 16;  // history >> caches: store reads guaranteed
  for (Version v = 0; v < kN; ++v) {
    FillPattern(0, v, buf, 32 << 10);
    ASSERT_TRUE(engine.Checkpoint(0, v, buf, 32 << 10).ok());
  }
  ASSERT_TRUE(engine.WaitForFlushes(0).ok());
  for (Version v = 0; v < kN; ++v) {
    ASSERT_TRUE(engine.Restore(0, v, buf, 32 << 10).ok());
    ASSERT_TRUE(CheckPattern(0, v, buf, 32 << 10));
  }
  EXPECT_GT(checksummed->verified(), 0u);
  EXPECT_EQ(checksummed->failures(), 0u);
  // RecoverSize must see logical (uncompressed) sizes through the stack.
  EXPECT_EQ(*engine.RecoverSize(0, 0), 32u << 10);
  ASSERT_TRUE(cluster.device(0).Free(buf).ok());
}

TEST(EnduranceTest, CorruptionOnDiskSurfacesAsIoError) {
  sim::Cluster cluster(sim::TopologyConfig::Testing());
  auto mem = std::make_shared<storage::MemStore>();
  auto checksummed = std::make_shared<storage::ChecksumStore>(mem);
  EngineOptions opts;
  opts.gpu_cache_bytes = 2 * (16 << 10);
  opts.host_cache_bytes = 2 * (16 << 10);
  opts.discard_after_restore = false;
  Engine engine(cluster, checksummed, nullptr, opts, 1);
  auto buf = *cluster.device(0).Allocate(16 << 10);
  // Fill caches past v0 so v0 lives only on the (corruptible) store.
  for (Version v = 0; v < 8; ++v) {
    FillPattern(0, v, buf, 16 << 10);
    ASSERT_TRUE(engine.Checkpoint(0, v, buf, 16 << 10).ok());
  }
  ASSERT_TRUE(engine.WaitForFlushes(0).ok());
  ASSERT_FALSE(engine.ResidentOn(0, 0, Tier::kGpu));
  ASSERT_FALSE(engine.ResidentOn(0, 0, Tier::kHost));

  // Flip one stored bit of v0.
  std::vector<std::byte> framed(*mem->Size({0, 0}));
  ASSERT_TRUE(mem->Get({0, 0}, framed.data(), framed.size()).ok());
  framed[64] ^= std::byte{1};
  ASSERT_TRUE(mem->Put({0, 0}, framed.data(), framed.size()).ok());

  const auto st = engine.Restore(0, 0, buf, 16 << 10);
  EXPECT_EQ(st.code(), util::ErrorCode::kIoError)
      << "corrupt checkpoint restored silently: " << st;
  ASSERT_TRUE(cluster.device(0).Free(buf).ok());
}

}  // namespace
}  // namespace ckpt::core
