#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ckpt::harness {
namespace {

TEST(HarnessTest, BenchScaleDefaults) {
  ::unsetenv("CKPT_BENCH_CKPTS");
  ::unsetenv("CKPT_BENCH_RANKS");
  ::unsetenv("CKPT_BENCH_INTERVAL_US");
  const BenchScale s = LoadBenchScale();
  EXPECT_EQ(s.num_ckpts, 384);  // the paper's per-shot checkpoint count
  EXPECT_EQ(s.num_ranks, 8);    // one DGX node
  EXPECT_EQ(s.interval, std::chrono::microseconds(1000));
}

TEST(HarnessTest, BenchScaleEnvOverrides) {
  ::setenv("CKPT_BENCH_CKPTS", "48", 1);
  ::setenv("CKPT_BENCH_RANKS", "2", 1);
  ::setenv("CKPT_BENCH_INTERVAL_US", "250", 1);
  const BenchScale s = LoadBenchScale();
  EXPECT_EQ(s.num_ckpts, 48);
  EXPECT_EQ(s.num_ranks, 2);
  EXPECT_EQ(s.interval, std::chrono::microseconds(250));
  ::unsetenv("CKPT_BENCH_CKPTS");
  ::unsetenv("CKPT_BENCH_RANKS");
  ::unsetenv("CKPT_BENCH_INTERVAL_US");
}

TEST(HarnessTest, RejectsMoreRanksThanGpus) {
  ExperimentConfig cfg;
  cfg.topology = sim::TopologyConfig::Testing();  // 2 GPUs
  cfg.num_ranks = 5;
  EXPECT_FALSE(RunExperiment(cfg).ok());
}

TEST(HarnessTest, ResultFieldsPopulated) {
  ExperimentConfig cfg;
  cfg.topology = sim::TopologyConfig::Testing();
  cfg.num_ranks = 2;
  cfg.gpu_cache_bytes = 256 << 10;
  cfg.host_cache_bytes = 1 << 20;
  cfg.shot.num_ckpts = 8;
  cfg.shot.trace.num_snapshots = 8;
  cfg.shot.trace.uniform_size = 32 << 10;
  cfg.shot.compute_interval = std::chrono::microseconds(100);
  cfg.shot.verify = true;
  auto result = RunExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->config_name, "All hints, Score");
  EXPECT_GT(result->ckpt_MBps_mean, 0.0);
  EXPECT_GT(result->restore_MBps_mean, 0.0);
  EXPECT_NEAR(result->ckpt_MBps_agg, result->ckpt_MBps_mean * 2, 1e-9);
  EXPECT_EQ(result->shot.verify_failures, 0u);
}

TEST(HarnessTest, EveryApproachBuildsAndRuns) {
  for (Approach a : {Approach::kAdios, Approach::kUvm, Approach::kScore}) {
    ExperimentConfig cfg;
    cfg.topology = sim::TopologyConfig::Testing();
    cfg.num_ranks = 1;
    cfg.gpu_cache_bytes = 128 << 10;
    cfg.host_cache_bytes = 512 << 10;
    cfg.shot.num_ckpts = 6;
    cfg.shot.trace.num_snapshots = 6;
    cfg.shot.trace.uniform_size = 16 << 10;
    cfg.shot.compute_interval = std::chrono::microseconds(50);
    cfg.shot.verify = true;
    cfg.approach = a;
    auto result = RunExperiment(cfg);
    ASSERT_TRUE(result.ok()) << to_string(a) << ": " << result.status();
    EXPECT_EQ(result->shot.verify_failures, 0u) << to_string(a);
  }
}

TEST(HarnessTest, Table1Notation) {
  EXPECT_EQ(ConfigName(Approach::kScore, rtm::HintMode::kNone), "No hints, Score");
  EXPECT_EQ(ConfigName(Approach::kAdios, rtm::HintMode::kAll),
            "All hints, ADIOS2");
  EXPECT_STREQ(to_string(Approach::kUvm), "UVM");
}

TEST(HarnessTest, TablePrintersDoNotCrash) {
  PrintTableHeader("test title", "variant");
  PrintTableRow("All hints, Score", "reverse", 123.4, 567.8);
}

}  // namespace
}  // namespace ckpt::harness
