#include "rtm/workload.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/engine.hpp"
#include "storage/mem_store.hpp"

namespace ckpt::rtm {
namespace {

TEST(RestoreOrderTest, SequentialAndReverse) {
  ShotConfig cfg;
  cfg.num_ckpts = 5;
  cfg.read_order = ReadOrder::kSequential;
  EXPECT_EQ(MakeRestoreOrder(cfg, 0),
            (std::vector<core::Version>{0, 1, 2, 3, 4}));
  cfg.read_order = ReadOrder::kReverse;
  EXPECT_EQ(MakeRestoreOrder(cfg, 0),
            (std::vector<core::Version>{4, 3, 2, 1, 0}));
}

TEST(RestoreOrderTest, IrregularIsPermutationAndDeterministic) {
  ShotConfig cfg;
  cfg.num_ckpts = 64;
  cfg.read_order = ReadOrder::kIrregular;
  const auto order = MakeRestoreOrder(cfg, 3);
  EXPECT_EQ(order, MakeRestoreOrder(cfg, 3));        // deterministic
  EXPECT_NE(order, MakeRestoreOrder(cfg, 4));        // rank-dependent
  std::set<core::Version> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 64u);                     // a permutation
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 63u);
  // Not the identity or the reverse.
  std::vector<core::Version> identity(64);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(order, identity);
}

TEST(PatternTest, FillAndCheckAgree) {
  std::vector<std::byte> buf(4096 + 3);  // odd tail exercises byte path
  FillPattern(2, 7, buf.data(), buf.size());
  EXPECT_TRUE(CheckPattern(2, 7, buf.data(), buf.size()));
  EXPECT_FALSE(CheckPattern(2, 8, buf.data(), buf.size()));  // wrong version
  EXPECT_FALSE(CheckPattern(3, 7, buf.data(), buf.size()));  // wrong rank
  buf[100] ^= std::byte{1};
  EXPECT_FALSE(CheckPattern(2, 7, buf.data(), buf.size()));  // corruption
}

class WorkloadRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_.reset();  // must go before the cluster it references
    sim::TopologyConfig topo = sim::TopologyConfig::Testing();
    topo.gpus_per_node = 4;
    topo.hbm_capacity = 8 << 20;
    cluster_ = std::make_unique<sim::Cluster>(topo);
    ssd_ = std::make_shared<storage::MemStore>();
    core::EngineOptions opts;
    opts.gpu_cache_bytes = 256 << 10;
    opts.host_cache_bytes = 1 << 20;
    engine_ = std::make_unique<core::Engine>(*cluster_, ssd_, nullptr, opts, 4);
  }

  ShotConfig SmallShot() {
    ShotConfig cfg;
    cfg.num_ckpts = 12;
    cfg.compute_interval = std::chrono::microseconds(200);
    cfg.verify = true;
    cfg.trace.num_snapshots = 12;
    cfg.trace.uniform_size = 32 << 10;
    cfg.trace.min_size = 4 << 10;
    cfg.trace.max_size = 64 << 10;
    cfg.trace.plateau_mean = 40 << 10;
    cfg.trace.ramp_start_mean = 8 << 10;
    return cfg;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::shared_ptr<storage::MemStore> ssd_;
  std::unique_ptr<core::Engine> engine_;
};

TEST_F(WorkloadRunTest, ReverseShotVerifies) {
  auto cfg = SmallShot();
  cfg.read_order = ReadOrder::kReverse;
  cfg.hint_mode = HintMode::kAll;
  auto result = RunShot(*cluster_, *engine_, cfg, 4);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->verify_failures, 0u);
  EXPECT_EQ(result->per_rank.size(), 4u);
  for (const auto& m : result->per_rank) {
    EXPECT_EQ(m.ckpt_block_s.size(), 12u);
    EXPECT_EQ(m.restore_block_s.size(), 12u);
  }
  EXPECT_GT(result->MeanCkptThroughput(), 0.0);
  EXPECT_GT(result->MeanRestoreThroughput(), 0.0);
  EXPECT_NEAR(result->AggCkptThroughput(),
              result->MeanCkptThroughput() * 4, 1e-6);
}

TEST_F(WorkloadRunTest, AllOrdersAndHintModesVerify) {
  for (ReadOrder order : {ReadOrder::kSequential, ReadOrder::kReverse,
                          ReadOrder::kIrregular}) {
    for (HintMode hints : {HintMode::kNone, HintMode::kSingle, HintMode::kAll}) {
      SetUp();  // fresh engine per combination (versions are immutable)
      auto cfg = SmallShot();
      cfg.read_order = order;
      cfg.hint_mode = hints;
      auto result = RunShot(*cluster_, *engine_, cfg, 4);
      ASSERT_TRUE(result.ok())
          << to_string(order) << "/" << to_string(hints) << ": "
          << result.status();
      EXPECT_EQ(result->verify_failures, 0u)
          << to_string(order) << "/" << to_string(hints);
    }
  }
}

TEST_F(WorkloadRunTest, VariableSizesWithWaitMode) {
  auto cfg = SmallShot();
  cfg.size_mode = SizeMode::kVariable;
  cfg.read_order = ReadOrder::kIrregular;
  cfg.wait_for_flush = true;
  auto result = RunShot(*cluster_, *engine_, cfg, 4);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->verify_failures, 0u);
  // WAIT mode: everything durable before restores started.
  EXPECT_EQ(ssd_->Keys().size(), 4u * 12u);
  for (const auto& m : result->per_rank) {
    EXPECT_GE(m.wait_for_flush_s, 0.0);
  }
}

TEST_F(WorkloadRunTest, TightlyCoupledBarriers) {
  auto cfg = SmallShot();
  cfg.coupling = Coupling::kTightlyCoupled;
  auto result = RunShot(*cluster_, *engine_, cfg, 4);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->verify_failures, 0u);
}

TEST_F(WorkloadRunTest, RejectsBadRankCount) {
  auto cfg = SmallShot();
  EXPECT_FALSE(RunShot(*cluster_, *engine_, cfg, 0).ok());
  EXPECT_FALSE(RunShot(*cluster_, *engine_, cfg, 99).ok());
}

TEST_F(WorkloadRunTest, MergedMetricsSumPerRank) {
  auto cfg = SmallShot();
  auto result = RunShot(*cluster_, *engine_, cfg, 4);
  ASSERT_TRUE(result.ok());
  std::uint64_t bytes = 0;
  for (const auto& m : result->per_rank) bytes += m.bytes_checkpointed;
  EXPECT_EQ(result->merged.bytes_checkpointed, bytes);
  EXPECT_EQ(result->total_bytes, bytes);
}

}  // namespace
}  // namespace ckpt::rtm
