#include "rtm/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ckpt::rtm {
namespace {

TEST(TraceModelTest, UniformModeAllEqual) {
  TraceModel model;
  const auto sizes = model.GenerateUniform();
  EXPECT_EQ(sizes.size(), 384u);
  for (auto s : sizes) EXPECT_EQ(s, model.config().uniform_size);
  EXPECT_EQ(TraceModel::ShotBytes(sizes), 384ull * (128 << 10));
}

TEST(TraceModelTest, DeterministicPerShotSeed) {
  TraceModel model;
  EXPECT_EQ(model.GenerateShot(3), model.GenerateShot(3));
  EXPECT_NE(model.GenerateShot(3), model.GenerateShot(4));
  TraceConfig other;
  other.seed = 99;
  EXPECT_NE(TraceModel(other).GenerateShot(3), model.GenerateShot(3));
}

TEST(TraceModelTest, SizesWithinConfiguredBounds) {
  TraceModel model;
  for (std::uint64_t shot = 0; shot < 8; ++shot) {
    for (auto s : model.GenerateShot(shot)) {
      EXPECT_GE(s, 256u);
      EXPECT_LE(s, model.config().max_size);
      EXPECT_EQ(s % 256, 0u);  // transfer alignment
    }
  }
}

TEST(TraceModelTest, EarlySnapshotsSmallerThanPlateau) {
  // The paper's Fig. 4 shape: compressed checkpoints start small and ramp
  // up; §5.4.2 exploits this ("smaller-sized checkpoints at the beginning
  // of the shot allow faster evictions").
  TraceModel model;
  const auto stats = model.SnapshotStats(32);
  const int n = model.config().num_snapshots;
  double early = 0, late = 0;
  for (int i = 0; i < n / 8; ++i) early += stats[static_cast<std::size_t>(i)].avg;
  for (int i = 7 * n / 8; i < n; ++i) late += stats[static_cast<std::size_t>(i)].avg;
  early /= n / 8.0;
  late /= n / 8.0;
  EXPECT_LT(early, late * 0.5);
}

TEST(TraceModelTest, AggregatePerShotInPaperBand) {
  // Paper: 38-50 GB per shot; scaled /1000 -> 38-50 MB.
  TraceModel model;
  for (std::uint64_t shot = 0; shot < 32; ++shot) {
    const double mb =
        static_cast<double>(TraceModel::ShotBytes(model.GenerateShot(shot))) / 1e6;
    EXPECT_GT(mb, 30.0) << "shot " << shot;
    EXPECT_LT(mb, 60.0) << "shot " << shot;
  }
}

TEST(TraceModelTest, MedianNearUniformSize) {
  // The 128 MB uniform size is "roughly the 50th percentile" of the traces.
  TraceModel model;
  std::vector<std::uint64_t> all;
  for (std::uint64_t shot = 0; shot < 16; ++shot) {
    const auto sizes = model.GenerateShot(shot);
    all.insert(all.end(), sizes.begin(), sizes.end());
  }
  std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(all.size() / 2),
                   all.end());
  const double median = static_cast<double>(all[all.size() / 2]);
  const double uniform = static_cast<double>(model.config().uniform_size);
  EXPECT_GT(median, uniform * 0.6);
  EXPECT_LT(median, uniform * 1.6);
}

TEST(TraceModelTest, SnapshotStatsEnvelopeConsistent) {
  TraceModel model;
  const auto stats = model.SnapshotStats(8);
  ASSERT_EQ(stats.size(), 384u);
  for (const auto& s : stats) {
    EXPECT_LE(s.min, static_cast<std::uint64_t>(s.avg) + 1);
    EXPECT_GE(s.max, static_cast<std::uint64_t>(s.avg));
    EXPECT_LE(s.max, model.config().max_size);
  }
}

TEST(TraceModelTest, VariableSpreadAcrossShots) {
  // Within one snapshot index, different shots must differ (min < max) for
  // most of the shot — the fragmentation driver.
  TraceModel model;
  const auto stats = model.SnapshotStats(32);
  int spread = 0;
  for (const auto& s : stats) {
    if (s.max > s.min) ++spread;
  }
  EXPECT_GT(spread, 300);
}

TEST(TraceModelTest, GenerateDispatch) {
  TraceModel model;
  EXPECT_EQ(model.Generate(SizeMode::kUniform, 5), model.GenerateUniform());
  EXPECT_EQ(model.Generate(SizeMode::kVariable, 5), model.GenerateShot(5));
  EXPECT_STREQ(to_string(SizeMode::kUniform), "uniform");
  EXPECT_STREQ(to_string(SizeMode::kVariable), "variable");
}

}  // namespace
}  // namespace ckpt::rtm
